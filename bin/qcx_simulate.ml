(* CLI: run a workload end to end — characterize, compile with all
   three schedulers, execute on the noisy simulator, report errors.

     dune exec bin/qcx_simulate.exe -- --workload swap --src 0 --dst 13
     dune exec bin/qcx_simulate.exe -- --workload hidden-shift --redundancy 1 *)

open Cmdliner

let workload_term =
  let doc = "Workload: swap | hidden-shift." in
  Arg.(value & opt string "swap" & info [ "w"; "workload" ] ~docv:"KIND" ~doc)

let src_term = Arg.(value & opt int 0 & info [ "src" ] ~docv:"QUBIT" ~doc:"SWAP source.")
let dst_term = Arg.(value & opt int 13 & info [ "dst" ] ~docv:"QUBIT" ~doc:"SWAP target.")

let redundancy_term =
  Arg.(value & opt int 0 & info [ "redundancy" ] ~docv:"K" ~doc:"Hidden-shift CNOT redundancy.")

let trials_term =
  Arg.(value & opt int 2048 & info [ "trials" ] ~docv:"N" ~doc:"Execution trials.")

let run device seed jobs workload src dst redundancy trials =
  let rng = Core.Rng.create seed in
  Printf.printf "device: %s\n%!" (Core.Device.name device);
  Printf.printf "characterizing (1-hop + bin-packing)...\n%!";
  let xtalk = Common.characterize device ~rng ~jobs ~params:Core.Rb.default_params in
  let schedulers = [ Core.Serial_sched; Core.Par_sched; Core.Xtalk_sched 0.5 ] in
  match workload with
  | "swap" ->
    let bench = Core.Swap_circuits.build device ~src ~dst in
    Printf.printf "workload: SWAP path %d -> %d, Bell pair on (%d, %d)\n" src dst
      (fst bench.Core.Swap_circuits.bell)
      (snd bench.Core.Swap_circuits.bell);
    List.iter
      (fun kind ->
        let schedule c = fst (Core.Pipeline.compile ~scheduler:kind device ~xtalk c) in
        let r =
          Core.Tomography.bell_state device ~rng ~trials_per_basis:(trials / 9) ~schedule
            ~circuit:bench.Core.Swap_circuits.circuit ~pair:bench.Core.Swap_circuits.bell
        in
        Printf.printf "  %-18s tomography error %.3f\n%!" (Core.scheduler_name kind)
          r.Core.Tomography.error)
      schedulers
  | "hidden-shift" ->
    let region =
      match Core.Presets.qaoa_regions device with
      | r :: _ -> r
      | [] ->
        Printf.eprintf "no benchmark region for this device\n";
        exit 2
    in
    let hs =
      Core.Hidden_shift.build device ~region ~shift:[ true; false; true; true ] ~redundancy
    in
    Printf.printf "workload: hidden shift on [%s], redundancy %d\n"
      (String.concat ";" (List.map string_of_int region))
      redundancy;
    List.iter
      (fun kind ->
        let sched, _ =
          Core.Pipeline.compile ~scheduler:kind device ~xtalk hs.Core.Hidden_shift.circuit
        in
        let counts = Core.Pipeline.execute ~jobs device sched ~rng ~trials in
        let err =
          Core.Hidden_shift.error_rate hs
            ~counts_get:(Core.Exec.counts_get counts)
            ~total:(Core.Exec.counts_total counts)
        in
        Printf.printf "  %-18s error rate %.3f\n%!" (Core.scheduler_name kind) err)
      schedulers
  | other ->
    Printf.eprintf "unknown workload %s\n" other;
    exit 2

let cmd =
  let info = Cmd.info "qcx_simulate" ~doc:"End-to-end noisy execution of a workload" in
  Cmd.v info
    Term.(
      const run $ Common.device_term $ Common.seed_term $ Common.jobs_term $ workload_term
      $ src_term $ dst_term $ redundancy_term $ trials_term)

let () = exit (Cmd.eval cmd)
