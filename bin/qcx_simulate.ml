(* CLI: run a workload end to end — characterize, compile with all
   three schedulers, execute on the noisy simulator, report errors.

     dune exec bin/qcx_simulate.exe -- --workload swap --src 0 --dst 13
     dune exec bin/qcx_simulate.exe -- --workload hidden-shift --redundancy 1 *)

open Cmdliner

let workload_term =
  let doc = "Workload: swap | hidden-shift." in
  Arg.(value & opt string "swap" & info [ "w"; "workload" ] ~docv:"KIND" ~doc)

let src_term = Arg.(value & opt int 0 & info [ "src" ] ~docv:"QUBIT" ~doc:"SWAP source.")
let dst_term = Arg.(value & opt int 13 & info [ "dst" ] ~docv:"QUBIT" ~doc:"SWAP target.")

let redundancy_term =
  Arg.(value & opt int 0 & info [ "redundancy" ] ~docv:"K" ~doc:"Hidden-shift CNOT redundancy.")

let trials_term =
  Arg.(value & opt int 2048 & info [ "trials" ] ~docv:"N" ~doc:"Execution trials.")

let dd_term =
  let doc =
    "Run the error-mitigation leaderboard with this dynamical-decoupling sequence \
     (xy4 | x2 | cpmg; plain --dd means xy4) instead of the raw scheduler comparison."
  in
  Arg.(value & opt ~vopt:(Some "xy4") (some string) None & info [ "dd" ] ~docv:"SEQ" ~doc)

let zne_term =
  let doc =
    "Run the error-mitigation leaderboard (includes zero-noise extrapolation rows) \
     instead of the raw scheduler comparison."
  in
  Arg.(value & flag & info [ "zne" ] ~doc)

(* The mitigation mini-leaderboard: one workload, the three schedulers,
   all four strategies (none / dd / zne / dd+zne) plus the readout-
   mitigated column.  The observable is the Z-parity of the measured
   qubits. *)
let mitig_leaderboard device ~xtalk ~rng ~jobs ~trials ~sequence ~name ~idle_heavy kinds
    circuit =
  let workloads =
    [ { Core.Leaderboard.w_name = name; w_circuit = circuit; w_idle_heavy = idle_heavy } ]
  in
  let schedulers =
    List.map
      (fun kind ->
        {
          Core.Leaderboard.s_name = Core.scheduler_name kind;
          s_compile =
            (fun c ->
              (* ZNE-folded circuits can triple past the SMT rungs'
                 practical size; enter the ladder at the greedy rung
                 there (deterministic, unlike a wall-clock deadline). *)
              let ladder_start =
                if Core.Circuit.length c > 60 then Some Core.Xtalk_sched.Greedy else None
              in
              fst
                (Core.Pipeline.compile ~scheduler:kind ?ladder_start ~jobs:1 device
                   ~xtalk c));
        })
      kinds
  in
  let cells =
    (* Both CLI workloads are Clifford, so the stabilizer backend can
       carry the trial counts. *)
    Core.Leaderboard.run ~jobs ~sequence ~trials ~backend:Core.Exec.Stabilizer ~device
      ~schedulers ~workloads ~rng ()
  in
  Printf.printf "  ideal parity %+.4f; dd sequence %s\n" (List.hd cells).Core.Leaderboard.c_ideal
    (Core.Dd.sequence_name sequence);
  Printf.printf "  %-18s %-8s %12s %8s %12s %8s\n" "scheduler" "mitig" "expectation" "error"
    "ro-error" "pulses";
  List.iter
    (fun (c : Core.Leaderboard.cell) ->
      Printf.printf "  %-18s %-8s %+12.4f %8.4f %12.4f %8d\n%!" c.Core.Leaderboard.c_scheduler
        (Core.Leaderboard.mitigation_name c.Core.Leaderboard.c_mitigation)
        c.Core.Leaderboard.c_expectation c.Core.Leaderboard.c_error
        c.Core.Leaderboard.c_readout_error c.Core.Leaderboard.c_dd_pulses)
    cells

let run device seed jobs workload src dst redundancy trials dd zne =
  let rng = Core.Rng.create seed in
  let mitigate = dd <> None || zne in
  let sequence =
    match dd with
    | None -> Core.Dd.XY4
    | Some name -> (
      match Core.Dd.sequence_of_name name with
      | Ok seq -> seq
      | Error e ->
        Printf.eprintf "--dd: %s\n" e;
        exit 2)
  in
  Printf.printf "device: %s\n%!" (Core.Device.name device);
  Printf.printf "characterizing (1-hop + bin-packing)...\n%!";
  let xtalk = Common.characterize device ~rng ~jobs ~params:Core.Rb.default_params in
  let schedulers = [ Core.Serial_sched; Core.Par_sched; Core.Xtalk_sched 0.5 ] in
  match workload with
  | "swap" ->
    let bench = Core.Swap_circuits.build device ~src ~dst in
    Printf.printf "workload: SWAP path %d -> %d, Bell pair on (%d, %d)\n" src dst
      (fst bench.Core.Swap_circuits.bell)
      (snd bench.Core.Swap_circuits.bell);
    if mitigate then begin
      (* X-basis parity of the Bell pair: <XX> = +1 ideally, and the
         trailing Hadamards make the observable sensitive to the
         dephasing accumulated over the SWAP chain's idle windows. *)
      let a, b = bench.Core.Swap_circuits.bell in
      let c = bench.Core.Swap_circuits.circuit in
      let c = Core.Circuit.h (Core.Circuit.h c a) b in
      let c = Core.Circuit.measure (Core.Circuit.measure c a) b in
      mitig_leaderboard device ~xtalk ~rng ~jobs ~trials ~sequence
        ~name:(Printf.sprintf "swap-%d-%d" src dst)
        ~idle_heavy:true schedulers c
    end
    else
    List.iter
      (fun kind ->
        let schedule c = fst (Core.Pipeline.compile ~scheduler:kind device ~xtalk c) in
        let r =
          Core.Tomography.bell_state device ~rng ~trials_per_basis:(trials / 9) ~schedule
            ~circuit:bench.Core.Swap_circuits.circuit ~pair:bench.Core.Swap_circuits.bell
        in
        Printf.printf "  %-18s tomography error %.3f\n%!" (Core.scheduler_name kind)
          r.Core.Tomography.error)
      schedulers
  | "hidden-shift" ->
    let region =
      match Core.Presets.qaoa_regions device with
      | r :: _ -> r
      | [] ->
        Printf.eprintf "no benchmark region for this device\n";
        exit 2
    in
    let hs =
      Core.Hidden_shift.build device ~region ~shift:[ true; false; true; true ] ~redundancy
    in
    Printf.printf "workload: hidden shift on [%s], redundancy %d\n"
      (String.concat ";" (List.map string_of_int region))
      redundancy;
    if mitigate then
      mitig_leaderboard device ~xtalk ~rng ~jobs ~trials ~sequence
        ~name:(Printf.sprintf "hidden-shift-r%d" redundancy)
        ~idle_heavy:(redundancy > 0) schedulers hs.Core.Hidden_shift.circuit
    else
    List.iter
      (fun kind ->
        let sched, _ =
          Core.Pipeline.compile ~scheduler:kind device ~xtalk hs.Core.Hidden_shift.circuit
        in
        let counts = Core.Pipeline.execute ~jobs device sched ~rng ~trials in
        let err =
          Core.Hidden_shift.error_rate hs
            ~counts_get:(Core.Exec.counts_get counts)
            ~total:(Core.Exec.counts_total counts)
        in
        Printf.printf "  %-18s error rate %.3f\n%!" (Core.scheduler_name kind) err)
      schedulers
  | other ->
    Printf.eprintf "unknown workload %s\n" other;
    exit 2

let cmd =
  let info = Cmd.info "qcx_simulate" ~doc:"End-to-end noisy execution of a workload" in
  Cmd.v info
    Term.(
      const run $ Common.device_term $ Common.seed_term $ Common.jobs_term $ workload_term
      $ src_term $ dst_term $ redundancy_term $ trials_term $ dd_term $ zne_term)

let () = exit (Cmd.eval cmd)
