#!/bin/sh
# CI entry point: typecheck, build everything, run the test suite,
# then four end-to-end smoke tests: a 2-day fault-injected mini soak
# (fails on any compile loss or ingested corruption), a compile
# request served through the qcx_serve --once NDJSON path, a chaos
# crash-recovery drill (kill -9 the daemon mid-load, restart, require
# the write-ahead journal to hand back every recorded schedule bit
# for bit, then drain cleanly on SIGTERM), the seeded 20-run chaos
# campaign (BENCH_chaos.json), a scheduler-core smoke benchmark
# that fails if the fast engine loses its node-count edge over the
# legacy engine or any schedule differs between --jobs 1 and 4, and
# a scale smoke benchmark (windowed scheduler on the generated
# 127-qubit heavy-hex model, jobs-deterministic, quality-gated
# against the exact solver on small control slices), and an
# error-mitigation smoke benchmark (DD must beat no-DD on the
# idle-heavy XtalkSched slice, ZNE must beat the unmitigated
# aggregate, the cell table must be jobs-identical).
set -eu
cd "$(dirname "$0")/.."

dune build @check
dune build
dune runtest
dune build @serve
dune build @chaos
dune build @drift
dune build @sched
dune build @scale
dune build @mitig

SCRATCH="$(mktemp -d "${TMPDIR:-/tmp}/qcx-ci.XXXXXX")"
DAEMON=""
cleanup() {
  [ -n "$DAEMON" ] && kill -9 "$DAEMON" 2>/dev/null || true
  rm -rf "$SCRATCH"
}
trap cleanup EXIT

dune exec bench/main.exe -- --soak --days 2 --seed 7 \
  --soak-dir "$SCRATCH/snapshots" --out "$SCRATCH/SOAK.json"

# Serving-layer smoke test: one compile request in --once mode must
# come back with status ok and a schedule.
SERVE_REQ='{"op":"compile","id":"ci","device":"example6q","circuit":{"nqubits":6,"gates":[{"g":"h","q":[0]},{"g":"cx","q":[0,1]},{"g":"measure","q":[0]},{"g":"measure","q":[1]}]}}'
SERVE_OUT="$(printf '%s\n' "$SERVE_REQ" | dune exec bin/qcx_serve.exe -- --once --devices example6q --oracle-xtalk)"
case "$SERVE_OUT" in
  *'"status": "ok"'*'"schedule"'*) ;;
  *)
    echo "ci: serve smoke test failed: $SERVE_OUT" >&2
    exit 1
    ;;
esac

# Chaos crash-recovery drill.  The daemon must run as the built
# binary (not under `dune exec`) so kill -9 hits the server itself.
SERVE=_build/default/bin/qcx_serve.exe
BENCH=_build/default/bench/main.exe
SOCK="$SCRATCH/qcx.sock"
CACHE="$SCRATCH/cache.json"

echo "ci: chaos drill: warm up and record"
"$SERVE" --devices example6q --oracle-xtalk --socket "$SOCK" \
  --cache-file "$CACHE" --checkpoint-every 4 --jobs 2 &
DAEMON=$!
"$BENCH" --chaos-client --socket "$SOCK" --mode record \
  --file "$SCRATCH/expected.json" --requests 24

echo "ci: chaos drill: kill -9 mid-load"
"$BENCH" --chaos-client --socket "$SOCK" --mode load --requests 40 --seed 11 &
LOADER=$!
sleep 0.5
kill -9 "$DAEMON"
wait "$DAEMON" 2>/dev/null || true
wait "$LOADER" 2>/dev/null || true

echo "ci: chaos drill: restart; journal replay must restore the cache"
"$SERVE" --devices example6q --oracle-xtalk --socket "$SOCK" \
  --cache-file "$CACHE" --checkpoint-every 4 --jobs 2 &
DAEMON=$!
"$BENCH" --chaos-client --socket "$SOCK" --mode verify \
  --file "$SCRATCH/expected.json" --requests 24 --min-cached 24

echo "ci: chaos drill: graceful drain (SIGTERM must exit 0)"
kill -TERM "$DAEMON"
wait "$DAEMON"
DAEMON=""

# Calibration drill: with compile load in flight, an operator pushes a
# poisoned (truncated-merge) calibration epoch.  The canary gate must
# reject it, the registry must stay on the incumbent epoch, and the
# schedule cache must survive untouched (the post-drill compile comes
# back cached).  The drill client asserts every one of its responses is
# typed ok — availability 1.0 for the whole exchange.
echo "ci: drift drill: poisoned epoch under load must be canary-rejected"
CSOCK="$SCRATCH/qcx-cal.sock"
"$SERVE" --devices example6q --oracle-xtalk --socket "$CSOCK" \
  --calibration-dir "$SCRATCH/calibration" --jobs 2 &
DAEMON=$!
"$BENCH" --chaos-client --socket "$CSOCK" --mode load --requests 30 --seed 13 &
LOADER=$!
"$BENCH" --drift-drill --socket "$CSOCK" --device example6q
wait "$LOADER" 2>/dev/null || true
kill -TERM "$DAEMON"
wait "$DAEMON"
DAEMON=""

echo "ci: drift campaign (20 days, jobs 1/2/4)"
dune exec bench/main.exe -- --drift-bench --days 20 --seed 7 \
  --drift-dir "$SCRATCH/drift" --out BENCH_drift.json

echo "ci: chaos campaign (20 seeds)"
dune exec bench/main.exe -- --chaos-bench --seeds 20 --requests 60 --jobs 2 \
  --chaos-dir "$SCRATCH/chaos" --out BENCH_chaos.json

echo "ci: scheduler-core smoke (fast vs legacy, --jobs 1 vs 4 determinism)"
dune exec bench/main.exe -- --bench-sched --smoke --jobs 4 \
  --out "$SCRATCH/BENCH_sched.json"

echo "ci: scale smoke (windowed scheduler on heavy-hex-127)"
dune exec bench/main.exe -- --bench-scale --smoke --jobs 4 \
  --out "$SCRATCH/BENCH_scale.json"

echo "ci: mitigation smoke (dd/zne leaderboard gates, --jobs 1 vs 2 determinism)"
dune exec bench/main.exe -- --mitig-bench --smoke --jobs 2 \
  --out "$SCRATCH/BENCH_mitig.json"

echo "ci: OK"
