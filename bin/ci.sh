#!/bin/sh
# CI entry point: typecheck, build everything, run the test suite,
# then four end-to-end smoke tests: a 2-day fault-injected mini soak
# (fails on any compile loss or ingested corruption), a compile
# request served through the qcx_serve --once NDJSON path, a chaos
# crash-recovery drill (kill -9 the daemon mid-load, restart, require
# the write-ahead journal to hand back every recorded schedule bit
# for bit, then drain cleanly on SIGTERM), the seeded 20-run chaos
# campaign (BENCH_chaos.json), a scheduler-core smoke benchmark
# that fails if the fast engine loses its node-count edge over the
# legacy engine or any schedule differs between --jobs 1 and 4, and
# a scale smoke benchmark (windowed scheduler on the generated
# 127-qubit heavy-hex model, jobs-deterministic, quality-gated
# against the exact solver on small control slices), and an
# error-mitigation smoke benchmark (DD must beat no-DD on the
# idle-heavy XtalkSched slice, ZNE must beat the unmitigated
# aggregate, the cell table must be jobs-identical), and a serve-tier
# smoke benchmark (rendered cached-path throughput, the event-driven
# reactor over a live socket, and a seeded stall-injection campaign
# with a bounded cached-path tail).
set -eu
cd "$(dirname "$0")/.."

dune build @check
dune build
dune runtest
dune build @serve
dune build @chaos
dune build @fleet
dune build @drift
dune build @sched
dune build @scale
dune build @mitig
dune build @serveperf

SCRATCH="$(mktemp -d "${TMPDIR:-/tmp}/qcx-ci.XXXXXX")"
DAEMON=""
FLEET_PIDS=""
cleanup() {
  [ -n "$DAEMON" ] && kill -9 "$DAEMON" 2>/dev/null || true
  for P in $FLEET_PIDS; do kill -9 "$P" 2>/dev/null || true; done
  rm -rf "$SCRATCH"
}
trap cleanup EXIT

dune exec bench/main.exe -- --soak --days 2 --seed 7 \
  --soak-dir "$SCRATCH/snapshots" --out "$SCRATCH/SOAK.json"

# Serving-layer smoke test: one compile request in --once mode must
# come back with status ok and a schedule.
SERVE_REQ='{"op":"compile","id":"ci","device":"example6q","circuit":{"nqubits":6,"gates":[{"g":"h","q":[0]},{"g":"cx","q":[0,1]},{"g":"measure","q":[0]},{"g":"measure","q":[1]}]}}'
SERVE_OUT="$(printf '%s\n' "$SERVE_REQ" | dune exec bin/qcx_serve.exe -- --once --devices example6q --oracle-xtalk)"
case "$SERVE_OUT" in
  *'"status": "ok"'*'"schedule"'*) ;;
  *)
    echo "ci: serve smoke test failed: $SERVE_OUT" >&2
    exit 1
    ;;
esac

# Chaos crash-recovery drill.  The daemon must run as the built
# binary (not under `dune exec`) so kill -9 hits the server itself.
SERVE=_build/default/bin/qcx_serve.exe
BENCH=_build/default/bench/main.exe
SOCK="$SCRATCH/qcx.sock"
CACHE="$SCRATCH/cache.json"

echo "ci: chaos drill: warm up and record"
"$SERVE" --devices example6q --oracle-xtalk --socket "$SOCK" \
  --cache-file "$CACHE" --checkpoint-every 4 --jobs 2 &
DAEMON=$!
"$BENCH" --chaos-client --socket "$SOCK" --mode record \
  --file "$SCRATCH/expected.json" --requests 24

echo "ci: chaos drill: kill -9 mid-load"
"$BENCH" --chaos-client --socket "$SOCK" --mode load --requests 40 --seed 11 &
LOADER=$!
sleep 0.5
kill -9 "$DAEMON"
wait "$DAEMON" 2>/dev/null || true
wait "$LOADER" 2>/dev/null || true

echo "ci: chaos drill: restart; journal replay must restore the cache"
"$SERVE" --devices example6q --oracle-xtalk --socket "$SOCK" \
  --cache-file "$CACHE" --checkpoint-every 4 --jobs 2 &
DAEMON=$!
"$BENCH" --chaos-client --socket "$SOCK" --mode verify \
  --file "$SCRATCH/expected.json" --requests 24 --min-cached 24

echo "ci: chaos drill: graceful drain (SIGTERM must exit 0)"
kill -TERM "$DAEMON"
wait "$DAEMON"
DAEMON=""

# Calibration drill: with compile load in flight, an operator pushes a
# poisoned (truncated-merge) calibration epoch.  The canary gate must
# reject it, the registry must stay on the incumbent epoch, and the
# schedule cache must survive untouched (the post-drill compile comes
# back cached).  The drill client asserts every one of its responses is
# typed ok — availability 1.0 for the whole exchange.
echo "ci: drift drill: poisoned epoch under load must be canary-rejected"
CSOCK="$SCRATCH/qcx-cal.sock"
"$SERVE" --devices example6q --oracle-xtalk --socket "$CSOCK" \
  --calibration-dir "$SCRATCH/calibration" --jobs 2 &
DAEMON=$!
"$BENCH" --chaos-client --socket "$CSOCK" --mode load --requests 30 --seed 13 &
LOADER=$!
"$BENCH" --drift-drill --socket "$CSOCK" --device example6q
wait "$LOADER" 2>/dev/null || true
kill -TERM "$DAEMON"
wait "$DAEMON"
DAEMON=""

# Fleet drill (kill-a-shard chaos, DESIGN.md section 14): 3 shard
# daemons + the router, each its own process so kill -9 hits exactly
# one crash domain.  Record 24 schedules through the router, kill one
# shard mid-load and delete its snapshot AND journal (only the peer
# replica survives), verify every recorded schedule still comes back
# bit-identical through failover, restart the shard (it must rebuild
# from the peer replica), assert via the router's aggregated health
# that the whole fleet is live again with zero replication lag and a
# recorded failover, then verify all 24 are served from cache.
echo "ci: fleet drill: 3 shards + router"
FSOCK="$SCRATCH/qcx-fleet.sock"
FLEET="$SCRATCH/fleet"
SHARD1=""
for K in 0 1 2; do
  "$SERVE" --devices example6q --oracle-xtalk --socket "$FSOCK" \
    --shards 3 --shard-index "$K" --fleet-dir "$FLEET" --jobs 2 &
  PID=$!
  FLEET_PIDS="$FLEET_PIDS $PID"
  [ "$K" = 1 ] && SHARD1=$PID
done
"$SERVE" --devices example6q --oracle-xtalk --socket "$FSOCK" \
  --shards 3 --router-only --backlog 32 --jobs 2 &
FLEET_PIDS="$FLEET_PIDS $!"
"$BENCH" --chaos-client --socket "$FSOCK" --mode record \
  --file "$SCRATCH/fleet-expected.json" --requests 24

echo "ci: fleet drill: kill -9 shard 1 mid-load (peer replica is the only survivor)"
"$BENCH" --chaos-client --socket "$FSOCK" --mode load --requests 40 --seed 17 &
LOADER=$!
sleep 0.5
kill -9 "$SHARD1"
wait "$SHARD1" 2>/dev/null || true
rm -f "$FLEET/shard-1/cache.json" "$FLEET/shard-1/cache.json.journal"
wait "$LOADER" 2>/dev/null || true

echo "ci: fleet drill: failover must keep every recorded schedule bit-identical"
"$BENCH" --chaos-client --socket "$FSOCK" --mode verify \
  --file "$SCRATCH/fleet-expected.json" --requests 24 --min-cached 0

echo "ci: fleet drill: restarted shard must rebuild from the peer replica"
"$SERVE" --devices example6q --oracle-xtalk --socket "$FSOCK" \
  --shards 3 --shard-index 1 --fleet-dir "$FLEET" --jobs 2 &
FLEET_PIDS="$FLEET_PIDS $!"
"$BENCH" --fleet-drill --socket "$FSOCK" --shards 3 --timeout 30
"$BENCH" --chaos-client --socket "$FSOCK" --mode verify \
  --file "$SCRATCH/fleet-expected.json" --requests 24 --min-cached 24

echo "ci: fleet drill: graceful drain (SIGTERM must exit 0)"
for P in $FLEET_PIDS; do kill -TERM "$P" 2>/dev/null || true; done
for P in $FLEET_PIDS; do
  if [ "$P" != "$SHARD1" ]; then wait "$P"; else wait "$P" 2>/dev/null || true; fi
done
FLEET_PIDS=""

echo "ci: drift campaign (20 days, jobs 1/2/4)"
dune exec bench/main.exe -- --drift-bench --days 20 --seed 7 \
  --drift-dir "$SCRATCH/drift" --out BENCH_drift.json

echo "ci: chaos campaign (20 seeds)"
dune exec bench/main.exe -- --chaos-bench --seeds 20 --requests 60 --jobs 2 \
  --chaos-dir "$SCRATCH/chaos" --out BENCH_chaos.json

echo "ci: scheduler-core smoke (fast vs legacy, --jobs 1 vs 4 determinism)"
dune exec bench/main.exe -- --bench-sched --smoke --jobs 4 \
  --out "$SCRATCH/BENCH_sched.json"

echo "ci: scale smoke (windowed scheduler on heavy-hex-127)"
dune exec bench/main.exe -- --bench-scale --smoke --jobs 4 \
  --out "$SCRATCH/BENCH_scale.json"

echo "ci: mitigation smoke (dd/zne leaderboard gates, --jobs 1 vs 2 determinism)"
dune exec bench/main.exe -- --mitig-bench --smoke --jobs 2 \
  --out "$SCRATCH/BENCH_mitig.json"

echo "ci: fleet smoke (shard-count determinism matrix + seeded kill drills)"
dune exec bench/main.exe -- --fleet-bench --smoke \
  --fleet-dir "$SCRATCH/fleet-bench" --out "$SCRATCH/BENCH_fleet.json"

echo "ci: serve smoke (rendered cached path, reactor socket, chaos tail)"
dune exec bench/main.exe -- --serve-bench --smoke \
  --out "$SCRATCH/BENCH_serve.json"

echo "ci: OK"
