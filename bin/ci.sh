#!/bin/sh
# CI entry point: typecheck, build everything, run the test suite,
# then two end-to-end smoke tests: a 2-day fault-injected mini soak
# (fails on any compile loss or ingested corruption) and a compile
# request served through the qcx_serve --once NDJSON path.
set -eu
cd "$(dirname "$0")/.."

dune build @check
dune build
dune runtest
dune build @serve

SOAK_SCRATCH="$(mktemp -d "${TMPDIR:-/tmp}/qcx-ci-soak.XXXXXX")"
trap 'rm -rf "$SOAK_SCRATCH"' EXIT
dune exec bench/main.exe -- --soak --days 2 --seed 7 \
  --soak-dir "$SOAK_SCRATCH/snapshots" --out "$SOAK_SCRATCH/SOAK.json"

# Serving-layer smoke test: one compile request in --once mode must
# come back with status ok and a schedule.
SERVE_REQ='{"op":"compile","id":"ci","device":"example6q","circuit":{"nqubits":6,"gates":[{"g":"h","q":[0]},{"g":"cx","q":[0,1]},{"g":"measure","q":[0]},{"g":"measure","q":[1]}]}}'
SERVE_OUT="$(printf '%s\n' "$SERVE_REQ" | dune exec bin/qcx_serve.exe -- --once --devices example6q --oracle-xtalk)"
case "$SERVE_OUT" in
  *'"status": "ok"'*'"schedule"'*) ;;
  *)
    echo "ci: serve smoke test failed: $SERVE_OUT" >&2
    exit 1
    ;;
esac

echo "ci: OK"
