#!/bin/sh
# CI entry point: typecheck, build everything, run the test suite,
# then a 2-day fault-injected mini soak as an end-to-end smoke test
# (fails on any compile loss or ingested corruption).
set -eu
cd "$(dirname "$0")/.."

dune build @check
dune build
dune runtest

SOAK_SCRATCH="$(mktemp -d "${TMPDIR:-/tmp}/qcx-ci-soak.XXXXXX")"
trap 'rm -rf "$SOAK_SCRATCH"' EXIT
dune exec bench/main.exe -- --soak --days 2 --seed 7 \
  --soak-dir "$SOAK_SCRATCH/snapshots" --out "$SOAK_SCRATCH/SOAK.json"

echo "ci: OK"
