(* CLI: run crosstalk characterization on a simulated device.

     dune exec bin/qcx_characterize.exe -- --device poughkeepsie --policy binpacked

   Prints the plan (experiments, machine-time estimate under the
   paper's cost model) and the measured high-crosstalk pairs. *)

open Cmdliner

let output_term =
  let doc = "Write the characterized conditional rates to FILE (JSON)." in
  Cmdliner.Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let policy_term =
  let doc = "Characterization policy: all-pairs | one-hop | binpacked | high-only." in
  Arg.(value & opt string "binpacked" & info [ "p"; "policy" ] ~docv:"POLICY" ~doc)

let resilient_term =
  let doc =
    "Run the fault-tolerant characterization front end (per-experiment timeout/retry, \
     fit validation, stale-data fallback) and report per-pair freshness."
  in
  Arg.(value & flag & info [ "resilient" ] ~doc)

let fault_seed_term =
  let doc =
    "Inject faults from the deterministic plan seeded with N (implies --resilient)."
  in
  Arg.(value & opt (some int) None & info [ "fault-seed" ] ~docv:"N" ~doc)

let fault_day_term =
  let doc = "Campaign day the fault plan is evaluated at (with --fault-seed)." in
  Arg.(value & opt int 0 & info [ "fault-day" ] ~docv:"D" ~doc)

let previous_term =
  let doc =
    "Previous characterization snapshot (JSON) used as the stale-data fallback when an \
     experiment stays broken (with --resilient)."
  in
  Arg.(value & opt (some string) None & info [ "previous" ] ~docv:"FILE" ~doc)

let incremental_term =
  let doc =
    "Opt-3 incremental re-characterization: re-measure only the pairs FILE (a previous \
     snapshot) flags as high-crosstalk and merge the fresh rates into it — the same code \
     path the serving layer's calibrator runs.  Falls back to a full pass when the \
     snapshot flags nothing."
  in
  Arg.(value & opt (some string) None & info [ "incremental" ] ~docv:"FILE" ~doc)

let load_snapshot device path =
  match Core.Store.load_crosstalk ~topology:(Core.Device.topology device) ~path () with
  | Ok x -> x
  | Error e ->
    Printf.eprintf "failed to load snapshot %s: %s\n" path e;
    exit 1

let run_incremental device seed jobs threshold fault_seed fault_day path output =
  let rng = Core.Rng.create seed in
  let previous = load_snapshot device path in
  let inject =
    Option.map
      (fun s -> Core.Fault_plan.inject (Core.Fault_plan.create ~seed:s ()) ~day:fault_day)
      fault_seed
  in
  let inc =
    Core.Policy.characterize_incremental ~jobs ~threshold ?inject ~rng device ~previous
  in
  Printf.printf "device: %s\n" (Core.Device.name device);
  Printf.printf "mode: %s (%d pair(s) flagged by %s)\n"
    (Core.Policy.incremental_mode_name inc.Core.Policy.mode)
    (List.length inc.Core.Policy.flagged)
    path;
  List.iter
    (fun ((t1, t2), (s1, s2)) -> Printf.printf "  CX%d,%d | CX%d,%d\n" t1 t2 s1 s2)
    inc.Core.Policy.flagged;
  Printf.printf "executions: %d (a full pass costs %d — %.1f%%)\n"
    inc.Core.Policy.run_executions inc.Core.Policy.full_executions
    (100.0 *. inc.Core.Policy.cost_fraction);
  let r = inc.Core.Policy.resilient in
  Printf.printf "resilient run: %d attempts, %d injected faults, %.1f s charged\n"
    r.Core.Policy.attempts r.Core.Policy.faults r.Core.Policy.simulated_seconds;
  let cal = Core.Device.calibration device in
  let flagged_after =
    Core.Crosstalk.high_crosstalk_pairs inc.Core.Policy.merged cal ~threshold
  in
  Printf.printf "merged snapshot: %d conditional rates, %d high-crosstalk pair(s)\n"
    (List.length (Core.Crosstalk.entries inc.Core.Policy.merged))
    (List.length flagged_after);
  match output with
  | None -> ()
  | Some out -> (
    match Core.Store.save_crosstalk ~path:out inc.Core.Policy.merged with
    | Ok () -> Printf.printf "wrote %s\n" out
    | Error e ->
      Printf.eprintf "failed to write %s: %s\n" out e;
      exit 1)

let run_plain device seed jobs threshold policy_name resilient fault_seed fault_day previous
    output =
  let rng = Core.Rng.create seed in
  let policy =
    match policy_name with
    | "all-pairs" -> Core.Policy.All_pairs
    | "one-hop" -> Core.Policy.One_hop
    | "binpacked" -> Core.Policy.One_hop_binpacked
    | "high-only" ->
      (* Re-measure the pairs a first 1-hop pass flags. *)
      let first = Core.Policy.plan ~rng device Core.Policy.One_hop_binpacked in
      let outcome = Core.Policy.characterize ~jobs ~rng device first in
      Core.Policy.High_crosstalk_only
        (Core.Policy.high_pairs_of_outcome ~threshold device outcome)
    | other ->
      Printf.eprintf "unknown policy %s\n" other;
      exit 2
  in
  let plan = Core.Policy.plan ~rng device policy in
  Printf.printf "device: %s\n" (Core.Device.name device);
  Printf.printf "policy: %s\n" (Core.Policy.policy_name policy);
  Printf.printf "experiments: %d\n" (Core.Policy.experiment_count plan);
  Printf.printf "machine time at paper settings: %.2f hours\n" (Core.Policy.estimated_hours plan);
  let resilient = resilient || fault_seed <> None in
  let outcome =
    if not resilient then Core.Policy.characterize ~jobs ~rng device plan
    else begin
      let inject =
        Option.map
          (fun s -> Core.Fault_plan.inject (Core.Fault_plan.create ~seed:s ()) ~day:fault_day)
          fault_seed
      in
      let prev =
        match previous with
        | None -> Core.Crosstalk.empty
        | Some path -> (
          match
            Core.Store.load_crosstalk ~topology:(Core.Device.topology device) ~path ()
          with
          | Ok x -> x
          | Error e ->
            Printf.eprintf "failed to load previous snapshot %s: %s\n" path e;
            exit 1)
      in
      let r =
        Core.Policy.characterize_resilient ~jobs ?inject ~previous:prev ~rng device plan
      in
      Printf.printf "\nresilient run: %d attempts, %d injected faults, %.1f s charged\n"
        r.Core.Policy.attempts r.Core.Policy.faults r.Core.Policy.simulated_seconds;
      List.iter
        (fun (((t1, t2), (s1, s2)), f) ->
          match f with
          | Core.Policy.Fresh -> ()
          | f ->
            Printf.printf "  CX%d,%d | CX%d,%d: %s\n" t1 t2 s1 s2
              (Core.Policy.freshness_name f))
        r.Core.Policy.freshness;
      r.Core.Policy.outcome
    end
  in
  let flagged = Core.Policy.high_pairs_of_outcome ~threshold device outcome in
  Printf.printf "\nhigh-crosstalk pairs (ratio > %.1fx):\n" threshold;
  let cal = Core.Device.calibration device in
  List.iter
    (fun ((e1 : int * int), (e2 : int * int)) ->
      let cond target spectator =
        Core.Crosstalk.conditional_or_independent outcome.Core.Policy.xtalk cal ~target
          ~spectator
      in
      Printf.printf "  CX%d,%d | CX%d,%d   E(g1|g2)=%.4f E(g2|g1)=%.4f\n" (fst e1) (snd e1)
        (fst e2) (snd e2) (cond e1 e2) (cond e2 e1))
    flagged;
  Printf.printf "\n%d conditional rates measured in total\n"
    (List.length outcome.Core.Policy.measurements);
  match output with
  | None -> ()
  | Some path -> (
    match Core.Store.save_crosstalk ~path outcome.Core.Policy.xtalk with
    | Ok () -> Printf.printf "wrote %s\n" path
    | Error e ->
      Printf.eprintf "failed to write %s: %s\n" path e;
      exit 1)

let run device seed jobs threshold policy_name resilient fault_seed fault_day previous
    incremental output =
  match incremental with
  | Some path -> run_incremental device seed jobs threshold fault_seed fault_day path output
  | None ->
    run_plain device seed jobs threshold policy_name resilient fault_seed fault_day previous
      output

let cmd =
  let info = Cmd.info "qcx_characterize" ~doc:"Characterize crosstalk on a simulated IBMQ device" in
  Cmd.v info
    Term.(
      const run $ Common.device_term $ Common.seed_term $ Common.jobs_term $ Common.threshold_term
      $ policy_term $ resilient_term $ fault_seed_term $ fault_day_term $ previous_term
      $ incremental_term $ output_term)

let () = exit (Cmd.eval cmd)
