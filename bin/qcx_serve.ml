(* CLI: the long-running compilation service.

     dune exec bin/qcx_serve.exe -- --socket /tmp/qcx.sock \
       --devices poughkeepsie,example6q --oracle-xtalk --jobs 4

   Speaks newline-delimited JSON (one request per line, one response
   per line; see DESIGN.md sections 8-9).  `--once` reads requests from
   stdin and answers on stdout — the test and CI mode:

     echo '{"op":"ping","id":"p1"}' | dune exec bin/qcx_serve.exe -- --once

   Exit codes: 0 after a clean drain (SIGTERM) or a `shutdown` request,
   2 for startup/usage errors, 3 for a fatal socket error. *)

open Cmdliner

let devices_term =
  let doc =
    "Comma-separated device list: poughkeepsie | johannesburg | boeblingen | example6q, \
     plus generated models heavy-hex-127 | heavy-hex-433 | grid-RxC."
  in
  Arg.(value & opt string "poughkeepsie" & info [ "devices" ] ~docv:"NAMES" ~doc)

let socket_term =
  let doc = "Unix-domain socket path to serve on." in
  Arg.(value & opt string "qcx-serve.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let once_term =
  let doc = "Serve one stdin/stdout round and exit (test mode)." in
  Arg.(value & flag & info [ "once" ] ~doc)

let snapshot_dir_term =
  let doc =
    "Directory of characterized crosstalk snapshots; each device loads \
     DIR/<name>.xtalk.json (as written by qcx_characterize --output), with corrupt \
     files quarantined.  The `bump` op re-reads it."
  in
  Arg.(value & opt (some string) None & info [ "snapshot-dir" ] ~docv:"DIR" ~doc)

let oracle_term =
  let doc = "Serve from ground-truth crosstalk instead of snapshots (demo mode)." in
  Arg.(value & flag & info [ "oracle-xtalk" ] ~doc)

let calibration_dir_term =
  let doc =
    "Enable the calibration data plane (DESIGN.md section 12): the `calibrate` op runs \
     drift detection + Opt-3 incremental re-characterization with canary-gated, \
     crash-consistent epoch promotion, keeping the rollback ring under DIR.  On startup \
     each device's current epoch and ring are recovered from DIR's ring pointers."
  in
  Arg.(value & opt (some string) None & info [ "calibration-dir" ] ~docv:"DIR" ~doc)

let calibration_seed_term =
  let doc = "Seed for the calibrator's deterministic measurement streams." in
  Arg.(value & opt int 0 & info [ "calibration-seed" ] ~docv:"N" ~doc)

let queue_bound_term =
  let doc = "Admission limit per batch; excess requests get an `overloaded` response." in
  Arg.(value & opt int Core.Service.default_config.Core.Service.queue_bound
       & info [ "queue-bound" ] ~docv:"N" ~doc)

let cache_capacity_term =
  let doc = "LRU capacity of the schedule cache." in
  Arg.(value & opt int Core.Service.default_config.Core.Service.cache_capacity
       & info [ "cache-capacity" ] ~docv:"N" ~doc)

let cache_file_term =
  let doc =
    "Persist the schedule cache at FILE with a write-ahead journal at FILE.journal: \
     crash-consistent warm start (snapshot + journal replay) and periodic checkpoints."
  in
  Arg.(value & opt (some string) None & info [ "cache-file" ] ~docv:"FILE" ~doc)

let max_frame_term =
  let doc = "Input frame bound in bytes; longer lines answer `frame_too_large`." in
  Arg.(value & opt int Core.Wire.default_max_frame & info [ "max-frame" ] ~docv:"BYTES" ~doc)

let max_compile_term =
  let doc = "Service-wide cap on any one compile's solver deadline, seconds (0 = none)." in
  Arg.(value & opt float 30.0 & info [ "max-compile-seconds" ] ~docv:"SECONDS" ~doc)

let breaker_threshold_term =
  let doc = "Consecutive compile failures that trip a device's circuit breaker." in
  Arg.(value & opt int Core.Breaker.default_config.Core.Breaker.threshold
       & info [ "breaker-threshold" ] ~docv:"N" ~doc)

let breaker_cooloff_term =
  let doc = "Seconds an open breaker rejects work before the half-open probe." in
  Arg.(value & opt float Core.Breaker.default_config.Core.Breaker.cooloff_seconds
       & info [ "breaker-cooloff" ] ~docv:"SECONDS" ~doc)

let breaker_min_rung_term =
  let doc =
    "Worst acceptable degradation-ladder rung (exact | incumbent | clustered | greedy | \
     parallel); compiles served from below it count as breaker failures."
  in
  Arg.(value & opt string "parallel" & info [ "breaker-min-rung" ] ~docv:"RUNG" ~doc)

let checkpoint_every_term =
  let doc = "Journal appends between cache snapshots." in
  Arg.(value & opt int Core.Service.default_config.Core.Service.checkpoint_every
       & info [ "checkpoint-every" ] ~docv:"N" ~doc)

let write_timeout_term =
  let doc = "Seconds to wait for a slow client to read a response before dropping it." in
  Arg.(value & opt float 10.0 & info [ "write-timeout" ] ~docv:"SECONDS" ~doc)

let shards_term =
  let doc =
    "Size of the serve fleet (DESIGN.md section 14).  With N > 1 and no other fleet flag, \
     fork N shard processes (each owning its cache + journal under --fleet-dir and \
     replicating to its ring peer) and route on --socket."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let shard_index_term =
  let doc =
    "Serve exactly one fleet shard (no router): shard K of --shards, on \
     <socket>.shardK.  Used by the multi-process drill to place each shard in its own \
     crash domain."
  in
  Arg.(value & opt (some int) None & info [ "shard-index" ] ~docv:"K" ~doc)

let router_only_term =
  let doc =
    "Serve only the fleet router on --socket, forwarding to externally managed shard \
     processes at <socket>.shard0..N-1."
  in
  Arg.(value & flag & info [ "router-only" ] ~doc)

let fleet_dir_term =
  let doc = "Root directory of per-shard state (shard-K/cache.json + journal + peer replicas)." in
  Arg.(value & opt string "qcx-fleet" & info [ "fleet-dir" ] ~docv:"DIR" ~doc)

let backlog_term =
  let doc =
    "Listen backlog, and the admission bound on accepted-but-unserved connections: \
     excess connections are shed immediately with a typed `overloaded` response instead \
     of waiting without bound.  Unset keeps the legacy behavior (backlog 16, no shed)."
  in
  Arg.(value & opt (some int) None & info [ "backlog" ] ~docv:"N" ~doc)

let forward_timeout_term =
  let doc = "Router-to-shard response timeout, seconds; a slow shard counts as failed." in
  Arg.(value & opt float 10.0 & info [ "forward-timeout" ] ~docv:"SECONDS" ~doc)

let batch_window_term =
  let doc =
    "Seconds the reactor holds the shared batch open so cold compiles from different \
     connections coalesce into one Pool-parallel dispatch (0 = dispatch as soon as \
     frames are available)."
  in
  Arg.(value & opt float 0.001 & info [ "batch-window" ] ~docv:"SECONDS" ~doc)

let max_inflight_term =
  let doc =
    "Router-to-shard pipelining depth: chunks outstanding per shard connection before \
     the next waits for a response."
  in
  Arg.(value & opt int 4 & info [ "max-inflight" ] ~docv:"N" ~doc)

let lookup_device name =
  match String.lowercase_ascii name with
  | "example6q" | "example" -> Some (Core.Presets.example_6q ())
  | n -> Core.Presets.by_name n

let persist service cache_file =
  match cache_file with
  | None -> ()
  | Some path -> (
    match Core.Service.persistence_journal service with
    | Some _ -> (
      match Core.Service.checkpoint service with
      | Ok () -> Printf.eprintf "cache: checkpointed to %s\n%!" path
      | Error e -> Printf.eprintf "cache: checkpoint failed: %s\n%!" e)
    | None -> (
      match Core.Service.save_cache service ~path with
      | Ok () -> Printf.eprintf "cache: persisted to %s\n%!" path
      | Error e -> Printf.eprintf "cache: failed to persist %s: %s\n%!" path e))

let run devices_csv socket once snapshot_dir oracle calibration_dir calibration_seed jobs
    queue_bound cache_capacity cache_file max_frame max_compile breaker_threshold
    breaker_cooloff breaker_min_rung checkpoint_every write_timeout shards shard_index
    router_only fleet_dir backlog forward_timeout batch_window max_inflight =
  let names =
    String.split_on_char ',' devices_csv
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if names = [] then begin
    Printf.eprintf "no devices given\n";
    exit 2
  end;
  let min_rung =
    match Core.Wire.rung_of_name (String.lowercase_ascii breaker_min_rung) with
    | Ok r -> r
    | Error e ->
      Printf.eprintf "--breaker-min-rung: %s\n" e;
      exit 2
  in
  if max_frame <= 0 || breaker_threshold <= 0 || checkpoint_every <= 0
     || not (breaker_cooloff > 0.0)
  then begin
    Printf.eprintf "--max-frame, --breaker-*, --checkpoint-every must be positive\n";
    exit 2
  end;
  if shards < 1 then begin
    Printf.eprintf "--shards must be at least 1\n";
    exit 2
  end;
  if batch_window < 0.0 || max_inflight < 1 then begin
    Printf.eprintf "--batch-window must be >= 0 and --max-inflight >= 1\n";
    exit 2
  end;
  (match shard_index with
  | Some k when k < 0 || k >= shards ->
    Printf.eprintf "--shard-index %d out of range for --shards %d\n" k shards;
    exit 2
  | _ -> ());
  let fleet_mode = shards > 1 || router_only || shard_index <> None in
  if once && fleet_mode then begin
    Printf.eprintf "--once is single-process; it cannot combine with fleet flags\n";
    exit 2
  end;
  if fleet_mode && calibration_dir <> None then
    Printf.eprintf "calibration data plane is single-process; ignoring --calibration-dir\n%!";
  if fleet_mode && cache_file <> None then
    Printf.eprintf "fleet shards persist under --fleet-dir; ignoring --cache-file\n%!";
  let build_registry () =
    let registry = Core.Registry.create () in
    List.iter
      (fun name ->
        match lookup_device name with
        | None ->
          Printf.eprintf "unknown device %s\n" name;
          exit 2
        | Some device ->
          let entry =
            match snapshot_dir with
            | Some dir ->
              Core.Registry.add_from_paths registry ~id:name ~device
                ~paths:[ Filename.concat dir (name ^ ".xtalk.json") ]
            | None ->
              let xtalk =
                if oracle then Core.Device.ground_truth device else Core.Crosstalk.empty
              in
              Core.Registry.add_static registry ~id:name ~device ~xtalk
          in
          List.iter
            (fun (path, why) -> Printf.eprintf "quarantined %s: %s\n%!" path why)
            entry.Core.Registry.quarantined;
          Printf.eprintf "registered %s (%d qubits) epoch %s%s\n%!" name
            (Core.Device.nqubits device)
            (String.sub entry.Core.Registry.epoch 0 12)
            (match entry.Core.Registry.source with
            | Some p -> " from " ^ p
            | None -> if oracle then " (oracle)" else " (no snapshot; empty crosstalk)"))
      names;
    registry
  in
  let config =
    {
      Core.Service.jobs;
      queue_bound;
      cache_capacity;
      max_compile_seconds = (if max_compile <= 0.0 then None else Some max_compile);
      deadline_grace = Core.Service.default_config.Core.Service.deadline_grace;
      breaker =
        { Core.Breaker.threshold = breaker_threshold; cooloff_seconds = breaker_cooloff; min_rung };
      checkpoint_every;
    }
  in
  let backlog_n = Option.value backlog ~default:16 in
  let max_pending = backlog in
  let write_timeout = if write_timeout > 0.0 then Some write_timeout else None in
  let shard_socket k = Printf.sprintf "%s.shard%d" socket k in
  (* A disconnecting client raises SIGPIPE on write; that must never
     kill the daemon. *)
  (match Sys.set_signal Sys.sigpipe Sys.Signal_ignore with
  | () -> ()
  | exception Invalid_argument _ -> ());
  let install_drain on_drain =
    let draining = ref false in
    let drain _ =
      draining := true;
      on_drain ()
    in
    (match Sys.set_signal Sys.sigterm (Sys.Signal_handle drain) with
    | () -> ()
    | exception Invalid_argument _ -> ());
    draining
  in
  (* One fleet shard: its own Service + journal under the fleet dir,
     replicating every insert to its ring peer.  An empty shard dir
     with a surviving peer replica rebuilds from it before binding the
     socket, so a rebuilding shard is simply unreachable (the router
     keeps failing over) until its cache is warm. *)
  let serve_shard k =
    match
      Core.Shard.create ~config ~root:fleet_dir ~index:k ~nshards:shards
        ~make_registry:build_registry ()
    with
    | Error e ->
      Printf.eprintf "shard %d: %s\n%!" k e;
      2
    | Ok sh -> (
      let b = Core.Shard.boot sh in
      Printf.eprintf
        "shard %d/%d: restored %d snapshot + %d journal entries%s%s; replicating to %s\n%!" k
        shards b.Core.Shard.snapshot_entries b.Core.Shard.journal_entries
        (if b.Core.Shard.rebuilt_from_replica > 0 then
           Printf.sprintf " (rebuilt %d entries from peer replica%s)"
             b.Core.Shard.rebuilt_from_replica
             (if b.Core.Shard.torn_replica then "; torn tail truncated" else "")
         else "")
        (if b.Core.Shard.torn_journal then " (torn journal tail)" else "")
        (Core.Shard.own_replica_path sh);
      let service = Core.Shard.service sh in
      let draining = install_drain (fun () -> Core.Service.set_draining service true) in
      let path = shard_socket k in
      Printf.eprintf "shard %d serving on %s (jobs %d)\n%!" k path jobs;
      match
        Core.Server.serve_socket service ~path ~max_frame ?write_timeout
          ~backlog:backlog_n ?max_pending ~batch_window ~stop:(fun () -> !draining)
      with
      | () ->
        Core.Shard.close sh;
        Printf.eprintf "shard %d: %s; exiting\n%!" k
          (if !draining then "drained after SIGTERM" else "shutdown requested");
        0
      | exception Unix.Unix_error (err, fn, arg) ->
        Core.Shard.close sh;
        Printf.eprintf "shard %d: fatal socket error: %s (%s %s)\n%!" k
          (Unix.error_message err) fn arg;
        3)
  in
  let serve_router () =
    let probe = build_registry () in
    let width d =
      Option.map
        (fun e -> Core.Device.nqubits e.Core.Registry.device)
        (Core.Registry.find probe d)
    in
    let transport =
      Core.Router.socket_transport ~timeout:forward_timeout ~max_inflight
        ~socket_for:shard_socket ()
    in
    let router = Core.Router.create ~width ~nshards:shards ~transport () in
    let metrics = Core.Server.create_metrics () in
    Core.Router.set_serving router (Some (fun () -> Core.Server.metrics_json metrics));
    let draining = install_drain (fun () -> ()) in
    Printf.eprintf "router serving on %s over %d shard(s)\n%!" socket shards;
    match
      Core.Server.serve_socket_with ~max_frame ?write_timeout ~backlog:backlog_n
        ?max_pending ~batch_window ~metrics
        ~handle:(Core.Router.handle_frames ~max_frame router)
        ~path:socket
        ~stop:(fun () -> !draining)
        ()
    with
    | () ->
      Printf.eprintf "router: %s; exiting\n%!"
        (if !draining then "drained after SIGTERM" else "shutdown requested");
      0
    | exception Unix.Unix_error (err, fn, arg) ->
      Printf.eprintf "router: fatal socket error: %s (%s %s)\n%!" (Unix.error_message err)
        fn arg;
      3
  in
  let serve_fleet_parent () =
    (* Children are forked before this process touches registries or
       services, so no domain has ever been spawned — the only state
       they inherit is the parsed CLI. *)
    let pids =
      List.init shards (fun k ->
          match Unix.fork () with 0 -> exit (serve_shard k) | pid -> pid)
    in
    let deadline = Unix.gettimeofday () +. 20.0 in
    let rec await k =
      if k >= shards then ()
      else if Sys.file_exists (shard_socket k) then await (k + 1)
      else if Unix.gettimeofday () > deadline then
        Printf.eprintf "warning: shard %d socket did not appear; routing around it\n%!" k
      else begin
        Unix.sleepf 0.05;
        await k
      end
    in
    await 0;
    let code = serve_router () in
    List.iter (fun pid -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()) pids;
    List.iter
      (fun pid -> try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      pids;
    code
  in
  match shard_index with
  | Some k -> serve_shard k
  | None ->
    if router_only then serve_router ()
    else if shards > 1 then serve_fleet_parent ()
    else begin
      let registry = build_registry () in
      let service = Core.Service.create ~config registry in
      (match calibration_dir with
      | None -> ()
      | Some dir ->
        let calibrator =
          Core.Calibrator.create
            ~config:
              {
                Core.Calibrator.default_config with
                Core.Calibrator.jobs;
                seed = calibration_seed;
              }
            ~dir registry
        in
        let recovered = Core.Calibrator.recover calibrator in
        List.iter
          (fun r ->
            Printf.eprintf "calibration: restored %s epoch %s (ring depth %d)\n%!"
              r.Core.Calibrator.id
              (String.sub r.Core.Calibrator.epoch 0
                 (min 12 (String.length r.Core.Calibrator.epoch)))
              r.Core.Calibrator.ring)
          recovered;
        Core.Service.set_calibrator service (Some calibrator);
        Printf.eprintf "calibration data plane enabled under %s\n%!" dir);
      (match cache_file with
      | None -> ()
      | Some path -> (
        match Core.Service.recover service ~cache_file:path () with
        | Ok r ->
          Printf.eprintf "cache: restored %d snapshot + %d journal entries%s\n%!"
            r.Core.Service.snapshot_entries r.Core.Service.journal_entries
            (if r.Core.Service.torn then
               Printf.sprintf " (torn journal tail; %d record(s) dropped)"
                 r.Core.Service.journal_dropped
             else "")
        | Error e ->
          Printf.eprintf "cache: recovery failed (%s); serving without persistence\n%!" e));
      if once then begin
        Core.Server.serve_channels service stdin stdout;
        persist service cache_file;
        0
      end
      else begin
        let draining = install_drain (fun () -> Core.Service.set_draining service true) in
        Printf.eprintf "serving on %s (jobs %d, queue bound %d, cache %d, frame %dB)\n%!"
          socket jobs queue_bound cache_capacity max_frame;
        match
          Core.Server.serve_socket service ~path:socket ~max_frame ?write_timeout
            ~backlog:backlog_n ?max_pending ~batch_window
            ~stop:(fun () -> !draining)
        with
        | () ->
          Printf.eprintf "%s; exiting\n%!"
            (if !draining then "drained after SIGTERM" else "shutdown requested");
          persist service cache_file;
          0
        | exception Unix.Unix_error (err, fn, arg) ->
          Printf.eprintf "fatal socket error: %s (%s %s)\n%!" (Unix.error_message err) fn
            arg;
          persist service cache_file;
          3
      end
    end

let cmd =
  let info =
    Cmd.info "qcx_serve" ~doc:"Serve crosstalk-aware compilations over a Unix socket"
  in
  Cmd.v info
    Term.(
      const run $ devices_term $ socket_term $ once_term $ snapshot_dir_term $ oracle_term
      $ calibration_dir_term $ calibration_seed_term
      $ Common.jobs_term $ queue_bound_term $ cache_capacity_term $ cache_file_term
      $ max_frame_term $ max_compile_term $ breaker_threshold_term $ breaker_cooloff_term
      $ breaker_min_rung_term $ checkpoint_every_term $ write_timeout_term $ shards_term
      $ shard_index_term $ router_only_term $ fleet_dir_term $ backlog_term
      $ forward_timeout_term $ batch_window_term $ max_inflight_term)

let () = exit (Cmd.eval' cmd)
