(* CLI: the long-running compilation service.

     dune exec bin/qcx_serve.exe -- --socket /tmp/qcx.sock \
       --devices poughkeepsie,example6q --oracle-xtalk --jobs 4

   Speaks newline-delimited JSON (one request per line, one response
   per line; see DESIGN.md sections 8-9).  `--once` reads requests from
   stdin and answers on stdout — the test and CI mode:

     echo '{"op":"ping","id":"p1"}' | dune exec bin/qcx_serve.exe -- --once

   Exit codes: 0 after a clean drain (SIGTERM) or a `shutdown` request,
   2 for startup/usage errors, 3 for a fatal socket error. *)

open Cmdliner

let devices_term =
  let doc =
    "Comma-separated device list: poughkeepsie | johannesburg | boeblingen | example6q, \
     plus generated models heavy-hex-127 | heavy-hex-433 | grid-RxC."
  in
  Arg.(value & opt string "poughkeepsie" & info [ "devices" ] ~docv:"NAMES" ~doc)

let socket_term =
  let doc = "Unix-domain socket path to serve on." in
  Arg.(value & opt string "qcx-serve.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let once_term =
  let doc = "Serve one stdin/stdout round and exit (test mode)." in
  Arg.(value & flag & info [ "once" ] ~doc)

let snapshot_dir_term =
  let doc =
    "Directory of characterized crosstalk snapshots; each device loads \
     DIR/<name>.xtalk.json (as written by qcx_characterize --output), with corrupt \
     files quarantined.  The `bump` op re-reads it."
  in
  Arg.(value & opt (some string) None & info [ "snapshot-dir" ] ~docv:"DIR" ~doc)

let oracle_term =
  let doc = "Serve from ground-truth crosstalk instead of snapshots (demo mode)." in
  Arg.(value & flag & info [ "oracle-xtalk" ] ~doc)

let calibration_dir_term =
  let doc =
    "Enable the calibration data plane (DESIGN.md section 12): the `calibrate` op runs \
     drift detection + Opt-3 incremental re-characterization with canary-gated, \
     crash-consistent epoch promotion, keeping the rollback ring under DIR.  On startup \
     each device's current epoch and ring are recovered from DIR's ring pointers."
  in
  Arg.(value & opt (some string) None & info [ "calibration-dir" ] ~docv:"DIR" ~doc)

let calibration_seed_term =
  let doc = "Seed for the calibrator's deterministic measurement streams." in
  Arg.(value & opt int 0 & info [ "calibration-seed" ] ~docv:"N" ~doc)

let queue_bound_term =
  let doc = "Admission limit per batch; excess requests get an `overloaded` response." in
  Arg.(value & opt int Core.Service.default_config.Core.Service.queue_bound
       & info [ "queue-bound" ] ~docv:"N" ~doc)

let cache_capacity_term =
  let doc = "LRU capacity of the schedule cache." in
  Arg.(value & opt int Core.Service.default_config.Core.Service.cache_capacity
       & info [ "cache-capacity" ] ~docv:"N" ~doc)

let cache_file_term =
  let doc =
    "Persist the schedule cache at FILE with a write-ahead journal at FILE.journal: \
     crash-consistent warm start (snapshot + journal replay) and periodic checkpoints."
  in
  Arg.(value & opt (some string) None & info [ "cache-file" ] ~docv:"FILE" ~doc)

let max_frame_term =
  let doc = "Input frame bound in bytes; longer lines answer `frame_too_large`." in
  Arg.(value & opt int Core.Wire.default_max_frame & info [ "max-frame" ] ~docv:"BYTES" ~doc)

let max_compile_term =
  let doc = "Service-wide cap on any one compile's solver deadline, seconds (0 = none)." in
  Arg.(value & opt float 30.0 & info [ "max-compile-seconds" ] ~docv:"SECONDS" ~doc)

let breaker_threshold_term =
  let doc = "Consecutive compile failures that trip a device's circuit breaker." in
  Arg.(value & opt int Core.Breaker.default_config.Core.Breaker.threshold
       & info [ "breaker-threshold" ] ~docv:"N" ~doc)

let breaker_cooloff_term =
  let doc = "Seconds an open breaker rejects work before the half-open probe." in
  Arg.(value & opt float Core.Breaker.default_config.Core.Breaker.cooloff_seconds
       & info [ "breaker-cooloff" ] ~docv:"SECONDS" ~doc)

let breaker_min_rung_term =
  let doc =
    "Worst acceptable degradation-ladder rung (exact | incumbent | clustered | greedy | \
     parallel); compiles served from below it count as breaker failures."
  in
  Arg.(value & opt string "parallel" & info [ "breaker-min-rung" ] ~docv:"RUNG" ~doc)

let checkpoint_every_term =
  let doc = "Journal appends between cache snapshots." in
  Arg.(value & opt int Core.Service.default_config.Core.Service.checkpoint_every
       & info [ "checkpoint-every" ] ~docv:"N" ~doc)

let write_timeout_term =
  let doc = "Seconds to wait for a slow client to read a response before dropping it." in
  Arg.(value & opt float 10.0 & info [ "write-timeout" ] ~docv:"SECONDS" ~doc)

let lookup_device name =
  match String.lowercase_ascii name with
  | "example6q" | "example" -> Some (Core.Presets.example_6q ())
  | n -> Core.Presets.by_name n

let persist service cache_file =
  match cache_file with
  | None -> ()
  | Some path -> (
    match Core.Service.persistence_journal service with
    | Some _ -> (
      match Core.Service.checkpoint service with
      | Ok () -> Printf.eprintf "cache: checkpointed to %s\n%!" path
      | Error e -> Printf.eprintf "cache: checkpoint failed: %s\n%!" e)
    | None -> (
      match Core.Service.save_cache service ~path with
      | Ok () -> Printf.eprintf "cache: persisted to %s\n%!" path
      | Error e -> Printf.eprintf "cache: failed to persist %s: %s\n%!" path e))

let run devices_csv socket once snapshot_dir oracle calibration_dir calibration_seed jobs
    queue_bound cache_capacity cache_file max_frame max_compile breaker_threshold
    breaker_cooloff breaker_min_rung checkpoint_every write_timeout =
  let names =
    String.split_on_char ',' devices_csv
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if names = [] then begin
    Printf.eprintf "no devices given\n";
    exit 2
  end;
  let min_rung =
    match Core.Wire.rung_of_name (String.lowercase_ascii breaker_min_rung) with
    | Ok r -> r
    | Error e ->
      Printf.eprintf "--breaker-min-rung: %s\n" e;
      exit 2
  in
  if max_frame <= 0 || breaker_threshold <= 0 || checkpoint_every <= 0
     || not (breaker_cooloff > 0.0)
  then begin
    Printf.eprintf "--max-frame, --breaker-*, --checkpoint-every must be positive\n";
    exit 2
  end;
  let registry = Core.Registry.create () in
  List.iter
    (fun name ->
      match lookup_device name with
      | None ->
        Printf.eprintf "unknown device %s\n" name;
        exit 2
      | Some device ->
        let entry =
          match snapshot_dir with
          | Some dir ->
            Core.Registry.add_from_paths registry ~id:name ~device
              ~paths:[ Filename.concat dir (name ^ ".xtalk.json") ]
          | None ->
            let xtalk =
              if oracle then Core.Device.ground_truth device else Core.Crosstalk.empty
            in
            Core.Registry.add_static registry ~id:name ~device ~xtalk
        in
        List.iter
          (fun (path, why) -> Printf.eprintf "quarantined %s: %s\n%!" path why)
          entry.Core.Registry.quarantined;
        Printf.eprintf "registered %s (%d qubits) epoch %s%s\n%!" name
          (Core.Device.nqubits device)
          (String.sub entry.Core.Registry.epoch 0 12)
          (match entry.Core.Registry.source with
          | Some p -> " from " ^ p
          | None -> if oracle then " (oracle)" else " (no snapshot; empty crosstalk)"))
    names;
  let config =
    {
      Core.Service.jobs;
      queue_bound;
      cache_capacity;
      max_compile_seconds = (if max_compile <= 0.0 then None else Some max_compile);
      deadline_grace = Core.Service.default_config.Core.Service.deadline_grace;
      breaker =
        { Core.Breaker.threshold = breaker_threshold; cooloff_seconds = breaker_cooloff; min_rung };
      checkpoint_every;
    }
  in
  let service = Core.Service.create ~config registry in
  (match calibration_dir with
  | None -> ()
  | Some dir ->
    let calibrator =
      Core.Calibrator.create
        ~config:
          { Core.Calibrator.default_config with Core.Calibrator.jobs; seed = calibration_seed }
        ~dir registry
    in
    let recovered = Core.Calibrator.recover calibrator in
    List.iter
      (fun r ->
        Printf.eprintf "calibration: restored %s epoch %s (ring depth %d)\n%!"
          r.Core.Calibrator.id
          (String.sub r.Core.Calibrator.epoch 0 (min 12 (String.length r.Core.Calibrator.epoch)))
          r.Core.Calibrator.ring)
      recovered;
    Core.Service.set_calibrator service (Some calibrator);
    Printf.eprintf "calibration data plane enabled under %s\n%!" dir);
  (match cache_file with
  | None -> ()
  | Some path -> (
    match Core.Service.recover service ~cache_file:path () with
    | Ok r ->
      Printf.eprintf "cache: restored %d snapshot + %d journal entries%s\n%!"
        r.Core.Service.snapshot_entries r.Core.Service.journal_entries
        (if r.Core.Service.torn then
           Printf.sprintf " (torn journal tail; %d record(s) dropped)"
             r.Core.Service.journal_dropped
         else "")
    | Error e ->
      Printf.eprintf "cache: recovery failed (%s); serving without persistence\n%!" e));
  if once then begin
    Core.Server.serve_channels service stdin stdout;
    persist service cache_file;
    0
  end
  else begin
    (* A disconnecting client raises SIGPIPE on write; that must never
       kill the daemon. *)
    (match Sys.set_signal Sys.sigpipe Sys.Signal_ignore with
    | () -> ()
    | exception Invalid_argument _ -> ());
    let draining = ref false in
    let drain _ =
      draining := true;
      Core.Service.set_draining service true
    in
    (match Sys.set_signal Sys.sigterm (Sys.Signal_handle drain) with
    | () -> ()
    | exception Invalid_argument _ -> ());
    Printf.eprintf "serving on %s (jobs %d, queue bound %d, cache %d, frame %dB)\n%!"
      socket jobs queue_bound cache_capacity max_frame;
    match
      Core.Server.serve_socket service ~path:socket ~max_frame
        ?write_timeout:(if write_timeout > 0.0 then Some write_timeout else None)
        ~stop:(fun () -> !draining)
    with
    | () ->
      Printf.eprintf "%s; exiting\n%!"
        (if !draining then "drained after SIGTERM" else "shutdown requested");
      persist service cache_file;
      0
    | exception Unix.Unix_error (err, fn, arg) ->
      Printf.eprintf "fatal socket error: %s (%s %s)\n%!" (Unix.error_message err) fn arg;
      persist service cache_file;
      3
  end

let cmd =
  let info =
    Cmd.info "qcx_serve" ~doc:"Serve crosstalk-aware compilations over a Unix socket"
  in
  Cmd.v info
    Term.(
      const run $ devices_term $ socket_term $ once_term $ snapshot_dir_term $ oracle_term
      $ calibration_dir_term $ calibration_seed_term
      $ Common.jobs_term $ queue_bound_term $ cache_capacity_term $ cache_file_term
      $ max_frame_term $ max_compile_term $ breaker_threshold_term $ breaker_cooloff_term
      $ breaker_min_rung_term $ checkpoint_every_term $ write_timeout_term)

let () = exit (Cmd.eval' cmd)
