(* CLI: the long-running compilation service.

     dune exec bin/qcx_serve.exe -- --socket /tmp/qcx.sock \
       --devices poughkeepsie,example6q --oracle-xtalk --jobs 4

   Speaks newline-delimited JSON (one request per line, one response
   per line; see DESIGN.md section 8).  `--once` reads requests from
   stdin and answers on stdout — the test and CI mode:

     echo '{"op":"ping","id":"p1"}' | dune exec bin/qcx_serve.exe -- --once *)

open Cmdliner

let devices_term =
  let doc =
    "Comma-separated device list: poughkeepsie | johannesburg | boeblingen | example6q."
  in
  Arg.(value & opt string "poughkeepsie" & info [ "devices" ] ~docv:"NAMES" ~doc)

let socket_term =
  let doc = "Unix-domain socket path to serve on." in
  Arg.(value & opt string "qcx-serve.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let once_term =
  let doc = "Serve one stdin/stdout round and exit (test mode)." in
  Arg.(value & flag & info [ "once" ] ~doc)

let snapshot_dir_term =
  let doc =
    "Directory of characterized crosstalk snapshots; each device loads \
     DIR/<name>.xtalk.json (as written by qcx_characterize --output), with corrupt \
     files quarantined.  The `bump` op re-reads it."
  in
  Arg.(value & opt (some string) None & info [ "snapshot-dir" ] ~docv:"DIR" ~doc)

let oracle_term =
  let doc = "Serve from ground-truth crosstalk instead of snapshots (demo mode)." in
  Arg.(value & flag & info [ "oracle-xtalk" ] ~doc)

let queue_bound_term =
  let doc = "Admission limit per batch; excess requests get an `overloaded` response." in
  Arg.(value & opt int Core.Service.default_config.Core.Service.queue_bound
       & info [ "queue-bound" ] ~docv:"N" ~doc)

let cache_capacity_term =
  let doc = "LRU capacity of the schedule cache." in
  Arg.(value & opt int Core.Service.default_config.Core.Service.cache_capacity
       & info [ "cache-capacity" ] ~docv:"N" ~doc)

let cache_file_term =
  let doc = "Warm-start the schedule cache from FILE and persist it back on shutdown." in
  Arg.(value & opt (some string) None & info [ "cache-file" ] ~docv:"FILE" ~doc)

let lookup_device name =
  match String.lowercase_ascii name with
  | "example6q" | "example" -> Some (Core.Presets.example_6q ())
  | n -> Core.Presets.by_name n

let run devices_csv socket once snapshot_dir oracle jobs queue_bound cache_capacity
    cache_file =
  let names =
    String.split_on_char ',' devices_csv
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if names = [] then begin
    Printf.eprintf "no devices given\n";
    exit 2
  end;
  let registry = Core.Registry.create () in
  List.iter
    (fun name ->
      match lookup_device name with
      | None ->
        Printf.eprintf "unknown device %s\n" name;
        exit 2
      | Some device ->
        let entry =
          match snapshot_dir with
          | Some dir ->
            Core.Registry.add_from_paths registry ~id:name ~device
              ~paths:[ Filename.concat dir (name ^ ".xtalk.json") ]
          | None ->
            let xtalk =
              if oracle then Core.Device.ground_truth device else Core.Crosstalk.empty
            in
            Core.Registry.add_static registry ~id:name ~device ~xtalk
        in
        List.iter
          (fun (path, why) -> Printf.eprintf "quarantined %s: %s\n%!" path why)
          entry.Core.Registry.quarantined;
        Printf.eprintf "registered %s (%d qubits) epoch %s%s\n%!" name
          (Core.Device.nqubits device)
          (String.sub entry.Core.Registry.epoch 0 12)
          (match entry.Core.Registry.source with
          | Some p -> " from " ^ p
          | None -> if oracle then " (oracle)" else " (no snapshot; empty crosstalk)"))
    names;
  let config =
    {
      Core.Service.jobs;
      queue_bound;
      cache_capacity;
    }
  in
  let service = Core.Service.create ~config registry in
  (match cache_file with
  | Some path when Sys.file_exists path -> (
    match Core.Service.load_cache service ~path with
    | Ok n -> Printf.eprintf "cache: warm-started %d entries from %s\n%!" n path
    | Error e -> Printf.eprintf "cache: ignoring %s: %s\n%!" path e)
  | _ -> ());
  if once then Core.Server.serve_channels service stdin stdout
  else begin
    Printf.eprintf "serving on %s (jobs %d, queue bound %d, cache %d)\n%!" socket jobs
      queue_bound cache_capacity;
    Core.Server.serve_socket service ~path:socket;
    Printf.eprintf "shutdown requested; exiting\n%!"
  end;
  match cache_file with
  | Some path -> (
    match Core.Service.save_cache service ~path with
    | Ok () -> Printf.eprintf "cache: persisted to %s\n%!" path
    | Error e -> Printf.eprintf "cache: failed to persist %s: %s\n%!" path e)
  | None -> ()

let cmd =
  let info =
    Cmd.info "qcx_serve" ~doc:"Serve crosstalk-aware compilations over a Unix socket"
  in
  Cmd.v info
    Term.(
      const run $ devices_term $ socket_term $ once_term $ snapshot_dir_term $ oracle_term
      $ Common.jobs_term $ queue_bound_term $ cache_capacity_term $ cache_file_term)

let () = exit (Cmd.eval cmd)
