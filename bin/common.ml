(* Shared cmdliner fragments for the CLI tools. *)

open Cmdliner

let device_term =
  let doc =
    "Target device: poughkeepsie | johannesburg | boeblingen, or a generated model: \
     heavy-hex-127 | heavy-hex-433 | grid-RxC (e.g. grid-8x8)."
  in
  let arg = Arg.(value & opt string "poughkeepsie" & info [ "d"; "device" ] ~docv:"NAME" ~doc) in
  let parse name =
    match Core.Presets.by_name name with
    | Some d -> d
    | None ->
      Printf.eprintf "unknown device %s\n" name;
      exit 2
  in
  Term.(const parse $ arg)

let seed_term =
  let doc = "Random seed (experiments are deterministic per seed)." in
  Arg.(value & opt int 2020 & info [ "seed" ] ~docv:"N" ~doc)

let threshold_term =
  let doc = "Conditional/independent ratio above which a pair is high-crosstalk." in
  Arg.(value & opt float 3.0 & info [ "threshold" ] ~docv:"R" ~doc)

let jobs_term =
  let doc =
    "Worker domains for the Monte-Carlo executors (0 = one per core).  Results are \
     bit-identical for every value."
  in
  let arg = Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc) in
  let resolve n = if n <= 0 then Core.Pool.default_jobs () else n in
  Term.(const resolve $ arg)

let characterize device ~rng ~jobs ~params =
  let plan = Core.Policy.plan ~rng device Core.Policy.One_hop_binpacked in
  (Core.Policy.characterize ~params ~jobs ~rng device plan).Core.Policy.xtalk
