(* CLI: compile a workload with one of the three schedulers and show
   the result.

     dune exec bin/qcx_schedule.exe -- --src 0 --dst 13 --scheduler xtalk --omega 0.5

   The crosstalk data comes from a quick characterization pass (the
   honest pipeline), or from the device's ground truth with
   --oracle-xtalk (for experimentation). *)

open Cmdliner

let scheduler_term =
  let doc = "Scheduler: par | serial | xtalk." in
  Arg.(value & opt string "xtalk" & info [ "s"; "scheduler" ] ~docv:"ALGO" ~doc)

let omega_term =
  let doc = "Crosstalk weight factor (xtalk scheduler only)." in
  Arg.(value & opt float 0.5 & info [ "omega" ] ~docv:"W" ~doc)

let src_term = Arg.(value & opt int 0 & info [ "src" ] ~docv:"QUBIT" ~doc:"SWAP path source.")
let dst_term = Arg.(value & opt int 13 & info [ "dst" ] ~docv:"QUBIT" ~doc:"SWAP path target.")

let xtalk_file_term =
  let doc = "Load characterized conditional rates from FILE (JSON, as written by qcx_characterize --output) instead of characterizing." in
  Arg.(value & opt (some string) None & info [ "xtalk" ] ~docv:"FILE" ~doc)

let oracle_term =
  let doc = "Use ground-truth crosstalk instead of running characterization." in
  Arg.(value & flag & info [ "oracle-xtalk" ] ~doc)

let emit_qasm_term =
  let doc = "Print the barrier-enforced OpenQASM output." in
  Arg.(value & flag & info [ "qasm" ] ~doc)

let deadline_term =
  let doc =
    "Wall-clock compile deadline in seconds; on expiry the degradation ladder serves \
     the request (best incumbent, clusters, greedy, parallel)."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let ladder_term =
  let doc =
    "Degradation-ladder entry rung (xtalk scheduler only): exact | incumbent | clustered \
     | windowed | greedy | parallel.  Lower rungs skip the more expensive solves; \
     'windowed' forces the hierarchical window scheduler regardless of circuit size."
  in
  Arg.(value & opt (some string) None & info [ "ladder" ] ~docv:"RUNG" ~doc)

let window_term =
  let doc =
    "Window size in gates for the windowed rung (xtalk scheduler only).  Circuits \
     longer than twice this bound are windowed automatically; default 160."
  in
  Arg.(value & opt (some int) None & info [ "window" ] ~docv:"GATES" ~doc)

let dd_term =
  let doc =
    "Pad the schedule's idle windows with a dynamical-decoupling pulse train after \
     scheduling: xy4 | x2 | cpmg.  Original gate start times are untouched; with \
     --cache-dir the padding runs inside the serving layer and becomes part of the \
     cache key."
  in
  Arg.(value & opt (some string) None & info [ "dd" ] ~docv:"SEQ" ~doc)

let cache_dir_term =
  let doc =
    "Persist the content-addressed schedule cache in DIR (xtalk scheduler only): \
     repeated compiles of the same circuit, crosstalk epoch and knobs are served \
     from DIR/schedule-cache.json instead of re-solving; cache and registry stats \
     are printed after the compile."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

(* Compile through the serving layer's persisted cache: warm-start
   from DIR/schedule-cache.json, serve or solve, persist back, and
   report the cache/registry counters. *)
let compile_cached ~dir device ~xtalk ~omega ~deadline ~ladder_start ~window ~mitigation
    circuit =
  let registry = Core.Registry.create () in
  let id = Core.Device.name device in
  ignore (Core.Registry.add_static registry ~id ~device ~xtalk);
  let service = Core.Service.create registry in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let cache_path = Filename.concat dir "schedule-cache.json" in
  if Sys.file_exists cache_path then begin
    match Core.Service.load_cache service ~path:cache_path with
    | Ok n -> Printf.printf "cache: warm-started %d entries from %s\n" n cache_path
    | Error e -> Printf.printf "cache: ignoring damaged %s: %s\n" cache_path e
  end;
  let params =
    let base =
      { Core.Wire.default_params with Core.Wire.omega; deadline; window; mitigation }
    in
    match ladder_start with
    | None -> base
    | Some rung -> { base with Core.Wire.ladder_start = rung }
  in
  match Core.Service.compile service ~device:id ~params circuit with
  | Error e ->
    Printf.eprintf "compile failed: %s\n" e;
    exit 1
  | Ok o ->
    (match Core.Service.save_cache service ~path:cache_path with
    | Ok () -> ()
    | Error e -> Printf.eprintf "cache: failed to persist %s: %s\n" cache_path e);
    let c = Core.Cache.counters (Core.Service.cache service) in
    Printf.printf "cache: %s (key %s..., epoch %s...)\n"
      (if o.Core.Service.cached then "HIT" else "miss -> compiled and stored")
      (String.sub o.Core.Service.key 0 12)
      (String.sub o.Core.Service.epoch 0 12);
    Printf.printf "cache: hits %d, misses %d, evictions %d, size %d/%d\n" c.Core.Cache.hits
      c.Core.Cache.misses c.Core.Cache.evictions c.Core.Cache.size c.Core.Cache.capacity;
    (o.Core.Service.schedule, Some o.Core.Service.stats)

let run device seed jobs src dst scheduler omega oracle xtalk_file deadline ladder window
    dd cache_dir emit_qasm =
  let ladder_start =
    match ladder with
    | None -> None
    | Some name -> (
      match Core.Wire.rung_of_name name with
      | Ok rung -> Some rung
      | Error e ->
        Printf.eprintf "--ladder: %s\n" e;
        exit 2)
  in
  let dd_sequence =
    match dd with
    | None -> None
    | Some name -> (
      match Core.Dd.sequence_of_name name with
      | Ok seq -> Some seq
      | Error e ->
        Printf.eprintf "--dd: %s\n" e;
        exit 2)
  in
  let rng = Core.Rng.create seed in
  let bench = Core.Swap_circuits.build device ~src ~dst in
  let circuit = Core.Circuit.measure_all bench.Core.Swap_circuits.circuit in
  let xtalk =
    match xtalk_file with
    | Some path -> (
      match Core.Store.load_crosstalk ~topology:(Core.Device.topology device) ~path () with
      | Ok x ->
        Printf.printf "loaded crosstalk data from %s\n" path;
        x
      | Error e ->
        Printf.eprintf "failed to load %s: %s\n" path e;
        exit 1)
    | None ->
      if oracle then Core.Device.ground_truth device
      else begin
        Printf.printf "characterizing (1-hop + bin-packing)...\n%!";
        Common.characterize device ~rng ~jobs ~params:Core.Rb.default_params
      end
  in
  let sched_kind =
    match scheduler with
    | "par" -> Core.Par_sched
    | "serial" -> Core.Serial_sched
    | "xtalk" -> Core.Xtalk_sched omega
    | other ->
      Printf.eprintf "unknown scheduler %s\n" other;
      exit 2
  in
  let sched, stats =
    match (cache_dir, sched_kind) with
    | Some dir, Core.Xtalk_sched omega ->
      compile_cached ~dir device ~xtalk ~omega ~deadline ~ladder_start ~window
        ~mitigation:dd_sequence circuit
    | _ ->
      let sched, stats =
        if cache_dir <> None then
          Printf.printf "cache: only the xtalk scheduler is cached; compiling directly\n";
        Core.Pipeline.compile ~scheduler:sched_kind ?deadline_seconds:deadline ?ladder_start
          ?window_gates:window ~jobs device ~xtalk circuit
      in
      (match dd_sequence with
      | None -> (sched, stats)
      | Some sequence ->
        let padded, _protection, d = Core.Dd.pad ~sequence ~device sched in
        Printf.printf "dd: %s padded %d/%d idle windows with %d pulses (%.0f of %.0f ns idle)\n"
          (Core.Dd.sequence_name sequence) d.Core.Dd.windows_padded d.Core.Dd.windows_total
          d.Core.Dd.pulses d.Core.Dd.idle_protected d.Core.Dd.idle_total;
        (padded, stats))
  in
  Printf.printf "device: %s\n" (Core.Device.name device);
  Printf.printf "workload: SWAP path %d -> %d (%d gates, %d CNOTs)\n" src dst
    (Core.Circuit.length (Core.Schedule.circuit sched))
    (Core.Circuit.two_qubit_count (Core.Schedule.circuit sched));
  Printf.printf "scheduler: %s\n" (Core.scheduler_name sched_kind);
  (match stats with
  | Some s ->
    Printf.printf
      "solver: %d interfering pairs, %d nodes, optimal=%b, rung=%s%s, %.3f s wall (%.3f s cpu)\n"
      s.Core.Xtalk_sched.pairs s.Core.Xtalk_sched.nodes s.Core.Xtalk_sched.optimal
      (Core.Xtalk_sched.rung_name s.Core.Xtalk_sched.rung)
      (if s.Core.Xtalk_sched.windows > 0 then
         Printf.sprintf " (%d windows)" s.Core.Xtalk_sched.windows
       else "")
      s.Core.Xtalk_sched.solve_seconds s.Core.Xtalk_sched.cpu_seconds;
    Printf.printf "idle: %.0f ns total across qubits (longest window %.0f ns)\n"
      s.Core.Xtalk_sched.idle_total s.Core.Xtalk_sched.idle_max
  | None ->
    let idle_total, idle_max = Core.Idle.summarize sched in
    Printf.printf "idle: %.0f ns total across qubits (longest window %.0f ns)\n" idle_total
      idle_max);
  Printf.printf "program duration: %.0f ns\n" (Core.Evaluate.duration sched);
  let oracle_view = Core.Evaluate.oracle device sched in
  Printf.printf "oracle expected error: %.4f\n" oracle_view.Core.Evaluate.error;
  Format.printf "%a@?" Core.Schedule.pp_timeline sched;
  if emit_qasm then begin
    let dag = Core.Dag.of_circuit (Core.Schedule.circuit sched) in
    let instances =
      Core.Encoding.interfering_instances ~device ~xtalk ~threshold:3.0 ~dag
    in
    let serialized = Core.Barriers.serialized_pairs sched ~pairs:instances in
    print_string (Core.Qasm.of_circuit (Core.Barriers.insert sched ~serialized))
  end

let cmd =
  let info = Cmd.info "qcx_schedule" ~doc:"Compile a SWAP workload with a chosen scheduler" in
  Cmd.v info
    Term.(
      const run $ Common.device_term $ Common.seed_term $ Common.jobs_term $ src_term $ dst_term
      $ scheduler_term $ omega_term $ oracle_term $ xtalk_file_term $ deadline_term
      $ ladder_term $ window_term $ dd_term $ cache_dir_term $ emit_qasm_term)

let () = exit (Cmd.eval cmd)
