(* Unit and property tests for Qcx_util: Rng, Stats, Fit, Tablefmt. *)

module Rng = Core.Rng
module Stats = Core.Stats
module Fit = Core.Fit

let check_float = Alcotest.(check (float 1e-9))
let check_close tol msg a b = Alcotest.(check (float tol)) msg a b

(* ---- Rng ---- *)

let rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" false (Rng.int64 a = Rng.int64 b)

let rng_split_independent () =
  let parent = Rng.create 7 in
  let child1 = Rng.split parent in
  let child2 = Rng.split parent in
  Alcotest.(check bool) "children differ" false (Rng.int64 child1 = Rng.int64 child2)

let rng_copy () =
  let a = Rng.create 9 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let rng_split_nth_matches_splits () =
  (* split_nth i = the (i+1)-th consecutive split, without advancing. *)
  let base = Rng.create 42 in
  let walker = Rng.copy base in
  for i = 0 to 19 do
    let by_walk = Rng.split walker in
    let by_index = Rng.split_nth base i in
    Alcotest.(check int64)
      (Printf.sprintf "child %d identical" i)
      (Rng.int64 by_walk) (Rng.int64 by_index)
  done;
  (* base itself must not have advanced *)
  Alcotest.(check int64) "parent untouched"
    (Rng.int64 (Rng.split (Rng.create 42)))
    (Rng.int64 (Rng.split base))

let rng_split_nth_rejects_negative () =
  Alcotest.check_raises "negative index" (Invalid_argument "Rng.split_nth: negative index")
    (fun () -> ignore (Rng.split_nth (Rng.create 1) (-1)))

(* ---- Pool ---- *)

module Pool = Core.Pool

let pool_chunks_cover_range () =
  List.iter
    (fun (jobs, n) ->
      let bounds = Pool.chunk_bounds ~jobs ~n in
      let covered = List.concat_map (fun (lo, hi) -> List.init (hi - lo) (fun i -> lo + i)) bounds in
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d n=%d covers [0,n) in order" jobs n)
        (List.init n Fun.id) covered;
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d n=%d chunk count" jobs n)
        true
        (List.length bounds <= max 1 jobs))
    [ (1, 7); (3, 7); (4, 4); (8, 3); (2, 100); (16, 1) ]

let pool_parallel_matches_sequential () =
  let f ~lo ~hi =
    let acc = ref 0 in
    for i = lo to hi - 1 do
      acc := !acc + (i * i)
    done;
    !acc
  in
  let expected = List.fold_left ( + ) 0 (Pool.parallel_chunks ~jobs:1 ~n:1000 f) in
  List.iter
    (fun jobs ->
      (* [oversubscribe] forces real worker domains even when the test
         machine has fewer cores than [jobs]. *)
      let got =
        List.fold_left ( + ) 0 (Pool.parallel_chunks ~oversubscribe:true ~jobs ~n:1000 f)
      in
      Alcotest.(check int) (Printf.sprintf "jobs=%d total" jobs) expected got)
    [ 2; 3; 8 ];
  Alcotest.(check (list int)) "n=0 is empty" [] (Pool.parallel_chunks ~jobs:4 ~n:0 f)

let pool_propagates_exceptions () =
  Alcotest.check_raises "worker exception re-raised" Exit (fun () ->
      ignore
        (Pool.parallel_chunks ~oversubscribe:true ~jobs:2 ~n:10 (fun ~lo ~hi:_ ->
             if lo > 0 then raise Exit;
             0)));
  (* The pool must stay usable after a failed batch. *)
  Alcotest.(check int) "pool reusable after failure" 3
    (List.fold_left ( + ) 0
       (Pool.parallel_chunks ~oversubscribe:true ~jobs:3 ~n:3 (fun ~lo ~hi:_ -> lo)))

let rng_unit_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let u = Rng.unit_float rng in
    Alcotest.(check bool) "in [0,1)" true (u >= 0.0 && u < 1.0)
  done

let rng_int_bounds () =
  let rng = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done

let rng_int_rejects_nonpositive () =
  let rng = Rng.create 5 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let rng_bernoulli_mean () =
  let rng = Rng.create 6 in
  let hits = ref 0 in
  for _ = 1 to 20_000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  check_close 0.02 "bernoulli mean" 0.3 (float_of_int !hits /. 20_000.0)

let rng_gaussian_moments () =
  let rng = Rng.create 8 in
  let samples = List.init 20_000 (fun _ -> Rng.gaussian rng ~mu:2.0 ~sigma:3.0) in
  check_close 0.1 "mean" 2.0 (Stats.mean samples);
  check_close 0.15 "std" 3.0 (Stats.std samples)

let rng_weighted_choice () =
  let rng = Rng.create 10 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 30_000 do
    let v = Rng.weighted_choice rng [ (1.0, "a"); (3.0, "b") ] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let b = float_of_int (Hashtbl.find counts "b") /. 30_000.0 in
  check_close 0.02 "weight 3/4" 0.75 b

let rng_choice_uniform () =
  let rng = Rng.create 12 in
  let arr = [| 0; 1; 2; 3 |] in
  let seen = Array.make 4 0 in
  for _ = 1 to 8000 do
    let v = Rng.choice rng arr in
    seen.(v) <- seen.(v) + 1
  done;
  Array.iter (fun c -> Alcotest.(check bool) "each value drawn" true (c > 0)) seen

(* ---- Stats ---- *)

let stats_basics () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "variance" 1.0 (Stats.variance [ 1.0; 2.0; 3.0 ]);
  check_float "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check_float "median even" 2.5 (Stats.median [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "geomean" 2.0 (Stats.geomean [ 1.0; 4.0 ]);
  check_float "min" 1.0 (Stats.minimum [ 3.0; 1.0; 2.0 ]);
  check_float "max" 3.0 (Stats.maximum [ 3.0; 1.0; 2.0 ]);
  check_float "sum" 6.0 (Stats.sum [ 1.0; 2.0; 3.0 ])

let stats_percentile () =
  let xs = [ 10.0; 20.0; 30.0; 40.0 ] in
  check_float "p0" 10.0 (Stats.percentile 0.0 xs);
  check_float "p100" 40.0 (Stats.percentile 100.0 xs);
  check_float "p50" 25.0 (Stats.percentile 50.0 xs)

let stats_clamp () =
  check_float "below" 1.0 (Stats.clamp ~lo:1.0 ~hi:2.0 0.5);
  check_float "above" 2.0 (Stats.clamp ~lo:1.0 ~hi:2.0 3.0);
  check_float "inside" 1.5 (Stats.clamp ~lo:1.0 ~hi:2.0 1.5)

let stats_ratio_summary () =
  let g, m = Stats.ratio_summary [ (2.0, 1.0); (8.0, 1.0) ] in
  check_float "geomean" 4.0 g;
  check_float "max" 8.0 m

let stats_empty_raises () =
  Alcotest.check_raises "mean []" (Invalid_argument "Stats.mean: empty list") (fun () ->
      ignore (Stats.mean []))

let stats_geomean_nonpositive () =
  Alcotest.check_raises "geomean 0"
    (Invalid_argument "Stats.geomean: non-positive value") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

(* ---- Fit ---- *)

let fit_linear_exact () =
  let pts = List.init 10 (fun i -> (float_of_int i, (2.5 *. float_of_int i) -. 1.0)) in
  let slope, intercept = Fit.linear pts in
  check_close 1e-9 "slope" 2.5 slope;
  check_close 1e-9 "intercept" (-1.0) intercept

let fit_exp_decay_exact () =
  let a = 0.7 and alpha = 0.93 and b = 0.25 in
  let pts = List.map (fun m -> (float_of_int m, (a *. (alpha ** float_of_int m)) +. b)) [ 1; 2; 4; 8; 16; 32; 64 ] in
  let d = Fit.exp_decay pts in
  check_close 1e-3 "alpha" alpha d.Fit.alpha;
  check_close 1e-2 "a" a d.Fit.a;
  check_close 1e-2 "b" b d.Fit.b

let fit_exp_decay_fixed_b_exact () =
  let a = 0.7 and alpha = 0.85 in
  let pts = List.map (fun m -> (float_of_int m, (a *. (alpha ** float_of_int m)) +. 0.25)) [ 1; 2; 4; 8; 16 ] in
  let d = Fit.exp_decay_fixed_b ~b:0.25 pts in
  check_close 1e-6 "alpha" alpha d.Fit.alpha;
  check_close 1e-6 "a" a d.Fit.a

let fit_fixed_b_fast_decay () =
  (* Curve at the floor from m = 2 on: alpha must come out small. *)
  let pts = [ (1.0, 0.32); (2.0, 0.252); (4.0, 0.2505); (8.0, 0.2495) ] in
  let d = Fit.exp_decay_fixed_b ~b:0.25 pts in
  Alcotest.(check bool) "fast decay detected" true (d.Fit.alpha < 0.3)

let fit_epc_conversions () =
  check_float "epc 2q" 0.075 (Fit.epc_of_alpha ~nqubits:2 0.9);
  check_float "epc 1q" 0.05 (Fit.epc_of_alpha ~nqubits:1 0.9);
  check_float "cnot error" 0.05 (Fit.cnot_error_of_epc ~cnots_per_clifford:1.5 0.075)

(* ---- Tablefmt ---- *)

let tablefmt_alignment () =
  let t = Core.Tablefmt.create [ "col"; "x" ] in
  Core.Tablefmt.add_row t [ "a"; "1" ];
  Core.Tablefmt.add_row t [ "bbbb" ];
  let rendered = Core.Tablefmt.render t in
  Alcotest.(check bool) "has header" true (String.length rendered > 0);
  Alcotest.(check int) "three content lines + separator" 4
    (List.length (String.split_on_char '\n' rendered))

(* ---- properties ---- *)

let prop_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let rng = Rng.create seed in
      let shuffled = Rng.shuffle_list rng l in
      List.sort compare shuffled = List.sort compare l)

let prop_percentile_bounded =
  QCheck.Test.make ~name:"percentile within min/max" ~count:200
    QCheck.(pair (float_range 0.0 100.0) (list_of_size (Gen.int_range 1 20) (float_range (-100.) 100.)))
    (fun (p, xs) ->
      let v = Stats.percentile p xs in
      v >= Stats.minimum xs -. 1e-9 && v <= Stats.maximum xs +. 1e-9)

let prop_exp_decay_recovers_alpha =
  QCheck.Test.make ~name:"exp_decay_fixed_b recovers alpha on clean data" ~count:50
    QCheck.(pair (float_range 0.3 0.99) (float_range 0.3 0.75))
    (fun (alpha, a) ->
      let pts =
        List.map (fun m -> (float_of_int m, (a *. (alpha ** float_of_int m)) +. 0.25))
          [ 1; 2; 4; 8; 16; 32 ]
      in
      let d = Fit.exp_decay_fixed_b ~b:0.25 pts in
      Float.abs (d.Fit.alpha -. alpha) < 0.02)

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let suite =
  [
    ( "util.rng",
      [
        Alcotest.test_case "deterministic" `Quick rng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick rng_seed_sensitivity;
        Alcotest.test_case "split independence" `Quick rng_split_independent;
        Alcotest.test_case "copy" `Quick rng_copy;
        Alcotest.test_case "split_nth matches repeated splits" `Quick rng_split_nth_matches_splits;
        Alcotest.test_case "split_nth rejects negative" `Quick rng_split_nth_rejects_negative;
        Alcotest.test_case "unit float range" `Quick rng_unit_float_range;
        Alcotest.test_case "int bounds" `Quick rng_int_bounds;
        Alcotest.test_case "int rejects non-positive" `Quick rng_int_rejects_nonpositive;
        Alcotest.test_case "bernoulli mean" `Quick rng_bernoulli_mean;
        Alcotest.test_case "gaussian moments" `Quick rng_gaussian_moments;
        Alcotest.test_case "weighted choice" `Quick rng_weighted_choice;
        Alcotest.test_case "choice covers values" `Quick rng_choice_uniform;
        QCheck_alcotest.to_alcotest prop_shuffle_is_permutation;
        QCheck_alcotest.to_alcotest prop_rng_int_in_bounds;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "basics" `Quick stats_basics;
        Alcotest.test_case "percentile" `Quick stats_percentile;
        Alcotest.test_case "clamp" `Quick stats_clamp;
        Alcotest.test_case "ratio summary" `Quick stats_ratio_summary;
        Alcotest.test_case "empty raises" `Quick stats_empty_raises;
        Alcotest.test_case "geomean non-positive" `Quick stats_geomean_nonpositive;
        QCheck_alcotest.to_alcotest prop_percentile_bounded;
      ] );
    ( "util.fit",
      [
        Alcotest.test_case "linear exact" `Quick fit_linear_exact;
        Alcotest.test_case "exp decay exact" `Quick fit_exp_decay_exact;
        Alcotest.test_case "fixed-b exact" `Quick fit_exp_decay_fixed_b_exact;
        Alcotest.test_case "fixed-b fast decay" `Quick fit_fixed_b_fast_decay;
        Alcotest.test_case "epc conversions" `Quick fit_epc_conversions;
        QCheck_alcotest.to_alcotest prop_exp_decay_recovers_alpha;
      ] );
    ("util.tablefmt", [ Alcotest.test_case "alignment" `Quick tablefmt_alignment ]);
    ( "util.pool",
      [
        Alcotest.test_case "chunks cover range" `Quick pool_chunks_cover_range;
        Alcotest.test_case "parallel matches sequential" `Quick pool_parallel_matches_sequential;
        Alcotest.test_case "propagates exceptions" `Quick pool_propagates_exceptions;
      ] );
  ]
