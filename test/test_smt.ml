(* Tests for the qcx_smt optimizing solver: the difference-constraint
   graph and the branch-and-bound DPLL search. *)

module Dgraph = Core.Dgraph
module Solver = Core.Solver

let lit var value = { Solver.var; value }

(* ---- Dgraph ---- *)

let dgraph_asap_chain () =
  let g = Dgraph.create () in
  let a = Dgraph.new_var g "a" and b = Dgraph.new_var g "b" and c = Dgraph.new_var g "c" in
  Dgraph.add_edge g ~src:a ~dst:b ~weight:10.0;
  Dgraph.add_edge g ~src:b ~dst:c ~weight:5.0;
  match Dgraph.asap g with
  | Some dist ->
    Alcotest.(check (float 1e-9)) "a" 0.0 dist.(a);
    Alcotest.(check (float 1e-9)) "b" 10.0 dist.(b);
    Alcotest.(check (float 1e-9)) "c" 15.0 dist.(c)
  | None -> Alcotest.fail "feasible system reported infeasible"

let dgraph_positive_cycle () =
  let g = Dgraph.create () in
  let a = Dgraph.new_var g "a" and b = Dgraph.new_var g "b" in
  Dgraph.add_edge g ~src:a ~dst:b ~weight:1.0;
  Dgraph.add_edge g ~src:b ~dst:a ~weight:1.0;
  Alcotest.(check bool) "infeasible" true (Dgraph.asap g = None)

let dgraph_zero_cycle_ok () =
  let g = Dgraph.create () in
  let a = Dgraph.new_var g "a" and b = Dgraph.new_var g "b" in
  (* equality: a = b *)
  Dgraph.add_edge g ~src:a ~dst:b ~weight:0.0;
  Dgraph.add_edge g ~src:b ~dst:a ~weight:0.0;
  Alcotest.(check bool) "feasible" true (Dgraph.asap g <> None)

let dgraph_push_pop () =
  let g = Dgraph.create () in
  let a = Dgraph.new_var g "a" and b = Dgraph.new_var g "b" in
  Dgraph.add_edge g ~src:a ~dst:b ~weight:1.0;
  Dgraph.push g;
  Dgraph.add_edge g ~src:b ~dst:a ~weight:1.0;
  Alcotest.(check bool) "infeasible inside frame" true (Dgraph.asap g = None);
  Dgraph.pop g;
  Alcotest.(check bool) "feasible after pop" true (Dgraph.asap g <> None)

let dgraph_alap () =
  let g = Dgraph.create () in
  let a = Dgraph.new_var g "a" and b = Dgraph.new_var g "b" and c = Dgraph.new_var g "c" in
  Dgraph.add_edge g ~src:a ~dst:c ~weight:10.0;
  Dgraph.add_edge g ~src:b ~dst:c ~weight:3.0;
  let deadline = [| infinity; infinity; 10.0 |] in
  (match Dgraph.alap g ~deadline with
  | Some v ->
    Alcotest.(check (float 1e-9)) "a at max" 0.0 v.(a);
    Alcotest.(check (float 1e-9)) "b slack used" 7.0 v.(b);
    Alcotest.(check (float 1e-9)) "c pinned" 10.0 v.(c)
  | None -> Alcotest.fail "feasible");
  (* Deadline below the minimum is infeasible. *)
  Alcotest.(check bool) "tight deadline infeasible" true
    (Dgraph.alap g ~deadline:[| infinity; infinity; 5.0 |] = None)

let dgraph_longest_paths () =
  let g = Dgraph.create () in
  let a = Dgraph.new_var g "a" and b = Dgraph.new_var g "b" and c = Dgraph.new_var g "c" in
  Dgraph.add_edge g ~src:a ~dst:b ~weight:2.0;
  Dgraph.add_edge g ~src:b ~dst:c ~weight:3.0;
  Dgraph.add_edge g ~src:a ~dst:c ~weight:4.0;
  Alcotest.(check (float 1e-9)) "longest a->c" 5.0 (Dgraph.longest_path g ~src:a ~dst:c);
  let dist = Dgraph.longest_paths_to g ~dst:c in
  Alcotest.(check (float 1e-9)) "batched a" 5.0 dist.(a);
  Alcotest.(check (float 1e-9)) "batched b" 3.0 dist.(b);
  Alcotest.(check (float 1e-9)) "unreachable" neg_infinity
    (Dgraph.longest_path g ~src:c ~dst:a)

(* ---- Solver ---- *)

let solver_pure_arithmetic () =
  let s = Solver.create () in
  let a = Solver.new_num s "a" and b = Solver.new_num s "b" in
  Solver.add_diff s ~dst:b ~src:a ~weight:5.0 ();
  Solver.add_sink s b;
  Solver.add_span_cost s ~weight:1.0 ~last:b ~first:a;
  match Solver.solve s with
  | Some sol ->
    Alcotest.(check (float 1e-9)) "objective is the gap" 5.0 sol.Solver.objective;
    Alcotest.(check bool) "optimal" true sol.Solver.optimal
  | None -> Alcotest.fail "satisfiable"

let solver_unsat_clause () =
  let s = Solver.create () in
  let x = Solver.new_bool s "x" in
  Solver.add_clause s [ lit x true ];
  Solver.add_clause s [ lit x false ];
  Alcotest.(check bool) "unsat" true (Solver.solve s = None)

let solver_empty_clause () =
  let s = Solver.create () in
  Solver.add_clause s [];
  Alcotest.(check bool) "unsat" true (Solver.solve s = None)

let solver_guarded_edges () =
  (* Choosing x activates a costly constraint; the solver must prefer
     not-x. *)
  let s = Solver.create () in
  let x = Solver.new_bool s "x" in
  let a = Solver.new_num s "a" and b = Solver.new_num s "b" in
  Solver.add_sink s b;
  Solver.add_diff s ~dst:b ~src:a ~weight:1.0 ();
  Solver.add_diff s ~guard:(lit x true) ~dst:b ~src:a ~weight:10.0 ();
  Solver.add_span_cost s ~weight:1.0 ~last:b ~first:a;
  (* Force a preference through a cost group: x true costs nothing,
     x false costs 100 -> solver must still pick x=false?? No: x true
     stretches the span to 10 (cost 10), x false costs 100. The solver
     should pick x = true. *)
  Solver.add_cost_group s [ ([ lit x true ], 0.0); ([ lit x false ], 100.0) ];
  match Solver.solve s with
  | Some sol ->
    Alcotest.(check bool) "x chosen true" true sol.Solver.bools.(x);
    Alcotest.(check (float 1e-9)) "objective 10" 10.0 sol.Solver.objective
  | None -> Alcotest.fail "satisfiable"

let solver_cost_tradeoff () =
  (* Same setup but now the boolean penalty is small: serializing
     (x = false, cost 3) beats stretching the span (cost 10). *)
  let s = Solver.create () in
  let x = Solver.new_bool s "x" in
  let a = Solver.new_num s "a" and b = Solver.new_num s "b" in
  Solver.add_sink s b;
  Solver.add_diff s ~dst:b ~src:a ~weight:1.0 ();
  Solver.add_diff s ~guard:(lit x true) ~dst:b ~src:a ~weight:10.0 ();
  Solver.add_span_cost s ~weight:1.0 ~last:b ~first:a;
  Solver.add_cost_group s [ ([ lit x true ], 0.0); ([ lit x false ], 3.0) ];
  match Solver.solve s with
  | Some sol ->
    Alcotest.(check bool) "x chosen false" false sol.Solver.bools.(x);
    Alcotest.(check (float 1e-9)) "objective 4" 4.0 sol.Solver.objective
  | None -> Alcotest.fail "satisfiable"

let solver_exactly_one_structure () =
  (* Three mutually exclusive options with different costs. *)
  let s = Solver.create () in
  let o = Solver.new_bool s "o" and b = Solver.new_bool s "b" and a = Solver.new_bool s "a" in
  Solver.add_clause s [ lit o true; lit b true; lit a true ];
  Solver.add_clause s [ lit o false; lit b false ];
  Solver.add_clause s [ lit o false; lit a false ];
  Solver.add_clause s [ lit b false; lit a false ];
  Solver.add_cost_group s
    [
      ([ lit o true; lit b false; lit a false ], 7.0);
      ([ lit o false; lit b true; lit a false ], 2.0);
      ([ lit o false; lit b false; lit a true ], 5.0);
    ];
  match Solver.solve s with
  | Some sol ->
    Alcotest.(check (float 1e-9)) "picked cheapest" 2.0 sol.Solver.objective;
    Alcotest.(check bool) "b true" true sol.Solver.bools.(b);
    Alcotest.(check bool) "o false" false sol.Solver.bools.(o)
  | None -> Alcotest.fail "satisfiable"

let solver_infeasible_guard_combination () =
  (* Both x and y forced true, and their guarded edges form a positive
     cycle: unsat. *)
  let s = Solver.create () in
  let x = Solver.new_bool s "x" and y = Solver.new_bool s "y" in
  let a = Solver.new_num s "a" and b = Solver.new_num s "b" in
  Solver.add_clause s [ lit x true ];
  Solver.add_clause s [ lit y true ];
  Solver.add_diff s ~guard:(lit x true) ~dst:b ~src:a ~weight:1.0 ();
  Solver.add_diff s ~guard:(lit y true) ~dst:a ~src:b ~weight:1.0 ();
  Alcotest.(check bool) "unsat via theory" true (Solver.solve s = None)

let solver_budget_returns_incumbent () =
  let s = Solver.create () in
  (* Ten independent booleans, each with a cost preference. *)
  let bools = List.init 10 (fun i -> Solver.new_bool s (string_of_int i)) in
  List.iter
    (fun v -> Solver.add_cost_group s [ ([ lit v true ], 1.0); ([ lit v false ], 2.0) ])
    bools;
  match Solver.solve ~node_budget:15 s with
  | Some sol -> Alcotest.(check bool) "not proven optimal" false sol.Solver.optimal
  | None -> Alcotest.fail "should return an incumbent"

(* Exhaustive cross-check on random small instances: the solver's
   optimum equals brute force over all boolean assignments. *)
let prop_solver_matches_bruteforce =
  QCheck.Test.make ~name:"solver optimum matches brute force (3 bools)" ~count:60
    QCheck.(list_of_size (Gen.return 8) (float_range 0.1 10.0))
    (fun costs ->
      let s = Solver.create () in
      let b0 = Solver.new_bool s "b0" in
      let b1 = Solver.new_bool s "b1" in
      let b2 = Solver.new_bool s "b2" in
      let cost k = List.nth costs k in
      Solver.add_cost_group s [ ([ lit b0 true ], cost 0); ([ lit b0 false ], cost 1) ];
      Solver.add_cost_group s [ ([ lit b1 true ], cost 2); ([ lit b1 false ], cost 3) ];
      Solver.add_cost_group s
        [
          ([ lit b2 true; lit b0 true ], cost 4);
          ([ lit b2 true; lit b0 false ], cost 5);
          ([ lit b2 false; lit b0 true ], cost 6);
          ([ lit b2 false; lit b0 false ], cost 7);
        ];
      (* at least one of b1, b2 *)
      Solver.add_clause s [ lit b1 true; lit b2 true ];
      let brute =
        let best = ref infinity in
        List.iter
          (fun (v0, v1, v2) ->
            if v1 || v2 then begin
              let total =
                (if v0 then cost 0 else cost 1)
                +. (if v1 then cost 2 else cost 3)
                +.
                match (v2, v0) with
                | true, true -> cost 4
                | true, false -> cost 5
                | false, true -> cost 6
                | false, false -> cost 7
              in
              if total < !best then best := total
            end)
          [
            (false, false, false); (false, false, true); (false, true, false);
            (false, true, true); (true, false, false); (true, false, true);
            (true, true, false); (true, true, true);
          ];
        !best
      in
      match Solver.solve s with
      | Some sol -> Float.abs (sol.Solver.objective -. brute) < 1e-9
      | None -> false)

let suite =
  [
    ( "smt.dgraph",
      [
        Alcotest.test_case "asap chain" `Quick dgraph_asap_chain;
        Alcotest.test_case "positive cycle" `Quick dgraph_positive_cycle;
        Alcotest.test_case "zero cycle ok" `Quick dgraph_zero_cycle_ok;
        Alcotest.test_case "push pop" `Quick dgraph_push_pop;
        Alcotest.test_case "alap" `Quick dgraph_alap;
        Alcotest.test_case "longest paths" `Quick dgraph_longest_paths;
      ] );
    ( "smt.solver",
      [
        Alcotest.test_case "pure arithmetic" `Quick solver_pure_arithmetic;
        Alcotest.test_case "unsat clause" `Quick solver_unsat_clause;
        Alcotest.test_case "empty clause" `Quick solver_empty_clause;
        Alcotest.test_case "guarded edges" `Quick solver_guarded_edges;
        Alcotest.test_case "cost tradeoff" `Quick solver_cost_tradeoff;
        Alcotest.test_case "exactly-one structure" `Quick solver_exactly_one_structure;
        Alcotest.test_case "infeasible guards" `Quick solver_infeasible_guard_combination;
        Alcotest.test_case "budget incumbent" `Quick solver_budget_returns_incumbent;
        QCheck_alcotest.to_alcotest prop_solver_matches_bruteforce;
      ] );
  ]

(* property: ASAP solutions satisfy every constraint of random DAGs *)
let prop_asap_satisfies_constraints =
  QCheck.Test.make ~name:"asap satisfies all difference constraints" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 25) (triple (int_range 0 9) (int_range 0 9) (float_range 0.0 10.0)))
    (fun edges ->
      let g = Dgraph.create () in
      let vars = Array.init 10 (fun i -> Dgraph.new_var g (string_of_int i)) in
      (* only forward edges (src < dst): guaranteed acyclic *)
      List.iter
        (fun (a, b, w) ->
          if a <> b then
            let src = vars.(min a b) and dst = vars.(max a b) in
            Dgraph.add_edge g ~src ~dst ~weight:w)
        edges;
      match Dgraph.asap g with
      | None -> false
      | Some dist ->
        List.for_all
          (fun (a, b, w) ->
            a = b || dist.(vars.(max a b)) +. 1e-6 >= dist.(vars.(min a b)) +. w)
          edges)

let prop_alap_dominates_asap =
  QCheck.Test.make ~name:"alap >= asap pointwise under a loose deadline" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 20) (triple (int_range 0 7) (int_range 0 7) (float_range 0.0 5.0)))
    (fun edges ->
      let g = Dgraph.create () in
      let vars = Array.init 8 (fun i -> Dgraph.new_var g (string_of_int i)) in
      List.iter
        (fun (a, b, w) ->
          if a <> b then
            Dgraph.add_edge g ~src:vars.(min a b) ~dst:vars.(max a b) ~weight:w)
        edges;
      match Dgraph.asap g with
      | None -> false
      | Some lo -> (
        let deadline = Array.make 8 1000.0 in
        match Dgraph.alap g ~deadline with
        | None -> false
        | Some hi -> Array.for_all2 (fun l h -> h +. 1e-6 >= l) lo hi))

(* ---- fast engine vs the legacy reference ---- *)

let propagation_unit_chain () =
  let s = Solver.create () in
  let x0 = Solver.new_bool s "x0" in
  let x1 = Solver.new_bool s "x1" in
  let x2 = Solver.new_bool s "x2" in
  Solver.add_clause s [ lit x0 false; lit x1 true ];
  Solver.add_clause s [ lit x1 false; lit x2 true ];
  let expect = Some [ (x0, true); (x1, true); (x2, true) ] in
  Alcotest.(check bool) "fast chain" true
    (Solver.propagation_fixpoint ~engine:Solver.Fast s [ (x0, true) ] = expect);
  Alcotest.(check bool) "legacy chain" true
    (Solver.propagation_fixpoint ~engine:Solver.Legacy s [ (x0, true) ] = expect);
  (* Conflicting seeds: both engines must report the conflict. *)
  Alcotest.(check bool) "fast conflict" true
    (Solver.propagation_fixpoint ~engine:Solver.Fast s [ (x0, true); (x2, false) ] = None);
  Alcotest.(check bool) "legacy conflict" true
    (Solver.propagation_fixpoint ~engine:Solver.Legacy s [ (x0, true); (x2, false) ]
    = None)

(* Unit propagation has a unique fixpoint, so the two-watched-literal
   scheme and the seed full-rescan scheme must agree on arbitrary
   clause sets — including duplicate literals within a clause, which
   the watch scheme must treat as distinct occurrences. *)
let prop_propagation_fixpoint_equivalence =
  let gen =
    QCheck.Gen.(
      int_range 1 6 >>= fun nvars ->
      list_size (int_range 0 12)
        (list_size (int_range 0 4) (pair (int_range 0 (nvars - 1)) bool))
      >>= fun clauses ->
      list_size (int_range 0 4) (pair (int_range 0 (nvars - 1)) bool) >>= fun seeds ->
      return (nvars, clauses, seeds))
  in
  let print (nvars, clauses, seeds) =
    Printf.sprintf "nvars=%d clauses=%s seeds=%s" nvars
      (String.concat ";"
         (List.map
            (fun c ->
              "["
              ^ String.concat ","
                  (List.map (fun (v, p) -> Printf.sprintf "%d:%b" v p) c)
              ^ "]")
            clauses))
      (String.concat "," (List.map (fun (v, p) -> Printf.sprintf "%d:%b" v p) seeds))
  in
  QCheck.Test.make ~name:"watched-literal propagation matches rescan fixpoint" ~count:500
    (QCheck.make ~print gen)
    (fun (nvars, clauses, seeds) ->
      let s = Solver.create () in
      let vars = Array.init nvars (fun i -> Solver.new_bool s (string_of_int i)) in
      List.iter
        (fun c -> Solver.add_clause s (List.map (fun (v, p) -> lit vars.(v) p) c))
        clauses;
      Solver.propagation_fixpoint ~engine:Solver.Fast s seeds
      = Solver.propagation_fixpoint ~engine:Solver.Legacy s seeds)

(* Both engines implement the same optimization problem: equal optima
   on random instances mixing clauses, cost groups and guarded spans. *)
let prop_engines_agree_on_optimum =
  QCheck.Test.make ~name:"fast and legacy engines find the same optimum" ~count:60
    QCheck.(list_of_size (Gen.return 8) (float_range 0.1 10.0))
    (fun costs ->
      let build () =
        let s = Solver.create () in
        let b0 = Solver.new_bool s "b0" in
        let b1 = Solver.new_bool s "b1" in
        let b2 = Solver.new_bool s "b2" in
        let a = Solver.new_num s "a" and b = Solver.new_num s "b" in
        Solver.add_sink s b;
        let cost k = List.nth costs k in
        Solver.add_diff s ~dst:b ~src:a ~weight:1.0 ();
        Solver.add_diff s ~guard:(lit b0 true) ~dst:b ~src:a ~weight:(cost 0 +. 1.0) ();
        Solver.add_span_cost s ~weight:1.0 ~last:b ~first:a;
        Solver.add_cost_group s [ ([ lit b0 true ], cost 1); ([ lit b0 false ], cost 2) ];
        Solver.add_cost_group s
          [
            ([ lit b1 true; lit b2 true ], cost 3);
            ([ lit b1 true; lit b2 false ], cost 4);
            ([ lit b1 false; lit b2 true ], cost 5);
            ([ lit b1 false; lit b2 false ], cost 6);
          ];
        Solver.add_clause s [ lit b1 true; lit b2 true ];
        s
      in
      match
        ( Solver.solve ~engine:Solver.Fast (build ()),
          Solver.solve ~engine:Solver.Legacy (build ()) )
      with
      | Some f, Some l ->
        f.Solver.optimal && l.Solver.optimal
        && Float.abs (f.Solver.objective -. l.Solver.objective) < 1e-9
      | _ -> false)

let warm_start_never_worse () =
  (* Ten independent booleans, true cheaper than false.  The all-false
     hint evaluates to 20; a zero node budget returns exactly that
     incumbent, and an unrestricted warm search must end at the true
     optimum (10) — never above the incumbent it was seeded with. *)
  let build () =
    let s = Solver.create () in
    let bools = List.init 10 (fun i -> Solver.new_bool s (string_of_int i)) in
    List.iter
      (fun v -> Solver.add_cost_group s [ ([ lit v true ], 1.0); ([ lit v false ], 2.0) ])
      bools;
    s
  in
  let hint = Array.make 10 false in
  (match Solver.solve ~node_budget:0 ~warm_starts:[ hint ] (build ()) with
  | Some sol ->
    Alcotest.(check (float 1e-9)) "hint objective served" 20.0 sol.Solver.objective;
    Alcotest.(check bool) "not optimal" false sol.Solver.optimal
  | None -> Alcotest.fail "warm start must yield an incumbent");
  match Solver.solve ~warm_starts:[ hint ] (build ()) with
  | Some sol ->
    Alcotest.(check bool) "never worse than the incumbent" true
      (sol.Solver.objective <= 20.0 +. 1e-9);
    Alcotest.(check (float 1e-9)) "full search reaches the optimum" 10.0
      sol.Solver.objective
  | None -> Alcotest.fail "satisfiable"

let infeasible_warm_start_skipped () =
  let s = Solver.create () in
  let x = Solver.new_bool s "x" in
  Solver.add_clause s [ lit x true ];
  Solver.add_cost_group s [ ([ lit x true ], 1.0); ([ lit x false ], 0.0) ];
  (* The hint contradicts the unit clause; it must be skipped, not
     crash or pollute the incumbent. *)
  match Solver.solve ~warm_starts:[ [| false |] ] s with
  | Some sol -> Alcotest.(check (float 1e-9)) "optimum unaffected" 1.0 sol.Solver.objective
  | None -> Alcotest.fail "satisfiable"

let solve_is_repeatable () =
  (* [solve] is read-only on the problem: same [t], same engine, same
     hints => identical solutions, node counts included. *)
  let s = Solver.create () in
  let b0 = Solver.new_bool s "b0" and b1 = Solver.new_bool s "b1" in
  let a = Solver.new_num s "a" and b = Solver.new_num s "b" in
  Solver.add_sink s b;
  Solver.add_diff s ~dst:b ~src:a ~weight:1.0 ();
  Solver.add_diff s ~guard:(lit b0 true) ~dst:b ~src:a ~weight:7.0 ();
  Solver.add_span_cost s ~weight:1.0 ~last:b ~first:a;
  Solver.add_cost_group s [ ([ lit b0 true ], 0.5); ([ lit b0 false ], 3.0) ];
  Solver.add_cost_group s [ ([ lit b1 true ], 1.0); ([ lit b1 false ], 2.0) ];
  List.iter
    (fun engine ->
      match (Solver.solve ~engine s, Solver.solve ~engine s) with
      | Some s1, Some s2 ->
        Alcotest.(check bool) "bools equal" true (s1.Solver.bools = s2.Solver.bools);
        Alcotest.(check bool) "nums equal" true (s1.Solver.nums = s2.Solver.nums);
        Alcotest.(check (float 0.0)) "objective equal" s1.Solver.objective
          s2.Solver.objective;
        Alcotest.(check int) "node count equal" s1.Solver.nodes s2.Solver.nodes
      | _ -> Alcotest.fail "satisfiable")
    [ Solver.Fast; Solver.Legacy ]

let suite =
  suite
  @ [
      ( "smt.properties",
        [
          QCheck_alcotest.to_alcotest prop_asap_satisfies_constraints;
          QCheck_alcotest.to_alcotest prop_alap_dominates_asap;
        ] );
      ( "smt.engines",
        [
          Alcotest.test_case "propagation unit chain" `Quick propagation_unit_chain;
          QCheck_alcotest.to_alcotest prop_propagation_fixpoint_equivalence;
          QCheck_alcotest.to_alcotest prop_engines_agree_on_optimum;
          Alcotest.test_case "warm start never worse" `Quick warm_start_never_worse;
          Alcotest.test_case "infeasible warm start skipped" `Quick
            infeasible_warm_start_skipped;
          Alcotest.test_case "solve is repeatable" `Quick solve_is_repeatable;
        ] );
    ]
