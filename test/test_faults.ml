(* Tests for the robustness layer: hardened persistence under
   corruption, deterministic fault plans, resilient characterization
   fallbacks, solver deadlines, the scheduler degradation ladder, and
   soak-campaign determinism. *)

module Rng = Core.Rng
module Json = Core.Json
module Store = Core.Store
module Crosstalk = Core.Crosstalk
module Device = Core.Device
module Presets = Core.Presets
module Policy = Core.Policy
module Rb = Core.Rb
module Solver = Core.Solver
module Schedule = Core.Schedule
module Xtalk_sched = Core.Xtalk_sched
module Fault_plan = Core.Fault_plan
module Soak = Core.Soak

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* ---- persistence: property round-trip ---- *)

let candidate_pairs =
  (* directed (target, spectator) pairs over a 6-qubit grid *)
  [ ((0, 1), (2, 3)); ((2, 3), (0, 1)); ((0, 1), (4, 5)); ((3, 4), (0, 1)); ((1, 2), (4, 5)) ]

let gen_entries =
  QCheck.Gen.(
    list_size (int_bound (List.length candidate_pairs - 1))
      (pair (int_bound (List.length candidate_pairs - 1)) (float_bound_inclusive 1.0)))

let crosstalk_of_entries entries =
  List.fold_left
    (fun acc (i, rate) ->
      let target, spectator = List.nth candidate_pairs i in
      Crosstalk.set acc ~target ~spectator rate)
    Crosstalk.empty entries

let prop_roundtrip =
  QCheck.Test.make ~name:"crosstalk save/load round-trips any valid rates" ~count:50
    (QCheck.make gen_entries) (fun entries ->
      let x = crosstalk_of_entries entries in
      let path = tmp "qcx_faults_roundtrip.json" in
      match Store.save_crosstalk ~path x with
      | Error e -> QCheck.Test.fail_report e
      | Ok () -> (
        match Store.load_crosstalk ~path () with
        | Error e -> QCheck.Test.fail_report e
        | Ok loaded ->
          List.for_all
            (fun (target, spectator, rate) ->
              Crosstalk.conditional loaded ~target ~spectator = Some rate)
            (Crosstalk.entries x)
          && List.length (Crosstalk.entries loaded) = List.length (Crosstalk.entries x)))

(* ---- persistence: corruption is an Error, never an exception ---- *)

let saved_snapshot () =
  let x = Crosstalk.set_symmetric Crosstalk.empty (0, 1) (2, 3) 0.11 0.06 in
  let path = tmp "qcx_faults_corrupt.json" in
  (match Store.save_crosstalk ~path x with Ok () -> () | Error e -> Alcotest.fail e);
  path

let expect_load_error what path =
  match Store.load_crosstalk ~path () with
  | Ok _ -> Alcotest.failf "%s: corrupt snapshot loaded successfully" what
  | Error _ -> ()
  | exception e ->
    Alcotest.failf "%s: loader raised %s instead of Error" what (Printexc.to_string e)

let store_truncation_is_error () =
  let path = saved_snapshot () in
  let contents = read_file path in
  let rng = Rng.create 11 in
  for i = 0 to 19 do
    write_file path (Fault_plan.truncate_string ~rng contents);
    expect_load_error (Printf.sprintf "truncation %d" i) path
  done

let store_bitflip_is_error () =
  let path = saved_snapshot () in
  let contents = read_file path in
  let rng = Rng.create 12 in
  for i = 0 to 19 do
    write_file path (Fault_plan.bitflip_string ~rng contents);
    expect_load_error (Printf.sprintf "bitflip %d" i) path
  done

let replace_first ~needle ~by hay =
  let n = String.length needle and h = String.length hay in
  let rec scan i =
    if i + n > h then hay
    else if String.sub hay i n = needle then
      String.sub hay 0 i ^ by ^ String.sub hay (i + n) (h - i - n)
    else scan (i + 1)
  in
  scan 0

let store_wrong_version_is_error () =
  (* Wrong envelope version: rebuild the envelope by hand around the
     valid payload.  Wrong payload version: a valid envelope around a
     mistagged payload. *)
  let x = Crosstalk.set_symmetric Crosstalk.empty (0, 1) (2, 3) 0.11 0.06 in
  let payload = Store.crosstalk_to_json x in
  let path = tmp "qcx_faults_version.json" in
  let envelope ~format doc =
    (* checksum computed the same way save does: over the canonical
       payload serialization *)
    Json.Object
      [
        ("format", Json.String format);
        ("checksum", Json.String (Digest.to_hex (Digest.string (Json.to_string doc))));
        ("payload", doc);
      ]
  in
  write_file path (Json.to_string (envelope ~format:"qcx-store-v9" payload));
  expect_load_error "envelope version" path;
  let mistagged =
    match payload with
    | Json.Object fields ->
      Json.Object
        (List.map
           (function
             | "format", _ -> ("format", Json.String "qcx-crosstalk-v999")
             | kv -> kv)
           fields)
    | _ -> Alcotest.fail "payload not an object"
  in
  write_file path (Json.to_string (envelope ~format:"qcx-store-v2" mistagged));
  expect_load_error "payload version" path

let store_checksum_mismatch_is_error () =
  let path = saved_snapshot () in
  let contents = read_file path in
  (* Change a rate without updating the checksum. *)
  let damaged = replace_first ~needle:"0.11" ~by:"0.12" contents in
  Alcotest.(check bool) "test altered the payload" false (damaged = contents);
  write_file path damaged;
  expect_load_error "checksum" path

let store_quarantine_and_fallback () =
  let dir = tmp "qcx_faults_quarantine" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let old_path = Filename.concat dir "day0.json" in
  let new_path = Filename.concat dir "day1.json" in
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ old_path; new_path ];
  let old_x = Crosstalk.set_symmetric Crosstalk.empty (0, 1) (2, 3) 0.08 0.05 in
  let new_x = Crosstalk.set_symmetric Crosstalk.empty (0, 1) (2, 3) 0.12 0.07 in
  (match Store.save_crosstalk ~path:old_path old_x with Ok () -> () | Error e -> Alcotest.fail e);
  (match Store.save_crosstalk ~path:new_path new_x with Ok () -> () | Error e -> Alcotest.fail e);
  write_file new_path (Fault_plan.truncate_string ~rng:(Rng.create 3) (read_file new_path));
  let report = Store.load_crosstalk_resilient ~paths:[ new_path; old_path ] () in
  (match report.Store.data with
  | None -> Alcotest.fail "no snapshot survived"
  | Some x ->
    Alcotest.(check (option (float 1e-12))) "fell back to old value" (Some 0.08)
      (Crosstalk.conditional x ~target:(0, 1) ~spectator:(2, 3)));
  Alcotest.(check (option string)) "source is the old snapshot" (Some old_path)
    report.Store.source;
  Alcotest.(check int) "one file quarantined" 1 (List.length report.Store.quarantined);
  Alcotest.(check string) "quarantined the corrupt path" new_path
    (fst (List.hd report.Store.quarantined));
  Alcotest.(check bool) "corrupt file moved aside" false (Sys.file_exists new_path)

(* ---- fault plans: determinism ---- *)

let fault_plan_deterministic () =
  let p1 = Fault_plan.create ~seed:42 () in
  let p2 = Fault_plan.create ~seed:42 () in
  let sites =
    List.concat_map
      (fun day ->
        List.concat_map
          (fun e -> List.map (fun a -> (day, e, a)) [ 0; 1; 2 ])
          [ 0; 1; 2; 3; 4; 5; 6; 7 ])
      [ 0; 1; 2; 3; 4 ]
  in
  let describe = function
    (* string projection: Inject_corrupt_rate nan must compare equal
       to itself, which structural equality on floats refuses *)
    | None -> "none"
    | Some Policy.Inject_hang -> "hang"
    | Some (Policy.Inject_dropout f) -> Printf.sprintf "dropout(%h)" f
    | Some (Policy.Inject_corrupt_rate r) -> Printf.sprintf "corrupt(%h)" r
  in
  let sample plan order =
    List.map
      (fun (day, experiment, attempt) ->
        describe (Fault_plan.experiment_fault plan ~day ~experiment ~attempt))
      order
  in
  Alcotest.(check bool) "same seed, same faults" true (sample p1 sites = sample p2 sites);
  Alcotest.(check bool) "evaluation order is irrelevant" true
    (List.rev (sample p1 (List.rev sites)) = sample p1 sites);
  let p3 = Fault_plan.create ~seed:43 () in
  Alcotest.(check bool) "different seed, different faults" false
    (sample p1 sites = sample p3 sites);
  List.iter
    (fun day ->
      Alcotest.(check bool) "file fault stable" true
        (Fault_plan.file_fault p1 ~day = Fault_plan.file_fault p2 ~day);
      List.iter
        (fun compile ->
          Alcotest.(check bool) "solver fault stable" true
            (Fault_plan.solver_blowup p1 ~day ~compile
            = Fault_plan.solver_blowup p2 ~day ~compile))
        [ 0; 1; 2 ])
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]

let fault_plan_exercises_every_class () =
  (* Over enough sites the default config must produce every
     experiment fault kind and both file fault kinds. *)
  let plan = Fault_plan.create ~seed:5 () in
  let hangs = ref 0 and dropouts = ref 0 and corrupts = ref 0 in
  for day = 0 to 19 do
    for experiment = 0 to 9 do
      for attempt = 0 to 2 do
        match Fault_plan.experiment_fault plan ~day ~experiment ~attempt with
        | Some Policy.Inject_hang -> incr hangs
        | Some (Policy.Inject_dropout _) -> incr dropouts
        | Some (Policy.Inject_corrupt_rate _) -> incr corrupts
        | None -> ()
      done
    done
  done;
  Alcotest.(check bool) "hangs injected" true (!hangs > 0);
  Alcotest.(check bool) "dropouts injected" true (!dropouts > 0);
  Alcotest.(check bool) "corrupt fits injected" true (!corrupts > 0);
  let truncates = ref 0 and flips = ref 0 in
  for day = 0 to 99 do
    match Fault_plan.file_fault plan ~day with
    | Some Fault_plan.Truncate -> incr truncates
    | Some Fault_plan.Bitflip -> incr flips
    | None -> ()
  done;
  Alcotest.(check bool) "truncations injected" true (!truncates > 0);
  Alcotest.(check bool) "bitflips injected" true (!flips > 0)

(* ---- resilient characterization ---- *)

let small_plan device rng = Policy.plan ~rng device (Policy.High_crosstalk_only [ ((0, 1), (2, 3)) ])

let small_params = { Rb.lengths = [ 1; 2; 4 ]; seeds = 1; trials = 32 }

let resilient_no_faults_is_fresh () =
  let device = Presets.example_6q () in
  let rng = Rng.create 9 in
  let plan = small_plan device (Rng.copy rng) in
  let r = Policy.characterize_resilient ~params:small_params ~rng device plan in
  Alcotest.(check bool) "has freshness entries" true (r.Policy.freshness <> []);
  List.iter
    (fun (_, f) ->
      Alcotest.(check string) "fresh" "fresh" (Policy.freshness_name f))
    r.Policy.freshness;
  Alcotest.(check int) "no faults" 0 r.Policy.faults

let resilient_hang_then_recover () =
  let device = Presets.example_6q () in
  let rng = Rng.create 9 in
  let plan = small_plan device (Rng.copy rng) in
  let inject ~experiment:_ ~attempt = if attempt = 0 then Some Policy.Inject_hang else None in
  let r = Policy.characterize_resilient ~params:small_params ~inject ~rng device plan in
  List.iter
    (fun (_, f) ->
      Alcotest.(check string) "recovered after one failure" "recovered(1)"
        (Policy.freshness_name f))
    r.Policy.freshness;
  Alcotest.(check bool) "timeout charged" true (r.Policy.simulated_seconds > 0.0);
  Alcotest.(check bool) "faults counted" true (r.Policy.faults > 0)

let resilient_falls_back_to_previous () =
  let device = Presets.example_6q () in
  let rng = Rng.create 9 in
  let plan = small_plan device (Rng.copy rng) in
  let previous = Crosstalk.set_symmetric Crosstalk.empty (0, 1) (2, 3) 0.123 0.045 in
  let inject ~experiment:_ ~attempt:_ = Some (Policy.Inject_corrupt_rate Float.nan) in
  let r = Policy.characterize_resilient ~params:small_params ~inject ~previous ~rng device plan in
  List.iter
    (fun (_, f) ->
      Alcotest.(check string) "stale-previous" "stale-previous" (Policy.freshness_name f))
    r.Policy.freshness;
  Alcotest.(check (option (float 1e-12))) "serves the stored value" (Some 0.123)
    (Crosstalk.conditional r.Policy.outcome.Policy.xtalk ~target:(0, 1) ~spectator:(2, 3))

let resilient_falls_back_to_calibration () =
  let device = Presets.example_6q () in
  let rng = Rng.create 9 in
  let plan = small_plan device (Rng.copy rng) in
  let inject ~experiment:_ ~attempt:_ = Some (Policy.Inject_corrupt_rate (-0.5)) in
  let r = Policy.characterize_resilient ~params:small_params ~inject ~rng device plan in
  List.iter
    (fun (_, f) ->
      Alcotest.(check string) "stale-calibration" "stale-calibration"
        (Policy.freshness_name f))
    r.Policy.freshness;
  Alcotest.(check (option (float 1e-12))) "serves the calibration rate"
    (Some (Device.cnot_error device (0, 1)))
    (Crosstalk.conditional r.Policy.outcome.Policy.xtalk ~target:(0, 1) ~spectator:(2, 3))

(* ---- solver deadline ---- *)

let solver_deadline_returns_incumbent () =
  (* Legacy engine: 30 booleans where the false branch (tried first)
     costs 2 and the true branch costs 1: the leftmost dive reaches a
     leaf in ~31 nodes, before the first deadline check at node 64,
     and every later branch can still improve the incumbent, so bound
     pruning cannot finish the (2^30-leaf) search before the deadline
     check.  (The fast engine's cost-guided branching dives straight
     to the optimum here and finishes under 64 nodes — see the span
     variant below for its deadline test.) *)
  let s = Solver.create () in
  for i = 0 to 29 do
    let x = Solver.new_bool s (Printf.sprintf "x%d" i) in
    Solver.add_cost_group s
      [ ([ { Solver.var = x; value = true } ], 1.0); ([ { Solver.var = x; value = false } ], 2.0) ]
  done;
  match Solver.solve ~engine:Solver.Legacy ~deadline_seconds:0.0 s with
  | None -> Alcotest.fail "expected a best-so-far incumbent"
  | Some sol ->
    Alcotest.(check bool) "timed out" true sol.Solver.timed_out;
    Alcotest.(check bool) "not optimal" false sol.Solver.optimal;
    Alcotest.(check bool) "incumbent within bounds" true
      (sol.Solver.objective >= 30.0 && sol.Solver.objective <= 60.0)

let solver_deadline_returns_incumbent_fast () =
  (* Fast engine: the cost has to hide behind guarded span edges the
     lower bound cannot anticipate (an unassigned guard contributes
     nothing), so the leftmost all-false dive lands on the worst leaf
     and every later true branch improves the incumbent — cost-guided
     branching has no cost groups to steer by and bound pruning cannot
     close the 2^30-leaf tree before the first deadline check. *)
  let s = Solver.create () in
  let origin = Solver.new_num s "origin" in
  for i = 0 to 29 do
    let x = Solver.new_bool s (Printf.sprintf "x%d" i) in
    let t = Solver.new_num s (Printf.sprintf "t%d" i) in
    Solver.add_diff s ~guard:{ Solver.var = x; value = false } ~dst:t ~src:origin
      ~weight:10.0 ();
    Solver.add_diff s ~guard:{ Solver.var = x; value = true } ~dst:t ~src:origin
      ~weight:1.0 ();
    Solver.add_span_cost s ~weight:1.0 ~last:t ~first:origin;
    Solver.add_sink s t
  done;
  match Solver.solve ~deadline_seconds:0.0 s with
  | None -> Alcotest.fail "expected a best-so-far incumbent"
  | Some sol ->
    Alcotest.(check bool) "timed out" true sol.Solver.timed_out;
    Alcotest.(check bool) "not optimal" false sol.Solver.optimal;
    Alcotest.(check bool) "incumbent within bounds" true
      (sol.Solver.objective >= 30.0 && sol.Solver.objective <= 300.0)

let solver_deadline_completes_when_loose () =
  let s = Solver.create () in
  let x = Solver.new_bool s "x" in
  Solver.add_cost_group s
    [ ([ { Solver.var = x; value = true } ], 1.0); ([ { Solver.var = x; value = false } ], 2.0) ]
  ;
  match Solver.solve ~deadline_seconds:60.0 s with
  | None -> Alcotest.fail "satisfiable"
  | Some sol ->
    Alcotest.(check bool) "not timed out" false sol.Solver.timed_out;
    Alcotest.(check bool) "optimal" true sol.Solver.optimal

(* ---- degradation ladder ---- *)

(* Layers of CNOTs over a maximal disjoint edge set: every layer's
   gates can run in parallel, so gates on the device's high-crosstalk
   edge pair form interfering instances the solver must arbitrate. *)
let stress_circuit device ~layers =
  let disjoint =
    List.fold_left
      (fun acc (a, b) ->
        if List.exists (fun (c, d) -> a = c || a = d || b = c || b = d) acc then acc
        else (a, b) :: acc)
      []
      (Core.Topology.edges (Device.topology device))
  in
  let rec go c n =
    if n = 0 then c
    else
      go
        (List.fold_left
           (fun c (a, b) -> Core.Circuit.cnot c ~control:a ~target:b)
           c disjoint)
        (n - 1)
  in
  go (Core.Circuit.create (Device.nqubits device)) layers

let ladder_fixture ?(layers = 2) () =
  let device = Presets.example_6q () in
  let xtalk = Device.ground_truth device in
  (device, xtalk, stress_circuit device ~layers)

let check_valid sched = Alcotest.(check (result unit string)) "valid schedule" (Ok ()) (Schedule.validate sched)

let ladder_default_is_exact () =
  let device, xtalk, circuit = ladder_fixture () in
  let sched, stats = Xtalk_sched.schedule ~device ~xtalk circuit in
  check_valid sched;
  Alcotest.(check bool) "has interfering pairs" true (stats.Xtalk_sched.pairs > 0);
  Alcotest.(check string) "exact" "exact" (Xtalk_sched.rung_name stats.Xtalk_sched.rung);
  Alcotest.(check bool) "optimal" true stats.Xtalk_sched.optimal

let ladder_clustered_rung () =
  let device, xtalk, circuit = ladder_fixture () in
  let sched, stats = Xtalk_sched.schedule ~max_exact_pairs:0 ~device ~xtalk circuit in
  check_valid sched;
  Alcotest.(check string) "clustered" "clustered"
    (Xtalk_sched.rung_name stats.Xtalk_sched.rung);
  Alcotest.(check bool) "reported as non-optimal" false stats.Xtalk_sched.optimal

let ladder_budget_blowup_degrades () =
  let device, xtalk, circuit = ladder_fixture () in
  (* Fast engine: the warm-start hints give the exact rung a feasible
     incumbent before the first search node, so even a zero node
     budget serves a schedule from the solver (honestly labelled
     Incumbent) instead of falling through the ladder. *)
  let sched, stats = Xtalk_sched.schedule ~node_budget:0 ~device ~xtalk circuit in
  check_valid sched;
  Alcotest.(check string) "warm incumbent serves the compile" "incumbent"
    (Xtalk_sched.rung_name stats.Xtalk_sched.rung);
  Alcotest.(check bool) "reported as non-optimal" false stats.Xtalk_sched.optimal;
  (* Legacy engine has no warm starts: a zero budget reaches no leaf
     anywhere, and the compile degrades all the way to greedy. *)
  let sched, stats =
    Xtalk_sched.schedule ~engine:Qcx_smt.Solver.Legacy ~node_budget:0 ~device ~xtalk
      circuit
  in
  check_valid sched;
  Alcotest.(check string) "legacy degrades to greedy" "greedy"
    (Xtalk_sched.rung_name stats.Xtalk_sched.rung)

let ladder_deadline_degrades () =
  (* Enough pairs that the exact solve cannot finish before the first
     deadline check; max_exact_pairs keeps the exact rung first so the
     descent is driven by the deadline alone. *)
  let device, xtalk, circuit = ladder_fixture ~layers:4 () in
  let sched, stats =
    Xtalk_sched.schedule ~max_exact_pairs:100 ~deadline_seconds:0.0 ~device ~xtalk circuit
  in
  check_valid sched;
  Alcotest.(check bool) "not served by the exact rung" true
    (stats.Xtalk_sched.rung <> Xtalk_sched.Exact)

let ladder_every_rung_is_valid () =
  let device, xtalk, circuit = ladder_fixture () in
  List.iter
    (fun start ->
      let sched, stats = Xtalk_sched.schedule ~ladder_start:start ~device ~xtalk circuit in
      check_valid sched;
      match start with
      | Xtalk_sched.Greedy | Xtalk_sched.Parallel ->
        Alcotest.(check string)
          (Printf.sprintf "start at %s stays there" (Xtalk_sched.rung_name start))
          (Xtalk_sched.rung_name start)
          (Xtalk_sched.rung_name stats.Xtalk_sched.rung)
      | _ -> ())
    Xtalk_sched.all_rungs

(* ---- soak determinism ---- *)

let soak_config =
  {
    Soak.default_config with
    Soak.days = 2;
    seed = 13;
    rb_params = { Rb.lengths = [ 1; 2 ]; seeds = 1; trials = 16 };
    node_budget = 50_000;
  }

let normalize_report (r : Soak.report) =
  (* Reports embed snapshot paths; strip directories so campaigns run
     in different scratch dirs compare equal. *)
  let base = Filename.basename in
  Json.to_string
    (Soak.report_to_json
       {
         r with
         Soak.days =
           List.map
             (fun (d : Soak.day_report) ->
               {
                 d with
                 Soak.loaded_from = Option.map base d.Soak.loaded_from;
                 quarantined = List.map (fun (p, why) -> (base p, why)) d.Soak.quarantined;
               })
             r.Soak.days;
       })

let soak_jobs_deterministic () =
  let device = Presets.example_6q () in
  let run jobs dir =
    Soak.run ~config:{ soak_config with Soak.jobs } ~dir:(tmp dir) device
  in
  let r1 = run 1 "qcx_faults_soak_a" in
  let r2 = run 2 "qcx_faults_soak_b" in
  Alcotest.(check string) "jobs=1 and jobs=2 agree bit for bit" (normalize_report r1)
    (normalize_report r2);
  Alcotest.(check (float 0.0)) "full availability" 1.0 r1.Soak.availability;
  Alcotest.(check int) "no corruption ingested" 0 r1.Soak.total_corrupt_ingested

let suite =
  [
    ( "faults.persist",
      [
        QCheck_alcotest.to_alcotest prop_roundtrip;
        Alcotest.test_case "truncation is an error" `Quick store_truncation_is_error;
        Alcotest.test_case "bitflip is an error" `Quick store_bitflip_is_error;
        Alcotest.test_case "wrong versions are errors" `Quick store_wrong_version_is_error;
        Alcotest.test_case "checksum mismatch is an error" `Quick store_checksum_mismatch_is_error;
        Alcotest.test_case "quarantine and fallback" `Quick store_quarantine_and_fallback;
      ] );
    ( "faults.plan",
      [
        Alcotest.test_case "deterministic per seed" `Quick fault_plan_deterministic;
        Alcotest.test_case "covers every fault class" `Quick fault_plan_exercises_every_class;
      ] );
    ( "faults.characterize",
      [
        Alcotest.test_case "no faults, all fresh" `Quick resilient_no_faults_is_fresh;
        Alcotest.test_case "hang then recover" `Quick resilient_hang_then_recover;
        Alcotest.test_case "fallback to previous" `Quick resilient_falls_back_to_previous;
        Alcotest.test_case "fallback to calibration" `Quick resilient_falls_back_to_calibration;
      ] );
    ( "faults.solver",
      [
        Alcotest.test_case "deadline returns incumbent" `Quick solver_deadline_returns_incumbent;
        Alcotest.test_case "deadline returns incumbent (fast)" `Quick
          solver_deadline_returns_incumbent_fast;
        Alcotest.test_case "loose deadline completes" `Quick solver_deadline_completes_when_loose;
      ] );
    ( "faults.ladder",
      [
        Alcotest.test_case "default is exact" `Quick ladder_default_is_exact;
        Alcotest.test_case "clustered rung" `Quick ladder_clustered_rung;
        Alcotest.test_case "budget blowup degrades" `Quick ladder_budget_blowup_degrades;
        Alcotest.test_case "deadline degrades" `Quick ladder_deadline_degrades;
        Alcotest.test_case "every rung is valid" `Quick ladder_every_rung_is_valid;
      ] );
    ( "faults.soak",
      [ Alcotest.test_case "jobs-independent and available" `Slow soak_jobs_deterministic ] );
  ]
