(* Tests for the error-mitigation subsystem: schedule-aware dynamical
   decoupling (noiseless equivalence, start-time preservation, padding
   on idle-heavy schedules), zero-noise extrapolation (fold identity,
   exact Richardson recovery), the serve-layer mitigation knob (wire
   round trip, cache-key compatibility), and the leaderboard harness
   (jobs determinism, readout column). *)

module Circuit = Core.Circuit
module Gate = Core.Gate
module Schedule = Core.Schedule
module Device = Core.Device
module Presets = Core.Presets
module Idle = Core.Idle
module Dd = Core.Dd
module Zne = Core.Zne
module Leaderboard = Core.Leaderboard
module Exec = Core.Exec
module State = Core.State
module Rng = Core.Rng
module Wire = Core.Wire
module Service = Core.Service
module Canon = Core.Canon
module Json = Core.Json
module Registry = Core.Registry

let pough = Presets.poughkeepsie ()
let pough_truth = Device.ground_truth pough

(* The fig6 Ramsey probe also used by the mitigation bench: a Bell pair
   parked behind barriers while a sequential CNOT chain runs. *)
let ramsey_chain ~hops =
  let base = [ 5; 10; 15; 16; 17; 18; 19; 14; 13; 12; 7; 8; 9; 4; 3; 2 ] in
  let path = base @ List.tl (List.rev base) @ List.tl base in
  let rec chain c = function
    | a :: (b :: _ as rest) -> chain (Circuit.cnot c ~control:a ~target:b) rest
    | _ -> c
  in
  let rec take k = function x :: rest when k > 0 -> x :: take (k - 1) rest | _ -> [] in
  let c = Circuit.create (Device.nqubits pough) in
  let c = Circuit.h c 0 in
  let c = Circuit.cnot c ~control:0 ~target:1 in
  let used = take (hops + 1) path in
  let c = Circuit.barrier c [ 0; 1; List.hd used ] in
  let c = chain c used in
  let c = Circuit.barrier c [ 0; 1; List.nth used (List.length used - 1) ] in
  let c = Circuit.h (Circuit.h c 0) 1 in
  Circuit.measure (Circuit.measure c 0) 1

(* Multiset of (kind, qubits, start, duration) for the non-barrier
   gates of a schedule; DD padding must preserve the original's as a
   sub-multiset (pulses only add to it). *)
let placement_counts sched =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (g : Gate.t) ->
      if not (Gate.is_barrier g) then begin
        let key =
          ( g.Gate.kind,
            g.Gate.qubits,
            Schedule.start sched g.Gate.id,
            Schedule.duration sched g.Gate.id )
        in
        Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
      end)
    (Circuit.gates (Schedule.circuit sched));
  tbl

let sub_multiset smaller larger =
  Hashtbl.fold
    (fun key n acc ->
      acc && Option.value ~default:0 (Hashtbl.find_opt larger key) >= n)
    smaller true

let ideal_fidelity c1 c2 =
  let s1, used1 = Exec.run_ideal c1 in
  let s2, used2 = Exec.run_ideal c2 in
  if used1 <> used2 then 0.0 else State.fidelity s1 s2

(* ---- DD ---- *)

let dd_sequences_compose_to_identity () =
  List.iter
    (fun seq ->
      let c0 = Circuit.h (Circuit.create 1) 0 in
      let c =
        List.fold_left
          (fun c kind -> Circuit.add c kind [ 0 ])
          c0 (Dd.pulses_of seq)
      in
      let f = ideal_fidelity c0 c in
      if f < 1.0 -. 1e-9 then
        Alcotest.failf "%s does not compose to the identity (fidelity %f)"
          (Dd.sequence_name seq) f)
    Dd.all_sequences

let dd_pads_ramsey_chain () =
  let c = ramsey_chain ~hops:10 in
  let sched, _ = Core.Xtalk_sched.schedule ~omega:0.5 ~device:pough ~xtalk:pough_truth c in
  let padded, protection, stats = Dd.pad ~device:pough sched in
  Alcotest.(check bool) "pulses inserted" true (stats.Dd.pulses > 0);
  Alcotest.(check bool) "protection spans emitted" true (protection <> []);
  Alcotest.(check bool) "padded schedule valid" true
    (Result.is_ok (Schedule.validate padded));
  Alcotest.(check bool) "original placements preserved" true
    (sub_multiset (placement_counts sched) (placement_counts padded));
  let f = ideal_fidelity (Schedule.circuit sched) (Schedule.circuit padded) in
  Alcotest.(check bool) "noiseless-equivalent" true (f > 1.0 -. 1e-9);
  let makespan = Schedule.makespan sched in
  Alcotest.(check (float 1e-9)) "makespan untouched" makespan (Schedule.makespan padded);
  List.iter
    (fun (p : Exec.protection) ->
      if p.Exec.p_start < -1e-9 || p.Exec.p_finish > makespan +. 1e-9 then
        Alcotest.failf "protection span [%f, %f] outside the schedule" p.Exec.p_start
          p.Exec.p_finish;
      Alcotest.(check (float 1e-12)) "XY4 residual" (Dd.z_suppression Dd.XY4) p.Exec.p_z)
    protection

let dd_reduces_replayed_error () =
  (* The executor must replay the modelled benefit: on the idle-heavy
     Ramsey chain the DD-padded schedule shows strictly less parity
     error than the bare one (margin far above sampling noise). *)
  let c = ramsey_chain ~hops:40 in
  let sched, _ = Core.Xtalk_sched.schedule ~omega:0.5 ~device:pough ~xtalk:pough_truth c in
  let padded, protection, _ = Dd.pad ~device:pough sched in
  let rng = Rng.create 11 in
  let trials = 8192 in
  let parity counts = Zne.parity_of_counts counts in
  let raw =
    parity
      (Exec.run pough sched ~rng:(Rng.split_nth rng 0) ~trials ~backend:Exec.Stabilizer)
  in
  let dd =
    parity
      (Exec.run ~protection pough padded ~rng:(Rng.split_nth rng 1) ~trials
         ~backend:Exec.Stabilizer)
  in
  let ideal = Zne.ideal_parity c in
  if Float.abs (dd -. ideal) +. 0.02 >= Float.abs (raw -. ideal) then
    Alcotest.failf "DD did not pay: raw err %f, dd err %f" (Float.abs (raw -. ideal))
      (Float.abs (dd -. ideal))

(* qcheck: random hardware-compliant circuits on the 6-qubit example
   device; DD padding never perturbs placements and stays
   noiseless-equivalent under every sequence and baseline scheduler. *)
let fuzz_device = Presets.example_6q ()
let fuzz_edges = Array.of_list (Core.Topology.edges (Device.topology fuzz_device))

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 25)
      (oneof
         [
           map (fun q -> `H (q mod 6)) (int_range 0 5);
           map (fun q -> `X (q mod 6)) (int_range 0 5);
           map (fun i -> `Cx (i mod Array.length fuzz_edges)) (int_range 0 50);
         ]))

let fuzz_circuit ops =
  let c =
    List.fold_left
      (fun c op ->
        match op with
        | `H q -> Circuit.h c q
        | `X q -> Circuit.x c q
        | `Cx i ->
          let a, b = fuzz_edges.(i) in
          Circuit.cnot c ~control:a ~target:b)
      (Circuit.create 6) ops
  in
  Circuit.measure_all c

let prop_dd_noiseless_equivalence =
  QCheck.Test.make ~name:"DD padding is noiseless-equivalent (fuzz)" ~count:40
    (QCheck.make gen_ops) (fun ops ->
      let c = fuzz_circuit ops in
      List.for_all
        (fun sched ->
          List.for_all
            (fun sequence ->
              let padded, _, _ = Dd.pad ~sequence ~device:fuzz_device sched in
              Result.is_ok (Schedule.validate padded)
              && sub_multiset (placement_counts sched) (placement_counts padded)
              && ideal_fidelity (Schedule.circuit sched) (Schedule.circuit padded)
                 > 1.0 -. 1e-9)
            Dd.all_sequences)
        [ Core.Serial_sched.schedule fuzz_device c; Core.Par_sched.schedule fuzz_device c ])

(* ---- ZNE ---- *)

let zne_fold_scale1_is_identity () =
  let c = ramsey_chain ~hops:6 in
  let folded = Zne.fold c ~scale:1 in
  Alcotest.(check int) "same length" (Circuit.length c) (Circuit.length folded);
  List.iter2
    (fun (a : Gate.t) (b : Gate.t) ->
      if a.Gate.kind <> b.Gate.kind || a.Gate.qubits <> b.Gate.qubits then
        Alcotest.fail "scale-1 fold changed a gate")
    (Circuit.gates c) (Circuit.gates folded)

let zne_fold_scale3 () =
  let c = fuzz_circuit [ `H 0; `Cx 0; `X 2; `Cx 3 ] in
  let folded = Zne.fold c ~scale:3 in
  let body_len circuit =
    List.length (List.filter (fun g -> not (Gate.is_measure g)) (Circuit.gates circuit))
  in
  let measures circuit =
    List.length (List.filter Gate.is_measure (Circuit.gates circuit))
  in
  Alcotest.(check int) "body tripled" (3 * body_len c) (body_len folded);
  Alcotest.(check int) "measures kept" (measures c) (measures folded);
  Alcotest.(check bool) "logically the identity stretch" true
    (ideal_fidelity c folded > 1.0 -. 1e-9);
  List.iter
    (fun scale ->
      match Zne.fold c ~scale with
      | _ -> Alcotest.failf "scale %d accepted" scale
      | exception Invalid_argument _ -> ())
    [ 0; 2; -3 ]

let zne_extrapolate_exact () =
  (* Linear model, order 1: exact recovery with zero residual. *)
  let scales = [ 1.0; 3.0; 5.0 ] in
  let z, r = Zne.extrapolate ~scales (List.map (fun s -> 2.0 -. (0.3 *. s)) scales) in
  Alcotest.(check (float 1e-9)) "linear zero-noise" 2.0 z;
  Alcotest.(check (float 1e-9)) "linear residual" 0.0 r;
  (* Quadratic model, order 2. *)
  let z2, r2 =
    Zne.extrapolate ~order:2 ~scales
      (List.map (fun s -> 1.0 +. (0.5 *. s) -. (0.1 *. s *. s)) scales)
  in
  Alcotest.(check (float 1e-9)) "quadratic zero-noise" 1.0 z2;
  Alcotest.(check (float 1e-9)) "quadratic residual" 0.0 r2;
  (* Too few points / unsupported order raise. *)
  (match Zne.extrapolate ~order:2 ~scales:[ 1.0; 3.0 ] [ 0.5; 0.4 ] with
  | _ -> Alcotest.fail "order 2 with 2 points accepted"
  | exception Invalid_argument _ -> ());
  match Zne.extrapolate ~order:3 ~scales [ 1.0; 2.0; 3.0 ] with
  | _ -> Alcotest.fail "order 3 accepted"
  | exception Invalid_argument _ -> ()

let zne_estimate_deterministic () =
  let c = fuzz_circuit [ `H 0; `Cx 0; `Cx 1; `X 3 ] in
  let compile circuit = Core.Serial_sched.schedule fuzz_device circuit in
  let estimate jobs =
    Zne.estimate ~jobs ~scales:[ 1; 3 ] ~trials:512 ~backend:Exec.Stabilizer
      ~device:fuzz_device ~compile ~rng:(Rng.create 5) c
  in
  let e1 = estimate 1 and e2 = estimate 2 in
  Alcotest.(check (list (float 0.0))) "expectations jobs-identical"
    e1.Zne.expectations e2.Zne.expectations;
  Alcotest.(check (float 0.0)) "zero-noise jobs-identical" e1.Zne.zero_noise
    e2.Zne.zero_noise;
  Alcotest.(check int) "order recorded" 1 e1.Zne.order;
  Alcotest.(check bool) "estimate is finite" true (Float.is_finite e1.Zne.zero_noise)

(* ---- serve knob ---- *)

let wire_mitigation_names () =
  Alcotest.(check string) "none" "none" (Wire.mitigation_name None);
  Alcotest.(check string) "dd-xy4" "dd-xy4" (Wire.mitigation_name (Some Dd.XY4));
  List.iter
    (fun (name, expected) ->
      match Wire.mitigation_of_name name with
      | Ok m ->
        if m <> expected then Alcotest.failf "%s parsed to the wrong sequence" name
      | Error e -> Alcotest.failf "%s rejected: %s" name e)
    [
      ("none", None);
      ("dd", Some Dd.XY4);
      ("dd-xy4", Some Dd.XY4);
      ("dd-x2", Some Dd.X2);
      ("dd-cpmg", Some Dd.CPMG);
    ];
  Alcotest.(check bool) "bogus rejected" true
    (Result.is_error (Wire.mitigation_of_name "bogus"))

let bell_with_measures n =
  let c = Circuit.cnot (Circuit.h (Circuit.create n) 0) ~control:0 ~target:1 in
  Circuit.measure (Circuit.measure c 0) 1

let wire_mitigation_roundtrip () =
  let circuit = bell_with_measures 6 in
  let req params = Wire.Compile { id = "m1"; device = "example6q"; circuit; params } in
  let roundtrip params =
    match Wire.request_of_json (Wire.request_to_json (req params)) with
    | Ok (Wire.Compile { params = p; _ }) -> p
    | Ok _ -> Alcotest.fail "wrong request shape"
    | Error e -> Alcotest.failf "round trip failed: %s" e
  in
  List.iter
    (fun m ->
      let p = roundtrip { Wire.default_params with Wire.mitigation = m } in
      if p.Wire.mitigation <> m then
        Alcotest.failf "mitigation %s did not survive the round trip"
          (Wire.mitigation_name m))
    [ None; Some Dd.XY4; Some Dd.X2; Some Dd.CPMG ];
  (* A legacy request without the key parses as no mitigation. *)
  let stripped =
    match Wire.request_to_json (req Wire.default_params) with
    | Json.Object fields ->
      Json.Object (List.filter (fun (k, _) -> k <> "mitigation") fields)
    | j -> j
  in
  match Wire.request_of_json stripped with
  | Ok (Wire.Compile { params = p; _ }) ->
    Alcotest.(check bool) "absent key means none" true (p.Wire.mitigation = None)
  | Ok _ -> Alcotest.fail "wrong request shape"
  | Error e -> Alcotest.failf "legacy request rejected: %s" e

let example_service () =
  let device = Presets.example_6q () in
  let registry = Registry.create () in
  ignore
    (Registry.add_static registry ~id:"example6q" ~device
       ~xtalk:(Device.ground_truth device));
  Service.create registry

let service_cache_key_compatible () =
  let canon = Canon.normalize (bell_with_measures 6) in
  let key params = Service.cache_key ~device_id:"example6q" ~epoch:"e1" ~params canon in
  let legacy = key Wire.default_params in
  Alcotest.(check string) "explicit none matches the pre-knob key" legacy
    (key { Wire.default_params with Wire.mitigation = None });
  List.iter
    (fun seq ->
      let k = key { Wire.default_params with Wire.mitigation = Some seq } in
      if k = legacy then
        Alcotest.failf "dd-%s shares the unmitigated cache key" (Dd.sequence_name seq))
    Dd.all_sequences;
  Alcotest.(check bool) "sequences key separately" true
    (key { Wire.default_params with Wire.mitigation = Some Dd.XY4 }
    <> key { Wire.default_params with Wire.mitigation = Some Dd.CPMG })

let service_compile_with_dd () =
  let service = example_service () in
  let circuit = bell_with_measures 6 in
  let params = { Wire.default_params with Wire.mitigation = Some Dd.XY4 } in
  let o1 =
    match Service.compile service ~device:"example6q" ~params circuit with
    | Ok o -> o
    | Error e -> Alcotest.failf "dd compile failed: %s" e
  in
  Alcotest.(check bool) "dd compile is cold" false o1.Service.cached;
  Alcotest.(check bool) "schedule valid" true
    (Result.is_ok (Schedule.validate o1.Service.schedule));
  let o2 =
    match Service.compile service ~device:"example6q" ~params circuit with
    | Ok o -> o
    | Error e -> Alcotest.failf "dd recompile failed: %s" e
  in
  Alcotest.(check bool) "dd compile cached on repeat" true o2.Service.cached;
  let o3 =
    match Service.compile service ~device:"example6q" circuit with
    | Ok o -> o
    | Error e -> Alcotest.failf "unmitigated compile failed: %s" e
  in
  Alcotest.(check bool) "unmitigated keys separately (cold again)" false
    o3.Service.cached;
  (* Idle exposure of every cold compile shows up in stats/health. *)
  let served =
    match Service.stats_json service with
    | Json.Object fields -> (
      match List.assoc_opt "served" fields with
      | Some j -> j
      | None -> Alcotest.fail "served section missing")
    | _ -> Alcotest.fail "stats is not an object"
  in
  (match Json.find_float "idle_ns" served with
  | Ok v -> Alcotest.(check bool) "stats idle_ns present" true (v >= 0.0)
  | Error e -> Alcotest.failf "stats idle_ns missing: %s" e);
  match Json.find_float "idle_ns" (Service.health_json service) with
  | Ok v -> Alcotest.(check bool) "health idle_ns present" true (v >= 0.0)
  | Error e -> Alcotest.failf "health idle_ns missing: %s" e

(* ---- idle stats + leaderboard ---- *)

let xtalk_stats_carry_idle () =
  let c = ramsey_chain ~hops:10 in
  let sched, stats =
    Core.Xtalk_sched.schedule ~omega:0.5 ~device:pough ~xtalk:pough_truth c
  in
  Alcotest.(check (float 1e-9)) "idle_total matches the Idle module"
    (Idle.total sched) stats.Core.Xtalk_sched.idle_total;
  Alcotest.(check (float 1e-9)) "idle_max matches the Idle module"
    (Idle.max_window sched) stats.Core.Xtalk_sched.idle_max;
  Alcotest.(check bool) "ramsey chain is idle-heavy" true
    (stats.Core.Xtalk_sched.idle_total > 0.0);
  (* per_qubit decomposes the same totals. *)
  let per = Idle.per_qubit sched in
  let total = List.fold_left (fun acc (_, t, _) -> acc +. t) 0.0 per in
  Alcotest.(check (float 1e-6)) "per-qubit totals sum up"
    stats.Core.Xtalk_sched.idle_total total

let leaderboard_jobs_deterministic () =
  let schedulers =
    [
      {
        Leaderboard.s_name = "SerialSched";
        s_compile = (fun c -> Core.Serial_sched.schedule pough c);
      };
      {
        Leaderboard.s_name = "ParSched";
        s_compile = (fun c -> Core.Par_sched.schedule pough c);
      };
    ]
  in
  let workloads =
    [
      {
        Leaderboard.w_name = "ramsey-10";
        w_circuit = ramsey_chain ~hops:10;
        w_idle_heavy = true;
      };
    ]
  in
  let table jobs =
    Leaderboard.run ~jobs ~scales:[ 1; 3 ] ~trials:512 ~backend:Exec.Stabilizer
      ~device:pough ~schedulers ~workloads ~rng:(Rng.create 7) ()
  in
  let t1 = table 1 and t2 = table 2 and t4 = table 4 in
  Alcotest.(check int) "2 schedulers x 4 strategies" 8 (List.length t1);
  Alcotest.(check bool) "jobs 1 = jobs 2" true (t1 = t2);
  Alcotest.(check bool) "jobs 1 = jobs 4" true (t1 = t4);
  List.iter
    (fun (c : Leaderboard.cell) ->
      Alcotest.(check bool) "readout column finite" true
        (Float.is_finite c.Leaderboard.c_readout_error);
      Alcotest.(check bool) "error non-negative" true (c.Leaderboard.c_error >= 0.0))
    t1;
  (* The aggregate ranks every strategy and the slices are non-empty. *)
  Alcotest.(check int) "aggregate covers all strategies" 4
    (List.length (Leaderboard.aggregate t1));
  let dd = Leaderboard.mean_error ~idle_heavy_only:true Leaderboard.Dd_only t1 in
  Alcotest.(check bool) "idle-heavy DD slice computes" true (Float.is_finite dd)

let dd_suite =
  ( "mitigation.dd",
    [
      Alcotest.test_case "sequences compose to the identity" `Quick
        dd_sequences_compose_to_identity;
      Alcotest.test_case "pads the ramsey chain" `Quick dd_pads_ramsey_chain;
      Alcotest.test_case "reduces replayed error" `Slow dd_reduces_replayed_error;
      QCheck_alcotest.to_alcotest prop_dd_noiseless_equivalence;
    ] )

let zne_suite =
  ( "mitigation.zne",
    [
      Alcotest.test_case "scale-1 fold is the identity" `Quick zne_fold_scale1_is_identity;
      Alcotest.test_case "scale-3 fold stretches the body" `Quick zne_fold_scale3;
      Alcotest.test_case "extrapolation exact on known models" `Quick zne_extrapolate_exact;
      Alcotest.test_case "estimate is jobs-deterministic" `Quick zne_estimate_deterministic;
    ] )

let serve_suite =
  ( "mitigation.serve",
    [
      Alcotest.test_case "mitigation names" `Quick wire_mitigation_names;
      Alcotest.test_case "wire round trip + legacy default" `Quick wire_mitigation_roundtrip;
      Alcotest.test_case "cache key compatibility" `Quick service_cache_key_compatible;
      Alcotest.test_case "service compiles with dd" `Quick service_compile_with_dd;
    ] )

let leaderboard_suite =
  ( "mitigation.leaderboard",
    [
      Alcotest.test_case "xtalk stats carry idle" `Quick xtalk_stats_carry_idle;
      Alcotest.test_case "jobs-deterministic" `Slow leaderboard_jobs_deterministic;
    ] )

let suite = [ dd_suite; zne_suite; serve_suite; leaderboard_suite ]
