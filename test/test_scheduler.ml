(* Tests for qcx_scheduler: routing, durations, the three schedulers,
   the SMT encoding, barrier insertion and evaluation. *)

module Circuit = Core.Circuit
module Dag = Core.Dag
module Schedule = Core.Schedule
module Device = Core.Device
module Presets = Core.Presets
module Topology = Core.Topology
module Routing = Core.Routing
module Durations = Core.Durations
module Par_sched = Core.Par_sched
module Serial_sched = Core.Serial_sched
module Xtalk_sched = Core.Xtalk_sched
module Encoding = Core.Encoding
module Barriers = Core.Barriers
module Evaluate = Core.Evaluate

let pough = Presets.poughkeepsie ()
let truth = Device.ground_truth pough

let swap_circuit src dst =
  Circuit.measure_all (Core.Swap_circuits.build pough ~src ~dst).Core.Swap_circuits.circuit

(* ---- Routing ---- *)

let routing_meet_in_middle () =
  let swaps, bell = Routing.meet_in_middle pough ~src:0 ~dst:13 in
  Alcotest.(check int) "four swaps" 4 (List.length swaps);
  Alcotest.(check (pair int int)) "bell edge" (10, 11) bell;
  Alcotest.(check (list (pair int int))) "paper's fig 6 swaps"
    [ (0, 5); (5, 10); (13, 12); (12, 11) ]
    swaps

let routing_adjacent () =
  let swaps, bell = Routing.meet_in_middle pough ~src:0 ~dst:1 in
  Alcotest.(check int) "no swaps" 0 (List.length swaps);
  Alcotest.(check (pair int int)) "direct edge" (0, 1) bell

let routing_route_makes_compliant () =
  (* A CNOT between distant qubits must route onto device edges. *)
  let c = Circuit.cnot (Circuit.create 20) ~control:0 ~target:13 in
  let routed = Circuit.decompose_swaps (Routing.route pough c) in
  let topo = Device.topology pough in
  List.iter
    (fun g ->
      if Core.Gate.is_two_qubit g then
        match g.Core.Gate.qubits with
        | [ a; b ] ->
          Alcotest.(check bool) "cnot on device edge" true (Topology.has_edge topo (a, b))
        | _ -> Alcotest.fail "malformed")
    (Circuit.gates routed)

(* ---- Durations ---- *)

let durations_assign () =
  let c = Circuit.create 20 in
  let c = Circuit.h c 0 in
  let c = Circuit.cnot c ~control:0 ~target:1 in
  let c = Circuit.barrier c [ 0; 1 ] in
  let c = Circuit.measure c 0 in
  let d = Durations.assign pough c in
  let cal = Device.calibration pough in
  Alcotest.(check (float 1e-9)) "1q"
    (Core.Calibration.qubit cal 0).Core.Calibration.single_qubit_duration d.(0);
  Alcotest.(check (float 1e-9)) "cnot"
    (Core.Calibration.gate cal (0, 1)).Core.Calibration.cnot_duration d.(1);
  Alcotest.(check (float 1e-9)) "barrier" 0.0 d.(2);
  Alcotest.(check (float 1e-9)) "readout"
    (Core.Calibration.qubit cal 0).Core.Calibration.readout_duration d.(3)

let durations_reject_swap () =
  let c = Circuit.swap (Circuit.create 20) 0 1 in
  Alcotest.(check bool) "swap rejected" true
    (try
       ignore (Durations.assign pough c);
       false
     with Invalid_argument _ -> true)

(* ---- Baseline schedulers ---- *)

let par_sched_valid_and_parallel () =
  let c = swap_circuit 0 13 in
  let s = Par_sched.schedule pough c in
  (match Schedule.validate s with Ok () -> () | Error e -> Alcotest.fail e);
  (* the two independent swap chains must overlap somewhere *)
  let dag = Dag.of_circuit c in
  let any_parallel =
    List.exists
      (fun g1 ->
        List.exists
          (fun g2 ->
            g1.Core.Gate.id < g2.Core.Gate.id
            && Core.Gate.is_two_qubit g1 && Core.Gate.is_two_qubit g2
            && Dag.can_overlap dag g1.Core.Gate.id g2.Core.Gate.id
            && Schedule.overlaps s g1.Core.Gate.id g2.Core.Gate.id)
          (Circuit.gates c))
      (Circuit.gates c)
  in
  Alcotest.(check bool) "has parallelism" true any_parallel

let serial_sched_no_overlap () =
  let c = swap_circuit 0 13 in
  let s = Serial_sched.schedule pough c in
  (match Schedule.validate s with Ok () -> () | Error e -> Alcotest.fail e);
  List.iter
    (fun g1 ->
      List.iter
        (fun g2 ->
          if
            g1.Core.Gate.id < g2.Core.Gate.id
            && Core.Gate.is_unitary g1 && Core.Gate.is_unitary g2
          then
            Alcotest.(check bool) "no unitary overlap" false
              (Schedule.overlaps s g1.Core.Gate.id g2.Core.Gate.id))
        (Circuit.gates c))
    (Circuit.gates c)

let serial_longer_than_par () =
  let c = swap_circuit 0 13 in
  Alcotest.(check bool) "serial duration larger" true
    (Evaluate.duration (Serial_sched.schedule pough c)
    > Evaluate.duration (Par_sched.schedule pough c))

let schedule_with_orderings_respected () =
  let c = swap_circuit 0 13 in
  (* Serialize gate 4 (a cx of swap 5,10) after gate 12 (a cx of swap
     12,11) — a backward edge in program order. *)
  let s = Par_sched.schedule_with_orderings pough c ~extra:[ (12, 4) ] in
  (match Schedule.validate s with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "ordering respected" true
    (Schedule.start s 4 >= Schedule.finish s 12 -. 1e-9)

let schedule_with_orderings_cycle_detected () =
  let c = swap_circuit 0 13 in
  Alcotest.(check bool) "cycle rejected" true
    (try
       ignore (Par_sched.schedule_with_orderings pough c ~extra:[ (4, 12); (12, 4) ]);
       false
     with Invalid_argument _ -> true)

(* ---- Encoding ---- *)

let encoding_instances () =
  let c = swap_circuit 0 13 in
  let dag = Dag.of_circuit c in
  let instances = Encoding.interfering_instances ~device:pough ~xtalk:truth ~threshold:3.0 ~dag in
  Alcotest.(check int) "nine instances on fig6 path" 9 (List.length instances);
  List.iter
    (fun (i, j) ->
      Alcotest.(check bool) "DAG-independent" true (Dag.can_overlap dag i j);
      let edge g =
        match (Circuit.gate c g).Core.Gate.qubits with
        | [ a; b ] -> Topology.normalize (a, b)
        | _ -> Alcotest.fail "malformed"
      in
      Alcotest.(check bool) "edges differ" true (edge i <> edge j))
    instances

let encoding_no_instances_without_crosstalk () =
  let c = swap_circuit 15 19 in
  (* path along the bottom row: no flagged pairs *)
  let dag = Dag.of_circuit c in
  Alcotest.(check (list (pair int int))) "no instances" []
    (Encoding.interfering_instances ~device:pough ~xtalk:Core.Crosstalk.empty ~threshold:3.0 ~dag)

(* ---- XtalkSched ---- *)

let xtalk_valid_schedule () =
  let c = swap_circuit 0 13 in
  let s, stats = Xtalk_sched.schedule ~omega:0.5 ~device:pough ~xtalk:truth c in
  (match Schedule.validate s with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "optimal" true stats.Xtalk_sched.optimal;
  Alcotest.(check int) "pairs" 9 stats.Xtalk_sched.pairs

let xtalk_serializes_flagged_pairs () =
  let c = swap_circuit 0 13 in
  let s, _ = Xtalk_sched.schedule ~omega:0.5 ~device:pough ~xtalk:truth c in
  let dag = Dag.of_circuit (Schedule.circuit s) in
  let instances = Encoding.interfering_instances ~device:pough ~xtalk:truth ~threshold:3.0 ~dag in
  List.iter
    (fun (i, j) ->
      Alcotest.(check bool) "interfering pair serialized" false (Schedule.overlaps s i j))
    instances

let xtalk_beats_baselines_oracle () =
  let c = swap_circuit 5 12 in
  let err s = (Evaluate.oracle pough s).Evaluate.error in
  let xs, _ = Xtalk_sched.schedule ~omega:0.5 ~device:pough ~xtalk:truth c in
  Alcotest.(check bool) "beats par" true (err xs < err (Par_sched.schedule pough c));
  Alcotest.(check bool) "no worse than serial" true
    (err xs <= err (Serial_sched.schedule pough c) +. 1e-9)

let xtalk_omega_one_is_serial () =
  let c = swap_circuit 0 13 in
  let s, _ = Xtalk_sched.schedule ~omega:1.0 ~device:pough ~xtalk:truth c in
  Alcotest.(check (float 1e-6)) "same duration as SerialSched"
    (Evaluate.duration (Serial_sched.schedule pough (Circuit.decompose_swaps c)))
    (Evaluate.duration s)

let xtalk_cluster_decomposition_path () =
  (* Force the decomposition by setting max_exact_pairs below the pair
     count; the result must still serialize all flagged pairs. *)
  let c = swap_circuit 0 13 in
  let s, stats =
    Xtalk_sched.schedule ~omega:0.5 ~max_exact_pairs:2 ~device:pough ~xtalk:truth c
  in
  (match Schedule.validate s with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "decomposed" true (stats.Xtalk_sched.clusters >= 1);
  Alcotest.(check bool) "not claimed optimal" false stats.Xtalk_sched.optimal;
  let dag = Dag.of_circuit (Schedule.circuit s) in
  let instances = Encoding.interfering_instances ~device:pough ~xtalk:truth ~threshold:3.0 ~dag in
  List.iter
    (fun (i, j) -> Alcotest.(check bool) "still serialized" false (Schedule.overlaps s i j))
    instances

let sched_fingerprint s =
  let c = Schedule.circuit s in
  List.map (fun g -> (g.Core.Gate.id, Schedule.start s g.Core.Gate.id)) (Circuit.gates c)

let xtalk_clustered_jobs_determinism () =
  (* The clustered rung solves connected components on the domain
     pool; the merge is by cluster index, so the schedule must be
     bit-identical at every [jobs]. *)
  let c = swap_circuit 0 13 in
  let reference =
    Xtalk_sched.schedule ~omega:0.5 ~max_exact_pairs:2 ~jobs:1 ~device:pough ~xtalk:truth c
  in
  let ref_fp = sched_fingerprint (fst reference) in
  List.iter
    (fun jobs ->
      let s, stats =
        Xtalk_sched.schedule ~omega:0.5 ~max_exact_pairs:2 ~jobs ~device:pough
          ~xtalk:truth c
      in
      Alcotest.(check bool)
        (Printf.sprintf "schedule identical at jobs=%d" jobs)
        true
        (sched_fingerprint s = ref_fp);
      Alcotest.(check int)
        (Printf.sprintf "node count identical at jobs=%d" jobs)
        (snd reference).Xtalk_sched.nodes stats.Xtalk_sched.nodes)
    [ 2; 4 ]

let xtalk_tune_omega_jobs_determinism () =
  let c = swap_circuit 5 12 in
  let run jobs =
    let omega, s, _ = Xtalk_sched.tune_omega ~jobs ~device:pough ~xtalk:truth c in
    (omega, sched_fingerprint s)
  in
  let o1, fp1 = run 1 in
  let o4, fp4 = run 4 in
  Alcotest.(check (float 0.0)) "same omega chosen" o1 o4;
  Alcotest.(check bool) "same schedule" true (fp1 = fp4)

let xtalk_empty_xtalk_matches_par_objective () =
  let c = swap_circuit 0 13 in
  let s, stats = Xtalk_sched.schedule ~omega:0.5 ~device:pough ~xtalk:Core.Crosstalk.empty c in
  Alcotest.(check int) "no pairs" 0 stats.Xtalk_sched.pairs;
  (match Schedule.validate s with Ok () -> () | Error e -> Alcotest.fail e);
  (* Without crosstalk data the schedule must be as parallel as
     ParSched's duration. *)
  Alcotest.(check bool) "parallel duration" true
    (Evaluate.duration s <= Evaluate.duration (Par_sched.schedule pough c) +. 1e-6)

(* ---- GreedySched ---- *)

let greedy_valid_and_serializes () =
  let c = swap_circuit 0 13 in
  let s, pairs = Core.Greedy_sched.schedule ~device:pough ~xtalk:truth c in
  Alcotest.(check int) "nine pairs serialized" 9 pairs;
  (match Schedule.validate s with Ok () -> () | Error e -> Alcotest.fail e);
  let dag = Dag.of_circuit (Schedule.circuit s) in
  let instances = Encoding.interfering_instances ~device:pough ~xtalk:truth ~threshold:3.0 ~dag in
  List.iter
    (fun (i, j) -> Alcotest.(check bool) "no overlap" false (Schedule.overlaps s i j))
    instances

let greedy_never_better_than_exact () =
  (* The exact optimizer minimizes the model objective; greedy is a
     feasible point of the same space, so the exact objective's oracle
     error should not exceed greedy's by more than noise-model slack. *)
  List.iter
    (fun (src, dst) ->
      let c = swap_circuit src dst in
      let xs, _ = Xtalk_sched.schedule ~omega:0.5 ~device:pough ~xtalk:truth c in
      let gs, _ = Core.Greedy_sched.schedule ~device:pough ~xtalk:truth c in
      let err s = (Evaluate.oracle pough s).Evaluate.error in
      Alcotest.(check bool)
        (Printf.sprintf "(%d,%d) exact %.3f <= greedy %.3f + slack" src dst (err xs) (err gs))
        true
        (err xs <= err gs +. 0.02))
    [ (0, 13); (5, 12); (0, 12) ]

let greedy_no_crosstalk_is_parsched () =
  let c = swap_circuit 0 13 in
  let s, pairs = Core.Greedy_sched.schedule ~device:pough ~xtalk:Core.Crosstalk.empty c in
  Alcotest.(check int) "no pairs" 0 pairs;
  Alcotest.(check (float 1e-6)) "same duration as ParSched"
    (Evaluate.duration (Par_sched.schedule pough (Circuit.decompose_swaps c)))
    (Evaluate.duration s)

(* ---- Barriers ---- *)

let barriers_roundtrip () =
  let c = swap_circuit 0 13 in
  let s, _ = Xtalk_sched.schedule ~omega:0.5 ~device:pough ~xtalk:truth c in
  let dag = Dag.of_circuit (Schedule.circuit s) in
  let instances = Encoding.interfering_instances ~device:pough ~xtalk:truth ~threshold:3.0 ~dag in
  let serialized = Barriers.serialized_pairs s ~pairs:instances in
  Alcotest.(check int) "all nine serialized" 9 (List.length serialized);
  let barriered = Barriers.insert s ~serialized in
  (* Replaying the barriered circuit through ParSched must keep every
     flagged pair serialized. *)
  let replay = Par_sched.schedule pough barriered in
  (match Schedule.validate replay with Ok () -> () | Error e -> Alcotest.fail e);
  let dag2 = Dag.of_circuit barriered in
  let instances2 =
    Encoding.interfering_instances ~device:pough ~xtalk:truth ~threshold:3.0 ~dag:dag2
  in
  (* After barrier insertion the pairs are DAG-ordered, so no instance
     may remain that overlaps in the replayed schedule. *)
  List.iter
    (fun (i, j) ->
      Alcotest.(check bool) "replay keeps serialization" false (Schedule.overlaps replay i j))
    instances2

(* ---- Evaluate ---- *)

let evaluate_breakdown_bounds () =
  let c = swap_circuit 0 13 in
  let s = Par_sched.schedule pough c in
  let b = Evaluate.oracle pough s in
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool) (name ^ " in [0,1]") true (v >= 0.0 && v <= 1.0))
    [
      ("gate", b.Evaluate.gate_success);
      ("deco", b.Evaluate.decoherence_success);
      ("readout", b.Evaluate.readout_success);
      ("success", b.Evaluate.success);
      ("error", b.Evaluate.error);
    ];
  Alcotest.(check (float 1e-9)) "success product"
    (b.Evaluate.gate_success *. b.Evaluate.decoherence_success *. b.Evaluate.readout_success)
    b.Evaluate.success

let evaluate_model_vs_oracle () =
  (* With characterized data equal to ground truth, the model view and
     oracle view agree on serialized schedules (full-overlap weighting
     only differs when gates partially overlap). *)
  let c = swap_circuit 0 13 in
  let s = Serial_sched.schedule pough c in
  let model = Evaluate.model pough ~xtalk:truth s in
  let oracle = Evaluate.oracle pough s in
  Alcotest.(check (float 1e-9)) "serialized: same gate success" oracle.Evaluate.gate_success
    model.Evaluate.gate_success

let evaluate_duration_excludes_readout () =
  let c = Circuit.measure_all (Circuit.h (Circuit.create 20) 0) in
  let s = Par_sched.schedule pough c in
  Alcotest.(check (float 1e-9)) "just the H gate" 50.0 (Evaluate.duration s)

let suite =
  [
    ( "scheduler.routing",
      [
        Alcotest.test_case "meet in middle" `Quick routing_meet_in_middle;
        Alcotest.test_case "adjacent" `Quick routing_adjacent;
        Alcotest.test_case "route compliance" `Quick routing_route_makes_compliant;
      ] );
    ( "scheduler.durations",
      [
        Alcotest.test_case "assign" `Quick durations_assign;
        Alcotest.test_case "reject swap" `Quick durations_reject_swap;
      ] );
    ( "scheduler.baselines",
      [
        Alcotest.test_case "par valid and parallel" `Quick par_sched_valid_and_parallel;
        Alcotest.test_case "serial no overlap" `Quick serial_sched_no_overlap;
        Alcotest.test_case "serial longer" `Quick serial_longer_than_par;
        Alcotest.test_case "orderings respected" `Quick schedule_with_orderings_respected;
        Alcotest.test_case "ordering cycle detected" `Quick schedule_with_orderings_cycle_detected;
      ] );
    ( "scheduler.encoding",
      [
        Alcotest.test_case "instances" `Quick encoding_instances;
        Alcotest.test_case "no instances without crosstalk" `Quick
          encoding_no_instances_without_crosstalk;
      ] );
    ( "scheduler.xtalk",
      [
        Alcotest.test_case "valid schedule" `Quick xtalk_valid_schedule;
        Alcotest.test_case "serializes flagged pairs" `Quick xtalk_serializes_flagged_pairs;
        Alcotest.test_case "beats baselines (oracle)" `Quick xtalk_beats_baselines_oracle;
        Alcotest.test_case "omega 1 = serial" `Quick xtalk_omega_one_is_serial;
        Alcotest.test_case "cluster decomposition" `Quick xtalk_cluster_decomposition_path;
        Alcotest.test_case "clustered jobs determinism" `Quick
          xtalk_clustered_jobs_determinism;
        Alcotest.test_case "tune_omega jobs determinism" `Quick
          xtalk_tune_omega_jobs_determinism;
        Alcotest.test_case "empty crosstalk data" `Quick xtalk_empty_xtalk_matches_par_objective;
      ] );
    ( "scheduler.greedy",
      [
        Alcotest.test_case "valid and serializes" `Quick greedy_valid_and_serializes;
        Alcotest.test_case "never better than exact" `Quick greedy_never_better_than_exact;
        Alcotest.test_case "no crosstalk = parsched" `Quick greedy_no_crosstalk_is_parsched;
      ] );
    ("scheduler.barriers", [ Alcotest.test_case "roundtrip" `Quick barriers_roundtrip ]);
    ( "scheduler.evaluate",
      [
        Alcotest.test_case "breakdown bounds" `Quick evaluate_breakdown_bounds;
        Alcotest.test_case "model vs oracle" `Quick evaluate_model_vs_oracle;
        Alcotest.test_case "duration excludes readout" `Quick evaluate_duration_excludes_readout;
      ] );
  ]

(* ---- fuzzing: every scheduler emits valid schedules on random
   hardware-compliant circuits over the Figure 1 example device ---- *)

let fuzz_device = Presets.example_6q ()
let fuzz_truth = Device.ground_truth fuzz_device
let fuzz_edges = Array.of_list (Topology.edges (Device.topology fuzz_device))

let gen_fuzz_ops =
  QCheck.Gen.(
    list_size (int_range 1 30)
      (oneof
         [
           map (fun q -> `H (q mod 6)) (int_range 0 5);
           map (fun q -> `X (q mod 6)) (int_range 0 5);
           map (fun i -> `Cx (i mod Array.length fuzz_edges)) (int_range 0 50);
         ]))

let fuzz_circuit ops =
  let c =
    List.fold_left
      (fun c op ->
        match op with
        | `H q -> Circuit.h c q
        | `X q -> Circuit.x c q
        | `Cx i ->
          let a, b = fuzz_edges.(i) in
          Circuit.cnot c ~control:a ~target:b)
      (Circuit.create 6) ops
  in
  Circuit.measure_all c

let prop_schedulers_valid =
  QCheck.Test.make ~name:"all schedulers produce valid schedules (fuzz)" ~count:60
    (QCheck.make gen_fuzz_ops) (fun ops ->
      let c = fuzz_circuit ops in
      let ok s = Result.is_ok (Schedule.validate s) in
      ok (Par_sched.schedule fuzz_device c)
      && ok (Serial_sched.schedule fuzz_device c)
      && ok (fst (Core.Greedy_sched.schedule ~device:fuzz_device ~xtalk:fuzz_truth c))
      && ok (fst (Xtalk_sched.schedule ~omega:0.5 ~device:fuzz_device ~xtalk:fuzz_truth c)))

let prop_xtalk_never_worse_than_both_baselines =
  QCheck.Test.make ~name:"xtalk oracle error <= min(baselines) + slack (fuzz)" ~count:25
    (QCheck.make gen_fuzz_ops) (fun ops ->
      let c = fuzz_circuit ops in
      let err s = (Evaluate.oracle fuzz_device s).Evaluate.error in
      let xs, _ = Xtalk_sched.schedule ~omega:0.5 ~device:fuzz_device ~xtalk:fuzz_truth c in
      (* omega = 0.5 optimizes a weighted blend, so allow small slack
         against the per-baseline extremes. *)
      err xs
      <= min (err (Par_sched.schedule fuzz_device c)) (err (Serial_sched.schedule fuzz_device c))
         +. 0.05)

let prop_xtalk_serializes_all_instances =
  QCheck.Test.make ~name:"xtalk at omega 0.9 overlaps no flagged instance (fuzz)" ~count:40
    (QCheck.make gen_fuzz_ops) (fun ops ->
      let c = fuzz_circuit ops in
      let s, _ = Xtalk_sched.schedule ~omega:0.9 ~device:fuzz_device ~xtalk:fuzz_truth c in
      let dag = Dag.of_circuit (Schedule.circuit s) in
      let instances =
        Encoding.interfering_instances ~device:fuzz_device ~xtalk:fuzz_truth ~threshold:3.0 ~dag
      in
      List.for_all (fun (i, j) -> not (Schedule.overlaps s i j)) instances)

let fuzz_suite =
  ( "scheduler.fuzz",
    [
      QCheck_alcotest.to_alcotest prop_schedulers_valid;
      QCheck_alcotest.to_alcotest prop_xtalk_never_worse_than_both_baselines;
      QCheck_alcotest.to_alcotest prop_xtalk_serializes_all_instances;
    ] )

let suite = suite @ [ fuzz_suite ]

let evaluate_lifetimes () =
  let c = swap_circuit 5 12 in
  let s = Par_sched.schedule pough c in
  let lifetimes = Evaluate.lifetimes s in
  Alcotest.(check bool) "one entry per used qubit" true
    (List.length lifetimes = List.length (Circuit.used_qubits c));
  List.iter
    (fun (q, t) ->
      Alcotest.(check bool) (Printf.sprintf "qubit %d lifetime positive" q) true (t > 0.0);
      Alcotest.(check bool) "bounded by makespan" true (t <= Schedule.makespan s +. 1e-9))
    lifetimes

let suite =
  suite @ [ ("scheduler.lifetimes", [ Alcotest.test_case "lifetimes" `Quick evaluate_lifetimes ]) ]
