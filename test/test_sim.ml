(* Tests for the two simulation backends (stabilizer tableau and dense
   statevector), including cross-validation of one against the other
   on random Clifford circuits. *)

module Tableau = Core.Tableau
module State = Core.State
module Rng = Core.Rng

(* ---- Statevector ---- *)

let sv_initial_state () =
  let s = State.create 3 in
  Alcotest.(check (float 1e-12)) "all weight on |000>" 1.0 (State.probability s 0);
  Alcotest.(check (float 1e-12)) "norm" 1.0 (State.norm s)

let sv_h_superposition () =
  let s = State.create 1 in
  State.h s 0;
  Alcotest.(check (float 1e-12)) "p0" 0.5 (State.probability s 0);
  Alcotest.(check (float 1e-12)) "p1" 0.5 (State.probability s 1)

let sv_bell () =
  let s = State.create 2 in
  State.h s 0;
  State.cnot s ~control:0 ~target:1;
  Alcotest.(check (float 1e-12)) "p00" 0.5 (State.probability s 0);
  Alcotest.(check (float 1e-12)) "p11" 0.5 (State.probability s 3);
  Alcotest.(check (float 1e-12)) "p01" 0.0 (State.probability s 1);
  let bell = State.of_amplitudes Core.Gates.bell_phi_plus in
  Alcotest.(check (float 1e-12)) "fidelity with |Phi+>" 1.0 (State.fidelity s bell)

let sv_gate_algebra () =
  let s = State.create 1 in
  State.h s 0;
  State.h s 0;
  Alcotest.(check (float 1e-12)) "HH = I" 1.0 (State.probability s 0);
  let s2 = State.create 1 in
  State.x s2 0;
  State.x s2 0;
  Alcotest.(check (float 1e-12)) "XX = I" 1.0 (State.probability s2 0)

let sv_measure_collapse () =
  let rng = Rng.create 5 in
  let s = State.create 2 in
  State.h s 0;
  State.cnot s ~control:0 ~target:1;
  let b0 = State.measure s rng 0 in
  let b1 = State.measure s rng 1 in
  Alcotest.(check bool) "Bell correlation" b0 b1;
  Alcotest.(check (float 1e-9)) "collapsed norm" 1.0 (State.norm s)

let sv_sample_distribution () =
  let rng = Rng.create 6 in
  let s = State.create 2 in
  State.h s 0;
  State.cnot s ~control:0 ~target:1;
  let zeros = ref 0 in
  for _ = 1 to 4000 do
    match State.sample s rng with
    | 0 -> incr zeros
    | 3 -> ()
    | k -> Alcotest.failf "impossible outcome %d" k
  done;
  Alcotest.(check bool) "roughly balanced" true
    (let f = float_of_int !zeros /. 4000.0 in
     f > 0.45 && f < 0.55)

let sv_apply2_matches_cnot () =
  let rng = Rng.create 7 in
  let a = State.create 3 and b = State.create 3 in
  (* randomize identically *)
  for q = 0 to 2 do
    let theta = Rng.float rng 3.0 in
    State.apply1 a (Core.Gates.ry theta) q;
    State.apply1 b (Core.Gates.ry theta) q
  done;
  State.cnot a ~control:2 ~target:0;
  State.apply2 b (Core.Gates.cnot ~control:1 ~target:0) 0 2;
  Alcotest.(check (float 1e-9)) "apply2 = cnot" 1.0 (State.fidelity a b)

let sv_reduced_density () =
  let s = State.create 2 in
  State.h s 0;
  State.cnot s ~control:0 ~target:1;
  let rho = State.reduced_density s [ 0 ] in
  (* Tracing out half a Bell pair leaves the maximally mixed state. *)
  Alcotest.(check bool) "maximally mixed" true
    (Core.Mat.approx_equal ~tol:1e-9 rho
       (Core.Mat.scale (Core.Cplx.re 0.5) (Core.Mat.identity 2)))

(* ---- Tableau ---- *)

let tab_bell_correlations () =
  let rng = Rng.create 8 in
  for _ = 1 to 50 do
    let t = Tableau.create 2 in
    Tableau.h t 0;
    Tableau.cnot t ~control:0 ~target:1;
    let b0 = Tableau.measure t rng 0 in
    let b1 = Tableau.measure t rng 1 in
    Alcotest.(check bool) "correlated" b0 b1
  done

let tab_deterministic_outcomes () =
  let t = Tableau.create 2 in
  Alcotest.(check (option bool)) "fresh qubit reads 0" (Some false)
    (Tableau.measure_deterministic_opt t 0);
  Tableau.x t 0;
  Alcotest.(check (option bool)) "after X reads 1" (Some true)
    (Tableau.measure_deterministic_opt t 0);
  Tableau.h t 0;
  Alcotest.(check (option bool)) "superposition is random" None
    (Tableau.measure_deterministic_opt t 0)

let tab_ghz () =
  let rng = Rng.create 9 in
  for _ = 1 to 30 do
    let t = Tableau.create 4 in
    Tableau.h t 0;
    for q = 1 to 3 do
      Tableau.cnot t ~control:0 ~target:q
    done;
    let bits = List.init 4 (fun q -> Tableau.measure t rng q) in
    Alcotest.(check bool) "all equal" true
      (List.for_all (fun b -> b = List.hd bits) bits)
  done

let tab_pauli_propagation () =
  (* Z error between two Hadamards flips the measurement outcome. *)
  let t = Tableau.create 1 in
  Tableau.h t 0;
  Tableau.apply_pauli t `Z 0;
  Tableau.h t 0;
  Alcotest.(check (option bool)) "HZH = X" (Some true) (Tableau.measure_deterministic_opt t 0)

let tab_key_identity () =
  let t = Tableau.create 3 in
  Alcotest.(check bool) "fresh is identity" true (Tableau.is_identity t);
  Tableau.h t 1;
  Alcotest.(check bool) "H not identity" false (Tableau.is_identity t);
  Tableau.h t 1;
  Alcotest.(check bool) "HH identity" true (Tableau.is_identity t)

let tab_swap () =
  let rng = Rng.create 10 in
  let t = Tableau.create 2 in
  Tableau.x t 0;
  Tableau.swap t 0 1;
  Alcotest.(check bool) "swapped excitation q1" true (Tableau.measure t rng 1);
  Alcotest.(check bool) "swapped excitation q0" false (Tableau.measure t rng 0)

let tab_copy_isolated () =
  let t = Tableau.create 2 in
  Tableau.h t 0;
  let c = Tableau.copy t in
  Tableau.x t 1;
  Alcotest.(check bool) "copy unaffected" false (Tableau.equal t c)

(* ---- Cross validation ---- *)

(* Apply the same random Clifford circuit to both backends and check
   that every deterministic tableau outcome matches the statevector
   probability, and random outcomes correspond to probability 1/2. *)
let gen_clifford_ops =
  QCheck.Gen.(
    list_size (int_range 1 30)
      (oneof
         [
           map (fun q -> `H q) (int_range 0 2);
           map (fun q -> `S q) (int_range 0 2);
           map (fun q -> `X q) (int_range 0 2);
           map2 (fun a b -> `Cx (a, b)) (int_range 0 2) (int_range 0 2);
         ]))

let prop_tableau_matches_statevector =
  QCheck.Test.make ~name:"tableau vs statevector on random Clifford circuits" ~count:150
    (QCheck.make gen_clifford_ops) (fun ops ->
      let t = Tableau.create 3 and s = State.create 3 in
      List.iter
        (fun op ->
          match op with
          | `H q ->
            Tableau.h t q;
            State.h s q
          | `S q ->
            Tableau.s t q;
            State.s s q
          | `X q ->
            Tableau.x t q;
            State.x s q
          | `Cx (a, b) when a <> b ->
            Tableau.cnot t ~control:a ~target:b;
            State.cnot s ~control:a ~target:b
          | `Cx _ -> ())
        ops;
      List.for_all
        (fun q ->
          (* P(q = 1) in the statevector *)
          let p1 = ref 0.0 in
          for k = 0 to 7 do
            if k land (1 lsl q) <> 0 then p1 := !p1 +. State.probability s k
          done;
          match Tableau.measure_deterministic_opt t q with
          | Some false -> Float.abs !p1 < 1e-9
          | Some true -> Float.abs (!p1 -. 1.0) < 1e-9
          | None -> Float.abs (!p1 -. 0.5) < 1e-9)
        [ 0; 1; 2 ])

let prop_measurement_collapse_consistent =
  QCheck.Test.make ~name:"tableau measurement collapse is self-consistent" ~count:100
    (QCheck.make (QCheck.Gen.pair gen_clifford_ops QCheck.Gen.small_int)) (fun (ops, seed) ->
      let t = Tableau.create 3 in
      List.iter
        (fun op ->
          match op with
          | `H q -> Tableau.h t q
          | `S q -> Tableau.s t q
          | `X q -> Tableau.x t q
          | `Cx (a, b) when a <> b -> Tableau.cnot t ~control:a ~target:b
          | `Cx _ -> ())
        ops;
      let rng = Rng.create seed in
      let first = Tableau.measure t rng 1 in
      (* Remeasuring immediately must be deterministic and equal. *)
      Tableau.measure_deterministic_opt t 1 = Some first)

(* ---- Kernel fast paths vs reference implementation ----

   [State.apply1]/[State.apply2] iterate only over the d/2 (resp. d/4)
   participating index groups with unboxed matrix entries.  The
   reference implementations below are the straightforward scan-all-d
   kernels they replaced; the fast paths must agree on arbitrary
   matrices and states up to 6 qubits. *)

module Cplx = Core.Cplx
module Mat = Core.Mat

let amps s = Array.init (State.dim s) (fun k -> State.amplitude s k)

let ref_apply1 u q a =
  let d = Array.length a in
  let bit = 1 lsl q in
  let out = Array.make d Cplx.zero in
  let u00 = Mat.get u 0 0
  and u01 = Mat.get u 0 1
  and u10 = Mat.get u 1 0
  and u11 = Mat.get u 1 1 in
  for i = 0 to d - 1 do
    if i land bit = 0 then begin
      let j = i lor bit in
      out.(i) <- Cplx.add (Cplx.mul u00 a.(i)) (Cplx.mul u01 a.(j));
      out.(j) <- Cplx.add (Cplx.mul u10 a.(i)) (Cplx.mul u11 a.(j))
    end
  done;
  out

let ref_apply2 u q0 q1 a =
  let d = Array.length a in
  let b0 = 1 lsl q0 and b1 = 1 lsl q1 in
  let out = Array.make d Cplx.zero in
  for i = 0 to d - 1 do
    if i land b0 = 0 && i land b1 = 0 then begin
      (* matrix index m = (bit at q1) * 2 + (bit at q0) *)
      let idx = [| i; i lor b0; i lor b1; i lor b0 lor b1 |] in
      for r = 0 to 3 do
        let acc = ref Cplx.zero in
        for c = 0 to 3 do
          acc := Cplx.add !acc (Cplx.mul (Mat.get u r c) a.(idx.(c)))
        done;
        out.(idx.(r)) <- !acc
      done
    end
  done;
  out

let random_cplx rng = Cplx.make (Rng.float rng 2.0 -. 1.0) (Rng.float rng 2.0 -. 1.0)

let random_state rng n =
  State.of_amplitudes (Array.init (1 lsl n) (fun _ -> random_cplx rng))

let random_mat rng k = Mat.init k k (fun _ _ -> random_cplx rng)

let close_arrays a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Cplx.approx_equal ~tol:1e-9 x y) a b

let gen_kernel_case =
  QCheck.Gen.(
    int_range 2 6 >>= fun n ->
    int_range 0 (n - 1) >>= fun q0 ->
    int_range 0 (n - 2) >>= fun q1' ->
    let q1 = if q1' >= q0 then q1' + 1 else q1' in
    small_int >>= fun seed -> return (n, q0, q1, seed))

let kernel_arbitrary =
  QCheck.make
    ~print:(fun (n, q0, q1, seed) -> Printf.sprintf "n=%d q0=%d q1=%d seed=%d" n q0 q1 seed)
    gen_kernel_case

let prop_apply1_matches_reference =
  QCheck.Test.make ~name:"apply1 fast path matches reference kernel" ~count:200 kernel_arbitrary
    (fun (n, q0, _, seed) ->
      let rng = Rng.create seed in
      let s = random_state rng n in
      let u = random_mat rng 2 in
      let expect = ref_apply1 u q0 (amps s) in
      State.apply1 s u q0;
      close_arrays expect (amps s))

let prop_apply2_matches_reference =
  QCheck.Test.make ~name:"apply2 fast path matches reference kernel" ~count:200 kernel_arbitrary
    (fun (n, q0, q1, seed) ->
      let rng = Rng.create seed in
      let s = random_state rng n in
      let u = random_mat rng 4 in
      let expect = ref_apply2 u q0 q1 (amps s) in
      State.apply2 s u q0 q1;
      close_arrays expect (amps s))

let prop_dedicated_gates_match_apply2 =
  (* cnot/cz have their own kernels; they must equal apply2 with the
     corresponding 4x4 unitary. *)
  QCheck.Test.make ~name:"cnot/cz fast paths match apply2" ~count:100 kernel_arbitrary
    (fun (n, q0, q1, seed) ->
      let rng = Rng.create seed in
      let s = random_state rng n in
      let via_matrix = State.copy s in
      State.cnot s ~control:q0 ~target:q1;
      State.apply2 via_matrix (Core.Gates.cnot ~control:0 ~target:1) q0 q1;
      let cnot_ok = close_arrays (amps via_matrix) (amps s) in
      State.cz s q0 q1;
      State.apply2 via_matrix Core.Gates.cz q0 q1;
      cnot_ok && close_arrays (amps via_matrix) (amps s))

let prop_diagonal_gates_match_apply1 =
  QCheck.Test.make ~name:"diagonal fast paths match apply1" ~count:100 kernel_arbitrary
    (fun (n, q0, _, seed) ->
      let rng = Rng.create seed in
      let theta = Rng.float rng 6.0 -. 3.0 in
      let s = random_state rng n in
      let via_matrix = State.copy s in
      State.phase s theta q0;
      State.apply1 via_matrix
        (Mat.of_arrays [| [| Cplx.one; Cplx.zero |]; [| Cplx.zero; Cplx.exp_i theta |] |])
        q0;
      let phase_ok = close_arrays (amps via_matrix) (amps s) in
      State.rz s theta q0;
      State.apply1 via_matrix (Core.Gates.rz theta) q0;
      let rz_ok = close_arrays (amps via_matrix) (amps s) in
      State.z s q0;
      State.apply1 via_matrix Core.Gates.z q0;
      phase_ok && rz_ok && close_arrays (amps via_matrix) (amps s))

let suite =
  [
    ( "sim.statevector",
      [
        Alcotest.test_case "initial state" `Quick sv_initial_state;
        Alcotest.test_case "h superposition" `Quick sv_h_superposition;
        Alcotest.test_case "bell" `Quick sv_bell;
        Alcotest.test_case "gate algebra" `Quick sv_gate_algebra;
        Alcotest.test_case "measure collapse" `Quick sv_measure_collapse;
        Alcotest.test_case "sample distribution" `Quick sv_sample_distribution;
        Alcotest.test_case "apply2 matches cnot" `Quick sv_apply2_matches_cnot;
        Alcotest.test_case "reduced density" `Quick sv_reduced_density;
      ] );
    ( "sim.tableau",
      [
        Alcotest.test_case "bell correlations" `Quick tab_bell_correlations;
        Alcotest.test_case "deterministic outcomes" `Quick tab_deterministic_outcomes;
        Alcotest.test_case "ghz" `Quick tab_ghz;
        Alcotest.test_case "pauli propagation" `Quick tab_pauli_propagation;
        Alcotest.test_case "key and identity" `Quick tab_key_identity;
        Alcotest.test_case "swap" `Quick tab_swap;
        Alcotest.test_case "copy isolation" `Quick tab_copy_isolated;
      ] );
    ( "sim.kernels",
      [
        QCheck_alcotest.to_alcotest prop_apply1_matches_reference;
        QCheck_alcotest.to_alcotest prop_apply2_matches_reference;
        QCheck_alcotest.to_alcotest prop_dedicated_gates_match_apply2;
        QCheck_alcotest.to_alcotest prop_diagonal_gates_match_apply1;
      ] );
    ( "sim.cross-validation",
      [
        QCheck_alcotest.to_alcotest prop_tableau_matches_statevector;
        QCheck_alcotest.to_alcotest prop_measurement_collapse_consistent;
      ] );
  ]
