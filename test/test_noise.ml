(* Tests for Qcx_noise: channels and the schedule-aware executor. *)

module Channel = Core.Channel
module Exec = Core.Exec
module Rng = Core.Rng
module Circuit = Core.Circuit
module Schedule = Core.Schedule
module Device = Core.Device
module Presets = Core.Presets
module Calibration = Core.Calibration

(* A noiseless 3-qubit device for deterministic-execution checks. *)
let noiseless_device =
  let topo = Core.Topology.create ~nqubits:3 ~edges:[ (0, 1); (1, 2) ] in
  let qubits =
    Array.init 3 (fun _ ->
        {
          Calibration.t1 = 1e15;
          t2 = 1e15;
          readout_error = 0.0;
          single_qubit_error = 0.0;
          single_qubit_duration = 50.0;
          readout_duration = 1000.0;
        })
  in
  let gates =
    List.map
      (fun e -> (e, { Calibration.cnot_error = 0.0; cnot_duration = 300.0 }))
      [ (0, 1); (1, 2) ]
  in
  Device.create ~name:"noiseless" ~topology:topo
    ~calibration:(Calibration.create ~qubits ~gates)
    ~ground_truth:Core.Crosstalk.empty

(* ---- Channel ---- *)

let channel_depol_param () =
  Alcotest.(check (float 1e-9)) "2q factor 4/3" (4.0 /. 3.0 *. 0.03)
    (Channel.depol_param_of_error_rate ~nqubits:2 0.03);
  Alcotest.(check (float 1e-9)) "1q factor 2" 0.02
    (Channel.depol_param_of_error_rate ~nqubits:1 0.01);
  Alcotest.(check (float 1e-9)) "capped at 1" 1.0
    (Channel.depol_param_of_error_rate ~nqubits:2 0.9)

let channel_depol_sampling () =
  let rng = Rng.create 1 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    match Channel.sample_depolarizing2 rng ~p:0.25 with
    | Some (a, b) ->
      incr hits;
      Alcotest.(check bool) "never identity-identity" true (a <> None || b <> None)
    | None -> ()
  done;
  Alcotest.(check bool) "rate near p" true
    (let f = float_of_int !hits /. 10_000.0 in
     f > 0.22 && f < 0.28)

let channel_idle_monotone () =
  let e t = Channel.idle_error_probability (Channel.idle_channel ~t1:50_000.0 ~t2:40_000.0 ~duration:t) in
  Alcotest.(check (float 1e-12)) "zero at t=0" 0.0 (e 0.0);
  Alcotest.(check bool) "monotone" true (e 100.0 < e 1000.0 && e 1000.0 < e 10_000.0);
  Alcotest.(check bool) "bounded" true (e 1e9 <= 1.0)

let channel_idle_t2_dominated () =
  (* T2 << T1: dephasing (Z) must dominate. *)
  let c = Channel.idle_channel ~t1:100_000.0 ~t2:5_000.0 ~duration:1_000.0 in
  Alcotest.(check bool) "pz > px" true (c.Channel.pz > c.Channel.px)

(* ---- Exec ---- *)

let ghz_circuit () =
  let c = Circuit.create 3 in
  let c = Circuit.h c 0 in
  let c = Circuit.cnot c ~control:0 ~target:1 in
  let c = Circuit.cnot c ~control:1 ~target:2 in
  Circuit.measure_all c

let exec_noiseless_ghz () =
  let c = ghz_circuit () in
  let sched = Core.Par_sched.schedule noiseless_device c in
  let rng = Rng.create 2 in
  let counts = Exec.run noiseless_device sched ~rng ~trials:500 ~backend:Exec.Stabilizer in
  Alcotest.(check int) "all trials" 500 (Exec.counts_total counts);
  Alcotest.(check int) "only GHZ outcomes" 500
    (Exec.counts_get counts "000" + Exec.counts_get counts "111")

let exec_backends_agree () =
  let c = ghz_circuit () in
  let sched = Core.Par_sched.schedule noiseless_device c in
  let rng = Rng.create 3 in
  let cs = Exec.run noiseless_device sched ~rng ~trials:400 ~backend:Exec.Statevector in
  Alcotest.(check int) "statevector agrees" 400
    (Exec.counts_get cs "000" + Exec.counts_get cs "111")

let exec_readout_error_applied () =
  (* Pure readout noise: deterministic |0> state, 20% flips. *)
  let cal = Device.calibration noiseless_device in
  let q0 = Calibration.qubit cal 0 in
  let noisy =
    Device.with_calibration noiseless_device
      (Calibration.with_qubit cal 0 { q0 with Calibration.readout_error = 0.2 })
  in
  let c = Circuit.measure (Circuit.x (Circuit.x (Circuit.create 3) 0) 0) 0 in
  let sched = Core.Par_sched.schedule noisy c in
  let rng = Rng.create 4 in
  let counts = Exec.run noisy sched ~rng ~trials:5000 ~backend:Exec.Stabilizer in
  let flips = float_of_int (Exec.counts_get counts "1") /. 5000.0 in
  Alcotest.(check bool) "flip rate near 0.2" true (flips > 0.17 && flips < 0.23)

let exec_gate_error_rate_visible () =
  (* One CNOT with 10% error on |00>: outcome differs from 00 at a
     rate related to the depolarizing parameter (2/3 of errors flip
     measured bits... just check it is clearly nonzero and below 20%). *)
  let cal = Device.calibration noiseless_device in
  let g = Calibration.gate cal (0, 1) in
  let noisy =
    Device.with_calibration noiseless_device
      (Calibration.with_gate cal (0, 1) { g with Calibration.cnot_error = 0.1 })
  in
  let c = Circuit.create 3 in
  let c = Circuit.cnot c ~control:0 ~target:1 in
  let c = Circuit.measure (Circuit.measure c 0) 1 in
  let sched = Core.Par_sched.schedule noisy c in
  let rng = Rng.create 5 in
  let counts = Exec.run noisy sched ~rng ~trials:5000 ~backend:Exec.Stabilizer in
  let wrong = 1.0 -. (float_of_int (Exec.counts_get counts "00") /. 5000.0) in
  Alcotest.(check bool) "error rate visible" true (wrong > 0.04 && wrong < 0.2)

let exec_effective_error_overlap () =
  let device = Presets.poughkeepsie () in
  (* Two CNOTs on the flagship crosstalk pair, fully overlapping vs
     serialized. *)
  let c = Circuit.create 20 in
  let c = Circuit.cnot c ~control:10 ~target:15 in
  let c = Circuit.cnot c ~control:11 ~target:12 in
  let durations = Core.Durations.assign device c in
  let overlap = Schedule.make c ~starts:[| 0.0; 0.0 |] ~durations in
  let serial = Schedule.make c ~starts:[| 0.0; durations.(0) |] ~durations in
  let independent = Device.cnot_error device (10, 15) in
  let e_overlap = Exec.effective_cnot_error device overlap 0 in
  let e_serial = Exec.effective_cnot_error device serial 0 in
  Alcotest.(check (float 1e-9)) "serial = independent" independent e_serial;
  Alcotest.(check bool) "overlap much worse" true (e_overlap > 5.0 *. independent)

let exec_effective_error_duration_weighted () =
  let device = Presets.poughkeepsie () in
  let c = Circuit.create 20 in
  let c = Circuit.cnot c ~control:10 ~target:15 in
  let c = Circuit.cnot c ~control:11 ~target:12 in
  let durations = Core.Durations.assign device c in
  let full = Schedule.make c ~starts:[| 0.0; 0.0 |] ~durations in
  (* Shift the spectator so only ~30% of the target gate overlaps. *)
  let partial = Schedule.make c ~starts:[| 0.0; durations.(0) *. 0.7 |] ~durations in
  let e_full = Exec.effective_cnot_error device full 0 in
  let e_partial = Exec.effective_cnot_error device partial 0 in
  let independent = Device.cnot_error device (10, 15) in
  Alcotest.(check bool) "partial between independent and full" true
    (e_partial > independent && e_partial < e_full)

let exec_decoherence_lifetime () =
  (* A long idle window between two X gates on a short-T1 qubit makes
     outcomes noisy; without the window they are clean. *)
  let cal = Device.calibration noiseless_device in
  let q0 = Calibration.qubit cal 0 in
  let short_t1 =
    Device.with_calibration noiseless_device
      (Calibration.with_qubit cal 0 { q0 with Calibration.t1 = 5_000.0; t2 = 5_000.0 })
  in
  let c = Circuit.create 3 in
  let c = Circuit.x c 0 in
  let c = Circuit.x c 0 in
  let c = Circuit.measure c 0 in
  let run starts =
    let sched = Schedule.make c ~starts ~durations:[| 50.0; 50.0; 1000.0 |] in
    let rng = Rng.create 6 in
    let counts = Exec.run short_t1 sched ~rng ~trials:4000 ~backend:Exec.Stabilizer in
    float_of_int (Exec.counts_get counts "0") /. 4000.0
  in
  let clean = run [| 0.0; 50.0; 100.0 |] in
  let idle = run [| 0.0; 10_050.0; 10_100.0 |] in
  Alcotest.(check bool) "clean is deterministic" true (clean > 0.99);
  Alcotest.(check bool) "idle decoheres" true (idle < 0.9)

let exec_run_distribution_normalized () =
  let device = Presets.poughkeepsie () in
  let rng = Rng.create 7 in
  let qaoa = Core.Qaoa.build device ~rng ~region:[ 5; 10; 11; 12 ] in
  let sched = Core.Par_sched.schedule device qaoa.Core.Qaoa.circuit in
  let dist = Exec.run_distribution device sched ~rng ~trajectories:50 in
  Alcotest.(check int) "16 outcomes" 16 (List.length dist);
  Alcotest.(check (float 1e-6)) "sums to 1" 1.0
    (List.fold_left (fun acc (_, p) -> acc +. p) 0.0 dist)

let exec_rejects_invalid_schedule () =
  let c = Circuit.create 3 in
  let c = Circuit.h c 0 in
  let c = Circuit.x c 0 in
  let bad = Schedule.make c ~starts:[| 0.0; 10.0 |] ~durations:[| 50.0; 50.0 |] in
  let rng = Rng.create 8 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Exec.run noiseless_device bad ~rng ~trials:1 ~backend:Exec.Stabilizer);
       false
     with Invalid_argument _ -> true)

let exec_rejects_nonclifford_on_stabilizer () =
  let c = Circuit.measure_all (Circuit.t_gate (Circuit.create 3) 0) in
  let sched = Core.Par_sched.schedule noiseless_device c in
  let rng = Rng.create 9 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Exec.run noiseless_device sched ~rng ~trials:1 ~backend:Exec.Stabilizer);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ( "noise.channel",
      [
        Alcotest.test_case "depol param" `Quick channel_depol_param;
        Alcotest.test_case "depol sampling" `Quick channel_depol_sampling;
        Alcotest.test_case "idle monotone" `Quick channel_idle_monotone;
        Alcotest.test_case "idle t2 dominated" `Quick channel_idle_t2_dominated;
      ] );
    ( "noise.exec",
      [
        Alcotest.test_case "noiseless ghz" `Quick exec_noiseless_ghz;
        Alcotest.test_case "backends agree" `Quick exec_backends_agree;
        Alcotest.test_case "readout error" `Quick exec_readout_error_applied;
        Alcotest.test_case "gate error visible" `Quick exec_gate_error_rate_visible;
        Alcotest.test_case "effective error: overlap" `Quick exec_effective_error_overlap;
        Alcotest.test_case "effective error: duration weighted" `Quick
          exec_effective_error_duration_weighted;
        Alcotest.test_case "decoherence over lifetime" `Quick exec_decoherence_lifetime;
        Alcotest.test_case "run_distribution normalized" `Quick exec_run_distribution_normalized;
        Alcotest.test_case "rejects invalid schedule" `Quick exec_rejects_invalid_schedule;
        Alcotest.test_case "rejects non-clifford on stabilizer" `Quick
          exec_rejects_nonclifford_on_stabilizer;
      ] );
  ]

(* ---- Parallel execution ---- *)

(* The sharded executor must be a pure optimization: with a fixed
   seed, counts are byte-identical no matter how many worker domains
   split the trajectories. *)
let exec_jobs_deterministic () =
  let device = Presets.poughkeepsie () in
  let qaoa = Core.Qaoa.build device ~rng:(Rng.create 11) ~region:[ 5; 10; 11; 12 ] in
  let sched = Core.Par_sched.schedule device qaoa.Core.Qaoa.circuit in
  List.iter
    (fun backend ->
      let counts_at jobs =
        Exec.counts_bindings
          (Exec.run ~jobs device sched ~rng:(Rng.create 23) ~trials:500 ~backend)
      in
      let sequential = counts_at 1 in
      Alcotest.(check bool) "nonempty" true (sequential <> []);
      List.iter
        (fun jobs ->
          Alcotest.(check (list (pair string int)))
            (Printf.sprintf "jobs=%d identical to jobs=1" jobs)
            sequential (counts_at jobs))
        [ 2; 4; 7 ])
    [ Exec.Statevector ]

let exec_jobs_deterministic_stabilizer () =
  let c = ghz_circuit () in
  let sched = Core.Par_sched.schedule noiseless_device c in
  let counts_at jobs =
    Exec.counts_bindings
      (Exec.run ~jobs noiseless_device sched ~rng:(Rng.create 31) ~trials:999 ~backend:Exec.Stabilizer)
  in
  Alcotest.(check (list (pair string int))) "jobs=4 identical" (counts_at 1) (counts_at 4)

let exec_jobs_distribution_close () =
  (* run_distribution sums per-trajectory contributions; sharding only
     regroups the float additions, so distributions agree to
     round-off. *)
  let device = Presets.poughkeepsie () in
  let qaoa = Core.Qaoa.build device ~rng:(Rng.create 13) ~region:[ 5; 10; 11; 12 ] in
  let sched = Core.Par_sched.schedule device qaoa.Core.Qaoa.circuit in
  let dist_at jobs =
    Exec.run_distribution ~jobs device sched ~rng:(Rng.create 29) ~trajectories:60
  in
  let d1 = dist_at 1 and d4 = dist_at 4 in
  List.iter2
    (fun (k1, p1) (k4, p4) ->
      Alcotest.(check string) "same outcome order" k1 k4;
      Alcotest.(check (float 1e-12)) ("p " ^ k1) p1 p4)
    d1 d4

(* Statevector readout uses one simultaneous State.sample draw; the
   stabilizer backend measures qubit by qubit.  Both must see the same
   marginals on a noiseless GHZ circuit (exercised above) and respect
   readout flips — exercised here on the statevector path. *)
let exec_statevector_readout_error_applied () =
  let cal = Device.calibration noiseless_device in
  let q0 = Calibration.qubit cal 0 in
  let noisy =
    Device.with_calibration noiseless_device
      (Calibration.with_qubit cal 0 { q0 with Calibration.readout_error = 0.2 })
  in
  let c = Circuit.measure (Circuit.x (Circuit.x (Circuit.create 3) 0) 0) 0 in
  let sched = Core.Par_sched.schedule noisy c in
  let counts = Exec.run noisy sched ~rng:(Rng.create 41) ~trials:5000 ~backend:Exec.Statevector in
  let flips = float_of_int (Exec.counts_get counts "1") /. 5000.0 in
  Alcotest.(check bool) "flip rate near 0.2" true (flips > 0.17 && flips < 0.23)

let suite =
  suite
  @ [
      ( "noise.parallel",
        [
          Alcotest.test_case "jobs determinism (statevector)" `Quick exec_jobs_deterministic;
          Alcotest.test_case "jobs determinism (stabilizer)" `Quick
            exec_jobs_deterministic_stabilizer;
          Alcotest.test_case "jobs distribution close" `Quick exec_jobs_distribution_close;
          Alcotest.test_case "statevector readout error" `Quick
            exec_statevector_readout_error_applied;
        ] );
    ]

(* run vs run_distribution consistency: sampled counts and exact
   per-trajectory distributions must agree statistically. *)
let exec_run_matches_run_distribution () =
  let device = Presets.poughkeepsie () in
  let rng1 = Rng.create 97 and rng2 = Rng.create 97 in
  let qaoa = Core.Qaoa.build device ~rng:(Rng.create 1) ~region:[ 5; 10; 11; 12 ] in
  let sched = Core.Par_sched.schedule device qaoa.Core.Qaoa.circuit in
  let sampled = Exec.run device sched ~rng:rng1 ~trials:6000 ~backend:Exec.Statevector in
  let exact = Exec.run_distribution device sched ~rng:rng2 ~trajectories:400 in
  (* compare total variation distance *)
  let tv =
    List.fold_left
      (fun acc (bits, p_exact) ->
        let p_sampled =
          float_of_int (Exec.counts_get sampled bits) /. float_of_int (Exec.counts_total sampled)
        in
        acc +. (0.5 *. Float.abs (p_exact -. p_sampled)))
      0.0 exact
  in
  Alcotest.(check bool) (Printf.sprintf "total variation %.3f small" tv) true (tv < 0.06)

let suite =
  suite
  @ [
      ( "noise.consistency",
        [
          Alcotest.test_case "run vs run_distribution" `Slow exec_run_matches_run_distribution;
        ] );
    ]
