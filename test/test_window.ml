(* Tests for the scaling layer: generated heavy-hex device models, the
   windowed hierarchical scheduler (validity on random grids, jobs
   determinism, quality against the exact solver on small slices),
   the solver's absolute release bounds, and the serve-layer window
   knob. *)

module Circuit = Core.Circuit
module Schedule = Core.Schedule
module Device = Core.Device
module Presets = Core.Presets
module Topology = Core.Topology
module Crosstalk = Core.Crosstalk
module Xtalk_sched = Core.Xtalk_sched
module Solver = Core.Solver
module Evaluate = Core.Evaluate
module Wire = Core.Wire
module Service = Core.Service
module Canon = Core.Canon
module Json = Core.Json

(* ---- generated heavy-hex presets ---- *)

let reachable topo =
  let n = Topology.nqubits topo in
  let seen = Array.make n false in
  let queue = Queue.create () in
  Queue.add 0 queue;
  seen.(0) <- true;
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let q = Queue.pop queue in
    incr count;
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v queue
        end)
      (Topology.neighbors topo q)
  done;
  !count

let heavy_hex_lattice () =
  let d127 = Presets.heavy_hex_127 () in
  let t127 = Device.topology d127 in
  Alcotest.(check int) "127 qubits" 127 (Topology.nqubits t127);
  Alcotest.(check int) "144 couplers" 144 (List.length (Topology.edges t127));
  Alcotest.(check int) "connected" 127 (reachable t127);
  for q = 0 to 126 do
    if Topology.degree t127 q > 3 then
      Alcotest.failf "qubit %d has degree %d > 3" q (Topology.degree t127 q)
  done;
  let d433 = Presets.heavy_hex_433 () in
  let t433 = Device.topology d433 in
  Alcotest.(check int) "433 qubits" 433 (Topology.nqubits t433);
  Alcotest.(check int) "504 couplers" 504 (List.length (Topology.edges t433));
  Alcotest.(check int) "433 connected" 433 (reachable t433)

let heavy_hex_ground_truth () =
  let d = Presets.heavy_hex_127 () in
  let topo = Device.topology d in
  let truth = Device.ground_truth d in
  let pairs = Crosstalk.interacting_pairs truth in
  Alcotest.(check bool) "has crosstalk pairs" true (List.length pairs > 0);
  List.iter
    (fun (e1, e2) ->
      Alcotest.(check int) "flagged pair at gate distance 1" 1
        (Topology.gate_distance topo e1 e2))
    pairs;
  (* The generator is seeded: rebuilding the preset reproduces the
     exact same hidden physics. *)
  let again = Device.ground_truth (Presets.heavy_hex_127 ()) in
  Alcotest.(check bool) "seeded ground truth is reproducible" true
    (Crosstalk.entries truth = Crosstalk.entries again)

let by_name_generated () =
  let check_size name expected =
    match Presets.by_name name with
    | Some d -> Alcotest.(check int) name expected (Device.nqubits d)
    | None -> Alcotest.failf "by_name %s: not resolved" name
  in
  check_size "heavy-hex-127" 127;
  check_size "heavy-hex-433" 433;
  check_size "grid-5x5" 25;
  check_size "poughkeepsie" 20;
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " rejected") true (Presets.by_name name = None))
    [ "grid-1x9"; "grid-x"; "heavy-hex-128"; "nonsense" ]

(* ---- one-hop pair enumeration: fast local scan vs naive O(E^2) ---- *)

let naive_one_hop topo =
  let edges = Topology.edges topo in
  List.concat_map
    (fun e ->
      List.filter_map
        (fun e' ->
          if compare e' e > 0 && Topology.gate_distance topo e e' = 1 then Some (e, e')
          else None)
        edges)
    edges

let one_hop_matches_naive () =
  List.iter
    (fun (name, device) ->
      let topo = Device.topology device in
      let fast = Topology.one_hop_gate_pairs topo in
      let naive = naive_one_hop topo in
      Alcotest.(check int) (name ^ " count") (List.length naive) (List.length fast);
      Alcotest.(check bool) (name ^ " same pairs in same order") true (fast = naive))
    [
      ("poughkeepsie", Presets.poughkeepsie ());
      ("grid-4x4", Presets.grid ~rows:4 ~cols:4 ());
      ("heavy-hex-127", Presets.heavy_hex_127 ());
    ]

(* ---- Solver.add_release ---- *)

let solver_release_bounds () =
  let s = Solver.create () in
  let x = Solver.new_num s "x" in
  let y = Solver.new_num s "y" in
  Solver.add_sink s y;
  (* y >= x + 10, x >= 42 (absolute). *)
  Solver.add_diff s ~dst:y ~src:x ~weight:10.0 ();
  Solver.add_release s ~var:x ~time:42.0;
  (match Solver.solve s with
  | None -> Alcotest.fail "release problem unsat"
  | Some sol ->
    Alcotest.(check (float 1e-9)) "x released at 42" 42.0 sol.Solver.nums.(x);
    Alcotest.(check (float 1e-9)) "y chained to 52" 52.0 sol.Solver.nums.(y));
  (* time = 0 is the implicit origin: a no-op. *)
  let s0 = Solver.create () in
  let z = Solver.new_num s0 "z" in
  Solver.add_sink s0 z;
  Solver.add_release s0 ~var:z ~time:0.0;
  (match Solver.solve s0 with
  | None -> Alcotest.fail "zero-release problem unsat"
  | Some sol -> Alcotest.(check (float 1e-9)) "z stays at origin" 0.0 sol.Solver.nums.(z));
  Alcotest.(check bool) "negative release rejected" true
    (match Solver.add_release s0 ~var:z ~time:(-1.0) with
    | exception Invalid_argument _ -> true
    | () -> false)

(* ---- windowed schedules on random grid devices (property) ---- *)

let gen_grid_case =
  QCheck.Gen.(
    let* rows = int_range 2 3 in
    let* cols = int_range 2 3 in
    let* ops = list_size (int_range 5 60) (pair (int_range 0 2) (int_range 0 1000)) in
    return (rows, cols, ops))

let grid_circuit device (rows, cols, ops) =
  let topo = Device.topology device in
  let edges = Array.of_list (Topology.edges topo) in
  let n = rows * cols in
  let c =
    List.fold_left
      (fun c (kind, i) ->
        match kind with
        | 0 -> Circuit.h c (i mod n)
        | 1 -> Circuit.t_gate c (i mod n)
        | _ ->
          let a, b = edges.(i mod Array.length edges) in
          Circuit.cnot c ~control:a ~target:b)
      (Circuit.create n) ops
  in
  Circuit.measure_all c

let prop_windowed_valid =
  QCheck.Test.make ~name:"windowed schedules are valid on random grids" ~count:40
    (QCheck.make gen_grid_case) (fun ((rows, cols, _) as case) ->
      let device = Presets.grid ~rows ~cols () in
      let xtalk = Device.ground_truth device in
      let c = grid_circuit device case in
      let sched, stats =
        Xtalk_sched.schedule ~omega:0.5 ~ladder_start:Xtalk_sched.Windowed ~window_gates:8
          ~device ~xtalk c
      in
      Result.is_ok (Schedule.validate sched)
      && stats.Xtalk_sched.rung <> Xtalk_sched.Parallel)

(* ---- windowed vs exact on <= 20-qubit control slices ---- *)

let quality_factor = 2.5

let windowed_quality_gate () =
  let device = Presets.poughkeepsie () in
  let xtalk = Device.ground_truth device in
  let controls =
    let region = List.hd (Presets.qaoa_regions device) in
    let qaoa =
      Core.Qaoa.build device ~rng:(Core.Rng.create (Hashtbl.hash ("scale-controls", region))) ~region
    in
    let supremacy =
      Core.Supremacy.build device ~rng:(Core.Rng.create 0x5CA1E) ~nqubits:14 ~target_gates:120
    in
    [ ("qaoa", qaoa.Core.Qaoa.circuit); ("supremacy14", supremacy.Core.Supremacy.circuit) ]
  in
  List.iter
    (fun (name, c) ->
      let exact_sched, exact_stats =
        Xtalk_sched.schedule ~omega:0.5 ~max_exact_pairs:1000 ~device ~xtalk c
      in
      let win_sched, win_stats =
        Xtalk_sched.schedule ~omega:0.5 ~ladder_start:Xtalk_sched.Windowed ~window_gates:24
          ~device ~xtalk c
      in
      Alcotest.(check string) (name ^ " exact rung") "exact"
        (Xtalk_sched.rung_name exact_stats.Xtalk_sched.rung);
      Alcotest.(check string) (name ^ " windowed rung") "windowed"
        (Xtalk_sched.rung_name win_stats.Xtalk_sched.rung);
      let oe = Evaluate.objective ~omega:0.5 device ~xtalk exact_sched in
      let ow = Evaluate.objective ~omega:0.5 device ~xtalk win_sched in
      if ow > (oe *. quality_factor) +. 1e-6 then
        Alcotest.failf "%s: windowed objective %.6f exceeds %.1fx exact %.6f" name ow
          quality_factor oe)
    controls

(* The recomputed eq.17 objective agrees with the solver's report on
   an exact solve (modulo the makespan tie-break term). *)
let objective_matches_solver () =
  let device = Presets.poughkeepsie () in
  let xtalk = Device.ground_truth device in
  let c =
    Circuit.measure_all
      (Core.Swap_circuits.build device ~src:0 ~dst:13).Core.Swap_circuits.circuit
  in
  let sched, stats = Xtalk_sched.schedule ~omega:0.5 ~device ~xtalk c in
  let recomputed = Evaluate.objective ~omega:0.5 device ~xtalk sched in
  (* The solver adds an infinitesimal span tie-break (1e-9 per ns,
     first start to readout) that the recomputation deliberately
     omits; it is bounded by 1e-9 * makespan. *)
  let tie_bound = (1e-9 *. Schedule.makespan sched) +. 1e-9 in
  if Float.abs (recomputed -. stats.Xtalk_sched.objective) > tie_bound then
    Alcotest.failf "recomputed %.9f vs solver %.9f" recomputed stats.Xtalk_sched.objective

(* ---- jobs determinism of the windowed rung at scale ---- *)

let windowed_jobs_determinism () =
  let device = Presets.heavy_hex_127 () in
  let xtalk = Device.ground_truth device in
  let bench =
    Core.Supremacy.build device ~rng:(Core.Rng.create 0x5CA1E) ~nqubits:127 ~target_gates:400
  in
  let fingerprint sched =
    List.map
      (fun g -> (g.Core.Gate.id, Schedule.start sched g.Core.Gate.id))
      (Circuit.gates (Schedule.circuit sched))
  in
  let compile jobs =
    let sched, stats =
      Xtalk_sched.schedule ~omega:0.5 ~jobs ~device ~xtalk bench.Core.Supremacy.circuit
    in
    (fingerprint sched, stats)
  in
  let fp1, stats = compile 1 in
  Alcotest.(check string) "auto-escalates to windowed" "windowed"
    (Xtalk_sched.rung_name stats.Xtalk_sched.rung);
  Alcotest.(check bool) "multiple windows" true (stats.Xtalk_sched.windows >= 2);
  List.iter
    (fun j ->
      let fp, stats_j = compile j in
      Alcotest.(check bool) (Printf.sprintf "jobs %d schedule identical" j) true (fp = fp1);
      Alcotest.(check int)
        (Printf.sprintf "jobs %d nodes identical" j)
        stats.Xtalk_sched.nodes stats_j.Xtalk_sched.nodes)
    [ 2; 4 ]

(* ---- serve layer: the window knob ---- *)

let wire_window_roundtrip () =
  let c = Circuit.measure_all (Circuit.cnot (Circuit.h (Circuit.create 4) 0) ~control:0 ~target:1) in
  let params = { Wire.default_params with Wire.omega = 0.3; window = Some 32 } in
  let req = Wire.Compile { id = "r1"; device = "poughkeepsie"; circuit = c; params } in
  (match Wire.request_of_json (Wire.request_to_json req) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok (Wire.Compile { params = p; _ }) ->
    Alcotest.(check bool) "window survives the wire" true (p.Wire.window = Some 32);
    Alcotest.(check (float 1e-12)) "omega survives" 0.3 p.Wire.omega
  | Ok _ -> Alcotest.fail "wrong request kind");
  (* Default params leave the window unset. *)
  Alcotest.(check bool) "default window is auto" true (Wire.default_params.Wire.window = None);
  (* Invalid window values are rejected with a parse error. *)
  let bad =
    match Wire.request_to_json req with
    | Json.Object fields ->
      Json.Object
        (List.map (function "window", _ -> ("window", Json.Number 0.0) | f -> f) fields)
    | _ -> Alcotest.fail "compile request not an object"
  in
  Alcotest.(check bool) "window 0 rejected" true (Result.is_error (Wire.request_of_json bad))

let stats_windows_roundtrip () =
  let stats =
    {
      Xtalk_sched.pairs = 3;
      clusters = 2;
      windows = 5;
      nodes = 77;
      optimal = false;
      objective = 1.25;
      solve_seconds = 0.5;
      cpu_seconds = 0.75;
      idle_total = 12.5;
      idle_max = 7.5;
      rung = Xtalk_sched.Windowed;
    }
  in
  (match Wire.stats_of_json (Wire.stats_to_json stats) with
  | Error e -> Alcotest.failf "stats round-trip failed: %s" e
  | Ok s -> Alcotest.(check int) "windows survive" 5 s.Xtalk_sched.windows);
  (* Pre-windowed cache files have no "windows" field: default 0. *)
  let legacy =
    match Wire.stats_to_json stats with
    | Json.Object fields -> Json.Object (List.filter (fun (k, _) -> k <> "windows") fields)
    | _ -> Alcotest.fail "stats not an object"
  in
  match Wire.stats_of_json legacy with
  | Error e -> Alcotest.failf "legacy stats rejected: %s" e
  | Ok s -> Alcotest.(check int) "missing windows defaults to 0" 0 s.Xtalk_sched.windows

let cache_key_covers_window () =
  let c =
    Canon.normalize
      (Circuit.measure_all (Circuit.cnot (Circuit.h (Circuit.create 4) 0) ~control:0 ~target:1))
  in
  let key window =
    Service.cache_key ~device_id:"poughkeepsie" ~epoch:"e0"
      ~params:{ Wire.default_params with Wire.window } c
  in
  Alcotest.(check bool) "window changes the key" true (key None <> key (Some 32));
  Alcotest.(check bool) "distinct windows get distinct keys" true
    (key (Some 32) <> key (Some 64));
  Alcotest.(check string) "same window, same key" (key (Some 32)) (key (Some 32))

let suite =
  [
    ( "scale.device",
      [
        Alcotest.test_case "heavy-hex lattice invariants" `Quick heavy_hex_lattice;
        Alcotest.test_case "heavy-hex seeded ground truth" `Quick heavy_hex_ground_truth;
        Alcotest.test_case "by_name resolves generated models" `Quick by_name_generated;
        Alcotest.test_case "one-hop pairs match naive enumeration" `Quick one_hop_matches_naive;
      ] );
    ( "scale.window",
      [
        Alcotest.test_case "solver release bounds" `Quick solver_release_bounds;
        QCheck_alcotest.to_alcotest prop_windowed_valid;
        Alcotest.test_case "windowed within factor of exact" `Quick windowed_quality_gate;
        Alcotest.test_case "objective recomputation matches solver" `Quick
          objective_matches_solver;
        Alcotest.test_case "windowed rung is jobs-deterministic" `Slow
          windowed_jobs_determinism;
      ] );
    ( "scale.serve",
      [
        Alcotest.test_case "window knob wire round-trip" `Quick wire_window_roundtrip;
        Alcotest.test_case "stats windows round-trip" `Quick stats_windows_roundtrip;
        Alcotest.test_case "cache key covers window" `Quick cache_key_covers_window;
      ] );
  ]
