(* Tests for the compilation service: canonicalization, the
   content-addressed LRU schedule cache, the device registry with
   epoch bumps, admission-controlled batch dispatch, and the NDJSON
   server loop. *)

module Canon = Core.Canon
module Wire = Core.Wire
module Cache = Core.Cache
module Registry = Core.Registry
module Service = Core.Service
module Server = Core.Server
module Json = Core.Json
module Circuit = Core.Circuit
module Device = Core.Device

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let bell_with_measures ~order nq =
  let c = Circuit.create nq in
  let c = Circuit.h c 0 in
  let c = Circuit.cnot c ~control:0 ~target:1 in
  let c = Circuit.cnot c ~control:2 ~target:3 in
  List.fold_left Circuit.measure c order

(* ---- canonicalization ---- *)

let canon_measure_order () =
  let a = bell_with_measures ~order:[ 0; 1; 2 ] 6 in
  let b = bell_with_measures ~order:[ 2; 0; 1 ] 6 in
  Alcotest.(check string) "measure order is canonical" (Canon.digest a) (Canon.digest b)

let canon_symmetric_operands () =
  let with_ops f =
    let c = Circuit.create 4 in
    let c = f c in
    Circuit.measure_all c
  in
  let barrier_a = with_ops (fun c -> Circuit.barrier (Circuit.h c 0) [ 0; 1; 2 ]) in
  let barrier_b = with_ops (fun c -> Circuit.barrier (Circuit.h c 0) [ 2; 1; 0 ]) in
  Alcotest.(check string) "barrier operand order" (Canon.digest barrier_a)
    (Canon.digest barrier_b);
  let swap_a = with_ops (fun c -> Circuit.swap c 0 1) in
  let swap_b = with_ops (fun c -> Circuit.swap c 1 0) in
  Alcotest.(check string) "swap operand order" (Canon.digest swap_a) (Canon.digest swap_b)

let canon_swap_expansion () =
  let logical = Circuit.swap (Circuit.h (Circuit.create 4) 0) 0 1 in
  let explicit =
    let c = Circuit.h (Circuit.create 4) 0 in
    let c = Circuit.cnot c ~control:0 ~target:1 in
    let c = Circuit.cnot c ~control:1 ~target:0 in
    Circuit.cnot c ~control:0 ~target:1
  in
  Alcotest.(check string) "swap = its 3-CNOT expansion" (Canon.digest logical)
    (Canon.digest explicit)

let canon_width_and_difference () =
  let narrow = bell_with_measures ~order:[ 0; 1 ] 4 in
  let wide = bell_with_measures ~order:[ 0; 1 ] 6 in
  Alcotest.(check string) "nqubits widening is canonical"
    (Canon.digest ~nqubits:6 narrow) (Canon.digest wide);
  let other = Circuit.x (Circuit.create 4) 0 in
  Alcotest.(check bool) "different circuits differ" false
    (Canon.digest narrow = Canon.digest other);
  Alcotest.(check bool) "narrowing below used qubits is rejected" true
    (match Canon.normalize ~nqubits:2 narrow with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* The fused key serializer must produce the exact bytes of the
   two-pass normalize+serialize pipeline — it IS the cache key on the
   hot path, so any divergence silently splits or aliases keys. *)
let canon_key_serialize_fused () =
  let check ?nqubits label circuit =
    Alcotest.(check string) label
      (Canon.serialize (Canon.normalize ?nqubits circuit))
      (Canon.key_serialize ?nqubits circuit)
  in
  check "bell with measures" (bell_with_measures ~order:[ 2; 0; 1 ] 6);
  check ~nqubits:9 "widened register" (bell_with_measures ~order:[ 0; 1 ] 4);
  let c = Circuit.create 5 in
  let c = Circuit.swap c 3 1 in
  let c = Circuit.measure (Circuit.measure c 4) 2 in
  let c = Circuit.barrier c [ 4; 0; 2 ] in
  let c = Circuit.rz (Circuit.rz (Circuit.rx c 0.5 0) 0.25 1) 0.25 2 in
  let c = Circuit.rz c (-0.0) 3 in
  let c = Circuit.u2 c 1.5 (-2.5) 4 in
  check "swaps, split measures, rotations" (Circuit.measure_all c);
  let rng = Core.Rng.create 11 in
  for i = 0 to 19 do
    let nq = 3 + Core.Rng.int rng 8 in
    let c = ref (Circuit.create nq) in
    for _ = 0 to 20 + Core.Rng.int rng 30 do
      let q = Core.Rng.int rng nq in
      let p = (q + 1 + Core.Rng.int rng (nq - 1)) mod nq in
      match Core.Rng.int rng 8 with
      | 0 -> c := Circuit.h !c q
      | 1 -> c := Circuit.cnot !c ~control:q ~target:p
      | 2 -> c := Circuit.swap !c q p
      | 3 -> c := Circuit.measure !c q
      | 4 -> c := Circuit.barrier !c (if q < p then [ q; p ] else [ p; q ])
      | 5 -> c := Circuit.rz !c (Core.Rng.unit_float rng) q
      | 6 -> c := Circuit.rx !c (Core.Rng.unit_float rng) q
      | _ -> c := Circuit.x !c q
    done;
    check (Printf.sprintf "random circuit %d" i) ~nqubits:(nq + 2) !c
  done;
  Alcotest.(check bool) "narrowing still rejected" true
    (match Canon.key_serialize ~nqubits:2 (bell_with_measures ~order:[ 0; 1 ] 4) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---- cache ---- *)

let dummy_entry device label =
  let c = Circuit.measure_all (Circuit.cnot (Circuit.h (Circuit.create 4) 0) ~control:0 ~target:1) in
  let c = if label then Circuit.x c 2 else c in
  let sched = Core.Par_sched.schedule device (Circuit.decompose_swaps c) in
  {
    Cache.schedule = sched;
    stats =
      {
        Core.Xtalk_sched.pairs = 0;
        clusters = 0;
        windows = 0;
        nodes = 0;
        optimal = false;
        objective = 0.0;
        solve_seconds = 0.0;
        cpu_seconds = 0.0;
        idle_total = 0.0;
        idle_max = 0.0;
        rung = Core.Xtalk_sched.Parallel;
      };
    epoch = "";
  }

let cache_lru_eviction () =
  let device = Core.Presets.linear 4 in
  let e = dummy_entry device false in
  let cache = Cache.create ~capacity:2 in
  Cache.add cache "k1" e;
  Cache.add cache "k2" e;
  ignore (Cache.find cache "k1");
  (* k2 is now least recent *)
  Cache.add cache "k3" e;
  Alcotest.(check bool) "k2 evicted" false (Cache.mem cache "k2");
  Alcotest.(check (list string)) "recency order" [ "k3"; "k1" ]
    (Cache.keys_newest_first cache);
  let c = Cache.counters cache in
  Alcotest.(check int) "hits" 1 c.Cache.hits;
  Alcotest.(check int) "evictions" 1 c.Cache.evictions;
  Alcotest.(check int) "insertions" 3 c.Cache.insertions;
  Alcotest.(check int) "size" 2 c.Cache.size

let cache_persistence_roundtrip () =
  let device = Core.Presets.linear 4 in
  let cache = Cache.create ~capacity:8 in
  Cache.add cache "ka" (dummy_entry device false);
  Cache.add cache "kb" (dummy_entry device true);
  ignore (Cache.find cache "ka");
  let path = tmp "qcx_test_cache.json" in
  (match Cache.save ~path cache with Ok () -> () | Error e -> Alcotest.fail e);
  match Cache.load ~capacity:8 ~path with
  | Error e -> Alcotest.fail e
  | Ok loaded ->
    Alcotest.(check (list string)) "recency preserved" [ "ka"; "kb" ]
      (Cache.keys_newest_first loaded);
    let orig = Option.get (Cache.find cache "kb") in
    let back = Option.get (Cache.find loaded "kb") in
    Alcotest.(check string) "schedule round-trips bit-identically"
      (Json.to_string (Wire.schedule_to_json orig.Cache.schedule))
      (Json.to_string (Wire.schedule_to_json back.Cache.schedule))

(* ---- registry ---- *)

let registry_epoch_bumps () =
  let device = Core.Presets.example_6q () in
  let registry = Registry.create () in
  let e0 =
    Registry.add_static registry ~id:"dev" ~device ~xtalk:Core.Crosstalk.empty
  in
  (* Same data: no bump, same epoch. *)
  let e1 =
    match Registry.set_xtalk registry ~id:"dev" Core.Crosstalk.empty with
    | Ok e -> e
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check string) "same data same epoch" e0.Registry.epoch e1.Registry.epoch;
  Alcotest.(check int) "no bump" 0 e1.Registry.bumps;
  let e2 =
    match Registry.set_xtalk registry ~id:"dev" (Device.ground_truth device) with
    | Ok e -> e
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool) "new data new epoch" false (e2.Registry.epoch = e1.Registry.epoch);
  Alcotest.(check int) "bumped" 1 e2.Registry.bumps;
  Alcotest.(check bool) "unknown id errors" true
    (Result.is_error (Registry.set_xtalk registry ~id:"nope" Core.Crosstalk.empty))

let registry_snapshots_and_refresh () =
  let device = Core.Presets.example_6q () in
  let dir = tmp (Printf.sprintf "qcx_test_registry_%d" (Unix.getpid ())) in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let old_path = Filename.concat dir "old.json" in
  let new_path = Filename.concat dir "new.json" in
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ old_path; new_path ];
  let old_xtalk =
    Core.Crosstalk.set Core.Crosstalk.empty ~target:(0, 1) ~spectator:(2, 3) 0.05
  in
  (match Core.Store.save_crosstalk ~path:old_path old_xtalk with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Newest-first walk: the (missing) new path is skipped silently. *)
  let registry = Registry.create () in
  let e0 = Registry.add_from_paths registry ~id:"dev" ~device ~paths:[ new_path; old_path ] in
  Alcotest.(check (option string)) "served from old snapshot" (Some old_path)
    e0.Registry.source;
  Alcotest.(check string) "epoch is data digest" (Registry.epoch_of_xtalk old_xtalk)
    e0.Registry.epoch;
  (* Characterization writes a fresh snapshot; bump picks it up. *)
  (match Core.Store.save_crosstalk ~path:new_path (Device.ground_truth device) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Registry.refresh registry ~id:"dev" with
  | Error m -> Alcotest.fail m
  | Ok (e1, _) ->
    Alcotest.(check (option string)) "now serves new snapshot" (Some new_path)
      e1.Registry.source;
    Alcotest.(check bool) "epoch changed" false (e1.Registry.epoch = e0.Registry.epoch);
    Alcotest.(check int) "bump recorded" 1 e1.Registry.bumps);
  (* Corrupt the new snapshot: refresh quarantines it and falls back. *)
  let oc = open_out new_path in
  output_string oc "{ truncated";
  close_out oc;
  match Registry.refresh registry ~id:"dev" with
  | Error m -> Alcotest.fail m
  | Ok (e2, _) ->
    Alcotest.(check (option string)) "fell back to old snapshot" (Some old_path)
      e2.Registry.source;
    Alcotest.(check bool) "corruption recorded" true (e2.Registry.quarantined <> []);
    Alcotest.(check bool) "corrupt file moved aside" false (Sys.file_exists new_path)

(* ---- service ---- *)

let example_service ?(config = Service.default_config) () =
  let device = Core.Presets.example_6q () in
  let registry = Registry.create () in
  ignore
    (Registry.add_static registry ~id:"example6q" ~device
       ~xtalk:(Device.ground_truth device));
  Service.create ~config registry

let sched_json o = Json.to_string (Wire.schedule_to_json o.Service.schedule)

let service_hit_is_cold_compile () =
  let service = example_service () in
  let a = bell_with_measures ~order:[ 1; 0 ] 6 in
  let b = bell_with_measures ~order:[ 0; 1 ] 6 in
  let o1 =
    match Service.compile service ~device:"example6q" a with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "first compile is cold" false o1.Service.cached;
  let o2 =
    match Service.compile service ~device:"example6q" b with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "canonicalized variant hits" true o2.Service.cached;
  Alcotest.(check string) "same key" o1.Service.key o2.Service.key;
  Alcotest.(check string) "bit-identical schedule" (sched_json o1) (sched_json o2)

let service_epoch_bump_invalidates () =
  let service = example_service () in
  let circuit = bell_with_measures ~order:[ 0; 1 ] 6 in
  let o1 =
    match Service.compile service ~device:"example6q" circuit with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  (match Registry.set_xtalk (Service.registry service) ~id:"example6q" Core.Crosstalk.empty with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let o2 =
    match Service.compile service ~device:"example6q" circuit with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "epoch bump misses" false o2.Service.cached;
  Alcotest.(check bool) "key changed with epoch" false (o1.Service.key = o2.Service.key)

let service_rejects_bad_requests () =
  let service = example_service () in
  let circuit = bell_with_measures ~order:[ 0 ] 6 in
  Alcotest.(check bool) "unknown device" true
    (Result.is_error (Service.compile service ~device:"nope" circuit));
  let wide = Circuit.measure_all (Circuit.h (Circuit.create 9) 8) in
  Alcotest.(check bool) "circuit wider than device" true
    (Result.is_error (Service.compile service ~device:"example6q" wide))

let compile_req id circuit =
  Wire.Compile
    { id; device = "example6q"; circuit; params = Wire.default_params }

let service_admission_control () =
  let config = { Service.default_config with Service.queue_bound = 2 } in
  let service = example_service ~config () in
  let circuits =
    List.init 4 (fun i ->
        Circuit.measure_all (Circuit.x (Circuit.h (Circuit.create 6) 0) i))
  in
  let reqs =
    List.mapi (fun i c -> compile_req (Printf.sprintf "c%d" i) c) circuits
    @ [ Wire.Ping { id = "p" } ]
  in
  let responses = Service.handle_batch service reqs in
  let statuses =
    List.map (fun r -> match Json.find_str "status" r with Ok s -> s | Error e -> e) responses
  in
  Alcotest.(check (list string)) "two admitted, two overloaded, ping served"
    [ "ok"; "ok"; "overloaded"; "overloaded"; "ok" ]
    statuses

let strip_timing json =
  (* solve_seconds/cpu_seconds are timing measurements; everything
     else in a compile response is deterministic. *)
  match json with
  | Json.Object fields ->
    Json.Object
      (List.map
         (function
           | "stats", Json.Object s ->
             ( "stats",
               Json.Object
                 (List.remove_assoc "cpu_seconds" (List.remove_assoc "solve_seconds" s)) )
           | kv -> kv)
         fields)
  | other -> other

let service_batch_jobs_determinism () =
  let circuits =
    List.init 6 (fun i ->
        let c = bell_with_measures ~order:[ 0; 1; 2; 3 ] 6 in
        if i mod 3 = 0 then c else Circuit.measure_all (Circuit.x (Circuit.h (Circuit.create 6) 0) (i mod 3)))
  in
  let reqs = List.mapi (fun i c -> compile_req (Printf.sprintf "c%d" i) c) circuits in
  let responses_for jobs =
    let config = { Service.default_config with Service.jobs } in
    let service = example_service ~config () in
    List.map
      (fun r -> Json.to_string (strip_timing r))
      (Service.handle_batch service reqs)
  in
  Alcotest.(check (list string)) "responses identical for jobs 1 and 4" (responses_for 1)
    (responses_for 4)

let service_batch_dedup () =
  let service = example_service () in
  let circuit = bell_with_measures ~order:[ 0; 1 ] 6 in
  let reqs = [ compile_req "a" circuit; compile_req "b" circuit ] in
  let responses = Service.handle_batch service reqs in
  let scheds =
    List.map
      (fun r -> match Json.member "schedule" r with Some s -> Json.to_string s | None -> "?")
      responses
  in
  (match scheds with
  | [ a; b ] -> Alcotest.(check string) "identical schedules" a b
  | _ -> Alcotest.fail "expected two responses");
  match Json.member "served" (Service.stats_json service) with
  | Some served ->
    Alcotest.(check bool) "one cold compile for the pair" true
      (Json.find_float "cold_compiles" served = Ok 1.0)
  | None -> Alcotest.fail "missing served stats"

(* ---- server loop ---- *)

let server_handle_lines () =
  let service = example_service () in
  let lines =
    [
      {|{"op":"ping","id":"p1"}|};
      "this is not json";
      {|{"op":"shutdown","id":"s1"}|};
      "";
    ]
  in
  let responses, stop = Server.handle_lines service lines in
  Alcotest.(check int) "three responses (blank skipped)" 3 (List.length responses);
  Alcotest.(check bool) "shutdown noticed" true stop;
  let status line =
    match Json.of_string line with
    | Ok doc -> ( match Json.find_str "status" doc with Ok s -> s | Error e -> e)
    | Error e -> e
  in
  Alcotest.(check (list string)) "statuses" [ "ok"; "error"; "ok" ]
    (List.map status responses)

let server_once_roundtrip () =
  let service = example_service () in
  let circuit = bell_with_measures ~order:[ 1; 0 ] 6 in
  let req = Json.to_string ~indent:false (Wire.request_to_json (compile_req "r1" circuit)) in
  let in_path = tmp "qcx_test_serve_in.ndjson" in
  let out_path = tmp "qcx_test_serve_out.ndjson" in
  let oc = open_out in_path in
  output_string oc (req ^ "\n" ^ req ^ "\n");
  close_out oc;
  let ic = open_in in_path in
  let oc = open_out out_path in
  Server.serve_channels service ic oc;
  close_in ic;
  close_out oc;
  let ic = open_in out_path in
  let l1 = input_line ic in
  let l2 = input_line ic in
  close_in ic;
  let parse line = match Json.of_string line with Ok d -> d | Error e -> Alcotest.fail e in
  let d1 = parse l1 and d2 = parse l2 in
  Alcotest.(check bool) "first ok" true (Json.find_str "status" d1 = Ok "ok");
  Alcotest.(check bool) "responses carry schedules" true
    (Json.member "schedule" d1 <> None && Json.member "schedule" d2 <> None);
  Alcotest.(check bool) "same key both rounds" true
    (Json.find_str "key" d1 = Json.find_str "key" d2)

let server_socket_roundtrip () =
  let path = tmp (Printf.sprintf "qcx_test_serve_%d.sock" (Unix.getpid ())) in
  if Sys.file_exists path then Sys.remove path;
  (* The server runs in its own domain (fork is off-limits once Pool
     domains have existed); the test plays the client. *)
  let service = example_service () in
  let server =
    Domain.spawn (fun () -> try Server.serve_socket service ~path with _ -> ())
  in
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Domain.join server;
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
        let rec connect tries =
          match Unix.connect sock (Unix.ADDR_UNIX path) with
          | () -> ()
          | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
            when tries > 0 ->
            Unix.sleepf 0.05;
            connect (tries - 1)
        in
        connect 100;
        Unix.setsockopt_float sock Unix.SO_RCVTIMEO 10.0;
        let msg = {|{"op":"ping","id":"p1"}|} ^ "\n" ^ {|{"op":"shutdown","id":"s1"}|} ^ "\n" in
        ignore (Unix.write_substring sock msg 0 (String.length msg));
        let buf = Bytes.create 4096 in
        let rec read_lines acc =
          if List.length (String.split_on_char '\n' acc) >= 3 then acc
          else
            match Unix.read sock buf 0 (Bytes.length buf) with
            | 0 -> acc
            | n -> read_lines (acc ^ Bytes.sub_string buf 0 n)
        in
        let text = read_lines "" in
        let lines = List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text) in
        Alcotest.(check int) "two responses over the socket" 2 (List.length lines);
        List.iter
          (fun line ->
            match Json.of_string line with
            | Ok doc ->
              Alcotest.(check bool) "status ok" true (Json.find_str "status" doc = Ok "ok")
            | Error e -> Alcotest.fail e)
          lines)

(* ---- reactor concurrency semantics ---- *)

let connect_client path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go tries =
    match Unix.connect sock (Unix.ADDR_UNIX path) with
    | () -> ()
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when tries > 0 ->
      Unix.sleepf 0.05;
      go (tries - 1)
  in
  go 100;
  Unix.setsockopt_float sock Unix.SO_RCVTIMEO 15.0;
  sock

let send_str sock s = ignore (Unix.write_substring sock s 0 (String.length s))

let read_lines sock n =
  let buf = Bytes.create 65536 in
  let rec go acc =
    let complete =
      List.length (List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' acc))
    in
    if complete >= n then acc
    else
      match Unix.read sock buf 0 (Bytes.length buf) with
      | 0 -> acc
      | k -> go (acc ^ Bytes.sub_string buf 0 k)
  in
  List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' (go ""))

(* A connection that stalls mid-frame must not delay other clients:
   under the old serial accept loop, B would wait behind A's open
   connection forever; the reactor serves B while A's partial frame
   sits in its read buffer. *)
let server_stalled_reader_no_hol () =
  let path = tmp (Printf.sprintf "qcx_test_hol_%d.sock" (Unix.getpid ())) in
  if Sys.file_exists path then Sys.remove path;
  let service = example_service () in
  let server = Domain.spawn (fun () -> try Server.serve_socket service ~path with _ -> ()) in
  let a = connect_client path in
  let b = connect_client path in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      (try Unix.close b with Unix.Unix_error _ -> ());
      Domain.join server;
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (* A opens a frame and stalls — no terminating newline. *)
      send_str a {|{"op":"ping","id":"a1"|};
      Unix.sleepf 0.1;
      (* B must be served while A is still stalled. *)
      send_str b ({|{"op":"ping","id":"b1"}|} ^ "\n");
      (match read_lines b 1 with
      | [ line ] ->
        let doc = match Json.of_string line with Ok d -> d | Error e -> Alcotest.fail e in
        Alcotest.(check bool) "b served while a stalls" true
          (Json.find_str "id" doc = Ok "b1" && Json.find_str "status" doc = Ok "ok")
      | other -> Alcotest.fail (Printf.sprintf "expected 1 line, got %d" (List.length other)));
      (* A completes its frame and is served normally. *)
      send_str a ("}\n" ^ {|{"op":"shutdown","id":"a2"}|} ^ "\n");
      match read_lines a 2 with
      | [ l1; _ ] ->
        let doc = match Json.of_string l1 with Ok d -> d | Error e -> Alcotest.fail e in
        Alcotest.(check bool) "a's late frame served" true (Json.find_str "id" doc = Ok "a1")
      | other -> Alcotest.fail (Printf.sprintf "expected 2 lines, got %d" (List.length other)))

(* Cold compiles from different connections coalesce into one shared
   batch — and the responses must be bit-identical (modulo measured
   timing) to each client talking to its own serial server, at every
   [jobs]. *)
let server_cross_connection_batching () =
  let distinct_circuit i =
    Circuit.measure_all (Circuit.x (Circuit.h (Circuit.create 6) 0) (1 + (i mod 5)))
  in
  let client_lines c =
    List.map
      (fun j ->
        let i = (2 * c) + j in
        let req = compile_req (Printf.sprintf "c%d-%d" c j) (distinct_circuit i) in
        Json.to_string ~indent:false (Wire.request_to_json req))
      [ 0; 1 ]
  in
  let strip line =
    match Json.of_string line with
    | Ok doc -> Json.to_string (strip_timing doc)
    | Error e -> Alcotest.fail e
  in
  List.iter
    (fun jobs ->
      let config = { Service.default_config with Service.jobs } in
      let path = tmp (Printf.sprintf "qcx_test_xconn_%d_%d.sock" (Unix.getpid ()) jobs) in
      if Sys.file_exists path then Sys.remove path;
      let service = example_service ~config () in
      let metrics = Server.create_metrics () in
      let server =
        Domain.spawn (fun () ->
            try Server.serve_socket service ~path ~batch_window:0.25 ~metrics with _ -> ())
      in
      let clients = List.init 3 (fun _ -> connect_client path) in
      Fun.protect
        ~finally:(fun () ->
          List.iter (fun s -> try Unix.close s with Unix.Unix_error _ -> ()) clients;
          Domain.join server;
          if Sys.file_exists path then Sys.remove path)
        (fun () ->
          (* all three clients write before the collection window closes *)
          List.iteri
            (fun c sock ->
              List.iter (fun l -> send_str sock (l ^ "\n")) (client_lines c))
            clients;
          let got =
            List.map (fun sock -> List.map strip (read_lines sock 2)) clients
          in
          let want =
            List.map
              (fun c ->
                let serial = example_service ~config () in
                let responses, _ = Server.handle_lines serial (client_lines c) in
                List.map strip responses)
              (List.init 3 Fun.id)
          in
          List.iteri
            (fun c (g, w) ->
              Alcotest.(check (list string))
                (Printf.sprintf "client %d identical to serial at jobs %d" c jobs)
                w g)
            (List.combine got want);
          (* stop the reactor; the shutdown rides its own connection *)
          let s = connect_client path in
          send_str s ({|{"op":"shutdown","id":"x"}|} ^ "\n");
          ignore (read_lines s 1);
          Unix.close s);
      match Server.metrics_json metrics with
      | Json.Object fields ->
        Alcotest.(check bool) "reactor saw all 7 frames" true
          (List.assoc_opt "frames" fields = Some (Json.Number 7.0));
        Alcotest.(check bool) "frames were batched" true
          (match List.assoc_opt "batches" fields with
          | Some (Json.Number b) -> b >= 1.0 && b <= 7.0
          | _ -> false)
      | _ -> Alcotest.fail "metrics_json not an object")
    [ 1; 2; 4 ]

(* The rendered hit fast path (pre-rendered response tail spliced
   after the id) must be byte-identical to rendering the document —
   including ids that need JSON escaping. *)
let service_hit_render_identity () =
  let service = example_service () in
  let circuit = bell_with_measures ~order:[ 0; 1 ] 6 in
  let warm = compile_req "warm" circuit in
  ignore (Service.handle_batch_rendered service [ warm ]);
  List.iter
    (fun id ->
      let req =
        Wire.Compile { id; device = "example6q"; circuit; params = Wire.default_params }
      in
      let doc = match Service.handle_batch service [ req ] with [ d ] -> d | _ -> Alcotest.fail "one response" in
      Alcotest.(check bool) "request hit the cache" true
        (Json.member "cached" doc = Some (Json.Bool true));
      let line =
        match Service.handle_batch_rendered service [ req ] with
        | [ l ] -> l
        | _ -> Alcotest.fail "one rendered response"
      in
      Alcotest.(check string) "fast-rendered hit is byte-identical"
        (Json.to_string ~indent:false doc) line)
    [ "plain"; "needs \"escaping\"\\"; "tab\there"; "" ]

let wire_retag_roundtrip () =
  let circuit = bell_with_measures ~order:[ 0; 1 ] 6 in
  let line =
    Json.to_string ~indent:false (Wire.request_to_json (compile_req "orig \"id\"" circuit))
  in
  Alcotest.(check (option string)) "line_id reads the id" (Some "orig \"id\"")
    (Wire.line_id line);
  let tagged = Wire.retag_line line ~id:"qr-7" in
  Alcotest.(check (option string)) "retag replaces the id" (Some "qr-7") (Wire.line_id tagged);
  Alcotest.(check string) "retag out and back is byte-exact" line
    (Wire.retag_line tagged ~id:"orig \"id\"");
  Alcotest.(check string) "non-JSON passes through" "not json"
    (Wire.retag_line "not json" ~id:"x")

let suite =
  [
    ( "serve.canon",
      [
        Alcotest.test_case "measure order" `Quick canon_measure_order;
        Alcotest.test_case "symmetric operands" `Quick canon_symmetric_operands;
        Alcotest.test_case "swap expansion" `Quick canon_swap_expansion;
        Alcotest.test_case "width and difference" `Quick canon_width_and_difference;
        Alcotest.test_case "fused key serializer" `Quick canon_key_serialize_fused;
      ] );
    ( "serve.cache",
      [
        Alcotest.test_case "lru eviction" `Quick cache_lru_eviction;
        Alcotest.test_case "persistence roundtrip" `Quick cache_persistence_roundtrip;
      ] );
    ( "serve.registry",
      [
        Alcotest.test_case "epoch bumps" `Quick registry_epoch_bumps;
        Alcotest.test_case "snapshots and refresh" `Quick registry_snapshots_and_refresh;
      ] );
    ( "serve.service",
      [
        Alcotest.test_case "hit equals cold compile" `Quick service_hit_is_cold_compile;
        Alcotest.test_case "epoch bump invalidates" `Quick service_epoch_bump_invalidates;
        Alcotest.test_case "bad requests" `Quick service_rejects_bad_requests;
        Alcotest.test_case "admission control" `Quick service_admission_control;
        Alcotest.test_case "jobs determinism" `Quick service_batch_jobs_determinism;
        Alcotest.test_case "batch dedup" `Quick service_batch_dedup;
      ] );
    ( "serve.server",
      [
        Alcotest.test_case "handle_lines" `Quick server_handle_lines;
        Alcotest.test_case "once roundtrip" `Quick server_once_roundtrip;
        Alcotest.test_case "socket roundtrip" `Quick server_socket_roundtrip;
        Alcotest.test_case "stalled reader no HOL" `Quick server_stalled_reader_no_hol;
        Alcotest.test_case "cross-connection batching" `Quick server_cross_connection_batching;
        Alcotest.test_case "hit render identity" `Quick service_hit_render_identity;
        Alcotest.test_case "wire retag roundtrip" `Quick wire_retag_roundtrip;
      ] );
  ]
