(* Tests for the persistence layer: the JSON reader/writer and the
   crosstalk/calibration/device stores. *)

module Json = Core.Json
module Store = Core.Store
module Crosstalk = Core.Crosstalk
module Presets = Core.Presets
module Device = Core.Device

(* ---- Json ---- *)

let json_roundtrip () =
  let doc =
    Json.Object
      [
        ("name", Json.String "hello \"world\"\nline two");
        ("count", Json.Number 42.0);
        ("rate", Json.Number 0.015625);
        ("ok", Json.Bool true);
        ("nothing", Json.Null);
        ("items", Json.Array [ Json.Number 1.0; Json.String "two"; Json.Bool false ]);
        ("nested", Json.Object [ ("deep", Json.Array [ Json.Object [] ]) ]);
      ]
  in
  match Json.of_string (Json.to_string doc) with
  | Ok parsed -> Alcotest.(check bool) "roundtrip" true (parsed = doc)
  | Error e -> Alcotest.fail e

let json_parse_whitespace_and_compact () =
  let src = {|  { "a" : [ 1 , 2.5 , -3e2 ] , "b" : { } , "c" : [ ] }  |} in
  match Json.of_string src with
  | Ok (Json.Object fields) ->
    Alcotest.(check int) "three fields" 3 (List.length fields);
    (match List.assoc "a" fields with
    | Json.Array [ Json.Number a; Json.Number b; Json.Number c ] ->
      Alcotest.(check (float 1e-9)) "1" 1.0 a;
      Alcotest.(check (float 1e-9)) "2.5" 2.5 b;
      Alcotest.(check (float 1e-9)) "-300" (-300.0) c
    | _ -> Alcotest.fail "bad array")
  | Ok _ -> Alcotest.fail "expected object"
  | Error e -> Alcotest.fail e

let json_parse_errors () =
  List.iter
    (fun src ->
      match Json.of_string src with
      | Ok _ -> Alcotest.failf "expected error for %S" src
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\" 1}"; "\"unterminated"; "tru"; "1 2"; "{\"a\":}" ]

let json_accessors () =
  let doc = Json.Object [ ("x", Json.Number 3.0); ("s", Json.String "v") ] in
  Alcotest.(check bool) "find_float" true (Json.find_float "x" doc = Ok 3.0);
  Alcotest.(check bool) "find_str" true (Json.find_str "s" doc = Ok "v");
  Alcotest.(check bool) "missing" true (Result.is_error (Json.find_float "y" doc));
  Alcotest.(check bool) "to_int" true (Json.to_int (Json.Number 7.0) = Ok 7);
  Alcotest.(check bool) "to_int rejects fraction" true
    (Result.is_error (Json.to_int (Json.Number 7.5)))

(* ---- Store ---- *)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let store_crosstalk_roundtrip () =
  let x = Crosstalk.set_symmetric Crosstalk.empty (10, 15) (11, 12) 0.11 0.06 in
  let x = Crosstalk.set x ~target:(5, 10) ~spectator:(11, 12) 0.09 in
  let path = tmp "qcx_test_xtalk.json" in
  (match Store.save_crosstalk ~path x with Ok () -> () | Error e -> Alcotest.fail e);
  match Store.load_crosstalk ~path () with
  | Error e -> Alcotest.fail e
  | Ok loaded ->
    Alcotest.(check int) "same entry count"
      (List.length (Crosstalk.entries x))
      (List.length (Crosstalk.entries loaded));
    List.iter
      (fun (target, spectator, rate) ->
        Alcotest.(check (option (float 1e-12))) "same rate" (Some rate)
          (Crosstalk.conditional loaded ~target ~spectator))
      (Crosstalk.entries x)

let store_calibration_roundtrip () =
  let device = Presets.poughkeepsie () in
  let cal = Device.calibration device in
  let edges = Core.Topology.edges (Device.topology device) in
  let doc = Store.calibration_to_json cal ~edges in
  match Store.calibration_of_json doc with
  | Error e -> Alcotest.fail e
  | Ok loaded ->
    Alcotest.(check int) "qubit count" (Core.Calibration.nqubits cal)
      (Core.Calibration.nqubits loaded);
    List.iter
      (fun e ->
        Alcotest.(check (float 1e-12)) "cnot error"
          (Core.Calibration.gate cal e).Core.Calibration.cnot_error
          (Core.Calibration.gate loaded e).Core.Calibration.cnot_error)
      edges;
    Alcotest.(check (float 1e-12)) "t1 preserved"
      (Core.Calibration.qubit cal 10).Core.Calibration.t1
      (Core.Calibration.qubit loaded 10).Core.Calibration.t1

let store_device_snapshot () =
  let device = Presets.johannesburg () in
  let doc = Store.device_snapshot_to_json device in
  match Store.device_snapshot_of_json doc with
  | Error e -> Alcotest.fail e
  | Ok (name, topo, _cal) ->
    Alcotest.(check string) "name" (Device.name device) name;
    Alcotest.(check int) "edges"
      (List.length (Core.Topology.edges (Device.topology device)))
      (List.length (Core.Topology.edges topo))

let store_snapshot_hides_ground_truth () =
  (* The serialized device must not leak the hidden crosstalk model. *)
  let device = Presets.poughkeepsie () in
  let text = Json.to_string (Store.device_snapshot_to_json device) in
  let contains_sub needle hay =
    let n = String.length needle and h = String.length hay in
    let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "no conditional rates serialized" false
    (contains_sub "spectator" text)

let store_load_missing_file () =
  Alcotest.(check bool) "missing file errors" true
    (Result.is_error (Store.load ~path:"/nonexistent/qcx.json"))

let store_rejects_wrong_format () =
  let doc = Json.Object [ ("format", Json.String "something-else"); ("entries", Json.Array []) ] in
  Alcotest.(check bool) "format checked" true (Result.is_error (Store.crosstalk_of_json doc))

let store_save_is_atomic () =
  let path = tmp "qcx_test_atomic.json" in
  let doc v = Json.Object [ ("v", Json.Number v) ] in
  (match Store.save ~path (doc 1.0) with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "no tmp file left behind" false (Sys.file_exists (path ^ ".tmp"));
  (* Overwrite goes through the same rename; a stale tmp from a
     crashed writer is simply replaced. *)
  let oc = open_out (path ^ ".tmp") in
  output_string oc "{ truncated garbage";
  close_out oc;
  (match Store.save ~path (doc 2.0) with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "stale tmp consumed" false (Sys.file_exists (path ^ ".tmp"));
  (match Store.load ~path with
  | Ok loaded -> Alcotest.(check bool) "new value visible" true (Json.find_float "v" loaded = Ok 2.0)
  | Error e -> Alcotest.fail e);
  (* A failing write errors out without touching the destination. *)
  (match Store.save ~path:"/nonexistent-dir/qcx.json" (doc 3.0) with
  | Ok () -> Alcotest.fail "save into missing directory should fail"
  | Error _ -> ());
  match Store.load ~path with
  | Ok loaded ->
    Alcotest.(check bool) "destination intact after failed save" true
      (Json.find_float "v" loaded = Ok 2.0)
  | Error e -> Alcotest.fail e

let store_quarantine_numbers_duplicates () =
  let path = tmp "qcx_test_quarantine.json" in
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".corrupt"; path ^ ".corrupt.1"; path ^ ".corrupt.2" ];
  let write text =
    let oc = open_out path in
    output_string oc text;
    close_out oc
  in
  let quarantine_to expected =
    match Store.quarantine ~path with
    | Ok moved -> Alcotest.(check string) "quarantine destination" expected moved
    | Error e -> Alcotest.fail e
  in
  write "first corruption";
  quarantine_to (path ^ ".corrupt");
  write "second corruption";
  quarantine_to (path ^ ".corrupt.1");
  write "third corruption";
  quarantine_to (path ^ ".corrupt.2");
  (* Earlier evidence is preserved, not clobbered. *)
  let read p =
    let ic = open_in p in
    let line = input_line ic in
    close_in ic;
    line
  in
  Alcotest.(check string) "first kept" "first corruption" (read (path ^ ".corrupt"));
  Alcotest.(check string) "second kept" "second corruption" (read (path ^ ".corrupt.1"));
  Alcotest.(check string) "third kept" "third corruption" (read (path ^ ".corrupt.2"))

let suite =
  [
    ( "persist.json",
      [
        Alcotest.test_case "roundtrip" `Quick json_roundtrip;
        Alcotest.test_case "whitespace and compact" `Quick json_parse_whitespace_and_compact;
        Alcotest.test_case "parse errors" `Quick json_parse_errors;
        Alcotest.test_case "accessors" `Quick json_accessors;
      ] );
    ( "persist.store",
      [
        Alcotest.test_case "crosstalk roundtrip" `Quick store_crosstalk_roundtrip;
        Alcotest.test_case "calibration roundtrip" `Quick store_calibration_roundtrip;
        Alcotest.test_case "device snapshot" `Quick store_device_snapshot;
        Alcotest.test_case "hides ground truth" `Quick store_snapshot_hides_ground_truth;
        Alcotest.test_case "missing file" `Quick store_load_missing_file;
        Alcotest.test_case "rejects wrong format" `Quick store_rejects_wrong_format;
        Alcotest.test_case "atomic save" `Quick store_save_is_atomic;
        Alcotest.test_case "quarantine numbers duplicates" `Quick
          store_quarantine_numbers_duplicates;
      ] );
  ]
