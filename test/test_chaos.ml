(* Robustness tests for the hardened serving layer (DESIGN.md §9):
   wire-parser totality under fuzzed input, frame bounds, per-request
   deadlines, circuit breakers on a fake clock, write-ahead journal
   torn-tail recovery, checkpoint compaction, disk-full degradation,
   registry bumps over corrupt snapshots, and graceful socket drain. *)

module Wire = Core.Wire
module Cache = Core.Cache
module Registry = Core.Registry
module Service = Core.Service
module Server = Core.Server
module Breaker = Core.Breaker
module Journal = Core.Journal
module Json = Core.Json
module Circuit = Core.Circuit
module Device = Core.Device
module Store = Core.Store
module Crosstalk = Core.Crosstalk

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let example_service ?(config = Service.default_config) ?clock () =
  let device = Core.Presets.example_6q () in
  let registry = Registry.create () in
  ignore
    (Registry.add_static registry ~id:"example6q" ~device
       ~xtalk:(Device.ground_truth device));
  Service.create ~config ?clock registry

(* Distinct small circuits on real coupling-map edges, so
   multi-request batches occupy distinct compile slots (no dedup). *)
let circuit_no i =
  let device = Core.Presets.example_6q () in
  let edges = Array.of_list (Core.Topology.edges (Device.topology device)) in
  let a, b = edges.(i mod Array.length edges) in
  let c = Circuit.create (Device.nqubits device) in
  let c = Circuit.h c (i mod Device.nqubits device) in
  let c = Circuit.cnot c ~control:a ~target:b in
  Circuit.measure_all c

let compile_req ?(params = Wire.default_params) id circuit =
  Wire.Compile { id; device = "example6q"; circuit; params }

let encode req = Json.to_string ~indent:false (Wire.request_to_json req)

let status_of line =
  match Json.of_string line with
  | Error e -> Alcotest.fail ("response is not JSON: " ^ e)
  | Ok doc -> (
    match Json.find_str "status" doc with
    | Ok s -> s
    | Error _ -> Alcotest.fail ("response has no status: " ^ line))

(* ---- fuzz: arbitrary bytes never raise, always one typed response ---- *)

let fuzz_service = lazy (example_service ())

let one_typed_response_per_line lines =
  let service = Lazy.force fuzz_service in
  let expected =
    List.length (List.filter (fun l -> String.trim l <> "") lines)
  in
  match Server.handle_lines ~max_frame:4096 service lines with
  | exception e -> QCheck.Test.fail_reportf "raised %s" (Printexc.to_string e)
  | out, _stop ->
    List.length out = expected
    && List.for_all
         (fun line ->
           match Json.of_string line with
           | Error _ -> false
           | Ok doc -> Result.is_ok (Json.find_str "status" doc))
         out

let prop_fuzz_random_bytes =
  QCheck.Test.make ~name:"random bytes get typed responses" ~count:300
    (QCheck.make QCheck.Gen.(string_size ~gen:char (int_bound 300)))
    (fun s -> one_typed_response_per_line [ s ])

(* Mutate a valid compile frame: truncate and/or flip bytes.  The
   server must answer every mutant with a typed response. *)
let prop_fuzz_mutated_frames =
  let base = encode (compile_req "m0" (circuit_no 0)) in
  let gen =
    QCheck.Gen.(
      pair (int_range 1 (String.length base)) (list_size (int_bound 6) (pair small_nat small_nat)))
  in
  QCheck.Test.make ~name:"truncated/bit-flipped frames get typed responses" ~count:300
    (QCheck.make gen) (fun (keep, flips) ->
      let s = Bytes.of_string (String.sub base 0 keep) in
      List.iter
        (fun (pos, bit) ->
          let i = pos mod Bytes.length s in
          Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor (1 lsl (bit mod 8)))))
        flips;
      one_typed_response_per_line [ Bytes.to_string s ])

(* ---- frame bound ---- *)

let frame_too_large () =
  let service = example_service () in
  let long = String.make 100 'x' in
  let responses, stop =
    Server.handle_lines ~max_frame:64 service [ long; {|{"op":"ping","id":"p1"}|} ]
  in
  Alcotest.(check bool) "no shutdown" false stop;
  Alcotest.(check int) "two responses" 2 (List.length responses);
  (match responses with
  | [ first; second ] ->
    Alcotest.(check string) "oversize is typed" "frame_too_large" (status_of first);
    (match Json.of_string first with
    | Ok doc ->
      Alcotest.(check bool) "carries the limit" true
        (match Json.member "limit" doc with Some (Json.Number 64.0) -> true | _ -> false)
    | Error e -> Alcotest.fail e);
    Alcotest.(check string) "pipelined ping unaffected" "ok" (status_of second)
  | _ -> Alcotest.fail "expected two responses")

(* ---- health op ---- *)

let health_op () =
  let service = example_service () in
  match Service.handle service (Wire.Health { id = "h1" }) with
  | Json.Object _ as doc ->
    Alcotest.(check bool) "status ok" true (Json.find_str "status" doc = Ok "ok");
    (match Json.member "health" doc with
    | Some health ->
      Alcotest.(check bool) "ready" true (Json.member "ready" health = Some (Json.Bool true));
      Alcotest.(check bool) "has breakers" true (Json.member "breakers" health <> None);
      Alcotest.(check bool) "has journal" true (Json.member "journal" health <> None);
      Service.set_draining service true;
      (match Service.handle service (Wire.Health { id = "h2" }) with
      | doc2 ->
        let health2 = Option.get (Json.member "health" doc2) in
        Alcotest.(check bool) "draining flips readiness" true
          (Json.member "ready" health2 = Some (Json.Bool false)))
    | None -> Alcotest.fail "no health payload")
  | _ -> Alcotest.fail "expected an object"

(* ---- deadlines ---- *)

let deadline_exceeded () =
  let config =
    { Service.default_config with Service.max_compile_seconds = Some 5.0; deadline_grace = 1.5 }
  in
  let service = example_service ~config () in
  (* Slot 0 stalls well past the 50 ms budget; slot 1 is healthy. *)
  Service.set_compile_fault service
    (Some (fun ~nth -> if nth = 0 then Some (Service.Stall_compile 0.3) else None));
  let params = { Wire.default_params with Wire.deadline = Some 0.05 } in
  let reqs = [ compile_req ~params "d0" (circuit_no 0); compile_req "d1" (circuit_no 1) ] in
  (match Service.handle_batch service reqs with
  | [ r0; r1 ] ->
    Alcotest.(check bool) "slow slot is typed deadline_exceeded" true
      (Json.find_str "status" r0 = Ok "deadline_exceeded");
    Alcotest.(check bool) "carries deadline and elapsed" true
      (Json.member "deadline" r0 <> None && Json.member "elapsed" r0 <> None);
    Alcotest.(check bool) "batch survives: healthy slot ok" true
      (Json.find_str "status" r1 = Ok "ok")
  | _ -> Alcotest.fail "expected two responses");
  (* The late-but-valid schedule was still cached: a retry is a hit. *)
  Service.set_compile_fault service None;
  match Service.handle_batch service [ compile_req ~params "d2" (circuit_no 0) ] with
  | [ r ] ->
    Alcotest.(check bool) "retry served from cache" true
      (Json.find_str "status" r = Ok "ok" && Json.member "cached" r = Some (Json.Bool true))
  | _ -> Alcotest.fail "expected one response"

(* ---- circuit breaker: unit state machine on a fake clock ---- *)

let breaker_state_machine () =
  let b =
    Breaker.create
      { Breaker.threshold = 2; cooloff_seconds = 10.0; min_rung = Core.Xtalk_sched.Parallel }
  in
  Alcotest.(check bool) "starts closed admitting" true (Breaker.check b ~now:0.0 = Breaker.Admit);
  Breaker.record_failure b ~now:0.0;
  Alcotest.(check bool) "one failure stays closed" true (Breaker.state b = Breaker.Closed);
  Breaker.record_failure b ~now:1.0;
  Alcotest.(check bool) "threshold trips open" true (Breaker.state b = Breaker.Open);
  (match Breaker.check b ~now:2.0 with
  | Breaker.Reject retry -> Alcotest.(check bool) "retry_after bounded" true (retry <= 10.0)
  | _ -> Alcotest.fail "open breaker must reject");
  (match Breaker.check b ~now:12.0 with
  | Breaker.Probe -> ()
  | _ -> Alcotest.fail "cooloff elapsed: expected a probe");
  Alcotest.(check bool) "probing is half-open" true (Breaker.state b = Breaker.Half_open);
  (match Breaker.check b ~now:12.0 with
  | Breaker.Reject _ -> ()
  | _ -> Alcotest.fail "only one probe at a time");
  Breaker.record_failure b ~now:12.5;
  Alcotest.(check bool) "failed probe re-opens" true (Breaker.state b = Breaker.Open);
  (match Breaker.check b ~now:13.0 with
  | Breaker.Reject _ -> ()
  | _ -> Alcotest.fail "cooloff restarted after failed probe");
  (match Breaker.check b ~now:23.0 with
  | Breaker.Probe -> ()
  | _ -> Alcotest.fail "expected a second probe");
  Breaker.record_success b ~now:23.5;
  Alcotest.(check bool) "successful probe closes" true (Breaker.state b = Breaker.Closed);
  Alcotest.(check int) "two trips" 2 (Breaker.trips b)

(* ---- circuit breaker: end to end through the service ---- *)

let breaker_trip_and_recover () =
  let now = ref 0.0 in
  let config =
    {
      Service.default_config with
      Service.breaker =
        { Breaker.threshold = 2; cooloff_seconds = 30.0; min_rung = Core.Xtalk_sched.Parallel };
    }
  in
  let service = example_service ~config ~clock:(fun () -> !now) () in
  Service.set_compile_fault service (Some (fun ~nth:_ -> Some (Service.Fail_compile "boom")));
  (* Two failing compiles trip the device's breaker... *)
  let reqs = [ compile_req "b0" (circuit_no 0); compile_req "b1" (circuit_no 1) ] in
  List.iter
    (fun r ->
      Alcotest.(check bool) "injected failures are typed" true
        (Json.find_str "status" r = Ok "internal_error"))
    (Service.handle_batch service reqs);
  let b = Service.breaker_for service "example6q" in
  Alcotest.(check bool) "breaker open" true (Breaker.state b = Breaker.Open);
  (* ...so the next compile is rejected without burning solver budget. *)
  (match Service.handle_batch service [ compile_req "b2" (circuit_no 2) ] with
  | [ r ] ->
    Alcotest.(check bool) "typed breaker_open" true
      (Json.find_str "status" r = Ok "breaker_open");
    Alcotest.(check bool) "carries retry_after" true (Json.member "retry_after" r <> None)
  | _ -> Alcotest.fail "expected one response");
  (* A cached hit is still served through the open breaker?  No hit
     exists yet, but ops other than compile must also flow. *)
  Alcotest.(check string) "ping flows through open breaker" "ok"
    (match Json.find_str "status" (Service.handle service (Wire.Ping { id = "p" })) with
    | Ok s -> s
    | Error e -> e);
  (* Cooloff elapses on the fake clock, the fault clears: the next
     request is the half-open probe, and its success closes the breaker. *)
  now := 100.0;
  Service.set_compile_fault service None;
  (match Service.handle_batch service [ compile_req "b3" (circuit_no 3) ] with
  | [ r ] ->
    Alcotest.(check bool) "probe succeeds" true (Json.find_str "status" r = Ok "ok")
  | _ -> Alcotest.fail "expected one response");
  Alcotest.(check bool) "breaker closed again" true (Breaker.state b = Breaker.Closed);
  Alcotest.(check int) "exactly one trip" 1 (Breaker.trips b);
  Alcotest.(check bool) "rejections surfaced" true (Breaker.rejections b >= 1)

(* A hit present in the cache is served even while the breaker is open. *)
let breaker_serves_cache_hits () =
  let now = ref 0.0 in
  let config =
    {
      Service.default_config with
      Service.breaker =
        { Breaker.threshold = 1; cooloff_seconds = 1000.0; min_rung = Core.Xtalk_sched.Parallel };
    }
  in
  let service = example_service ~config ~clock:(fun () -> !now) () in
  (match Service.handle_batch service [ compile_req "w0" (circuit_no 0) ] with
  | [ r ] -> Alcotest.(check bool) "warm compile ok" true (Json.find_str "status" r = Ok "ok")
  | _ -> Alcotest.fail "expected one response");
  Service.set_compile_fault service (Some (fun ~nth:_ -> Some (Service.Fail_compile "boom")));
  ignore (Service.handle_batch service [ compile_req "w1" (circuit_no 1) ]);
  Alcotest.(check bool) "breaker open" true
    (Breaker.state (Service.breaker_for service "example6q") = Breaker.Open);
  match Service.handle_batch service [ compile_req "w2" (circuit_no 0) ] with
  | [ r ] ->
    Alcotest.(check bool) "hit served through open breaker" true
      (Json.find_str "status" r = Ok "ok" && Json.member "cached" r = Some (Json.Bool true))
  | _ -> Alcotest.fail "expected one response"

(* ---- journal: record codec rejects damage ---- *)

let with_persistent_service ?(checkpoint_every = 1000) ~tag k =
  let cache_file = tmp (Printf.sprintf "qcx_chaos_%s_%d.json" tag (Unix.getpid ())) in
  let journal_file = cache_file ^ ".journal" in
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ cache_file; journal_file ];
  let config = { Service.default_config with Service.checkpoint_every } in
  let service = example_service ~config () in
  (match Service.enable_persistence service ~cache_file ~fsync:false () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ cache_file; journal_file ])
    (fun () -> k service ~cache_file ~journal_file ~config)

let journal_codec_rejects_damage () =
  with_persistent_service ~tag:"codec" (fun service ~cache_file:_ ~journal_file:_ ~config:_ ->
      (match Service.compile service ~device:"example6q" (circuit_no 0) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      let key = List.hd (Cache.keys_newest_first (Service.cache service)) in
      let entry = Option.get (Cache.find (Service.cache service) key) in
      let line = Journal.line_of_record { Journal.key; entry } in
      (match Journal.record_of_line line with
      | Ok r ->
        Alcotest.(check string) "roundtrip preserves key" key r.Journal.key;
        Alcotest.(check string) "roundtrip preserves entry"
          (Json.to_string (Cache.entry_to_json entry))
          (Json.to_string (Cache.entry_to_json r.Journal.entry))
      | Error e -> Alcotest.fail e);
      (* Any single flipped byte fails the crc. *)
      List.iter
        (fun i ->
          let s = Bytes.of_string line in
          Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor 1));
          match Journal.record_of_line (Bytes.to_string s) with
          | Ok _ -> Alcotest.failf "bit flip at %d went undetected" i
          | Error _ -> ())
        [ 0; String.length line / 3; String.length line / 2; String.length line - 1 ])

(* ---- journal: replay of a torn file is the longest valid prefix ---- *)

let journal_torn_replay () =
  with_persistent_service ~tag:"torn" (fun service ~cache_file:_ ~journal_file ~config:_ ->
      List.iter
        (fun i ->
          match Service.compile service ~device:"example6q" (circuit_no i) with
          | Ok _ -> ()
          | Error e -> Alcotest.fail e)
        [ 0; 1; 2 ];
      let full = Journal.replay ~path:journal_file in
      Alcotest.(check int) "three records journaled" 3 (List.length full.Journal.records);
      Alcotest.(check bool) "full replay is clean" false full.Journal.torn;
      let bytes =
        let ic = open_in_bin journal_file in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      let len = String.length bytes in
      let line_of r = Journal.line_of_record r in
      let full_lines = List.map line_of full.Journal.records in
      (* Truncate at a spread of offsets, including every record
         boundary: replay never raises and yields a clean prefix. *)
      let offsets =
        List.sort_uniq compare
          (0 :: len
          :: List.concat_map (fun k -> [ k * len / 17; (k * len / 17) + 1 ]) (List.init 17 Fun.id)
          )
      in
      List.iter
        (fun off ->
          let off = min off len in
          let path = tmp (Printf.sprintf "qcx_chaos_torn_%d_%d.journal" (Unix.getpid ()) off) in
          let oc = open_out_bin path in
          output_string oc (String.sub bytes 0 off);
          close_out oc;
          let r = Journal.replay ~path in
          Sys.remove path;
          let got = List.map line_of r.Journal.records in
          let want = List.filteri (fun i _ -> i < List.length got) full_lines in
          Alcotest.(check (list string))
            (Printf.sprintf "offset %d replays a valid prefix" off)
            want got;
          if off = len then
            Alcotest.(check int) "full offset replays everything" 3 r.Journal.read)
        offsets)

(* ---- journal: checkpoint compaction and crash-consistent recover ---- *)

let checkpoint_compaction () =
  with_persistent_service ~tag:"ckpt" ~checkpoint_every:2
    (fun service ~cache_file ~journal_file ~config ->
      List.iter
        (fun i -> ignore (Service.compile service ~device:"example6q" (circuit_no i)))
        [ 0; 1; 2 ];
      (* Two inserts triggered a checkpoint; the third is journaled. *)
      let replay = Journal.replay ~path:journal_file in
      Alcotest.(check int) "journal holds only post-checkpoint records" 1
        (List.length replay.Journal.records);
      Alcotest.(check bool) "snapshot exists" true (Sys.file_exists cache_file);
      let service2 = example_service ~config () in
      (match Service.recover service2 ~cache_file ~fsync:false () with
      | Ok r ->
        Alcotest.(check int) "snapshot entries" 2 r.Service.snapshot_entries;
        Alcotest.(check int) "journal entries" 1 r.Service.journal_entries;
        Alcotest.(check bool) "no torn tail" false r.Service.torn
      | Error e -> Alcotest.fail e);
      (* Recovery itself checkpointed: the journal is compacted... *)
      Alcotest.(check int) "journal truncated after recover" 0
        (List.length (Journal.replay ~path:journal_file).Journal.records);
      (* ...and every entry is bit-identical to the original cache's. *)
      List.iter
        (fun key ->
          let original = Option.get (Cache.find (Service.cache service) key) in
          match Cache.find (Service.cache service2) key with
          | None -> Alcotest.failf "recovered cache lost %s" key
          | Some entry ->
            Alcotest.(check string) "entry identical"
              (Json.to_string (Cache.entry_to_json original))
              (Json.to_string (Cache.entry_to_json entry)))
        (Cache.keys_newest_first (Service.cache service)))

let recover_truncated_journal () =
  with_persistent_service ~tag:"recover" (fun service ~cache_file ~journal_file ~config ->
      List.iter
        (fun i -> ignore (Service.compile service ~device:"example6q" (circuit_no i)))
        [ 0; 1; 2 ];
      (* kill -9 mid-append: cut the journal mid-record. *)
      let len =
        let ic = open_in_bin journal_file in
        let n = in_channel_length ic in
        close_in ic;
        n
      in
      let fd = Unix.openfile journal_file [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd (len - 7);
      Unix.close fd;
      let service2 = example_service ~config () in
      match Service.recover service2 ~cache_file ~fsync:false () with
      | Ok r ->
        Alcotest.(check bool) "torn tail detected" true r.Service.torn;
        Alcotest.(check int) "valid prefix replayed" 2 r.Service.journal_entries;
        List.iter
          (fun key ->
            let original = Option.get (Cache.find (Service.cache service) key) in
            match Cache.find (Service.cache service2) key with
            | None -> Alcotest.failf "recovered cache lost %s" key
            | Some entry ->
              Alcotest.(check string) "recovered entry identical"
                (Json.to_string (Cache.entry_to_json original))
                (Json.to_string (Cache.entry_to_json entry)))
          (Cache.keys_newest_first (Service.cache service2))
      | Error e -> Alcotest.fail e)

(* ---- journal: a full disk degrades durability, not availability ---- *)

let journal_full_disk_degrades () =
  with_persistent_service ~tag:"full" (fun service ~cache_file:_ ~journal_file:_ ~config:_ ->
      let journal = Option.get (Service.persistence_journal service) in
      Journal.set_fault journal (Some (fun ~nth:_ -> true));
      (match Service.handle_batch service [ compile_req "f0" (circuit_no 0) ] with
      | [ r ] ->
        Alcotest.(check bool) "compile still serves" true (Json.find_str "status" r = Ok "ok")
      | _ -> Alcotest.fail "expected one response");
      Alcotest.(check bool) "failed appends counted" true (Journal.failed_appends journal >= 1);
      let stats = Service.stats_json service in
      match Json.member "journal" stats with
      | Some j ->
        Alcotest.(check bool) "degradation surfaced in stats" true
          (match Json.member "failed_appends" j with
          | Some (Json.Number n) -> n >= 1.0
          | _ -> false)
      | None -> Alcotest.fail "stats carry no journal block")

(* ---- registry: a bump over corrupt snapshots keeps the epoch ---- *)

let bump_over_corrupt_snapshot () =
  let device = Core.Presets.example_6q () in
  let snapshot = tmp (Printf.sprintf "qcx_chaos_bump_%d.xtalk.json" (Unix.getpid ())) in
  let xtalk = Crosstalk.set Crosstalk.empty ~target:(0, 1) ~spectator:(2, 3) 0.12 in
  (match Store.save_crosstalk ~path:snapshot xtalk with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists snapshot then Sys.remove snapshot)
    (fun () ->
      let registry = Registry.create () in
      let entry =
        Registry.add_from_paths registry ~id:"example6q" ~device ~paths:[ snapshot ]
      in
      let epoch0 = entry.Registry.epoch in
      let service = Service.create registry in
      (match Service.handle_batch service [ compile_req "r0" (circuit_no 0) ] with
      | [ r ] -> Alcotest.(check bool) "warm compile" true (Json.find_str "status" r = Ok "ok")
      | _ -> Alcotest.fail "expected one response");
      (* The characterizer crashes mid-write: the snapshot is garbage. *)
      let oc = open_out snapshot in
      output_string oc "{\"format\": \"qcx-crosstalk\", \"entries\": [[0.3";
      close_out oc;
      (match Service.handle service (Wire.Bump { id = "b0"; device = "example6q" }) with
      | doc ->
        Alcotest.(check bool) "bump is typed ok" true (Json.find_str "status" doc = Ok "ok");
        Alcotest.(check bool) "bump reports the degradation" true
          (Json.member "warning" doc <> None);
        Alcotest.(check bool) "epoch did not advance" true
          (Json.find_str "epoch" doc = Ok epoch0));
      Alcotest.(check string) "registry kept the old epoch" epoch0
        (Option.get (Registry.find registry "example6q")).Registry.epoch;
      (* Cached schedules stay addressable and valid. *)
      match Service.handle_batch service [ compile_req "r1" (circuit_no 0) ] with
      | [ r ] ->
        Alcotest.(check bool) "cache still hits under the kept epoch" true
          (Json.find_str "status" r = Ok "ok" && Json.member "cached" r = Some (Json.Bool true))
      | _ -> Alcotest.fail "expected one response")

(* ---- server: SIGTERM-style drain stops the accept loop ---- *)

let socket_drain () =
  let path = tmp (Printf.sprintf "qcx_chaos_drain_%d.sock" (Unix.getpid ())) in
  if Sys.file_exists path then Sys.remove path;
  let service = example_service () in
  let stop = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        try
          Server.serve_socket service ~path ~stop:(fun () -> Atomic.get stop);
          true
        with _ -> false)
  in
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let rec connect tries =
        match Unix.connect sock (Unix.ADDR_UNIX path) with
        | () -> ()
        | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when tries > 0
          ->
          Unix.sleepf 0.05;
          connect (tries - 1)
      in
      connect 100;
      Unix.setsockopt_float sock Unix.SO_RCVTIMEO 10.0;
      let msg = {|{"op":"ping","id":"p1"}|} ^ "\n" in
      ignore (Unix.write_substring sock msg 0 (String.length msg));
      let buf = Bytes.create 4096 in
      let n = Unix.read sock buf 0 (Bytes.length buf) in
      Alcotest.(check bool) "served before the drain" true
        (String.length (Bytes.sub_string buf 0 n) > 0);
      Unix.close sock;
      (* Flip the drain flag with no shutdown request in flight: the
         accept loop must notice on its tick and return. *)
      Atomic.set stop true;
      let clean = Domain.join server in
      Alcotest.(check bool) "accept loop drained cleanly" true clean;
      Alcotest.(check bool) "socket file removed" false (Sys.file_exists path))

let suite =
  [
    ( "chaos.wire",
      [
        QCheck_alcotest.to_alcotest prop_fuzz_random_bytes;
        QCheck_alcotest.to_alcotest prop_fuzz_mutated_frames;
        Alcotest.test_case "frame too large" `Quick frame_too_large;
        Alcotest.test_case "health op" `Quick health_op;
      ] );
    ( "chaos.deadline",
      [ Alcotest.test_case "stalled compile is typed" `Quick deadline_exceeded ] );
    ( "chaos.breaker",
      [
        Alcotest.test_case "state machine" `Quick breaker_state_machine;
        Alcotest.test_case "trip and recover" `Quick breaker_trip_and_recover;
        Alcotest.test_case "open breaker serves hits" `Quick breaker_serves_cache_hits;
      ] );
    ( "chaos.journal",
      [
        Alcotest.test_case "codec rejects damage" `Quick journal_codec_rejects_damage;
        Alcotest.test_case "torn replay is a valid prefix" `Quick journal_torn_replay;
        Alcotest.test_case "checkpoint compaction" `Quick checkpoint_compaction;
        Alcotest.test_case "recover truncated journal" `Quick recover_truncated_journal;
        Alcotest.test_case "full disk degrades gracefully" `Quick journal_full_disk_degrades;
      ] );
    ( "chaos.registry",
      [ Alcotest.test_case "bump over corrupt snapshot" `Quick bump_over_corrupt_snapshot ] );
    ( "chaos.server", [ Alcotest.test_case "drain stops accept loop" `Quick socket_drain ] );
  ]
