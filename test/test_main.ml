(* Aggregates every suite; `dune runtest` runs them all. *)
let () =
  Alcotest.run "crosstalk-mitigation"
    (Test_util.suite
    @ Test_linalg.suite
    @ Test_circuit.suite
    @ Test_device.suite
    @ Test_sim.suite
    @ Test_noise.suite
    @ Test_density.suite
    @ Test_persist.suite
    @ Test_smt.suite
    @ Test_characterization.suite
    @ Test_scheduler.suite
    @ Test_window.suite
    @ Test_benchmarks.suite
    @ Test_metrics.suite
    @ Test_extensions.suite
    @ Test_faults.suite
    @ Test_serve.suite
    @ Test_chaos.suite
    @ Test_fleet.suite
    @ Test_calibration.suite
    @ Test_mitigation.suite
    @ Test_integration.suite
    @ Test_smoke.suite)
