(* Tests for the sharded serve tier (DESIGN.md section 14): the
   consistent-hash ring's remap properties, peer replication of the
   journal stream, kill/rebuild fidelity through the in-process fleet,
   router failover, the typed overload shed, and the durability /
   health hooks the fleet hangs off the single-node service. *)

module Ring = Core.Ring
module Replica = Core.Replica
module Journal = Core.Journal
module Cache = Core.Cache
module Shard = Core.Shard
module Fleet = Core.Fleet
module Service = Core.Service
module Server = Core.Server
module Registry = Core.Registry
module Wire = Core.Wire
module Json = Core.Json
module Store = Core.Store
module Circuit = Core.Circuit
module Device = Core.Device

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let fresh_dir name =
  let path = tmp (Printf.sprintf "%s_%d" name (Unix.getpid ())) in
  let rec rm_rf p =
    match Unix.lstat p with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
      (try Unix.rmdir p with Unix.Unix_error _ -> ())
    | _ -> ( try Sys.remove p with Sys_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  rm_rf path;
  path

(* ---- ring properties ---- *)

let prop_key_maps_to_one_live_shard =
  let gen =
    QCheck.Gen.(
      triple (string_size ~gen:printable (int_range 1 40)) (int_range 1 8) (int_range 0 255))
  in
  QCheck.Test.make ~name:"every key maps to exactly one live shard" ~count:500
    (QCheck.make gen) (fun (key, nshards, dead_mask) ->
      let ring = Ring.create ~nshards () in
      let live s = dead_mask land (1 lsl s) = 0 in
      let any_live = List.exists live (List.init nshards Fun.id) in
      match Ring.lookup ring ~live key with
      | Some s -> live s && s >= 0 && s < nshards
      | None -> not any_live)

let prop_removal_remaps_only_victim_arc =
  let gen =
    QCheck.Gen.(
      triple (string_size ~gen:printable (int_range 1 40)) (int_range 2 8) (int_range 0 7))
  in
  QCheck.Test.make ~name:"removing a shard only remaps its own arc" ~count:500
    (QCheck.make gen) (fun (key, nshards, v) ->
      let victim = v mod nshards in
      let ring = Ring.create ~nshards () in
      let owner = Ring.owner ring key in
      let without = Ring.lookup ring ~live:(fun s -> s <> victim) key in
      if owner <> victim then
        (* keys not on the victim's arc must not move *)
        without = Some owner
      else
        (* the victim's keys move somewhere live *)
        match without with Some s -> s <> victim | None -> false)

let prop_readd_restores_ownership =
  let gen =
    QCheck.Gen.(pair (string_size ~gen:printable (int_range 1 40)) (int_range 1 8))
  in
  QCheck.Test.make ~name:"re-adding a shard restores exact ownership" ~count:500
    (QCheck.make gen) (fun (key, nshards) ->
      let ring = Ring.create ~nshards () in
      (* every router instance derives the identical ring *)
      Ring.points ring = Ring.points (Ring.create ~nshards ())
      && Ring.lookup ring ~live:(fun _ -> true) key = Some (Ring.owner ring key))

(* ---- replica stream ---- *)

let example_service ?(config = Service.default_config) () =
  let device = Core.Presets.example_6q () in
  let registry = Registry.create () in
  ignore
    (Registry.add_static registry ~id:"example6q" ~device
       ~xtalk:(Device.ground_truth device));
  Service.create ~config registry

let bell ~order nq =
  let c = Circuit.create nq in
  let c = Circuit.h c 0 in
  let c = Circuit.cnot c ~control:0 ~target:1 in
  List.fold_left Circuit.measure c order

let sample_records n =
  let service = example_service () in
  List.init n (fun i ->
      let circuit = bell ~order:[ i mod 6 ] 6 in
      match Service.compile service ~device:"example6q" circuit with
      | Ok o ->
        {
          Journal.key = o.Service.key;
          entry = { Cache.schedule = o.Service.schedule; stats = o.Service.stats; epoch = o.Service.epoch };
        }
      | Error e -> Alcotest.fail e)

let replica_roundtrip_and_continuation () =
  let path = fresh_dir "qcx_test_replica" ^ ".ndjson" in
  if Sys.file_exists path then Sys.remove path;
  let records = sample_records 4 in
  let first, rest =
    match records with a :: b :: c :: d :: _ -> ([ a; b; c ], d) | _ -> assert false
  in
  (match Replica.open_sender ~path ~shard:0 () with
  | Error e -> Alcotest.fail e
  | Ok sender ->
    List.iter (Replica.append sender) first;
    (match Replica.flush sender with Ok _ -> () | Error e -> Alcotest.fail e);
    Alcotest.(check (pair int int)) "no lag after flush" (0, 0) (Replica.lag sender);
    Replica.close sender);
  let r = Replica.replay ~path ~shard:0 in
  Alcotest.(check int) "three records replayed" 3 (List.length r.Replica.records);
  Alcotest.(check bool) "not torn" false r.Replica.torn;
  Alcotest.(check (list int)) "sequence 0..2" [ 0; 1; 2 ]
    (List.map fst r.Replica.records);
  (* a reopened sender continues the stream, it does not restart it *)
  (match Replica.open_sender ~path ~shard:0 () with
  | Error e -> Alcotest.fail e
  | Ok sender ->
    Replica.append sender rest;
    (match Replica.flush sender with Ok _ -> () | Error e -> Alcotest.fail e);
    Replica.close sender);
  let r = Replica.replay ~path ~shard:0 in
  Alcotest.(check (list int)) "sequence continues 0..3" [ 0; 1; 2; 3 ]
    (List.map fst r.Replica.records);
  (* a replica file cannot be replayed into the wrong shard *)
  let wrong = Replica.replay ~path ~shard:1 in
  Alcotest.(check int) "wrong shard tag replays nothing" 0
    (List.length wrong.Replica.records);
  Sys.remove path

let replica_torn_tail () =
  let path = fresh_dir "qcx_test_replica_torn" ^ ".ndjson" in
  if Sys.file_exists path then Sys.remove path;
  let records = sample_records 3 in
  (match Replica.open_sender ~path ~shard:2 () with
  | Error e -> Alcotest.fail e
  | Ok sender ->
    List.iter (Replica.append sender) records;
    (match Replica.flush sender with Ok _ -> () | Error e -> Alcotest.fail e);
    Replica.close sender);
  let intact = Replica.replay ~path ~shard:2 in
  (* tear the last record in half *)
  let tear = intact.Replica.valid_bytes - 7 in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd tear;
  Unix.close fd;
  let torn = Replica.replay ~path ~shard:2 in
  Alcotest.(check bool) "torn tail detected" true torn.Replica.torn;
  Alcotest.(check int) "valid prefix survives" 2 (List.length torn.Replica.records);
  (* reopening truncates back to the valid prefix and continues after it *)
  (match Replica.open_sender ~path ~shard:2 () with
  | Error e -> Alcotest.fail e
  | Ok sender ->
    Replica.append sender (List.hd records);
    (match Replica.flush sender with Ok _ -> () | Error e -> Alcotest.fail e);
    Replica.close sender);
  let healed = Replica.replay ~path ~shard:2 in
  Alcotest.(check bool) "healed tail is valid" false healed.Replica.torn;
  Alcotest.(check (list int)) "sequence 0,1,2 after heal" [ 0; 1; 2 ]
    (List.map fst healed.Replica.records);
  Sys.remove path

let replica_partition_lag_heals () =
  let path = fresh_dir "qcx_test_replica_part" ^ ".ndjson" in
  if Sys.file_exists path then Sys.remove path;
  let records = sample_records 3 in
  (match Replica.open_sender ~path ~shard:0 () with
  | Error e -> Alcotest.fail e
  | Ok sender ->
    (* the first two flush attempts hit a partitioned peer *)
    Replica.set_fault sender (Some (fun ~nth -> if nth < 2 then Some Replica.Partition else None));
    Replica.append sender (List.nth records 0);
    Alcotest.(check bool) "partition leaves lag" true (fst (Replica.lag sender) > 0);
    Replica.append sender (List.nth records 1);
    Alcotest.(check int) "lag accrues" 2 (fst (Replica.lag sender));
    Alcotest.(check bool) "failed flushes counted" true (Replica.failed_flushes sender >= 2);
    (* the partition heals: the next append drains the whole backlog *)
    Replica.append sender (List.nth records 2);
    Alcotest.(check (pair int int)) "healed partition drains lag" (0, 0) (Replica.lag sender);
    Alcotest.(check int) "all three acked" 3 (Replica.acked sender);
    Replica.close sender);
  let r = Replica.replay ~path ~shard:0 in
  Alcotest.(check (list int)) "all records on disk in order" [ 0; 1; 2 ]
    (List.map fst r.Replica.records);
  Sys.remove path

(* ---- fleet kill / rebuild ---- *)

let fleet_config = { Service.default_config with Service.cache_capacity = 64 }

let make_registry () =
  let device = Core.Presets.example_6q () in
  let registry = Registry.create () in
  ignore
    (Registry.add_static registry ~id:"example6q" ~device
       ~xtalk:(Device.ground_truth device));
  registry

let compile_line i =
  Json.to_string ~indent:false
    (Wire.request_to_json
       (Wire.Compile
          {
            id = Printf.sprintf "t%d" i;
            device = "example6q";
            circuit = bell ~order:[ i mod 6; (i + 1) mod 6 ] 6;
            params = Wire.default_params;
          }))

let fleet_rebuild_is_bit_identical () =
  let root = fresh_dir "qcx_test_fleet_rebuild" in
  match Fleet.create ~service_config:fleet_config ~root ~nshards:2 ~make_registry () with
  | Error e -> Alcotest.fail e
  | Ok fleet ->
    let lines = List.init 8 compile_line in
    let out, _ = Fleet.handle_lines fleet lines in
    Alcotest.(check int) "all compiles answered" 8 (List.length out);
    List.iter
      (fun line ->
        match Json.of_string line with
        | Ok doc -> Alcotest.(check bool) "ok" true (Json.find_str "status" doc = Ok "ok")
        | Error e -> Alcotest.fail e)
      out;
    let reference =
      match Fleet.kill fleet ~shard:0 with Ok r -> r | Error e -> Alcotest.fail e
    in
    Alcotest.(check int) "one shard left" 1 (Fleet.alive fleet);
    let boot =
      match Fleet.restart fleet ~shard:0 with Ok b -> b | Error e -> Alcotest.fail e
    in
    Alcotest.(check bool) "rebuild came from the peer replica" true
      (boot.Shard.rebuilt_from_replica > 0);
    let rebuilt =
      match Fleet.canonical_state fleet ~shard:0 with
      | Ok s -> s
      | Error e -> Alcotest.fail e
    in
    Alcotest.(check string) "rebuild is bit-identical to the lost state" reference rebuilt;
    Fleet.close fleet

let fleet_router_failover () =
  let root = fresh_dir "qcx_test_fleet_failover" in
  match Fleet.create ~service_config:fleet_config ~root ~nshards:3 ~make_registry () with
  | Error e -> Alcotest.fail e
  | Ok fleet ->
    let lines = List.init 6 compile_line in
    let before, _ = Fleet.handle_lines fleet lines in
    let schedules lines =
      List.filter_map
        (fun line ->
          match Json.of_string line with
          | Ok doc ->
            Some
              ( Result.value ~default:"" (Json.find_str "id" doc),
                Result.value ~default:"" (Json.find_str "key" doc),
                Option.map (Json.to_string ~indent:false) (Json.member "schedule" doc) )
          | Error _ -> None)
        lines
    in
    ignore (Fleet.kill fleet ~shard:1 : (string, string) result);
    (* every request still answers, bit-identically, during failover *)
    let after, _ = Fleet.handle_lines fleet lines in
    Alcotest.(check bool) "failover answers are bit-identical" true
      (schedules before = schedules after);
    let health () =
      match Fleet.handle_lines fleet [ {|{"op":"health","id":"h"}|} ] with
      | [ line ], _ -> (
        match Json.of_string line with Ok doc -> doc | Error e -> Alcotest.fail e)
      | _ -> Alcotest.fail "no health response"
    in
    let shard_row doc k =
      match Option.bind (Json.member "health" doc) (Json.member "shards") with
      | Some (Json.Array rows) ->
        List.find
          (fun row -> Json.member "shard" row = Some (Json.Number (float_of_int k)))
          rows
      | _ -> Alcotest.fail "no shards in health"
    in
    let dead = shard_row (health ()) 1 in
    Alcotest.(check bool) "killed shard is unreachable" true
      (Json.member "reachable" dead = Some (Json.Bool false));
    (match Fleet.restart fleet ~shard:1 with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e);
    let back = shard_row (health ()) 1 in
    Alcotest.(check bool) "restarted shard is live again" true
      (Json.member "reachable" back = Some (Json.Bool true)
      && Json.find_str "state" back = Ok "live");
    (* the failover was recorded on the router *)
    (match Option.bind (Json.member "health" (health ())) (Json.member "router") with
    | Some r ->
      (match Json.member "failovers" r with
      | Some (Json.Number n) -> Alcotest.(check bool) "failovers >= 1" true (n >= 1.0)
      | _ -> Alcotest.fail "no failover counter");
      Alcotest.(check bool) "last failover timestamped" true
        (match Json.member "last_failover_at" r with
        | Some (Json.Number _) -> true
        | _ -> false)
    | None -> Alcotest.fail "no router health");
    Fleet.close fleet

let fleet_all_dead_is_unavailable () =
  let root = fresh_dir "qcx_test_fleet_dead" in
  match Fleet.create ~service_config:fleet_config ~root ~nshards:2 ~make_registry () with
  | Error e -> Alcotest.fail e
  | Ok fleet ->
    ignore (Fleet.kill fleet ~shard:0 : (string, string) result);
    ignore (Fleet.kill fleet ~shard:1 : (string, string) result);
    let out, _ = Fleet.handle_lines fleet [ compile_line 0 ] in
    (match out with
    | [ line ] -> (
      match Json.of_string line with
      | Ok doc ->
        Alcotest.(check bool) "typed unavailable" true
          (Json.find_str "status" doc = Ok "unavailable")
      | Error e -> Alcotest.fail e)
    | _ -> Alcotest.fail "expected one response");
    Fleet.close fleet

(* ---- typed overload shed ---- *)

let server_sheds_over_bound () =
  let path = tmp (Printf.sprintf "qcx_test_shed_%d.sock" (Unix.getpid ())) in
  if Sys.file_exists path then Sys.remove path;
  let gate = Atomic.make false in
  let t0 = Unix.gettimeofday () in
  let handle frames =
    while not (Atomic.get gate) do
      Unix.sleepf 0.01
    done;
    let stop = ref false in
    let resps =
      List.filter_map
        (function
          | Server.Line l ->
            if l = "shutdown" then stop := true;
            Some ("ok:" ^ l)
          | Server.Oversize -> Some "oversize")
        frames
    in
    (resps, !stop)
  in
  let server =
    Domain.spawn (fun () ->
        try
          Server.serve_socket_with ~max_pending:0
            ~stop:(fun () -> Unix.gettimeofday () -. t0 > 30.0)
            ~handle ~path ()
        with _ -> ())
  in
  let connect () =
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let rec go tries =
      match Unix.connect sock (Unix.ADDR_UNIX path) with
      | () -> ()
      | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when tries > 0
        ->
        Unix.sleepf 0.05;
        go (tries - 1)
    in
    go 100;
    Unix.setsockopt_float sock Unix.SO_RCVTIMEO 15.0;
    sock
  in
  let send sock s = ignore (Unix.write_substring sock s 0 (String.length s)) in
  let read_line sock =
    let buf = Bytes.create 1 in
    let b = Buffer.create 64 in
    let rec go () =
      match Unix.read sock buf 0 1 with
      | 0 -> Buffer.contents b
      | _ ->
        if Bytes.get buf 0 = '\n' then Buffer.contents b
        else begin
          Buffer.add_char b (Bytes.get buf 0);
          go ()
        end
    in
    go ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set gate true;
      Domain.join server;
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (* c1 occupies the (single) serve slot while the gate is shut;
         c2 and c3 pile up behind it.  With max_pending = 0 exactly one
         of them is admitted and the other is shed with a typed
         overloaded response. *)
      let c1 = connect () in
      send c1 "ping\n";
      let c2 = connect () in
      send c2 "shutdown\n";
      let c3 = connect () in
      send c3 "shutdown\n";
      Unix.sleepf 0.3;
      Atomic.set gate true;
      Alcotest.(check string) "first client is served" "ok:ping" (read_line c1);
      Unix.close c1;
      let r2 = read_line c2 in
      let r3 = read_line c3 in
      let is_shed r =
        match Json.of_string r with
        | Ok doc -> Json.find_str "status" doc = Ok "overloaded"
        | Error _ -> false
      in
      let served r = r = "ok:shutdown" in
      Alcotest.(check bool) "one served, one shed with a typed overloaded" true
        ((served r2 && is_shed r3) || (served r3 && is_shed r2));
      Unix.close c2;
      Unix.close c3)

(* ---- durability + health hooks ---- *)

let store_fsync_dir_roundtrip () =
  let dir = fresh_dir "qcx_test_store_fsync" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "doc.json" in
  let doc = Json.Object [ ("x", Json.Number 1.0) ] in
  (match Store.save ~path doc with Ok () -> () | Error e -> Alcotest.fail e);
  (* must not raise, including on plain directories *)
  Store.fsync_dir dir;
  Store.fsync_dir (Filename.concat dir "no-such-subdir");
  match Store.load ~path with
  | Ok loaded -> Alcotest.(check bool) "roundtrip" true (loaded = doc)
  | Error e -> Alcotest.fail e

let service_hooks_fire () =
  let service = example_service () in
  let inserted = ref [] in
  Service.set_on_insert service (Some (fun key _ -> inserted := key :: !inserted));
  Service.set_extra_health service (Some (fun () -> [ ("marker", Json.Bool true) ]));
  let o =
    match Service.compile service ~device:"example6q" (bell ~order:[ 0 ] 6) with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check (list string)) "on_insert saw the cold compile" [ o.Service.key ]
    !inserted;
  (* a cache hit must not re-fire the insert hook (no re-replication) *)
  (match Service.compile service ~device:"example6q" (bell ~order:[ 0 ] 6) with
  | Ok o2 -> Alcotest.(check bool) "second compile is a hit" true o2.Service.cached
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "hook fired once" 1 (List.length !inserted);
  let health, _ = Server.handle_lines service [ {|{"op":"health","id":"h"}|} ] in
  match health with
  | [ line ] -> (
    match Json.of_string line with
    | Ok doc ->
      Alcotest.(check bool) "extra health fields surface" true
        (Option.bind (Json.member "health" doc) (Json.member "marker")
        = Some (Json.Bool true))
    | Error e -> Alcotest.fail e)
  | _ -> Alcotest.fail "no health response"

let suite =
  [
    ( "fleet.ring",
      [
        QCheck_alcotest.to_alcotest prop_key_maps_to_one_live_shard;
        QCheck_alcotest.to_alcotest prop_removal_remaps_only_victim_arc;
        QCheck_alcotest.to_alcotest prop_readd_restores_ownership;
      ] );
    ( "fleet.replica",
      [
        Alcotest.test_case "roundtrip and continuation" `Quick
          replica_roundtrip_and_continuation;
        Alcotest.test_case "torn tail" `Quick replica_torn_tail;
        Alcotest.test_case "partition lag heals" `Quick replica_partition_lag_heals;
      ] );
    ( "fleet.rebuild",
      [
        Alcotest.test_case "peer rebuild is bit-identical" `Quick
          fleet_rebuild_is_bit_identical;
      ] );
    ( "fleet.router",
      [
        Alcotest.test_case "failover" `Quick fleet_router_failover;
        Alcotest.test_case "all shards dead" `Quick fleet_all_dead_is_unavailable;
      ] );
    ( "fleet.server",
      [ Alcotest.test_case "typed overload shed" `Quick server_sheds_over_bound ] );
    ( "fleet.hooks",
      [
        Alcotest.test_case "store fsync dir" `Quick store_fsync_dir_roundtrip;
        Alcotest.test_case "service hooks" `Quick service_hooks_fire;
      ] );
  ]
