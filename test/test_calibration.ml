(* Tests for the self-healing calibration data plane (DESIGN.md
   section 12): Opt-3 incremental re-characterization, the registry's
   rollback ring, purge-on-bump cache hygiene, the canary gate, crash
   consistency across the ring-pointer commit, and the health op's
   staleness/warning surfacing. *)

module Registry = Core.Registry
module Calibrator = Core.Calibrator
module Service = Core.Service
module Cache = Core.Cache
module Wire = Core.Wire
module Json = Core.Json
module Policy = Core.Policy
module Crosstalk = Core.Crosstalk
module Device = Core.Device
module Store = Core.Store
module Circuit = Core.Circuit

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name
let device () = Core.Presets.example_6q ()
let xbytes x = Json.to_string (Store.crosstalk_to_json x)

let fresh_dir name =
  let d = tmp name in
  if Sys.file_exists d then
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d)
  else Sys.mkdir d 0o755;
  d

let test_circuit device i =
  let topo = Device.topology device in
  let edges = Array.of_list (Core.Topology.edges topo) in
  let a, b = edges.(i mod Array.length edges) in
  let c = Circuit.create (Device.nqubits device) in
  let c = Circuit.h c a in
  let c = Circuit.cnot c ~control:a ~target:b in
  Circuit.measure_all c

(* Crosstalk data that differs from [x] on every rate — a cheap way to
   mint distinct epochs for ring tests. *)
let scaled factor x =
  let entries = Crosstalk.entries x in
  List.fold_left
    (fun acc (t, s, r) -> Crosstalk.set acc ~target:t ~spectator:s (min 0.6 (r *. factor)))
    Crosstalk.empty entries

(* ---- Opt-3 incremental characterization ---- *)

let incremental_flagged_only () =
  let device = device () in
  (* seed the snapshot with one benign rate on a pair disjoint from the
     real crosstalk — its ratio is far below the flagging threshold, so
     Opt-3 must leave it alone and the merge must carry it through *)
  let benign = 1.2 *. Device.cnot_error device (0, 4) in
  let previous =
    Crosstalk.set (Device.ground_truth device) ~target:(0, 4) ~spectator:(3, 5)
      benign
  in
  let rng = Core.Rng.create 11 in
  let inc = Policy.characterize_incremental ~rng device ~previous in
  Alcotest.(check string) "flagged-only mode" "flagged-only"
    (Policy.incremental_mode_name inc.Policy.mode);
  Alcotest.(check bool) "at least one pair flagged" true (inc.Policy.flagged <> []);
  Alcotest.(check bool)
    (Printf.sprintf "cost fraction %.3f under 0.25" inc.Policy.cost_fraction)
    true
    (inc.Policy.cost_fraction < 0.25);
  Alcotest.(check int) "merge keeps every rate"
    (List.length (Crosstalk.entries previous))
    (List.length (Crosstalk.entries inc.Policy.merged));
  (* rates the incremental pass did not re-measure survive the merge
     byte for byte *)
  let remeasured = Crosstalk.entries inc.Policy.resilient.Policy.outcome.Policy.xtalk in
  let untouched =
    List.filter
      (fun (t, s, _) ->
        not (List.exists (fun (t', s', _) -> t = t' && s = s') remeasured))
      (Crosstalk.entries previous)
  in
  Alcotest.(check bool) "some rates were not re-measured" true (untouched <> []);
  List.iter
    (fun (t, s, r) ->
      match Crosstalk.conditional inc.Policy.merged ~target:t ~spectator:s with
      | Some r' -> Alcotest.(check (float 1e-12)) "unmeasured rate unchanged" r r'
      | None -> Alcotest.fail "unmeasured rate dropped by the merge")
    untouched

let incremental_full_fallback () =
  let device = device () in
  let rng = Core.Rng.create 12 in
  (* empty previous flags nothing -> full pass *)
  let inc = Policy.characterize_incremental ~rng device ~previous:Crosstalk.empty in
  Alcotest.(check string) "full-fallback mode" "full-fallback"
    (Policy.incremental_mode_name inc.Policy.mode);
  Alcotest.(check (float 1e-9)) "full cost" 1.0 inc.Policy.cost_fraction;
  Alcotest.(check bool) "fallback measures rates" true
    (Crosstalk.entries inc.Policy.merged <> [])

(* ---- the registry's rollback ring ---- *)

let registry_ring_rollback () =
  let device = device () in
  let a = Device.ground_truth device in
  let b = scaled 1.5 a in
  let c = scaled 2.0 a in
  let reg = Registry.create () in
  let e0 = Registry.add_static reg ~id:"dev" ~device ~xtalk:a in
  let eb = Result.get_ok (Registry.promote ~day:3 reg ~id:"dev" b) in
  let ec = Result.get_ok (Registry.promote ~day:5 reg ~id:"dev" c) in
  Alcotest.(check int) "ring depth" 2 (List.length ec.Registry.ring);
  Alcotest.(check (option int)) "promoted day" (Some 5) ec.Registry.promoted_day;
  let r1 = Result.get_ok (Registry.rollback ~day:6 reg ~id:"dev") in
  Alcotest.(check string) "rollback restores previous epoch" eb.Registry.epoch
    r1.Registry.epoch;
  Alcotest.(check string) "restored data is bit-identical" (xbytes b)
    (xbytes r1.Registry.xtalk);
  let r2 = Result.get_ok (Registry.rollback reg ~id:"dev") in
  Alcotest.(check string) "second rollback reaches the original" e0.Registry.epoch
    r2.Registry.epoch;
  Alcotest.(check string) "original data is bit-identical" (xbytes a)
    (xbytes r2.Registry.xtalk);
  Alcotest.(check bool) "empty ring refuses" true
    (Result.is_error (Registry.rollback reg ~id:"dev"));
  (* promoting identical data never pushes a self-copy *)
  let same = Result.get_ok (Registry.promote ~day:9 reg ~id:"dev" a) in
  Alcotest.(check int) "no self-copy on the ring" 0 (List.length same.Registry.ring);
  Alcotest.(check (option int)) "but the day advances" (Some 9) same.Registry.promoted_day

let registry_ring_bounded () =
  let device = device () in
  let a = Device.ground_truth device in
  let reg = Registry.create () in
  ignore (Registry.add_static reg ~id:"dev" ~device ~xtalk:a);
  let last =
    List.fold_left
      (fun _ i ->
        Result.get_ok
          (Registry.promote reg ~id:"dev" (scaled (1.0 +. (0.11 *. float_of_int i)) a)))
      (Registry.find reg "dev" |> Option.get)
      [ 1; 2; 3; 4; 5; 6; 7 ]
  in
  Alcotest.(check int) "ring is bounded" Registry.ring_limit
    (List.length last.Registry.ring)

(* ---- purge-on-bump: cache entries die with their epoch ---- *)

let purge_on_epoch_change () =
  let device = device () in
  let reg = Registry.create () in
  ignore (Registry.add_static reg ~id:"dev" ~device ~xtalk:(Device.ground_truth device));
  let service = Service.create reg in
  (match Service.compile service ~device:"dev" (test_circuit device 0) with
  | Ok o -> Alcotest.(check bool) "cold compile" false o.Service.cached
  | Error e -> Alcotest.fail e);
  (match Service.compile service ~device:"dev" (test_circuit device 1) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "two entries cached" 2
    (Cache.counters (Service.cache service)).Cache.size;
  (* a legacy entry with an unknown epoch must survive any purge *)
  let legacy =
    match Cache.find (Service.cache service) (List.hd (Cache.keys_newest_first (Service.cache service))) with
    | Some e -> { e with Cache.epoch = "" }
    | None -> Alcotest.fail "cached entry vanished"
  in
  Cache.add (Service.cache service) "legacy-key" legacy;
  ignore
    (Result.get_ok
       (Registry.promote reg ~id:"dev" (scaled 1.7 (Device.ground_truth device))));
  let purged = Service.purge_stale service in
  Alcotest.(check int) "both stale entries purged" 2 purged;
  Alcotest.(check int) "legacy entry survives" 1
    (Cache.counters (Service.cache service)).Cache.size;
  Alcotest.(check int) "purges are counted" 2
    (Cache.counters (Service.cache service)).Cache.purged;
  (* recompile under the new epoch: a miss, then cached *)
  (match Service.compile service ~device:"dev" (test_circuit device 0) with
  | Ok o -> Alcotest.(check bool) "stale schedule not served" false o.Service.cached
  | Error e -> Alcotest.fail e);
  match Service.compile service ~device:"dev" (test_circuit device 0) with
  | Ok o -> Alcotest.(check bool) "fresh epoch caches again" true o.Service.cached
  | Error e -> Alcotest.fail e

(* ---- canary gate ---- *)

let canary_rejects_truncated_merge () =
  let device = device () in
  let reg = Registry.create () in
  let e0 = Registry.add_static reg ~id:"dev" ~device ~xtalk:(Device.ground_truth device) in
  let cal = Calibrator.create reg in
  match
    Calibrator.calibrate ~force:true
      ~extra_faults:[ Calibrator.Truncate_merge 0.85 ]
      cal ~id:"dev" ~day:2
  with
  | Error e -> Alcotest.fail e
  | Ok (Calibrator.Rejected { reason; _ }) ->
    Alcotest.(check string) "guard catches the torn merge" "truncated-merge-guard" reason;
    let e = Option.get (Registry.find reg "dev") in
    Alcotest.(check string) "incumbent epoch keeps serving" e0.Registry.epoch
      e.Registry.epoch
  | Ok a -> Alcotest.fail ("expected a rejection, got " ^ Calibrator.action_name a)

let canary_flake_never_strands_bad_epoch () =
  let device = device () in
  let reg = Registry.create () in
  ignore (Registry.add_static reg ~id:"dev" ~device ~xtalk:(Device.ground_truth device));
  let cal = Calibrator.create reg in
  (* A flaked verdict inverts the gate.  Whichever side the real
     verdict lands on, the registry must end the cycle on a
     canary-approved epoch: a spuriously rejected good candidate keeps
     the incumbent; a promoted bad one must be revoked on the spot. *)
  List.iter
    (fun day ->
      let before = Option.get (Registry.find reg "dev") in
      match
        Calibrator.calibrate ~force:true
          ~extra_faults:[ Calibrator.Canary_flake; Calibrator.Truncate_merge 0.4 ]
          cal ~id:"dev" ~day
      with
      | Error e -> Alcotest.fail e
      | Ok (Calibrator.Rejected _) ->
        let e = Option.get (Registry.find reg "dev") in
        Alcotest.(check string) "rejected cycle leaves the epoch alone"
          before.Registry.epoch e.Registry.epoch
      | Ok (Calibrator.Rolled_back { restored_epoch; bad_epoch; _ }) ->
        let e = Option.get (Registry.find reg "dev") in
        Alcotest.(check string) "rollback restores the incumbent"
          before.Registry.epoch restored_epoch;
        Alcotest.(check string) "registry is back on it" restored_epoch e.Registry.epoch;
        Alcotest.(check string) "bit-identical restoration"
          (xbytes before.Registry.xtalk) (xbytes e.Registry.xtalk);
        Alcotest.(check bool) "the bad epoch is gone" true (bad_epoch <> e.Registry.epoch)
      | Ok a ->
        Alcotest.fail ("flaked cycle must reject or roll back, got " ^ Calibrator.action_name a))
    [ 2; 5; 8 ]

(* ---- crash mid-promotion: satellite 3 ---- *)

let crash_mid_promotion () =
  let device = device () in
  let dir = fresh_dir "qcx-test-calib-crash" in
  let cache_file = tmp "qcx-test-calib-cache.json" in
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ cache_file; cache_file ^ ".journal" ];
  let xtalk0 = Device.ground_truth device in
  let boot () =
    let reg = Registry.create () in
    ignore (Registry.add_static reg ~id:"dev" ~device ~xtalk:xtalk0);
    let cal = Calibrator.create ~dir reg in
    ignore (Calibrator.recover cal);
    (reg, cal)
  in
  let reg, cal = boot () in
  (* establish a promoted epoch so the ring pointer exists on disk *)
  let promoted_epoch =
    let rec go day =
      if day > 6 then Alcotest.fail "no forced cycle promoted within 6 days"
      else
        match Calibrator.calibrate ~force:true cal ~id:"dev" ~day with
        | Ok (Calibrator.Promoted { new_epoch; _ }) -> new_epoch
        | Ok _ -> go (day + 1)
        | Error e -> Alcotest.fail e
    in
    go 1
  in
  (* warm a journaled cache under that epoch *)
  let service = Service.create reg in
  Result.get_ok (Service.enable_persistence service ~cache_file ~fsync:false ());
  (match Service.compile service ~device:"dev" (test_circuit device 0) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let key0 =
    match Cache.keys_newest_first (Service.cache service) with
    | k :: _ -> k
    | [] -> Alcotest.fail "nothing cached"
  in
  (* crash BEFORE the ring-pointer commit: recovery must land on the
     old epoch with the cache fully valid *)
  (match
     Calibrator.calibrate ~force:true
       ~extra_faults:[ Calibrator.Crash_before_commit ]
       cal ~id:"dev" ~day:7
   with
  | Ok (Calibrator.Crashed { stage = Calibrator.Before_commit; candidate_epoch }) ->
    let reg2, cal2 = boot () in
    let e = Option.get (Registry.find reg2 "dev") in
    Alcotest.(check string) "pre-commit crash recovers the old epoch" promoted_epoch
      e.Registry.epoch;
    Alcotest.(check bool) "not the candidate" true (e.Registry.epoch <> candidate_epoch);
    let service2 = Service.create reg2 in
    ignore (Result.get_ok (Service.recover service2 ~cache_file ~fsync:false ()));
    Alcotest.(check int) "no entry purged: epoch unchanged" 0 (Service.purge_stale service2);
    Alcotest.(check bool) "journal-replayed entry still served" true
      (Cache.find (Service.cache service2) key0 <> None);
    (* crash AFTER the commit: recovery must land on exactly the new
       epoch, and every old-epoch cache entry must be purged *)
    (match
       Calibrator.calibrate ~force:true
         ~extra_faults:[ Calibrator.Crash_after_commit ]
         cal2 ~id:"dev" ~day:8
     with
    | Ok (Calibrator.Crashed { stage = Calibrator.After_commit; candidate_epoch }) ->
      let reg3, _cal3 = boot () in
      let e3 = Option.get (Registry.find reg3 "dev") in
      Alcotest.(check string) "post-commit crash recovers the new epoch" candidate_epoch
        e3.Registry.epoch;
      Alcotest.(check bool) "old epoch retired onto the ring" true
        (List.mem_assoc promoted_epoch e3.Registry.ring);
      let service3 = Service.create reg3 in
      ignore (Result.get_ok (Service.recover service3 ~cache_file ~fsync:false ()));
      Alcotest.(check bool) "stale entries purged on recovery" true
        (Service.purge_stale service3 >= 1);
      Alcotest.(check bool) "no stale schedule survives" true
        (Cache.find (Service.cache service3) key0 = None)
    | Ok a -> Alcotest.fail ("expected a post-commit crash, got " ^ Calibrator.action_name a)
    | Error e -> Alcotest.fail e)
  | Ok a -> Alcotest.fail ("expected a pre-commit crash, got " ^ Calibrator.action_name a)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ cache_file; cache_file ^ ".journal" ]

(* ---- health surfacing: satellite 2 ---- *)

let member_exn k doc =
  match Json.member k doc with Some v -> v | None -> Alcotest.fail ("missing field " ^ k)

let health_surfaces_staleness_and_warnings () =
  let device = device () in
  let path = tmp "qcx-test-calib-health.xtalk.json" in
  Result.get_ok (Store.save_crosstalk ~path (Device.ground_truth device));
  let reg = Registry.create () in
  ignore (Registry.add_from_paths reg ~id:"dev" ~device ~paths:[ path ]);
  ignore
    (Result.get_ok (Registry.promote ~day:2 reg ~id:"dev" (scaled 1.6 (Device.ground_truth device))));
  (* damage the snapshot on disk: the next refresh keeps serving but
     must surface the warning through health, not just stderr *)
  let oc = open_out path in
  output_string oc "{ truncated";
  close_out oc;
  let _, warning = Result.get_ok (Registry.refresh reg ~id:"dev") in
  Alcotest.(check bool) "refresh reports the warning" true (warning <> None);
  (* a second registered device absorbs the calibrate op that advances
     the service's logical clock, leaving "dev"'s promotion day alone *)
  ignore
    (Registry.add_static reg ~id:"aux" ~device ~xtalk:Crosstalk.empty);
  let service = Service.create reg in
  let cal = Calibrator.create reg in
  Service.set_calibrator service (Some cal);
  ignore
    (Service.handle service
       (Wire.Calibrate
          { id = "c1"; device = "aux"; day = Some 7; force = false; full = false; poison = false }));
  let health = Service.health_json service in
  let devices =
    match member_exn "devices" health with
    | Json.Array l -> l
    | _ -> Alcotest.fail "devices is not an array"
  in
  let dev =
    match
      List.find_opt
        (fun d -> match Json.find_str "id" d with Ok "dev" -> true | _ -> false)
        devices
    with
    | Some d -> d
    | None -> Alcotest.fail "device missing from health"
  in
  (match member_exn "staleness_days" dev with
  | Json.Number n -> Alcotest.(check (float 0.0)) "staleness = day - promoted_day" 5.0 n
  | _ -> Alcotest.fail "staleness_days is not a number");
  (match member_exn "warning" dev with
  | Json.String w ->
    Alcotest.(check bool) "quarantine warning surfaced" true (String.length w > 0)
  | _ -> Alcotest.fail "warning missing from health");
  (* the resilient loader quarantines the corrupt snapshot on disk, so
     the file may already be gone (or renamed) by the time we clean up *)
  if Sys.file_exists path then Sys.remove path

(* ---- wire round-trips for the new ops ---- *)

let wire_calibration_ops_roundtrip () =
  List.iter
    (fun req ->
      match Wire.request_of_json (Wire.request_to_json req) with
      | Ok got -> Alcotest.(check bool) "round-trips" true (got = req)
      | Error e -> Alcotest.fail e)
    [
      Wire.Calibrate
        { id = "a"; device = "dev"; day = Some 4; force = true; full = false; poison = true };
      Wire.Calibrate
        { id = "b"; device = "dev"; day = None; force = false; full = true; poison = false };
      Wire.Epoch_status { id = "c"; device = Some "dev" };
      Wire.Epoch_status { id = "d"; device = None };
      Wire.Rollback { id = "e"; device = "dev" };
    ]

let rollback_op_pops_ring_and_purges () =
  let device = device () in
  let reg = Registry.create () in
  let e0 = Registry.add_static reg ~id:"dev" ~device ~xtalk:(Device.ground_truth device) in
  let service = Service.create reg in
  ignore
    (Result.get_ok (Registry.promote ~day:1 reg ~id:"dev" (scaled 1.4 (Device.ground_truth device))));
  (* cache a schedule under the promoted epoch: the rollback must
     retire it *)
  (match Service.compile service ~device:"dev" (test_circuit device 0) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let doc = Service.handle service (Wire.Rollback { id = "r1"; device = "dev" }) in
  Alcotest.(check string) "rollback answers ok" "ok"
    (Result.value ~default:"" (Json.find_str "status" doc));
  Alcotest.(check string) "back on the original epoch" e0.Registry.epoch
    (Result.value ~default:"" (Json.find_str "epoch" doc));
  (* the entry cached under the retired epoch is gone *)
  (match member_exn "purged" doc with
  | Json.Number n -> Alcotest.(check bool) "purge counted in the response" true (n >= 1.0)
  | _ -> Alcotest.fail "purged is not a number");
  let doc2 = Service.handle service (Wire.Rollback { id = "r2"; device = "dev" }) in
  Alcotest.(check string) "empty ring answers a typed failure" "rollback_failed"
    (Result.value ~default:"" (Json.find_str "status" doc2))

let suite =
  [
    ( "calibration",
      [
        Alcotest.test_case "incremental: flagged-only cost and merge" `Quick
          incremental_flagged_only;
        Alcotest.test_case "incremental: full fallback" `Quick incremental_full_fallback;
        Alcotest.test_case "registry: ring rollback is bit-identical" `Quick
          registry_ring_rollback;
        Alcotest.test_case "registry: ring is bounded" `Quick registry_ring_bounded;
        Alcotest.test_case "cache: purge on epoch change" `Quick purge_on_epoch_change;
        Alcotest.test_case "canary: truncated merge rejected" `Quick
          canary_rejects_truncated_merge;
        Alcotest.test_case "canary: flake never strands a bad epoch" `Quick
          canary_flake_never_strands_bad_epoch;
        Alcotest.test_case "crash mid-promotion recovers consistently" `Quick
          crash_mid_promotion;
        Alcotest.test_case "health: staleness and warnings surfaced" `Quick
          health_surfaces_staleness_and_warnings;
        Alcotest.test_case "wire: calibration ops round-trip" `Quick
          wire_calibration_ops_roundtrip;
        Alcotest.test_case "service: rollback op pops ring and purges" `Quick
          rollback_op_pops_ring_and_purges;
      ] );
  ]
