(** Schedule-aware dynamical decoupling.

    XtalkSched buys crosstalk avoidance by serializing gates, which
    creates exactly the idle windows where decoherence bites.  This
    module fills those windows with echo pulse trains {e after}
    scheduling: it consumes a finished schedule, extracts the per-qubit
    idle windows ({!Qcx_scheduler.Idle}), and weaves identity pulse
    sequences into every window they fit — without perturbing any
    scheduled start time, so the crosstalk properties the scheduler
    optimized for are untouched (DD pulses are single-qubit gates; the
    noise model's crosstalk is between simultaneous two-qubit gates).

    Each sequence composes to the identity (XY4 to [-I], a global
    phase), so the padded circuit is noiseless-equivalent to the
    original.  Under noise the pulses cost ordinary single-qubit gate
    error, and in exchange the twirled dephasing ([pz]) of the gaps
    they protect is suppressed by the sequence's echo factor — the
    benefit {!Qcx_noise.Exec} replays through its [protection] spans.
    T1 relaxation ([px]/[py]) is not refocusable and is never scaled.

    Windows are padded only when the modelled dephasing removed
    exceeds the modelled pulse cost, so enabling DD on an idle-light
    schedule degrades nothing. *)

type sequence =
  | XY4  (** X-Y-X-Y: universal decoupling, strongest suppression *)
  | X2  (** X-X: plain Hahn-echo pair *)
  | CPMG  (** Y-Y: Carr-Purcell-Meiboom-Gill pair *)

val all_sequences : sequence list

val sequence_name : sequence -> string
(** "xy4" | "x2" | "cpmg". *)

val sequence_of_name : string -> (sequence, string) result

val pulses_of : sequence -> Qcx_circuit.Gate.kind list
(** The pulse train, in time order. *)

val z_suppression : sequence -> float
(** Residual fraction of twirled dephasing on a protected gap:
    0.05 for XY4, 0.10 for CPMG, 0.15 for X2. *)

type stats = {
  windows_total : int;  (** idle windows found in the schedule *)
  windows_padded : int;  (** windows that received a pulse train *)
  pulses : int;  (** pulses inserted *)
  idle_total : float;  (** idle time in the input schedule, ns *)
  idle_protected : float;  (** idle time covered by protection spans, ns *)
}

val pad :
  ?sequence:sequence ->
  device:Qcx_device.Device.t ->
  Qcx_circuit.Schedule.t ->
  Qcx_circuit.Schedule.t * Qcx_noise.Exec.protection list * stats
(** [pad ~device sched] returns the pulse-padded schedule (a rebuilt
    circuit in time order, new gate ids), the protection spans to hand
    to {!Qcx_noise.Exec.run}, and coverage stats.  Default [sequence]
    is [XY4].

    Every original gate keeps its exact start time and duration;
    pulses use the qubit's calibrated single-qubit gate duration and
    are spread evenly through their window (CPMG-style tau/2 end
    margins).  Windows that cannot hold the full train, that contain a
    barrier on the qubit, or whose modelled benefit does not cover the
    pulse cost are left alone.  The result always satisfies
    [Schedule.validate]. *)
