module Circuit = Qcx_circuit.Circuit
module Schedule = Qcx_circuit.Schedule
module Device = Qcx_device.Device
module Idle = Qcx_scheduler.Idle
module Exec = Qcx_noise.Exec
module Readout_mitigation = Qcx_metrics.Readout_mitigation
module Rng = Qcx_util.Rng

type mitigation = Unmitigated | Dd_only | Zne_only | Dd_zne

let all_mitigations = [ Unmitigated; Dd_only; Zne_only; Dd_zne ]

let mitigation_name = function
  | Unmitigated -> "none"
  | Dd_only -> "dd"
  | Zne_only -> "zne"
  | Dd_zne -> "dd+zne"

type workload = {
  w_name : string;
  w_circuit : Circuit.t;
  w_idle_heavy : bool;
}

type scheduler = {
  s_name : string;
  s_compile : Circuit.t -> Schedule.t;
}

type cell = {
  c_workload : string;
  c_idle_heavy : bool;
  c_scheduler : string;
  c_mitigation : mitigation;
  c_ideal : float;
  c_expectation : float;
  c_error : float;
  c_readout_expectation : float;
  c_readout_error : float;
  c_residual : float;
  c_makespan : float;
  c_idle_total : float;
  c_dd_pulses : int;
}

(* One executed scale point: the raw and DD-padded runs share the fold
   and the compile, so the four strategies differ only in which counts
   they read and whether they extrapolate. *)
type point = {
  pt_raw : float;  (** parity, no DD *)
  pt_dd : float;  (** parity, DD-padded + protected *)
  pt_raw_ro : float;  (** readout-mitigated parity, no DD *)
  pt_dd_ro : float;  (** readout-mitigated parity, DD *)
}

let readout_parity device ~measured counts =
  if measured = [] then 0.0
  else
    Zne.parity
      (Readout_mitigation.mitigate_for_device device ~measured
         ~counts:(Exec.counts_bindings counts))

let run ?(jobs = 1) ?(scales = [ 1; 3; 5 ]) ?(order = 1) ?(sequence = Dd.XY4)
    ?(trials = 4096) ?(backend = Exec.Statevector) ~device ~schedulers
    ~workloads ~rng () =
  if not (List.mem 1 scales) then
    invalid_arg "Leaderboard.run: scales must include 1";
  let base = Rng.split rng in
  let fscales = List.map float_of_int scales in
  List.concat
    (List.mapi
       (fun wi w ->
         let wrng = Rng.split_nth base wi in
         let circuit = Circuit.decompose_swaps w.w_circuit in
         let measured = Exec.measured_qubits circuit in
         let ideal = Zne.ideal_parity circuit in
         List.concat
           (List.mapi
              (fun si s ->
                let srng = Rng.split_nth wrng si in
                (* Scale-1 schedule metrics, captured as we pass by. *)
                let makespan = ref 0.0
                and idle1 = ref 0.0
                and pulses1 = ref 0
                and makespan_dd = ref 0.0
                and idle1_dd = ref 0.0 in
                let points =
                  List.mapi
                    (fun ci scale ->
                      let crng = Rng.split_nth srng ci in
                      let folded = Zne.fold circuit ~scale in
                      let sched = s.s_compile folded in
                      let padded, protection, dd_stats =
                        Dd.pad ~sequence ~device sched
                      in
                      if scale = 1 then begin
                        makespan := Schedule.makespan sched;
                        idle1 := Idle.total sched;
                        pulses1 := dd_stats.Dd.pulses;
                        makespan_dd := Schedule.makespan padded;
                        idle1_dd := Idle.total padded
                      end;
                      let raw_counts =
                        Exec.run ~jobs device sched
                          ~rng:(Rng.split_nth crng 0) ~trials ~backend
                      in
                      (* No pulses inserted means the padded schedule IS
                         the raw schedule: reuse the counts rather than
                         re-sampling, so DD differs from no-DD only where
                         DD actually did something. *)
                      let dd_counts =
                        if protection = [] then raw_counts
                        else
                          Exec.run ~jobs ~protection device padded
                            ~rng:(Rng.split_nth crng 1) ~trials ~backend
                      in
                      {
                        pt_raw = Zne.parity_of_counts raw_counts;
                        pt_dd = Zne.parity_of_counts dd_counts;
                        pt_raw_ro = readout_parity device ~measured raw_counts;
                        pt_dd_ro = readout_parity device ~measured dd_counts;
                      })
                    scales
                in
                let scale1 =
                  let rec at1 ss ps =
                    match (ss, ps) with
                    | 1 :: _, p :: _ -> p
                    | _ :: ss, _ :: ps -> at1 ss ps
                    | _ -> assert false
                  in
                  at1 scales points
                in
                let zne_of select =
                  Zne.extrapolate ~order ~scales:fscales
                    (List.map select points)
                in
                let cell mitigation =
                  let expectation, readout, residual =
                    match mitigation with
                    | Unmitigated ->
                        (scale1.pt_raw, scale1.pt_raw_ro, 0.0)
                    | Dd_only -> (scale1.pt_dd, scale1.pt_dd_ro, 0.0)
                    | Zne_only ->
                        let z, r = zne_of (fun p -> p.pt_raw) in
                        let zr, _ = zne_of (fun p -> p.pt_raw_ro) in
                        (z, zr, r)
                    | Dd_zne ->
                        let z, r = zne_of (fun p -> p.pt_dd) in
                        let zr, _ = zne_of (fun p -> p.pt_dd_ro) in
                        (z, zr, r)
                  in
                  let with_dd =
                    mitigation = Dd_only || mitigation = Dd_zne
                  in
                  {
                    c_workload = w.w_name;
                    c_idle_heavy = w.w_idle_heavy;
                    c_scheduler = s.s_name;
                    c_mitigation = mitigation;
                    c_ideal = ideal;
                    c_expectation = expectation;
                    c_error = Float.abs (expectation -. ideal);
                    c_readout_expectation = readout;
                    c_readout_error = Float.abs (readout -. ideal);
                    c_residual = residual;
                    c_makespan = (if with_dd then !makespan_dd else !makespan);
                    c_idle_total = (if with_dd then !idle1_dd else !idle1);
                    c_dd_pulses = (if with_dd then !pulses1 else 0);
                  }
                in
                List.map cell all_mitigations)
              schedulers))
       workloads)

let mean_error ?(idle_heavy_only = false) ?scheduler mitigation cells =
  let slice =
    List.filter
      (fun c ->
        c.c_mitigation = mitigation
        && ((not idle_heavy_only) || c.c_idle_heavy)
        && match scheduler with None -> true | Some s -> c.c_scheduler = s)
      cells
  in
  if slice = [] then invalid_arg "Leaderboard.mean_error: empty slice";
  List.fold_left (fun acc c -> acc +. c.c_error) 0.0 slice
  /. float_of_int (List.length slice)

let aggregate cells =
  List.map (fun m -> (m, mean_error m cells)) all_mitigations
