module Circuit = Qcx_circuit.Circuit
module Gate = Qcx_circuit.Gate
module Exec = Qcx_noise.Exec
module State = Qcx_statevector.State
module Rng = Qcx_util.Rng

type result = {
  noise_scales : int list;
  expectations : float list;
  zero_noise : float;
  residual : float;
  order : int;
}

let fold circuit ~scale =
  if scale < 1 || scale mod 2 = 0 then
    invalid_arg
      (Printf.sprintf "Zne.fold: scale must be odd and positive, got %d" scale);
  let body, measures =
    List.partition (fun g -> not (Gate.is_measure g)) (Circuit.gates circuit)
  in
  let add c (g : Gate.t) = Circuit.add c g.Gate.kind g.Gate.qubits in
  let add_inverse c (g : Gate.t) =
    Circuit.add c (Gate.inverse_kind g.Gate.kind) g.Gate.qubits
  in
  let k = (scale - 1) / 2 in
  let c = List.fold_left add (Circuit.create (Circuit.nqubits circuit)) body in
  let c = ref c in
  for _ = 1 to k do
    c := List.fold_left add_inverse !c (List.rev body);
    c := List.fold_left add !c body
  done;
  List.fold_left add !c measures

let extrapolate ?(order = 1) ~scales values =
  let n = List.length scales in
  if n <> List.length values then
    invalid_arg "Zne.extrapolate: scales and values differ in length";
  if order < 1 || order > 2 then
    invalid_arg "Zne.extrapolate: order must be 1 or 2";
  if n < order + 1 then
    invalid_arg "Zne.extrapolate: need at least order + 1 points";
  let xs = Array.of_list scales and ys = Array.of_list values in
  let m = order + 1 in
  (* Normal equations for the least-squares polynomial fit: a small
     SPD system solved by Gaussian elimination with partial pivoting. *)
  let a = Array.make_matrix m m 0.0 and b = Array.make m 0.0 in
  Array.iteri
    (fun t x ->
      let pow = Array.make (2 * m) 1.0 in
      for p = 1 to (2 * m) - 1 do
        pow.(p) <- pow.(p - 1) *. x
      done;
      for i = 0 to m - 1 do
        for j = 0 to m - 1 do
          a.(i).(j) <- a.(i).(j) +. pow.(i + j)
        done;
        b.(i) <- b.(i) +. (pow.(i) *. ys.(t))
      done)
    xs;
  for col = 0 to m - 1 do
    let piv = ref col in
    for r = col + 1 to m - 1 do
      if Float.abs a.(r).(col) > Float.abs a.(!piv).(col) then piv := r
    done;
    if !piv <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!piv);
      a.(!piv) <- tmp;
      let tb = b.(col) in
      b.(col) <- b.(!piv);
      b.(!piv) <- tb
    end;
    if Float.abs a.(col).(col) < 1e-12 then
      invalid_arg "Zne.extrapolate: singular fit (degenerate scales)";
    for r = col + 1 to m - 1 do
      let f = a.(r).(col) /. a.(col).(col) in
      for cc = col to m - 1 do
        a.(r).(cc) <- a.(r).(cc) -. (f *. a.(col).(cc))
      done;
      b.(r) <- b.(r) -. (f *. b.(col))
    done
  done;
  let coeffs = Array.make m 0.0 in
  for i = m - 1 downto 0 do
    let s = ref b.(i) in
    for j = i + 1 to m - 1 do
      s := !s -. (a.(i).(j) *. coeffs.(j))
    done;
    coeffs.(i) <- !s /. a.(i).(i)
  done;
  let eval x =
    let acc = ref 0.0 in
    for i = m - 1 downto 0 do
      acc := (!acc *. x) +. coeffs.(i)
    done;
    !acc
  in
  let sq = ref 0.0 in
  Array.iteri (fun t x -> sq := !sq +. ((eval x -. ys.(t)) ** 2.0)) xs;
  (coeffs.(0), sqrt (!sq /. float_of_int n))

let popcount s =
  let n = ref 0 in
  String.iter (fun c -> if c = '1' then incr n) s;
  !n

let popcount_int x =
  let n = ref 0 and v = ref x in
  while !v <> 0 do
    n := !n + (!v land 1);
    v := !v lsr 1
  done;
  !n

let parity dist =
  List.fold_left
    (fun acc (bits, w) ->
      acc +. if popcount bits land 1 = 0 then w else -.w)
    0.0 dist

let parity_of_counts counts = parity (Exec.distribution counts)

let ideal_parity circuit =
  let measured = Exec.measured_qubits circuit in
  if measured = [] then invalid_arg "Zne.ideal_parity: no measurements";
  let state, used = Exec.run_ideal circuit in
  let positions =
    List.map
      (fun q ->
        let rec index i = function
          | [] -> invalid_arg "Zne.ideal_parity: measured qubit unused"
          | u :: rest -> if u = q then i else index (i + 1) rest
        in
        index 0 used)
      measured
  in
  let mask = List.fold_left (fun m p -> m lor (1 lsl p)) 0 positions in
  let probs = State.probabilities state in
  let acc = ref 0.0 in
  Array.iteri
    (fun idx p ->
      let par = if popcount_int (idx land mask) land 1 = 0 then p else -.p in
      acc := !acc +. par)
    probs;
  !acc

let estimate ?(jobs = 1) ?(scales = [ 1; 3; 5 ]) ?(order = 1)
    ?(backend = Exec.Statevector) ?(trials = 4096) ?pad ~device ~compile ~rng
    circuit =
  if scales = [] then invalid_arg "Zne.estimate: empty scale list";
  let base = Rng.split rng in
  let expectations =
    List.mapi
      (fun i scale ->
        let folded = fold circuit ~scale in
        let sched = compile folded in
        let sched, protection =
          match pad with
          | None -> (sched, [])
          | Some f ->
              let s, p = f sched in
              (s, p)
        in
        let counts =
          Exec.run ~jobs ~protection device sched
            ~rng:(Rng.split_nth base i) ~trials ~backend
        in
        parity_of_counts counts)
      scales
  in
  let zero_noise, residual =
    extrapolate ~order ~scales:(List.map float_of_int scales) expectations
  in
  { noise_scales = scales; expectations; zero_noise; residual; order }
