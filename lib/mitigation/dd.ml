module Circuit = Qcx_circuit.Circuit
module Gate = Qcx_circuit.Gate
module Schedule = Qcx_circuit.Schedule
module Device = Qcx_device.Device
module Calibration = Qcx_device.Calibration
module Idle = Qcx_scheduler.Idle
module Channel = Qcx_noise.Channel
module Exec = Qcx_noise.Exec

type sequence = XY4 | X2 | CPMG

let all_sequences = [ XY4; X2; CPMG ]

let sequence_name = function XY4 -> "xy4" | X2 -> "x2" | CPMG -> "cpmg"

let sequence_of_name name =
  match List.find_opt (fun s -> sequence_name s = name) all_sequences with
  | Some s -> Ok s
  | None -> Error ("unknown DD sequence " ^ name ^ " (expected xy4 | x2 | cpmg)")

let pulses_of = function
  | XY4 -> [ Gate.X; Gate.Y; Gate.X; Gate.Y ]
  | X2 -> [ Gate.X; Gate.X ]
  | CPMG -> [ Gate.Y; Gate.Y ]

(* Echo residuals: XY4 refocuses both quadratures and suppresses the
   twirled dephasing hardest; the two-pulse trains echo only one axis
   and leave more residual.  T1 (px/py) is never suppressed. *)
let z_suppression = function XY4 -> 0.05 | CPMG -> 0.10 | X2 -> 0.15

type stats = {
  windows_total : int;
  windows_padded : int;
  pulses : int;
  idle_total : float;
  idle_protected : float;
}

(* A pulse staged for insertion: kind, qubit, start, duration. *)
type pulse = { k : Gate.kind; q : int; at : float; dur : float }

let pad ?(sequence = XY4) ~device sched =
  let circuit = Schedule.circuit sched in
  let cal = Device.calibration device in
  let train = pulses_of sequence in
  let npulses = List.length train in
  let z = z_suppression sequence in
  let windows = Idle.windows sched in
  (* Barriers have zero duration and are invisible to the idle
     windows, but they order the rebuilt circuit's DAG: never pad a
     window a barrier cuts through the middle of (a pulse could
     straddle it and break program order).  Barriers sitting exactly on
     a window boundary are fine — pulses are clamped inside the window,
     so they stay on the right side of it. *)
  let barrier_blocks (w : Idle.window) =
    List.exists
      (fun (g : Gate.t) ->
        Gate.is_barrier g
        && List.mem w.Idle.w_qubit g.Gate.qubits
        &&
        let s = Schedule.start sched g.Gate.id in
        s > w.Idle.w_start +. 1e-9 && s < w.Idle.w_finish -. 1e-9)
      (Circuit.gates circuit)
  in
  let staged, nwindows_padded, protected_ns =
    List.fold_left
      (fun (staged, npadded, prot) (w : Idle.window) ->
        let q = w.Idle.w_qubit in
        let qc = Calibration.qubit cal q in
        let d = qc.Calibration.single_qubit_duration in
        let len = w.Idle.w_finish -. w.Idle.w_start in
        let fits = d > 0.0 && len +. 1e-9 >= float_of_int npulses *. d in
        let worthwhile =
          fits
          &&
          (* Pad only when the dephasing the echo removes exceeds the
             depolarizing error the pulses add. *)
          let idle =
            Channel.idle_channel ~t1:qc.Calibration.t1 ~t2:qc.Calibration.t2 ~duration:len
          in
          idle.Channel.pz *. (1.0 -. z)
          > float_of_int npulses *. qc.Calibration.single_qubit_error
        in
        if not (worthwhile && not (barrier_blocks w)) then (staged, npadded, prot)
        else begin
          (* Even spread: pulse k centred at (k + 1/2)/n of the window,
             i.e. tau/2 margins at both ends (CPMG timing). *)
          let step = len /. float_of_int npulses in
          let pulses =
            List.mapi
              (fun k kind ->
                let raw = w.Idle.w_start +. ((float_of_int k +. 0.5) *. step) -. (d /. 2.0) in
                (* Clamp against float round-off so a snug train can
                   never overhang the window by an ulp (the schedule
                   exclusivity check has no tolerance). *)
                let at = Float.max w.Idle.w_start (Float.min (w.Idle.w_finish -. d) raw) in
                { k = kind; q; at; dur = d })
              train
          in
          ((w, pulses) :: staged, npadded + 1, prot +. len)
        end)
      ([], 0, 0.0) windows
  in
  let staged = List.rev staged in
  let pulse_list = List.concat_map snd staged in
  let idle_total = List.fold_left (fun acc (w : Idle.window) -> acc +. (w.w_finish -. w.w_start)) 0.0 windows in
  let stats =
    {
      windows_total = List.length windows;
      windows_padded = nwindows_padded;
      pulses = List.length pulse_list;
      idle_total;
      idle_protected = protected_ns;
    }
  in
  if pulse_list = [] then (sched, [], stats)
  else begin
    (* Rebuild the circuit in time order with the pulses woven in.
       Program order defines the schedule DAG, so time order keeps
       every dependency satisfied; at equal start times the original
       gates come first (rank below any pulse), which keeps zero-width
       barriers ahead of pulses that begin exactly where they sit. *)
    let originals = Schedule.gates_by_start sched in
    let items =
      List.mapi
        (fun rank (g : Gate.t) ->
          ( Schedule.start sched g.Gate.id,
            rank,
            g.Gate.kind,
            g.Gate.qubits,
            Schedule.duration sched g.Gate.id ))
        originals
      @ List.mapi
          (fun i p -> (p.at, List.length originals + i, p.k, [ p.q ], p.dur))
          pulse_list
    in
    let items =
      List.sort
        (fun (s1, r1, _, _, _) (s2, r2, _, _, _) ->
          let c = compare s1 s2 in
          if c <> 0 then c else compare r1 r2)
        items
    in
    let padded_circuit =
      List.fold_left
        (fun c (_, _, kind, qubits, _) -> Circuit.add c kind qubits)
        (Circuit.create (Circuit.nqubits circuit))
        items
    in
    let starts = Array.of_list (List.map (fun (s, _, _, _, _) -> s) items) in
    let durations = Array.of_list (List.map (fun (_, _, _, _, d) -> d) items) in
    let padded = Schedule.make padded_circuit ~starts ~durations in
    (match Schedule.validate padded with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Dd.pad: padded schedule invalid: " ^ msg));
    let protection =
      List.map
        (fun ((w : Idle.window), _) ->
          {
            Exec.p_qubit = w.Idle.w_qubit;
            p_start = w.Idle.w_start;
            p_finish = w.Idle.w_finish;
            p_xy = 1.0;
            p_z = z;
          })
        staged
    in
    (padded, protection, stats)
  end
