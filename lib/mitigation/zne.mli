(** Zero-noise extrapolation by global gate folding.

    The circuit's unitary part [G] is stretched to an odd noise scale
    [s] as [G (G^dag G)^((s-1)/2)] — a logical identity whose physical
    error grows roughly linearly with [s] — measurements stripped
    before folding and re-appended after.  Expectation values measured
    at several scales are then Richardson-extrapolated back to the
    zero-noise limit.

    The observable is the Z-basis parity of the measured qubits
    (include basis rotations in the circuit to probe other axes); the
    estimator runs on the pool-parallel {!Qcx_noise.Exec.run}, so
    estimates are bit-identical at every [jobs]. *)

type result = {
  noise_scales : int list;
  expectations : float list;  (** measured expectation per scale *)
  zero_noise : float;  (** extrapolated zero-noise estimate *)
  residual : float;  (** RMS fit residual at the sampled scales *)
  order : int;  (** Richardson/polynomial order used (1 or 2) *)
}

val fold : Qcx_circuit.Circuit.t -> scale:int -> Qcx_circuit.Circuit.t
(** [fold c ~scale] is the globally-folded circuit: identical to [c]
    at scale 1 (same gates, fresh ids), and [G (G^dag G)^k] with
    [k = (scale-1)/2] plus the original measurements otherwise.
    Raises [Invalid_argument] unless [scale] is odd and positive. *)

val extrapolate : ?order:int -> scales:float list -> float list -> float * float
(** [extrapolate ~scales values] least-squares fits a polynomial of
    degree [order] (default 1; 1 or 2 supported) and returns
    [(value at scale 0, RMS residual)].  Exact-order fits (points =
    order + 1) reproduce classic Richardson extrapolation with zero
    residual.  Requires at least [order + 1] distinct scales. *)

val parity : (string * float) list -> float
(** Z-parity expectation of a bitstring distribution: [+1] weight for
    even, [-1] for odd numbers of ones. *)

val parity_of_counts : Qcx_noise.Exec.counts -> float

val ideal_parity : Qcx_circuit.Circuit.t -> float
(** Noise-free parity over the measured qubits, from
    {!Qcx_noise.Exec.run_ideal}.  Raises [Invalid_argument] on a
    circuit with no measurements. *)

val estimate :
  ?jobs:int ->
  ?scales:int list ->
  ?order:int ->
  ?backend:Qcx_noise.Exec.backend ->
  ?trials:int ->
  ?pad:(Qcx_circuit.Schedule.t -> Qcx_circuit.Schedule.t * Qcx_noise.Exec.protection list) ->
  device:Qcx_device.Device.t ->
  compile:(Qcx_circuit.Circuit.t -> Qcx_circuit.Schedule.t) ->
  rng:Qcx_util.Rng.t ->
  Qcx_circuit.Circuit.t ->
  result
(** End-to-end ZNE: fold at each scale (default [[1; 3; 5]]), compile
    each folded circuit with [compile], optionally post-process each
    schedule with [pad] (dynamical decoupling composes here), execute
    [trials] (default 4096) Monte-Carlo trajectories per scale, and
    extrapolate the parity expectations.  Scale [i] draws from
    [Rng.split_nth] stream [i] off one split of [rng], so results are
    deterministic in the seed and independent of [jobs]. *)
