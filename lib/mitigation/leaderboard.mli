(** Mitigation leaderboard: schedulers x mitigation strategies.

    A qem-bench-style harness that runs every workload through every
    scheduler under four mitigation strategies — none, DD, ZNE and
    DD+ZNE — plus tensored readout-error mitigation as an extra column
    on each, and scores each cell by the absolute error of its parity
    expectation against the noise-free value.

    Determinism: every Monte-Carlo stream is derived from the caller's
    generator by [Rng.split_nth] chains keyed on (workload, scheduler,
    scale, dd) indices, and execution uses the pool-parallel
    {!Qcx_noise.Exec.run}, so the full cell table is bit-identical for
    every [jobs] value. *)

type mitigation = Unmitigated | Dd_only | Zne_only | Dd_zne

val all_mitigations : mitigation list
val mitigation_name : mitigation -> string
(** "none" | "dd" | "zne" | "dd+zne". *)

type workload = {
  w_name : string;
  w_circuit : Qcx_circuit.Circuit.t;  (** must include measurements *)
  w_idle_heavy : bool;
      (** marks workloads whose schedules leave long idle windows —
          the regime DD targets; used by the bench gates *)
}

type scheduler = {
  s_name : string;
  s_compile : Qcx_circuit.Circuit.t -> Qcx_circuit.Schedule.t;
      (** compile a SWAP-decomposed circuit; must be deterministic *)
}

type cell = {
  c_workload : string;
  c_idle_heavy : bool;
  c_scheduler : string;
  c_mitigation : mitigation;
  c_ideal : float;  (** noise-free parity *)
  c_expectation : float;  (** mitigated parity estimate *)
  c_error : float;  (** |expectation - ideal| *)
  c_readout_expectation : float;
      (** same estimate with tensored readout mitigation composed in *)
  c_readout_error : float;
  c_residual : float;  (** ZNE fit residual (0 for non-ZNE rows) *)
  c_makespan : float;  (** scale-1 schedule makespan, ns *)
  c_idle_total : float;  (** scale-1 schedule idle time, ns *)
  c_dd_pulses : int;  (** pulses inserted at scale 1 (0 without DD) *)
}

val run :
  ?jobs:int ->
  ?scales:int list ->
  ?order:int ->
  ?sequence:Dd.sequence ->
  ?trials:int ->
  ?backend:Qcx_noise.Exec.backend ->
  device:Qcx_device.Device.t ->
  schedulers:scheduler list ->
  workloads:workload list ->
  rng:Qcx_util.Rng.t ->
  unit ->
  cell list
(** Produce the full cell table (workloads x schedulers x the four
    mitigations, in that nesting order).  Defaults: [jobs 1],
    [scales [1; 3; 5]], [order 1], [sequence XY4], [trials 4096],
    [backend Statevector].  Within a (workload, scheduler) pair the
    four strategies reuse the same executions — the "none" row is the
    ZNE scale-1 run — so rows are structurally comparable. *)

val aggregate : cell list -> (mitigation * float) list
(** Mean [c_error] per mitigation, in {!all_mitigations} order. *)

val mean_error :
  ?idle_heavy_only:bool ->
  ?scheduler:string ->
  mitigation ->
  cell list ->
  float
(** Mean error of one strategy over an optional slice of the table.
    Raises [Invalid_argument] if the slice is empty. *)
