type kind =
  | H
  | X
  | Y
  | Z
  | S
  | Sdg
  | T
  | Tdg
  | Rx of float
  | Ry of float
  | Rz of float
  | U2 of float * float
  | Cnot
  | Swap
  | Barrier
  | Measure

type t = { id : int; kind : kind; qubits : int list }

let is_two_qubit g = match g.kind with Cnot | Swap -> true | _ -> false

let is_single_qubit g =
  match g.kind with
  | H | X | Y | Z | S | Sdg | T | Tdg | Rx _ | Ry _ | Rz _ | U2 _ -> true
  | Cnot | Swap | Barrier | Measure -> false

let is_barrier g = g.kind = Barrier
let is_measure g = g.kind = Measure
let is_unitary g = not (is_barrier g) && not (is_measure g)

let kind_name = function
  | H -> "h"
  | X -> "x"
  | Y -> "y"
  | Z -> "z"
  | S -> "s"
  | Sdg -> "sdg"
  | T -> "t"
  | Tdg -> "tdg"
  | Rx _ -> "rx"
  | Ry _ -> "ry"
  | Rz _ -> "rz"
  | U2 _ -> "u2"
  | Cnot -> "cx"
  | Swap -> "swap"
  | Barrier -> "barrier"
  | Measure -> "measure"

let inverse_kind = function
  | H -> H
  | X -> X
  | Y -> Y
  | Z -> Z
  | S -> Sdg
  | Sdg -> S
  | T -> Tdg
  | Tdg -> T
  | Rx theta -> Rx (-.theta)
  | Ry theta -> Ry (-.theta)
  | Rz theta -> Rz (-.theta)
  (* u2(phi,lam)^dag = u2(pi - lam, pi - phi): transpose-conjugating
     the u2 matrix swaps and negates the phases up to a global sign on
     the off-diagonal, which this parameter choice absorbs. *)
  | U2 (phi, lam) -> U2 (Float.pi -. lam, Float.pi -. phi)
  | Cnot -> Cnot
  | Swap -> Swap
  | Barrier -> Barrier
  | Measure -> invalid_arg "Gate.inverse_kind: measurement has no inverse"

let equal_kind a b =
  match (a, b) with
  | Rx x, Rx y | Ry x, Ry y | Rz x, Rz y -> Float.equal x y
  | U2 (a1, a2), U2 (b1, b2) -> Float.equal a1 b1 && Float.equal a2 b2
  | H, H | X, X | Y, Y | Z, Z | S, S | Sdg, Sdg | T, T | Tdg, Tdg
  | Cnot, Cnot | Swap, Swap | Barrier, Barrier | Measure, Measure ->
    true
  | ( ( H | X | Y | Z | S | Sdg | T | Tdg | Rx _ | Ry _ | Rz _ | U2 _ | Cnot | Swap | Barrier
      | Measure ),
      _ ) ->
    false

let param_string = function
  | Rx theta | Ry theta | Rz theta -> Printf.sprintf "(%g)" theta
  | U2 (phi, lam) -> Printf.sprintf "(%g,%g)" phi lam
  | H | X | Y | Z | S | Sdg | T | Tdg | Cnot | Swap | Barrier | Measure -> ""

let to_string g =
  let operands = String.concat ", " (List.map (Printf.sprintf "q[%d]") g.qubits) in
  Printf.sprintf "%s%s %s" (kind_name g.kind) (param_string g.kind) operands

let pp fmt g = Format.pp_print_string fmt (to_string g)

let validate ~nqubits g =
  (* On the serve tier this runs once per gate per request (key
     derivation), so the common arities avoid list traversals and the
     polymorphic compare. *)
  let arity_ok =
    match (g.kind, g.qubits) with
    | (Cnot | Swap), [ _; _ ] -> true
    | (Cnot | Swap), _ -> false
    | Barrier, qs -> qs <> []
    | ( (Measure | H | X | Y | Z | S | Sdg | T | Tdg | Rx _ | Ry _ | Rz _ | U2 _),
        [ _ ] ) ->
      true
    | (Measure | H | X | Y | Z | S | Sdg | T | Tdg | Rx _ | Ry _ | Rz _ | U2 _), _ -> false
  in
  if not arity_ok then Error (Printf.sprintf "bad operand count for %s" (kind_name g.kind))
  else if List.exists (fun q -> q < 0 || q >= nqubits) g.qubits then
    Error (Printf.sprintf "qubit out of range in %s" (to_string g))
  else
    let distinct =
      match g.qubits with
      | [] | [ _ ] -> true
      | [ a; b ] -> a <> b
      | qs ->
        let sorted = List.sort_uniq Int.compare qs in
        List.length sorted = List.length qs
    in
    if not distinct then Error "duplicate operand qubits" else Ok ()
