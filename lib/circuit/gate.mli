(** Gate-level instruction set.

    Mirrors the subset of OpenQASM that the paper's tool operates on:
    IBM single-qubit basis gates, CNOT, logical SWAP (decomposed to
    three CNOTs before scheduling), barriers (the only control
    instruction available at the circuit-level ISA, used to enforce
    orderings) and readout. *)

type kind =
  | H
  | X
  | Y
  | Z
  | S
  | Sdg
  | T
  | Tdg
  | Rx of float
  | Ry of float
  | Rz of float
  | U2 of float * float
  | Cnot
  | Swap
  | Barrier
  | Measure

type t = {
  id : int;  (** unique within a circuit; assigned by [Circuit.add] *)
  kind : kind;
  qubits : int list;  (** operands; for [Cnot] this is [control; target] *)
}

val is_two_qubit : t -> bool
(** [Cnot] or [Swap]. *)

val is_single_qubit : t -> bool
(** A unitary on one qubit (not barrier/measure). *)

val is_barrier : t -> bool
val is_measure : t -> bool

val is_unitary : t -> bool
(** Anything except barriers and measurements. *)

val kind_name : kind -> string
(** Lower-case mnemonic ("h", "cx", "swap", ...). *)

val inverse_kind : kind -> kind
(** The kind whose unitary is the adjoint: self-inverse gates map to
    themselves, [S]/[Sdg] and [T]/[Tdg] swap, rotations negate their
    angle, and [U2 (phi, lam)] maps to [U2 (pi - lam, pi - phi)].
    [Barrier] maps to itself (reversing a circuit keeps its ordering
    hints).  Raises [Invalid_argument] on [Measure] — the basis of
    {!Qcx_mitigation.Zne} gate folding, which strips measurements
    first. *)

val equal_kind : kind -> kind -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** E.g. ["cx q[5], q[10]"]. *)

val validate : nqubits:int -> t -> (unit, string) result
(** Check operand arity and qubit ranges for the gate kind. *)
