module Rng = Qcx_util.Rng
module Fit = Qcx_util.Fit
module Stats = Qcx_util.Stats
module Circuit = Qcx_circuit.Circuit
module Gate = Qcx_circuit.Gate
module Device = Qcx_device.Device
module Topology = Qcx_device.Topology
module Tableau = Qcx_stabilizer.Tableau
module Exec = Qcx_noise.Exec

type params = { lengths : int list; seeds : int; trials : int }

let default_params = { lengths = [ 1; 2; 4; 8; 16; 32 ]; seeds = 6; trials = 192 }
let paper_params = { lengths = [ 1; 2; 4; 6; 10; 16; 24; 32; 40 ]; seeds = 100; trials = 1024 }

type fit = {
  edge : Topology.edge;
  alpha : float;
  epc : float;
  error_rate : float;
  points : (float * float) list;
}

let check_edges device edges =
  let topo = Device.topology device in
  List.iter
    (fun e ->
      if not (Topology.has_edge topo e) then invalid_arg "Rb: not a device edge")
    edges;
  let qubits = List.concat_map (fun (a, b) -> [ a; b ]) edges in
  if List.length (List.sort_uniq compare qubits) <> List.length qubits then
    invalid_arg "Rb: benchmarked gates must be disjoint"

let append_word circuit (a, b) word =
  List.fold_left
    (fun c g ->
      match g with
      | Clifford2.H 0 -> Circuit.h c a
      | Clifford2.H _ -> Circuit.h c b
      | Clifford2.S 0 -> Circuit.s c a
      | Clifford2.S _ -> Circuit.s c b
      | Clifford2.Sdg 0 -> Circuit.sdg c a
      | Clifford2.Sdg _ -> Circuit.sdg c b
      | Clifford2.Cx (0, _) -> Circuit.cnot c ~control:a ~target:b
      | Clifford2.Cx (_, _) -> Circuit.cnot c ~control:b ~target:a)
    circuit word

(* One random RB circuit of length m over all benchmarked edges.
   Returns the circuit and the total CNOT count charged to each edge
   (sequence plus inverse, for the per-CNOT conversion). *)
let sequence_circuit device rng ~m edges =
  let nq = Device.nqubits device in
  let all_qubits = List.concat_map (fun (a, b) -> [ a; b ]) edges in
  let trackers = List.map (fun _ -> Tableau.create 2) edges in
  let cnots = Array.make (List.length edges) 0 in
  let circuit = ref (Circuit.create nq) in
  for _ = 1 to m do
    List.iteri
      (fun i ((edge, tracker) : Topology.edge * Tableau.t) ->
        let word = Clifford2.sample rng in
        Clifford2.apply_word tracker word;
        cnots.(i) <- cnots.(i) + Clifford2.cnot_count word;
        circuit := append_word !circuit edge word)
      (List.combine edges trackers);
    circuit := Circuit.barrier !circuit all_qubits
  done;
  (* Exact single-Clifford recovery per pair. *)
  List.iteri
    (fun i (edge, tracker) ->
      let inv = Clifford2.inverse_word tracker in
      cnots.(i) <- cnots.(i) + Clifford2.cnot_count inv;
      circuit := append_word !circuit edge inv)
    (List.combine edges trackers);
  circuit := Circuit.barrier !circuit all_qubits;
  List.iter (fun q -> circuit := Circuit.measure !circuit q) all_qubits;
  (!circuit, cnots)

let survival_of_counts counts ~measured ~edge:(a, b) =
  let ia = ref (-1) and ib = ref (-1) in
  List.iteri
    (fun i q ->
      if q = a then ia := i;
      if q = b then ib := i)
    measured;
  let good = ref 0 and total = ref 0 in
  List.iter
    (fun (bits, n) ->
      total := !total + n;
      if bits.[!ia] = '0' && bits.[!ib] = '0' then good := !good + n)
    (Exec.counts_bindings counts);
  float_of_int !good /. float_of_int (max 1 !total)

let run ?(jobs = 1) device ~rng ~params edges =
  check_edges device edges;
  if edges = [] then invalid_arg "Rb.run: no edges";
  let nedges = List.length edges in
  (* survival.(edge index) : per length, list over seeds *)
  let samples = Array.make nedges [] in
  let cnot_totals = Array.make nedges 0 in
  let clifford_totals = ref 0 in
  List.iter
    (fun m ->
      let per_edge = Array.make nedges [] in
      for _ = 1 to params.seeds do
        let circuit, cnots = sequence_circuit device rng ~m edges in
        clifford_totals := !clifford_totals + m + 1;
        Array.iteri (fun i c -> cnot_totals.(i) <- cnot_totals.(i) + c) cnots;
        let sched = Qcx_scheduler.Par_sched.schedule device circuit in
        let counts = Exec.run ~jobs device sched ~rng ~trials:params.trials ~backend:Exec.Stabilizer in
        let measured = Exec.measured_qubits circuit in
        List.iteri
          (fun i edge ->
            per_edge.(i) <- survival_of_counts counts ~measured ~edge :: per_edge.(i))
          edges
      done;
      Array.iteri
        (fun i vals -> samples.(i) <- (float_of_int m, Stats.mean vals) :: samples.(i))
        per_edge)
    params.lengths;
  List.mapi
    (fun i edge ->
      let points = List.rev samples.(i) in
      (* Pin the asymptote at the depolarized 2-qubit survival (1/4):
         far more stable than the free fit when crosstalk makes the
         curve collapse within a few Cliffords. *)
      let decay = Fit.exp_decay_fixed_b ~b:0.25 points in
      let alpha = Stats.clamp ~lo:0.0 ~hi:1.0 decay.Fit.alpha in
      let epc = Fit.epc_of_alpha ~nqubits:2 alpha in
      let avg_cnots = float_of_int cnot_totals.(i) /. float_of_int (max 1 !clifford_totals) in
      let avg_cnots = if avg_cnots <= 0.0 then 1.5 else avg_cnots in
      let error_rate = Fit.cnot_error_of_epc ~cnots_per_clifford:avg_cnots epc in
      { edge; alpha; epc; error_rate; points })
    edges

type interleaved = { standard : fit; interleaved : fit; gate_error : float }

(* Like [sequence_circuit] for one edge, with the target CNOT optionally
   interleaved after every random Clifford. *)
let interleaved_sequence device rng ~m ~interleave edge =
  let nq = Device.nqubits device in
  let a, b = edge in
  let tracker = Tableau.create 2 in
  let circuit = ref (Circuit.create nq) in
  for _ = 1 to m do
    let word = Clifford2.sample rng in
    Clifford2.apply_word tracker word;
    circuit := append_word !circuit edge word;
    if interleave then begin
      Tableau.cnot tracker ~control:0 ~target:1;
      circuit := Circuit.cnot !circuit ~control:a ~target:b
    end;
    circuit := Circuit.barrier !circuit [ a; b ]
  done;
  let inv = Clifford2.inverse_word tracker in
  circuit := append_word !circuit edge inv;
  circuit := Circuit.measure (Circuit.measure !circuit a) b;
  !circuit

let interleaved_fit ?(jobs = 1) device ~rng ~params ~interleave edge =
  let samples = ref [] in
  List.iter
    (fun m ->
      let vals = ref [] in
      for _ = 1 to params.seeds do
        let circuit = interleaved_sequence device rng ~m ~interleave edge in
        let sched = Qcx_scheduler.Par_sched.schedule device circuit in
        let counts = Exec.run ~jobs device sched ~rng ~trials:params.trials ~backend:Exec.Stabilizer in
        let measured = Exec.measured_qubits circuit in
        vals := survival_of_counts counts ~measured ~edge :: !vals
      done;
      samples := (float_of_int m, Stats.mean !vals) :: !samples)
    params.lengths;
  let points = List.rev !samples in
  let decay = Fit.exp_decay_fixed_b ~b:0.25 points in
  let alpha = Stats.clamp ~lo:1e-6 ~hi:1.0 decay.Fit.alpha in
  let epc = Fit.epc_of_alpha ~nqubits:2 alpha in
  { edge = Topology.normalize edge; alpha; epc; error_rate = epc /. 1.5; points }

let interleaved ?(jobs = 1) device ~rng ~params edge =
  check_edges device [ edge ];
  let standard = interleaved_fit ~jobs device ~rng ~params ~interleave:false edge in
  let inter = interleaved_fit ~jobs device ~rng ~params ~interleave:true edge in
  let ratio = Stats.clamp ~lo:0.0 ~hi:1.0 (inter.alpha /. max 1e-9 standard.alpha) in
  let gate_error = 0.75 *. (1.0 -. ratio) in
  { standard; interleaved = inter; gate_error }

type fit1 = {
  qubit : int;
  alpha1 : float;
  epc1 : float;
  gate_error : float;
  points1 : (float * float) list;
}

let run_single ?(jobs = 1) device ~rng ~params qubits =
  if qubits = [] then invalid_arg "Rb.run_single: no qubits";
  if List.length (List.sort_uniq compare qubits) <> List.length qubits then
    invalid_arg "Rb.run_single: duplicate qubits";
  let nq = Device.nqubits device in
  List.iter (fun q -> if q < 0 || q >= nq then invalid_arg "Rb.run_single: qubit out of range") qubits;
  let nqubits = List.length qubits in
  let samples = Array.make nqubits [] in
  let gate_totals = Array.make nqubits 0 in
  let clifford_totals = ref 0 in
  List.iter
    (fun m ->
      let per_qubit = Array.make nqubits [] in
      for _ = 1 to params.seeds do
        (* one circuit driving every listed qubit with its own sequence *)
        let trackers = List.map (fun _ -> Tableau.create 1) qubits in
        let circuit = ref (Circuit.create nq) in
        let append_word q w =
          List.iter
            (fun g ->
              match g with
              | Clifford1.H -> circuit := Circuit.h !circuit q
              | Clifford1.S -> circuit := Circuit.s !circuit q
              | Clifford1.Sdg -> circuit := Circuit.sdg !circuit q)
            w
        in
        for _ = 1 to m do
          List.iteri
            (fun i (q, tracker) ->
              let word = Clifford1.sample rng in
              Clifford1.apply_word tracker ~qubit:0 word;
              gate_totals.(i) <- gate_totals.(i) + List.length word;
              append_word q word)
            (List.combine qubits trackers);
          circuit := Circuit.barrier !circuit qubits
        done;
        clifford_totals := !clifford_totals + m + 1;
        List.iteri
          (fun i (q, tracker) ->
            let inv = Clifford1.inverse_word tracker in
            gate_totals.(i) <- gate_totals.(i) + List.length inv;
            append_word q inv)
          (List.combine qubits trackers);
        List.iter (fun q -> circuit := Circuit.measure !circuit q) qubits;
        let sched = Qcx_scheduler.Par_sched.schedule device !circuit in
        let counts = Exec.run ~jobs device sched ~rng ~trials:params.trials ~backend:Exec.Stabilizer in
        let measured = Exec.measured_qubits !circuit in
        List.iteri
          (fun i q ->
            let pos = Option.get (List.find_index (fun x -> x = q) measured) in
            let good = ref 0 and total = ref 0 in
            List.iter
              (fun (bits, n) ->
                total := !total + n;
                if bits.[pos] = '0' then good := !good + n)
              (Exec.counts_bindings counts);
            per_qubit.(i) <-
              (float_of_int !good /. float_of_int (max 1 !total)) :: per_qubit.(i))
          qubits
      done;
      List.iteri
        (fun i _ -> samples.(i) <- (float_of_int m, Stats.mean per_qubit.(i)) :: samples.(i))
        qubits)
    params.lengths;
  List.mapi
    (fun i qubit ->
      let points1 = List.rev samples.(i) in
      let decay = Fit.exp_decay_fixed_b ~b:0.5 points1 in
      let alpha1 = Stats.clamp ~lo:0.0 ~hi:1.0 decay.Fit.alpha in
      let epc1 = Fit.epc_of_alpha ~nqubits:1 alpha1 in
      let avg_gates = float_of_int gate_totals.(i) /. float_of_int (max 1 !clifford_totals) in
      let gate_error = if avg_gates <= 0.0 then epc1 else epc1 /. avg_gates in
      { qubit; alpha1; epc1; gate_error; points1 })
    qubits

let independent ?(jobs = 1) device ~rng ~params edge =
  match run ~jobs device ~rng ~params [ edge ] with
  | [ fit ] -> fit
  | _ -> assert false

let experiment_executions params = List.length params.lengths * params.seeds * params.trials
