module Device = Qcx_device.Device
module Topology = Qcx_device.Topology
module Calibration = Qcx_device.Calibration
module Crosstalk = Qcx_device.Crosstalk
module Rng = Qcx_util.Rng

type policy =
  | All_pairs
  | One_hop
  | One_hop_binpacked
  | High_crosstalk_only of Binpack.pair list

let policy_name = function
  | All_pairs -> "all-pairs"
  | One_hop -> "one-hop"
  | One_hop_binpacked -> "one-hop+binpack"
  | High_crosstalk_only _ -> "high-crosstalk-only"

type plan = { policy : policy; experiments : Binpack.pair list list }

let plan ?(min_separation = 2) ?(attempts = 32) ~rng device policy =
  let topo = Device.topology device in
  let experiments =
    match policy with
    | All_pairs -> List.map (fun p -> [ p ]) (Topology.parallel_gate_pairs topo)
    | One_hop -> List.map (fun p -> [ p ]) (Topology.one_hop_gate_pairs topo)
    | One_hop_binpacked ->
      Binpack.pack topo ~rng ~min_separation ~attempts (Topology.one_hop_gate_pairs topo)
    | High_crosstalk_only known -> Binpack.pack topo ~rng ~min_separation ~attempts known
  in
  { policy; experiments }

let experiment_count plan = List.length plan.experiments

let estimated_hours ?(sequences = 100) ?(trials = 1024) ?(seconds_per_execution = 0.00127) plan =
  float_of_int (experiment_count plan * sequences * trials) *. seconds_per_execution /. 3600.0

type measurement = {
  target : Topology.edge;
  spectator : Topology.edge;
  conditional : float;
  raw_conditional : float;
  raw_independent : float;
}

type outcome = {
  xtalk : Crosstalk.t;
  measurements : measurement list;
  experiments : int;
}

let characterize ?(params = Rb.default_params) ?(jobs = 1) ~rng device (cplan : plan) =
  let cal = Device.calibration device in
  (* Independent rates, measured once per distinct gate by standard
     two-qubit RB (on real systems these come with the daily
     calibration). *)
  let independent_cache : (Topology.edge, float) Hashtbl.t = Hashtbl.create 16 in
  let independent_of edge =
    match Hashtbl.find_opt independent_cache edge with
    | Some v -> v
    | None ->
      let fit = Rb.independent ~jobs device ~rng ~params edge in
      Hashtbl.replace independent_cache edge fit.Rb.error_rate;
      fit.Rb.error_rate
  in
  let measurements = ref [] in
  List.iter
    (fun experiment ->
      let gates = List.concat_map (fun (e1, e2) -> [ e1; e2 ]) experiment in
      let fits = Rb.run ~jobs device ~rng ~params gates in
      let rate_of edge =
        match List.find_opt (fun f -> f.Rb.edge = Topology.normalize edge) fits with
        | Some f -> f.Rb.error_rate
        | None -> invalid_arg "Policy.characterize: missing fit"
      in
      List.iter
        (fun (e1, e2) ->
          let record target spectator =
            let raw_conditional = rate_of target in
            let raw_independent = max 1e-4 (independent_of target) in
            (* Ratio anchoring: both raw rates carry the same additive
               idle-decoherence inflation, so their ratio is the clean
               crosstalk signal; rescaling the daily calibration rate
               by it puts the estimate on the calibration scale the
               scheduler works in.  Flagging stored data at threshold
               t is then exactly the paper's raw-measured
               E(gi|gj) > t E(gi) test. *)
            let ratio = max 1.0 (raw_conditional /. raw_independent) in
            let anchored = (Calibration.gate cal target).Calibration.cnot_error *. ratio in
            measurements :=
              {
                target;
                spectator;
                conditional = Qcx_util.Stats.clamp ~lo:0.0 ~hi:1.0 anchored;
                raw_conditional;
                raw_independent;
              }
              :: !measurements
          in
          record (Topology.normalize e1) (Topology.normalize e2);
          record (Topology.normalize e2) (Topology.normalize e1))
        experiment)
    cplan.experiments;
  let xtalk =
    List.fold_left
      (fun acc m -> Crosstalk.set acc ~target:m.target ~spectator:m.spectator m.conditional)
      Crosstalk.empty !measurements
  in
  { xtalk; measurements = List.rev !measurements; experiments = experiment_count cplan }

(* ---- resilient characterization ----

   The plain [characterize] above assumes a perfect backend: every SRB
   experiment returns, every fit is physical.  The operational loop
   cannot — experiments hang, shots drop, fits diverge.  The resilient
   variant wraps each experiment in a timeout + bounded-retry loop
   with exponential backoff, validates every fitted rate before
   ingesting it, and falls back to the previous day's stored value (or
   the calibration rate) when an experiment stays broken, tracking
   per-pair freshness so consumers can see what is stale. *)

type injected_fault =
  | Inject_hang
  | Inject_dropout of float
  | Inject_corrupt_rate of float

type retry = {
  max_attempts : int;
  timeout_seconds : float;
  base_backoff_seconds : float;
  backoff_factor : float;
  max_backoff_seconds : float;
  jitter : float;
}

let default_retry =
  {
    max_attempts = 3;
    timeout_seconds = 30.0;
    base_backoff_seconds = 2.0;
    backoff_factor = 2.0;
    max_backoff_seconds = 60.0;
    jitter = 0.5;
  }

type freshness = Fresh | Recovered of int | Stale_previous | Stale_calibration

let freshness_name = function
  | Fresh -> "fresh"
  | Recovered n -> Printf.sprintf "recovered(%d)" n
  | Stale_previous -> "stale-previous"
  | Stale_calibration -> "stale-calibration"

type resilient_outcome = {
  outcome : outcome;
  freshness : ((Topology.edge * Topology.edge) * freshness) list;
  attempts : int;
  faults : int;
  simulated_seconds : float;
}

let valid_rate_float r = Float.is_finite r && r >= 0.0 && r <= 1.0

(* A physical SRB fit: finite decay in [0,1] and a finite per-CNOT
   rate in [0,1].  Anything else means the experiment or the fitter
   failed, and must not reach the scheduler. *)
let valid_fit (f : Rb.fit) =
  Float.is_finite f.Rb.alpha
  && f.Rb.alpha >= 0.0
  && f.Rb.alpha <= 1.0
  && Float.is_finite f.Rb.error_rate
  && f.Rb.error_rate >= 0.0
  && f.Rb.error_rate <= 1.0

let characterize_resilient ?(params = Rb.default_params) ?(jobs = 1) ?(retry = default_retry)
    ?(previous = Crosstalk.empty) ?inject ~rng device (cplan : plan) =
  if retry.max_attempts < 1 then invalid_arg "Policy.characterize_resilient: max_attempts < 1";
  let inject =
    match inject with Some f -> f | None -> fun ~experiment:_ ~attempt:_ -> None
  in
  let cal = Device.calibration device in
  let nexp = List.length cplan.experiments in
  (* Child streams, random-access so a retry of experiment [i] never
     perturbs the draws of experiment [j] (and the campaign stays
     deterministic at every [jobs]). *)
  let exp_rng i attempt = Rng.split_nth (Rng.split_nth rng i) attempt in
  let aux_rng = Rng.split_nth rng nexp in
  let independent_rng = Rng.split_nth aux_rng 0 in
  let backoff_rng = Rng.split_nth aux_rng 1 in
  let attempts = ref 0 in
  let faults = ref 0 in
  let simulated_seconds = ref 0.0 in
  let backoff_of a =
    let base =
      min retry.max_backoff_seconds
        (retry.base_backoff_seconds *. (retry.backoff_factor ** float_of_int a))
    in
    base *. (1.0 +. (retry.jitter *. Rng.unit_float backoff_rng))
  in
  let independent_cache : (Topology.edge, float) Hashtbl.t = Hashtbl.create 16 in
  let independent_of edge =
    match Hashtbl.find_opt independent_cache edge with
    | Some v -> v
    | None ->
      let fit = Rb.independent ~jobs device ~rng:(Rng.split independent_rng) ~params edge in
      let v =
        if valid_fit fit then fit.Rb.error_rate
        else (Calibration.gate cal edge).Calibration.cnot_error
      in
      Hashtbl.replace independent_cache edge v;
      v
  in
  let measurements = ref [] in
  let freshness = ref [] in
  List.iteri
    (fun i experiment ->
      let gates = List.concat_map (fun (e1, e2) -> [ e1; e2 ]) experiment in
      (* Timeout + bounded retry with exponential backoff: each
         attempt either yields a full set of validated fits or burns
         (simulated) wall-clock and tries again. *)
      let rec attempt_loop a =
        if a >= retry.max_attempts then None
        else begin
          incr attempts;
          if a > 0 then simulated_seconds := !simulated_seconds +. backoff_of (a - 1);
          match inject ~experiment:i ~attempt:a with
          | Some Inject_hang ->
            incr faults;
            simulated_seconds := !simulated_seconds +. retry.timeout_seconds;
            attempt_loop (a + 1)
          | fault ->
            let params_a =
              match fault with
              | Some (Inject_dropout keep) ->
                incr faults;
                let keep = Qcx_util.Stats.clamp ~lo:0.0 ~hi:1.0 keep in
                { params with Rb.trials = max 16 (int_of_float (float_of_int params.Rb.trials *. keep)) }
              | _ -> params
            in
            let fits = Rb.run ~jobs device ~rng:(exp_rng i a) ~params:params_a gates in
            let fits =
              match fault with
              | Some (Inject_corrupt_rate bad) ->
                incr faults;
                (match fits with
                | f :: rest -> { f with Rb.error_rate = bad } :: rest
                | [] -> [])
              | _ -> fits
            in
            if fits <> [] && List.for_all valid_fit fits then Some (fits, a)
            else attempt_loop (a + 1)
        end
      in
      match attempt_loop 0 with
      | Some (fits, attempts_used) ->
        let rate_of edge =
          match List.find_opt (fun f -> f.Rb.edge = Topology.normalize edge) fits with
          | Some f -> f.Rb.error_rate
          | None -> invalid_arg "Policy.characterize_resilient: missing fit"
        in
        let fresh = if attempts_used = 0 then Fresh else Recovered attempts_used in
        List.iter
          (fun (e1, e2) ->
            let record target spectator =
              let raw_conditional = rate_of target in
              let raw_independent = max 1e-4 (independent_of target) in
              let ratio = max 1.0 (raw_conditional /. raw_independent) in
              let anchored = (Calibration.gate cal target).Calibration.cnot_error *. ratio in
              measurements :=
                {
                  target;
                  spectator;
                  conditional = Qcx_util.Stats.clamp ~lo:0.0 ~hi:1.0 anchored;
                  raw_conditional;
                  raw_independent;
                }
                :: !measurements;
              freshness := ((target, spectator), fresh) :: !freshness
            in
            record (Topology.normalize e1) (Topology.normalize e2);
            record (Topology.normalize e2) (Topology.normalize e1))
          experiment
      | None ->
        (* Exhausted: serve yesterday's stored value when one exists,
           otherwise assume no crosstalk beyond the calibration rate.
           Either way the pair is marked stale, and the compile goes
           on. *)
        List.iter
          (fun (e1, e2) ->
            let record target spectator =
              let target = Topology.normalize target
              and spectator = Topology.normalize spectator in
              let cal_rate = (Calibration.gate cal target).Calibration.cnot_error in
              let conditional, fresh =
                match Crosstalk.conditional previous ~target ~spectator with
                | Some r when valid_rate_float r -> (r, Stale_previous)
                | _ -> (cal_rate, Stale_calibration)
              in
              measurements :=
                {
                  target;
                  spectator;
                  conditional;
                  raw_conditional = conditional;
                  raw_independent = cal_rate;
                }
                :: !measurements;
              freshness := ((target, spectator), fresh) :: !freshness
            in
            record e1 e2;
            record e2 e1)
          experiment)
    cplan.experiments;
  let xtalk =
    List.fold_left
      (fun acc m -> Crosstalk.set acc ~target:m.target ~spectator:m.spectator m.conditional)
      Crosstalk.empty !measurements
  in
  {
    outcome =
      {
        xtalk;
        measurements = List.rev !measurements;
        experiments = experiment_count cplan;
      };
    freshness = List.rev !freshness;
    attempts = !attempts;
    faults = !faults;
    simulated_seconds = !simulated_seconds;
  }

let high_pairs_of_outcome ?(threshold = 3.0) device outcome =
  Crosstalk.high_crosstalk_pairs outcome.xtalk (Device.calibration device) ~threshold

(* ---- Opt-3 incremental re-characterization ----

   One code path shared by the offline tool (qcx_characterize
   --incremental) and the service calibrator: re-measure only the
   pairs the last-good snapshot flags as high-crosstalk, run them
   through the resilient front end, and merge the fresh rates over
   the last-good data.  Falls back to a full one-hop bin-packed pass
   when the snapshot flags nothing (first epoch, or a wiped device). *)

type incremental_mode = Flagged_only | Full_fallback

let incremental_mode_name = function
  | Flagged_only -> "flagged-only"
  | Full_fallback -> "full-fallback"

type incremental_outcome = {
  resilient : resilient_outcome;
  merged : Crosstalk.t;
  mode : incremental_mode;
  flagged : Binpack.pair list;
  run_executions : int;
  full_executions : int;
  cost_fraction : float;
}

let characterize_incremental ?(params = Rb.default_params) ?(jobs = 1) ?(retry = default_retry)
    ?(threshold = 3.0) ?inject ~rng device ~previous =
  let flagged = Crosstalk.high_crosstalk_pairs previous (Device.calibration device) ~threshold in
  (* Independent child streams so pricing the full plan never perturbs
     the measurement draws (and vice versa). *)
  let plan_rng = Rng.split_nth rng 0 in
  let cost_rng = Rng.split_nth rng 1 in
  let run_rng = Rng.split_nth rng 2 in
  let full_plan = plan ~rng:cost_rng device One_hop_binpacked in
  let mode, cplan =
    if flagged = [] then (Full_fallback, full_plan)
    else (Flagged_only, plan ~rng:plan_rng device (High_crosstalk_only flagged))
  in
  let resilient =
    characterize_resilient ~params ~jobs ~retry ~previous ?inject ~rng:run_rng device cplan
  in
  let merged =
    match mode with
    | Full_fallback -> resilient.outcome.xtalk
    | Flagged_only -> Crosstalk.merge previous resilient.outcome.xtalk
  in
  let per = Rb.experiment_executions params in
  let run_executions = experiment_count cplan * per in
  let full_executions = max 1 (experiment_count full_plan * per) in
  {
    resilient;
    merged;
    mode;
    flagged;
    run_executions;
    full_executions;
    cost_fraction = float_of_int run_executions /. float_of_int full_executions;
  }

let refresh ?params ?(jobs = 1) ?(threshold = 3.0) ~rng device ~previous =
  let flagged = Crosstalk.high_crosstalk_pairs previous (Device.calibration device) ~threshold in
  if flagged = [] then previous
  else begin
    let daily = plan ~rng device (High_crosstalk_only flagged) in
    let outcome = characterize ?params ~jobs ~rng device daily in
    Crosstalk.merge previous outcome.xtalk
  end
