module Device = Qcx_device.Device
module Topology = Qcx_device.Topology
module Calibration = Qcx_device.Calibration
module Crosstalk = Qcx_device.Crosstalk
module Rng = Qcx_util.Rng

type policy =
  | All_pairs
  | One_hop
  | One_hop_binpacked
  | High_crosstalk_only of Binpack.pair list

let policy_name = function
  | All_pairs -> "all-pairs"
  | One_hop -> "one-hop"
  | One_hop_binpacked -> "one-hop+binpack"
  | High_crosstalk_only _ -> "high-crosstalk-only"

type plan = { policy : policy; experiments : Binpack.pair list list }

let plan ?(min_separation = 2) ?(attempts = 32) ~rng device policy =
  let topo = Device.topology device in
  let experiments =
    match policy with
    | All_pairs -> List.map (fun p -> [ p ]) (Topology.parallel_gate_pairs topo)
    | One_hop -> List.map (fun p -> [ p ]) (Topology.one_hop_gate_pairs topo)
    | One_hop_binpacked ->
      Binpack.pack topo ~rng ~min_separation ~attempts (Topology.one_hop_gate_pairs topo)
    | High_crosstalk_only known -> Binpack.pack topo ~rng ~min_separation ~attempts known
  in
  { policy; experiments }

let experiment_count plan = List.length plan.experiments

let estimated_hours ?(sequences = 100) ?(trials = 1024) ?(seconds_per_execution = 0.00127) plan =
  float_of_int (experiment_count plan * sequences * trials) *. seconds_per_execution /. 3600.0

type measurement = {
  target : Topology.edge;
  spectator : Topology.edge;
  conditional : float;
  raw_conditional : float;
  raw_independent : float;
}

type outcome = {
  xtalk : Crosstalk.t;
  measurements : measurement list;
  experiments : int;
}

let characterize ?(params = Rb.default_params) ?(jobs = 1) ~rng device (cplan : plan) =
  let cal = Device.calibration device in
  (* Independent rates, measured once per distinct gate by standard
     two-qubit RB (on real systems these come with the daily
     calibration). *)
  let independent_cache : (Topology.edge, float) Hashtbl.t = Hashtbl.create 16 in
  let independent_of edge =
    match Hashtbl.find_opt independent_cache edge with
    | Some v -> v
    | None ->
      let fit = Rb.independent ~jobs device ~rng ~params edge in
      Hashtbl.replace independent_cache edge fit.Rb.error_rate;
      fit.Rb.error_rate
  in
  let measurements = ref [] in
  List.iter
    (fun experiment ->
      let gates = List.concat_map (fun (e1, e2) -> [ e1; e2 ]) experiment in
      let fits = Rb.run ~jobs device ~rng ~params gates in
      let rate_of edge =
        match List.find_opt (fun f -> f.Rb.edge = Topology.normalize edge) fits with
        | Some f -> f.Rb.error_rate
        | None -> invalid_arg "Policy.characterize: missing fit"
      in
      List.iter
        (fun (e1, e2) ->
          let record target spectator =
            let raw_conditional = rate_of target in
            let raw_independent = max 1e-4 (independent_of target) in
            (* Ratio anchoring: both raw rates carry the same additive
               idle-decoherence inflation, so their ratio is the clean
               crosstalk signal; rescaling the daily calibration rate
               by it puts the estimate on the calibration scale the
               scheduler works in.  Flagging stored data at threshold
               t is then exactly the paper's raw-measured
               E(gi|gj) > t E(gi) test. *)
            let ratio = max 1.0 (raw_conditional /. raw_independent) in
            let anchored = (Calibration.gate cal target).Calibration.cnot_error *. ratio in
            measurements :=
              {
                target;
                spectator;
                conditional = Qcx_util.Stats.clamp ~lo:0.0 ~hi:1.0 anchored;
                raw_conditional;
                raw_independent;
              }
              :: !measurements
          in
          record (Topology.normalize e1) (Topology.normalize e2);
          record (Topology.normalize e2) (Topology.normalize e1))
        experiment)
    cplan.experiments;
  let xtalk =
    List.fold_left
      (fun acc m -> Crosstalk.set acc ~target:m.target ~spectator:m.spectator m.conditional)
      Crosstalk.empty !measurements
  in
  { xtalk; measurements = List.rev !measurements; experiments = experiment_count cplan }

let high_pairs_of_outcome ?(threshold = 3.0) device outcome =
  Crosstalk.high_crosstalk_pairs outcome.xtalk (Device.calibration device) ~threshold

let refresh ?params ?(jobs = 1) ?(threshold = 3.0) ~rng device ~previous =
  let flagged = Crosstalk.high_crosstalk_pairs previous (Device.calibration device) ~threshold in
  if flagged = [] then previous
  else begin
    let daily = plan ~rng device (High_crosstalk_only flagged) in
    let outcome = characterize ?params ~jobs ~rng device daily in
    Crosstalk.merge previous outcome.xtalk
  end
