(** The four crosstalk-characterization policies of Sections 5 and 10:
    all-pairs SRB, 1-hop pairs only (Opt 1), 1-hop with bin-packed
    parallel experiments (Opt 2), and daily re-measurement of known
    high-crosstalk pairs only (Opt 3).

    A {e plan} is a list of experiments, each a set of SRB gate pairs
    measured in one run.  [characterize] executes a plan on the
    simulated device and produces the conditional-error data the
    scheduler consumes.  [estimated_hours] prices a plan with the
    paper's cost model (sequences x trials x per-execution latency),
    reproducing Figure 10 without burning simulation time.

    Conditional rates are stored {e ratio-anchored}: the measured
    ratio [E(gi|gj) / E(gi)] (both rates measured by the same
    protocol, so idle-decoherence inflation cancels) rescales the
    daily calibration rate [E_cal(gi)].  This keeps characterized
    data on the calibration scale the scheduler's independent rates
    come from, and makes threshold flagging of the stored data
    coincide with the paper's raw-measured ratio test. *)

type policy =
  | All_pairs
  | One_hop
  | One_hop_binpacked
  | High_crosstalk_only of Binpack.pair list
      (** the previously known high-crosstalk pairs to re-measure *)

val policy_name : policy -> string

type plan = { policy : policy; experiments : Binpack.pair list list }

val plan :
  ?min_separation:int ->
  ?attempts:int ->
  rng:Qcx_util.Rng.t ->
  Qcx_device.Device.t ->
  policy ->
  plan
(** Defaults: [min_separation = 2], [attempts = 32] (bin-packing
    restarts).  [All_pairs] and [One_hop] plans put one pair per
    experiment; the other two bin-pack. *)

val experiment_count : plan -> int

val estimated_hours :
  ?sequences:int -> ?trials:int -> ?seconds_per_execution:float -> plan -> float
(** Machine-time estimate.  Defaults are the paper's: 100 random
    sequences and 1024 trials per experiment, at 1.27 ms per
    execution (8 h / 22.6 M executions). *)

type measurement = {
  target : Qcx_device.Topology.edge;
  spectator : Qcx_device.Topology.edge;
  conditional : float;  (** baseline-anchored, fed to the scheduler *)
  raw_conditional : float;  (** SRB-measured E(target|spectator) *)
  raw_independent : float;  (** RB-measured E(target) *)
}

type outcome = {
  xtalk : Qcx_device.Crosstalk.t;
  measurements : measurement list;
  experiments : int;
}

val characterize :
  ?params:Rb.params ->
  ?jobs:int ->
  rng:Qcx_util.Rng.t ->
  Qcx_device.Device.t ->
  plan ->
  outcome
(** Run every experiment of the plan via {!Rb.run} (default
    [Rb.default_params]) plus one independent RB per distinct gate
    (cached; the paper gets these from daily calibration, so they are
    not charged to the plan's experiment count).  [jobs] (default 1)
    parallelizes the underlying noisy executions across domains
    without changing any measured value. *)

(** {2 Resilient characterization}

    The operational loop's fault-tolerant front end: identical
    measurement physics to {!characterize}, wrapped in per-experiment
    timeout/retry with validation and stale-data fallback so that a
    broken experiment can never poison — or abort — the day's
    characterization. *)

type injected_fault =
  | Inject_hang  (** the experiment never returns (consumes the timeout) *)
  | Inject_dropout of float
      (** only this fraction of the requested shots arrives *)
  | Inject_corrupt_rate of float
      (** the fitter returns this (typically non-physical) rate *)

type retry = {
  max_attempts : int;  (** total attempts per experiment, >= 1 *)
  timeout_seconds : float;  (** simulated cost of a hung experiment *)
  base_backoff_seconds : float;
  backoff_factor : float;  (** exponential: base * factor^attempt *)
  max_backoff_seconds : float;
  jitter : float;  (** backoff is scaled by 1 + jitter * U[0,1) *)
}

val default_retry : retry
(** 3 attempts, 30 s timeout, 2 s backoff doubling up to 60 s, 0.5
    jitter. *)

type freshness =
  | Fresh  (** first attempt succeeded *)
  | Recovered of int  (** succeeded after this many failed attempts *)
  | Stale_previous  (** serving the previous characterization's value *)
  | Stale_calibration  (** no previous value; calibration rate assumed *)

val freshness_name : freshness -> string

type resilient_outcome = {
  outcome : outcome;
  freshness : ((Qcx_device.Topology.edge * Qcx_device.Topology.edge) * freshness) list;
      (** per directed (target, spectator) pair of the plan *)
  attempts : int;  (** experiment attempts run in total *)
  faults : int;  (** injected faults encountered *)
  simulated_seconds : float;  (** timeout + backoff wall-clock charged *)
}

val characterize_resilient :
  ?params:Rb.params ->
  ?jobs:int ->
  ?retry:retry ->
  ?previous:Qcx_device.Crosstalk.t ->
  ?inject:(experiment:int -> attempt:int -> injected_fault option) ->
  rng:Qcx_util.Rng.t ->
  Qcx_device.Device.t ->
  plan ->
  resilient_outcome
(** Run the plan like {!characterize}, but survive a faulty backend:

    - each experiment gets [retry.max_attempts] tries with exponential
      backoff (+ jitter) between them; a hang costs
      [retry.timeout_seconds] of (simulated) wall-clock;
    - every fitted rate is validated (finite, in [0,1], sane decay)
      before ingestion — non-physical fits trigger a retry;
    - an experiment that stays broken falls back to [previous]'s
      stored conditional rate, or the calibration independent rate
      when no previous value exists, and is reported stale.

    [inject] is the fault-injection hook (see [Qcx_faults.Fault_plan]);
    [None] (default) means a perfect backend.  Draws use random-access
    child streams of [rng], so results are deterministic for a given
    plan and fault sequence at every [jobs]. *)

(** {2 Opt-3 incremental re-characterization}

    The shared code path behind [qcx_characterize --incremental] and
    the serving layer's calibrator: flag, re-measure, merge — with the
    resilient front end and an explicit cost accounting against the
    full one-hop bin-packed pass it replaces. *)

type incremental_mode =
  | Flagged_only  (** only the snapshot's high-crosstalk pairs re-measured *)
  | Full_fallback
      (** nothing flagged (first epoch / wiped device): full one-hop
          bin-packed pass *)

val incremental_mode_name : incremental_mode -> string

type incremental_outcome = {
  resilient : resilient_outcome;  (** the measurement run that was executed *)
  merged : Qcx_device.Crosstalk.t;
      (** fresh rates merged over [previous] (fresh entries win);
          in [Full_fallback] mode this is the fresh data alone *)
  mode : incremental_mode;
  flagged : Binpack.pair list;  (** pairs the previous snapshot flagged *)
  run_executions : int;  (** executions charged to the run actually made *)
  full_executions : int;  (** executions a full re-characterization costs *)
  cost_fraction : float;  (** [run_executions / full_executions] *)
}

val characterize_incremental :
  ?params:Rb.params ->
  ?jobs:int ->
  ?retry:retry ->
  ?threshold:float ->
  ?inject:(experiment:int -> attempt:int -> injected_fault option) ->
  rng:Qcx_util.Rng.t ->
  Qcx_device.Device.t ->
  previous:Qcx_device.Crosstalk.t ->
  incremental_outcome
(** The daily Optimization-3 workflow through the resilient front end:
    bin-pack and re-measure only the pairs [previous] flags at
    [threshold] (default 3), with timeout/retry/fallback per
    experiment, and merge the fresh conditional rates over the old
    data.  When [previous] flags nothing the full [One_hop_binpacked]
    plan runs instead ([Full_fallback]) so a blank device still gets
    characterized.  The full plan is always priced (never run in
    flagged mode) to report [cost_fraction].  Plan construction,
    pricing and measurement use independent child streams of [rng],
    so results are deterministic at every [jobs]. *)

val refresh :
  ?params:Rb.params ->
  ?jobs:int ->
  ?threshold:float ->
  rng:Qcx_util.Rng.t ->
  Qcx_device.Device.t ->
  previous:Qcx_device.Crosstalk.t ->
  Qcx_device.Crosstalk.t
(** The daily Optimization-3 workflow in one call: bin-pack and
    re-measure only the pairs the [previous] characterization flags at
    [threshold] (default 3), and merge the fresh conditional rates over
    the old data (fresh entries win).  Cheap enough to run every day;
    the stale entries for quiet pairs only matter if a pair later
    crosses the threshold, which the periodic full pass catches. *)

val high_pairs_of_outcome :
  ?threshold:float -> Qcx_device.Device.t -> outcome -> Binpack.pair list
(** Flag pairs whose characterized conditional rate exceeds
    [threshold] (default 3) times the calibration independent rate —
    the Figure 3 red-edge criterion on characterized data. *)
