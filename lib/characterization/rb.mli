(** Two-qubit randomized benchmarking (RB) and simultaneous RB (SRB)
    on the simulated device — the paper's Section 4.2/8.1 measurement
    machinery, reimplementing what IBM Qiskit Ignis provided.

    One {e run} benchmarks any number of disjoint CNOT gates at once:
    a single gate gives standard two-qubit RB (the independent error
    rate E(g)); two gates at 1-hop separation give SRB (the
    conditional rates E(gi|gj) and E(gj|gi)); several mutually distant
    pairs in one run realize the bin-packed parallel experiments of
    characterization Optimization 2.

    Protocol per sequence length m: each benchmarked gate pair gets m
    uniformly random 2-qubit Cliffords, aligned across pairs with
    barriers (as Ignis does), followed by the exact single-Clifford
    inverse; all qubits are measured.  Survival is the probability of
    reading 00 on the pair.  Fitting [A alpha^m + B] gives the error
    per Clifford [3/4 (1 - alpha)], converted to CNOT error by
    dividing by the sequence's actual average CNOTs per Clifford. *)

type params = {
  lengths : int list;  (** Clifford sequence lengths, e.g. [2;...;40] *)
  seeds : int;  (** random sequences per length *)
  trials : int;  (** executions per sequence *)
}

val default_params : params
(** [lengths = [1; 2; 4; 8; 16; 32]], [seeds = 6], [trials = 192] —
    simulation-friendly; the paper's hardware settings (100 seeds,
    1024 trials) are [paper_params]. *)

val paper_params : params

type fit = {
  edge : Qcx_device.Topology.edge;
  alpha : float;
  epc : float;  (** error per Clifford *)
  error_rate : float;  (** inferred CNOT error rate *)
  points : (float * float) list;  (** (m, mean survival) *)
}

val run :
  ?jobs:int ->
  Qcx_device.Device.t ->
  rng:Qcx_util.Rng.t ->
  params:params ->
  Qcx_device.Topology.edge list ->
  fit list
(** Benchmark the given CNOT gates simultaneously.  Gates must be
    pairwise disjoint device edges.  Returns one fit per gate, in
    input order.  [jobs] (default 1) parallelizes each sequence's
    noisy trials across domains via {!Qcx_noise.Exec.run}; fits are
    bit-identical for every [jobs] value. *)

val independent :
  ?jobs:int ->
  Qcx_device.Device.t ->
  rng:Qcx_util.Rng.t ->
  params:params ->
  Qcx_device.Topology.edge ->
  fit
(** Standard two-qubit RB of a single gate: E(g). *)

type interleaved = {
  standard : fit;  (** reference RB decay *)
  interleaved : fit;  (** decay with the target CNOT interleaved *)
  gate_error : float;  (** isolated error of the interleaved gate *)
}

val interleaved :
  ?jobs:int ->
  Qcx_device.Device.t ->
  rng:Qcx_util.Rng.t ->
  params:params ->
  Qcx_device.Topology.edge ->
  interleaved
(** Interleaved randomized benchmarking (Magesan et al., PRL 2012):
    run standard RB and a second set of sequences with the target CNOT
    inserted after every random Clifford; the ratio of decay
    parameters isolates that specific gate's error,
    [(d-1)/d * (1 - alpha_int / alpha_std)] — a sharper estimate than
    dividing the average EPC by 1.5, used as a cross-check on
    {!independent}. *)

type fit1 = {
  qubit : int;
  alpha1 : float;
  epc1 : float;  (** error per 1q Clifford *)
  gate_error : float;  (** inferred per-gate error rate *)
  points1 : (float * float) list;
}

val run_single :
  ?jobs:int ->
  Qcx_device.Device.t ->
  rng:Qcx_util.Rng.t ->
  params:params ->
  int list ->
  fit1 list
(** Standard single-qubit RB on each listed qubit, all driven in the
    same circuits (they are independent wires).  Confirms the paper's
    premise that 1q error rates are an order of magnitude below CNOT
    rates and can be ignored by the crosstalk model (Section 7.2). *)

val experiment_executions : params -> int
(** Sequences x trials — the execution count charged per experiment in
    the characterization time model. *)
