type edge = int * int

type t = {
  nqubits : int;
  edges : edge list;
  adj : int list array;
  dist : int array array;  (** all-pairs hop distances *)
}

let normalize (a, b) = if a <= b then (a, b) else (b, a)

let bfs_distances adj nqubits src =
  let dist = Array.make nqubits max_int in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      adj.(u)
  done;
  dist

let create ~nqubits ~edges =
  if nqubits <= 0 then invalid_arg "Topology.create: nqubits must be positive";
  let normalized = List.map normalize edges in
  let sorted = List.sort_uniq compare normalized in
  if List.length sorted <> List.length normalized then
    invalid_arg "Topology.create: duplicate edges";
  List.iter
    (fun (a, b) ->
      if a = b then invalid_arg "Topology.create: self loop";
      if a < 0 || b >= nqubits then invalid_arg "Topology.create: endpoint out of range")
    sorted;
  let adj = Array.make nqubits [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    sorted;
  Array.iteri (fun i l -> adj.(i) <- List.sort compare l) adj;
  let dist = Array.init nqubits (bfs_distances adj nqubits) in
  { nqubits; edges = sorted; adj; dist }

let nqubits t = t.nqubits
let edges t = t.edges
let has_edge t e = List.mem (normalize e) t.edges

let check_qubit t q =
  if q < 0 || q >= t.nqubits then invalid_arg "Topology: qubit out of range"

let neighbors t q =
  check_qubit t q;
  t.adj.(q)

let degree t q = List.length (neighbors t q)

let qubit_distance t a b =
  check_qubit t a;
  check_qubit t b;
  t.dist.(a).(b)

let shortest_path t src dst =
  check_qubit t src;
  check_qubit t dst;
  if t.dist.(src).(dst) = max_int then []
  else begin
    (* Walk from dst back to src following decreasing distance-to-src.
       Ties pick the highest-numbered qubit — on the IBMQ 20-qubit
       layouts this matches the paths the paper's examples take
       (e.g. 0 -> 13 through 5, 10, 11, 12 on Poughkeepsie, Fig. 6). *)
    let rec walk cur acc =
      if cur = src then cur :: acc
      else
        let candidates =
          List.filter (fun v -> t.dist.(src).(v) = t.dist.(src).(cur) - 1) t.adj.(cur)
        in
        let next = List.fold_left max (List.hd candidates) candidates in
        walk next (cur :: acc)
    in
    walk dst []
  end

let gate_distance t (a1, a2) (b1, b2) =
  let d p q = qubit_distance t p q in
  min (min (d a1 b1) (d a1 b2)) (min (d a2 b1) (d a2 b2))

let parallel_gate_pairs t =
  let rec pairs = function
    | [] -> []
    | e :: rest ->
      List.filter_map
        (fun e' ->
          let (a, b), (c, d) = (e, e') in
          if a = c || a = d || b = c || b = d then None else Some (e, e'))
        rest
      @ pairs rest
  in
  pairs t.edges

let one_hop_gate_pairs t =
  (* A partner at gate distance 1 must touch a neighbor of one of our
     endpoints, so enumerate edges incident to the 2-hop neighborhood
     instead of filtering all E^2 pairs — on a 433-qubit heavy-hex map
     that is ~500 local scans instead of ~250k distance checks.  The
     output (sorted (e, e') with e < e') matches the old
     filter-over-[parallel_gate_pairs] order exactly; seeded consumers
     ([Presets.grid]'s shuffled ground truth) depend on it. *)
  let incident = Array.make t.nqubits [] in
  List.iter
    (fun (a, b) ->
      incident.(a) <- (a, b) :: incident.(a);
      incident.(b) <- (a, b) :: incident.(b))
    t.edges;
  List.concat_map
    (fun e ->
      let a, b = e in
      let candidates =
        List.concat_map
          (fun u -> List.concat_map (fun v -> incident.(v)) t.adj.(u))
          [ a; b ]
      in
      List.filter_map
        (fun e' ->
          if compare e' e > 0 && gate_distance t e e' = 1 then Some (e, e') else None)
        (List.sort_uniq compare candidates))
    t.edges
