module Rng = Qcx_util.Rng
module Stats = Qcx_util.Stats

let us = 1000.0 (* microseconds in ns *)

(* The 20-qubit "ladder" layout shared by Poughkeepsie and
   Johannesburg: four rows of five qubits, vertical couplers on the
   outer columns.  Poughkeepsie adds the (7,12) middle rung, which is
   what brings its parallel-CNOT pair count to the paper's 221. *)
let ladder_edges =
  [
    (0, 1); (1, 2); (2, 3); (3, 4);
    (5, 6); (6, 7); (7, 8); (8, 9);
    (10, 11); (11, 12); (12, 13); (13, 14);
    (15, 16); (16, 17); (17, 18); (18, 19);
    (0, 5); (4, 9); (5, 10); (9, 14); (10, 15); (14, 19);
  ]

let poughkeepsie_edges = (7, 12) :: ladder_edges
let johannesburg_edges = ladder_edges

(* Boeblingen / Almaden family layout. *)
let boeblingen_edges =
  [
    (0, 1); (1, 2); (2, 3); (3, 4);
    (5, 6); (6, 7); (7, 8); (8, 9);
    (10, 11); (11, 12); (12, 13); (13, 14);
    (15, 16); (16, 17); (17, 18); (18, 19);
    (1, 6); (3, 8); (5, 10); (7, 12); (9, 14); (11, 16); (13, 18);
  ]

let random_qubit_cal rng =
  (* The paper quotes 10-100 us coherence on these systems. *)
  let t1 = Rng.float rng 60.0 +. 40.0 in
  let t2 = Stats.clamp ~lo:10.0 ~hi:(2.0 *. t1) (t1 *. (0.7 +. Rng.float rng 0.7)) in
  {
    Calibration.t1 = t1 *. us;
    t2 = t2 *. us;
    readout_error = Stats.clamp ~lo:0.01 ~hi:0.12 (Rng.gaussian rng ~mu:0.048 ~sigma:0.02);
    single_qubit_error = Stats.clamp ~lo:2e-4 ~hi:1e-3 (Rng.gaussian rng ~mu:6e-4 ~sigma:2e-4);
    single_qubit_duration = 50.0;
    readout_duration = 3500.0;
  }

let random_gate_cal rng =
  {
    Calibration.cnot_error =
      Stats.clamp ~lo:0.005 ~hi:0.065 (Rng.gaussian rng ~mu:0.018 ~sigma:0.008);
    cnot_duration = 250.0 +. float_of_int (10 * Rng.int rng 31) (* 250-550 ns *);
  }

let build_calibration ~seed ~nqubits ~edges =
  let rng = Rng.create seed in
  let qubits = Array.init nqubits (fun _ -> random_qubit_cal rng) in
  let gates = List.map (fun e -> (Topology.normalize e, random_gate_cal rng)) edges in
  Calibration.create ~qubits ~gates

(* Ground-truth crosstalk: pairs given as (edge1, edge2, ratio1, ratio2)
   meaning E(e1|e2) = ratio1 * E(e1) and E(e2|e1) = ratio2 * E(e2). *)
let build_ground_truth cal pairs =
  List.fold_left
    (fun acc (e1, e2, r1, r2) ->
      let independent e = (Calibration.gate cal e).Calibration.cnot_error in
      let cap x = Stats.clamp ~lo:0.0 ~hi:0.6 x in
      Crosstalk.set_symmetric acc e1 e2 (cap (r1 *. independent e1)) (cap (r2 *. independent e2)))
    Crosstalk.empty pairs

let make_device ~name ~seed ~edges ~xtalk_pairs ~tweak_cal =
  let nqubits = 20 in
  let topology = Topology.create ~nqubits ~edges in
  let calibration = tweak_cal (build_calibration ~seed ~nqubits ~edges) in
  let ground_truth = build_ground_truth calibration xtalk_pairs in
  Device.create ~name ~topology ~calibration ~ground_truth

(* Pin a gate's independent error so the paper's flagship ratios land
   where Figure 3 describes them (e.g. CNOT 10,15 at 1% independent,
   11% conditional on Poughkeepsie). *)
let pin_gate_error cal edge error =
  let g = Calibration.gate cal edge in
  Calibration.with_gate cal edge { g with Calibration.cnot_error = error }

let pin_qubit_t1 cal q t1_ns =
  let qc = Calibration.qubit cal q in
  Calibration.with_qubit cal q { qc with Calibration.t1 = t1_ns; t2 = min qc.Calibration.t2 t1_ns }

let poughkeepsie () =
  make_device ~name:"IBMQ Poughkeepsie" ~seed:0x9A11 ~edges:poughkeepsie_edges
    ~tweak_cal:(fun cal ->
      let cal = pin_gate_error cal (10, 15) 0.01 in
      let cal = pin_gate_error cal (11, 12) 0.015 in
      (* Qubit 10's < 6 us coherence is load-bearing for the Fig. 6
         ordering example. *)
      pin_qubit_t1 cal 10 (5.8 *. us))
    ~xtalk_pairs:
      [
        (* The five high-crosstalk pairs of Fig. 3(a).  Ratios are the
           physical (full-overlap) conditional/independent ratios; SRB
           observes them diluted by the ~50% CNOT duty cycle within
           aligned Clifford layers, landing in the 3-11x window the
           paper reports. *)
        ((10, 15), (11, 12), 20.0, 11.0);
        ((5, 10), (11, 12), 14.0, 10.0);
        ((13, 14), (18, 19), 7.0, 9.0);
        ((7, 12), (13, 14), 7.0, 7.0);
        ((11, 12), (13, 14), 6.0, 6.0);
        (* Weak pairs that must stay under the reporting bar. *)
        ((0, 1), (5, 6), 2.0, 1.8);
        ((3, 4), (8, 9), 1.8, 1.6);
      ]

let johannesburg () =
  make_device ~name:"IBMQ Johannesburg" ~seed:0x10AA ~edges:johannesburg_edges
    ~tweak_cal:Fun.id
    ~xtalk_pairs:
      [
        ((0, 1), (5, 6), 11.0, 7.0);
        ((5, 10), (6, 7), 9.0, 7.0);
        ((10, 15), (11, 12), 13.0, 9.0);
        ((8, 9), (13, 14), 7.0, 7.0);
        ((13, 14), (18, 19), 2.0, 2.2);
        ((15, 16), (10, 11), 1.7, 1.9);
      ]

let boeblingen () =
  make_device ~name:"IBMQ Boeblingen" ~seed:0xB0EB ~edges:boeblingen_edges
    ~tweak_cal:Fun.id
    ~xtalk_pairs:
      [
        ((1, 6), (2, 3), 10.0, 8.0);
        ((5, 6), (7, 8), 9.0, 7.0);
        ((7, 12), (8, 9), 11.0, 9.0);
        ((11, 16), (12, 13), 16.0, 7.0);
        ((13, 18), (11, 12), 7.0, 7.0);
        ((15, 16), (17, 18), 6.0, 9.0);
        ((10, 11), (12, 13), 7.0, 7.0);
        ((16, 17), (18, 19), 6.0, 7.0);
        ((3, 8), (6, 7), 2.0, 2.0);
        ((9, 14), (12, 13), 1.8, 1.7);
      ]

let all () = [ poughkeepsie (); johannesburg (); boeblingen () ]


let example_6q () =
  (* Figure 1(a): qubits 0..5, grid edges, crosstalk between CNOT 0,1
     and CNOT 2,3, low coherence on qubit 2. *)
  let edges = [ (0, 1); (1, 2); (2, 3); (0, 4); (4, 5); (3, 5) ] in
  let topology = Topology.create ~nqubits:6 ~edges in
  let rng = Rng.create 61 in
  let qubits =
    Array.init 6 (fun q ->
        let base = random_qubit_cal rng in
        if q = 2 then { base with Calibration.t1 = 7.0 *. us; t2 = 6.0 *. us } else base)
  in
  let gates = List.map (fun e -> (Topology.normalize e, random_gate_cal rng)) edges in
  let calibration = Calibration.create ~qubits ~gates in
  let ground_truth = build_ground_truth calibration [ ((0, 1), (2, 3), 12.0, 9.0) ] in
  Device.create ~name:"example-6q" ~topology ~calibration ~ground_truth

let linear n =
  let edges = List.init (n - 1) (fun i -> (i, i + 1)) in
  let topology = Topology.create ~nqubits:n ~edges in
  let qubits =
    Array.init n (fun _ ->
        {
          Calibration.t1 = 70.0 *. us;
          t2 = 70.0 *. us;
          readout_error = 0.03;
          single_qubit_error = 5e-4;
          single_qubit_duration = 50.0;
          readout_duration = 3500.0;
        })
  in
  let gates =
    List.map
      (fun e -> (Topology.normalize e, { Calibration.cnot_error = 0.015; cnot_duration = 300.0 }))
      edges
  in
  let calibration = Calibration.create ~qubits ~gates in
  Device.create ~name:(Printf.sprintf "linear-%d" n) ~topology ~calibration
    ~ground_truth:Crosstalk.empty

(* Seeded synthetic device: random calibration plus a random set of
   1-hop high-crosstalk pairs as ground truth.  The RNG draw order
   (qubits, then gates in edge order, then the pair shuffle and
   ratios) is shared by [grid] and [heavy_hex] and must stay stable —
   the generated devices are reproducible fixtures. *)
let synthetic_device ~name ~seed ~xtalk_pairs topology =
  let nqubits = Topology.nqubits topology in
  let edges = Topology.edges topology in
  let rng = Rng.create seed in
  let qubits = Array.init nqubits (fun _ -> random_qubit_cal rng) in
  let gates = List.map (fun e -> (Topology.normalize e, random_gate_cal rng)) edges in
  let calibration = Calibration.create ~qubits ~gates in
  let wanted = match xtalk_pairs with Some k -> k | None -> max 1 (nqubits / 8) in
  let one_hop = Array.of_list (Topology.one_hop_gate_pairs topology) in
  Rng.shuffle rng one_hop;
  let chosen = Array.to_list (Array.sub one_hop 0 (min wanted (Array.length one_hop))) in
  let pairs =
    List.map
      (fun (e1, e2) ->
        (e1, e2, 5.0 +. Rng.float rng 10.0, 5.0 +. Rng.float rng 10.0))
      chosen
  in
  let ground_truth = build_ground_truth calibration pairs in
  Device.create ~name ~topology ~calibration ~ground_truth

let grid ?(seed = 0x612D) ?xtalk_pairs ~rows ~cols () =
  if rows < 2 || cols < 2 then invalid_arg "Presets.grid: need at least 2x2";
  let nqubits = rows * cols in
  let idx r c = (r * cols) + c in
  let edges =
    List.concat
      (List.init rows (fun r ->
           List.concat
             (List.init cols (fun c ->
                  (if c + 1 < cols then [ (idx r c, idx r (c + 1)) ] else [])
                  @ if r + 1 < rows then [ (idx r c, idx (r + 1) c) ] else []))))
  in
  let topology = Topology.create ~nqubits ~edges in
  synthetic_device ~name:(Printf.sprintf "grid-%dx%d" rows cols) ~seed ~xtalk_pairs topology

let heavy_hex ?seed ?xtalk_pairs ~cells ~rows () =
  (* IBM Falcon/Eagle-style heavy-hex lattice: [rows + 1] full-width
     qubit rows ("long rows") interleaved with [rows] sparse bridge
     rows of degree-2 qubits that provide the vertical couplers.  With
     [cells] hexagon columns the width is [4*cells + 3]; the top long
     row drops its last column and the bottom long row its first,
     matching the staggered boundary of the real devices.  Bridge
     qubits sit at columns 0, 4, 8, ... on even bridge rows and
     2, 6, 10, ... on odd ones.  (cells=3, rows=6) gives the 127-qubit
     Eagle map with 144 couplers; (cells=6, rows=12) gives 433 qubits
     (Osprey-sized). *)
  if cells < 1 || rows < 1 then invalid_arg "Presets.heavy_hex: need cells >= 1 and rows >= 1";
  let w = (4 * cells) + 3 in
  let next = ref 0 in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  let long = Array.init (rows + 1) (fun _ -> Array.make w (-1)) in
  let bridge = Array.init rows (fun _ -> Array.make w (-1)) in
  for k = 0 to rows do
    let cols =
      if k = 0 then List.init (w - 1) Fun.id
      else if k = rows then List.init (w - 1) (fun c -> c + 1)
      else List.init w Fun.id
    in
    List.iter (fun c -> long.(k).(c) <- fresh ()) cols;
    if k < rows then
      List.iter
        (fun i -> bridge.(k).((4 * i) + if k mod 2 = 0 then 0 else 2) <- fresh ())
        (List.init (cells + 1) Fun.id)
  done;
  let edges = ref [] in
  for k = rows downto 0 do
    for c = w - 2 downto 0 do
      if long.(k).(c) >= 0 && long.(k).(c + 1) >= 0 then
        edges := (long.(k).(c), long.(k).(c + 1)) :: !edges
    done
  done;
  for k = rows - 1 downto 0 do
    for c = w - 1 downto 0 do
      let b = bridge.(k).(c) in
      if b >= 0 then begin
        if long.(k + 1).(c) >= 0 then edges := (b, long.(k + 1).(c)) :: !edges;
        if long.(k).(c) >= 0 then edges := (long.(k).(c), b) :: !edges
      end
    done
  done;
  let topology = Topology.create ~nqubits:!next ~edges:!edges in
  let seed = match seed with Some s -> s | None -> 0x4EA6 + (31 * cells) + rows in
  synthetic_device ~name:(Printf.sprintf "heavy-hex-%d" !next) ~seed ~xtalk_pairs topology

let heavy_hex_127 () = heavy_hex ~cells:3 ~rows:6 ()
let heavy_hex_433 () = heavy_hex ~cells:6 ~rows:12 ()

let by_name n =
  let lower = String.lowercase_ascii n in
  match
    List.find_opt
      (fun d ->
        let full = String.lowercase_ascii (Device.name d) in
        full = lower || full = "ibmq " ^ lower)
      (all ())
  with
  | Some d -> Some d
  | None -> (
    match lower with
    | "heavy-hex-127" -> Some (heavy_hex_127 ())
    | "heavy-hex-433" -> Some (heavy_hex_433 ())
    | _ -> (
      (* Generated square grids answer to their own names: grid-RxC. *)
      match Scanf.sscanf lower "grid-%dx%d%!" (fun r c -> (r, c)) with
      | r, c when r >= 2 && c >= 2 -> Some (grid ~rows:r ~cols:c ())
      | _ -> None
      | exception _ -> None))

let swap_endpoints device =
  match Device.name device with
  | "IBMQ Poughkeepsie" ->
    [
      (0, 12); (0, 13); (1, 13); (4, 16); (5, 12); (6, 18); (7, 15); (7, 16); (8, 16);
      (8, 17); (9, 10); (10, 14); (11, 14); (12, 15); (13, 15); (13, 16); (13, 18);
    ]
  | "IBMQ Johannesburg" ->
    [ (0, 11); (10, 7); (6, 11); (10, 8); (11, 7); (0, 12); (7, 12); (8, 13); (9, 15) ]
  | "IBMQ Boeblingen" ->
    [
      (0, 11); (0, 12); (2, 7); (1, 9); (3, 7); (6, 16); (6, 15); (6, 17); (6, 18); (8, 16);
      (8, 15); (8, 17); (8, 19); (7, 16); (14, 16); (11, 19); (15, 19); (16, 19); (13, 16);
      (5, 13);
    ]
  | _ -> []

let qaoa_regions device =
  match Device.name device with
  | "IBMQ Poughkeepsie" ->
    [ [ 5; 10; 11; 12 ]; [ 7; 12; 13; 14 ]; [ 15; 10; 11; 12 ]; [ 11; 12; 13; 14 ] ]
  | "IBMQ Johannesburg" ->
    [ [ 1; 0; 5; 6 ]; [ 7; 6; 5; 10 ]; [ 15; 10; 11; 12 ]; [ 8; 9; 14; 13 ] ]
  | "IBMQ Boeblingen" ->
    [ [ 6; 1; 2; 3 ]; [ 5; 6; 7; 8 ]; [ 9; 8; 7; 12 ]; [ 16; 11; 12; 13 ] ]
  | _ -> []
