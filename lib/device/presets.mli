(** Models of the three 20-qubit IBMQ systems used in the paper's
    evaluation, plus small synthetic devices for tests and examples.

    Coupling maps are the publicly documented layouts.  Calibration
    values are drawn from the distributions the paper reports (CNOT
    error 0.5–6.5%, average 1.8%; readout error ~4.8%; T1/T2 in the
    tens of microseconds) with a fixed per-device seed, so the presets
    are deterministic.  Ground-truth crosstalk pairs are seeded to
    match the paper's observations — e.g. on Poughkeepsie the five
    high-crosstalk pairs of Figure 3(a), with CNOT 10,15 | CNOT 11,12
    at an ~11x conditional/independent ratio, and qubit 10 with the
    anomalously low ~6 us coherence that drives the Figure 6 ordering
    example.  Each device also carries a few sub-threshold (<3x)
    "weak" pairs that a correct characterization must NOT flag. *)

val poughkeepsie : unit -> Device.t
val johannesburg : unit -> Device.t
val boeblingen : unit -> Device.t

val all : unit -> Device.t list
(** The three systems above, in paper order. *)

val by_name : string -> Device.t option
(** Case-insensitive lookup ("poughkeepsie" | "johannesburg" |
    "boeblingen").  Also builds the generated large-device families on
    demand: "heavy-hex-127", "heavy-hex-433", and "grid-RxC" (e.g.
    "grid-6x6") with their default seeds. *)

val example_6q : unit -> Device.t
(** The 6-qubit machine of Figure 1(a): a 2x3 grid with one high
    crosstalk pair (CNOT 0,1 | CNOT 2,3) and low coherence on
    qubit 2. *)

val linear : int -> Device.t
(** A crosstalk-free linear chain of [n] qubits with uniform
    calibration — a clean baseline substrate for unit tests. *)

val grid : ?seed:int -> ?xtalk_pairs:int -> rows:int -> cols:int -> unit -> Device.t
(** A synthetic [rows x cols] 2D-grid device with randomly seeded
    calibration and [xtalk_pairs] random 1-hop high-crosstalk pairs
    (default: one per ~8 qubits).  Used to stress characterization and
    scheduling beyond the 20-qubit IBMQ presets (the scale bench runs
    a 6x6 grid). *)

val heavy_hex : ?seed:int -> ?xtalk_pairs:int -> cells:int -> rows:int -> unit -> Device.t
(** A synthetic IBM-style heavy-hex lattice with [cells] hexagon
    columns and [rows] bridge rows (width [4*cells + 3]; degree <= 3
    everywhere), seeded random calibration, and [xtalk_pairs] random
    1-hop high-crosstalk pairs (default: one per ~8 qubits).  The
    default seed varies with the dimensions so different sizes get
    independent calibrations. *)

val heavy_hex_127 : unit -> Device.t
(** [heavy_hex ~cells:3 ~rows:6 ()] — the 127-qubit Eagle-style map
    (144 couplers), the scale bench's main device. *)

val heavy_hex_433 : unit -> Device.t
(** [heavy_hex ~cells:6 ~rows:12 ()] — a 433-qubit Osprey-sized map. *)

val swap_endpoints : Device.t -> (int * int) list
(** The SWAP-circuit qubit-pair endpoints evaluated in Figure 5 for
    this device (the crosstalk-prone subset; 46 circuits across the
    three systems). *)

val qaoa_regions : Device.t -> int list list
(** The crosstalk-prone 4-qubit line regions used for the QAOA and
    Hidden Shift experiments (Figures 8 and 9); the Poughkeepsie list
    matches the paper's. *)
