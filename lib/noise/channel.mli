(** Stochastic (Pauli-twirled) noise channels.

    All channels are expressed as probabilistic Pauli insertions so
    that they apply identically to the stabilizer and statevector
    backends (a single Monte-Carlo trajectory picture). *)

type pauli = [ `X | `Y | `Z ]

val depol_param_of_error_rate : nqubits:int -> float -> float
(** Convert an RB-style gate error rate into the depolarizing
    probability to inject so that randomized benchmarking measures the
    given rate back.  RB reports [(d-1)/d * (1 - alpha)] per gate with
    [alpha = 1 - p]; hence [p = d/(d-1) * error]. *)

val sample_depolarizing1 : Qcx_util.Rng.t -> p:float -> pauli option
(** With probability [p], a uniformly random single-qubit Pauli
    error. *)

val sample_depolarizing2 : Qcx_util.Rng.t -> p:float -> (pauli option * pauli option) option
(** With probability [p], one of the 15 non-identity two-qubit Pauli
    errors, uniformly.  [None] means no error; the inner options give
    the per-qubit components (never both [None]). *)

type idle = { px : float; py : float; pz : float }
(** Pauli-twirled relaxation/dephasing over an idle window. *)

val idle_channel : t1:float -> t2:float -> duration:float -> idle
(** Twirled amplitude+phase damping for an idle of [duration] ns:
    [px = py = (1 - e^{-t/T1})/4],
    [pz = (1 - e^{-t/T2})/2 - (1 - e^{-t/T1})/4] (clamped at 0). *)

val scale_idle : idle -> xy:float -> z:float -> idle
(** [scale_idle ch ~xy ~z] multiplies the X/Y components by [xy] and
    the Z component by [z] (clamped to [0, 1]) — the hook by which
    dynamical decoupling models suppressed dephasing on protected
    spans ({!Qcx_mitigation.Dd}): echo sequences refocus the
    low-frequency dephasing behind [pz] but cannot undo T1 relaxation,
    so DD passes [xy = 1] and a sequence-dependent [z < 1].  Factors
    must be non-negative. *)

val sample_idle : Qcx_util.Rng.t -> idle -> pauli option

val idle_error_probability : idle -> float
(** Total probability that the idle channel applies any Pauli. *)
