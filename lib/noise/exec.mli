(** Schedule-aware Monte-Carlo execution — the stand-in for running a
    compiled program on the IBMQ hardware.

    A trajectory walks the schedule in time order and injects:
    - a depolarizing Pauli error after every gate, with the CNOT error
      probability raised to the device's hidden conditional rate when
      the CNOT overlaps in time with a crosstalking neighbour gate
      (the worst overlapping partner dominates — the paper's eq. 6
      observation that simultaneous triplets do not compound);
    - Pauli-twirled T1/T2 idle errors over every gap in a qubit's
      schedule between its first gate and its readout — reproducing
      the paper's lifetime decoherence model, including the rule that
      decoherence on a qubit only starts at its first gate;
    - readout bit flips at measurement.

    This is the only module (together with test oracles) that reads
    [Device.ground_truth]. *)

type backend =
  | Stabilizer  (** fast, Clifford-only *)
  | Statevector  (** any gate, up to ~20 qubits *)

type counts
(** Multiset of measured bitstrings. *)

val counts_total : counts -> int
val counts_get : counts -> string -> int
val counts_bindings : counts -> (string * int) list
(** Bitstrings are ordered with the lowest measured hardware qubit as
    the leftmost character. *)

val distribution : counts -> (string * float) list
(** Normalized frequencies. *)

val measured_qubits : Qcx_circuit.Circuit.t -> int list
(** Sorted hardware qubits with measurement operations. *)

val effective_cnot_error :
  Qcx_device.Device.t -> Qcx_circuit.Schedule.t -> int -> float
(** The true error probability the hardware applies to the given CNOT
    gate id under this schedule: independent rate plus the conditional
    excess of every overlapping crosstalk partner.  Exposed for tests
    and for the optimality oracle. *)

type protection = {
  p_qubit : int;  (** hardware qubit the span protects *)
  p_start : float;  (** span start, ns (schedule time) *)
  p_finish : float;  (** span end, ns *)
  p_xy : float;  (** factor on the idle channel's X/Y components *)
  p_z : float;  (** factor on the idle channel's Z (dephasing) component *)
}
(** A dynamical-decoupling protection span: idle gaps on [p_qubit]
    that fall entirely inside [[p_start, p_finish]] have their
    twirled idle channel scaled by {!Channel.scale_idle} with these
    factors.  Produced by {!Qcx_mitigation.Dd.pad} alongside the
    pulse-padded schedule: the inserted pulses carry ordinary gate
    error (the cost), the spans model the refocused dephasing (the
    benefit). *)

val run :
  ?jobs:int ->
  ?protection:protection list ->
  Qcx_device.Device.t ->
  Qcx_circuit.Schedule.t ->
  rng:Qcx_util.Rng.t ->
  trials:int ->
  backend:backend ->
  counts
(** Execute [trials] trajectories and tally measured bitstrings.
    Unmeasured circuits produce empty-string counts.  The simulation
    runs on the compacted set of used qubits, so 2-5 qubit programs on
    a 20-qubit device stay cheap.  Raises [Invalid_argument] if the
    stabilizer backend meets a non-Clifford gate.

    [jobs] (default 1) shards the trajectories over that many domains
    ({!Qcx_util.Pool}).  Trajectory [i] draws from the stream
    [Rng.split_nth base i] where [base] is a single [Rng.split] off
    the caller's generator, so for a fixed seed the counts are
    bit-identical for every [jobs] value. *)

val run_distribution :
  ?jobs:int ->
  ?protection:protection list ->
  Qcx_device.Device.t ->
  Qcx_circuit.Schedule.t ->
  rng:Qcx_util.Rng.t ->
  trajectories:int ->
  (string * float) list
(** Statevector-only variant of {!run} that averages each Monte-Carlo
    trajectory's {e exact} output distribution over the measured
    qubits (applying the per-qubit readout confusion analytically)
    instead of sampling one bitstring per trial.  Far lower variance
    per unit work — used for the cross-entropy experiments.  Requires
    at most 12 measured qubits.

    [jobs] parallelizes exactly as in {!run}: the set of per-trajectory
    contributions is identical for every [jobs] value (only the
    floating-point summation grouping differs, by one shard-merge
    rounding). *)

val run_ideal : Qcx_circuit.Circuit.t -> Qcx_statevector.State.t * int list
(** Noise-free statevector execution (measurements skipped); returns
    the state over the compacted qubits and the compaction map
    (hardware qubit of each simulated index).  Used for ideal
    distributions in cross-entropy scoring and tomography baselines. *)
