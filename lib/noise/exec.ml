module Rng = Qcx_util.Rng
module Pool = Qcx_util.Pool
module Circuit = Qcx_circuit.Circuit
module Gate = Qcx_circuit.Gate
module Schedule = Qcx_circuit.Schedule
module Device = Qcx_device.Device
module Topology = Qcx_device.Topology
module Calibration = Qcx_device.Calibration
module Crosstalk = Qcx_device.Crosstalk
module Tableau = Qcx_stabilizer.Tableau
module State = Qcx_statevector.State
module Gates = Qcx_linalg.Gates
module Cplx = Qcx_linalg.Cplx

type backend = Stabilizer | Statevector

type counts = { table : (string, int) Hashtbl.t; mutable total : int }

let counts_total c = c.total
let counts_get c k = Option.value ~default:0 (Hashtbl.find_opt c.table k)

let counts_bindings c =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.table [])

let distribution c =
  let n = float_of_int (max 1 c.total) in
  List.map (fun (k, v) -> (k, float_of_int v /. n)) (counts_bindings c)

let measured_qubits circuit =
  List.sort_uniq compare
    (List.concat_map
       (fun g -> if Gate.is_measure g then g.Gate.qubits else [])
       (Circuit.gates circuit))

let edge_of_cnot g =
  match g.Gate.qubits with
  | [ a; b ] -> Qcx_device.Topology.normalize (a, b)
  | _ -> invalid_arg "Exec: malformed 2-qubit gate"

(* One overlapping two-qubit partner of a gate: its time span and the
   edge it drives. *)
type span = { o_start : float; o_finish : float; spectator : Topology.edge }

(* Index every two-qubit gate's time-overlapping two-qubit partners in
   one sweep over the gates sorted by start time, instead of scanning
   the whole circuit per gate (the old O(G^2) plan build). *)
let overlap_index sched =
  let twoq =
    Array.of_list
      (List.filter_map
         (fun g ->
           if Gate.is_two_qubit g then
             let id = g.Gate.id in
             Some (id, Schedule.start sched id, Schedule.finish sched id, edge_of_cnot g)
           else None)
         (Circuit.gates (Schedule.circuit sched)))
  in
  Array.sort (fun (_, s1, _, _) (_, s2, _, _) -> compare s1 s2) twoq;
  let tbl : (int, span list) Hashtbl.t = Hashtbl.create (Array.length twoq) in
  let add id sp =
    Hashtbl.replace tbl id (sp :: Option.value ~default:[] (Hashtbl.find_opt tbl id))
  in
  let n = Array.length twoq in
  for i = 0 to n - 1 do
    let id_i, s_i, f_i, e_i = twoq.(i) in
    let j = ref (i + 1) in
    let continue = ref true in
    while !continue && !j < n do
      let id_j, s_j, f_j, e_j = twoq.(!j) in
      if s_j >= f_i then continue := false
      else begin
        (* Strict interval overlap, matching [Schedule.overlaps]. *)
        if f_i > s_j && f_j > s_i then begin
          add id_i { o_start = s_j; o_finish = f_j; spectator = e_j };
          add id_j { o_start = s_i; o_finish = f_i; spectator = e_i }
        end;
        incr j
      end
    done
  done;
  tbl

(* [effective_of_gate] takes the gate value directly: the plan build
   calls this once per two-qubit gate, and a [Circuit.gate] lookup per
   call is an O(G) list scan — quadratic over a 1k-gate circuit. *)
let effective_of_gate device sched ~index (g : Gate.t) =
  let id = g.Gate.id in
  if not (Gate.is_two_qubit g) then invalid_arg "Exec.effective_cnot_error: not a CNOT";
  let target = edge_of_cnot g in
  let independent = Device.cnot_error device target in
  let gt = Device.ground_truth device in
  (* Crosstalk accumulates while the spectator's drive is actually on:
     the conditional excess is weighted by the overlapped fraction of
     the target gate.  The worst overlapping partner dominates;
     simultaneous triplets do not compound further (the paper's
     observation behind eq. 6). *)
  let t_start = Schedule.start sched id and t_finish = Schedule.finish sched id in
  let duration = max 1.0 (t_finish -. t_start) in
  let excess =
    List.fold_left
      (fun acc { o_start; o_finish; spectator } ->
        match Crosstalk.conditional gt ~target ~spectator with
        | Some conditional ->
          let o_start = max t_start o_start in
          let o_finish = min t_finish o_finish in
          let fraction = max 0.0 (o_finish -. o_start) /. duration in
          max acc (fraction *. max 0.0 (conditional -. independent))
        | None -> acc)
      0.0
      (Option.value ~default:[] (Hashtbl.find_opt index id))
  in
  min 0.75 (independent +. excess)

let effective_of_index device sched ~index id =
  effective_of_gate device sched ~index (Circuit.gate (Schedule.circuit sched) id)

let effective_cnot_error device sched id =
  effective_of_index device sched ~index:(overlap_index sched) id

(* A trajectory-level simulator interface over the two backends. *)
type sim =
  | Tab of Tableau.t
  | Vec of State.t

let apply_pauli sim p q =
  match sim with Tab t -> Tableau.apply_pauli t p q | Vec v -> State.apply_pauli v p q

let apply_gate sim kind qubits =
  match (sim, kind, qubits) with
  | Tab t, Gate.H, [ q ] -> Tableau.h t q
  | Tab t, Gate.X, [ q ] -> Tableau.x t q
  | Tab t, Gate.Y, [ q ] -> Tableau.y t q
  | Tab t, Gate.Z, [ q ] -> Tableau.z t q
  | Tab t, Gate.S, [ q ] -> Tableau.s t q
  | Tab t, Gate.Sdg, [ q ] -> Tableau.sdg t q
  | Tab t, Gate.Cnot, [ c; tg ] -> Tableau.cnot t ~control:c ~target:tg
  | Tab t, Gate.Swap, [ a; b ] -> Tableau.swap t a b
  | Tab _, (Gate.T | Gate.Tdg | Gate.Rx _ | Gate.Ry _ | Gate.Rz _ | Gate.U2 _), _ ->
    invalid_arg
      (Printf.sprintf "Exec: non-Clifford gate %s on stabilizer backend" (Gate.kind_name kind))
  | Vec v, Gate.H, [ q ] -> State.h v q
  | Vec v, Gate.X, [ q ] -> State.x v q
  | Vec v, Gate.Y, [ q ] -> State.y v q
  | Vec v, Gate.Z, [ q ] -> State.z v q
  | Vec v, Gate.S, [ q ] -> State.s v q
  | Vec v, Gate.Sdg, [ q ] -> State.sdg v q
  | Vec v, Gate.T, [ q ] -> State.phase v (Float.pi /. 4.0) q
  | Vec v, Gate.Tdg, [ q ] -> State.phase v (-.Float.pi /. 4.0) q
  | Vec v, Gate.Rx theta, [ q ] -> State.apply1 v (Gates.rx theta) q
  | Vec v, Gate.Ry theta, [ q ] -> State.apply1 v (Gates.ry theta) q
  | Vec v, Gate.Rz theta, [ q ] -> State.rz v theta q
  | Vec v, Gate.U2 (phi, lam), [ q ] -> State.apply1 v (Gates.u2 phi lam) q
  | Vec v, Gate.Cnot, [ c; tg ] -> State.cnot v ~control:c ~target:tg
  | Vec v, Gate.Swap, [ a; b ] ->
    State.cnot v ~control:a ~target:b;
    State.cnot v ~control:b ~target:a;
    State.cnot v ~control:a ~target:b
  | _, (Gate.Barrier | Gate.Measure), _ -> ()
  | _ -> invalid_arg "Exec: malformed gate operands"

let measure_sim sim rng q =
  match sim with Tab t -> Tableau.measure t rng q | Vec v -> State.measure v rng q

(* Precomputed per-gate noise plan, shared (read-only) across trials
   and across worker domains. *)
type gate_plan = {
  gate : Gate.t;
  compact_qubits : int list;
  start : float;
  error_p : float;  (** depolarizing parameter to inject after the gate *)
  matrix : Qcx_linalg.Mat.t option;
      (** 2x2 unitary prebuilt for parameterized single-qubit gates, so
          the statevector backend does not rebuild it every trajectory *)
  idles : (int * int * Channel.idle) list;
      (** (hardware qubit, compact qubit, channel) for the gap before this gate *)
}

let prebuilt_matrix = function
  | Gate.Rx theta -> Some (Gates.rx theta)
  | Gate.Ry theta -> Some (Gates.ry theta)
  | Gate.U2 (phi, lam) -> Some (Gates.u2 phi lam)
  | _ -> None

type protection = {
  p_qubit : int;
  p_start : float;
  p_finish : float;
  p_xy : float;
  p_z : float;
}

(* Per-qubit protection spans, each list sorted by start.  A gap is
   protected when one span covers it entirely; DD pads whole idle
   windows, so the pulse-split sub-gaps always fall inside one span. *)
let protection_index protection =
  let tbl : (int, protection list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if not (p.p_xy >= 0.0 && p.p_z >= 0.0) then
        invalid_arg "Exec: protection factors must be non-negative";
      Hashtbl.replace tbl p.p_qubit
        (p :: Option.value ~default:[] (Hashtbl.find_opt tbl p.p_qubit)))
    protection;
  Hashtbl.iter
    (fun q spans ->
      Hashtbl.replace tbl q (List.sort (fun a b -> compare a.p_start b.p_start) spans))
    (Hashtbl.copy tbl);
  tbl

let protect_idle pindex q ~t0 ~t1 idle =
  match Hashtbl.find_opt pindex q with
  | None -> idle
  | Some spans -> (
    match
      List.find_opt (fun p -> p.p_start <= t0 +. 1e-9 && t1 <= p.p_finish +. 1e-9) spans
    with
    | Some p -> Channel.scale_idle idle ~xy:p.p_xy ~z:p.p_z
    | None -> idle)

let build_plans ?(protection = []) device sched =
  let circuit = Schedule.circuit sched in
  let cal = Device.calibration device in
  let used = Circuit.used_qubits circuit in
  let compact = Hashtbl.create 16 in
  List.iteri (fun i q -> Hashtbl.add compact q i) used;
  let cq q = Hashtbl.find compact q in
  let index = overlap_index sched in
  let pindex = protection_index protection in
  let last_end = Hashtbl.create 16 in
  (* Decoherence starts at a qubit's first gate: no idle before it. *)
  let plans =
    List.filter_map
      (fun g ->
        if Gate.is_barrier g then None
        else begin
          let id = g.Gate.id in
          let start = Schedule.start sched id in
          let idles =
            List.filter_map
              (fun q ->
                match Hashtbl.find_opt last_end q with
                | Some t0 when start > t0 +. 1e-9 ->
                  let qc = Calibration.qubit cal q in
                  let idle =
                    Channel.idle_channel ~t1:qc.Calibration.t1 ~t2:qc.Calibration.t2
                      ~duration:(start -. t0)
                  in
                  Some (q, cq q, protect_idle pindex q ~t0 ~t1:start idle)
                | Some _ | None -> None)
              g.Gate.qubits
          in
          List.iter (fun q -> Hashtbl.replace last_end q (Schedule.finish sched id)) g.Gate.qubits;
          let error_p =
            if Gate.is_two_qubit g then
              Channel.depol_param_of_error_rate ~nqubits:2 (effective_of_gate device sched ~index g)
            else if Gate.is_single_qubit g then
              let q = List.hd g.Gate.qubits in
              Channel.depol_param_of_error_rate ~nqubits:1
                (Calibration.qubit cal q).Calibration.single_qubit_error
            else 0.0
          in
          Some
            {
              gate = g;
              compact_qubits = List.map cq g.Gate.qubits;
              start;
              error_p;
              matrix = prebuilt_matrix g.Gate.kind;
              idles;
            }
        end)
      (Schedule.gates_by_start sched)
  in
  (used, plans)

(* Walk one trajectory through the unitary part of a plan: idles and
   gate noise for every non-measure gate; measure gates only get their
   idles, with [on_measure] deciding what readout does. *)
let step_plan sim rng plan ~on_measure =
  List.iter
    (fun (_, cqubit, idle) ->
      match Channel.sample_idle rng idle with
      | Some p -> apply_pauli sim p cqubit
      | None -> ())
    plan.idles;
  if Gate.is_measure plan.gate then on_measure plan
  else begin
    (match (plan.matrix, sim, plan.compact_qubits) with
    | Some m, Vec v, [ q ] -> State.apply1 v m q
    | _ -> apply_gate sim plan.gate.Gate.kind plan.compact_qubits);
    if plan.error_p > 0.0 then
      match plan.compact_qubits with
      | [ q ] -> (
        match Channel.sample_depolarizing1 rng ~p:plan.error_p with
        | Some p -> apply_pauli sim p q
        | None -> ())
      | [ a; b ] -> (
        match Channel.sample_depolarizing2 rng ~p:plan.error_p with
        | Some (pa, pb) ->
          Option.iter (fun p -> apply_pauli sim p a) pa;
          Option.iter (fun p -> apply_pauli sim p b) pb
        | None -> ())
      | _ -> ()
  end

(* Compile the unitary part of a plan list into a flat op array for
   the statevector backend, with every dispatch decision (gate kind,
   operand lists, diagonal phases — including the trig for Rz/T) taken
   once here instead of once per trajectory.  Measure gates contribute
   only their idles; readout is the caller's business.

   Ops are split into deterministic gates and random noise points
   whose [decide] draws from the trajectory stream and returns the
   (preallocated) state action to apply when the noise fires.  The
   split lets the executor precompute the noiseless evolution once and
   re-simulate only from the first fired noise point of a trajectory:
   at the paper's error rates most trajectories fire none. *)
type sv_op =
  | Det of (State.t -> unit)
  | Rand of (Rng.t -> (State.t -> unit) option)

let pauli_actions q =
  ( Some (fun v -> State.x v q),
    Some (fun v -> State.y v q),
    Some (fun v -> State.z v q) )

let compile_sv plans =
  let ops = ref [] in
  let emit f = ops := Det f :: !ops in
  let diag d0 d1 q = emit (fun v -> State.apply_diag1 v d0 d1 q) in
  List.iter
    (fun plan ->
      List.iter
        (fun (_, cq, idle) ->
          let sx, sy, sz = pauli_actions cq in
          ops :=
            Rand
              (fun rng ->
                match Channel.sample_idle rng idle with
                | None -> None
                | Some `X -> sx
                | Some `Y -> sy
                | Some `Z -> sz)
            :: !ops)
        plan.idles;
      if not (Gate.is_measure plan.gate) then begin
        (match (plan.matrix, plan.gate.Gate.kind, plan.compact_qubits) with
        | Some m, _, [ q ] -> emit (fun v -> State.apply1 v m q)
        | _, Gate.H, [ q ] -> emit (fun v -> State.h v q)
        | _, Gate.X, [ q ] -> emit (fun v -> State.x v q)
        | _, Gate.Y, [ q ] -> emit (fun v -> State.y v q)
        | _, Gate.Z, [ q ] -> diag Cplx.one (Cplx.re (-1.0)) q
        | _, Gate.S, [ q ] -> diag Cplx.one Cplx.i q
        | _, Gate.Sdg, [ q ] -> diag Cplx.one (Cplx.make 0.0 (-1.0)) q
        | _, Gate.T, [ q ] -> diag Cplx.one (Cplx.exp_i (Float.pi /. 4.0)) q
        | _, Gate.Tdg, [ q ] -> diag Cplx.one (Cplx.exp_i (-.Float.pi /. 4.0)) q
        | _, Gate.Rz theta, [ q ] ->
          diag (Cplx.exp_i (-.theta /. 2.0)) (Cplx.exp_i (theta /. 2.0)) q
        | _, Gate.Cnot, [ c; t ] -> emit (fun v -> State.cnot v ~control:c ~target:t)
        | _, Gate.Swap, [ a; b ] ->
          emit (fun v ->
              State.cnot v ~control:a ~target:b;
              State.cnot v ~control:b ~target:a;
              State.cnot v ~control:a ~target:b)
        | _ -> invalid_arg "Exec: malformed gate operands");
        if plan.error_p > 0.0 then begin
          let p = plan.error_p in
          match plan.compact_qubits with
          | [ q ] ->
            let sx, sy, sz = pauli_actions q in
            ops :=
              Rand
                (fun rng ->
                  match Channel.sample_depolarizing1 rng ~p with
                  | None -> None
                  | Some `X -> sx
                  | Some `Y -> sy
                  | Some `Z -> sz)
              :: !ops
          | [ a; b ] ->
            (* One preallocated action per non-identity Pauli pair,
               indexed exactly like [Channel.sample_depolarizing2]
               decodes (same draws, same mapping). *)
            let one q = function
              | 0 -> fun (_ : State.t) -> ()
              | 1 -> fun v -> State.x v q
              | 2 -> fun v -> State.y v q
              | _ -> fun v -> State.z v q
            in
            let acts =
              Array.init 15 (fun c ->
                  let code = c + 1 in
                  let fa = one a (code land 3) and fb = one b (code lsr 2) in
                  Some
                    (fun v ->
                      fa v;
                      fb v))
            in
            ops :=
              Rand
                (fun rng ->
                  if Rng.bernoulli rng p then Array.unsafe_get acts (Rng.int rng 15) else None)
              :: !ops
          | _ -> ()
        end
      end)
    plans;
  Array.of_list (List.rev !ops)

(* Noiseless evolution, computed once: the state before every random
   op (its restart checkpoint) and the final state.  A trajectory
   whose draws all miss reuses [final] untouched; one that fires at
   op [i] restarts from checkpoint [i] and simulates only the tail. *)
type sv_track = { track_ops : sv_op array; checkpoints : State.t option array; final : State.t }

(* Checkpoints cost [nrand * dim] amplitudes; beyond this budget the
   executor falls back to plain per-trajectory simulation. *)
let checkpoint_budget_floats = 8 * 1024 * 1024

let precompute_sv ops ~nqubits =
  let nrand =
    Array.fold_left (fun acc op -> match op with Rand _ -> acc + 1 | Det _ -> acc) 0 ops
  in
  if nrand * (1 lsl nqubits) * 2 > checkpoint_budget_floats then None
  else begin
    let v = State.create nqubits in
    let checkpoints = Array.map (fun _ -> None) ops in
    Array.iteri
      (fun i op ->
        match op with
        | Det f -> f v
        | Rand _ -> checkpoints.(i) <- Some (State.copy v))
      ops;
    Some { track_ops = ops; checkpoints; final = v }
  end

(* Walk one trajectory and return the state to read out — either the
   shared noiseless [final] (callers must not mutate it) or [scratch].
   Draws happen in op order exactly as a plain walk would, so counts
   are unchanged by the checkpointing. *)
let run_ops_tracked track scratch rng =
  let ops = track.track_ops in
  let nops = Array.length ops in
  let tail_from i =
    for j = i to nops - 1 do
      match Array.unsafe_get ops j with
      | Det f -> f scratch
      | Rand decide -> (
        match decide rng with Some act -> act scratch | None -> ())
    done
  in
  let rec scan i =
    if i >= nops then track.final
    else
      match Array.unsafe_get ops i with
      | Det _ -> scan (i + 1)
      | Rand decide -> (
        match decide rng with
        | None -> scan (i + 1)
        | Some act ->
          (match track.checkpoints.(i) with
          | Some cp -> State.blit cp scratch
          | None -> assert false);
          act scratch;
          tail_from (i + 1);
          scratch)
  in
  scan 0

let run_ops_plain ops scratch rng =
  State.reset scratch;
  Array.iter
    (fun op ->
      match op with
      | Det f -> f scratch
      | Rand decide -> (
        match decide rng with Some act -> act scratch | None -> ()))
    ops;
  scratch

(* The statevector backend reads all qubits in one [State.sample] draw
   (the hardware's simultaneous-readout model) when that is faithful:
   every measurement starts at the same instant (validated) and no
   unitary touches a measured qubit afterwards.  Gates on unmeasured
   qubits cannot change the measured marginal, so they are free to
   trail past readout. *)
let simultaneous_readout_ok plans ~nused =
  let measure_start =
    List.fold_left
      (fun acc p -> if Gate.is_measure p.gate then min acc p.start else acc)
      infinity plans
  in
  measure_start < infinity
  &&
  let measured_cq = Array.make (max nused 1) false in
  List.iter
    (fun p ->
      if Gate.is_measure p.gate then
        List.iter (fun cq -> measured_cq.(cq) <- true) p.compact_qubits)
    plans;
  List.for_all
    (fun p ->
      Gate.is_measure p.gate
      || p.start <= measure_start +. 1e-9
      || not (List.exists (fun cq -> measured_cq.(cq)) p.compact_qubits))
    plans

let merge_counts tables =
  let counts = { table = Hashtbl.create 64; total = 0 } in
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun k v ->
          Hashtbl.replace counts.table k (v + counts_get counts k);
          counts.total <- counts.total + v)
        tbl)
    tables;
  counts

let run ?(jobs = 1) ?(protection = []) device sched ~rng ~trials ~backend =
  let circuit = Schedule.circuit sched in
  (match Schedule.validate sched with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Exec.run: invalid schedule: " ^ msg));
  let used, plans = build_plans ~protection device sched in
  let nused = List.length used in
  let cal = Device.calibration device in
  let measured = measured_qubits circuit in
  let sample_readout = backend = Statevector && simultaneous_readout_ok plans ~nused in
  (* One split decouples the trajectory streams from the caller's
     generator; [Rng.split_nth] then gives trajectory [i] the same
     stream whichever worker runs it, so counts are bit-identical for
     every [jobs] value. *)
  let base = Rng.split rng in
  let cq_of_hw =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun i q -> Hashtbl.replace tbl q i) used;
    fun hw -> Hashtbl.find tbl hw
  in
  let ro_err hw = (Calibration.qubit cal hw).Calibration.readout_error in
  let readout_flip rng hw bit = if Rng.bernoulli rng (ro_err hw) then not bit else bit in
  (* (compact qubit, readout error) per measured qubit, in output
     (sorted hardware id) order — the whole readout when the
     simultaneous-sample path applies. *)
  let meas_specs = Array.of_list (List.map (fun hw -> (cq_of_hw hw, ro_err hw)) measured) in
  let nmeas = Array.length meas_specs in
  (* Per-qubit measurement, for the stabilizer backend and for
     statevector schedules where readout is not simultaneous. *)
  let generic_trajectory sim rng =
    let bits = Hashtbl.create 8 in
    List.iter
      (fun plan ->
        step_plan sim rng plan ~on_measure:(fun plan ->
            let hw = List.hd plan.gate.Gate.qubits in
            let cqubit = List.hd plan.compact_qubits in
            let bit = measure_sim sim rng cqubit in
            Hashtbl.replace bits hw (readout_flip rng hw bit)))
      plans;
    String.concat ""
      (List.map
         (fun q ->
           match Hashtbl.find_opt bits q with
           | Some true -> "1"
           | Some false -> "0"
           | None -> "?")
         measured)
  in
  (* Simultaneous readout: run the compiled unitary part, then one
     full-register sample, flipped per qubit — no per-trial tables,
     lists or gate dispatch. *)
  let ops = if sample_readout then compile_sv plans else [||] in
  let track = if sample_readout then precompute_sv ops ~nqubits:(max nused 1) else None in
  let sampled_trajectory scratch rng =
    let v =
      match track with
      | Some tr -> run_ops_tracked tr scratch rng
      | None -> run_ops_plain ops scratch rng
    in
    let k = State.sample v rng in
    let buf = Bytes.create nmeas in
    for m = 0 to nmeas - 1 do
      let cq, ro = meas_specs.(m) in
      let bit = (k lsr cq) land 1 = 1 in
      let bit = if Rng.bernoulli rng ro then not bit else bit in
      Bytes.set buf m (if bit then '1' else '0')
    done;
    Bytes.unsafe_to_string buf
  in
  let shard ~lo ~hi =
    let table = Hashtbl.create 64 in
    let run_trajectory =
      if sample_readout then (
        let scratch = State.create (max nused 1) in
        fun rng -> sampled_trajectory scratch rng)
      else
        fun rng ->
          let sim =
            match backend with
            | Stabilizer -> Tab (Tableau.create (max nused 1))
            | Statevector -> Vec (State.create (max nused 1))
          in
          generic_trajectory sim rng
    in
    for i = lo to hi - 1 do
      let bitstring = run_trajectory (Rng.split_nth base i) in
      Hashtbl.replace table bitstring
        (1 + Option.value ~default:0 (Hashtbl.find_opt table bitstring))
    done;
    table
  in
  merge_counts (Pool.parallel_chunks ~jobs ~n:trials shard)

let run_distribution ?(jobs = 1) ?(protection = []) device sched ~rng ~trajectories =
  let circuit = Schedule.circuit sched in
  (match Schedule.validate sched with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Exec.run_distribution: invalid schedule: " ^ msg));
  let used, plans = build_plans ~protection device sched in
  let nused = List.length used in
  let cal = Device.calibration device in
  let measured = measured_qubits circuit in
  let nmeas = List.length measured in
  if nmeas > 12 then invalid_arg "Exec.run_distribution: too many measured qubits";
  let compact_of_hw =
    let tbl = Hashtbl.create 8 in
    List.iteri (fun i q -> Hashtbl.replace tbl q i) used;
    tbl
  in
  let meas_compact = Array.of_list (List.map (Hashtbl.find compact_of_hw) measured) in
  let dim = 1 lsl nmeas in
  let full_dim = 1 lsl max nused 1 in
  (* Precompute the marginalization map: full statevector index ->
     measured-qubit outcome index. *)
  let marg =
    Array.init full_dim (fun k ->
        let idx = ref 0 in
        Array.iteri (fun i cq -> if (k lsr cq) land 1 = 1 then idx := !idx lor (1 lsl i)) meas_compact;
        !idx)
  in
  let base = Rng.split rng in
  let ops = compile_sv plans in
  let track = precompute_sv ops ~nqubits:(max nused 1) in
  let shard ~lo ~hi =
    let acc = Array.make dim 0.0 in
    let state = State.create (max nused 1) in
    for i = lo to hi - 1 do
      let rng = Rng.split_nth base i in
      let v =
        match track with
        | Some tr -> run_ops_tracked tr state rng
        | None -> run_ops_plain ops state rng
      in
      (* Marginalize |amp|^2 onto the measured qubits. *)
      for k = 0 to full_dim - 1 do
        let p = State.probability v k in
        if p > 0.0 then acc.(marg.(k)) <- acc.(marg.(k)) +. p
      done
    done;
    acc
  in
  let acc =
    Pool.map_reduce ~jobs ~n:trajectories ~map:shard
      ~merge:(fun total part ->
        Array.iteri (fun k v -> total.(k) <- total.(k) +. v) part;
        total)
      (Array.make dim 0.0)
  in
  let scale = 1.0 /. float_of_int (max 1 trajectories) in
  let clean = Array.map (fun p -> p *. scale) acc in
  (* Apply readout confusion analytically: independent per-qubit
     flips.  The flip product depends only on which bits differ, so
     tabulate it once per XOR pattern instead of recomputing the
     per-qubit product inside the dim^2 loop. *)
  let flips =
    Array.of_list
      (List.map (fun q -> (Calibration.qubit cal q).Calibration.readout_error) measured)
  in
  let flip_product =
    Array.init dim (fun diff ->
        let p = ref 1.0 in
        Array.iteri
          (fun i flip -> p := !p *. (if (diff lsr i) land 1 = 1 then flip else 1.0 -. flip))
          flips;
        !p)
  in
  let confused = Array.make dim 0.0 in
  for truth = 0 to dim - 1 do
    if clean.(truth) > 0.0 then
      for observed = 0 to dim - 1 do
        confused.(observed) <-
          confused.(observed) +. (clean.(truth) *. flip_product.(truth lxor observed))
      done
  done;
  List.init dim (fun k ->
      ( String.init nmeas (fun i -> if (k lsr i) land 1 = 1 then '1' else '0'),
        confused.(k) ))

let run_ideal circuit =
  let used = Circuit.used_qubits circuit in
  let nq = max 1 (Circuit.nqubits circuit) in
  let compact = Array.make nq (-1) in
  List.iteri (fun i q -> compact.(q) <- i) used;
  let state = State.create (max (List.length used) 1) in
  let sim = Vec state in
  List.iter
    (fun g ->
      if Gate.is_unitary g then
        apply_gate sim g.Gate.kind (List.map (Array.get compact) g.Gate.qubits))
    (Circuit.gates circuit);
  (state, used)
