module Rng = Qcx_util.Rng

type pauli = [ `X | `Y | `Z ]

let depol_param_of_error_rate ~nqubits error =
  if error < 0.0 then invalid_arg "Channel.depol_param_of_error_rate: negative error";
  let d = float_of_int (1 lsl nqubits) in
  min 1.0 (d /. (d -. 1.0) *. error)

let pauli_of_int = function 0 -> `X | 1 -> `Y | _ -> `Z

let sample_depolarizing1 rng ~p =
  if Rng.bernoulli rng p then Some (pauli_of_int (Rng.int rng 3)) else None

let sample_depolarizing2 rng ~p =
  if not (Rng.bernoulli rng p) then None
  else begin
    (* Uniform over the 15 non-identity pairs: encode 1..15 in base 4. *)
    let code = 1 + Rng.int rng 15 in
    let lo = code land 3 and hi = code lsr 2 in
    let decode = function 0 -> None | 1 -> Some `X | 2 -> Some `Y | _ -> Some `Z in
    Some (decode lo, decode hi)
  end

type idle = { px : float; py : float; pz : float }

let idle_channel ~t1 ~t2 ~duration =
  if duration < 0.0 then invalid_arg "Channel.idle_channel: negative duration";
  if t1 <= 0.0 || t2 <= 0.0 then invalid_arg "Channel.idle_channel: non-positive T1/T2";
  let p_relax = 1.0 -. exp (-.duration /. t1) in
  let p_dephase = 1.0 -. exp (-.duration /. t2) in
  let px = p_relax /. 4.0 in
  let pz = max 0.0 ((p_dephase /. 2.0) -. (p_relax /. 4.0)) in
  { px; py = px; pz }

let scale_idle { px; py; pz } ~xy ~z =
  if xy < 0.0 || z < 0.0 then invalid_arg "Channel.scale_idle: negative factor";
  let clamp p = min 1.0 (max 0.0 p) in
  { px = clamp (px *. xy); py = clamp (py *. xy); pz = clamp (pz *. z) }

let sample_idle rng { px; py; pz } =
  let u = Rng.unit_float rng in
  if u < px then Some `X
  else if u < px +. py then Some `Y
  else if u < px +. py +. pz then Some `Z
  else None

let idle_error_probability { px; py; pz } = px +. py +. pz
