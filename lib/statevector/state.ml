module Cplx = Qcx_linalg.Cplx
module Mat = Qcx_linalg.Mat
module Rng = Qcx_util.Rng

type t = { n : int; re : float array; im : float array }

let create n =
  if n <= 0 || n > 26 then invalid_arg "State.create: need 1 <= n <= 26";
  let dim = 1 lsl n in
  let re = Array.make dim 0.0 and im = Array.make dim 0.0 in
  re.(0) <- 1.0;
  { n; re; im }

let reset t =
  Array.fill t.re 0 (Array.length t.re) 0.0;
  Array.fill t.im 0 (Array.length t.im) 0.0;
  t.re.(0) <- 1.0

let nqubits t = t.n
let dim t = 1 lsl t.n
let copy t = { n = t.n; re = Array.copy t.re; im = Array.copy t.im }

let blit src dst =
  if src.n <> dst.n then invalid_arg "State.blit: size mismatch";
  Array.blit src.re 0 dst.re 0 (Array.length src.re);
  Array.blit src.im 0 dst.im 0 (Array.length src.im)

let check_qubit t q = if q < 0 || q >= t.n then invalid_arg "State: qubit out of range"

let amplitude t k = Cplx.make t.re.(k) t.im.(k)
let probability t k = (t.re.(k) *. t.re.(k)) +. (t.im.(k) *. t.im.(k))
let probabilities t = Array.init (dim t) (probability t)

(* Insert a zero bit at position [q]: spreads [g] in [0, d/2) over the
   indices of [0, d) whose bit [q] is clear.  The kernels below iterate
   over these index groups directly instead of scanning all [d]
   indices with a bit test. *)
let[@inline] spread1 g ~mask = ((g land lnot mask) lsl 1) lor (g land mask)

(* The kernels run without bounds checks: [check_qubit] has validated
   the qubit, and [spread1] maps [0, d/2) (resp. [0, d/4) twice)
   bijectively into [0, d), so every index below is in range. *)
let[@inline] get a i = Array.unsafe_get a i
let[@inline] set a i v = Array.unsafe_set a i v

let apply1 t u q =
  check_qubit t q;
  if Mat.rows u <> 2 || Mat.cols u <> 2 then invalid_arg "State.apply1: need 2x2 matrix";
  (* Hoist the matrix entries out of their boxes once, before the loop. *)
  let u00 = Mat.get u 0 0 and u01 = Mat.get u 0 1 in
  let u10 = Mat.get u 1 0 and u11 = Mat.get u 1 1 in
  let u00r = u00.Cplx.re and u00i = u00.Cplx.im in
  let u01r = u01.Cplx.re and u01i = u01.Cplx.im in
  let u10r = u10.Cplx.re and u10i = u10.Cplx.im in
  let u11r = u11.Cplx.re and u11i = u11.Cplx.im in
  let bit = 1 lsl q in
  let mask = bit - 1 in
  let re = t.re and im = t.im in
  let half = dim t lsr 1 in
  for g = 0 to half - 1 do
    let i = spread1 g ~mask in
    let j = i lor bit in
    let ar = get re i and ai = get im i in
    let br = get re j and bi = get im j in
    set re i ((u00r *. ar) -. (u00i *. ai) +. (u01r *. br) -. (u01i *. bi));
    set im i ((u00r *. ai) +. (u00i *. ar) +. (u01r *. bi) +. (u01i *. br));
    set re j ((u10r *. ar) -. (u10i *. ai) +. (u11r *. br) -. (u11i *. bi));
    set im j ((u10r *. ai) +. (u10i *. ar) +. (u11r *. bi) +. (u11i *. br))
  done

let apply_diag1 t d0 d1 q =
  check_qubit t q;
  let d0r = d0.Cplx.re and d0i = d0.Cplx.im in
  let d1r = d1.Cplx.re and d1i = d1.Cplx.im in
  let bit = 1 lsl q in
  let mask = bit - 1 in
  let re = t.re and im = t.im in
  let half = dim t lsr 1 in
  for g = 0 to half - 1 do
    let i = spread1 g ~mask in
    let j = i lor bit in
    let ar = get re i and ai = get im i in
    set re i ((d0r *. ar) -. (d0i *. ai));
    set im i ((d0r *. ai) +. (d0i *. ar));
    let br = get re j and bi = get im j in
    set re j ((d1r *. br) -. (d1i *. bi));
    set im j ((d1r *. bi) +. (d1i *. br))
  done

let apply2 t u q0 q1 =
  check_qubit t q0;
  check_qubit t q1;
  if q0 = q1 then invalid_arg "State.apply2: qubits must differ";
  if Mat.rows u <> 4 || Mat.cols u <> 4 then invalid_arg "State.apply2: need 4x4 matrix";
  let b0 = 1 lsl q0 and b1 = 1 lsl q1 in
  (* Unbox the 16 entries into flat float arrays once. *)
  let mr = Array.make 16 0.0 and mi = Array.make 16 0.0 in
  for row = 0 to 3 do
    for col = 0 to 3 do
      let m = Mat.get u row col in
      mr.((row lsl 2) lor col) <- m.Cplx.re;
      mi.((row lsl 2) lor col) <- m.Cplx.im
    done
  done;
  let lo_mask = (min b0 b1) - 1 in
  let hi_mask = ((max b0 b1) lsr 1) - 1 in
  let re = t.re and im = t.im in
  let quarter = dim t lsr 2 in
  let idx = Array.make 4 0 in
  let vr = Array.make 4 0.0 and vi = Array.make 4 0.0 in
  for g = 0 to quarter - 1 do
    (* Insert zero bits at both positions: the higher slot first (its
       position in the compact space is one lower), then the lower. *)
    let x = spread1 g ~mask:hi_mask in
    let k = spread1 x ~mask:lo_mask in
    set idx 0 k;
    set idx 1 (k lor b0);
    set idx 2 (k lor b1);
    set idx 3 (k lor b0 lor b1);
    for a = 0 to 3 do
      set vr a (get re (get idx a));
      set vi a (get im (get idx a))
    done;
    for row = 0 to 3 do
      let base = row lsl 2 in
      let accr = ref 0.0 and acci = ref 0.0 in
      for col = 0 to 3 do
        let er = get mr (base lor col) and ei = get mi (base lor col) in
        accr := !accr +. (er *. get vr col) -. (ei *. get vi col);
        acci := !acci +. (er *. get vi col) +. (ei *. get vr col)
      done;
      set re (get idx row) !accr;
      set im (get idx row) !acci
    done
  done

let cnot t ~control ~target =
  check_qubit t control;
  check_qubit t target;
  if control = target then invalid_arg "State.cnot: control = target";
  let cb = 1 lsl control and tb = 1 lsl target in
  let lo_mask = (min cb tb) - 1 in
  let hi_mask = ((max cb tb) lsr 1) - 1 in
  let re = t.re and im = t.im in
  let quarter = dim t lsr 2 in
  (* Visit only the d/4 groups with control set and target clear. *)
  for g = 0 to quarter - 1 do
    let x = spread1 g ~mask:hi_mask in
    let k = spread1 x ~mask:lo_mask lor cb in
    let j = k lor tb in
    let ar = get re k and ai = get im k in
    set re k (get re j);
    set im k (get im j);
    set re j ar;
    set im j ai
  done

let cz t a b =
  check_qubit t a;
  check_qubit t b;
  if a = b then invalid_arg "State.cz: qubits must differ";
  let ba = 1 lsl a and bb = 1 lsl b in
  let lo_mask = (min ba bb) - 1 in
  let hi_mask = ((max ba bb) lsr 1) - 1 in
  let re = t.re and im = t.im in
  let quarter = dim t lsr 2 in
  for g = 0 to quarter - 1 do
    let x = spread1 g ~mask:hi_mask in
    let k = spread1 x ~mask:lo_mask lor ba lor bb in
    set re k (-.get re k);
    set im k (-.get im k)
  done

let h t q = apply1 t Qcx_linalg.Gates.h q
let x t q = apply1 t Qcx_linalg.Gates.x q
let y t q = apply1 t Qcx_linalg.Gates.y q

(* Diagonal gates skip the full 2x2 kernel: pure phases on the |1>
   (and for rz also the |0>) amplitudes. *)
let z t q = apply_diag1 t Cplx.one (Cplx.re (-1.0)) q
let s t q = apply_diag1 t Cplx.one Cplx.i q
let sdg t q = apply_diag1 t Cplx.one (Cplx.make 0.0 (-1.0)) q

let phase t theta q = apply_diag1 t Cplx.one (Cplx.exp_i theta) q

let rz t theta q =
  apply_diag1 t (Cplx.exp_i (-.theta /. 2.0)) (Cplx.exp_i (theta /. 2.0)) q

let apply_pauli t p q =
  match p with `X -> x t q | `Y -> y t q | `Z -> z t q

let prob_one t q =
  let bit = 1 lsl q in
  let mask = bit - 1 in
  let re = t.re and im = t.im in
  let half = dim t lsr 1 in
  let acc = ref 0.0 in
  for g = 0 to half - 1 do
    let k = spread1 g ~mask lor bit in
    let ar = get re k and ai = get im k in
    acc := !acc +. (ar *. ar) +. (ai *. ai)
  done;
  !acc

let measure t rng q =
  check_qubit t q;
  let p1 = prob_one t q in
  let outcome = Rng.unit_float rng < p1 in
  let keep_prob = if outcome then p1 else 1.0 -. p1 in
  let scale = if keep_prob <= 0.0 then 0.0 else 1.0 /. sqrt keep_prob in
  let bit = 1 lsl q in
  for k = 0 to dim t - 1 do
    let matches = (k land bit <> 0) = outcome in
    if matches then begin
      t.re.(k) <- t.re.(k) *. scale;
      t.im.(k) <- t.im.(k) *. scale
    end
    else begin
      t.re.(k) <- 0.0;
      t.im.(k) <- 0.0
    end
  done;
  outcome

let sample t rng =
  let target = Rng.unit_float rng in
  let d = dim t in
  let re = t.re and im = t.im in
  let acc = ref 0.0 in
  let k = ref 0 in
  (* No exception for control flow: walk until the CDF passes the
     target; float error can leave the CDF fractionally short of 1, so
     the last state absorbs the tail. *)
  while !acc <= target && !k < d - 1 do
    let ar = get re !k and ai = get im !k in
    acc := !acc +. (ar *. ar) +. (ai *. ai);
    if !acc <= target then incr k
  done;
  !k

let norm t =
  let acc = ref 0.0 in
  for k = 0 to dim t - 1 do
    acc := !acc +. probability t k
  done;
  sqrt !acc

let inner_product a b =
  if a.n <> b.n then invalid_arg "State.inner_product: size mismatch";
  let accr = ref 0.0 and acci = ref 0.0 in
  for k = 0 to dim a - 1 do
    (* conj(a_k) * b_k *)
    accr := !accr +. (a.re.(k) *. b.re.(k)) +. (a.im.(k) *. b.im.(k));
    acci := !acci +. (a.re.(k) *. b.im.(k)) -. (a.im.(k) *. b.re.(k))
  done;
  Cplx.make !accr !acci

let fidelity a b = Cplx.norm2 (inner_product a b)

let of_amplitudes amps =
  let d = Array.length amps in
  let n = ref 0 in
  while 1 lsl !n < d do
    incr n
  done;
  if 1 lsl !n <> d then invalid_arg "State.of_amplitudes: length not a power of two";
  let t = create !n in
  let total = Array.fold_left (fun acc z -> acc +. Cplx.norm2 z) 0.0 amps in
  if total <= 0.0 then invalid_arg "State.of_amplitudes: zero vector";
  let scale = 1.0 /. sqrt total in
  Array.iteri
    (fun k z ->
      t.re.(k) <- z.Cplx.re *. scale;
      t.im.(k) <- z.Cplx.im *. scale)
    amps;
  t

let reduced_density t qubits =
  List.iter (check_qubit t) qubits;
  let m = List.length qubits in
  let qarr = Array.of_list qubits in
  let dsub = 1 lsl m in
  let rho = Mat.create dsub dsub in
  let rest_qubits = List.filter (fun q -> not (List.mem q qubits)) (List.init t.n Fun.id) in
  let rest = Array.of_list rest_qubits in
  let drest = 1 lsl Array.length rest in
  let full_index ~env ~sub =
    let k = ref 0 in
    Array.iteri (fun i q -> if (env lsr i) land 1 = 1 then k := !k lor (1 lsl q)) rest;
    Array.iteri (fun i q -> if (sub lsr i) land 1 = 1 then k := !k lor (1 lsl q)) qarr;
    !k
  in
  for env = 0 to drest - 1 do
    for a = 0 to dsub - 1 do
      let va = amplitude t (full_index ~env ~sub:a) in
      for b = 0 to dsub - 1 do
        let vb = amplitude t (full_index ~env ~sub:b) in
        Mat.set rho a b (Cplx.add (Mat.get rho a b) (Cplx.mul va (Cplx.conj vb)))
      done
    done
  done;
  rho
