(** Dense statevector simulator.

    Amplitudes are stored as separate re/im float arrays of length 2^n
    with qubit 0 as the least significant bit of the index.  Suits the
    paper's non-Clifford workloads: 4-qubit QAOA circuits, Bell-state
    tomography, and noise-model cross-validation against the
    stabilizer backend (up to ~20 qubits). *)

type t

val create : int -> t
(** [create n] is |0...0> over n qubits. *)

val reset : t -> unit
(** Return an existing state to |0...0> in place, so trajectory loops
    can reuse one allocation. *)

val blit : t -> t -> unit
(** [blit src dst] copies the amplitudes of [src] into [dst] in place
    (sizes must match) — restores a checkpoint without allocating. *)

val nqubits : t -> int
val copy : t -> t
val dim : t -> int

val amplitude : t -> int -> Qcx_linalg.Cplx.t
val probability : t -> int -> float
(** Probability of the basis state with the given index. *)

val probabilities : t -> float array

val apply1 : t -> Qcx_linalg.Mat.t -> int -> unit
(** Apply a 2x2 unitary to one qubit. *)

val apply_diag1 : t -> Qcx_linalg.Cplx.t -> Qcx_linalg.Cplx.t -> int -> unit
(** [apply_diag1 t d0 d1 q] applies the diagonal unitary
    [diag(d0, d1)] to one qubit — the fast path for phase-type gates
    (Z, S, T, Rz): one complex multiply per amplitude, no pairing. *)

val apply2 : t -> Qcx_linalg.Mat.t -> int -> int -> unit
(** [apply2 t u q0 q1] applies a 4x4 matrix; [q0] is the less
    significant bit of the matrix's 2-bit index. *)

val cnot : t -> control:int -> target:int -> unit
(** CNOT without materializing the 4x4 matrix. *)

val cz : t -> int -> int -> unit
(** Controlled-Z (symmetric): negates the amplitudes with both bits
    set, touching d/4 entries. *)

val h : t -> int -> unit
val x : t -> int -> unit
val y : t -> int -> unit
val z : t -> int -> unit
val s : t -> int -> unit
val sdg : t -> int -> unit

val phase : t -> float -> int -> unit
(** [phase t theta q] multiplies the |1> amplitudes of [q] by
    [e^{i theta}] (covers T, Tdg and any diagonal phase). *)

val rz : t -> float -> int -> unit
(** [rz t theta q] is the IBM Rz gate
    [diag(e^{-i theta/2}, e^{i theta/2})]. *)

val apply_pauli : t -> [ `X | `Y | `Z ] -> int -> unit

val prob_one : t -> int -> float
(** Probability that measuring [q] yields 1. *)

val measure : t -> Qcx_util.Rng.t -> int -> bool
(** Projective measurement of one qubit; renormalizes. *)

val sample : t -> Qcx_util.Rng.t -> int
(** Draw a full basis-state index from the output distribution
    without collapsing the state. *)

val norm : t -> float
(** Should be 1 up to float error; exposed for tests. *)

val inner_product : t -> t -> Qcx_linalg.Cplx.t
val fidelity : t -> t -> float
(** |<a|b>|^2. *)

val of_amplitudes : Qcx_linalg.Cplx.t array -> t
(** Length must be a power of two; normalizes. *)

val reduced_density : t -> int list -> Qcx_linalg.Mat.t
(** Partial trace down to the given qubits (in the order listed,
    first = least significant).  Used by tomography tests. *)
