(** Windowed hierarchical scheduler — the scale rung of the ladder.

    The exact encoding cannot follow circuits past a few hundred gates
    (the replayed full encoding alone becomes the bottleneck), so this
    module partitions the gate stream into id-contiguous time windows,
    solves each window's interfering-pair clusters with the Fast
    engine (pool-parallel {e across} windows), and stitches the
    committed windows together with boundary constraints:

    - {b qubit-availability frontiers}: every gate is released no
      earlier than the committed finish of its qubits' last gates in
      earlier windows (dependencies are id-ordered, so an
      id-contiguous partition never cuts one backwards);
    - {b crosstalk frontiers}: a CNOT on a flagged edge is released
      past the committed finish of every interfering partner already
      scheduled — cross-window flagged pairs are conservatively
      serialized, since the per-window encoding only prices
      intra-window overlaps.

    Releases enter the solver as absolute lower bounds
    ({!Qcx_smt.Solver.add_release}), so each window is solved in the
    global time frame and the composed schedule needs no per-window
    shifting.  Both phases merge results in window order; combined
    with the per-window sequential cluster solve this makes the
    composed schedule bit-identical at every [jobs].

    Quality: within a window, decisions come from the same clustered
    optimization as the [Clustered] rung; the only losses versus a
    monolithic solve are at window boundaries (serialized flagged
    pairs that an exact solve might have preferred to overlap, and
    frontier slack).  The scale bench gates the end-to-end objective
    against exact solves on <= 20-qubit control slices. *)

type result = {
  schedule : Qcx_circuit.Schedule.t;
  windows : int;  (** windows the circuit was partitioned into *)
  clusters : int;  (** total clusters solved across windows *)
  nodes : int;  (** total solver nodes (cluster solves + replays) *)
  objective : float;  (** {!Evaluate.objective} of the composed schedule *)
  boundary_releases : int;
      (** gates whose release was raised by a cross-window flagged
          partner (beyond plain qubit availability) *)
}

val clusters_of : (int * int) list -> (int * int) list list
(** Connected components of instances sharing a gate, sorted by
    smallest member for a [jobs]-independent order.  Shared with
    [Xtalk_sched]'s clustered rung. *)

val solve_cluster_decisions :
  jobs:int ->
  engine:Qcx_smt.Solver.engine ->
  node_budget:int ->
  deadline:(unit -> float option) ->
  build:(instances:(int * int) list -> Encoding.t) ->
  warm:(Encoding.t -> bool array list) ->
  (int * int) list ->
  int * int * ((int * int) * (bool * bool * bool)) list
(** Solve each cluster independently (pool-parallel, merged in cluster
    order) and return [(nclusters, total_nodes, decisions)] where each
    decision maps [(gate1, gate2)] to its [(o, before, after)] values.
    Failed cluster solves contribute no decisions. *)

val pin_decisions : Encoding.t -> ((int * int) * (bool * bool * bool)) list -> unit
(** Pin an encoding's pair booleans to the given decisions with unit
    clauses; undecided pairs stay free. *)

val schedule :
  ?window_gates:int ->
  omega:float ->
  threshold:float ->
  node_budget:int ->
  deadline:(unit -> float option) ->
  jobs:int ->
  engine:Qcx_smt.Solver.engine ->
  device:Qcx_device.Device.t ->
  xtalk:Qcx_device.Crosstalk.t ->
  Qcx_circuit.Circuit.t ->
  result option
(** Schedule an already-SWAP-decomposed circuit in windows of
    [window_gates] gates (default 160; the measure suffix always joins
    the final window so readout stays synchronized).  [deadline] is a
    thunk yielding the remaining solver deadline, polled before every
    solve.  Returns [None] on any failure — deadline expiry mid-stitch,
    invalid composed schedule — letting the ladder fall through to
    greedy. *)
