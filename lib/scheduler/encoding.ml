module Circuit = Qcx_circuit.Circuit
module Gate = Qcx_circuit.Gate
module Dag = Qcx_circuit.Dag
module Device = Qcx_device.Device
module Calibration = Qcx_device.Calibration
module Crosstalk = Qcx_device.Crosstalk
module Topology = Qcx_device.Topology
module Solver = Qcx_smt.Solver

type pair = { gate1 : int; gate2 : int; o : int; before : int; after : int }

type t = {
  solver : Solver.t;
  tau : int array;
  readout : int;
  pairs : pair list;
}

let edge_of g =
  match g.Gate.qubits with
  | [ a; b ] -> Topology.normalize (a, b)
  | _ -> invalid_arg "Encoding: malformed CNOT"

let interfering_instances ~device ~xtalk ~threshold ~dag =
  let cal = Device.calibration device in
  let flagged = Crosstalk.high_crosstalk_pairs xtalk cal ~threshold in
  let unordered (a, b) = if a <= b then (a, b) else (b, a) in
  (* Hash the flagged set once instead of scanning the list per
     candidate pair, and drop CNOTs on unflagged edges before the
     quadratic enumeration — they can never form a flagged pair.  On a
     1k-gate circuit over a sparsely flagged 127-qubit map this turns
     ~500k list scans into a few thousand hash probes. *)
  let flagged_tbl = Hashtbl.create 16 in
  let on_flagged_edge = Hashtbl.create 16 in
  List.iter
    (fun (e1, e2) ->
      Hashtbl.replace flagged_tbl (unordered (e1, e2)) ();
      Hashtbl.replace on_flagged_edge e1 ();
      Hashtbl.replace on_flagged_edge e2 ())
    flagged;
  let is_flagged e1 e2 = Hashtbl.mem flagged_tbl (unordered (e1, e2)) in
  let cnots =
    List.filter
      (fun g -> g.Gate.kind = Gate.Cnot && Hashtbl.mem on_flagged_edge (edge_of g))
      (Circuit.gates (Dag.circuit dag))
  in
  let rec pairs = function
    | [] -> []
    | g :: rest ->
      List.filter_map
        (fun g' ->
          let e = edge_of g and e' = edge_of g' in
          if
            e <> e'
            && Dag.can_overlap dag g.Gate.id g'.Gate.id
            && is_flagged e e'
          then Some (g.Gate.id, g'.Gate.id)
          else None)
        rest
      @ pairs rest
  in
  pairs cnots

(* Clamp an error rate into a range where -log(1 - eps) is finite and
   the conditional is never below the independent rate (keeps the
   empty-overlap scenario the cheapest, which the solver's lower bound
   relies on). *)
let cost_of_error ~omega eps = omega *. -.log (1.0 -. min eps 0.9)

let conditional_rate xtalk cal ~target ~spectator =
  let independent = (Calibration.gate cal target).Calibration.cnot_error in
  max independent (Crosstalk.conditional_or_independent xtalk cal ~target ~spectator)

let rec powerset = function
  | [] -> [ [] ]
  | x :: rest ->
    let sub = powerset rest in
    sub @ List.map (fun s -> x :: s) sub

let build ?instances ~device ~xtalk ~omega ~threshold ~dag ~durations () =
  if omega < 0.0 || omega > 1.0 then invalid_arg "Encoding.build: omega out of [0,1]";
  let circuit = Dag.circuit dag in
  let cal = Device.calibration device in
  let solver = Solver.create () in
  let tau =
    Array.init (Circuit.length circuit) (fun id ->
        Solver.new_num solver (Printf.sprintf "tau_%d" id))
  in
  let readout = Solver.new_num solver "R" in
  Solver.add_sink solver readout;
  (* Infinitesimal makespan term: breaks objective ties toward the
     most parallel schedule, so omega = 0 coincides with ParSched
     exactly (Table 1) instead of merely matching its objective
     value. *)
  let origin = Solver.new_num solver "origin" in
  Solver.add_span_cost solver ~weight:1e-9 ~last:readout ~first:origin;
  (* Data dependency constraints (eq. 1). *)
  List.iter
    (fun g ->
      let id = g.Gate.id in
      List.iter
        (fun p -> Solver.add_diff solver ~dst:tau.(id) ~src:tau.(p) ~weight:durations.(p) ())
        (Dag.preds dag id))
    (Circuit.gates circuit);
  (* Readout synchronization and R as the global sink: R equals every
     measure start, and R bounds every gate's finish so the ALAP pass
     cannot push anything past the readout layer. *)
  List.iter
    (fun g ->
      let id = g.Gate.id in
      if Gate.is_measure g then begin
        Solver.add_diff solver ~dst:readout ~src:tau.(id) ~weight:0.0 ();
        Solver.add_diff solver ~dst:tau.(id) ~src:readout ~weight:0.0 ()
      end
      else Solver.add_diff solver ~dst:readout ~src:tau.(id) ~weight:durations.(id) ())
    (Circuit.gates circuit);
  (* Interfering pairs: booleans, exactly-one structure, guarded
     serialization / containment edges. *)
  let instances =
    match instances with
    | Some given -> given
    | None -> interfering_instances ~device ~xtalk ~threshold ~dag
  in
  let pairs =
    List.map
      (fun (i, j) ->
        let nm suffix = Printf.sprintf "%s_%d_%d" suffix i j in
        let o = Solver.new_bool solver (nm "o") in
        let before = Solver.new_bool solver (nm "b") in
        let after = Solver.new_bool solver (nm "a") in
        let lit var value = { Qcx_smt.Solver.var; value } in
        Solver.add_clause solver [ lit o true; lit before true; lit after true ];
        Solver.add_clause solver [ lit o false; lit before false ];
        Solver.add_clause solver [ lit o false; lit after false ];
        Solver.add_clause solver [ lit before false; lit after false ];
        (* before: tau_j >= tau_i + delta_i; after: symmetric. *)
        Solver.add_diff solver ~guard:(lit before true) ~dst:tau.(j) ~src:tau.(i)
          ~weight:durations.(i) ();
        Solver.add_diff solver ~guard:(lit after true) ~dst:tau.(i) ~src:tau.(j)
          ~weight:durations.(j) ();
        (* o: full containment, shorter gate inside the longer one
           (eqs. 11-13 collapse to this for constant durations). *)
        let shorter, longer = if durations.(i) <= durations.(j) then (i, j) else (j, i) in
        Solver.add_diff solver ~guard:(lit o true) ~dst:tau.(shorter) ~src:tau.(longer)
          ~weight:0.0 ();
        Solver.add_diff solver ~guard:(lit o true) ~dst:tau.(longer) ~src:tau.(shorter)
          ~weight:(durations.(shorter) -. durations.(longer))
          ();
        { gate1 = i; gate2 = j; o; before; after })
      instances
  in
  (* Gate error scenario costs (eqs. 3-8): powerset of each CNOT's
     pruned CanOlp set. *)
  let partners = Hashtbl.create 16 in
  List.iter
    (fun p ->
      Hashtbl.replace partners p.gate1 ((p.gate2, p.o) :: Option.value ~default:[] (Hashtbl.find_opt partners p.gate1));
      Hashtbl.replace partners p.gate2 ((p.gate1, p.o) :: Option.value ~default:[] (Hashtbl.find_opt partners p.gate2)))
    pairs;
  Hashtbl.iter
    (fun gate_id plist ->
      let g = Dag.gate dag gate_id in
      let target = edge_of g in
      let independent = (Calibration.gate cal target).Calibration.cnot_error in
      let scenarios =
        List.map
          (fun overlap_subset ->
            let lits =
              List.map
                (fun (other, o) ->
                  { Qcx_smt.Solver.var = o; value = List.mem_assoc other overlap_subset })
                plist
            in
            (* With a subset S overlapping: worst conditional error
               over S (eq. 7); independent rate when S is empty. *)
            let eps =
              List.fold_left
                (fun acc (other, _) ->
                  let spectator = edge_of (Dag.gate dag other) in
                  max acc (conditional_rate xtalk cal ~target ~spectator))
                independent overlap_subset
            in
            (lits, cost_of_error ~omega eps))
          (powerset plist)
      in
      Qcx_smt.Solver.add_cost_group solver scenarios)
    partners;
  (* CNOTs with no interfering partner still pay their independent
     gate cost - a constant, so it is omitted from the objective. *)
  (* Decoherence span costs (eqs. 9-10).  One program-order pass
     instead of a find per qubit — O(nq * G) was measurable on
     400+-qubit devices. *)
  let nq = Circuit.nqubits circuit in
  let first_on = Array.make nq (-1) in
  List.iter
    (fun g ->
      if (not (Gate.is_barrier g)) && not (Gate.is_measure g) then
        List.iter
          (fun q -> if first_on.(q) < 0 then first_on.(q) <- g.Gate.id)
          g.Gate.qubits)
    (Circuit.gates circuit);
  for q = 0 to nq - 1 do
    if first_on.(q) >= 0 then begin
      let coherence = Calibration.coherence_limit cal q in
      Solver.add_span_cost solver
        ~weight:((1.0 -. omega) /. coherence)
        ~last:readout ~first:tau.(first_on.(q))
    end
  done;
  { solver; tau; readout; pairs }

let hint_of_schedule t sched =
  let module Schedule = Qcx_circuit.Schedule in
  let hint = Array.make (Solver.nbools t.solver) false in
  List.iter
    (fun p ->
      if Schedule.overlaps sched p.gate1 p.gate2 then hint.(p.o) <- true
      else if Schedule.start sched p.gate2 >= Schedule.start sched p.gate1 then
        hint.(p.before) <- true
      else hint.(p.after) <- true)
    t.pairs;
  hint

let warm_hints ?(schedules = []) t =
  let serial = Array.make (Solver.nbools t.solver) false in
  List.iter (fun p -> serial.(p.before) <- true) t.pairs;
  let overlap = Array.make (Solver.nbools t.solver) false in
  List.iter (fun p -> overlap.(p.o) <- true) t.pairs;
  (serial :: overlap :: List.map (hint_of_schedule t) schedules)
