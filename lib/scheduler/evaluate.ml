module Circuit = Qcx_circuit.Circuit
module Gate = Qcx_circuit.Gate
module Schedule = Qcx_circuit.Schedule
module Device = Qcx_device.Device
module Calibration = Qcx_device.Calibration
module Crosstalk = Qcx_device.Crosstalk
module Topology = Qcx_device.Topology

type breakdown = {
  gate_success : float;
  decoherence_success : float;
  readout_success : float;
  success : float;
  error : float;
}

let edge_of g =
  match g.Gate.qubits with
  | [ a; b ] -> Topology.normalize (a, b)
  | _ -> invalid_arg "Evaluate: malformed CNOT"

let breakdown_of device sched ~cnot_error =
  let circuit = Schedule.circuit sched in
  let cal = Device.calibration device in
  let gate_success =
    List.fold_left
      (fun acc g ->
        if Gate.is_two_qubit g then acc *. (1.0 -. cnot_error g)
        else if Gate.is_single_qubit g then
          acc *. (1.0 -. (Calibration.qubit cal (List.hd g.Gate.qubits)).Calibration.single_qubit_error)
        else acc)
      1.0 (Circuit.gates circuit)
  in
  (* Lifetime ends at readout *start*: the measurement projects the
     state, so decay during the readout pulse does not corrupt it
     (this matches the noise engine, which injects idle errors only up
     to a gate's start time). *)
  let lifetime q =
    let first = ref infinity and last = ref neg_infinity in
    List.iter
      (fun g ->
        if (not (Gate.is_barrier g)) && List.mem q g.Gate.qubits then begin
          first := min !first (Schedule.start sched g.Gate.id);
          let fin =
            if Gate.is_measure g then Schedule.start sched g.Gate.id
            else Schedule.finish sched g.Gate.id
          in
          last := max !last fin
        end)
      (Circuit.gates circuit);
    if !first = infinity then None else Some (!last -. !first)
  in
  let decoherence_success =
    List.fold_left
      (fun acc q ->
        match lifetime q with
        | None -> acc
        | Some t -> acc *. exp (-.t /. Calibration.coherence_limit cal q))
      1.0
      (List.init (Circuit.nqubits circuit) Fun.id)
  in
  let readout_success =
    List.fold_left
      (fun acc g ->
        if Gate.is_measure g then
          acc *. (1.0 -. (Calibration.qubit cal (List.hd g.Gate.qubits)).Calibration.readout_error)
        else acc)
      1.0 (Circuit.gates circuit)
  in
  let success = gate_success *. decoherence_success *. readout_success in
  { gate_success; decoherence_success; readout_success; success; error = 1.0 -. success }

let oracle device sched =
  breakdown_of device sched ~cnot_error:(fun g ->
      Qcx_noise.Exec.effective_cnot_error device sched g.Gate.id)

let model device ~xtalk sched =
  let circuit = Schedule.circuit sched in
  let cal = Device.calibration device in
  breakdown_of device sched ~cnot_error:(fun g ->
      let target = edge_of g in
      let independent = (Calibration.gate cal target).Calibration.cnot_error in
      (* The paper's rule: the worst conditional rate among overlapping
         gates (eq. 7). *)
      List.fold_left
        (fun acc other ->
          if
            other.Gate.id <> g.Gate.id
            && Gate.is_two_qubit other
            && Schedule.overlaps sched g.Gate.id other.Gate.id
          then
            match Crosstalk.conditional xtalk ~target ~spectator:(edge_of other) with
            | Some c -> max acc c
            | None -> acc
          else acc)
        independent (Circuit.gates circuit))

let objective ?(threshold = 3.0) ~omega device ~xtalk sched =
  (* Recompute the encoding's eq. 17 objective from a finished
     schedule, so schedules produced by different rungs (exact vs
     windowed vs greedy) can be compared on equal terms.  Mirrors
     [Encoding.build] exactly except for the 1e-9 makespan tie-break,
     which is omitted (it exists only to pick among equal optima). *)
  let circuit = Schedule.circuit sched in
  let cal = Device.calibration device in
  let dag = Qcx_circuit.Dag.of_circuit circuit in
  let instances = Encoding.interfering_instances ~device ~xtalk ~threshold ~dag in
  let plists = Array.make (Circuit.length circuit) [] in
  List.iter
    (fun (i, j) ->
      plists.(i) <- j :: plists.(i);
      plists.(j) <- i :: plists.(j))
    instances;
  (* Gate error terms: CNOTs with no interfering partner pay a
     schedule-independent cost and are omitted, as in the encoding. *)
  let gate_cost = ref 0.0 in
  List.iter
    (fun g ->
      match plists.(g.Gate.id) with
      | [] -> ()
      | partners ->
        let target = edge_of g in
        let independent = (Calibration.gate cal target).Calibration.cnot_error in
        let eps =
          List.fold_left
            (fun acc other ->
              if Schedule.overlaps sched g.Gate.id other then
                let spectator = edge_of (Qcx_circuit.Dag.gate dag other) in
                max acc (Encoding.conditional_rate xtalk cal ~target ~spectator)
              else acc)
            independent partners
        in
        gate_cost := !gate_cost +. Encoding.cost_of_error ~omega eps)
    (Circuit.gates circuit);
  (* Decoherence terms: R - F_q per qubit, with R the synchronized
     readout start (makespan when the circuit has no measures) and F_q
     the qubit's statically-known first gate, as in the encoding. *)
  let r =
    let m =
      List.fold_left
        (fun acc g ->
          if Gate.is_measure g then
            Some (match acc with None -> Schedule.start sched g.Gate.id | Some t -> min t (Schedule.start sched g.Gate.id))
          else acc)
        None (Circuit.gates circuit)
    in
    match m with Some t -> t | None -> Schedule.makespan sched
  in
  let nq = Circuit.nqubits circuit in
  let first_on = Array.make nq neg_infinity in
  List.iter
    (fun g ->
      if (not (Gate.is_barrier g)) && not (Gate.is_measure g) then
        List.iter
          (fun q ->
            if first_on.(q) = neg_infinity then first_on.(q) <- Schedule.start sched g.Gate.id)
          g.Gate.qubits)
    (Circuit.gates circuit);
  let deco = ref 0.0 in
  for q = 0 to nq - 1 do
    if first_on.(q) > neg_infinity then
      deco := !deco +. ((1.0 -. omega) /. Calibration.coherence_limit cal q *. (r -. first_on.(q)))
  done;
  !gate_cost +. !deco

let duration sched =
  let circuit = Schedule.circuit sched in
  List.fold_left
    (fun acc g ->
      if Gate.is_measure g || Gate.is_barrier g then acc
      else max acc (Schedule.finish sched g.Gate.id))
    0.0 (Circuit.gates circuit)
  -. (let first =
        List.fold_left
          (fun acc g ->
            if Gate.is_measure g || Gate.is_barrier g then acc
            else min acc (Schedule.start sched g.Gate.id))
          infinity (Circuit.gates circuit)
      in
      if first = infinity then 0.0 else first)

let lifetimes sched =
  let circuit = Schedule.circuit sched in
  List.filter_map
    (fun q ->
      match Schedule.qubit_lifetime sched q with
      | None -> None
      | Some (first, last) -> Some (q, last -. first))
    (List.init (Circuit.nqubits circuit) Fun.id)
