module Circuit = Qcx_circuit.Circuit
module Gate = Qcx_circuit.Gate
module Dag = Qcx_circuit.Dag
module Schedule = Qcx_circuit.Schedule
module Device = Qcx_device.Device
module Crosstalk = Qcx_device.Crosstalk
module Topology = Qcx_device.Topology
module Solver = Qcx_smt.Solver
module Pool = Qcx_util.Pool

type result = {
  schedule : Schedule.t;
  windows : int;
  clusters : int;
  nodes : int;
  objective : float;
  boundary_releases : int;
}

(* Union-find over gate ids, used to cluster interfering pairs that
   share gates.  The returned clusters are sorted by their smallest
   instance so the order is independent of hash-table iteration —
   the parallel cluster solve chunks over this list, and determinism
   across [jobs] needs a stable order.  (Shared with the clustered
   rung of [Xtalk_sched].) *)
let clusters_of instances =
  let parent = Hashtbl.create 16 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None | Some None -> x
    | Some (Some p) ->
      let root = find p in
      Hashtbl.replace parent x (Some root);
      root
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra (Some rb)
  in
  List.iter
    (fun (i, j) ->
      if not (Hashtbl.mem parent i) then Hashtbl.replace parent i None;
      if not (Hashtbl.mem parent j) then Hashtbl.replace parent j None;
      union i j)
    instances;
  let groups = Hashtbl.create 4 in
  List.iter
    (fun ((i, _) as inst) ->
      let root = find i in
      Hashtbl.replace groups root (inst :: Option.value ~default:[] (Hashtbl.find_opt groups root)))
    instances;
  Hashtbl.fold (fun _ insts acc -> insts :: acc) groups []
  |> List.sort (fun a b -> compare (List.fold_left min max_int (List.map fst a), a)
                             (List.fold_left min max_int (List.map fst b), b))

(* Solve each cluster of interfering instances independently and
   return the union of boolean decisions, keyed by (gate1, gate2).
   Clusters run on the domain pool when [jobs > 1]; results merge in
   cluster order, so decisions are identical at every [jobs].  A
   cluster whose solve fails (deadline, budget) simply contributes no
   decisions — the caller's replay leaves those booleans free. *)
let solve_cluster_decisions ~jobs ~engine ~node_budget ~deadline ~build ~warm instances =
  let clusters = Array.of_list (clusters_of instances) in
  let solved =
    Pool.parallel_chunks ~jobs ~n:(Array.length clusters) (fun ~lo ~hi ->
        Array.init (hi - lo) (fun k ->
            let cluster_instances = clusters.(lo + k) in
            let enc = build ~instances:cluster_instances in
            match
              Solver.solve ~node_budget ?deadline_seconds:(deadline ())
                ~warm_starts:(warm enc) ~engine enc.Encoding.solver
            with
            | None -> (0, [])
            | Some sol ->
              ( sol.Solver.nodes,
                List.map
                  (fun p ->
                    ( (p.Encoding.gate1, p.Encoding.gate2),
                      ( sol.Solver.bools.(p.Encoding.o),
                        sol.Solver.bools.(p.Encoding.before),
                        sol.Solver.bools.(p.Encoding.after) ) ))
                  enc.Encoding.pairs )))
    |> List.concat_map Array.to_list
  in
  let nodes = List.fold_left (fun acc (n, _) -> acc + n) 0 solved in
  (Array.length clusters, nodes, List.concat_map snd solved)

(* Pin pair booleans with unit clauses.  Pairs without a decision
   (their cluster solve failed) stay free. *)
let pin_decisions enc decisions =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, d) -> Hashtbl.replace tbl k d) decisions;
  List.iter
    (fun p ->
      match Hashtbl.find_opt tbl (p.Encoding.gate1, p.Encoding.gate2) with
      | None -> ()
      | Some (o, b, a) ->
        Solver.add_clause enc.Encoding.solver [ { Solver.var = p.Encoding.o; value = o } ];
        Solver.add_clause enc.Encoding.solver [ { Solver.var = p.Encoding.before; value = b } ];
        Solver.add_clause enc.Encoding.solver [ { Solver.var = p.Encoding.after; value = a } ])
    enc.Encoding.pairs

(* ---- window partitioning ---- *)

(* Contiguous gate-id ranges covering the circuit: the prefix before
   the first measure is chunked into [window_gates]-sized windows and
   the final window absorbs the measure suffix, so the synchronized
   readout layer is always solved as one piece.  Gate ids are
   program-order-sequential by construction, and per-qubit program
   order already respects the DAG, so id-contiguous windows never cut
   a dependency backwards — every predecessor of a gate lives in the
   same or an earlier window. *)
let partition ~window_gates circuit =
  let n = Circuit.length circuit in
  let gates = Array.of_list (Circuit.gates circuit) in
  let suffix_start =
    let rec scan i = if i >= n then n else if Gate.is_measure gates.(i) then i else scan (i + 1) in
    scan 0
  in
  let w = max 1 window_gates in
  let nwin = max 1 ((suffix_start + w - 1) / w) in
  List.init nwin (fun i ->
      let lo = i * w in
      let hi = if i = nwin - 1 then n else min suffix_start ((i + 1) * w) in
      (lo, hi))

type window = {
  lo : int;  (** first original gate id of the window *)
  sub : Circuit.t;
  dag : Dag.t;
  durations : float array;
  instances : (int * int) list;  (** window-local gate ids *)
}

let prepare ~device ~xtalk ~threshold circuit (lo, hi) =
  let gates = Array.of_list (Circuit.gates circuit) in
  let sub = ref (Circuit.create (Circuit.nqubits circuit)) in
  for id = lo to hi - 1 do
    let g = gates.(id) in
    sub := Circuit.add !sub g.Gate.kind g.Gate.qubits
  done;
  let sub = !sub in
  let dag = Dag.of_circuit sub in
  let durations = Durations.assign device sub in
  let instances = Encoding.interfering_instances ~device ~xtalk ~threshold ~dag in
  { lo; sub; dag; durations; instances }

(* Phase 1: solve one window's clusters (sequentially — phase 1 runs
   window-parallel on the pool, which must not be re-entered).
   Returns the window's encoding builder for the phase-2 replay. *)
let solve_window ~engine ~node_budget ~deadline ~omega ~threshold ~device ~xtalk w =
  let build ~instances =
    Encoding.build ~instances ~device ~xtalk ~omega ~threshold ~dag:w.dag
      ~durations:w.durations ()
  in
  let hint_schedules =
    if engine <> Solver.Fast then []
    else
      let from f = match f () with s -> [ s ] | exception _ -> [] in
      from (fun () -> Par_sched.schedule device w.sub)
      @ from (fun () -> fst (Greedy_sched.schedule ~threshold ~device ~xtalk w.sub))
  in
  let warm enc =
    if engine <> Solver.Fast then []
    else Encoding.warm_hints ~schedules:hint_schedules enc
  in
  let nclusters, nodes, decisions =
    solve_cluster_decisions ~jobs:1 ~engine ~node_budget ~deadline ~build ~warm w.instances
  in
  (build, nclusters, nodes, decisions)

exception Stitch_failed

let schedule ?(window_gates = 160) ~omega ~threshold ~node_budget ~deadline ~jobs ~engine
    ~device ~xtalk circuit =
  let n = Circuit.length circuit in
  if n = 0 then None
  else begin
    try
      let cal = Device.calibration device in
      (* Flagged-pair adjacency for the cross-window crosstalk
         frontier: which hardware edges interfere with which. *)
      let partners : (Topology.edge, Topology.edge list) Hashtbl.t = Hashtbl.create 16 in
      let note a b =
        Hashtbl.replace partners a (b :: Option.value ~default:[] (Hashtbl.find_opt partners a))
      in
      List.iter
        (fun (e1, e2) -> note e1 e2; note e2 e1)
        (Crosstalk.high_crosstalk_pairs xtalk cal ~threshold);
      let prepared =
        Array.of_list
          (List.map (prepare ~device ~xtalk ~threshold circuit) (partition ~window_gates circuit))
      in
      (* Phase 1: per-window cluster solves, pool-parallel across
         windows.  Results merge in window order, and window-local
         work derives nothing from the chunking, so the decisions are
         bit-identical at every [jobs]. *)
      let solved =
        Pool.parallel_chunks ~jobs ~n:(Array.length prepared) (fun ~lo ~hi ->
            Array.init (hi - lo) (fun k ->
                solve_window ~engine ~node_budget ~deadline ~omega ~threshold ~device ~xtalk
                  prepared.(lo + k)))
        |> List.concat_map Array.to_list
        |> Array.of_list
      in
      (* Phase 2: sequential stitch.  Each window is replayed with its
         phase-1 decisions pinned plus absolute release bounds carrying
         the committed frontier: per-qubit availability (dependencies
         never run backwards across the boundary) and, for CNOTs on
         flagged edges, the last finish of any committed interfering
         partner (conservatively serializing cross-window flagged pairs
         — the encoding itself only prices intra-window overlaps). *)
      let nq = Circuit.nqubits circuit in
      let frontier = Array.make nq 0.0 in
      let edge_last : (Topology.edge, float) Hashtbl.t = Hashtbl.create 64 in
      let starts = Array.make n 0.0 in
      let total_nodes = ref 0 in
      let total_clusters = ref 0 in
      let releases = ref 0 in
      Array.iteri
        (fun wi (build, nclusters, nodes, decisions) ->
          let w = prepared.(wi) in
          total_nodes := !total_nodes + nodes;
          total_clusters := !total_clusters + nclusters;
          let enc = build ~instances:w.instances in
          pin_decisions enc decisions;
          List.iter
            (fun (g : Gate.t) ->
              let dep =
                List.fold_left (fun acc q -> Float.max acc frontier.(q)) 0.0 g.Gate.qubits
              in
              let xrel =
                if not (Gate.is_two_qubit g) then 0.0
                else
                  List.fold_left
                    (fun acc e' ->
                      match Hashtbl.find_opt edge_last e' with
                      | Some t -> Float.max acc t
                      | None -> acc)
                    0.0
                    (Option.value ~default:[]
                       (Hashtbl.find_opt partners (Encoding.edge_of g)))
              in
              if xrel > dep then incr releases;
              let rel = Float.max dep xrel in
              if rel > 0.0 then
                Solver.add_release enc.Encoding.solver ~var:enc.Encoding.tau.(g.Gate.id)
                  ~time:rel)
            (Circuit.gates w.sub);
          match
            Solver.solve ~node_budget ?deadline_seconds:(deadline ()) ~engine
              enc.Encoding.solver
          with
          | None -> raise Stitch_failed
          | Some sol ->
            total_nodes := !total_nodes + sol.Solver.nodes;
            List.iter
              (fun (g : Gate.t) ->
                let s = g.Gate.id in
                let t = sol.Solver.nums.(enc.Encoding.tau.(s)) in
                starts.(w.lo + s) <- t;
                let fin = t +. w.durations.(s) in
                List.iter
                  (fun q -> if fin > frontier.(q) then frontier.(q) <- fin)
                  g.Gate.qubits;
                if Gate.is_two_qubit g then begin
                  let e = Encoding.edge_of g in
                  match Hashtbl.find_opt edge_last e with
                  | Some t0 when t0 >= fin -> ()
                  | _ -> Hashtbl.replace edge_last e fin
                end)
              (Circuit.gates w.sub))
        solved;
      let durations = Durations.assign device circuit in
      let sched = Schedule.shift_to_zero (Schedule.make circuit ~starts ~durations) in
      (match Schedule.validate sched with
      | Ok () -> ()
      | Error _ -> raise Stitch_failed);
      let objective = Evaluate.objective ~threshold ~omega device ~xtalk sched in
      Some
        {
          schedule = sched;
          windows = Array.length prepared;
          clusters = !total_clusters;
          nodes = !total_nodes;
          objective;
          boundary_releases = !releases;
        }
    with _ -> None
  end
