(** Schedule quality metrics.

    Two views:
    - the {e model} view, computed from calibration plus characterized
      crosstalk data — what the compiler believes (used for objective
      sanity checks); and
    - the {e oracle} view, computed from the device's ground truth with
      the same error composition as the noise engine — the analytic
      expectation of a hardware run (used by the figure harnesses
      alongside full Monte-Carlo tomography). *)

type breakdown = {
  gate_success : float;  (** product of per-gate success probabilities *)
  decoherence_success : float;  (** product of per-qubit e^{-t/T} *)
  readout_success : float;  (** product of per-measure (1 - readout error) *)
  success : float;  (** product of the three *)
  error : float;  (** 1 - success *)
}

val oracle : Qcx_device.Device.t -> Qcx_circuit.Schedule.t -> breakdown
(** Uses [Device.ground_truth] via [Qcx_noise.Exec.effective_cnot_error]. *)

val model :
  Qcx_device.Device.t -> xtalk:Qcx_device.Crosstalk.t -> Qcx_circuit.Schedule.t -> breakdown
(** Uses characterized data and the paper's max-over-overlaps rule. *)

val objective :
  ?threshold:float ->
  omega:float ->
  Qcx_device.Device.t ->
  xtalk:Qcx_device.Crosstalk.t ->
  Qcx_circuit.Schedule.t ->
  float
(** Recompute the encoding's eq. 17 objective from a schedule:
    [omega * sum -log(1 - eps_g)] over CNOTs with at least one
    interfering instance (eps is the worst conditional rate among
    partners actually overlapping in the schedule), plus
    [(1-omega)/T_q * (R - F_q)] per qubit.  Omits the encoding's
    infinitesimal makespan tie-break, so it can differ from a solver
    objective by ~1e-9 * makespan.  Used by the scale bench's quality
    gate to compare windowed against exact schedules. *)

val duration : Qcx_circuit.Schedule.t -> float
(** Program duration: makespan of the unitary portion (readout
    excluded), the quantity of Figure 5(d). *)

val lifetimes : Qcx_circuit.Schedule.t -> (int * float) list
(** Per-qubit lifetimes in ns (first gate start to last op finish). *)
