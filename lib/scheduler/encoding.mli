(** The Section 7 constraint encoding, targeting [Qcx_smt.Solver].

    Variables: one start time per gate plus a synchronized-readout
    variable [R] (the sink); per interfering CNOT pair, three booleans
    - an overlap indicator [o] (constraint 2) and two serialization
    orders - tied together by exactly-one clauses.

    Constraints, as in the paper:
    - data dependencies (eq. 1) as difference edges;
    - overlap semantics: [o] activates the IBMQ full-containment
      constraints (eqs. 11-13; with constant durations only the
      shorter-inside-longer direction is satisfiable, so no extra
      boolean is needed), the two order booleans activate the
      corresponding serialization edges;
    - gate error scenarios (eqs. 3-8): the powerset of each gate's
      pruned [CanOlp] set becomes a cost group whose scenario cost is
      the worst conditional error among overlapping partners;
    - decoherence (eqs. 9-10): a span cost [(1-omega)/T_q * (R - F_q)]
      per qubit, where [F_q] is the qubit's statically-known first
      gate (per-qubit gate order is fixed by data dependencies);
    - simultaneous readout: measure start times are equated to [R].

    Objective: the paper's eq. 17 in log-success form (matching the
    reference Qiskit pass): minimize
    [omega * sum_g -log(1 - eps_g) + (1-omega) * sum_q t_q / T_q].

    Only CNOT pairs flagged as high-crosstalk in the *characterized*
    data participate - the paper's pruning of CanOlp to 1-hop
    high-conditional-error pairs. *)

type pair = {
  gate1 : int;  (** gate id *)
  gate2 : int;
  o : int;  (** overlap indicator boolean *)
  before : int;  (** gate1 strictly before gate2 *)
  after : int;  (** gate2 strictly before gate1 *)
}

type t = {
  solver : Qcx_smt.Solver.t;
  tau : int array;  (** numeric variable per gate id *)
  readout : int;  (** the R variable *)
  pairs : pair list;
}

val build :
  ?instances:(int * int) list ->
  device:Qcx_device.Device.t ->
  xtalk:Qcx_device.Crosstalk.t ->
  omega:float ->
  threshold:float ->
  dag:Qcx_circuit.Dag.t ->
  durations:float array ->
  unit ->
  t
(** [threshold] is the conditional/independent ratio above which a
    characterized pair counts as high-crosstalk (the paper uses 3).
    [instances] overrides the interfering-pair enumeration — used by
    the cluster decomposition to encode one cluster at a time. *)

val warm_hints : ?schedules:Qcx_circuit.Schedule.t list -> t -> bool array list
(** Candidate full boolean assignments to seed the solver's incumbent
    ({!Qcx_smt.Solver.solve}'s [warm_starts]): the all-serial
    assignment (every pair ordered [gate1] before [gate2], program
    order — always feasible), the all-overlap assignment, and one
    assignment per given schedule (pairs overlapping in the schedule
    get [o], the rest the matching order boolean).  Infeasible hints
    cost the solver one propagation each and are otherwise ignored. *)

val interfering_instances :
  device:Qcx_device.Device.t ->
  xtalk:Qcx_device.Crosstalk.t ->
  threshold:float ->
  dag:Qcx_circuit.Dag.t ->
  (int * int) list
(** The gate-id pairs that receive booleans: CNOT instances that may
    overlap per the DAG and whose hardware edges form a flagged
    high-crosstalk pair.  Exposed for tests and for the cluster
    decomposition. *)

val edge_of : Qcx_circuit.Gate.t -> Qcx_device.Topology.edge
(** The normalized hardware edge of a two-qubit gate. *)

val cost_of_error : omega:float -> float -> float
(** [omega * -log(1 - eps)], with [eps] clamped below 1 — the gate
    error term of eq. 17 for one CNOT. *)

val conditional_rate :
  Qcx_device.Crosstalk.t ->
  Qcx_device.Calibration.t ->
  target:Qcx_device.Topology.edge ->
  spectator:Qcx_device.Topology.edge ->
  float
(** The characterized conditional error of [target] while [spectator]
    runs, floored at the independent rate.  Exposed so schedule
    evaluation ({!Evaluate.objective}) prices overlaps exactly as the
    encoding does. *)
