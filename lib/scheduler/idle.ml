module Circuit = Qcx_circuit.Circuit
module Gate = Qcx_circuit.Gate
module Schedule = Qcx_circuit.Schedule

type window = { w_qubit : int; w_start : float; w_finish : float }

(* The executor ignores gaps below 1e-9 ns; so do we. *)
let eps = 1e-9

let windows sched =
  let circuit = Schedule.circuit sched in
  let spans : (int, (float * float) list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (g : Gate.t) ->
      if not (Gate.is_barrier g) then begin
        let id = g.Gate.id in
        let span = (Schedule.start sched id, Schedule.finish sched id) in
        List.iter
          (fun q ->
            Hashtbl.replace spans q
              (span :: Option.value ~default:[] (Hashtbl.find_opt spans q)))
          g.Gate.qubits
      end)
    (Circuit.gates circuit);
  let qubits = List.sort compare (Hashtbl.fold (fun q _ acc -> q :: acc) spans []) in
  List.concat_map
    (fun q ->
      let on_q = List.sort compare (Hashtbl.find spans q) in
      let rec gaps = function
        | (_, f1) :: ((s2, _) :: _ as rest) ->
          if s2 > f1 +. eps then { w_qubit = q; w_start = f1; w_finish = s2 } :: gaps rest
          else gaps rest
        | [ _ ] | [] -> []
      in
      gaps on_q)
    qubits

let per_qubit sched =
  let by_qubit = Hashtbl.create 16 in
  List.iter
    (fun w ->
      let len = w.w_finish -. w.w_start in
      let tot, mx =
        Option.value ~default:(0.0, 0.0) (Hashtbl.find_opt by_qubit w.w_qubit)
      in
      Hashtbl.replace by_qubit w.w_qubit (tot +. len, max mx len))
    (windows sched);
  List.sort compare (Hashtbl.fold (fun q (t, m) acc -> (q, t, m) :: acc) by_qubit [])

let summarize sched =
  List.fold_left
    (fun (tot, mx) w ->
      let len = w.w_finish -. w.w_start in
      (tot +. len, max mx len))
    (0.0, 0.0) (windows sched)

let total sched = fst (summarize sched)
let max_window sched = snd (summarize sched)
