module Circuit = Qcx_circuit.Circuit
module Dag = Qcx_circuit.Dag
module Schedule = Qcx_circuit.Schedule
module Solver = Qcx_smt.Solver

type rung = Exact | Incumbent | Clustered | Greedy | Parallel

let rung_name = function
  | Exact -> "exact"
  | Incumbent -> "incumbent"
  | Clustered -> "clustered"
  | Greedy -> "greedy"
  | Parallel -> "parallel"

let all_rungs = [ Exact; Incumbent; Clustered; Greedy; Parallel ]

type stats = {
  pairs : int;
  clusters : int;
  nodes : int;
  optimal : bool;
  objective : float;
  solve_seconds : float;
  rung : rung;
}

(* Union-find over gate ids, used to cluster interfering pairs that
   share gates. *)
let clusters_of instances =
  let parent = Hashtbl.create 16 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None | Some None -> x
    | Some (Some p) ->
      let root = find p in
      Hashtbl.replace parent x (Some root);
      root
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra (Some rb)
  in
  List.iter
    (fun (i, j) ->
      if not (Hashtbl.mem parent i) then Hashtbl.replace parent i None;
      if not (Hashtbl.mem parent j) then Hashtbl.replace parent j None;
      union i j)
    instances;
  let groups = Hashtbl.create 4 in
  List.iter
    (fun ((i, _) as inst) ->
      let root = find i in
      Hashtbl.replace groups root (inst :: Option.value ~default:[] (Hashtbl.find_opt groups root)))
    instances;
  Hashtbl.fold (fun _ insts acc -> insts :: acc) groups []

let extract_schedule circuit durations encoding (solution : Solver.solution) =
  let starts =
    Array.init (Circuit.length circuit) (fun id -> solution.nums.(encoding.Encoding.tau.(id)))
  in
  Schedule.shift_to_zero (Schedule.make circuit ~starts ~durations)

let schedule ?(omega = 0.5) ?(threshold = 3.0) ?(node_budget = 2_000_000)
    ?(max_exact_pairs = 14) ?deadline_seconds ?(ladder_start = Exact) ~device ~xtalk circuit =
  let circuit = Circuit.decompose_swaps circuit in
  if omega >= 1.0 then begin
    (* omega = 1 ignores decoherence entirely; any serialization is
       then optimal and the paper equates this setting with
       SerialSched (Table 1, Sections 9.2/9.3). *)
    let sched = Serial_sched.schedule device circuit in
    let dag = Dag.of_circuit circuit in
    let instances = Encoding.interfering_instances ~device ~xtalk ~threshold ~dag in
    ( sched,
      {
        pairs = List.length instances;
        clusters = 1;
        nodes = 0;
        optimal = true;
        objective = nan;
        solve_seconds = 0.0;
        rung = Exact;
      } )
  end
  else begin
  let t0 = Sys.time () in
  let wall0 = Unix.gettimeofday () in
  (* Remaining share of the compile deadline; every solver call below
     gets it, so a blowup in one rung cannot eat the whole budget of
     the rungs after it. *)
  let remaining () =
    match deadline_seconds with
    | None -> None
    | Some d -> Some (max 0.0 (d -. (Unix.gettimeofday () -. wall0)))
  in
  (* Degradation ladder (never fail a compile): each rung catches its
     own failure — deadline expiry, budget exhaustion, unsat, even an
     exception — and falls through to the next-cheaper scheduler.
     ParSched, the last rung, is deterministic list scheduling with
     nothing left to time out. *)
  let finish ~pairs (sched, nodes, optimal, objective, nclusters, rung) =
    ( sched,
      {
        pairs;
        clusters = nclusters;
        nodes;
        optimal;
        objective;
        solve_seconds = Sys.time () -. t0;
        rung;
      } )
  in
  let parallel_rung () = (Par_sched.schedule device circuit, 0, false, nan, 0, Parallel) in
  let greedy_rung () =
    match Greedy_sched.schedule ~threshold ~device ~xtalk circuit with
    | sched, _serialized -> (sched, 0, false, nan, 0, Greedy)
    | exception _ -> parallel_rung ()
  in
  match
    let durations = Durations.assign device circuit in
    let dag = Dag.of_circuit circuit in
    let instances = Encoding.interfering_instances ~device ~xtalk ~threshold ~dag in
    let build ?instances () =
      Encoding.build ?instances ~device ~xtalk ~omega ~threshold ~dag ~durations ()
    in
    let cluster_rung () =
      match
        (* Cluster decomposition: optimize each connected component of
           interfering pairs separately, then evaluate the union of
           decisions once (zero remaining booleans). *)
        let clusters = clusters_of instances in
        let total_nodes = ref 0 in
        let decisions =
          List.concat_map
            (fun cluster_instances ->
              let enc = build ~instances:cluster_instances () in
              match Solver.solve ~node_budget ?deadline_seconds:(remaining ()) enc.Encoding.solver with
              | None -> []
              | Some sol ->
                total_nodes := !total_nodes + sol.nodes;
                List.map
                  (fun p ->
                    ( (p.Encoding.gate1, p.Encoding.gate2),
                      ( sol.bools.(p.Encoding.o),
                        sol.bools.(p.Encoding.before),
                        sol.bools.(p.Encoding.after) ) ))
                  enc.Encoding.pairs)
            clusters
        in
        let enc = build ~instances () in
        (* Pin every boolean with unit clauses; a single propagation
           then reaches the unique leaf.  Pairs whose cluster timed out
           without an incumbent stay free, so give the replay solve its
           own deadline share too. *)
        List.iter
          (fun p ->
            match List.assoc_opt (p.Encoding.gate1, p.Encoding.gate2) decisions with
            | None -> ()
            | Some (o, b, a) ->
              Solver.add_clause enc.Encoding.solver [ { Solver.var = p.Encoding.o; value = o } ];
              Solver.add_clause enc.Encoding.solver
                [ { Solver.var = p.Encoding.before; value = b } ];
              Solver.add_clause enc.Encoding.solver
                [ { Solver.var = p.Encoding.after; value = a } ])
          enc.Encoding.pairs;
        match Solver.solve ~node_budget ?deadline_seconds:(remaining ()) enc.Encoding.solver with
        | Some sol ->
          Some
            ( extract_schedule circuit durations enc sol,
              !total_nodes + sol.nodes,
              false,
              sol.objective,
              List.length clusters,
              Clustered )
        | None -> None
      with
      | Some r -> r
      | None -> greedy_rung ()
      | exception _ -> greedy_rung ()
    in
    let exact_rung () =
      if List.length instances > max_exact_pairs then cluster_rung ()
      else begin
        match
          let enc = build ~instances () in
          Solver.solve ~node_budget ?deadline_seconds:(remaining ()) enc.Encoding.solver
          |> Option.map (fun sol -> (enc, sol))
        with
        | Some (enc, sol) ->
          let rung = if sol.Solver.optimal then Exact else Incumbent in
          ( extract_schedule circuit durations enc sol,
            sol.nodes,
            sol.optimal,
            sol.objective,
            1,
            rung )
        | None -> cluster_rung ()
        | exception _ -> cluster_rung ()
      end
    in
    let result =
      match ladder_start with
      | Exact | Incumbent -> exact_rung ()
      | Clustered -> cluster_rung ()
      | Greedy -> greedy_rung ()
      | Parallel -> parallel_rung ()
    in
    (result, List.length instances)
  with
  | result, pairs -> finish ~pairs result
  | exception _ ->
    (* Even building the encoding failed (malformed crosstalk data,
       pathological DAG): serve the parallel schedule rather than
       failing the compile. *)
    finish ~pairs:0 (parallel_rung ())
  end

let tune_omega ?(candidates = [ 0.0; 0.05; 0.2; 0.5; 0.8; 1.0 ]) ?(threshold = 3.0) ~device
    ~xtalk circuit =
  if candidates = [] then invalid_arg "Xtalk_sched.tune_omega: no candidates";
  let scored =
    List.map
      (fun omega ->
        let sched, stats = schedule ~omega ~threshold ~device ~xtalk circuit in
        let err = (Evaluate.model device ~xtalk sched).Evaluate.error in
        (err, (omega, sched, stats)))
      candidates
  in
  let best =
    List.fold_left
      (fun acc candidate -> if fst candidate < fst acc then candidate else acc)
      (List.hd scored) (List.tl scored)
  in
  snd best
