module Circuit = Qcx_circuit.Circuit
module Dag = Qcx_circuit.Dag
module Schedule = Qcx_circuit.Schedule
module Solver = Qcx_smt.Solver
module Pool = Qcx_util.Pool

type rung = Exact | Incumbent | Clustered | Windowed | Greedy | Parallel

let rung_name = function
  | Exact -> "exact"
  | Incumbent -> "incumbent"
  | Clustered -> "clustered"
  | Windowed -> "windowed"
  | Greedy -> "greedy"
  | Parallel -> "parallel"

let all_rungs = [ Exact; Incumbent; Clustered; Windowed; Greedy; Parallel ]

type stats = {
  pairs : int;
  clusters : int;
  windows : int;
  nodes : int;
  optimal : bool;
  objective : float;
  solve_seconds : float;
  cpu_seconds : float;
  idle_total : float;
  idle_max : float;
  rung : rung;
}

let extract_schedule circuit durations encoding (solution : Solver.solution) =
  let starts =
    Array.init (Circuit.length circuit) (fun id -> solution.nums.(encoding.Encoding.tau.(id)))
  in
  Schedule.shift_to_zero (Schedule.make circuit ~starts ~durations)

(* The core scheduler over an already-SWAP-decomposed circuit, with
   optionally precomputed DAG/durations/instances ([tune_omega] shares
   one preparation across every omega candidate). *)
let schedule_decomposed ~omega ~threshold ~node_budget ~max_exact_pairs ~deadline_seconds
    ~ladder_start ~window_gates ~jobs ~engine ~device ~xtalk ~prep circuit =
  if omega >= 1.0 then begin
    (* omega = 1 ignores decoherence entirely; any serialization is
       then optimal and the paper equates this setting with
       SerialSched (Table 1, Sections 9.2/9.3). *)
    let sched = Serial_sched.schedule device circuit in
    let instances =
      match prep with
      | Some (_, _, instances) -> instances
      | None ->
        let dag = Dag.of_circuit circuit in
        Encoding.interfering_instances ~device ~xtalk ~threshold ~dag
    in
    let idle_total, idle_max = Idle.summarize sched in
    ( sched,
      {
        pairs = List.length instances;
        clusters = 1;
        windows = 0;
        nodes = 0;
        optimal = true;
        objective = nan;
        solve_seconds = 0.0;
        cpu_seconds = 0.0;
        idle_total;
        idle_max;
        rung = Exact;
      } )
  end
  else begin
  let t0 = Sys.time () in
  let wall0 = Unix.gettimeofday () in
  (* Remaining share of the compile deadline; every solver call below
     gets it, so a blowup in one rung cannot eat the whole budget of
     the rungs after it. *)
  let remaining () =
    match deadline_seconds with
    | None -> None
    | Some d -> Some (max 0.0 (d -. (Unix.gettimeofday () -. wall0)))
  in
  (* Degradation ladder (never fail a compile): each rung catches its
     own failure — deadline expiry, budget exhaustion, unsat, even an
     exception — and falls through to the next-cheaper scheduler.
     ParSched, the last rung, is deterministic list scheduling with
     nothing left to time out. *)
  let finish ~pairs (sched, nodes, optimal, objective, nclusters, nwindows, rung) =
    let idle_total, idle_max = Idle.summarize sched in
    ( sched,
      {
        pairs;
        clusters = nclusters;
        windows = nwindows;
        nodes;
        optimal;
        objective;
        solve_seconds = Unix.gettimeofday () -. wall0;
        cpu_seconds = Sys.time () -. t0;
        idle_total;
        idle_max;
        rung;
      } )
  in
  let parallel_rung () = (Par_sched.schedule device circuit, 0, false, nan, 0, 0, Parallel) in
  let greedy_rung () =
    match Greedy_sched.schedule ~threshold ~device ~xtalk circuit with
    | sched, _serialized -> (sched, 0, false, nan, 0, 0, Greedy)
    | exception _ -> parallel_rung ()
  in
  let windowed_rung () =
    match
      Window_sched.schedule ~window_gates ~omega ~threshold ~node_budget
        ~deadline:remaining ~jobs ~engine ~device ~xtalk circuit
    with
    | Some r ->
      ( r.Window_sched.schedule,
        r.Window_sched.nodes,
        false,
        r.Window_sched.objective,
        r.Window_sched.clusters,
        r.Window_sched.windows,
        Windowed )
    | None -> greedy_rung ()
    | exception _ -> greedy_rung ()
  in
  match
    let dag, durations, instances =
      match prep with
      | Some p -> p
      | None ->
        let durations = Durations.assign device circuit in
        let dag = Dag.of_circuit circuit in
        let instances = Encoding.interfering_instances ~device ~xtalk ~threshold ~dag in
        (dag, durations, instances)
    in
    let build ?instances () =
      Encoding.build ?instances ~device ~xtalk ~omega ~threshold ~dag ~durations ()
    in
    (* Cheap list schedules whose pair decisions seed the solver's
       incumbent (the legacy engine ignores warm starts, so skip the
       work there). *)
    let hint_schedules =
      lazy
        (if engine <> Solver.Fast then []
         else
           let from f = match f () with s -> [ s ] | exception _ -> [] in
           from (fun () -> Par_sched.schedule device circuit)
           @ from (fun () -> fst (Greedy_sched.schedule ~threshold ~device ~xtalk circuit)))
    in
    let warm_starts enc =
      if engine <> Solver.Fast then []
      else Encoding.warm_hints ~schedules:(Lazy.force hint_schedules) enc
    in
    let solve ?(warm = true) enc =
      Solver.solve ~node_budget ?deadline_seconds:(remaining ())
        ~warm_starts:(if warm then warm_starts enc else [])
        ~engine enc.Encoding.solver
    in
    let cluster_rung () =
      (* Past a couple of windows' worth of gates the monolithic
         decision replay (full encoding, powerset cost groups over the
         whole circuit) is itself the bottleneck — hand over to the
         windowed rung, which replays window by window. *)
      if Circuit.length circuit > 2 * window_gates then windowed_rung ()
      else
        match
          (* Cluster decomposition: optimize each connected component of
             interfering pairs separately — concurrently on the domain
             pool when [jobs > 1]; clusters are independent problems and
             the merge is by cluster index, so the result is identical at
             every [jobs] — then evaluate the union of decisions once
             (zero remaining booleans). *)
          (* Force the shared hint schedules before fanning out: a lazy
             must not be forced concurrently from several domains. *)
          ignore (Lazy.force hint_schedules);
          let nclusters, cluster_nodes, decisions =
            Window_sched.solve_cluster_decisions ~jobs ~engine ~node_budget
              ~deadline:remaining
              ~build:(fun ~instances -> build ~instances ())
              ~warm:warm_starts instances
          in
          let enc = build ~instances () in
          (* Pin every boolean with unit clauses; a single propagation
             then reaches the unique leaf.  Pairs whose cluster timed out
             without an incumbent stay free, so give the replay solve its
             own deadline share too. *)
          Window_sched.pin_decisions enc decisions;
          match solve ~warm:false enc with
          | Some sol ->
            Some
              ( extract_schedule circuit durations enc sol,
                cluster_nodes + sol.nodes,
                false,
                sol.objective,
                nclusters,
                0,
                Clustered )
          | None -> None
        with
        | Some r -> r
        | None -> windowed_rung ()
        | exception _ -> windowed_rung ()
    in
    let exact_rung () =
      (* The length check mirrors cluster_rung's: even with few
         interfering pairs, a monolithic encoding of a thousands-of-
         gates circuit is the bottleneck — window it instead. *)
      if List.length instances > max_exact_pairs || Circuit.length circuit > 2 * window_gates
      then cluster_rung ()
      else begin
        match
          let enc = build ~instances () in
          solve enc |> Option.map (fun sol -> (enc, sol))
        with
        | Some (enc, sol) ->
          let rung = if sol.Solver.optimal then Exact else Incumbent in
          ( extract_schedule circuit durations enc sol,
            sol.nodes,
            sol.optimal,
            sol.objective,
            1,
            0,
            rung )
        | None -> cluster_rung ()
        | exception _ -> cluster_rung ()
      end
    in
    let result =
      match ladder_start with
      | Exact | Incumbent -> exact_rung ()
      | Clustered -> cluster_rung ()
      | Windowed -> windowed_rung ()
      | Greedy -> greedy_rung ()
      | Parallel -> parallel_rung ()
    in
    (result, List.length instances)
  with
  | result, pairs -> finish ~pairs result
  | exception _ ->
    (* Even building the encoding failed (malformed crosstalk data,
       pathological DAG): serve the parallel schedule rather than
       failing the compile. *)
    finish ~pairs:0 (parallel_rung ())
  end

let schedule ?(omega = 0.5) ?(threshold = 3.0) ?(node_budget = 2_000_000)
    ?(max_exact_pairs = 14) ?deadline_seconds ?(ladder_start = Exact)
    ?(window_gates = 160) ?(jobs = 1) ?(engine = Solver.Fast) ~device ~xtalk circuit =
  let circuit = Circuit.decompose_swaps circuit in
  schedule_decomposed ~omega ~threshold ~node_budget ~max_exact_pairs ~deadline_seconds
    ~ladder_start ~window_gates ~jobs ~engine ~device ~xtalk ~prep:None circuit

let tune_omega ?(candidates = [ 0.0; 0.05; 0.2; 0.5; 0.8; 1.0 ]) ?(threshold = 3.0)
    ?(jobs = 1) ~device ~xtalk circuit =
  if candidates = [] then invalid_arg "Xtalk_sched.tune_omega: no candidates";
  let circuit = Circuit.decompose_swaps circuit in
  (* One DAG/durations/instances preparation shared by every omega
     candidate (the interfering-pair enumeration does not depend on
     omega).  If preparation fails, each candidate's ladder handles it
     on its own. *)
  let prep =
    try
      let durations = Durations.assign device circuit in
      let dag = Dag.of_circuit circuit in
      Some (dag, durations, Encoding.interfering_instances ~device ~xtalk ~threshold ~dag)
    with _ -> None
  in
  let arr = Array.of_list candidates in
  let scored =
    Pool.parallel_chunks ~jobs ~n:(Array.length arr) (fun ~lo ~hi ->
        Array.init (hi - lo) (fun k ->
            let omega = arr.(lo + k) in
            (* Candidates already run concurrently, so each schedules
               sequentially — the pool must not be re-entered from a
               worker domain. *)
            let sched, stats =
              schedule_decomposed ~omega ~threshold ~node_budget:2_000_000
                ~max_exact_pairs:14 ~deadline_seconds:None ~ladder_start:Exact
                ~window_gates:160 ~jobs:1 ~engine:Solver.Fast ~device ~xtalk ~prep circuit
            in
            let err = (Evaluate.model device ~xtalk sched).Evaluate.error in
            (err, (omega, sched, stats))))
    |> List.concat_map Array.to_list
  in
  let best =
    List.fold_left
      (fun acc candidate -> if fst candidate < fst acc then candidate else acc)
      (List.hd scored) (List.tl scored)
  in
  snd best
