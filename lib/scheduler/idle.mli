(** Per-qubit idle-window extraction over a finished schedule.

    An idle window on qubit [q] is a gap between the finish of one
    non-barrier gate on [q] and the start of the next — exactly the
    spans over which {!Qcx_noise.Exec} injects Pauli-twirled T1/T2
    decoherence (decoherence on a qubit starts at its first gate, so
    time before the first gate and after the last is never a window).

    These windows are what dynamical decoupling can fill
    ({!Qcx_mitigation.Dd}) and what the [idle_total]/[idle_max] fields
    of {!Xtalk_sched.stats} summarize for observability. *)

type window = {
  w_qubit : int;  (** hardware qubit *)
  w_start : float;  (** finish of the preceding gate, ns *)
  w_finish : float;  (** start of the following gate, ns *)
}

val windows : Qcx_circuit.Schedule.t -> window list
(** All idle windows, sorted by qubit then start time.  Gaps shorter
    than 1e-9 ns are noise-model no-ops and are skipped, matching the
    executor's threshold. *)

val per_qubit : Qcx_circuit.Schedule.t -> (int * float * float) list
(** [(qubit, total idle, max window)] for every qubit with at least
    one idle window, sorted by qubit. *)

val total : Qcx_circuit.Schedule.t -> float
(** Sum of all idle-window lengths across qubits, ns. *)

val max_window : Qcx_circuit.Schedule.t -> float
(** Length of the single longest window, ns; 0 when there are none. *)

val summarize : Qcx_circuit.Schedule.t -> float * float
(** [(total, max_window)] in one pass — the pair {!Xtalk_sched}
    records in its stats. *)
