(** XtalkSched: the paper's crosstalk-adaptive scheduler.

    Serializes high-crosstalk instruction pairs while balancing the
    exponential decoherence cost of longer schedules, by solving the
    Section 7 constrained optimization ({!Encoding}) to optimality
    with [Qcx_smt.Solver].

    [omega] is the crosstalk weight factor of eq. 17: [0.] ignores
    crosstalk (the result coincides with ParSched's parallelism);
    [1.] ignores decoherence, which the paper equates with full
    SerialSched behaviour (Table 1) — implemented here as exactly
    that special case.  The paper's default for the SWAP experiments
    is 0.5.

    For programs whose interfering-pair count exceeds
    [max_exact_pairs], pairs are partitioned into clusters (connected
    components over shared gates), each cluster is optimized
    separately, and the union of decisions is evaluated once — the
    compile-time optimization the paper alludes to for large
    supremacy-style workloads (Section 9.4). *)

type rung =
  | Exact  (** solver proved optimality (or the serial omega=1 case) *)
  | Incumbent  (** budget/deadline expired; best-so-far schedule served *)
  | Clustered  (** per-cluster decomposition *)
  | Windowed  (** windowed hierarchical solve ({!Window_sched}) *)
  | Greedy  (** GreedySched serialization *)
  | Parallel  (** plain ParSched — the floor; always succeeds *)

val rung_name : rung -> string

val all_rungs : rung list
(** In degradation order, best first. *)

type stats = {
  pairs : int;  (** interfering CNOT instance pairs *)
  clusters : int;  (** 1 when solved exactly in one shot; 0 below Windowed *)
  windows : int;  (** windows stitched by the Windowed rung; 0 elsewhere *)
  nodes : int;  (** total branch-and-bound nodes *)
  optimal : bool;  (** false when decomposed or budget-limited *)
  objective : float;
  solve_seconds : float;
      (** wall-clock seconds of the compile (the latency a caller
          actually observes — cluster solving may use several domains) *)
  cpu_seconds : float;  (** process CPU seconds over the same window *)
  idle_total : float;
      (** total idle time across qubits in the served schedule, ns
          ({!Idle.total}) — the decoherence exposure DD can pad *)
  idle_max : float;  (** longest single idle window, ns ({!Idle.max_window}) *)
  rung : rung;  (** which degradation-ladder rung served this compile *)
}

val tune_omega :
  ?candidates:float list ->
  ?threshold:float ->
  ?jobs:int ->
  device:Qcx_device.Device.t ->
  xtalk:Qcx_device.Crosstalk.t ->
  Qcx_circuit.Circuit.t ->
  float * Qcx_circuit.Schedule.t * stats
(** Compile at several omega values and keep the schedule whose
    *model-predicted* error (calibration + characterized crosstalk via
    [Evaluate.model]) is lowest — the "careful tuning" knob of
    Section 9.3, automated without touching the hardware.  Default
    candidates: [0.; 0.05; 0.2; 0.5; 0.8; 1.].  Returns the chosen
    omega with its schedule and stats.

    The SWAP decomposition, DAG, durations and interfering-pair
    enumeration are computed once and shared by all candidates (none
    depends on omega); with [jobs > 1] the candidates are compiled
    concurrently on the domain pool, ties broken toward the earlier
    candidate regardless of [jobs].  Must be called from the domain
    that owns the pool (not from inside another parallel region). *)

val schedule :
  ?omega:float ->
  ?threshold:float ->
  ?node_budget:int ->
  ?max_exact_pairs:int ->
  ?deadline_seconds:float ->
  ?ladder_start:rung ->
  ?window_gates:int ->
  ?jobs:int ->
  ?engine:Qcx_smt.Solver.engine ->
  device:Qcx_device.Device.t ->
  xtalk:Qcx_device.Crosstalk.t ->
  Qcx_circuit.Circuit.t ->
  Qcx_circuit.Schedule.t * stats
(** Defaults: [omega = 0.5], [threshold = 3.], [node_budget =
    2_000_000], [max_exact_pairs = 14], no deadline.  Logical SWAPs
    are decomposed internally; the returned schedule is over the
    decomposed circuit.  [xtalk] is characterized conditional-error
    data (from [Qcx_characterization]), not the device ground truth.

    A compile request {e never fails}: on solver deadline/budget
    expiry, unsatisfiability, or any internal error, the request
    degrades rung by rung — best-so-far incumbent, per-cluster
    decomposition, windowed hierarchical solve, GreedySched, finally
    ParSched — and [stats.rung] records which rung actually served it.
    [deadline_seconds] is a wall-clock bound shared by all solver
    calls of the compile.  [ladder_start] (default [Exact]) starts the
    descent lower — useful for very large programs and for testing the
    lower rungs.

    [window_gates] (default 160) sizes the Windowed rung's windows and
    doubles as the auto-escalation bound: circuits longer than
    [2 * window_gates] gates skip the monolithic Exact and Clustered
    encodings entirely (even when few pairs interfere) and go straight
    to {!Window_sched}, which is what lets 127-qubit, 1k+-gate
    programs compile in bounded time (see the scale bench).

    [jobs] (default 1) parallelizes the Clustered rung (connected
    components are independent subproblems solved concurrently on
    [Qcx_util.Pool] and merged by cluster index) and the Windowed
    rung (windows solved concurrently, stitched sequentially in
    window order), so the schedule is bit-identical at every [jobs]
    (absent a deadline, which makes any solver cutoff
    timing-dependent).  Leave it at 1 when calling from
    inside another pool-parallel region (e.g. the service's batch
    compile), which would otherwise re-enter the pool.  [engine]
    selects the solver search core ({!Qcx_smt.Solver.Fast} by default;
    [Legacy] is the seed baseline used by [bench/exp_sched.ml]).  Warm
    starts derived from the greedy/parallel list schedules seed the
    fast engine's incumbent, so its exact solves explore a fraction of
    the legacy node count. *)
