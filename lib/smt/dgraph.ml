type t = {
  mutable names : string array;
  mutable nvars : int;
  mutable srcs : int array;
  mutable dsts : int array;
  mutable weights : float array;
  mutable nedges : int;
  mutable frames : int list;
  mutable epoch : int;
}

let create () =
  {
    names = Array.make 16 "";
    nvars = 0;
    srcs = Array.make 64 0;
    dsts = Array.make 64 0;
    weights = Array.make 64 0.0;
    nedges = 0;
    frames = [];
    epoch = 0;
  }

let new_var t name =
  if t.nvars = Array.length t.names then begin
    let bigger = Array.make (2 * t.nvars) "" in
    Array.blit t.names 0 bigger 0 t.nvars;
    t.names <- bigger
  end;
  t.names.(t.nvars) <- name;
  t.nvars <- t.nvars + 1;
  t.nvars - 1

let nvars t = t.nvars

let var_name t v =
  if v < 0 || v >= t.nvars then invalid_arg "Dgraph.var_name: bad variable";
  t.names.(v)

let add_edge t ~src ~dst ~weight =
  if src < 0 || src >= t.nvars || dst < 0 || dst >= t.nvars then
    invalid_arg "Dgraph.add_edge: bad variable";
  if t.nedges = Array.length t.srcs then begin
    let grow a zero =
      let bigger = Array.make (2 * Array.length a) zero in
      Array.blit a 0 bigger 0 (Array.length a);
      bigger
    in
    t.srcs <- grow t.srcs 0;
    t.dsts <- grow t.dsts 0;
    t.weights <- grow t.weights 0.0
  end;
  t.srcs.(t.nedges) <- src;
  t.dsts.(t.nedges) <- dst;
  t.weights.(t.nedges) <- weight;
  t.nedges <- t.nedges + 1;
  t.epoch <- t.epoch + 1

let push t = t.frames <- t.nedges :: t.frames

let pop t =
  match t.frames with
  | [] -> invalid_arg "Dgraph.pop: no frame"
  | n :: rest ->
    (* A frame with no edges leaves the edge set — and hence any
       edge-set-derived cache — untouched. *)
    if t.nedges <> n then t.epoch <- t.epoch + 1;
    t.nedges <- n;
    t.frames <- rest

let epoch t = t.epoch

(* Bellman-Ford longest-path relaxation.  Returns [None] on a positive
   cycle (some distance still improves after nvars rounds). *)
let relax_forward t dist =
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= t.nvars do
    changed := false;
    incr rounds;
    for e = 0 to t.nedges - 1 do
      let s = t.srcs.(e) and d = t.dsts.(e) and w = t.weights.(e) in
      if dist.(s) > neg_infinity && dist.(s) +. w > dist.(d) +. 1e-9 then begin
        dist.(d) <- dist.(s) +. w;
        changed := true
      end
    done
  done;
  if !changed then None else Some dist

let asap t = relax_forward t (Array.make t.nvars 0.0)

let alap t ~deadline =
  if Array.length deadline <> t.nvars then invalid_arg "Dgraph.alap: deadline length";
  match asap t with
  | None -> None
  | Some lo ->
    let ub = Array.copy deadline in
    let changed = ref true in
    let rounds = ref 0 in
    while !changed && !rounds <= t.nvars do
      changed := false;
      incr rounds;
      for e = 0 to t.nedges - 1 do
        let s = t.srcs.(e) and d = t.dsts.(e) and w = t.weights.(e) in
        if ub.(d) < infinity && ub.(d) -. w < ub.(s) -. 1e-9 then begin
          ub.(s) <- ub.(d) -. w;
          changed := true
        end
      done
    done;
    if !changed then None
    else begin
      (* A variable with no upper bound sits at its minimum. *)
      let ok = ref true in
      let out =
        Array.init t.nvars (fun v ->
            if ub.(v) = infinity then lo.(v)
            else begin
              if ub.(v) +. 1e-6 < lo.(v) then ok := false;
              ub.(v)
            end)
      in
      if !ok then Some out else None
    end

let longest_paths_to t ~dst =
  if dst < 0 || dst >= t.nvars then invalid_arg "Dgraph.longest_paths_to: bad variable";
  let dist = Array.make t.nvars neg_infinity in
  dist.(dst) <- 0.0;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= t.nvars do
    changed := false;
    incr rounds;
    for e = 0 to t.nedges - 1 do
      let s = t.srcs.(e) and d = t.dsts.(e) and w = t.weights.(e) in
      if dist.(d) > neg_infinity && dist.(d) +. w > dist.(s) +. 1e-9 then begin
        dist.(s) <- dist.(d) +. w;
        changed := true
      end
    done
  done;
  if !changed then invalid_arg "Dgraph.longest_paths_to: positive cycle";
  dist

let longest_path t ~src ~dst =
  if src < 0 || src >= t.nvars || dst < 0 || dst >= t.nvars then
    invalid_arg "Dgraph.longest_path: bad variable";
  let dist = Array.make t.nvars neg_infinity in
  dist.(src) <- 0.0;
  match relax_forward t dist with
  | Some d -> d.(dst)
  | None -> invalid_arg "Dgraph.longest_path: positive cycle"
