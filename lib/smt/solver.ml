type lit = { var : int; value : bool }

type guarded_edge = { src : int; dst : int; weight : float }

type t = {
  graph : Dgraph.t;
  mutable bool_names : string list;  (** reversed *)
  mutable nbools : int;
  mutable clauses : lit list list;
  mutable guards : (int, (bool * guarded_edge) list) Hashtbl.t;
      (** bool var -> edges activated when it takes the given value *)
  mutable cost_groups : (lit list * float) list list;
  mutable spans : (float * int * int) list;  (** weight, last, first *)
  mutable sinks : int list;
}

type solution = {
  bools : bool array;
  nums : float array;
  objective : float;
  optimal : bool;
  nodes : int;
  timed_out : bool;
}

let create () =
  {
    graph = Dgraph.create ();
    bool_names = [];
    nbools = 0;
    clauses = [];
    guards = Hashtbl.create 16;
    cost_groups = [];
    spans = [];
    sinks = [];
  }

let new_bool t name =
  t.bool_names <- name :: t.bool_names;
  t.nbools <- t.nbools + 1;
  t.nbools - 1

let new_num t name = Dgraph.new_var t.graph name

let add_diff t ?guard ~dst ~src ~weight () =
  match guard with
  | None -> Dgraph.add_edge t.graph ~src ~dst ~weight
  | Some { var; value } ->
    let existing = Option.value ~default:[] (Hashtbl.find_opt t.guards var) in
    Hashtbl.replace t.guards var ((value, { src; dst; weight }) :: existing)

let add_clause t lits = t.clauses <- lits :: t.clauses

let add_cost_group t scenarios =
  List.iter
    (fun (_, cost) -> if cost < 0.0 then invalid_arg "Solver.add_cost_group: negative cost")
    scenarios;
  t.cost_groups <- scenarios :: t.cost_groups

let add_span_cost t ~weight ~last ~first =
  if weight < 0.0 then invalid_arg "Solver.add_span_cost: negative weight";
  t.spans <- (weight, last, first) :: t.spans

let add_sink t v = t.sinks <- v :: t.sinks

(* ---- search ---- *)

exception Conflict
exception Budget
exception Deadline

type search_state = {
  problem : t;
  assign : int array;  (** -1 unassigned, 0 false, 1 true *)
  clauses : lit array array;
  mutable best : solution option;
  mutable node_count : int;
  budget : int;
  deadline : float;  (** absolute wall-clock time; [infinity] = none *)
}

let lit_status st { var; value } =
  match st.assign.(var) with
  | -1 -> `Unassigned
  | a -> if (a = 1) = value then `True else `False

(* Assign a variable, activate its guarded edges (inside a fresh graph
   frame) and return the number of frames pushed so the caller can
   undo.  Raises [Conflict] if already assigned inconsistently. *)
let do_assign st var value undo =
  match st.assign.(var) with
  | a when a >= 0 -> if (a = 1) <> value then raise Conflict
  | _ ->
    st.assign.(var) <- (if value then 1 else 0);
    Dgraph.push st.problem.graph;
    (match Hashtbl.find_opt st.problem.guards var with
    | None -> ()
    | Some edges ->
      List.iter
        (fun (v, { src; dst; weight } : bool * guarded_edge) ->
          if v = value then Dgraph.add_edge st.problem.graph ~src ~dst ~weight)
        edges);
    undo := var :: !undo

(* Unit propagation to fixpoint.  Raises [Conflict] on a falsified
   clause. *)
let propagate st undo =
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun clause ->
        let unassigned = ref [] in
        let satisfied = ref false in
        Array.iter
          (fun l ->
            match lit_status st l with
            | `True -> satisfied := true
            | `False -> ()
            | `Unassigned -> unassigned := l :: !unassigned)
          clause;
        if not !satisfied then
          match !unassigned with
          | [] -> raise Conflict
          | [ l ] ->
            do_assign st l.var l.value undo;
            changed := true
          | _ -> ())
      st.clauses
  done

let undo_all st undo =
  List.iter
    (fun var ->
      st.assign.(var) <- -1;
      Dgraph.pop st.problem.graph)
    !undo;
  undo := []

(* Lower bound from cost groups: cheapest scenario not yet falsified
   in each group.  A scenario is falsified when one of its literals is
   assigned the opposite value. *)
let bool_cost_lb st =
  List.fold_left
    (fun acc scenarios ->
      let viable =
        List.filter_map
          (fun (lits, cost) ->
            if List.exists (fun l -> lit_status st l = `False) lits then None else Some cost)
          scenarios
      in
      match viable with
      | [] -> infinity (* all scenarios falsified: dead branch *)
      | costs -> acc +. List.fold_left min infinity costs)
    0.0 st.problem.cost_groups

(* Span lower bound: the longest path first -> last under currently
   active edges is a valid lower bound on (last - first), and only
   grows as guards activate more edges.  All spans sharing a [last]
   variable (in practice: the readout sink) are served by one backward
   relaxation. *)
let span_lb st =
  let by_last = Hashtbl.create 4 in
  List.iter
    (fun ((w, last, _) as span) ->
      if w > 0.0 then
        Hashtbl.replace by_last last
          (span :: Option.value ~default:[] (Hashtbl.find_opt by_last last)))
    st.problem.spans;
  Hashtbl.fold
    (fun last spans acc ->
      let dist = Dgraph.longest_paths_to st.problem.graph ~dst:last in
      List.fold_left
        (fun acc (w, _, first) ->
          let lp = dist.(first) in
          if lp = neg_infinity then acc else acc +. (w *. max 0.0 lp))
        acc spans)
    by_last 0.0

let feasible st =
  match Dgraph.asap st.problem.graph with Some _ -> true | None -> false

(* Exact evaluation at a full boolean assignment. *)
let evaluate st =
  match Dgraph.asap st.problem.graph with
  | None -> None
  | Some lo ->
    let deadline = Array.make (Dgraph.nvars st.problem.graph) infinity in
    List.iter (fun sink -> deadline.(sink) <- lo.(sink)) st.problem.sinks;
    (match Dgraph.alap st.problem.graph ~deadline with
    | None -> None
    | Some nums ->
      let span_cost =
        List.fold_left
          (fun acc (w, last, first) -> acc +. (w *. (nums.(last) -. nums.(first))))
          0.0 st.problem.spans
      in
      let scenario_cost =
        List.fold_left
          (fun acc scenarios ->
            let holding =
              List.filter
                (fun (lits, _) -> List.for_all (fun l -> lit_status st l = `True) lits)
                scenarios
            in
            match holding with
            | [ (_, cost) ] -> acc +. cost
            | [] -> acc (* vacuous group (no scenario matches) contributes nothing *)
            | (_, cost) :: _ -> acc +. cost)
          0.0 st.problem.cost_groups
      in
      Some (scenario_cost +. span_cost, nums))

let current_best_objective st =
  match st.best with Some s -> s.objective | None -> infinity

let rec search st =
  st.node_count <- st.node_count + 1;
  if st.node_count > st.budget then raise Budget;
  (* The clock syscall is ~25 ns while a node costs microseconds, but
     checking only every 64 nodes keeps the overhead unmeasurable and
     still bounds the overshoot well below a millisecond. *)
  if
    st.deadline < infinity
    && st.node_count land 63 = 0
    && Unix.gettimeofday () > st.deadline
  then raise Deadline;
  (* Prune. *)
  if feasible st then begin
    let lb = bool_cost_lb st in
    if lb < current_best_objective st then begin
      let lb = lb +. span_lb st in
      if lb < current_best_objective st -. 1e-12 then begin
        (* Find an unassigned boolean. *)
        let next = ref (-1) in
        (try
           for v = 0 to Array.length st.assign - 1 do
             if st.assign.(v) = -1 then begin
               next := v;
               raise Exit
             end
           done
         with Exit -> ());
        if !next = -1 then begin
          (* Leaf: exact evaluation. *)
          match evaluate st with
          | None -> ()
          | Some (objective, nums) ->
            if objective < current_best_objective st then
              st.best <-
                Some
                  {
                    bools = Array.map (fun a -> a = 1) st.assign;
                    nums;
                    objective;
                    optimal = false;
                    nodes = st.node_count;
                    timed_out = false;
                  }
        end
        else
          List.iter
            (fun value ->
              let undo = ref [] in
              (* [Fun.protect] keeps graph frames balanced even when the
                 node budget aborts the search mid-branch. *)
              Fun.protect
                ~finally:(fun () -> undo_all st undo)
                (fun () ->
                  try
                    do_assign st !next value undo;
                    propagate st undo;
                    search st
                  with Conflict -> ()))
            [ false; true ]
      end
    end
  end

let solve ?(node_budget = 2_000_000) ?deadline_seconds t =
  let deadline =
    match deadline_seconds with
    | None -> infinity
    | Some s -> if s = infinity then infinity else Unix.gettimeofday () +. max 0.0 s
  in
  let st =
    {
      problem = t;
      assign = Array.make t.nbools (-1);
      clauses = Array.of_list (List.map Array.of_list t.clauses);
      best = None;
      node_count = 0;
      budget = node_budget;
      deadline;
    }
  in
  let undo = ref [] in
  let complete, timed_out =
    try
      propagate st undo;
      search st;
      (true, false)
    with
    | Conflict -> (true, false)
    | Budget -> (false, false)
    | Deadline -> (false, true)
  in
  undo_all st undo;
  match st.best with
  | None -> None
  | Some sol -> Some { sol with optimal = complete; nodes = st.node_count; timed_out }
