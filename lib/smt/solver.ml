type lit = { var : int; value : bool }

type guarded_edge = { src : int; dst : int; weight : float }

type t = {
  graph : Dgraph.t;
  mutable bool_names : string list;  (** reversed *)
  mutable nbools : int;
  mutable clauses : lit list list;
  mutable guards : (int, (bool * guarded_edge) list) Hashtbl.t;
      (** bool var -> edges activated when it takes the given value *)
  mutable cost_groups : (lit list * float) list list;
  mutable spans : (float * int * int) list;  (** weight, last, first *)
  mutable sinks : int list;
  mutable release_base : int option;
      (** lazily created zero-pinned origin for absolute release bounds *)
}

type engine = Fast | Legacy

type solution = {
  bools : bool array;
  nums : float array;
  objective : float;
  optimal : bool;
  nodes : int;
  timed_out : bool;
}

let create () =
  {
    graph = Dgraph.create ();
    bool_names = [];
    nbools = 0;
    clauses = [];
    guards = Hashtbl.create 16;
    cost_groups = [];
    spans = [];
    sinks = [];
    release_base = None;
  }

let new_bool t name =
  t.bool_names <- name :: t.bool_names;
  t.nbools <- t.nbools + 1;
  t.nbools - 1

let nbools t = t.nbools

let new_num t name = Dgraph.new_var t.graph name

let add_diff t ?guard ~dst ~src ~weight () =
  match guard with
  | None -> Dgraph.add_edge t.graph ~src ~dst ~weight
  | Some { var; value } ->
    let existing = Option.value ~default:[] (Hashtbl.find_opt t.guards var) in
    Hashtbl.replace t.guards var ((value, { src; dst; weight }) :: existing)

let add_clause t lits = t.clauses <- lits :: t.clauses

let add_cost_group t scenarios =
  List.iter
    (fun (_, cost) -> if cost < 0.0 then invalid_arg "Solver.add_cost_group: negative cost")
    scenarios;
  t.cost_groups <- scenarios :: t.cost_groups

let add_span_cost t ~weight ~last ~first =
  if weight < 0.0 then invalid_arg "Solver.add_span_cost: negative weight";
  t.spans <- (weight, last, first) :: t.spans

let add_sink t v = t.sinks <- v :: t.sinks

let add_release t ~var ~time =
  if not (time >= 0.0) then invalid_arg "Solver.add_release: time must be >= 0";
  if time > 0.0 then begin
    let base =
      match t.release_base with
      | Some b -> b
      | None ->
        let b = new_num t "release0" in
        (* No incoming edges, so the ASAP pass keeps the base at 0;
           registering it as a sink pins its ALAP deadline to its lower
           bound (0) as well.  Every release edge base->var then reads
           as an absolute lower bound rather than a relative offset. *)
        add_sink t b;
        t.release_base <- Some b;
        b
    in
    Dgraph.add_edge t.graph ~src:base ~dst:var ~weight:time
  end

(* ---- search ---- *)

exception Conflict
exception Budget
exception Deadline

(* Objective scenario, fast-engine bound bookkeeping: [nfalse] counts
   the scenario's literals currently assigned to the opposite value;
   the scenario is still viable iff [nfalse = 0]. *)
type scen = { slits : lit array; scost : float; group : int; mutable nfalse : int }

(* A cost group, fast engine: scenarios sorted by ascending cost, so
   the min viable cost is the first scenario with [nfalse = 0].  The
   cached min is invalidated whenever a member scenario flips
   viability. *)
type group = { sorted : scen array; mutable cached_min : float; mutable dirty : bool }

type search_state = {
  problem : t;
  engine : engine;
  assign : int array;  (** -1 unassigned, 0 false, 1 true *)
  clauses : lit array array;
  mutable best : solution option;
  mutable node_count : int;
  budget : int;
  deadline : float;  (** absolute wall-clock time; [infinity] = none *)
  (* ---- fast engine only (dummy empties under Legacy) ---- *)
  watch : int list array;  (** literal index -> watching clause ids *)
  w0 : int array;  (** clause id -> first watched position *)
  w1 : int array;  (** clause id -> second watched position *)
  queue : int Queue.t;  (** assigned vars whose watch lists are pending *)
  occs : scen list array;  (** literal index -> scenarios containing it *)
  groups : group array;
  spans_by_last : (int * (float * int) array) array;
      (** last variable -> (weight, first) spans, positive weights only *)
  mutable asap_epoch : int;
  mutable asap_cache : float array option;
  span_cache : (int, int * float array) Hashtbl.t;  (** last -> epoch, dists *)
  order : int array;  (** branching order: vars by descending cost spread *)
  prefer : bool array;  (** per-var value to try first (cheaper scenarios) *)
}

let lidx { var; value } = (2 * var) + Bool.to_int value

let lit_status st { var; value } =
  match st.assign.(var) with
  | -1 -> `Unassigned
  | a -> if (a = 1) = value then `True else `False

(* Assign a variable, activate its guarded edges (inside a fresh graph
   frame) and return the number of frames pushed so the caller can
   undo.  Raises [Conflict] if already assigned inconsistently.  Under
   the fast engine also bumps scenario falsification counters and
   enqueues the variable for watched-literal processing. *)
let do_assign st var value undo =
  match st.assign.(var) with
  | a when a >= 0 -> if (a = 1) <> value then raise Conflict
  | _ ->
    st.assign.(var) <- (if value then 1 else 0);
    Dgraph.push st.problem.graph;
    (match Hashtbl.find_opt st.problem.guards var with
    | None -> ()
    | Some edges ->
      List.iter
        (fun (v, { src; dst; weight } : bool * guarded_edge) ->
          if v = value then Dgraph.add_edge st.problem.graph ~src ~dst ~weight)
        edges);
    undo := var :: !undo;
    if st.engine = Fast then begin
      Queue.add var st.queue;
      (* literals of polarity [not value] on this var just went false *)
      List.iter
        (fun s ->
          s.nfalse <- s.nfalse + 1;
          if s.nfalse = 1 then st.groups.(s.group).dirty <- true)
        st.occs.((2 * var) + Bool.to_int (not value))
    end

let undo_all st undo =
  List.iter
    (fun var ->
      let a = st.assign.(var) in
      st.assign.(var) <- -1;
      Dgraph.pop st.problem.graph;
      if st.engine = Fast then
        List.iter
          (fun s ->
            s.nfalse <- s.nfalse - 1;
            if s.nfalse = 0 then st.groups.(s.group).dirty <- true)
          st.occs.((2 * var) + (1 - a)))
    !undo;
  undo := []

(* ---- legacy propagation: rescan every clause to fixpoint ---- *)

let propagate_legacy st undo =
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun clause ->
        let unassigned = ref [] in
        let satisfied = ref false in
        Array.iter
          (fun l ->
            match lit_status st l with
            | `True -> satisfied := true
            | `False -> ()
            | `Unassigned -> unassigned := l :: !unassigned)
          clause;
        if not !satisfied then
          match !unassigned with
          | [] -> raise Conflict
          | [ l ] ->
            do_assign st l.var l.value undo;
            changed := true
          | _ -> ())
      st.clauses
  done

(* ---- fast propagation: two watched literals ---- *)

exception Found of int

(* Process every clause watching the literal falsified by assigning
   [var].  Watches only ever move onto non-false literals, so watch
   lists never need undoing on backtrack (the MiniSat invariant); on a
   conflict the unvisited tail of the list is restored before raising
   so no watcher is lost. *)
let process_var st var undo =
  let fl = (2 * var) + (1 - st.assign.(var)) in
  let clauses = st.watch.(fl) in
  st.watch.(fl) <- [];
  let rec go = function
    | [] -> ()
    | c :: rest -> (
      let lits = st.clauses.(c) in
      let p0 = st.w0.(c) and p1 = st.w1.(c) in
      let here, other = if lidx lits.(p0) = fl then (p0, p1) else (p1, p0) in
      let ol = lits.(other) in
      match lit_status st ol with
      | `True ->
        st.watch.(fl) <- c :: st.watch.(fl);
        go rest
      | other_status -> (
        (* find a replacement watch among the remaining positions *)
        match
          try
            for k = 0 to Array.length lits - 1 do
              if k <> other && lit_status st lits.(k) <> `False then raise (Found k)
            done;
            None
          with Found k -> Some k
        with
        | Some k ->
          if here = p0 then st.w0.(c) <- k else st.w1.(c) <- k;
          st.watch.(lidx lits.(k)) <- c :: st.watch.(lidx lits.(k));
          go rest
        | None -> (
          match other_status with
          | `Unassigned ->
            (* unit: every other position is false *)
            st.watch.(fl) <- c :: st.watch.(fl);
            do_assign st ol.var ol.value undo;
            go rest
          | _ ->
            st.watch.(fl) <- c :: List.rev_append rest st.watch.(fl);
            raise Conflict)))
  in
  go clauses

let propagate_fast st undo =
  try
    while not (Queue.is_empty st.queue) do
      process_var st (Queue.pop st.queue) undo
    done
  with e ->
    Queue.clear st.queue;
    raise e

let propagate st undo =
  match st.engine with
  | Legacy -> propagate_legacy st undo
  | Fast -> propagate_fast st undo

(* ---- lower bounds ---- *)

(* Legacy: cheapest scenario not yet falsified in each group, found by
   refiltering every scenario's literal list at every node. *)
let bool_cost_lb_legacy st =
  List.fold_left
    (fun acc scenarios ->
      let viable =
        List.filter_map
          (fun (lits, cost) ->
            if List.exists (fun l -> lit_status st l = `False) lits then None else Some cost)
          scenarios
      in
      match viable with
      | [] -> infinity (* all scenarios falsified: dead branch *)
      | costs -> acc +. List.fold_left min infinity costs)
    0.0 st.problem.cost_groups

(* Fast: per-group cached min over viable scenarios, maintained under
   assignment/undo through the [nfalse] counters. *)
let bool_cost_lb_fast st =
  let acc = ref 0.0 in
  Array.iter
    (fun g ->
      if g.dirty then begin
        g.cached_min <-
          (let m = ref infinity in
           (try
              Array.iter
                (fun s ->
                  if s.nfalse = 0 then begin
                    m := s.scost;
                    raise Exit
                  end)
                g.sorted
            with Exit -> ());
           !m);
        g.dirty <- false
      end;
      acc := !acc +. g.cached_min)
    st.groups;
  !acc

let bool_cost_lb st =
  match st.engine with Legacy -> bool_cost_lb_legacy st | Fast -> bool_cost_lb_fast st

(* Span lower bound: the longest path first -> last under currently
   active edges is a valid lower bound on (last - first), and only
   grows as guards activate more edges. *)

(* Legacy: rebuild the by-last index and run the backward relaxation
   for every group of spans at every node. *)
let span_lb_legacy st =
  let by_last = Hashtbl.create 4 in
  List.iter
    (fun ((w, last, _) as span) ->
      if w > 0.0 then
        Hashtbl.replace by_last last
          (span :: Option.value ~default:[] (Hashtbl.find_opt by_last last)))
    st.problem.spans;
  Hashtbl.fold
    (fun last spans acc ->
      let dist = Dgraph.longest_paths_to st.problem.graph ~dst:last in
      List.fold_left
        (fun acc (w, _, first) ->
          let lp = dist.(first) in
          if lp = neg_infinity then acc else acc +. (w *. max 0.0 lp))
        acc spans)
    by_last 0.0

(* Fast: the by-last index is precomputed once per solve, and the
   backward relaxation per [last] is cached against the graph's edge
   epoch — nodes whose assignments activated no guarded edge reuse the
   previous distances outright. *)
let span_dists st last =
  let ep = Dgraph.epoch st.problem.graph in
  match Hashtbl.find_opt st.span_cache last with
  | Some (e, d) when e = ep -> d
  | _ ->
    let d = Dgraph.longest_paths_to st.problem.graph ~dst:last in
    Hashtbl.replace st.span_cache last (ep, d);
    d

let span_lb_fast st =
  Array.fold_left
    (fun acc (last, spans) ->
      let dist = span_dists st last in
      Array.fold_left
        (fun acc (w, first) ->
          let lp = dist.(first) in
          if lp = neg_infinity then acc else acc +. (w *. max 0.0 lp))
        acc spans)
    0.0 st.spans_by_last

let span_lb st = match st.engine with Legacy -> span_lb_legacy st | Fast -> span_lb_fast st

(* ASAP feasibility, cached per edge epoch under the fast engine. *)
let asap st =
  match st.engine with
  | Legacy -> Dgraph.asap st.problem.graph
  | Fast ->
    let ep = Dgraph.epoch st.problem.graph in
    if st.asap_epoch = ep then st.asap_cache
    else begin
      let r = Dgraph.asap st.problem.graph in
      st.asap_cache <- r;
      st.asap_epoch <- ep;
      r
    end

let feasible st = match asap st with Some _ -> true | None -> false

(* Exact evaluation at a full boolean assignment. *)
let evaluate st =
  match asap st with
  | None -> None
  | Some lo ->
    let deadline = Array.make (Dgraph.nvars st.problem.graph) infinity in
    List.iter (fun sink -> deadline.(sink) <- lo.(sink)) st.problem.sinks;
    (match Dgraph.alap st.problem.graph ~deadline with
    | None -> None
    | Some nums ->
      let span_cost =
        List.fold_left
          (fun acc (w, last, first) -> acc +. (w *. (nums.(last) -. nums.(first))))
          0.0 st.problem.spans
      in
      let scenario_cost =
        List.fold_left
          (fun acc scenarios ->
            let holding =
              List.filter
                (fun (lits, _) -> List.for_all (fun l -> lit_status st l = `True) lits)
                scenarios
            in
            match holding with
            | [ (_, cost) ] -> acc +. cost
            | [] -> acc (* vacuous group (no scenario matches) contributes nothing *)
            | (_, cost) :: _ -> acc +. cost)
          0.0 st.problem.cost_groups
      in
      Some (scenario_cost +. span_cost, nums))

let current_best_objective st =
  match st.best with Some s -> s.objective | None -> infinity

let record_leaf st =
  match evaluate st with
  | None -> ()
  | Some (objective, nums) ->
    if objective < current_best_objective st then
      st.best <-
        Some
          {
            bools = Array.map (fun a -> a = 1) st.assign;
            nums;
            objective;
            optimal = false;
            nodes = st.node_count;
            timed_out = false;
          }

(* Branch variable choice.  Legacy: first unassigned.  Fast: the
   precomputed cost-spread order. *)
let next_unassigned st =
  match st.engine with
  | Legacy ->
    let next = ref (-1) in
    (try
       for v = 0 to Array.length st.assign - 1 do
         if st.assign.(v) = -1 then begin
           next := v;
           raise Exit
         end
       done
     with Exit -> ());
    !next
  | Fast ->
    let next = ref (-1) in
    (try
       Array.iter
         (fun v ->
           if st.assign.(v) = -1 then begin
             next := v;
             raise Exit
           end)
         st.order
     with Exit -> ());
    !next

let rec search st =
  st.node_count <- st.node_count + 1;
  if st.node_count > st.budget then raise Budget;
  (* The clock syscall is ~25 ns while a node costs microseconds, but
     checking only every 64 nodes keeps the overhead unmeasurable and
     still bounds the overshoot well below a millisecond. *)
  if
    st.deadline < infinity
    && st.node_count land 63 = 0
    && Unix.gettimeofday () > st.deadline
  then raise Deadline;
  (* Prune. *)
  if feasible st then begin
    let lb = bool_cost_lb st in
    if lb < current_best_objective st then begin
      let lb = lb +. span_lb st in
      if lb < current_best_objective st -. 1e-12 then begin
        let next = next_unassigned st in
        if next = -1 then record_leaf st
        else
          let values =
            match st.engine with
            | Legacy -> [ false; true ]
            | Fast ->
              let first = st.prefer.(next) in
              [ first; not first ]
          in
          List.iter
            (fun value ->
              let undo = ref [] in
              (* [Fun.protect] keeps graph frames balanced even when the
                 node budget aborts the search mid-branch. *)
              Fun.protect
                ~finally:(fun () -> undo_all st undo)
                (fun () ->
                  try
                    do_assign st next value undo;
                    propagate st undo;
                    search st
                  with Conflict -> ()))
            values
      end
    end
  end

(* ---- fast-engine search-state construction ---- *)

let build_watches st =
  (* Unit clauses are root-level assignments; the empty clause is
     immediately unsatisfiable.  Returns the root assignments still to
     be made (as lits). *)
  let units = ref [] in
  Array.iteri
    (fun c lits ->
      match Array.length lits with
      | 0 -> raise Conflict
      | 1 -> units := lits.(0) :: !units
      | _ ->
        st.w0.(c) <- 0;
        st.w1.(c) <- 1;
        st.watch.(lidx lits.(0)) <- c :: st.watch.(lidx lits.(0));
        st.watch.(lidx lits.(1)) <- c :: st.watch.(lidx lits.(1)))
    st.clauses;
  List.rev !units

let build_groups problem =
  let groups =
    List.mapi
      (fun gi scenarios ->
        let scens =
          List.map
            (fun (lits, cost) ->
              { slits = Array.of_list lits; scost = cost; group = gi; nfalse = 0 })
            scenarios
        in
        let sorted = Array.of_list scens in
        Array.sort (fun a b -> compare a.scost b.scost) sorted;
        ({ sorted; cached_min = infinity; dirty = true }, scens))
      problem.cost_groups
  in
  let occs = Array.make (max 1 (2 * problem.nbools)) [] in
  List.iter
    (fun (_, scens) ->
      List.iter
        (fun s ->
          Array.iter (fun l -> occs.(lidx l) <- s :: occs.(lidx l)) s.slits)
        scens)
    groups;
  (Array.of_list (List.map fst groups), occs)

let build_span_index problem =
  let by_last = Hashtbl.create 4 in
  List.iter
    (fun (w, last, first) ->
      if w > 0.0 then
        Hashtbl.replace by_last last
          ((w, first) :: Option.value ~default:[] (Hashtbl.find_opt by_last last)))
    problem.spans;
  let entries =
    Hashtbl.fold (fun last spans acc -> (last, Array.of_list spans) :: acc) by_last []
  in
  Array.of_list (List.sort compare entries)

(* Cost-guided branching order: rank variables by the largest
   cost spread (max - min) of any group they appear in — deciding them
   early moves the lower bound the most — and prefer, for each
   variable, the polarity whose cheapest mentioning scenario is
   cheaper.  Purely static, so the search stays deterministic. *)
let build_branch_order problem =
  let n = problem.nbools in
  let spread = Array.make n 0.0 in
  let min_cost = Array.make (2 * max 1 n) infinity in
  List.iter
    (fun scenarios ->
      let lo = List.fold_left (fun a (_, c) -> min a c) infinity scenarios in
      let hi = List.fold_left (fun a (_, c) -> max a c) neg_infinity scenarios in
      let gspread = if scenarios = [] then 0.0 else hi -. lo in
      List.iter
        (fun (lits, cost) ->
          List.iter
            (fun l ->
              spread.(l.var) <- max spread.(l.var) gspread;
              let i = lidx l in
              min_cost.(i) <- min min_cost.(i) cost)
            lits)
        scenarios)
    problem.cost_groups;
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      match compare spread.(b) spread.(a) with 0 -> compare a b | c -> c)
    order;
  let prefer =
    Array.init n (fun v -> min_cost.((2 * v) + 1) < min_cost.(2 * v))
  in
  (order, prefer)

let make_state (problem : t) engine ~node_budget ~deadline =
  let clauses = Array.of_list (List.map Array.of_list problem.clauses) in
  let nclauses = Array.length clauses in
  let fast = engine = Fast in
  let groups, occs =
    if fast then build_groups problem else ([||], [||])
  in
  let order, prefer =
    if fast then build_branch_order problem else ([||], [||])
  in
  {
    problem;
    engine;
    assign = Array.make problem.nbools (-1);
    clauses;
    best = None;
    node_count = 0;
    budget = node_budget;
    deadline;
    watch = (if fast then Array.make (max 1 (2 * problem.nbools)) [] else [||]);
    w0 = (if fast then Array.make nclauses 0 else [||]);
    w1 = (if fast then Array.make nclauses 0 else [||]);
    queue = Queue.create ();
    occs;
    groups;
    spans_by_last = (if fast then build_span_index problem else [||]);
    asap_epoch = min_int;
    asap_cache = None;
    span_cache = Hashtbl.create 4;
    order;
    prefer;
  }

(* Root propagation: establish watches, assign unit clauses, run to
   fixpoint.  Raises [Conflict] when the root level is already
   inconsistent. *)
let propagate_root st undo =
  match st.engine with
  | Legacy -> propagate_legacy st undo
  | Fast ->
    let units = build_watches st in
    List.iter (fun l -> do_assign st l.var l.value undo) units;
    propagate_fast st undo

(* Warm start: evaluate a caller-supplied full assignment (e.g. the
   greedy serialize-everything schedule) so [st.best] prunes from the
   first search node.  A hint that conflicts with the clauses or the
   difference constraints is silently skipped.  Hint evaluations are
   not search nodes: they are bounded in number and charged to
   wall-clock, not to the node budget. *)
let try_warm_start st hint =
  if Array.length hint <> Array.length st.assign then
    invalid_arg "Solver.solve: warm start hint has wrong arity";
  let undo = ref [] in
  Fun.protect
    ~finally:(fun () -> undo_all st undo)
    (fun () ->
      try
        Array.iteri
          (fun v value ->
            do_assign st v value undo;
            propagate st undo)
          hint;
        record_leaf st
      with Conflict -> ())

let solve ?(node_budget = 2_000_000) ?deadline_seconds ?(warm_starts = []) ?(engine = Fast) t
    =
  let deadline =
    match deadline_seconds with
    | None -> infinity
    | Some s -> if s = infinity then infinity else Unix.gettimeofday () +. max 0.0 s
  in
  let st = make_state t engine ~node_budget ~deadline in
  let undo = ref [] in
  let complete, timed_out =
    try
      propagate_root st undo;
      if engine = Fast then begin
        (* Duplicate hints (e.g. the static all-serial hint and a
           serializing greedy schedule) cost a propagation each, so
           evaluate each distinct assignment once. *)
        let seen = ref [] in
        List.iter
          (fun h ->
            if not (List.exists (fun p -> p = h) !seen) then begin
              seen := h :: !seen;
              try_warm_start st h
            end)
          warm_starts
      end;
      search st;
      (true, false)
    with
    | Conflict -> (true, false)
    | Budget -> (false, false)
    | Deadline -> (false, true)
  in
  undo_all st undo;
  match st.best with
  | None -> None
  | Some sol -> Some { sol with optimal = complete; nodes = st.node_count; timed_out }

(* ---- propagation oracle (tests) ---- *)

let propagation_fixpoint ?(engine = Fast) t seeds =
  let st = make_state t engine ~node_budget:max_int ~deadline:infinity in
  let undo = ref [] in
  let result =
    Fun.protect
      ~finally:(fun () -> undo_all st undo)
      (fun () ->
        try
          propagate_root st undo;
          List.iter
            (fun (var, value) ->
              do_assign st var value undo;
              propagate st undo)
            seeds;
          let assigned = ref [] in
          for v = Array.length st.assign - 1 downto 0 do
            if st.assign.(v) >= 0 then assigned := (v, st.assign.(v) = 1) :: !assigned
          done;
          Some !assigned
        with Conflict -> None)
  in
  result
