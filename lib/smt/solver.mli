(** Optimizing solver for the Bool x difference-logic fragment used by
    the crosstalk-adaptive scheduler (the repository's stand-in for
    Z3's [Optimize]).

    The problem shape, matching the paper's Section 7 encoding:

    - numeric variables are gate start times, constrained by
      (optionally guarded) difference constraints [x >= y + w];
    - boolean variables select schedule structure (overlap indicators,
      serialization orders), constrained by clauses;
    - the objective is a sum of {e scenario costs} (a constant chosen
      by which boolean scenario holds — the paper's powerset gate-error
      constraints, eq. 7) and {e span costs} (weighted differences of
      two numeric variables — the decoherence terms, eq. 9/10).

    Solving is exhaustive DPLL-style branch and bound over the
    booleans with Bellman-Ford feasibility checks and monotone lower
    bounds; numeric values at each leaf are evaluated exactly by an
    ASAP pass for the designated sink (the synchronized readout time)
    followed by an ALAP pass that maximizes every variable
    simultaneously.  The leaf evaluation is the true optimum whenever
    every span cost's [last] variable is (transitively equal to) a
    sink — which the scheduler encoding guarantees; see DESIGN.md. *)

type t

type lit = { var : int; value : bool }
(** [value] is the polarity: [{var; value = false}] is satisfied when
    [var] is assigned false. *)

type engine =
  | Fast
      (** Two-watched-literal propagation, incrementally maintained
          scenario bounds, epoch-cached relaxations, cost-guided
          branching, warm starts.  The default. *)
  | Legacy
      (** The original search core: full clause rescan to fixpoint,
          per-node scenario refiltering, first-unassigned branching.
          Kept as the reference implementation for equivalence tests
          and as the baseline for [bench/exp_sched.ml]; ignores
          [warm_starts]. *)

type solution = {
  bools : bool array;
  nums : float array;
  objective : float;
  optimal : bool;  (** false when the node budget or deadline expired first *)
  nodes : int;  (** search nodes explored *)
  timed_out : bool;  (** true when the wall-clock deadline expired *)
}

val create : unit -> t

val new_bool : t -> string -> int
val new_num : t -> string -> int

val nbools : t -> int
(** Number of boolean variables created so far (warm-start hints must
    have exactly this arity). *)

val add_diff : t -> ?guard:lit -> dst:int -> src:int -> weight:float -> unit -> unit
(** Constraint [num dst >= num src + weight], enforced always, or only
    when [guard] holds. *)

val add_clause : t -> lit list -> unit
(** At least one literal holds.  The empty clause makes the problem
    unsatisfiable. *)

val add_cost_group : t -> (lit list * float) list -> unit
(** A family of mutually exclusive scenarios (conjunctions of
    literals), of which exactly one holds in any full assignment; the
    holding scenario's cost is added to the objective.  Costs must be
    nonnegative (the lower bound assumes it). *)

val add_span_cost : t -> weight:float -> last:int -> first:int -> unit
(** Adds [weight * (num last - num first)] to the objective;
    [weight >= 0]. *)

val add_sink : t -> int -> unit
(** Designate a numeric variable as a sink: its value is pinned to its
    minimal feasible value and upper-bounds the ALAP pass. *)

val add_release : t -> var:int -> time:float -> unit
(** [add_release t ~var ~time] adds the absolute lower bound
    [var >= time] ([time >= 0], in the problem's implicit time origin
    at 0).  Implemented as a difference edge from a lazily created
    zero-pinned base variable, so it composes with both the ASAP and
    ALAP passes of every engine.  The windowed scheduler uses it to
    carry qubit-availability and crosstalk frontiers from already
    committed windows into the next window's solve. *)

val solve :
  ?node_budget:int ->
  ?deadline_seconds:float ->
  ?warm_starts:bool array list ->
  ?engine:engine ->
  t ->
  solution option
(** [None] when unsatisfiable (or when the search was cut off before
    reaching any leaf).  Default budget: 2_000_000 nodes; no deadline
    by default.  [deadline_seconds] is a wall-clock limit on the
    search: on expiry the best incumbent found so far is returned with
    [optimal = false] and [timed_out = true].  The node budget alone
    can miss wall-clock blowups on pathological clusters (deep
    propagation and span-bound recomputation make per-node cost
    uneven), so callers with latency targets should set both.

    [warm_starts] are candidate full boolean assignments (arity
    [nbools t], e.g. from a greedy schedule); each feasible hint is
    evaluated before the search so the incumbent prunes from the first
    node, and the search result is never worse than the best feasible
    hint.  Hints that conflict with the clauses or the difference
    constraints are skipped.  Each hint evaluation counts as one node.
    The [Legacy] engine ignores hints.

    [solve] is read-only on [t]: graph frames pushed during search are
    always popped (even on budget/deadline aborts), and all search
    state lives in a per-call structure, so solving the same problem
    twice — with the same engine and hints — returns identical
    solutions. *)

val propagation_fixpoint :
  ?engine:engine -> t -> (int * bool) list -> (int * bool) list option
(** Test oracle: assert each seed assignment in order, running unit
    propagation (of the chosen engine) to fixpoint after each, and
    return the final assigned set sorted by variable — or [None] if a
    conflict is reached.  Root-level unit clauses are propagated before
    the seeds.  Leaves [t] unchanged.  Both engines implement the same
    propagation relation (unit propagation has a unique fixpoint), so
    their results must agree — the qcheck suite leans on this. *)
