(** Optimizing solver for the Bool x difference-logic fragment used by
    the crosstalk-adaptive scheduler (the repository's stand-in for
    Z3's [Optimize]).

    The problem shape, matching the paper's Section 7 encoding:

    - numeric variables are gate start times, constrained by
      (optionally guarded) difference constraints [x >= y + w];
    - boolean variables select schedule structure (overlap indicators,
      serialization orders), constrained by clauses;
    - the objective is a sum of {e scenario costs} (a constant chosen
      by which boolean scenario holds — the paper's powerset gate-error
      constraints, eq. 7) and {e span costs} (weighted differences of
      two numeric variables — the decoherence terms, eq. 9/10).

    Solving is exhaustive DPLL-style branch and bound over the
    booleans with Bellman-Ford feasibility checks and monotone lower
    bounds; numeric values at each leaf are evaluated exactly by an
    ASAP pass for the designated sink (the synchronized readout time)
    followed by an ALAP pass that maximizes every variable
    simultaneously.  The leaf evaluation is the true optimum whenever
    every span cost's [last] variable is (transitively equal to) a
    sink — which the scheduler encoding guarantees; see DESIGN.md. *)

type t

type lit = { var : int; value : bool }
(** [value] is the polarity: [{var; value = false}] is satisfied when
    [var] is assigned false. *)

type solution = {
  bools : bool array;
  nums : float array;
  objective : float;
  optimal : bool;  (** false when the node budget or deadline expired first *)
  nodes : int;  (** search nodes explored *)
  timed_out : bool;  (** true when the wall-clock deadline expired *)
}

val create : unit -> t

val new_bool : t -> string -> int
val new_num : t -> string -> int

val add_diff : t -> ?guard:lit -> dst:int -> src:int -> weight:float -> unit -> unit
(** Constraint [num dst >= num src + weight], enforced always, or only
    when [guard] holds. *)

val add_clause : t -> lit list -> unit
(** At least one literal holds.  The empty clause makes the problem
    unsatisfiable. *)

val add_cost_group : t -> (lit list * float) list -> unit
(** A family of mutually exclusive scenarios (conjunctions of
    literals), of which exactly one holds in any full assignment; the
    holding scenario's cost is added to the objective.  Costs must be
    nonnegative (the lower bound assumes it). *)

val add_span_cost : t -> weight:float -> last:int -> first:int -> unit
(** Adds [weight * (num last - num first)] to the objective;
    [weight >= 0]. *)

val add_sink : t -> int -> unit
(** Designate a numeric variable as a sink: its value is pinned to its
    minimal feasible value and upper-bounds the ALAP pass. *)

val solve : ?node_budget:int -> ?deadline_seconds:float -> t -> solution option
(** [None] when unsatisfiable (or when the search was cut off before
    reaching any leaf).  Default budget: 2_000_000 nodes; no deadline
    by default.  [deadline_seconds] is a wall-clock limit on the
    search: on expiry the best incumbent found so far is returned with
    [optimal = false] and [timed_out = true].  The node budget alone
    can miss wall-clock blowups on pathological clusters (deep
    propagation and span-bound recomputation make per-node cost
    uneven), so callers with latency targets should set both. *)
