(** Difference-constraint graph: the arithmetic theory behind the
    scheduling solver.

    Variables are nonnegative reals (start times); a constraint
    [x_j >= x_i + w] is an edge [i -> j] with weight [w] (weights may
    be negative, e.g. for containment constraints).  The system is
    feasible iff the graph has no positive-weight cycle; the minimal
    solution is the longest path from an implicit source with
    [x >= 0]. *)

type t

val create : unit -> t

val new_var : t -> string -> int
(** Returns the variable index.  The name is kept for diagnostics. *)

val nvars : t -> int
val var_name : t -> int -> string

val add_edge : t -> src:int -> dst:int -> weight:float -> unit
(** Add constraint [x_dst >= x_src + weight]. *)

val push : t -> unit
(** Open a backtracking frame. *)

val pop : t -> unit
(** Remove every edge added since the matching [push]. *)

val epoch : t -> int
(** A counter that changes whenever the edge set changes ([add_edge],
    or a [pop] that discards at least one edge).  Two calls returning
    the same value bracket a window in which every edge-set-derived
    quantity (feasibility, ASAP times, longest paths) is unchanged —
    the solver uses this to reuse relaxation results across search
    nodes whose assignments activated no guarded edges. *)

val asap : t -> float array option
(** Minimal feasible assignment (longest path from source), or [None]
    if a positive cycle makes the system infeasible. *)

val alap : t -> deadline:float array -> float array option
(** Maximal feasible assignment under per-variable upper bounds
    ([infinity] for unconstrained variables); [None] on
    infeasibility (including a deadline below a variable's minimal
    value).  Every variable is at its individual maximum, all maxima
    simultaneously feasible. *)

val longest_path : t -> src:int -> dst:int -> float
(** Longest path weight from [src] to [dst] over current edges;
    [neg_infinity] when unreachable, 0 when [src = dst].  Assumes the
    system is feasible (no positive cycles). *)

val longest_paths_to : t -> dst:int -> float array
(** Longest path weight from every variable to [dst] in one backward
    relaxation ([neg_infinity] when unreachable).  Assumes
    feasibility. *)
