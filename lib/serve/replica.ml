module Json = Qcx_persist.Json

let ( let* ) = Result.bind

(* Peer replication of the write-ahead journal (DESIGN.md §14).

   A shard streams every cache insertion to its ring peer's crash
   domain as self-checksummed NDJSON lines — the same
   crc-over-bytes-as-written discipline as {!Journal}, plus a shard
   tag (so a replica file can never be replayed into the wrong shard)
   and a strictly increasing sequence number (so reordering or
   splicing is detected, and a reopened sender continues the stream
   where it left off).

   The sender buffers appends and acknowledges a batch only once the
   bytes are written AND fsync'd to the replica file; everything not
   yet acknowledged is the replication lag surfaced in [health].  A
   failed flush (injected partition, full disk) keeps the batch
   pending — the next append retries, so a healed partition drains
   the lag automatically. *)

type fault = Partition | Slow_ack of float

(* ---- line codec ---- *)

let payload_json ~shard ~seq (r : Journal.record) =
  match Cache.entry_to_json r.Journal.entry with
  | Json.Object fields ->
    Json.Object
      (("op", Json.String "rep")
      :: ("shard", Json.Number (float_of_int shard))
      :: ("seq", Json.Number (float_of_int seq))
      :: ("key", Json.String r.Journal.key)
      :: fields)
  | other -> other

let payload_digest payload = Digest.to_hex (Digest.string (Json.to_string ~indent:false payload))

let line_of_record ~shard ~seq record =
  let payload = payload_json ~shard ~seq record in
  let crc = payload_digest payload in
  let doc =
    match payload with
    | Json.Object fields -> Json.Object (fields @ [ ("crc", Json.String crc) ])
    | other -> other
  in
  Json.to_string ~indent:false doc

let record_of_line line =
  let* doc = Json.of_string line in
  let* op = Json.find_str "op" doc in
  if op <> "rep" then Error ("unknown replica op " ^ op)
  else
    let* shard =
      match Json.member "shard" doc with Some v -> Json.to_int v | None -> Error "missing shard"
    in
    let* seq =
      match Json.member "seq" doc with Some v -> Json.to_int v | None -> Error "missing seq"
    in
    let* crc = Json.find_str "crc" doc in
    let* key = Json.find_str "key" doc in
    let* entry = Cache.entry_of_json doc in
    (* Digest over the bytes as written (see Journal.record_of_line for
       why a parse/re-emit round trip would canonicalize damage). *)
    let suffix = ",\"crc\": \"" ^ crc ^ "\"}" in
    let n = String.length line and k = String.length suffix in
    if n < k || String.sub line (n - k) k <> suffix then Error "replica crc field malformed"
    else
      let payload_text = String.sub line 0 (n - k) ^ "}" in
      if String.lowercase_ascii crc = Digest.to_hex (Digest.string payload_text) then
        Ok (shard, seq, { Journal.key; entry })
      else Error "replica crc mismatch"

(* ---- replay ---- *)

type replay = {
  records : (int * Journal.record) list;  (* (seq, record), valid prefix *)
  read : int;
  dropped : int;
  torn : bool;
  valid_bytes : int;  (* byte length of the valid prefix (incl. newlines) *)
}

let replay ~path ~shard =
  if not (Sys.file_exists path) then
    { records = []; read = 0; dropped = 0; torn = false; valid_bytes = 0 }
  else begin
    let text =
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with _ -> ""
    in
    let lines = String.split_on_char '\n' text in
    (* Valid-prefix semantics, like the journal, with two extra checks:
       the shard tag must match and sequence numbers must be strictly
       increasing — a spliced or reordered file stops the replay at
       the first inconsistent line. *)
    let rec walk acc read bytes last_seq = function
      | [] | [ "" ] -> { records = List.rev acc; read; dropped = 0; torn = false; valid_bytes = bytes }
      | line :: rest -> (
        let checked =
          let* s, seq, r = record_of_line line in
          if s <> shard then Error "replica shard tag mismatch"
          else if seq <= last_seq then Error "replica sequence regressed"
          else Ok (seq, r)
        in
        match checked with
        | Ok (seq, r) ->
          walk ((seq, r) :: acc) (read + 1) (bytes + String.length line + 1) seq rest
        | Error _ ->
          let remaining = List.length (List.filter (fun l -> l <> "") (line :: rest)) in
          { records = List.rev acc; read; dropped = remaining; torn = true; valid_bytes = bytes })
    in
    walk [] 0 0 (-1) lines
  end

(* ---- sender ---- *)

type sender = {
  path : string;
  shard : int;
  fsync : bool;
  batch : int;
  mutable fd : Unix.file_descr option;
  mutable next_seq : int;
  mutable pending : string list;  (* encoded lines, newest first *)
  mutable pending_bytes : int;
  mutable appended : int;
  mutable acked : int;
  mutable acked_bytes : int;
  mutable flushes : int;
  mutable failed_flushes : int;
  mutable peak_lag_entries : int;  (* high-water marks of the pending lag — under *)
  mutable peak_lag_bytes : int;  (* pipelined load, instantaneous lag hides bursts *)
  mutable fault : (nth:int -> fault option) option;
}

let write_all fd bytes =
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

let open_sender ~path ~shard ?(fsync = true) ?(batch = 1) () =
  if batch <= 0 then invalid_arg "Replica.open_sender: batch must be positive";
  let rep = replay ~path ~shard in
  try
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
    (* A torn tail (the previous sender died mid-write) must be cut
       before appending, or the new stream lands after poison and the
       whole suffix is lost to valid-prefix replay. *)
    Unix.ftruncate fd rep.valid_bytes;
    ignore (Unix.lseek fd rep.valid_bytes Unix.SEEK_SET);
    let next_seq =
      match List.rev rep.records with (seq, _) :: _ -> seq + 1 | [] -> 0
    in
    Ok
      {
        path;
        shard;
        fsync;
        batch;
        fd = Some fd;
        next_seq;
        pending = [];
        pending_bytes = 0;
        appended = 0;
        acked = 0;
        acked_bytes = 0;
        flushes = 0;
        failed_flushes = 0;
        peak_lag_entries = 0;
        peak_lag_bytes = 0;
        fault = None;
      }
  with Unix.Unix_error (err, _, _) ->
    Error (Printf.sprintf "cannot open replica %s: %s" path (Unix.error_message err))

let path s = s.path
let lag s = (List.length s.pending, s.pending_bytes)
let peak_lag s = (s.peak_lag_entries, s.peak_lag_bytes)
let appended s = s.appended
let acked s = s.acked
let failed_flushes s = s.failed_flushes
let set_fault s fault = s.fault <- fault

let flush s =
  match s.pending with
  | [] -> Ok 0
  | _ -> (
    let nth = s.flushes in
    s.flushes <- s.flushes + 1;
    let fault = match s.fault with Some f -> f ~nth | None -> None in
    match fault with
    | Some Partition ->
      s.failed_flushes <- s.failed_flushes + 1;
      Error "replica peer unreachable (injected partition)"
    | fault -> (
      (match fault with
      | Some (Slow_ack d) -> if d > 0.0 then Unix.sleepf d
      | _ -> ());
      match s.fd with
      | None -> Error "replica sender is closed"
      | Some fd -> (
        try
          List.iter
            (fun line -> write_all fd (Bytes.of_string (line ^ "\n")))
            (List.rev s.pending);
          if s.fsync then Unix.fsync fd;
          (* The ack: bytes written and durable.  Only now does the
             batch leave the lag counter. *)
          let n = List.length s.pending in
          s.acked <- s.acked + n;
          s.acked_bytes <- s.acked_bytes + s.pending_bytes;
          s.pending <- [];
          s.pending_bytes <- 0;
          Ok n
        with Unix.Unix_error (err, _, _) ->
          s.failed_flushes <- s.failed_flushes + 1;
          Error (Printf.sprintf "replica flush failed: %s" (Unix.error_message err)))))

let append s record =
  let line = line_of_record ~shard:s.shard ~seq:s.next_seq record in
  s.next_seq <- s.next_seq + 1;
  s.pending <- line :: s.pending;
  s.pending_bytes <- s.pending_bytes + String.length line + 1;
  s.appended <- s.appended + 1;
  s.peak_lag_entries <- max s.peak_lag_entries (List.length s.pending);
  s.peak_lag_bytes <- max s.peak_lag_bytes s.pending_bytes;
  (* Auto-flush at the batch bound.  During a partition the pending
     list grows past the bound, so every subsequent append retries —
     a healed link drains the backlog without outside help. *)
  if List.length s.pending >= s.batch then ignore (flush s)

let close s =
  match s.fd with
  | None -> ()
  | Some fd ->
    s.fd <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())

let to_json s =
  let lag_entries, lag_bytes = lag s in
  Json.Object
    [
      ("path", Json.String s.path);
      ("shard", Json.Number (float_of_int s.shard));
      ("appended", Json.Number (float_of_int s.appended));
      ("acked", Json.Number (float_of_int s.acked));
      ("acked_bytes", Json.Number (float_of_int s.acked_bytes));
      ("lag_entries", Json.Number (float_of_int lag_entries));
      ("lag_bytes", Json.Number (float_of_int lag_bytes));
      ("peak_lag_entries", Json.Number (float_of_int s.peak_lag_entries));
      ("peak_lag_bytes", Json.Number (float_of_int s.peak_lag_bytes));
      ("flushes", Json.Number (float_of_int s.flushes));
      ("failed_flushes", Json.Number (float_of_int s.failed_flushes));
    ]
