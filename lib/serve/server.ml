module Json = Qcx_persist.Json

(* One input frame: a line that fit the bound, or the record that an
   oversized one was discarded (its bytes are never kept). *)
type frame = Line of string | Oversize

let handle_frames ?(max_frame = Wire.default_max_frame) service frames =
  let frames =
    List.filter (function Line l -> String.trim l <> "" | Oversize -> true) frames
  in
  let parsed =
    List.map
      (function
        | Oversize -> `Oversize
        | Line line -> (
          if String.length line > max_frame then `Oversize
          else
            match Json.of_string line with
            | Error e -> `Bad ("bad JSON: " ^ e)
            | Ok doc -> (
              match Wire.request_of_json doc with
              | Error e -> `Bad e
              | Ok req -> `Req req)))
      frames
  in
  let requests = List.filter_map (function `Req r -> Some r | _ -> None) parsed in
  let responses =
    (* Last-resort guard: a panic anywhere in the service layer
       degrades to typed per-request errors, never a dropped batch. *)
    try Service.handle_batch_rendered service requests
    with e ->
      Service.note_panic service;
      let msg = "handler panic: " ^ Printexc.to_string e in
      List.map
        (fun req ->
          Json.to_string ~indent:false
            (Wire.internal_error_response ~id:(Some (Wire.request_id req)) msg))
        requests
  in
  let responses = ref responses in
  let out =
    List.map
      (fun item ->
        match item with
        | `Oversize ->
          Json.to_string ~indent:false (Wire.frame_too_large_response ~id:None ~limit:max_frame)
        | `Bad e -> Json.to_string ~indent:false (Wire.error_response ~id:None e)
        | `Req _ -> (
          match !responses with
          | r :: rest ->
            responses := rest;
            r
          | [] ->
            Json.to_string ~indent:false
              (Wire.internal_error_response ~id:None "internal: missing response")))
      parsed
  in
  let stop = List.exists (function `Req (Wire.Shutdown _) -> true | _ -> false) parsed in
  (out, stop)

let handle_lines ?max_frame service lines =
  handle_frames ?max_frame service (List.map (fun l -> Line l) lines)

let serve_channels service ic oc =
  let rec read_all acc =
    match input_line ic with
    | line -> read_all (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read_all [] in
  let responses, _stop = handle_lines service lines in
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    responses;
  flush oc

(* ---- socket mode: the event-driven reactor ----

   One [Unix.select] loop multiplexes the listener and every open
   connection; fds are non-blocking and every wait is capped by a
   short tick so the drain flag is observed promptly.  Frames from all
   connections accumulate into one shared batch (round-robin, one
   frame per connection per pass — a client with a deep pipeline never
   starves the others) dispatched to the handler when the batch is
   full or the collection window closes.  Responses are demultiplexed
   back to their origin connections through bounded per-connection
   write queues: a connection whose queue is over the bound is neither
   read nor dispatched until it drains (backpressure), and one that
   accepts no bytes for [write_timeout] is dropped. *)

let tick = 0.25

(* Incremental NDJSON framing over one reusable per-connection buffer:
   frames are substrings of the same growable byte array (compacted in
   place), so a busy connection costs zero per-line Buffer churn.  A
   frame beyond [max_frame] flips the reader into discard mode — its
   bytes are dropped as they arrive, only the fact of the oversize is
   kept. *)
type reader = {
  fd : Unix.file_descr;
  max_frame : int;
  mutable buf : Bytes.t;
  mutable start : int;  (* first unconsumed byte *)
  mutable len : int;  (* end of buffered data *)
  mutable scanned : int;  (* newline-scan frontier, start <= scanned <= len *)
  mutable eof : bool;
  mutable discarding : bool;  (* inside an oversized frame; dropping bytes *)
}

let read_chunk = 65536

let make_reader ?(max_frame = Wire.default_max_frame) fd =
  {
    fd;
    max_frame;
    buf = Bytes.create read_chunk;
    start = 0;
    len = 0;
    scanned = 0;
    eof = false;
    discarding = false;
  }

let ensure_space r want =
  if Bytes.length r.buf - r.len < want then begin
    (* Compact first — the common case once a frame has been consumed —
       and only grow when the partial frame genuinely needs the room. *)
    if r.start > 0 then begin
      Bytes.blit r.buf r.start r.buf 0 (r.len - r.start);
      r.len <- r.len - r.start;
      r.scanned <- r.scanned - r.start;
      r.start <- 0
    end;
    if Bytes.length r.buf - r.len < want then begin
      let cap = max (2 * Bytes.length r.buf) (r.len + want) in
      let b = Bytes.create cap in
      Bytes.blit r.buf 0 b 0 r.len;
      r.buf <- b
    end
  end

let rec fill r =
  if r.eof then 0
  else begin
    ensure_space r read_chunk;
    match Unix.read r.fd r.buf r.len (Bytes.length r.buf - r.len) with
    | 0 ->
      r.eof <- true;
      0
    | n ->
      r.len <- r.len + n;
      n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill r
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> 0
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      r.eof <- true;
      0
  end

let reset_reader r =
  r.start <- 0;
  r.len <- 0;
  r.scanned <- 0

let take_frame r =
  let i = ref r.scanned in
  while !i < r.len && Bytes.unsafe_get r.buf !i <> '\n' do
    incr i
  done;
  if !i < r.len then begin
    let line_len = !i - r.start in
    let res =
      if r.discarding then begin
        r.discarding <- false;
        Oversize
      end
      else if line_len > r.max_frame then Oversize
      else Line (Bytes.sub_string r.buf r.start line_len)
    in
    r.start <- !i + 1;
    r.scanned <- r.start;
    if r.start = r.len then reset_reader r;
    Some res
  end
  else begin
    r.scanned <- r.len;
    (* No newline yet.  A malicious frame must not buffer without
       bound: beyond the limit the bytes are dropped and only the
       fact of the oversize is remembered. *)
    if r.len - r.start > r.max_frame then begin
      reset_reader r;
      r.discarding <- true
    end;
    None
  end

(* At EOF a trailing unterminated fragment is served as a frame. *)
let take_eof_fragment r =
  if r.len > r.start then begin
    let discarded = r.discarding in
    let line = Bytes.sub_string r.buf r.start (r.len - r.start) in
    reset_reader r;
    r.discarding <- false;
    Some (if discarded then Oversize else Line line)
  end
  else None

let readable fd timeout =
  match Unix.select [ fd ] [] [] timeout with
  | [ _ ], _, _ -> true
  | _ -> false
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

exception Slow_client

let write_all ?timeout fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go ofs =
    if ofs < len then begin
      (match timeout with
      | None -> ()
      | Some t -> (
        match Unix.select [] [ fd ] [] t with
        | _, [ _ ], _ -> ()
        | _ -> raise Slow_client
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()));
      match Unix.write fd b ofs (len - ofs) with
      | n -> go (ofs + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ofs
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        (* Non-blocking fd with a full kernel buffer: without a
           timeout, wait for writability and retry. *)
        if timeout = None then ignore (readable fd tick);
        go ofs
    end
  in
  try go 0 with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()

let overloaded_line =
  Json.to_string ~indent:false (Wire.overloaded_response ~id:None) ^ "\n"

(* Shed one accepted-but-over-bound connection: a typed [overloaded]
   line (best effort, short timeout — the client may already be gone)
   and the close.  A refused connection still gets a parseable answer,
   never a silent RST. *)
let shed_connection fd =
  (try write_all ~timeout:0.05 fd overloaded_line with Slow_client -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ---- reactor observability ---- *)

let occupancy_buckets = 8

type metrics = {
  mutable accepted : int;
  mutable shed : int;
  mutable open_conns : int;
  mutable peak_open_conns : int;
  mutable pending_conns : int;  (* admitted but nothing dispatched yet *)
  mutable batches : int;
  mutable frames : int;
  mutable slow_client_drops : int;
  mutable backpressure_stalls : int;
  occupancy : int array;  (* batch-size histogram, log2 buckets 1,2,4,...,128+ *)
}

let create_metrics () =
  {
    accepted = 0;
    shed = 0;
    open_conns = 0;
    peak_open_conns = 0;
    pending_conns = 0;
    batches = 0;
    frames = 0;
    slow_client_drops = 0;
    backpressure_stalls = 0;
    occupancy = Array.make occupancy_buckets 0;
  }

let note_batch m size =
  m.batches <- m.batches + 1;
  m.frames <- m.frames + size;
  let rec bucket i n = if n <= 1 || i >= occupancy_buckets - 1 then i else bucket (i + 1) (n / 2) in
  let b = bucket 0 size in
  m.occupancy.(b) <- m.occupancy.(b) + 1

let metrics_json m =
  let n = float_of_int in
  Json.Object
    [
      ("accepted", Json.Number (n m.accepted));
      ("shed", Json.Number (n m.shed));
      ("open_connections", Json.Number (n m.open_conns));
      ("peak_open_connections", Json.Number (n m.peak_open_conns));
      ("accept_queue_depth", Json.Number (n m.pending_conns));
      ("batches", Json.Number (n m.batches));
      ("frames", Json.Number (n m.frames));
      ("slow_client_drops", Json.Number (n m.slow_client_drops));
      ("backpressure_stalls", Json.Number (n m.backpressure_stalls));
      ( "batch_occupancy",
        Json.Object
          (List.init occupancy_buckets (fun i ->
               let label =
                 if i = occupancy_buckets - 1 then string_of_int (1 lsl i) ^ "+"
                 else string_of_int (1 lsl i)
               in
               (label, Json.Number (n m.occupancy.(i))))) );
    ]

(* ---- per-connection reactor state ---- *)

(* Per-connection write queues are bounded: past this many unwritten
   bytes the connection is neither read nor dispatched until the
   client drains its responses. *)
let max_out_bytes = 4 * 1024 * 1024

type conn = {
  cfd : Unix.file_descr;
  reader : reader;
  inbox : frame Queue.t;  (* framed, not yet dispatched *)
  outq : string Queue.t;  (* rendered response lines awaiting write *)
  mutable out_off : int;  (* written prefix of the head of [outq] *)
  mutable out_bytes : int;
  mutable served : bool;  (* at least one frame dispatched (admission) *)
  mutable last_progress : float;  (* last accepted write byte (or enqueue) *)
  mutable dead : bool;
}

let conn_of fd ~max_frame ~now =
  (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
  {
    cfd = fd;
    reader = make_reader ~max_frame fd;
    inbox = Queue.create ();
    outq = Queue.create ();
    out_off = 0;
    out_bytes = 0;
    served = false;
    last_progress = now;
    dead = false;
  }

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let enqueue_response c line =
  let s = line ^ "\n" in
  Queue.add s c.outq;
  c.out_bytes <- c.out_bytes + String.length s

(* Write as much as the kernel takes without blocking. *)
let rec flush_conn c ~now =
  if not c.dead then
    match Queue.peek_opt c.outq with
    | None -> ()
    | Some s -> (
      let remaining = String.length s - c.out_off in
      match Unix.write_substring c.cfd s c.out_off remaining with
      | n ->
        c.out_bytes <- c.out_bytes - n;
        if n > 0 then c.last_progress <- now;
        if n = remaining then begin
          ignore (Queue.pop c.outq);
          c.out_off <- 0;
          flush_conn c ~now
        end
        else c.out_off <- c.out_off + n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush_conn c ~now
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> c.dead <- true)

(* Remaining unwritten output, for the final blocking flush. *)
let pending_output c =
  let b = Buffer.create (c.out_bytes + 1) in
  let first = ref true in
  Queue.iter
    (fun s ->
      if !first then begin
        first := false;
        Buffer.add_substring b s c.out_off (String.length s - c.out_off)
      end
      else Buffer.add_string b s)
    c.outq;
  Buffer.contents b

let serve_socket_with ?(max_batch = 128) ?(max_frame = Wire.default_max_frame) ?write_timeout
    ?(stop = fun () -> false) ?(backlog = 16) ?max_pending ?(note_panic = fun () -> ())
    ?(batch_window = 0.0) ?metrics ~handle ~path () =
  let max_batch = max 1 max_batch in
  (match Sys.set_signal Sys.sigpipe Sys.Signal_ignore with
  | () -> ()
  | exception Invalid_argument _ -> ());
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let conns : conn Queue.t = Queue.create () in
  let m = match metrics with Some m -> m | None -> create_metrics () in
  Fun.protect
    ~finally:(fun () ->
      Queue.iter (fun c -> close_fd c.cfd) conns;
      Queue.clear conns;
      close_fd sock;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock (max 1 backlog);
      (try Unix.set_nonblock sock with Unix.Unix_error _ -> ());
      let unserved () = Queue.fold (fun n c -> if c.served || c.dead then n else n + 1) 0 conns in
      let live_open () = Queue.fold (fun n c -> if c.dead then n else n + 1) 0 conns in
      (* Frames that could go into a batch right now — a backpressured
         connection's frames do not count, or the loop would spin
         trying to dispatch work it refuses to take. *)
      let eligible_inbox () =
        Queue.fold
          (fun n c ->
            if c.dead || c.out_bytes > max_out_bytes then n else n + Queue.length c.inbox)
          0 conns
      in
      let update_gauges () =
        m.open_conns <- Queue.length conns;
        if m.open_conns > m.peak_open_conns then m.peak_open_conns <- m.open_conns;
        m.pending_conns <- unserved ()
      in
      let accept_burst ~now =
        let budget = ref (match max_pending with Some b -> b + 8 | None -> 64) in
        let continue = ref true in
        while !continue && !budget > 0 do
          match Unix.accept sock with
          | fd, _ ->
            decr budget;
            m.accepted <- m.accepted + 1;
            (* Admission: the bound caps concurrently open connections
               at [bound + 2] — the same budget as the serial loop it
               replaced (one being served plus [bound + 1] admitted) —
               and the excess is shed NOW with a typed [overloaded]
               line instead of waiting its turn just to time out.
               FIFO fairness: the newest is shed. *)
            let over =
              match max_pending with Some bound -> live_open () + 1 > bound + 2 | None -> false
            in
            if over then begin
              m.shed <- m.shed + 1;
              shed_connection fd
            end
            else Queue.add (conn_of fd ~max_frame ~now) conns
          | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            continue := false
        done
      in
      let read_conn c =
        if (not c.dead) && not c.reader.eof then begin
          let rec drain () = if fill c.reader > 0 then drain () in
          drain ();
          let rec frames () =
            match take_frame c.reader with
            | Some (Line l) when String.trim l = "" -> frames ()
            | Some f ->
              Queue.add f c.inbox;
              frames ()
            | None -> ()
          in
          frames ();
          if c.reader.eof then
            match take_eof_fragment c.reader with
            | Some (Line l) when String.trim l = "" -> ()
            | Some f -> Queue.add f c.inbox
            | None -> ()
        end
      in
      (* Fair batch formation: one frame per connection per pass, in
         accept order, until the batch is full or inboxes are empty. *)
      let form_batch () =
        let order = Queue.fold (fun acc c -> c :: acc) [] conns |> List.rev in
        let batch = ref [] and n = ref 0 in
        let progressed = ref true in
        while !n < max_batch && !progressed do
          progressed := false;
          List.iter
            (fun c ->
              if !n < max_batch && (not c.dead) && c.out_bytes <= max_out_bytes then
                match Queue.take_opt c.inbox with
                | Some f ->
                  batch := (c, f) :: !batch;
                  incr n;
                  c.served <- true;
                  progressed := true
                | None -> ())
            order
        done;
        List.rev !batch
      in
      let dispatch batch =
        match batch with
        | [] -> false
        | _ -> (
          note_batch m (List.length batch);
          let frames = List.map snd batch in
          match handle frames with
          | responses, shutdown ->
            let rec zip bs rs =
              match (bs, rs) with
              | [], _ -> ()
              | (c, _) :: bt, r :: rt ->
                if not c.dead then enqueue_response c r;
                zip bt rt
              | (c, _) :: bt, [] ->
                if not c.dead then
                  enqueue_response c
                    (Json.to_string ~indent:false
                       (Wire.internal_error_response ~id:None "internal: missing response"));
                zip bt []
            in
            zip batch responses;
            let now = Unix.gettimeofday () in
            List.iter (fun (c, _) -> c.last_progress <- now) batch;
            shutdown
          | exception (Stack_overflow | Failure _ | Invalid_argument _ | Not_found) ->
            (* Crash-recovery wrapper: a handler panic closes the
               connections whose frames were in the dying batch, but
               the daemon keeps accepting. *)
            note_panic ();
            List.iter (fun (c, _) -> c.dead <- true) batch;
            false)
      in
      let final_flush () =
        Queue.iter
          (fun c ->
            if (not c.dead) && c.out_bytes > 0 then
              try write_all ?timeout:write_timeout c.cfd (pending_output c)
              with Slow_client -> ())
          conns
      in
      (* Window bookkeeping: the collection window opens when the first
         frame of a batch arrives and closes [batch_window] later. *)
      let window_opened = ref None in
      let finished = ref false in
      while not !finished do
        if stop () then begin
          (* Graceful drain: frames already here are served and their
             responses written before the loop exits. *)
          ignore (dispatch (form_batch ()));
          final_flush ();
          finished := true
        end
        else begin
          let now = Unix.gettimeofday () in
          let timeout =
            match !window_opened with
            | None -> tick
            | Some t0 -> Float.min tick (Float.max 0.0 ((t0 +. batch_window) -. now))
          in
          let read_fds =
            sock
            :: Queue.fold
                 (fun acc c ->
                   if c.dead || c.reader.eof || Queue.length c.inbox >= max_batch then acc
                   else if c.out_bytes > max_out_bytes then begin
                     m.backpressure_stalls <- m.backpressure_stalls + 1;
                     acc
                   end
                   else c.cfd :: acc)
                 [] conns
          in
          let write_fds =
            Queue.fold (fun acc c -> if (not c.dead) && c.out_bytes > 0 then c.cfd :: acc else acc)
              [] conns
          in
          let rd, wr =
            match Unix.select read_fds write_fds [] timeout with
            | r, w, _ -> (r, w)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
          in
          let now = Unix.gettimeofday () in
          if List.memq sock rd then accept_burst ~now;
          Queue.iter (fun c -> if List.memq c.cfd rd then read_conn c) conns;
          Queue.iter (fun c -> if List.memq c.cfd wr then flush_conn c ~now) conns;
          (* Dispatch when the shared batch is full or the window has
             closed (a zero window dispatches whatever this iteration
             brought — batching then comes only from genuinely
             concurrent arrivals, never from added latency). *)
          let pending = eligible_inbox () in
          if pending = 0 then window_opened := None
          else if !window_opened = None then window_opened := Some now;
          let window_closed =
            match !window_opened with
            | None -> false
            | Some t0 -> batch_window <= 0.0 || now -. t0 +. 1e-9 >= batch_window
          in
          if pending > 0 && (window_closed || pending >= max_batch) then begin
            let batch = form_batch () in
            (* Leftover frames (deeper than one batch) dispatch on the
               very next pass; an emptied inbox closes the window. *)
            window_opened := (if eligible_inbox () = 0 then None else Some 0.0);
            if dispatch batch then begin
              final_flush ();
              finished := true
            end
            else
              (* Opportunistic write: a lockstep client gets its answer
                 this iteration, not after another select wakeup. *)
              let now = Unix.gettimeofday () in
              List.iter (fun (c, _) -> flush_conn c ~now) batch
          end;
          if not !finished then begin
            (* Slow-client and lifecycle sweep. *)
            (match write_timeout with
            | None -> ()
            | Some wt ->
              Queue.iter
                (fun c ->
                  if (not c.dead) && c.out_bytes > 0 && now -. c.last_progress > wt then begin
                    m.slow_client_drops <- m.slow_client_drops + 1;
                    c.dead <- true
                  end)
                conns);
            let survivors = Queue.create () in
            Queue.iter
              (fun c ->
                let finished_conn =
                  c.dead
                  || (c.reader.eof && Queue.is_empty c.inbox && c.out_bytes = 0)
                in
                if finished_conn then close_fd c.cfd else Queue.add c survivors)
              conns;
            Queue.clear conns;
            Queue.transfer survivors conns;
            update_gauges ()
          end
        end
      done)

let serve_socket ?max_batch ?(max_frame = Wire.default_max_frame) ?write_timeout ?stop ?backlog
    ?max_pending ?batch_window ?metrics service ~path =
  let max_batch =
    match max_batch with
    | Some m -> max 1 m
    | None -> 2 * (Service.config service).Service.queue_bound
  in
  let m = match metrics with Some m -> m | None -> create_metrics () in
  Service.set_serving service (Some (fun () -> metrics_json m));
  serve_socket_with ~max_batch ~max_frame ?write_timeout ?stop ?backlog ?max_pending ?batch_window
    ~metrics:m
    ~note_panic:(fun () -> Service.note_panic service)
    ~handle:(fun frames -> handle_frames ~max_frame service frames)
    ~path ()
