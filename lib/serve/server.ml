module Json = Qcx_persist.Json

let handle_lines service lines =
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  let parsed =
    List.map
      (fun line ->
        match Json.of_string line with
        | Error e -> Error ("bad JSON: " ^ e)
        | Ok doc -> Wire.request_of_json doc)
      lines
  in
  let requests = List.filter_map Result.to_option parsed in
  let responses = ref (Service.handle_batch service requests) in
  let out =
    List.map
      (fun item ->
        match item with
        | Error e -> Wire.error_response ~id:None e
        | Ok _ -> (
          match !responses with
          | r :: rest ->
            responses := rest;
            r
          | [] -> Wire.error_response ~id:None "internal: missing response"))
      parsed
  in
  let stop =
    List.exists (function Ok (Wire.Shutdown _) -> true | _ -> false) parsed
  in
  (List.map (fun doc -> Json.to_string ~indent:false doc) out, stop)

let serve_channels service ic oc =
  let rec read_all acc =
    match input_line ic with
    | line -> read_all (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read_all [] in
  let responses, _stop = handle_lines service lines in
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    responses;
  flush oc

(* ---- socket mode ----

   A hand-rolled line reader over the raw fd: in_channel buffering
   cannot be mixed with [Unix.select], and we need "is more pipelined
   input already here?" to form batches without adding latency. *)

type reader = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pending : Buffer.t;
  mutable eof : bool;
}

let make_reader fd = { fd; buf = Bytes.create 65536; pending = Buffer.create 4096; eof = false }

let rec fill r =
  if r.eof then 0
  else
    match Unix.read r.fd r.buf 0 (Bytes.length r.buf) with
    | 0 ->
      r.eof <- true;
      0
    | n ->
      Buffer.add_subbytes r.pending r.buf 0 n;
      n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill r
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      r.eof <- true;
      0

let take_line r =
  let s = Buffer.contents r.pending in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    let line = String.sub s 0 i in
    Buffer.clear r.pending;
    Buffer.add_substring r.pending s (i + 1) (String.length s - i - 1);
    Some line

(* Blocking read of one line; None at EOF (a trailing unterminated
   fragment is served as a line). *)
let rec read_line_blocking r =
  match take_line r with
  | Some line -> Some line
  | None ->
    if r.eof then
      if Buffer.length r.pending > 0 then begin
        let line = Buffer.contents r.pending in
        Buffer.clear r.pending;
        Some line
      end
      else None
    else begin
      ignore (fill r);
      read_line_blocking r
    end

let readable_now fd =
  match Unix.select [ fd ] [] [] 0.0 with
  | [ _ ], _, _ -> true
  | _ -> false
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

(* Lines that are already here (buffered or in the kernel), without
   blocking — the pipelined tail of a batch. *)
let rec drain_available r ~max acc =
  if max <= 0 then List.rev acc
  else
    match take_line r with
    | Some line -> drain_available r ~max:(max - 1) (line :: acc)
    | None ->
      if (not r.eof) && readable_now r.fd && fill r > 0 then drain_available r ~max acc
      else List.rev acc

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go ofs =
    if ofs < len then
      match Unix.write fd b ofs (len - ofs) with
      | n -> go (ofs + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ofs
  in
  try go 0 with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()

let serve_connection service fd ~max_batch =
  let r = make_reader fd in
  let rec loop () =
    match read_line_blocking r with
    | None -> false
    | Some first ->
      let batch = first :: drain_available r ~max:(max_batch - 1) [] in
      let responses, stop = handle_lines service batch in
      write_all fd (String.concat "" (List.map (fun l -> l ^ "\n") responses));
      if stop then true else loop ()
  in
  loop ()

let serve_socket ?max_batch service ~path =
  let max_batch =
    match max_batch with
    | Some m -> max 1 m
    | None -> 2 * (Service.config service).Service.queue_bound
  in
  (match Sys.set_signal Sys.sigpipe Sys.Signal_ignore with
  | () -> ()
  | exception Invalid_argument _ -> ());
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 16;
      let rec accept_loop () =
        match Unix.accept sock with
        | client, _ ->
          let stop =
            Fun.protect
              ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
              (fun () -> serve_connection service client ~max_batch)
          in
          if not stop then accept_loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      in
      accept_loop ())
