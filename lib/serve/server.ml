module Json = Qcx_persist.Json

(* One input frame: a line that fit the bound, or the record that an
   oversized one was discarded (its bytes are never kept). *)
type frame = Line of string | Oversize

let handle_frames ?(max_frame = Wire.default_max_frame) service frames =
  let frames =
    List.filter (function Line l -> String.trim l <> "" | Oversize -> true) frames
  in
  let parsed =
    List.map
      (function
        | Oversize -> `Oversize
        | Line line -> (
          if String.length line > max_frame then `Oversize
          else
            match Json.of_string line with
            | Error e -> `Bad ("bad JSON: " ^ e)
            | Ok doc -> (
              match Wire.request_of_json doc with
              | Error e -> `Bad e
              | Ok req -> `Req req)))
      frames
  in
  let requests = List.filter_map (function `Req r -> Some r | _ -> None) parsed in
  let responses =
    (* Last-resort guard: a panic anywhere in the service layer
       degrades to typed per-request errors, never a dropped batch. *)
    try Service.handle_batch service requests
    with e ->
      Service.note_panic service;
      let msg = "handler panic: " ^ Printexc.to_string e in
      List.map
        (fun req -> Wire.internal_error_response ~id:(Some (Wire.request_id req)) msg)
        requests
  in
  let responses = ref responses in
  let out =
    List.map
      (fun item ->
        match item with
        | `Oversize -> Wire.frame_too_large_response ~id:None ~limit:max_frame
        | `Bad e -> Wire.error_response ~id:None e
        | `Req _ -> (
          match !responses with
          | r :: rest ->
            responses := rest;
            r
          | [] -> Wire.internal_error_response ~id:None "internal: missing response"))
      parsed
  in
  let stop = List.exists (function `Req (Wire.Shutdown _) -> true | _ -> false) parsed in
  (List.map (fun doc -> Json.to_string ~indent:false doc) out, stop)

let handle_lines ?max_frame service lines =
  handle_frames ?max_frame service (List.map (fun l -> Line l) lines)

let serve_channels service ic oc =
  let rec read_all acc =
    match input_line ic with
    | line -> read_all (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read_all [] in
  let responses, _stop = handle_lines service lines in
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    responses;
  flush oc

(* ---- socket mode ----

   A hand-rolled line reader over the raw fd: in_channel buffering
   cannot be mixed with [Unix.select], and we need "is more pipelined
   input already here?" to form batches without adding latency.  The
   fd is non-blocking and every wait goes through a short select tick
   so the drain flag is observed promptly. *)

let tick = 0.25

type reader = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  max_frame : int;
  mutable pending : Buffer.t;
  mutable eof : bool;
  mutable discarding : bool;  (* inside an oversized frame; dropping bytes *)
}

let make_reader ?(max_frame = Wire.default_max_frame) fd =
  {
    fd;
    buf = Bytes.create 65536;
    max_frame;
    pending = Buffer.create 4096;
    eof = false;
    discarding = false;
  }

let rec fill r =
  if r.eof then 0
  else
    match Unix.read r.fd r.buf 0 (Bytes.length r.buf) with
    | 0 ->
      r.eof <- true;
      0
    | n ->
      Buffer.add_subbytes r.pending r.buf 0 n;
      n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill r
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> 0
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      r.eof <- true;
      0

let take_frame r =
  let s = Buffer.contents r.pending in
  match String.index_opt s '\n' with
  | Some i ->
    let line = String.sub s 0 i in
    Buffer.clear r.pending;
    Buffer.add_substring r.pending s (i + 1) (String.length s - i - 1);
    if r.discarding then begin
      r.discarding <- false;
      Some Oversize
    end
    else if i > r.max_frame then Some Oversize
    else Some (Line line)
  | None ->
    (* No newline yet.  A malicious frame must not buffer without
       bound: beyond the limit the bytes are dropped and only the
       fact of the oversize is remembered. *)
    if Buffer.length r.pending > r.max_frame then begin
      Buffer.clear r.pending;
      r.discarding <- true
    end;
    None

let readable fd timeout =
  match Unix.select [ fd ] [] [] timeout with
  | [ _ ], _, _ -> true
  | _ -> false
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

(* Blocking read of one frame; None at EOF or when [stop] fires (a
   trailing unterminated fragment is served as a frame). *)
let rec read_frame_blocking r ~stop =
  match take_frame r with
  | Some f -> Some f
  | None ->
    if r.eof then
      if Buffer.length r.pending > 0 then begin
        let line = Buffer.contents r.pending in
        Buffer.clear r.pending;
        if r.discarding then begin
          r.discarding <- false;
          Some Oversize
        end
        else Some (Line line)
      end
      else None
    else if stop () then None
    else begin
      if readable r.fd tick then ignore (fill r);
      read_frame_blocking r ~stop
    end

(* Frames that are already here (buffered or in the kernel), without
   blocking — the pipelined tail of a batch. *)
let rec drain_available r ~max acc =
  if max <= 0 then List.rev acc
  else
    match take_frame r with
    | Some f -> drain_available r ~max:(max - 1) (f :: acc)
    | None ->
      if (not r.eof) && readable r.fd 0.0 && fill r > 0 then drain_available r ~max acc
      else List.rev acc

exception Slow_client

let write_all ?timeout fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go ofs =
    if ofs < len then begin
      (match timeout with
      | None -> ()
      | Some t -> (
        match Unix.select [] [ fd ] [] t with
        | _, [ _ ], _ -> ()
        | _ -> raise Slow_client
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()));
      match Unix.write fd b ofs (len - ofs) with
      | n -> go (ofs + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ofs
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        (* Non-blocking fd with a full kernel buffer: without a
           timeout, wait for writability and retry. *)
        if timeout = None then ignore (readable fd tick);
        go ofs
    end
  in
  try go 0 with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()

let serve_connection_with ~handle fd ~max_batch ~max_frame ~write_timeout ~stop =
  (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
  let r = make_reader ~max_frame fd in
  let rec loop () =
    match read_frame_blocking r ~stop with
    | None -> false
    | Some first ->
      let batch = first :: drain_available r ~max:(max_batch - 1) [] in
      let responses, shutdown = handle batch in
      write_all ?timeout:write_timeout fd (String.concat "" (List.map (fun l -> l ^ "\n") responses));
      if shutdown then true else loop ()
  in
  try loop () with Slow_client -> false

let overloaded_line =
  Json.to_string ~indent:false (Wire.overloaded_response ~id:None) ^ "\n"

(* Shed one accepted-but-over-bound connection: a typed [overloaded]
   line (best effort, short timeout — the client may already be gone)
   and the close.  A refused connection still gets a parseable answer,
   never a silent RST. *)
let shed_connection fd =
  (try write_all ~timeout:0.05 fd overloaded_line with Slow_client -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve_socket_with ?(max_batch = 128) ?(max_frame = Wire.default_max_frame) ?write_timeout
    ?(stop = fun () -> false) ?(backlog = 16) ?max_pending ?(note_panic = fun () -> ())
    ~handle ~path () =
  let max_batch = max 1 max_batch in
  (match Sys.set_signal Sys.sigpipe Sys.Signal_ignore with
  | () -> ()
  | exception Invalid_argument _ -> ());
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let pending : Unix.file_descr Queue.t = Queue.create () in
  Fun.protect
    ~finally:(fun () ->
      Queue.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) pending;
      Queue.clear pending;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock (max 1 backlog);
      (try Unix.set_nonblock sock with Unix.Unix_error _ -> ());
      let accept_burst () =
        (* With an admission bound, drain every connection already in
           the kernel queue so the excess is shed with a typed answer
           NOW, instead of waiting its turn just to time out. *)
        match max_pending with
        | None -> ()
        | Some bound ->
          let budget = ref (bound + 8) in
          let continue = ref true in
          while !continue && !budget > 0 && readable sock 0.0 do
            (match Unix.accept sock with
            | client, _ ->
              decr budget;
              if Queue.length pending > bound then shed_connection client
              else Queue.add client pending
            | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
              ->
              continue := false)
          done;
          while Queue.length pending > bound + 1 do
            (* Newest beyond the bound are shed; the queue keeps FIFO
               fairness for the ones admitted. *)
            shed_connection (Queue.pop pending)
          done
      in
      let serve_one client =
        Fun.protect
          ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
          (fun () ->
            (* Crash-recovery wrapper: a handler panic closes this
               connection but the daemon keeps accepting. *)
            try serve_connection_with ~handle client ~max_batch ~max_frame ~write_timeout ~stop
            with
            | Slow_client -> false
            | Unix.Unix_error _ -> false
            | Stack_overflow | Failure _ | Invalid_argument _ | Not_found ->
              note_panic ();
              false)
      in
      let rec accept_loop () =
        if stop () then ()
        else begin
          accept_burst ();
          match Queue.take_opt pending with
          | Some client -> if serve_one client then () else accept_loop ()
          | None ->
            if not (readable sock tick) then accept_loop ()
            else (
              match Unix.accept sock with
              | client, _ -> if serve_one client then () else accept_loop ()
              | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                ->
                accept_loop ())
        end
      in
      accept_loop ())

let serve_socket ?max_batch ?(max_frame = Wire.default_max_frame) ?write_timeout ?stop ?backlog
    ?max_pending service ~path =
  let max_batch =
    match max_batch with
    | Some m -> max 1 m
    | None -> 2 * (Service.config service).Service.queue_bound
  in
  serve_socket_with ~max_batch ~max_frame ?write_timeout ?stop ?backlog ?max_pending
    ~note_panic:(fun () -> Service.note_panic service)
    ~handle:(fun frames -> handle_frames ~max_frame service frames)
    ~path ()
