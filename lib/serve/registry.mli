(** Device registry: the serving-side view of the fleet.

    Each registered device carries its model (coupling map +
    calibration), the characterized crosstalk snapshot the scheduler
    is allowed to use, and an {e epoch} — a digest of the canonical
    crosstalk serialization.  The epoch is part of every cache key, so
    bumping it (after [qcx_characterize] writes a new snapshot)
    invalidates all cached schedules for the device without touching
    the cache itself: stale entries simply stop being addressable and
    age out of the LRU.

    Snapshots load through {!Qcx_persist.Store.load_crosstalk_resilient}
    (newest path first, corrupt files quarantined), so a damaged file
    on disk degrades the registry entry to the previous snapshot — or
    to empty crosstalk — but never takes the server down. *)

type entry = {
  device : Qcx_device.Device.t;
  xtalk : Qcx_device.Crosstalk.t;  (** characterized data; possibly empty *)
  epoch : string;  (** hex digest of the canonical crosstalk serialization *)
  source : string option;  (** snapshot path served from; [None] = static/empty *)
  paths : string list;  (** refresh candidates, newest first *)
  quarantined : (string * string) list;  (** cumulative (path, reason) *)
  bumps : int;  (** number of refreshes that actually changed the epoch *)
  ring : (string * Qcx_device.Crosstalk.t) list;
      (** retired epochs, newest first, bounded — the rollback targets.
          Each retired snapshot keeps its exact in-memory [Crosstalk.t],
          so a rollback restores the epoch bit-identically. *)
  promoted_day : int option;
      (** logical day the current epoch was promoted (campaign clock);
          [None] until the calibrator first promotes *)
  last_warning : string option;
      (** latest refresh/calibration warning, surfaced by the [health]
          op; cleared by the next clean refresh or promotion *)
}

type t

val create : unit -> t

val ring_limit : int
(** Maximum retired epochs kept per device (the calibration directory
    GC follows the same bound). *)

val epoch_of_xtalk : Qcx_device.Crosstalk.t -> string

val add_static : t -> id:string -> device:Qcx_device.Device.t -> xtalk:Qcx_device.Crosstalk.t -> entry
(** Register with in-memory crosstalk data (tests, oracle mode, the
    CLI cache).  Re-registering an id replaces the entry. *)

val add_from_paths : t -> id:string -> device:Qcx_device.Device.t -> paths:string list -> entry
(** Register from disk snapshots, newest first.  Corrupt files are
    quarantined and recorded; when nothing loads the entry serves
    empty crosstalk (the scheduler then behaves like ParSched-aware
    compilation with no serialization pressure). *)

val set_xtalk : t -> id:string -> Qcx_device.Crosstalk.t -> (entry, string) result
(** Programmatic epoch bump: install new crosstalk data.  The epoch
    only changes (and [bumps] only increments) when the data actually
    differs. *)

val refresh : t -> id:string -> (entry * string option, string) result
(** Re-walk the entry's snapshot paths — the [bump] server op.  For
    static entries this is a no-op returning the current entry.  When
    every snapshot on disk is damaged the previous epoch and data are
    {e kept} (cached schedules stay addressable and valid) and the
    second component carries a warning; [Error _] is reserved for
    unknown ids. *)

val promote : ?day:int -> t -> id:string -> Qcx_device.Crosstalk.t -> (entry, string) result
(** Install a canary-approved epoch: the incumbent (epoch, data) is
    pushed onto the rollback ring (bounded, oldest dropped) and the
    new data becomes current.  Promoting data identical to the
    incumbent only updates [promoted_day] — the ring never holds a
    self-copy.  [day] stamps [promoted_day] for staleness reporting. *)

val rollback : ?day:int -> t -> id:string -> (entry, string) result
(** Restore the newest retired epoch from the ring (popping it).
    [Error _] when the ring is empty or the id is unknown.  The
    restored data is the exact [Crosstalk.t] that was retired, so the
    epoch digest matches bit-identically. *)

val restore : ?day:int -> t -> id:string -> ring:(string * Qcx_device.Crosstalk.t) list -> Qcx_device.Crosstalk.t -> (entry, string) result
(** Recovery path: install current data {e and} the rollback ring in
    one step (used when rebuilding the registry from a calibration
    directory after a restart).  Does not push onto the ring. *)

val find : t -> string -> entry option

val ids : t -> string list
(** Registration order. *)

val to_json : t -> Qcx_persist.Json.t
(** Registry stats: per device the epoch, source, bump count and
    quarantine tally. *)
