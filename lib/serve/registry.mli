(** Device registry: the serving-side view of the fleet.

    Each registered device carries its model (coupling map +
    calibration), the characterized crosstalk snapshot the scheduler
    is allowed to use, and an {e epoch} — a digest of the canonical
    crosstalk serialization.  The epoch is part of every cache key, so
    bumping it (after [qcx_characterize] writes a new snapshot)
    invalidates all cached schedules for the device without touching
    the cache itself: stale entries simply stop being addressable and
    age out of the LRU.

    Snapshots load through {!Qcx_persist.Store.load_crosstalk_resilient}
    (newest path first, corrupt files quarantined), so a damaged file
    on disk degrades the registry entry to the previous snapshot — or
    to empty crosstalk — but never takes the server down. *)

type entry = {
  device : Qcx_device.Device.t;
  xtalk : Qcx_device.Crosstalk.t;  (** characterized data; possibly empty *)
  epoch : string;  (** hex digest of the canonical crosstalk serialization *)
  source : string option;  (** snapshot path served from; [None] = static/empty *)
  paths : string list;  (** refresh candidates, newest first *)
  quarantined : (string * string) list;  (** cumulative (path, reason) *)
  bumps : int;  (** number of refreshes that actually changed the epoch *)
}

type t

val create : unit -> t

val epoch_of_xtalk : Qcx_device.Crosstalk.t -> string

val add_static : t -> id:string -> device:Qcx_device.Device.t -> xtalk:Qcx_device.Crosstalk.t -> entry
(** Register with in-memory crosstalk data (tests, oracle mode, the
    CLI cache).  Re-registering an id replaces the entry. *)

val add_from_paths : t -> id:string -> device:Qcx_device.Device.t -> paths:string list -> entry
(** Register from disk snapshots, newest first.  Corrupt files are
    quarantined and recorded; when nothing loads the entry serves
    empty crosstalk (the scheduler then behaves like ParSched-aware
    compilation with no serialization pressure). *)

val set_xtalk : t -> id:string -> Qcx_device.Crosstalk.t -> (entry, string) result
(** Programmatic epoch bump: install new crosstalk data.  The epoch
    only changes (and [bumps] only increments) when the data actually
    differs. *)

val refresh : t -> id:string -> (entry * string option, string) result
(** Re-walk the entry's snapshot paths — the [bump] server op.  For
    static entries this is a no-op returning the current entry.  When
    every snapshot on disk is damaged the previous epoch and data are
    {e kept} (cached schedules stay addressable and valid) and the
    second component carries a warning; [Error _] is reserved for
    unknown ids. *)

val find : t -> string -> entry option

val ids : t -> string list
(** Registration order. *)

val to_json : t -> Qcx_persist.Json.t
(** Registry stats: per device the epoch, source, bump count and
    quarantine tally. *)
