module Circuit = Qcx_circuit.Circuit
module Gate = Qcx_circuit.Gate
module Schedule = Qcx_circuit.Schedule
module Xtalk_sched = Qcx_scheduler.Xtalk_sched
module Dd = Qcx_mitigation.Dd
module Json = Qcx_persist.Json

let ( let* ) = Result.bind

(* ---- circuits ---- *)

let gate_to_json (g : Gate.t) =
  let params =
    match g.kind with
    | Gate.Rx t | Gate.Ry t | Gate.Rz t -> [ ("p", Json.Array [ Json.Number t ]) ]
    | Gate.U2 (p, l) -> [ ("p", Json.Array [ Json.Number p; Json.Number l ]) ]
    | _ -> []
  in
  Json.Object
    ([ ("g", Json.String (Gate.kind_name g.kind)) ]
    @ params
    @ [ ("q", Json.Array (List.map (fun q -> Json.Number (float_of_int q)) g.qubits)) ])

let kind_of_name name params =
  match (name, params) with
  | "h", [] -> Ok Gate.H
  | "x", [] -> Ok Gate.X
  | "y", [] -> Ok Gate.Y
  | "z", [] -> Ok Gate.Z
  | "s", [] -> Ok Gate.S
  | "sdg", [] -> Ok Gate.Sdg
  | "t", [] -> Ok Gate.T
  | "tdg", [] -> Ok Gate.Tdg
  | "rx", [ t ] -> Ok (Gate.Rx t)
  | "ry", [ t ] -> Ok (Gate.Ry t)
  | "rz", [ t ] -> Ok (Gate.Rz t)
  | "u2", [ p; l ] -> Ok (Gate.U2 (p, l))
  | ("cx" | "cnot"), [] -> Ok Gate.Cnot
  | "swap", [] -> Ok Gate.Swap
  | "barrier", [] -> Ok Gate.Barrier
  | "measure", [] -> Ok Gate.Measure
  | ("rx" | "ry" | "rz"), _ -> Error (name ^ " takes exactly one parameter")
  | "u2", _ -> Error "u2 takes exactly two parameters"
  | _, _ :: _ -> Error (name ^ " takes no parameters")
  | _ -> Error ("unknown gate " ^ name)

let gate_of_json doc =
  let* name = Json.find_str "g" doc in
  let* params =
    match Json.member "p" doc with
    | None -> Ok []
    | Some p ->
      let* items = Json.to_list p in
      List.fold_left
        (fun acc item ->
          let* tl = acc in
          let* x = Json.to_float item in
          if Float.is_finite x then Ok (x :: tl) else Error "non-finite gate parameter")
        (Ok []) items
      |> Result.map List.rev
  in
  let* kind = kind_of_name name params in
  let* qubits =
    let* items = Json.find_list "q" doc in
    List.fold_left
      (fun acc item ->
        let* tl = acc in
        let* q = Json.to_int item in
        Ok (q :: tl))
      (Ok []) items
    |> Result.map List.rev
  in
  Ok (kind, qubits)

let circuit_to_json circuit =
  Json.Object
    [
      ("nqubits", Json.Number (float_of_int (Circuit.nqubits circuit)));
      ("gates", Json.Array (List.map gate_to_json (Circuit.gates circuit)));
    ]

let circuit_of_json doc =
  let* nq =
    match Json.member "nqubits" doc with
    | Some v -> Json.to_int v
    | None -> Error "missing nqubits"
  in
  if nq <= 0 then Error "nqubits must be positive"
  else
    let* gate_docs = Json.find_list "gates" doc in
    List.fold_left
      (fun acc gdoc ->
        let* circuit = acc in
        let* kind, qubits = gate_of_json gdoc in
        try Ok (Circuit.add circuit kind qubits) with Invalid_argument m -> Error m)
      (Ok (Circuit.create nq))
      gate_docs

(* ---- schedules ---- *)

let schedule_to_json sched =
  let circuit = Schedule.circuit sched in
  let per f = Json.Array (List.map (fun (g : Gate.t) -> Json.Number (f g.id)) (Circuit.gates circuit)) in
  Json.Object
    [
      ("circuit", circuit_to_json circuit);
      ("starts", per (Schedule.start sched));
      ("durations", per (Schedule.duration sched));
    ]

let float_array_of_json what doc =
  let* items = Json.find_list what doc in
  let* values =
    List.fold_left
      (fun acc item ->
        let* tl = acc in
        let* x = Json.to_float item in
        if Float.is_finite x then Ok (x :: tl)
        else Error (what ^ " entries must be finite"))
      (Ok []) items
  in
  Ok (Array.of_list (List.rev values))

let schedule_of_json doc =
  let* circuit =
    match Json.member "circuit" doc with
    | Some c -> circuit_of_json c
    | None -> Error "missing circuit"
  in
  let* starts = float_array_of_json "starts" doc in
  let* durations = float_array_of_json "durations" doc in
  let n = Circuit.length circuit in
  if Array.length starts <> n || Array.length durations <> n then
    Error "starts/durations do not cover the circuit"
  else try Ok (Schedule.make circuit ~starts ~durations) with Invalid_argument m -> Error m

(* ---- scheduler stats ---- *)

let rung_of_name name =
  match
    List.find_opt (fun r -> Xtalk_sched.rung_name r = name) Xtalk_sched.all_rungs
  with
  | Some r -> Ok r
  | None -> Error ("unknown rung " ^ name)

let stats_to_json (s : Xtalk_sched.stats) =
  Json.Object
    [
      ("pairs", Json.Number (float_of_int s.pairs));
      ("clusters", Json.Number (float_of_int s.clusters));
      ("windows", Json.Number (float_of_int s.windows));
      ("nodes", Json.Number (float_of_int s.nodes));
      ("optimal", Json.Bool s.optimal);
      ("objective", Json.Number s.objective);
      ("solve_seconds", Json.Number s.solve_seconds);
      ("cpu_seconds", Json.Number s.cpu_seconds);
      ("idle_total", Json.Number s.idle_total);
      ("idle_max", Json.Number s.idle_max);
      ("rung", Json.String (Xtalk_sched.rung_name s.rung));
    ]

let stats_of_json doc =
  let* pairs = Json.find_float "pairs" doc in
  let* clusters = Json.find_float "clusters" doc in
  let* nodes = Json.find_float "nodes" doc in
  let* optimal =
    match Json.member "optimal" doc with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error "missing optimal"
  in
  let* objective = Json.find_float "objective" doc in
  let* solve_seconds = Json.find_float "solve_seconds" doc in
  (* cpu_seconds, windows and the idle fields are absent in cache
     entries persisted before the fields existed. *)
  let cpu_seconds =
    match Json.find_float "cpu_seconds" doc with Ok v -> v | Error _ -> 0.0
  in
  let windows =
    match Json.find_float "windows" doc with Ok v -> int_of_float v | Error _ -> 0
  in
  let idle_total =
    match Json.find_float "idle_total" doc with Ok v -> v | Error _ -> 0.0
  in
  let idle_max =
    match Json.find_float "idle_max" doc with Ok v -> v | Error _ -> 0.0
  in
  let* rung_name = Json.find_str "rung" doc in
  let* rung = rung_of_name rung_name in
  Ok
    {
      Xtalk_sched.pairs = int_of_float pairs;
      clusters = int_of_float clusters;
      windows;
      nodes = int_of_float nodes;
      optimal;
      objective;
      solve_seconds;
      cpu_seconds;
      idle_total;
      idle_max;
      rung;
    }

(* ---- requests ---- *)

type params = {
  omega : float;
  threshold : float;
  deadline : float option;
  ladder_start : Xtalk_sched.rung;
  window : int option;
  mitigation : Dd.sequence option;
}

let default_params =
  {
    omega = 0.5;
    threshold = 3.0;
    deadline = None;
    ladder_start = Xtalk_sched.Exact;
    window = None;
    mitigation = None;
  }

let mitigation_name = function
  | None -> "none"
  | Some seq -> "dd-" ^ Dd.sequence_name seq

let mitigation_of_name = function
  | "none" -> Ok None
  | "dd" -> Ok (Some Dd.XY4)
  | name -> (
    match String.length name > 3 && String.sub name 0 3 = "dd-" with
    | true -> (
      match Dd.sequence_of_name (String.sub name 3 (String.length name - 3)) with
      | Ok seq -> Ok (Some seq)
      | Error e -> Error e)
    | false ->
      Error ("unknown mitigation " ^ name ^ " (expected none | dd | dd-xy4 | dd-x2 | dd-cpmg)"))

type request =
  | Compile of { id : string; device : string; circuit : Circuit.t; params : params }
  | Stats of { id : string }
  | Devices of { id : string }
  | Bump of { id : string; device : string }
  | Calibrate of {
      id : string;
      device : string;
      day : int option;
      force : bool;
      full : bool;
      poison : bool;
    }
  | Epoch_status of { id : string; device : string option }
  | Rollback of { id : string; device : string }
  | Ping of { id : string }
  | Health of { id : string }
  | Shutdown of { id : string }

let request_id = function
  | Compile { id; _ } | Stats { id } | Devices { id } | Bump { id; _ }
  | Calibrate { id; _ } | Epoch_status { id; _ } | Rollback { id; _ } | Ping { id }
  | Health { id } | Shutdown { id } ->
    id

let find_float_opt key doc =
  match Json.member key doc with
  | None | Some Json.Null -> Ok None
  | Some v ->
    let* x = Json.to_float v in
    if Float.is_finite x then Ok (Some x) else Error (key ^ " must be finite")

let params_of_json doc =
  let* omega = find_float_opt "omega" doc in
  let omega = Option.value omega ~default:default_params.omega in
  if not (omega >= 0.0 && omega <= 1.0) then Error "omega must be in [0, 1]"
  else
    let* threshold = find_float_opt "threshold" doc in
    let threshold = Option.value threshold ~default:default_params.threshold in
    if not (threshold > 0.0) then Error "threshold must be positive"
    else
      let* deadline = find_float_opt "deadline" doc in
      let* () =
        match deadline with
        | Some d when d <= 0.0 -> Error "deadline must be positive"
        | _ -> Ok ()
      in
      let* ladder_start =
        match Json.member "ladder_start" doc with
        | None | Some Json.Null -> Ok default_params.ladder_start
        | Some v ->
          let* name = Json.to_str v in
          rung_of_name name
      in
      let* window =
        match Json.member "window" doc with
        | None | Some Json.Null -> Ok default_params.window
        | Some v ->
          let* w = Json.to_int v in
          if w >= 1 then Ok (Some w) else Error "window must be a positive gate count"
      in
      let* mitigation =
        (* Absent (every pre-knob client) means no mitigation. *)
        match Json.member "mitigation" doc with
        | None | Some Json.Null -> Ok default_params.mitigation
        | Some v ->
          let* name = Json.to_str v in
          mitigation_of_name name
      in
      Ok { omega; threshold; deadline; ladder_start; window; mitigation }

let request_of_json doc =
  let id = match Json.find_str "id" doc with Ok id -> id | Error _ -> "" in
  let* op = Json.find_str "op" doc in
  match op with
  | "compile" ->
    let* device = Json.find_str "device" doc in
    let* circuit =
      match Json.member "circuit" doc with
      | Some c -> circuit_of_json c
      | None -> Error "missing circuit"
    in
    let* params = params_of_json doc in
    Ok (Compile { id; device; circuit; params })
  | "stats" -> Ok (Stats { id })
  | "devices" -> Ok (Devices { id })
  | "bump" ->
    let* device = Json.find_str "device" doc in
    Ok (Bump { id; device })
  | "calibrate" ->
    let* device = Json.find_str "device" doc in
    let* day =
      match Json.member "day" doc with
      | None | Some Json.Null -> Ok None
      | Some v ->
        let* d = Json.to_int v in
        if d >= 0 then Ok (Some d) else Error "day must be non-negative"
    in
    let flag key =
      match Json.member key doc with
      | Some (Json.Bool b) -> Ok b
      | None | Some Json.Null -> Ok false
      | Some _ -> Error (key ^ " must be a boolean")
    in
    let* force = flag "force" in
    let* full = flag "full" in
    let* poison = flag "poison" in
    Ok (Calibrate { id; device; day; force; full; poison })
  | "epoch_status" ->
    let* device =
      match Json.member "device" doc with
      | None | Some Json.Null -> Ok None
      | Some v ->
        let* d = Json.to_str v in
        Ok (Some d)
    in
    Ok (Epoch_status { id; device })
  | "rollback" ->
    let* device = Json.find_str "device" doc in
    Ok (Rollback { id; device })
  | "ping" -> Ok (Ping { id })
  | "health" -> Ok (Health { id })
  | "shutdown" -> Ok (Shutdown { id })
  | other -> Error ("unknown op " ^ other)

let request_to_json req =
  let base op id = [ ("op", Json.String op); ("id", Json.String id) ] in
  match req with
  | Compile { id; device; circuit; params } ->
    Json.Object
      (base "compile" id
      @ [
          ("device", Json.String device);
          ("omega", Json.Number params.omega);
          ("threshold", Json.Number params.threshold);
          ( "deadline",
            match params.deadline with None -> Json.Null | Some d -> Json.Number d );
          ("ladder_start", Json.String (Xtalk_sched.rung_name params.ladder_start));
          ( "window",
            match params.window with
            | None -> Json.Null
            | Some w -> Json.Number (float_of_int w) );
          ("mitigation", Json.String (mitigation_name params.mitigation));
          ("circuit", circuit_to_json circuit);
        ])
  | Stats { id } -> Json.Object (base "stats" id)
  | Devices { id } -> Json.Object (base "devices" id)
  | Bump { id; device } -> Json.Object (base "bump" id @ [ ("device", Json.String device) ])
  | Calibrate { id; device; day; force; full; poison } ->
    Json.Object
      (base "calibrate" id
      @ [
          ("device", Json.String device);
          ("day", match day with None -> Json.Null | Some d -> Json.Number (float_of_int d));
          ("force", Json.Bool force);
          ("full", Json.Bool full);
          ("poison", Json.Bool poison);
        ])
  | Epoch_status { id; device } ->
    Json.Object
      (base "epoch_status" id
      @ [ ("device", match device with None -> Json.Null | Some d -> Json.String d) ])
  | Rollback { id; device } ->
    Json.Object (base "rollback" id @ [ ("device", Json.String device) ])
  | Ping { id } -> Json.Object (base "ping" id)
  | Health { id } -> Json.Object (base "health" id)
  | Shutdown { id } -> Json.Object (base "shutdown" id)

(* ---- response helpers ---- *)

let id_field = function None -> Json.Null | Some id -> Json.String id

let error_response ~id msg =
  Json.Object [ ("id", id_field id); ("status", Json.String "error"); ("error", Json.String msg) ]

let typed_error ?(extra = []) ~id ~status msg =
  Json.Object
    ([ ("id", id_field id); ("status", Json.String status); ("error", Json.String msg) ]
    @ extra)

let overloaded_response ~id =
  typed_error ~id ~status:"overloaded" "admission queue full; retry later"

let deadline_exceeded_response ~id ~deadline ~elapsed =
  typed_error ~id ~status:"deadline_exceeded"
    (Printf.sprintf "compile exceeded its %.3fs deadline (%.3fs elapsed)" deadline elapsed)
    ~extra:[ ("deadline", Json.Number deadline); ("elapsed", Json.Number elapsed) ]

let breaker_open_response ~id ~device ~retry_after =
  typed_error ~id ~status:"breaker_open"
    (Printf.sprintf "device %s circuit breaker is open; retry in %.1fs" device retry_after)
    ~extra:[ ("device", Json.String device); ("retry_after", Json.Number retry_after) ]

let frame_too_large_response ~id ~limit =
  typed_error ~id ~status:"frame_too_large"
    (Printf.sprintf "input frame exceeds the %d byte limit" limit)
    ~extra:[ ("limit", Json.Number (float_of_int limit)) ]

let internal_error_response ~id msg = typed_error ~id ~status:"internal_error" msg

let unavailable_response ~id ~attempts =
  typed_error ~id ~status:"unavailable"
    (Printf.sprintf "no live shard could serve the request (%d attempt%s)" attempts
       (if attempts = 1 then "" else "s"))
    ~extra:[ ("attempts", Json.Number (float_of_int attempts)) ]

(* ---- id-tag demultiplexing (router pipelining) ----

   The router keeps several batches in flight per shard connection and
   matches responses back to requests by id.  Client ids are not
   unique across connections, so each forwarded compile is retagged
   with a router-unique id on the way out and the response is retagged
   back on the way in.  [retag_line] re-renders through the compact
   printer, which is an identity on printer output — so a retag
   round-trip (out and back to the original id) is byte-exact. *)

let line_id line =
  match Json.of_string line with
  | Error _ -> None
  | Ok doc -> (
    match Json.member "id" doc with Some (Json.String id) -> Some id | _ -> None)

let with_id doc ~id =
  match doc with
  | Json.Object fields ->
    let replaced = ref false in
    let fields =
      List.map
        (fun (k, v) -> if k = "id" && not !replaced then (replaced := true; (k, Json.String id)) else (k, v))
        fields
    in
    Json.Object (if !replaced then fields else ("id", Json.String id) :: fields)
  | _ -> doc

let retag_line line ~id =
  match Json.of_string line with
  | Error _ -> line
  | Ok doc -> Json.to_string ~indent:false (with_id doc ~id)

let default_max_frame = 1 lsl 20
