(** Wire format of the compilation service (DESIGN.md §8).

    Newline-delimited JSON: one request object per line in, one
    response object per line out.  This module is the pure codec layer
    — circuits, schedules, scheduler stats, and the typed request
    grammar — shared by the socket server, the [--once] test mode, the
    load-generator bench, and the warm-start cache persistence.

    Gates are [{"g": "cx", "q": [0, 1]}] with an optional ["p"]
    parameter array for rotations; circuits are
    [{"nqubits": n, "gates": [...]}]; schedules add per-gate
    ["starts"] and ["durations"] arrays (nanoseconds, aligned with the
    gate list).  Floats are emitted losslessly, so a schedule
    round-trips bit-identically. *)

module Circuit = Qcx_circuit.Circuit
module Schedule = Qcx_circuit.Schedule
module Xtalk_sched = Qcx_scheduler.Xtalk_sched
module Dd = Qcx_mitigation.Dd
module Json = Qcx_persist.Json

val circuit_to_json : Circuit.t -> Json.t

val circuit_of_json : Json.t -> (Circuit.t, string) result
(** Validates arity, qubit ranges, and gate names — never raises. *)

val schedule_to_json : Schedule.t -> Json.t

val schedule_of_json : Json.t -> (Schedule.t, string) result

val rung_of_name : string -> (Xtalk_sched.rung, string) result
(** Inverse of {!Xtalk_sched.rung_name}. *)

val stats_to_json : Xtalk_sched.stats -> Json.t

val stats_of_json : Json.t -> (Xtalk_sched.stats, string) result

(** Scheduler knobs carried by a compile request.  All of them are
    part of the cache key — two requests with different knobs never
    share an entry. *)
type params = {
  omega : float;  (** crosstalk weight factor (eq. 17) *)
  threshold : float;  (** conditional/independent ratio cutoff *)
  deadline : float option;  (** per-request wall-clock compile budget *)
  ladder_start : Xtalk_sched.rung;  (** degradation-ladder entry rung *)
  window : int option;
      (** Windowed-rung window size in gates; [None] uses the
          scheduler default (and reads "auto" in the cache key) *)
  mitigation : Dd.sequence option;
      (** post-scheduling dynamical-decoupling padding; [None] (the
          wire name "none", and the value every pre-knob client gets)
          leaves the schedule untouched and keeps the cache key
          byte-identical to the pre-knob format *)
}

val default_params : params
(** omega 0.5, threshold 3.0, no deadline, ladder from [Exact],
    default windowing, no mitigation. *)

val mitigation_name : Dd.sequence option -> string
(** "none" | "dd-xy4" | "dd-x2" | "dd-cpmg". *)

val mitigation_of_name : string -> (Dd.sequence option, string) result
(** Inverse of {!mitigation_name}; also accepts "dd" for "dd-xy4". *)

type request =
  | Compile of { id : string; device : string; circuit : Circuit.t; params : params }
  | Stats of { id : string }  (** cache / registry / service counters *)
  | Devices of { id : string }  (** registry listing with epochs *)
  | Bump of { id : string; device : string }
      (** re-load the device's crosstalk snapshots and bump its epoch *)
  | Calibrate of {
      id : string;
      device : string;
      day : int option;  (** logical campaign day; [None] = service clock *)
      force : bool;  (** run the cycle even when no drift is detected *)
      full : bool;  (** full re-characterization instead of Opt-3 incremental *)
      poison : bool;
          (** chaos tooling: inject a deterministic truncated merge so
              the canary gate must reject the candidate (the ci.sh
              poisoned-epoch drill) *)
    }  (** run one calibration cycle through {!Calibrator.calibrate} *)
  | Epoch_status of { id : string; device : string option }
      (** per-device epoch, rollback ring, staleness and warnings
          ([device = None] reports the whole fleet) *)
  | Rollback of { id : string; device : string }
      (** restore the newest retired epoch from the rollback ring *)
  | Ping of { id : string }
  | Health of { id : string }
      (** readiness, breaker and journal state (DESIGN.md §9) *)
  | Shutdown of { id : string }

val request_id : request -> string

val request_of_json : Json.t -> (request, string) result

val request_to_json : request -> Json.t
(** For clients (the bench and the CLI round-trip example). *)

val error_response : id:string option -> string -> Json.t
(** [{"id": ..., "status": "error", "error": msg}]. *)

val overloaded_response : id:string option -> Json.t
(** The typed admission-control rejection:
    [{"id": ..., "status": "overloaded", "error": ...}]. *)

val typed_error :
  ?extra:(string * Json.t) list -> id:string option -> status:string -> string -> Json.t
(** Generic typed failure:
    [{"id": ..., "status": status, "error": msg, ...extra}].  Every
    fault class the service can hit maps onto one of these statuses so
    clients always get a parseable answer, never a dropped connection. *)

val deadline_exceeded_response : id:string option -> deadline:float -> elapsed:float -> Json.t
(** A compile blew far past its per-request deadline (status
    ["deadline_exceeded"], carries both the budget and the measured
    elapsed seconds). *)

val breaker_open_response : id:string option -> device:string -> retry_after:float -> Json.t
(** The device's circuit breaker is open (status ["breaker_open"],
    carries the cooloff remaining in [retry_after]). *)

val frame_too_large_response : id:string option -> limit:int -> Json.t
(** The input line exceeded the frame bound (status
    ["frame_too_large"]).  [id] is [None]: an oversized frame is
    discarded before it can be parsed. *)

val internal_error_response : id:string option -> string -> Json.t
(** Last-resort typed wrapper for handler panics (status
    ["internal_error"]). *)

val unavailable_response : id:string option -> attempts:int -> Json.t
(** The fleet router exhausted its failover attempts — no live shard
    could serve the request (status ["unavailable"], carries how many
    shards were tried). *)

val line_id : string -> string option
(** The [id] field of a wire line, when it parses to an object with a
    string id — the router's demux key for pipelined forwarding. *)

val with_id : Json.t -> id:string -> Json.t
(** Replace the document's [id] field in place (field order is
    preserved; an absent id is prepended). *)

val retag_line : string -> id:string -> string
(** Re-render [line] with its [id] replaced — total: a line that does
    not parse is returned unchanged.  Retagging out to a fresh id and
    back to the original is byte-exact, because the compact printer is
    an identity on its own output. *)

val default_max_frame : int
(** Default input frame bound, 1 MiB. *)
