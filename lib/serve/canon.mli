(** Canonical circuit form for content-addressed compile caching.

    Two requests must hit the same cache entry whenever a cold compile
    of both would produce the same schedule, so the cache key is a
    digest of a {e canonical} serialization rather than of whatever
    shape the client happened to build:

    - gate ids are ignored (program order is what matters);
    - operand order is normalized where the gate is symmetric
      (barriers, logical SWAPs — a SWAP's decomposition direction is
      pinned by sorting its operands {e before} decomposition);
    - runs of consecutive measurements are sorted by qubit (valid
      schedules start all measurements simultaneously, so their
      textual order is meaningless);
    - logical SWAPs are decomposed, so a client sending [swap p q] and
      one sending the explicit three-CNOT expansion share an entry;
    - the declared register width is widened to the device width, so
      [nqubits] padding differences do not split keys.

    The service compiles the canonical circuit itself — never the
    client's original — which makes "cache hit is bit-identical to a
    cold compile" true by construction. *)

val normalize : ?nqubits:int -> Qcx_circuit.Circuit.t -> Qcx_circuit.Circuit.t
(** Canonical form as described above.  [nqubits] (default: the
    circuit's own width) widens the register; raises
    [Invalid_argument] if a gate operand does not fit in it. *)

val serialize : Qcx_circuit.Circuit.t -> string
(** Deterministic text form of a circuit as-is (one gate per line,
    floats in lossless [%h] form).  Apply {!normalize} first when the
    string feeds a cache key. *)

val key_serialize : ?nqubits:int -> Qcx_circuit.Circuit.t -> string
(** Byte-identical to [serialize (normalize ?nqubits circuit)], fused
    into one pass with no intermediate circuits — the cache-key hot
    path (a cache hit's cost is dominated by key derivation).  Raises
    the same [Invalid_argument]s as {!normalize}. *)

val digest : ?nqubits:int -> Qcx_circuit.Circuit.t -> string
(** Hex MD5 of [serialize (normalize ?nqubits circuit)]. *)
