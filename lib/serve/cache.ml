module Json = Qcx_persist.Json
module Store = Qcx_persist.Store

let ( let* ) = Result.bind

type entry = {
  schedule : Qcx_circuit.Schedule.t;
  stats : Qcx_scheduler.Xtalk_sched.stats;
  epoch : string;
}

(* Intrusive doubly-linked recency list: head = most recent. *)
type node = {
  key : string;
  mutable entry : entry;
  mutable prev : node option;  (* toward head *)
  mutable next : node option;  (* toward tail *)
}

type t = {
  capacity : int;
  table : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable insertions : int;
  mutable purged : int;
}

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  insertions : int;
  purged : int;
  size : int;
  capacity : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create 64;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    insertions = 0;
    purged = 0;
  }

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let mem t key = Hashtbl.mem t.table key

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    t.hits <- t.hits + 1;
    unlink t node;
    push_front t node;
    Some node.entry
  | None ->
    t.misses <- t.misses + 1;
    None

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key;
    t.evictions <- t.evictions + 1

let add t key entry =
  (match Hashtbl.find_opt t.table key with
  | Some node ->
    node.entry <- entry;
    unlink t node;
    push_front t node
  | None ->
    let node = { key; entry; prev = None; next = None } in
    Hashtbl.replace t.table key node;
    push_front t node;
    t.insertions <- t.insertions + 1);
  while Hashtbl.length t.table > t.capacity do
    evict_lru t
  done

let purge t ~drop =
  let victims =
    Hashtbl.fold (fun _ node acc -> if drop node.key node.entry then node :: acc else acc) t.table []
  in
  List.iter
    (fun node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      t.purged <- t.purged + 1)
    victims;
  List.length victims

let counters (t : t) : counters =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    insertions = t.insertions;
    purged = t.purged;
    size = Hashtbl.length t.table;
    capacity = t.capacity;
  }

let keys_newest_first t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some node -> walk (node.key :: acc) node.next
  in
  walk [] t.head

(* ---- persistence ---- *)

let format_tag = "qcx-schedule-cache-v1"

let entry_to_json entry =
  Json.Object
    [
      ("epoch", Json.String entry.epoch);
      ("stats", Wire.stats_to_json entry.stats);
      ("schedule", Wire.schedule_to_json entry.schedule);
    ]

let entry_of_json doc =
  let* stats =
    match Json.member "stats" doc with
    | Some s -> Wire.stats_of_json s
    | None -> Error "missing stats"
  in
  let* schedule =
    match Json.member "schedule" doc with
    | Some s -> Wire.schedule_of_json s
    | None -> Error "missing schedule"
  in
  (* Entries written before epochs were recorded carry no epoch; ""
     marks them unknown (never purged as stale, evicted by LRU only). *)
  let epoch =
    match Json.member "epoch" doc with Some (Json.String e) -> e | _ -> ""
  in
  Ok { schedule; stats; epoch }

let to_json t =
  (* Oldest first, so replaying [add] on load reproduces recency. *)
  let rec oldest acc = function
    | None -> acc
    | Some node -> oldest (node :: acc) node.next
  in
  let entries =
    List.map
      (fun node ->
        match entry_to_json node.entry with
        | Json.Object fields -> Json.Object (("key", Json.String node.key) :: fields)
        | other -> other)
      (oldest [] t.head)
  in
  Json.Object [ ("format", Json.String format_tag); ("entries", Json.Array entries) ]

let of_json ~capacity doc =
  let* fmt = Json.find_str "format" doc in
  if fmt <> format_tag then Error ("unknown format " ^ fmt)
  else
    let* entry_docs = Json.find_list "entries" doc in
    let t = create ~capacity in
    let* () =
      List.fold_left
        (fun acc edoc ->
          let* () = acc in
          let* key = Json.find_str "key" edoc in
          let* entry = entry_of_json edoc in
          add t key entry;
          Ok ())
        (Ok ()) entry_docs
    in
    (* Loading is not serving: forget the replay's counter noise. *)
    t.hits <- 0;
    t.misses <- 0;
    t.evictions <- 0;
    t.insertions <- 0;
    t.purged <- 0;
    Ok t

let save ~path t = Store.save ~path (to_json t)

let load ~capacity ~path =
  let* doc = Store.load ~path in
  of_json ~capacity doc
