module Json = Qcx_persist.Json

(* One member of the replicated fleet (DESIGN.md §14): a Service with
   its own snapshot + write-ahead journal under [root/shard-<k>/],
   plus a replication sender streaming every cache insertion into the
   ring peer's directory — [root/shard-<peer>/replica-of-<k>.ndjson]
   lives in the PEER's crash domain, which is the whole point: losing
   shard k's disk loses its journal but not its history.

   Boot order matters:
     1. recover from the shard's own snapshot + journal (the normal
        restart path — cheapest and always preferred);
     2. only if that yields nothing AND a replica of this shard
        exists, rebuild from the peer's replica log (full append
        history, replayed in order, then checkpointed);
     3. open the replica sender (continuing its sequence numbers) and
        install the insertion tee — AFTER recovery, so recovered
        entries are not re-replicated. *)

type boot = {
  snapshot_entries : int;
  journal_entries : int;
  journal_dropped : int;
  torn_journal : bool;
  rebuilt_from_replica : int;
  torn_replica : bool;
}

type t = {
  index : int;
  nshards : int;
  root : string;
  service : Service.t;
  replica : Replica.sender;
  boot : boot;
}

let shard_dir ~root k = Filename.concat root (Printf.sprintf "shard-%d" k)
let cache_file ~root k = Filename.concat (shard_dir ~root k) "cache.json"
let peer ~nshards k = (k + 1) mod nshards

let replica_path ~root ~nshards k =
  Filename.concat (shard_dir ~root (peer ~nshards k)) (Printf.sprintf "replica-of-%d.ndjson" k)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let health_fields t () =
  [
    ( "shard",
      Json.Object
        [
          ("index", Json.Number (float_of_int t.index));
          ("nshards", Json.Number (float_of_int t.nshards));
          ("peer", Json.Number (float_of_int (peer ~nshards:t.nshards t.index)));
          ("rebuilt_from_replica", Json.Number (float_of_int t.boot.rebuilt_from_replica));
          ("replica", Replica.to_json t.replica);
        ] );
  ]

let create ?(config = Service.default_config) ?clock ?(fsync = true) ?(replica_batch = 1)
    ~root ~index ~nshards ~make_registry () =
  if nshards <= 0 then invalid_arg "Shard.create: nshards must be positive";
  if index < 0 || index >= nshards then invalid_arg "Shard.create: index out of range";
  mkdir_p (shard_dir ~root index);
  mkdir_p (shard_dir ~root (peer ~nshards index));
  let service = Service.create ~config ?clock (make_registry ()) in
  let cfile = cache_file ~root index in
  match Service.recover service ~cache_file:cfile ~fsync () with
  | Error e -> Error (Printf.sprintf "shard %d: recovery failed: %s" index e)
  | Ok r -> (
    let rpath = replica_path ~root ~nshards index in
    let rebuilt_from_replica, torn_replica =
      if r.Service.snapshot_entries = 0 && r.Service.journal_entries = 0 then begin
        (* Own state is gone (fresh shard, or its disk was lost): the
           peer's replica holds this shard's full append history.
           Replaying it through the same LRU reproduces the state a
           journal replay would have — then an immediate checkpoint
           makes the rebuild locally durable before rejoining. *)
        let rep = Replica.replay ~path:rpath ~shard:index in
        List.iter
          (fun (_seq, { Journal.key; entry }) -> Cache.add (Service.cache service) key entry)
          rep.Replica.records;
        if rep.Replica.records <> [] then ignore (Service.checkpoint service);
        (rep.Replica.read, rep.Replica.torn)
      end
      else (0, false)
    in
    match Replica.open_sender ~path:rpath ~shard:index ~fsync ~batch:replica_batch () with
    | Error e -> Error (Printf.sprintf "shard %d: %s" index e)
    | Ok sender ->
      let boot =
        {
          snapshot_entries = r.Service.snapshot_entries;
          journal_entries = r.Service.journal_entries;
          journal_dropped = r.Service.journal_dropped;
          torn_journal = r.Service.torn;
          rebuilt_from_replica;
          torn_replica;
        }
      in
      let t = { index; nshards; root; service; replica = sender; boot } in
      Service.set_on_insert service
        (Some (fun key entry -> Replica.append sender { Journal.key; entry }));
      Service.set_extra_health service (Some (health_fields t));
      Ok t)

let index t = t.index
let nshards t = t.nshards
let service t = t.service
let replica t = t.replica
let boot t = t.boot
let dir t = shard_dir ~root:t.root t.index
let own_cache_file t = cache_file ~root:t.root t.index
let own_replica_path t = replica_path ~root:t.root ~nshards:t.nshards t.index

let close t =
  ignore (Replica.flush t.replica);
  Replica.close t.replica;
  ignore (Service.checkpoint t.service);
  match Service.persistence_journal t.service with
  | Some j -> Journal.close j
  | None -> ()

let abandon t =
  (* kill -9 semantics: no flush, no checkpoint, no goodbye — pending
     replica entries and un-checkpointed journal tail are simply gone,
     exactly like the process dying. *)
  Replica.close t.replica;
  match Service.persistence_journal t.service with
  | Some j -> Journal.close j
  | None -> ()
