module Json = Qcx_persist.Json
module Device = Qcx_device.Device

(* In-process fleet: N shards + a router over a direct (function call)
   transport.  This is the harness the fleet bench and tests drive —
   the same Shard/Router/Replica machinery as the multi-process
   deployment, minus the sockets, so kill/rebuild semantics can be
   exercised deterministically and fast.  [kill] really does lose the
   shard's un-checkpointed state (files deleted, fds closed without
   flushing) and [restart] really does rebuild from the peer replica. *)

type t = {
  root : string;
  nshards : int;
  service_config : Service.config;
  fsync : bool;
  replica_batch : int;
  make_registry : unit -> Registry.t;
  clock : (unit -> float) option;
  shards : Shard.t option array;
  router : Router.t;
}

let create ?(service_config = Service.default_config) ?(router_config = Router.default_config)
    ?clock ?(fsync = true) ?(replica_batch = 1) ~root ~nshards ~make_registry () =
  if nshards <= 0 then invalid_arg "Fleet.create: nshards must be positive";
  let shards = Array.make nshards None in
  let rec boot k =
    if k >= nshards then Ok ()
    else
      match
        Shard.create ~config:service_config ?clock ~fsync ~replica_batch ~root ~index:k
          ~nshards ~make_registry ()
      with
      | Error e -> Error e
      | Ok sh ->
        shards.(k) <- Some sh;
        boot (k + 1)
  in
  match boot 0 with
  | Error e -> Error e
  | Ok () ->
    let probe = make_registry () in
    let width device =
      Option.map (fun e -> Device.nqubits e.Registry.device) (Registry.find probe device)
    in
    let transport =
      Router.transport_of_send (fun ~shard lines ->
          match shards.(shard) with
          | None -> Error "shard is down"
          | Some sh ->
            let resp, _stop = Server.handle_lines (Shard.service sh) lines in
            Ok resp)
    in
    let router = Router.create ~config:router_config ?clock ~width ~nshards ~transport () in
    Ok
      {
        root;
        nshards;
        service_config;
        fsync;
        replica_batch;
        make_registry;
        clock;
        shards;
        router;
      }

let nshards t = t.nshards
let router t = t.router
let shard t k = t.shards.(k)
let alive t = Array.fold_left (fun n s -> if s = None then n else n + 1) 0 t.shards

let handle_lines t lines = Router.handle_lines t.router lines

(* Canonical cache state for bit-identity comparison: the snapshot
   entries sorted by cache key.  Sorting removes the one degree of
   freedom that is NOT replicated — LRU recency reordering on hits —
   so two caches holding the same entries compare equal regardless of
   their hit histories.  (Content-set equality holds as long as the
   cache never evicted; the fleet bench sizes capacity above its
   unique-key count.) *)
let canonical_of_cache cache =
  match Cache.to_json cache with
  | Json.Object fields as whole -> (
    match List.assoc_opt "entries" fields with
    | Some (Json.Array entries) ->
      let key_of = function
        | Json.Object fs -> (
          match List.assoc_opt "key" fs with Some (Json.String k) -> k | _ -> "")
        | _ -> ""
      in
      let sorted =
        List.sort (fun a b -> compare (key_of a) (key_of b)) entries
      in
      Json.to_string ~indent:false (Json.Array sorted)
    | _ -> Json.to_string ~indent:false whole)
  | other -> Json.to_string ~indent:false other

let canonical_state t ~shard =
  match t.shards.(shard) with
  | None -> Error "shard is down"
  | Some sh -> Ok (canonical_of_cache (Service.cache (Shard.service sh)))

(* What a crash-recovery of the shard's own files would produce:
   snapshot + journal valid-prefix replay.  Computed from disk, so it
   is the ground truth a peer rebuild must reproduce. *)
let replayed_state t ~shard =
  let capacity = t.service_config.Service.cache_capacity in
  let cfile = Shard.cache_file ~root:t.root shard in
  let cache =
    match Cache.load ~capacity ~path:cfile with
    | Ok c -> c
    | Error _ -> Cache.create ~capacity
  in
  let rep = Journal.replay ~path:(cfile ^ ".journal") in
  List.iter (fun { Journal.key; entry } -> Cache.add cache key entry) rep.Journal.records;
  canonical_of_cache cache

let kill t ~shard =
  match t.shards.(shard) with
  | None -> Error "shard already down"
  | Some sh ->
    Shard.abandon sh;
    t.shards.(shard) <- None;
    (* The reference is captured from the dying shard's own disk state
       BEFORE it is destroyed — the rebuild gate compares the peer
       replica's replay against this. *)
    let reference = replayed_state t ~shard in
    let cfile = Shard.cache_file ~root:t.root shard in
    (try Sys.remove cfile with Sys_error _ -> ());
    (try Sys.remove (cfile ^ ".journal") with Sys_error _ -> ());
    Ok reference

let restart t ~shard =
  if t.shards.(shard) <> None then Error "shard is still running"
  else begin
    Router.set_rebuilding t.router shard true;
    match
      Shard.create ~config:t.service_config ?clock:t.clock ~fsync:t.fsync
        ~replica_batch:t.replica_batch ~root:t.root ~index:shard ~nshards:t.nshards
        ~make_registry:t.make_registry ()
    with
    | Error e ->
      Router.set_rebuilding t.router shard false;
      Error e
    | Ok sh ->
      t.shards.(shard) <- Some sh;
      Router.set_rebuilding t.router shard false;
      Router.reset_breaker t.router shard;
      Ok (Shard.boot sh)
  end

let close t =
  Array.iteri
    (fun k -> function
      | None -> ()
      | Some sh ->
        Shard.close sh;
        t.shards.(k) <- None)
    t.shards
