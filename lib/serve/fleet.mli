(** In-process fleet harness (DESIGN.md §14): N {!Shard}s behind a
    {!Router} over a direct function-call transport — the same
    replication, failover, and rebuild machinery as the multi-process
    deployment, minus the sockets, so the fleet bench and tests can
    exercise kill/rebuild semantics deterministically.

    {!kill} is a real crash: the shard's descriptors are closed
    without flushing, its snapshot and journal are deleted, and only
    the peer's replica of its append stream survives.  {!restart}
    marks the shard rebuilding on the router (off the ring), rebuilds
    its cache from the peer replica, then rejoins it with a fresh
    breaker. *)

type t

val create :
  ?service_config:Service.config ->
  ?router_config:Router.config ->
  ?clock:(unit -> float) ->
  ?fsync:bool ->
  ?replica_batch:int ->
  root:string ->
  nshards:int ->
  make_registry:(unit -> Registry.t) ->
  unit ->
  (t, string) result
(** Boot all [nshards] under [root].  Every shard gets its own
    registry from [make_registry] — identical epochs, so cache keys
    agree fleet-wide. *)

val nshards : t -> int
val router : t -> Router.t
val shard : t -> int -> Shard.t option
val alive : t -> int

val handle_lines : t -> string list -> string list * bool
(** Serve a batch through the router (the in-process equivalent of a
    client talking to the router socket). *)

val canonical_state : t -> shard:int -> (string, string) result
(** The shard's cache as a canonical string: snapshot entries sorted
    by cache key, so LRU recency (which is deliberately not
    replicated) cannot make equal contents compare unequal. *)

val canonical_of_cache : Cache.t -> string

val kill : t -> shard:int -> (string, string) result
(** Crash the shard (no flush, no checkpoint), delete its snapshot and
    journal, and return the canonical state its own files would have
    recovered to — the reference the peer rebuild must match. *)

val restart : t -> shard:int -> (Shard.boot, string) result
(** Rebuild the killed shard from its peer replica and rejoin it (off
    the ring while rebuilding, fresh router breaker after). *)

val close : t -> unit
