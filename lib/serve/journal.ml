module Json = Qcx_persist.Json

let ( let* ) = Result.bind

type record = { key : string; entry : Cache.entry }

(* One NDJSON line per record, self-checksummed: the crc field is the
   md5 of the line's own serialization *without* the crc.  Emission
   order is deterministic (Json preserves insertion order), so the
   reader can recompute the digest from the parsed fields. *)

let payload_json { key; entry } =
  match Cache.entry_to_json entry with
  | Json.Object fields ->
    Json.Object (("op", Json.String "add") :: ("key", Json.String key) :: fields)
  | other -> other

let payload_digest payload = Digest.to_hex (Digest.string (Json.to_string ~indent:false payload))

let line_of_record record =
  let payload = payload_json record in
  let crc = payload_digest payload in
  let doc =
    match payload with
    | Json.Object fields -> Json.Object (fields @ [ ("crc", Json.String crc) ])
    | other -> other
  in
  Json.to_string ~indent:false doc

let record_of_line line =
  let* doc = Json.of_string line in
  let* op = Json.find_str "op" doc in
  if op <> "add" then Error ("unknown journal op " ^ op)
  else
    let* crc = Json.find_str "crc" doc in
    let* key = Json.find_str "key" doc in
    let* entry = Cache.entry_of_json doc in
    let record = { key; entry } in
    (* The digest must cover the bytes as written, not a parse/re-emit
       round trip: two spellings of the same float parse to one double,
       so re-emission canonicalizes damage instead of flagging it.  The
       writer appends crc as the last field, so the payload text is the
       line with that suffix cut off and the closing brace restored. *)
    let suffix = ",\"crc\": \"" ^ crc ^ "\"}" in
    let n = String.length line and k = String.length suffix in
    if n < k || String.sub line (n - k) k <> suffix then
      Error "journal crc field malformed"
    else
      let payload_text = String.sub line 0 (n - k) ^ "}" in
      if String.lowercase_ascii crc = Digest.to_hex (Digest.string payload_text) then
        Ok record
      else Error "journal crc mismatch"

(* ---- writer ---- *)

type t = {
  path : string;
  fsync : bool;
  mutable fd : Unix.file_descr option;
  mutable appends : int;
  mutable failed_appends : int;
  mutable fault : (nth:int -> bool) option;
}

let open_append ~path ?(fsync = true) () =
  try
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
    Ok { path; fsync; fd = Some fd; appends = 0; failed_appends = 0; fault = None }
  with Unix.Unix_error (err, _, _) ->
    Error (Printf.sprintf "cannot open journal %s: %s" path (Unix.error_message err))

let path t = t.path
let appends t = t.appends
let failed_appends t = t.failed_appends
let set_fault t fault = t.fault <- fault

let write_all fd bytes =
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

let append t record =
  match t.fd with
  | None -> Error "journal is closed"
  | Some fd ->
    let nth = t.appends + t.failed_appends in
    let faulted = match t.fault with Some f -> f ~nth | None -> false in
    if faulted then begin
      t.failed_appends <- t.failed_appends + 1;
      Error "journal append failed: no space left on device (injected)"
    end
    else begin
      try
        write_all fd (Bytes.of_string (line_of_record record ^ "\n"));
        if t.fsync then Unix.fsync fd;
        t.appends <- t.appends + 1;
        Ok ()
      with Unix.Unix_error (err, _, _) ->
        t.failed_appends <- t.failed_appends + 1;
        Error (Printf.sprintf "journal append failed: %s" (Unix.error_message err))
    end

let reset t =
  match t.fd with
  | None -> Error "journal is closed"
  | Some fd -> (
    try
      Unix.ftruncate fd 0;
      if t.fsync then Unix.fsync fd;
      Ok ()
    with Unix.Unix_error (err, _, _) ->
      Error (Printf.sprintf "journal reset failed: %s" (Unix.error_message err)))

let close t =
  match t.fd with
  | None -> ()
  | Some fd ->
    t.fd <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())

(* ---- replay ---- *)

type replay = {
  records : record list;
  read : int;
  dropped : int;
  torn : bool;
}

let replay ~path =
  if not (Sys.file_exists path) then { records = []; read = 0; dropped = 0; torn = false }
  else begin
    let text =
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with _ -> ""
    in
    let lines = String.split_on_char '\n' text in
    (* A torn tail (kill -9 mid-write) shows up as a final chunk with
       no newline or with a bad crc.  Only a valid prefix is replayed:
       once one line fails, everything after it is untrusted. *)
    let rec walk acc read = function
      | [] -> { records = List.rev acc; read; dropped = 0; torn = false }
      | [ "" ] -> { records = List.rev acc; read; dropped = 0; torn = false }
      | line :: rest -> (
        match record_of_line line with
        | Ok r -> walk (r :: acc) (read + 1) rest
        | Error _ ->
          let remaining = List.length (List.filter (fun l -> l <> "") (line :: rest)) in
          { records = List.rev acc; read; dropped = remaining; torn = true })
    in
    walk [] 0 lines
  end
