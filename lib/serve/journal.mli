(** Write-ahead journal for cache mutations (DESIGN.md §9).

    The cache snapshot ({!Cache.save}) is atomic but periodic; every
    insertion between checkpoints is first appended here — one
    self-checksummed NDJSON line, fsync'd — so a [kill -9] at any byte
    offset loses at most the record being written, never the cache.
    Recovery is [snapshot load] + {!replay}: the replay reads the
    longest valid prefix and stops at the first damaged line (a torn
    tail or any bit flip fails that line's crc).

    Line format:
    [{"op": "add", "key": ..., "stats": ..., "schedule": ..., "crc": md5}]
    where [crc] is the hex md5 of the line's own compact serialization
    without the crc field — recomputable because emission order is
    deterministic.

    The writer deliberately never raises: a full disk (or the injected
    chaos equivalent) degrades the journal to an [Error] the service
    records and keeps serving through — durability narrows to the
    periodic checkpoint, availability is untouched. *)

type record = { key : string; entry : Cache.entry }

val line_of_record : record -> string
(** One NDJSON line, no trailing newline. *)

val record_of_line : string -> (record, string) result
(** Parse + crc verification; any damage is an [Error]. *)

(* ---- writer ---- *)

type t

val open_append : path:string -> ?fsync:bool -> unit -> (t, string) result
(** Opens (creating if needed) for append.  [fsync] (default true)
    syncs after every record; tests switch it off for speed. *)

val append : t -> record -> (unit, string) result
(** Write one record durably.  Total: I/O failure (or an injected
    fault) is an [Error] and counts in {!failed_appends}. *)

val reset : t -> (unit, string) result
(** Truncate to zero length — called right after a checkpoint makes
    the journaled records redundant, and after a recovery replay so a
    torn tail can never be appended onto. *)

val close : t -> unit

val path : t -> string
val appends : t -> int
val failed_appends : t -> int

val set_fault : t -> (nth:int -> bool) option -> unit
(** Chaos hook: when the callback returns true for the [nth] append
    (counting every attempt since open), that append fails like a full
    disk instead of writing. *)

(* ---- replay ---- *)

type replay = {
  records : record list;  (** the valid prefix, in append order *)
  read : int;  (** lines successfully replayed *)
  dropped : int;  (** non-empty lines abandoned after the first bad one *)
  torn : bool;  (** replay stopped early at a damaged line *)
}

val replay : path:string -> replay
(** Never raises; a missing file is an empty replay.  After a torn
    replay the caller must checkpoint (snapshot + {!reset}) before
    appending again, or new records would be glued onto the damaged
    tail and lost to the next replay. *)
