module Device = Qcx_device.Device
module Drift = Qcx_device.Drift
module Crosstalk = Qcx_device.Crosstalk
module Topology = Qcx_device.Topology
module Calibration = Qcx_device.Calibration
module Rb = Qcx_characterization.Rb
module Policy = Qcx_characterization.Policy
module Xtalk_sched = Qcx_scheduler.Xtalk_sched
module Evaluate = Qcx_scheduler.Evaluate
module Swap_circuits = Qcx_benchmarks.Swap_circuits
module Circuit = Qcx_circuit.Circuit
module Json = Qcx_persist.Json
module Store = Qcx_persist.Store
module Rng = Qcx_util.Rng

type fault =
  | Drift_spike of float
  | Truncate_merge of float
  | Canary_flake
  | Crash_before_commit
  | Crash_after_commit

let fault_name = function
  | Drift_spike f -> Printf.sprintf "drift-spike(%g)" f
  | Truncate_merge f -> Printf.sprintf "truncate-merge(%g)" f
  | Canary_flake -> "canary-flake"
  | Crash_before_commit -> "crash-before-commit"
  | Crash_after_commit -> "crash-after-commit"

type config = {
  threshold : float;
  rb_params : Rb.params;
  spot_params : Rb.params;
  retry : Policy.retry;
  spot_checks : int;
  drift_tolerance : float;
  divergence_tolerance : float;
  canary_inflation : float;
  min_entry_fraction : float;
  omega : float;
  node_budget : int;
  jobs : int;
  seed : int;
}

let default_config =
  {
    threshold = 3.0;
    rb_params = { Rb.lengths = [ 1; 2; 4; 8 ]; seeds = 2; trials = 64 };
    spot_params = { Rb.lengths = [ 1; 2; 4 ]; seeds = 1; trials = 48 };
    retry = Policy.default_retry;
    spot_checks = 2;
    drift_tolerance = 0.35;
    divergence_tolerance = 0.5;
    canary_inflation = 1.25;
    min_entry_fraction = 0.5;
    omega = 0.5;
    node_budget = 200_000;
    jobs = 1;
    seed = 0;
  }

type drift_report = {
  spot_checked : int;
  flagged : ((Topology.edge * Topology.edge) * float) list;
  divergence : float;
  drifted : bool;
  spot_executions : int;
}

type canary_report = {
  circuits : int;
  candidate_error : float;
  incumbent_error : float;
  inflation : float;
  real_pass : bool;
  flaked : bool;
  passed : bool;
}

type crash_stage = Before_commit | After_commit

let crash_stage_name = function
  | Before_commit -> "before-commit"
  | After_commit -> "after-commit"

type action =
  | No_drift of drift_report
  | Rejected of {
      drift : drift_report;
      candidate_epoch : string;
      reason : string;
      canary : canary_report option;
      cost : Policy.incremental_outcome option;
    }
  | Promoted of {
      drift : drift_report;
      canary : canary_report;
      old_epoch : string;
      new_epoch : string;
      mode : Policy.incremental_mode;
      run_executions : int;
      full_executions : int;
      cost_fraction : float;
    }
  | Rolled_back of {
      drift : drift_report;
      canary : canary_report;
      bad_epoch : string;
      restored_epoch : string;
      mode : Policy.incremental_mode;
      cost_fraction : float;
    }
  | Crashed of { stage : crash_stage; candidate_epoch : string }

let action_name = function
  | No_drift _ -> "no-drift"
  | Rejected _ -> "rejected"
  | Promoted _ -> "promoted"
  | Rolled_back _ -> "rolled-back"
  | Crashed _ -> "crashed"

type t = {
  config : config;
  dir : string option;
  hardware : Device.t -> day:int -> Device.t;
  registry : Registry.t;
  mutable fault_hook : (id:string -> day:int -> fault list) option;
}

let create ?(config = default_config) ?dir ?(hardware = fun d ~day -> Drift.on_day d ~day)
    registry =
  (match dir with
  | Some d when not (Sys.file_exists d) -> Sys.mkdir d 0o755
  | _ -> ());
  { config; dir; hardware; registry; fault_hook = None }

let config t = t.config
let dir t = t.dir
let set_fault t hook = t.fault_hook <- hook

(* ---- canary suite ----

   The fixed suite every candidate epoch must survive: CNOT stress
   layers over a maximal disjoint edge set (guarantees overlap on the
   high-crosstalk edges, so the epochs actually disagree about the
   schedule) plus SWAP transports between distant qubits (the paper's
   benchmark shape). *)

let stress_circuit device ~layers =
  let disjoint =
    List.fold_left
      (fun acc (a, b) ->
        if List.exists (fun (c, d) -> a = c || a = d || b = c || b = d) acc then acc
        else (a, b) :: acc)
      []
      (Topology.edges (Device.topology device))
  in
  let rec go c n =
    if n = 0 then c
    else
      go (List.fold_left (fun c (a, b) -> Circuit.cnot c ~control:a ~target:b) c disjoint) (n - 1)
  in
  go (Circuit.create (Device.nqubits device)) layers

let canary_suite device =
  let n = Device.nqubits device in
  let pairs =
    List.sort_uniq compare
      (List.filter (fun (a, b) -> a <> b) [ (0, n - 1); (0, n / 2); (n / 2, n - 1) ])
  in
  stress_circuit device ~layers:2
  :: List.map
       (fun (src, dst) -> (Swap_circuits.build device ~src ~dst).Swap_circuits.circuit)
       pairs

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let compile_suite t device xtalk suite =
  List.map
    (fun circuit ->
      fst
        (Xtalk_sched.schedule ~omega:t.config.omega ~threshold:t.config.threshold
           ~node_budget:t.config.node_budget ~jobs:t.config.jobs ~device ~xtalk circuit))
    suite

(* ---- drift detection ---- *)

(* The stored pairs with the widest conditional/independent ratio: the
   fitted estimates with the widest confidence intervals, the pairs
   that dominate scheduling decisions, and the rates Fig. 4 shows
   drifting 2-3x day to day — the right place to spend spot-check
   budget. *)
let spot_pairs entry ~k =
  let device = entry.Registry.device in
  let ranked =
    List.sort
      (fun (t1, s1, r1) (t2, s2, r2) ->
        let ratio e r = r /. Float.max 1e-4 (Device.cnot_error device e) in
        match compare (ratio t2 r2) (ratio t1 r1) with
        | 0 -> compare (t1, s1) (t2, s2)
        | c -> c)
      (Crosstalk.entries entry.Registry.xtalk)
  in
  let seen = Hashtbl.create 8 in
  let rec pick acc n = function
    | [] -> List.rev acc
    | _ when n = 0 -> List.rev acc
    | (target, spectator, rate) :: rest ->
      let unordered = if compare target spectator <= 0 then (target, spectator) else (spectator, target) in
      let (t1, t2), (s1, s2) = (target, spectator) in
      if Hashtbl.mem seen unordered || t1 = s1 || t1 = s2 || t2 = s1 || t2 = s2 then
        pick acc n rest
      else begin
        Hashtbl.replace seen unordered ();
        pick ((target, spectator, rate) :: acc) (n - 1) rest
      end
  in
  pick [] k ranked

let detect t entry hardware ~rng ~incumbent_scheds =
  let cfg = t.config in
  let spots = spot_pairs entry ~k:cfg.spot_checks in
  let spot_executions = ref 0 in
  let flagged =
    List.concat
      (List.mapi
         (fun i (target, spectator, stored) ->
           let rng_i = Rng.split_nth rng i in
           let fits =
             Rb.run ~jobs:cfg.jobs hardware ~rng:(Rng.split_nth rng_i 0)
               ~params:cfg.spot_params [ target; spectator ]
           in
           let indep =
             Rb.independent ~jobs:cfg.jobs hardware ~rng:(Rng.split_nth rng_i 1)
               ~params:cfg.spot_params target
           in
           spot_executions := !spot_executions + (2 * Rb.experiment_executions cfg.spot_params);
           match List.find_opt (fun f -> f.Rb.edge = target) fits with
           | None -> []
           | Some cond ->
             let ratio =
               Float.max 1.0 (cond.Rb.error_rate /. Float.max 1e-4 indep.Rb.error_rate)
             in
             let anchored =
               (Calibration.gate (Device.calibration hardware) target).Calibration.cnot_error
               *. ratio
             in
             let deviation = Float.abs (anchored -. stored) /. Float.max stored 1e-4 in
             if deviation > cfg.drift_tolerance then [ ((target, spectator), deviation) ]
             else [])
         spots)
  in
  (* Predicted-vs-replayed divergence on the incumbent's canary
     schedules: the model view from the serving epoch against the
     (simulated) hardware replay of the same schedules today. *)
  let divergence =
    List.fold_left
      (fun acc sched ->
        let predicted =
          (Evaluate.model entry.Registry.device ~xtalk:entry.Registry.xtalk sched).Evaluate.error
        in
        let replayed = (Evaluate.oracle hardware sched).Evaluate.error in
        Float.max acc (Float.abs (replayed -. predicted) /. Float.max predicted 1e-3))
      0.0 incumbent_scheds
  in
  {
    spot_checked = List.length spots;
    flagged;
    divergence;
    drifted = flagged <> [] || divergence > cfg.divergence_tolerance;
    spot_executions = !spot_executions;
  }

(* ---- epoch ring persistence ----

   Two files per device in the calibration directory:

   - [<id>.epoch-<digest>.json]: one snapshot per epoch, written
     atomically through the checksummed store envelope;
   - [<id>.ring.json]: the pointer — current epoch digest + retired
     ring digests + promotion day.  Also written atomically, so the
     single rename of this file IS the promotion commit: a crash at
     any instant leaves it wholly old or wholly new. *)

let pointer_format = "qcx-epoch-ring-v1"
let epoch_file dir id digest = Filename.concat dir (id ^ ".epoch-" ^ digest ^ ".json")
let ring_file dir id = Filename.concat dir (id ^ ".ring.json")

let ensure_epoch_file dir id (digest, xtalk) =
  let path = epoch_file dir id digest in
  if not (Sys.file_exists path) then ignore (Store.save_crosstalk ~path xtalk)

let write_pointer dir id ~current ~ring ~promoted_day =
  let payload =
    Json.Object
      [
        ("format", Json.String pointer_format);
        ("device", Json.String id);
        ("current", Json.String current);
        ("ring", Json.Array (List.map (fun d -> Json.String d) ring));
        ( "promoted_day",
          match promoted_day with None -> Json.Null | Some d -> Json.Number (float_of_int d) );
      ]
  in
  Store.save ~path:(ring_file dir id) payload

let read_pointer path =
  let ( let* ) = Result.bind in
  let* doc = Store.load ~path in
  let* fmt = Json.find_str "format" doc in
  if fmt <> pointer_format then Error ("unknown pointer format " ^ fmt)
  else
    let* current = Json.find_str "current" doc in
    let* ring_docs = Json.find_list "ring" doc in
    let* ring =
      List.fold_left
        (fun acc d ->
          let* acc = acc in
          let* s = Json.to_str d in
          Ok (s :: acc))
        (Ok []) ring_docs
    in
    let promoted_day =
      match Json.member "promoted_day" doc with
      | Some (Json.Number n) -> Some (int_of_float n)
      | _ -> None
    in
    Ok (current, List.rev ring, promoted_day)

(* Drop epoch files no longer referenced by the pointer, bounding the
   directory to the ring depth. *)
let gc_epochs dir id ~keep =
  let prefix = id ^ ".epoch-" in
  Array.iter
    (fun file ->
      if
        String.length file > String.length prefix
        && String.sub file 0 (String.length prefix) = prefix
        && Filename.check_suffix file ".json"
      then begin
        let digest =
          Filename.chop_suffix
            (String.sub file (String.length prefix) (String.length file - String.length prefix))
            ".json"
        in
        if not (List.mem digest keep) then
          try Sys.remove (Filename.concat dir file) with Sys_error _ -> ()
      end)
    (try Sys.readdir dir with Sys_error _ -> [||])

(* Persist the registry entry's post-change ring state: snapshots for
   every referenced epoch, then the pointer, then GC. *)
let persist_entry t ~id (entry : Registry.entry) =
  match t.dir with
  | None -> ()
  | Some dir ->
    let referenced = (entry.Registry.epoch, entry.Registry.xtalk) :: entry.Registry.ring in
    List.iter (ensure_epoch_file dir id) referenced;
    ignore
      (write_pointer dir id ~current:entry.Registry.epoch
         ~ring:(List.map fst entry.Registry.ring)
         ~promoted_day:entry.Registry.promoted_day);
    gc_epochs dir id ~keep:(List.map fst referenced)

type recovered = { id : string; epoch : string; ring : int }

let recover t =
  match t.dir with
  | None -> []
  | Some dir ->
    List.filter_map
      (fun id ->
        match Registry.find t.registry id with
        | None -> None
        | Some entry ->
          let path = ring_file dir id in
          if not (Sys.file_exists path) then None
          else (
            match read_pointer path with
            | Error _ -> None
            | Ok (current, ring_digests, promoted_day) -> (
              let topology = Device.topology entry.Registry.device in
              let load digest =
                match Store.load_crosstalk ~topology ~path:(epoch_file dir id digest) () with
                | Ok xtalk -> Some (digest, xtalk)
                | Error _ -> None
              in
              match load current with
              | None -> None
              | Some (_, xtalk) -> (
                let ring = List.filter_map load ring_digests in
                match Registry.restore ?day:promoted_day t.registry ~id ~ring xtalk with
                | Error _ -> None
                | Ok e ->
                  Some { id; epoch = e.Registry.epoch; ring = List.length e.Registry.ring }))))
      (Registry.ids t.registry)

(* ---- the calibration cycle ---- *)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let apply_spike faults hardware =
  let scale =
    List.fold_left (fun acc -> function Drift_spike s -> acc *. s | _ -> acc) 1.0 faults
  in
  if scale = 1.0 then hardware
  else
    Device.with_ground_truth hardware
      (List.fold_left
         (fun acc (target, spectator, rate) ->
           Crosstalk.set acc ~target ~spectator
             (Qcx_util.Stats.clamp ~lo:0.0 ~hi:0.6 (rate *. scale)))
         Crosstalk.empty
         (Crosstalk.entries (Device.ground_truth hardware)))

let truncate_merge faults merged =
  let fraction =
    List.fold_left (fun acc -> function Truncate_merge f -> Float.max acc f | _ -> acc) 0.0 faults
  in
  if fraction <= 0.0 then merged
  else begin
    let entries = Crosstalk.entries merged in
    let keep =
      int_of_float (Float.round (float_of_int (List.length entries) *. (1.0 -. fraction)))
    in
    List.fold_left
      (fun acc (target, spectator, rate) -> Crosstalk.set acc ~target ~spectator rate)
      Crosstalk.empty (take keep entries)
  end

let calibrate ?(force = false) ?(full = false) ?(extra_faults = []) t ~id ~day =
  match Registry.find t.registry id with
  | None -> Error ("unknown device " ^ id)
  | Some entry ->
    let cfg = t.config in
    let faults =
      extra_faults @ (match t.fault_hook with Some f -> f ~id ~day | None -> [])
    in
    let hardware = apply_spike faults (t.hardware entry.Registry.device ~day) in
    let rng = Rng.create (Hashtbl.hash (cfg.seed, id, day, "qcx-calibrator")) in
    let suite = canary_suite entry.Registry.device in
    let incumbent_scheds = compile_suite t entry.Registry.device entry.Registry.xtalk suite in
    let drift = detect t entry hardware ~rng:(Rng.split_nth rng 0) ~incumbent_scheds in
    if not (drift.drifted || force) then Ok (No_drift drift)
    else begin
      let previous = if full then Crosstalk.empty else entry.Registry.xtalk in
      let inc =
        Policy.characterize_incremental ~params:cfg.rb_params ~jobs:cfg.jobs ~retry:cfg.retry
          ~threshold:cfg.threshold ~rng:(Rng.split_nth rng 1) hardware ~previous
      in
      let candidate = truncate_merge faults inc.Policy.merged in
      let candidate_epoch = Registry.epoch_of_xtalk candidate in
      let n_candidate = List.length (Crosstalk.entries candidate) in
      let n_incumbent = List.length (Crosstalk.entries entry.Registry.xtalk) in
      if
        n_incumbent > 0
        && float_of_int n_candidate < cfg.min_entry_fraction *. float_of_int n_incumbent
      then
        Ok
          (Rejected
             {
               drift;
               candidate_epoch;
               reason = "truncated-merge-guard";
               canary = None;
               cost = Some inc;
             })
      else begin
        (* Canary gate: both epochs compile the same fixed suite; the
           replayed (noisy-execution expectation) error on today's
           hardware decides. *)
        let candidate_scheds = compile_suite t entry.Registry.device candidate suite in
        let replay scheds =
          mean (List.map (fun s -> (Evaluate.oracle hardware s).Evaluate.error) scheds)
        in
        let candidate_error = replay candidate_scheds in
        let incumbent_error = replay incumbent_scheds in
        let real_pass = candidate_error <= (incumbent_error *. cfg.canary_inflation) +. 1e-12 in
        let flaked = List.mem Canary_flake faults in
        let passed = if flaked then not real_pass else real_pass in
        let canary =
          {
            circuits = List.length suite;
            candidate_error;
            incumbent_error;
            inflation = candidate_error /. Float.max incumbent_error 1e-12;
            real_pass;
            flaked;
            passed;
          }
        in
        if not passed then
          Ok
            (Rejected
               {
                 drift;
                 candidate_epoch;
                 reason = "canary-failed";
                 canary = Some canary;
                 cost = Some inc;
               })
        else begin
          (* Crash-consistent promotion: candidate snapshot first, then
             the atomic pointer rename commits.  Injected crashes stop
             the sequence exactly where a real one would. *)
          (match t.dir with
          | Some dir -> ensure_epoch_file dir id (candidate_epoch, candidate)
          | None -> ());
          if List.mem Crash_before_commit faults then
            Ok (Crashed { stage = Before_commit; candidate_epoch })
          else begin
            (match t.dir with
            | None -> ()
            | Some dir ->
              let next_ring =
                if candidate_epoch = entry.Registry.epoch then entry.Registry.ring
                else
                  take Registry.ring_limit
                    ((entry.Registry.epoch, entry.Registry.xtalk) :: entry.Registry.ring)
              in
              List.iter (ensure_epoch_file dir id) next_ring;
              ignore
                (write_pointer dir id ~current:candidate_epoch ~ring:(List.map fst next_ring)
                   ~promoted_day:(Some day)));
            if List.mem Crash_after_commit faults then
              Ok (Crashed { stage = After_commit; candidate_epoch })
            else begin
              match Registry.promote ~day t.registry ~id candidate with
              | Error e -> Error e
              | Ok promoted ->
                (match t.dir with
                | Some dir ->
                  gc_epochs dir id
                    ~keep:(promoted.Registry.epoch :: List.map fst promoted.Registry.ring)
                | None -> ());
                if real_pass then
                  Ok
                    (Promoted
                       {
                         drift;
                         canary;
                         old_epoch = entry.Registry.epoch;
                         new_epoch = candidate_epoch;
                         mode = inc.Policy.mode;
                         run_executions = inc.Policy.run_executions;
                         full_executions = inc.Policy.full_executions;
                         cost_fraction = inc.Policy.cost_fraction;
                       })
                else begin
                  (* Post-promotion health: the flake let a degrading
                     epoch through; the true canary verdict shows it.
                     Heal automatically — pop the ring. *)
                  match Registry.rollback ~day t.registry ~id with
                  | Error e -> Error e
                  | Ok restored ->
                    persist_entry t ~id restored;
                    Ok
                      (Rolled_back
                         {
                           drift;
                           canary;
                           bad_epoch = candidate_epoch;
                           restored_epoch = restored.Registry.epoch;
                           mode = inc.Policy.mode;
                           cost_fraction = inc.Policy.cost_fraction;
                         })
                end
            end
          end
        end
      end
    end

let rollback t ~id ~day =
  match Registry.rollback ~day t.registry ~id with
  | Error e -> Error e
  | Ok entry ->
    persist_entry t ~id entry;
    Ok entry

(* ---- JSON ---- *)

let edge_str (a, b) = Printf.sprintf "%d-%d" a b

let drift_to_json d =
  Json.Object
    [
      ("spot_checked", Json.Number (float_of_int d.spot_checked));
      ( "flagged",
        Json.Array
          (List.map
             (fun ((e1, e2), deviation) ->
               Json.Object
                 [
                   ("pair", Json.String (edge_str e1 ^ "|" ^ edge_str e2));
                   ("deviation", Json.Number deviation);
                 ])
             d.flagged) );
      ("divergence", Json.Number d.divergence);
      ("drifted", Json.Bool d.drifted);
      ("spot_executions", Json.Number (float_of_int d.spot_executions));
    ]

let canary_to_json c =
  Json.Object
    [
      ("circuits", Json.Number (float_of_int c.circuits));
      ("candidate_error", Json.Number c.candidate_error);
      ("incumbent_error", Json.Number c.incumbent_error);
      ("inflation", Json.Number c.inflation);
      ("real_pass", Json.Bool c.real_pass);
      ("flaked", Json.Bool c.flaked);
      ("passed", Json.Bool c.passed);
    ]

let cost_fields ~mode ~run ~full ~fraction =
  [
    ("mode", Json.String (Policy.incremental_mode_name mode));
    ("run_executions", Json.Number (float_of_int run));
    ("full_executions", Json.Number (float_of_int full));
    ("cost_fraction", Json.Number fraction);
  ]

let action_to_json action =
  let base = [ ("action", Json.String (action_name action)) ] in
  match action with
  | No_drift drift -> Json.Object (base @ [ ("drift", drift_to_json drift) ])
  | Rejected { drift; candidate_epoch; reason; canary; cost } ->
    Json.Object
      (base
      @ [
          ("drift", drift_to_json drift);
          ("candidate_epoch", Json.String candidate_epoch);
          ("reason", Json.String reason);
        ]
      @ (match canary with None -> [] | Some c -> [ ("canary", canary_to_json c) ])
      @
      match cost with
      | None -> []
      | Some inc ->
        cost_fields ~mode:inc.Policy.mode ~run:inc.Policy.run_executions
          ~full:inc.Policy.full_executions ~fraction:inc.Policy.cost_fraction)
  | Promoted { drift; canary; old_epoch; new_epoch; mode; run_executions; full_executions; cost_fraction } ->
    Json.Object
      (base
      @ [
          ("drift", drift_to_json drift);
          ("canary", canary_to_json canary);
          ("old_epoch", Json.String old_epoch);
          ("new_epoch", Json.String new_epoch);
        ]
      @ cost_fields ~mode ~run:run_executions ~full:full_executions ~fraction:cost_fraction)
  | Rolled_back { drift; canary; bad_epoch; restored_epoch; mode; cost_fraction } ->
    Json.Object
      (base
      @ [
          ("drift", drift_to_json drift);
          ("canary", canary_to_json canary);
          ("bad_epoch", Json.String bad_epoch);
          ("restored_epoch", Json.String restored_epoch);
          ("mode", Json.String (Policy.incremental_mode_name mode));
          ("cost_fraction", Json.Number cost_fraction);
        ])
  | Crashed { stage; candidate_epoch } ->
    Json.Object
      (base
      @ [
          ("stage", Json.String (crash_stage_name stage));
          ("candidate_epoch", Json.String candidate_epoch);
        ])
