module Xtalk_sched = Qcx_scheduler.Xtalk_sched
module Json = Qcx_persist.Json

type state = Closed | Open | Half_open

type config = {
  threshold : int;
  cooloff_seconds : float;
  min_rung : Xtalk_sched.rung;
}

let default_config = { threshold = 5; cooloff_seconds = 30.0; min_rung = Xtalk_sched.Parallel }

type t = {
  config : config;
  mutable state : state;
  mutable consecutive : int;  (* consecutive failures while closed *)
  mutable opened_at : float;  (* when we last tripped *)
  mutable probing : bool;  (* a half-open probe is in flight *)
  mutable trips : int;
  mutable rejections : int;
  mutable failures : int;
  mutable successes : int;
}

let create config =
  if config.threshold <= 0 then invalid_arg "Breaker.create: threshold must be positive";
  if not (config.cooloff_seconds > 0.0) then
    invalid_arg "Breaker.create: cooloff must be positive";
  {
    config;
    state = Closed;
    consecutive = 0;
    opened_at = neg_infinity;
    probing = false;
    trips = 0;
    rejections = 0;
    failures = 0;
    successes = 0;
  }

let state t = t.state
let config t = t.config

let state_name = function Closed -> "closed" | Open -> "open" | Half_open -> "half_open"

let rung_index r =
  let rec find i = function
    | [] -> invalid_arg "Breaker.rung_index: unknown rung"
    | x :: rest -> if x = r then i else find (i + 1) rest
  in
  find 0 Xtalk_sched.all_rungs

let rung_acceptable t rung = rung_index rung <= rung_index t.config.min_rung

type verdict = Admit | Probe | Reject of float

let check t ~now =
  match t.state with
  | Closed -> Admit
  | Open ->
    let elapsed = now -. t.opened_at in
    if elapsed >= t.config.cooloff_seconds then begin
      t.state <- Half_open;
      t.probing <- true;
      Probe
    end
    else begin
      t.rejections <- t.rejections + 1;
      Reject (Float.max 0.0 (t.config.cooloff_seconds -. elapsed))
    end
  | Half_open ->
    if t.probing then begin
      (* One probe at a time: concurrent requests wait out the probe. *)
      t.rejections <- t.rejections + 1;
      Reject t.config.cooloff_seconds
    end
    else begin
      t.probing <- true;
      Probe
    end

let record_success t ~now =
  ignore now;
  t.successes <- t.successes + 1;
  t.consecutive <- 0;
  t.probing <- false;
  t.state <- Closed

let record_failure t ~now =
  t.failures <- t.failures + 1;
  t.probing <- false;
  match t.state with
  | Half_open ->
    (* Failed probe: straight back to open, restart the cooloff. *)
    t.state <- Open;
    t.opened_at <- now;
    t.trips <- t.trips + 1
  | Open -> t.opened_at <- now
  | Closed ->
    t.consecutive <- t.consecutive + 1;
    if t.consecutive >= t.config.threshold then begin
      t.state <- Open;
      t.opened_at <- now;
      t.trips <- t.trips + 1
    end

let to_json t =
  Json.Object
    [
      ("state", Json.String (state_name t.state));
      ("consecutive_failures", Json.Number (float_of_int t.consecutive));
      ("trips", Json.Number (float_of_int t.trips));
      ("rejections", Json.Number (float_of_int t.rejections));
      ("failures", Json.Number (float_of_int t.failures));
      ("successes", Json.Number (float_of_int t.successes));
    ]

let trips t = t.trips
let rejections t = t.rejections
