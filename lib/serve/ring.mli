(** Consistent-hash ring mapping cache keys to fleet shards
    (DESIGN.md §14).

    Shards contribute [vnodes] virtual points each on a hash circle; a
    key is owned by the first point at or clockwise-after the key's
    own hash.  Failover is a clockwise walk past dead shards — not a
    rehash — so removing or re-adding one shard only remaps the keys
    on that shard's own arcs.  The point set is a pure function of
    [(nshards, vnodes)]: every router instance, at every process, at
    every jobs count, derives the identical ring. *)

type t

val create : ?vnodes:int -> nshards:int -> unit -> t
(** [vnodes] (default 64) points per shard.  Raises
    [Invalid_argument] on non-positive arguments. *)

val nshards : t -> int
val vnodes : t -> int

val owner : t -> string -> int
(** The key's owner with every shard live. *)

val lookup : t -> live:(int -> bool) -> string -> int option
(** First live shard at or clockwise-after the key's hash; [None]
    when no shard satisfies [live].  With [live = fun _ -> true] this
    is {!owner}; with one shard marked dead, only keys owned by that
    shard move (each to the next live point on its arc). *)

val points : t -> (int * int) array
(** The sorted [(hash, shard)] point list (a copy) — exposed for the
    qcheck ring properties and diagnostics. *)
