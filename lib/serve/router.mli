(** Fleet front door (DESIGN.md §14): routes compile requests to
    shards over a consistent-hash {!Ring}, fails over around dead
    shards with typed, bounded retry, and aggregates fan-out ops.

    Failover per shard: [Live] (breaker closed) → [Degraded] (a
    connect/ack failure trips the threshold-1 breaker; requests
    short-circuit to the key's ring successor until a cooloff probe
    succeeds) → back to [Live].  A shard marked rebuilding (via
    {!set_rebuilding}, while it replays its peer replica) is taken off
    the ring entirely so a warming cache never serves.

    A routed compile gets the primary attempt on its owner plus at
    most one hedged retry on its ring successor, behind a jittered
    backoff bounded by the request deadline (or the config budget);
    exhaustion answers the typed [unavailable], never a hang.  The
    aggregated [health]/[stats] ops probe every shard and feed the
    outcomes into the breakers — monitoring doubles as the active
    health check that closes breakers of recovered shards. *)

type transport = { send : shard:int -> string list -> (string list, string) result }
(** [send ~shard lines] must return exactly one response line per
    request line, or [Error] — which counts as a shard failure. *)

type config = {
  vnodes : int;
  retry_backoff : float;  (** base of the jittered pre-retry sleep, seconds *)
  jitter_seed : int;
  default_budget : float;  (** retry budget for requests with no deadline *)
  breaker : Breaker.config;
}

val default_config : config
(** vnodes 64, backoff 20 ms, budget 5 s, breaker threshold 1 /
    cooloff 0.5 s. *)

type shard_state = Live | Degraded | Rebuilding

val state_name : shard_state -> string

type t

val create :
  ?config:config ->
  ?clock:(unit -> float) ->
  ?width:(string -> int option) ->
  nshards:int ->
  transport:transport ->
  unit ->
  t
(** [width device] is the device's qubit count, used to canonicalize
    circuits for the routing key (unknown devices still route, just
    without width normalization). *)

val nshards : t -> int
val ring : t -> Ring.t
val breaker : t -> int -> Breaker.t
val shard_state : t -> int -> shard_state
val routable : t -> int -> bool

val set_rebuilding : t -> int -> bool -> unit
(** While true the shard is off the ring (not routable). *)

val reset_breaker : t -> int -> unit
(** Fresh closed breaker — call when a rebuilt shard rejoins. *)

val routing_key : t -> device:string -> params:Wire.params -> Qcx_circuit.Circuit.t -> string
(** Pure function of (device, knobs, canonical circuit) — excludes the
    epoch and the deadline, so equal cache keys always route alike. *)

val handle_frames : ?max_frame:int -> t -> Server.frame list -> string list * bool
(** The router's batch handler — same contract as
    {!Server.handle_frames} (one response line per non-blank frame,
    flag true on shutdown), pluggable into {!Server.serve_socket_with}. *)

val handle_lines : ?max_frame:int -> t -> string list -> string list * bool

val socket_transport : ?timeout:float -> socket_for:(int -> string) -> unit -> transport
(** Unix-domain transport: one lazily-(re)connected connection per
    shard at [socket_for shard].  Missing socket / refused connect
    fails fast; a response exceeding [timeout] (default 10 s) abandons
    the connection.  Every error closes the connection so the next
    attempt starts clean. *)
