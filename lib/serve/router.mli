(** Fleet front door (DESIGN.md §14): routes compile requests to
    shards over a consistent-hash {!Ring}, fails over around dead
    shards with typed, bounded retry, and aggregates fan-out ops.

    Failover per shard: [Live] (breaker closed) → [Degraded] (a
    connect/ack failure trips the threshold-1 breaker; requests
    short-circuit to the key's ring successor until a cooloff probe
    succeeds) → back to [Live].  A shard marked rebuilding (via
    {!set_rebuilding}, while it replays its peer replica) is taken off
    the ring entirely so a warming cache never serves.

    Forwarding is pipelined (DESIGN.md §15): each compile is retagged
    with a router-unique id, per-owner groups are cut into bounded
    chunks, and every chunk of a batch goes out through one
    [send_many] — multiple chunks in flight per shard connection, so a
    straggling shard no longer gates the others.  Responses come back
    by id and are retagged to the client id byte-exactly.  Per
    request, a routed compile gets the primary attempt on its owner
    plus at most one hedged retry on its ring successor, behind a
    jittered backoff bounded by the request deadline (or the config
    budget); exhaustion answers the typed [unavailable], never a
    hang.  The aggregated [health]/[stats] ops probe every shard
    concurrently and feed the outcomes into the breakers — monitoring
    doubles as the active health check that closes breakers of
    recovered shards, and one dead shard's timeout is paid once, not
    once per shard. *)

type transport = {
  send : shard:int -> string list -> (string list, string) result;
  send_many : (int * string list) list -> (string list, string) result list;
}
(** [send ~shard lines] must return exactly one response line per
    request line, or [Error] — which counts as a shard failure.
    [send_many] dispatches several (shard, lines) chunks at once —
    possibly multiple per shard — and returns outcomes positionally; a
    transport should overlap the chunks (the router's correctness does
    not depend on it, only its latency).  A short [Ok] is permitted:
    the router salvages the responses present by id and fails over the
    rest. *)

val transport_of_send : (shard:int -> string list -> (string list, string) result) -> transport
(** Lift a plain send function; [send_many] degrades to a sequential
    loop, which is exact for in-process transports ({!Fleet}). *)

type config = {
  vnodes : int;
  retry_backoff : float;  (** base of the jittered pre-retry sleep, seconds *)
  jitter_seed : int;
  default_budget : float;  (** retry budget for requests with no deadline *)
  breaker : Breaker.config;
}

val default_config : config
(** vnodes 64, backoff 20 ms, budget 5 s, breaker threshold 1 /
    cooloff 0.5 s. *)

type shard_state = Live | Degraded | Rebuilding

val state_name : shard_state -> string

type t

val create :
  ?config:config ->
  ?clock:(unit -> float) ->
  ?width:(string -> int option) ->
  nshards:int ->
  transport:transport ->
  unit ->
  t
(** [width device] is the device's qubit count, used to canonicalize
    circuits for the routing key (unknown devices still route, just
    without width normalization). *)

val nshards : t -> int
val ring : t -> Ring.t
val breaker : t -> int -> Breaker.t
val shard_state : t -> int -> shard_state
val routable : t -> int -> bool

val set_rebuilding : t -> int -> bool -> unit
(** While true the shard is off the ring (not routable). *)

val reset_breaker : t -> int -> unit
(** Fresh closed breaker — call when a rebuilt shard rejoins. *)

val routing_key : t -> device:string -> params:Wire.params -> Qcx_circuit.Circuit.t -> string
(** Pure function of (device, knobs, canonical circuit) — excludes the
    epoch and the deadline, so equal cache keys always route alike. *)

val handle_frames : ?max_frame:int -> t -> Server.frame list -> string list * bool
(** The router's batch handler — same contract as
    {!Server.handle_frames} (one response line per non-blank frame,
    flag true on shutdown), pluggable into {!Server.serve_socket_with}. *)

val handle_lines : ?max_frame:int -> t -> string list -> string list * bool

val set_serving : t -> (unit -> Qcx_persist.Json.t) option -> unit
(** Reactor observability hook: when set, the payload is embedded as
    the [serving] field of the router section of aggregated
    [health]/[stats] responses.  [qcx_serve --router] registers the
    {!Server} reactor metrics here. *)

val socket_transport :
  ?timeout:float -> ?max_inflight:int -> socket_for:(int -> string) -> unit -> transport
(** Unix-domain transport: one lazily-(re)connected persistent
    connection per shard at [socket_for shard], driven non-blocking
    through one select loop per [send_many] call — chunks for distinct
    shards proceed concurrently, chunks for the same shard pipeline
    with at most [max_inflight] (default 4) outstanding on the wire.
    Missing socket / refused connect fails fast; an exchange exceeding
    [timeout] (default 10 s) fails that shard's unresolved chunks.
    Every error closes the shard's connection so the next attempt
    starts clean. *)
