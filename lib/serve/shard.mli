(** One member of the replicated serve fleet (DESIGN.md §14): a
    {!Service} owning its snapshot + write-ahead journal under
    [root/shard-<k>/], streaming every cache insertion through a
    {!Replica} sender into its ring peer's directory
    ([root/shard-<peer>/replica-of-<k>.ndjson] — the peer's crash
    domain, so losing this shard's disk never loses its history).

    Boot: recover from own snapshot + journal; if that yields nothing
    and a peer replica of this shard exists, rebuild the cache from it
    (full append history replayed through the same LRU — the state a
    journal replay would have produced) and checkpoint; then open the
    replica sender (sequence numbers continue) and install the
    insertion tee, so recovered entries are not re-replicated. *)

type boot = {
  snapshot_entries : int;
  journal_entries : int;
  journal_dropped : int;
  torn_journal : bool;
  rebuilt_from_replica : int;  (** records replayed from the peer replica *)
  torn_replica : bool;  (** the replica had a torn tail (valid prefix used) *)
}

type t

val create :
  ?config:Service.config ->
  ?clock:(unit -> float) ->
  ?fsync:bool ->
  ?replica_batch:int ->
  root:string ->
  index:int ->
  nshards:int ->
  make_registry:(unit -> Registry.t) ->
  unit ->
  (t, string) result
(** Create shard [index] of [nshards] under [root] (directories are
    made as needed).  [make_registry] builds a fresh device registry —
    every shard derives identical epochs from it, so cache keys agree
    across the fleet.  [replica_batch] 1 (default) is synchronous
    replication: every insert is flushed + fsync'd to the peer before
    the response leaves. *)

val index : t -> int
val nshards : t -> int
val service : t -> Service.t
val replica : t -> Replica.sender
val boot : t -> boot

val dir : t -> string
val own_cache_file : t -> string
val own_replica_path : t -> string
(** Where this shard's history lives in the PEER's directory — the
    file {!create} rebuilds from after a total local loss. *)

val peer : nshards:int -> int -> int
(** Ring successor [(k + 1) mod nshards] — the replication target. *)

val shard_dir : root:string -> int -> string
val cache_file : root:string -> int -> string
val replica_path : root:string -> nshards:int -> int -> string

val close : t -> unit
(** Graceful: flush the replica, checkpoint, close both files. *)

val abandon : t -> unit
(** kill -9 semantics: close the file descriptors without flushing or
    checkpointing — pending replica entries and the un-checkpointed
    journal tail are lost, exactly as if the process died. *)
