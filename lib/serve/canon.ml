module Circuit = Qcx_circuit.Circuit
module Gate = Qcx_circuit.Gate

let normalize ?nqubits circuit =
  let nq = match nqubits with Some n -> n | None -> Circuit.nqubits circuit in
  (* Pass 1: normalize operand order and measure runs, dropping ids. *)
  let flush pending acc =
    List.fold_left
      (fun acc q -> (Gate.Measure, [ q ]) :: acc)
      acc
      (List.sort compare (List.rev pending))
  in
  let pending, rev =
    List.fold_left
      (fun (pending, rev) (g : Gate.t) ->
        match g.kind with
        | Gate.Measure -> (List.hd g.qubits :: pending, rev)
        | Gate.Swap | Gate.Barrier -> ([], (g.kind, List.sort compare g.qubits) :: flush pending rev)
        | kind -> ([], (kind, g.qubits) :: flush pending rev))
      ([], []) (Circuit.gates circuit)
  in
  let gates = List.rev (flush pending rev) in
  let circuit =
    List.fold_left (fun c (kind, qs) -> Circuit.add c kind qs) (Circuit.create nq) gates
  in
  (* Pass 2: decompose logical SWAPs (operand order is already pinned,
     so the three-CNOT expansion is canonical too).  Ids come out
     sequential in program order. *)
  Circuit.decompose_swaps circuit

let serialize circuit =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "q %d\n" (Circuit.nqubits circuit));
  List.iter
    (fun (g : Gate.t) ->
      Buffer.add_string b (Gate.kind_name g.kind);
      (match g.kind with
      | Gate.Rx t | Gate.Ry t | Gate.Rz t -> Buffer.add_string b (Printf.sprintf " %h" t)
      | Gate.U2 (p, l) -> Buffer.add_string b (Printf.sprintf " %h %h" p l)
      | _ -> ());
      List.iter (fun q -> Buffer.add_string b (Printf.sprintf " %d" q)) g.qubits;
      Buffer.add_char b '\n')
    (Circuit.gates circuit);
  Buffer.contents b

let digest ?nqubits circuit = Digest.to_hex (Digest.string (serialize (normalize ?nqubits circuit)))
