module Circuit = Qcx_circuit.Circuit
module Gate = Qcx_circuit.Gate

let normalize ?nqubits circuit =
  let nq = match nqubits with Some n -> n | None -> Circuit.nqubits circuit in
  (* Pass 1: normalize operand order and measure runs, dropping ids. *)
  let flush pending acc =
    List.fold_left
      (fun acc q -> (Gate.Measure, [ q ]) :: acc)
      acc
      (List.sort compare (List.rev pending))
  in
  let pending, rev =
    List.fold_left
      (fun (pending, rev) (g : Gate.t) ->
        match g.kind with
        | Gate.Measure -> (List.hd g.qubits :: pending, rev)
        | Gate.Swap | Gate.Barrier -> ([], (g.kind, List.sort compare g.qubits) :: flush pending rev)
        | kind -> ([], (kind, g.qubits) :: flush pending rev))
      ([], []) (Circuit.gates circuit)
  in
  let gates = List.rev (flush pending rev) in
  let circuit =
    List.fold_left (fun c (kind, qs) -> Circuit.add c kind qs) (Circuit.create nq) gates
  in
  (* Pass 2: decompose logical SWAPs (operand order is already pinned,
     so the three-CNOT expansion is canonical too).  Ids come out
     sequential in program order. *)
  Circuit.decompose_swaps circuit

let serialize circuit =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "q %d\n" (Circuit.nqubits circuit));
  List.iter
    (fun (g : Gate.t) ->
      Buffer.add_string b (Gate.kind_name g.kind);
      (match g.kind with
      | Gate.Rx t | Gate.Ry t | Gate.Rz t -> Buffer.add_string b (Printf.sprintf " %h" t)
      | Gate.U2 (p, l) -> Buffer.add_string b (Printf.sprintf " %h %h" p l)
      | _ -> ());
      List.iter (fun q -> Buffer.add_string b (Printf.sprintf " %d" q)) g.qubits;
      Buffer.add_char b '\n')
    (Circuit.gates circuit);
  Buffer.contents b

(* Fused canonical serialization for the cache-key hot path: one pass
   over the raw gate list, emitting the exact bytes of
   [serialize (normalize ?nqubits circuit)] without constructing the
   two intermediate circuits (the rebuild + swap decomposition are the
   bulk of a cache hit's cost).  Gate validation against the widened
   register is preserved — the same [Invalid_argument]s as
   [Circuit.add] raises inside [normalize]. *)
(* " <q>" for the register sizes that actually occur, so qubit
   emission is a table load instead of a fresh string_of_int
   allocation per operand.  Read-only after module init — safe to
   share across domains. *)
let operand_strings = Array.init 512 (fun i -> " " ^ string_of_int i)

let key_serialize ?nqubits circuit =
  let nq = match nqubits with Some n -> n | None -> Circuit.nqubits circuit in
  if nq <= 0 then invalid_arg "Circuit.create: nqubits must be positive";
  let b = Buffer.create 512 in
  Buffer.add_string b "q ";
  Buffer.add_string b (string_of_int nq);
  Buffer.add_char b '\n';
  (* One-slot %h memo, local to this call (domain-safe): rotation
     layers repeat one angle across a run of gates, so the format
     call amortizes to a bit-compare.  Bit-level equality, not (=):
     -0.0 and 0.0 render differently under %h. *)
  let memo_full = ref false and last_bits = ref 0L and last_hex = ref "" in
  let hex f =
    let bits = Int64.bits_of_float f in
    if !memo_full && Int64.equal bits !last_bits then !last_hex
    else begin
      let s = Printf.sprintf "%h" f in
      memo_full := true;
      last_bits := bits;
      last_hex := s;
      s
    end
  in
  let emit kind qubits =
    Buffer.add_string b (Gate.kind_name kind);
    (match kind with
    | Gate.Rx t | Gate.Ry t | Gate.Rz t ->
      Buffer.add_char b ' ';
      Buffer.add_string b (hex t)
    | Gate.U2 (p, l) ->
      Buffer.add_char b ' ';
      Buffer.add_string b (hex p);
      Buffer.add_char b ' ';
      Buffer.add_string b (hex l)
    | _ -> ());
    List.iter
      (fun q ->
        if q >= 0 && q < Array.length operand_strings then
          Buffer.add_string b operand_strings.(q)
        else begin
          Buffer.add_char b ' ';
          Buffer.add_string b (string_of_int q)
        end)
      qubits;
    Buffer.add_char b '\n'
  in
  let flush pending =
    List.iter (fun q -> emit Gate.Measure [ q ]) (List.sort Int.compare (List.rev pending))
  in
  (* Every gate was validated against the circuit's own width by
     Circuit.add, so widening to [nq] cannot invalidate it; only a
     narrowing register needs the bounds re-checked. *)
  let prevalidated = nq >= Circuit.nqubits circuit in
  let pending =
    List.fold_left
      (fun pending (g : Gate.t) ->
        if not prevalidated then
          (match Gate.validate ~nqubits:nq g with
          | Error msg -> invalid_arg ("Circuit.add: " ^ msg)
          | Ok () -> ());
        match (g.kind, g.qubits) with
        | Gate.Measure, qs -> List.hd qs :: pending
        | Gate.Swap, qs ->
          flush pending;
          (* Operand order pinned by sorting before decomposition,
             exactly as normalize does. *)
          (match List.sort Int.compare qs with
          | [ p; q ] ->
            emit Gate.Cnot [ p; q ];
            emit Gate.Cnot [ q; p ];
            emit Gate.Cnot [ p; q ]
          | qs -> emit Gate.Swap qs);
          []
        | Gate.Barrier, qs ->
          flush pending;
          emit Gate.Barrier (List.sort Int.compare qs);
          []
        | kind, qs ->
          flush pending;
          emit kind qs;
          [])
      [] (Circuit.gates circuit)
  in
  flush pending;
  Buffer.contents b

let digest ?nqubits circuit = Digest.to_hex (Digest.string (serialize (normalize ?nqubits circuit)))
