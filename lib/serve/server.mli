(** Transport layer of the compilation service.

    Newline-delimited JSON over a Unix-domain socket (stdlib [Unix]
    only), plus a channel mode used for [--once] testing and the CI
    smoke test.  Both modes funnel into {!Service.handle_batch}:
    requests that arrive together are served as one batch
    (Pool-parallel cold compiles, admission control on the batch), and
    responses come back one JSON object per line, in request order.

    The socket mode is an event-driven reactor (DESIGN.md §15): one
    [Unix.select] loop multiplexes the listener and every open
    connection over non-blocking fds, each connection framing NDJSON
    incrementally through one reusable read buffer.  Frames from
    different connections accumulate — round-robin, one frame per
    connection per pass, so a deep pipeline never starves its
    neighbours — into a shared batch dispatched when it is full or
    when the [batch_window] collection window closes, and responses
    are demultiplexed back through bounded per-connection write
    queues.  A connection whose write queue is over the bound is
    neither read from nor dispatched until the client drains it
    (backpressure), and a slow reader never head-of-line-blocks other
    connections.

    Hardened against hostile input and bad clients (DESIGN.md §9):
    frames beyond [max_frame] are discarded while buffering at most
    the bound and answered with a typed [frame_too_large]; arbitrary
    bytes never raise (every frame gets exactly one typed response); a
    handler panic closes the connections whose frames were in the
    dying batch, is counted via {!Service.note_panic}, and the reactor
    keeps accepting; a client that stops reading its responses trips
    [write_timeout] and is dropped; and a [stop] callback polled on a
    short tick lets SIGTERM drain the loop between batches.

    A [shutdown] request stops the loop after its batch is answered.
    Malformed lines get an [error] response and never kill the
    connection; client disconnects never kill the server. *)

type frame =
  | Line of string
  | Oversize  (** an input line exceeded the frame bound; bytes dropped *)

val handle_frames : ?max_frame:int -> Service.t -> frame list -> string list * bool
(** Parse frames, serve them as one batch, and render the response
    lines.  The flag is [true] when the batch contained a [shutdown]
    request.  Blank lines are skipped; every other frame — oversized,
    unparseable, valid — yields exactly one response line. *)

val handle_lines : ?max_frame:int -> Service.t -> string list -> string list * bool
(** {!handle_frames} over plain lines (each checked against
    [max_frame], default {!Wire.default_max_frame}). *)

val serve_channels : Service.t -> in_channel -> out_channel -> unit
(** [--once] mode: read request lines until EOF, serve them as a
    single batch (so admission control applies to the whole input),
    write response lines, flush.  Stops early at a [shutdown]. *)

(** Reactor counters, surfaced through [stats]/[health] as the
    [serving] payload: accepted/shed connections, open-connection
    gauge and peak, accept-queue depth (admitted connections with
    nothing dispatched yet), batch count and occupancy histogram
    (log2 buckets), slow-client drops, and backpressure stalls. *)
type metrics

val create_metrics : unit -> metrics
val metrics_json : metrics -> Qcx_persist.Json.t

val serve_socket_with :
  ?max_batch:int ->
  ?max_frame:int ->
  ?write_timeout:float ->
  ?stop:(unit -> bool) ->
  ?backlog:int ->
  ?max_pending:int ->
  ?note_panic:(unit -> unit) ->
  ?batch_window:float ->
  ?metrics:metrics ->
  handle:(frame list -> string list * bool) ->
  path:string ->
  unit ->
  unit
(** The reactor with a pluggable batch handler — the fleet router
    serves through this with {!Router.handle_frames} in place of the
    single-service {!handle_frames}.  [backlog] (default 16) is the
    kernel listen queue.  [max_pending] (default: none) bounds
    admitted connections that have not yet had a frame dispatched:
    every connection in the kernel queue is accepted eagerly and the
    excess beyond the bound is shed immediately with a typed
    [overloaded] response line and a close — a refused client always
    gets a parseable answer, never a silent reset or an unbounded
    wait.  [batch_window] (default 0: no added latency) holds the
    shared batch open so cold compiles from different connections can
    coalesce into one Pool-parallel dispatch.  [note_panic] is called
    when a batch handler dies (the reactor keeps accepting).
    [metrics] shares the reactor's counters with the caller. *)

val serve_socket :
  ?max_batch:int ->
  ?max_frame:int ->
  ?write_timeout:float ->
  ?stop:(unit -> bool) ->
  ?backlog:int ->
  ?max_pending:int ->
  ?batch_window:float ->
  ?metrics:metrics ->
  Service.t ->
  path:string ->
  unit
(** Bind [path] (any stale socket file is replaced) and run the
    reactor over {!Service.handle_batch}: frames available across all
    connections (up to [max_batch], default [2 * queue_bound]) are
    served as one batch and responses demultiplexed back in request
    order per connection.  Returns after a [shutdown] request, or —
    between batches — once [stop ()] turns true (graceful drain:
    frames already read are served and their responses written
    first).  [write_timeout] bounds how long a non-draining client
    may stall its write queue before being disconnected; the server
    lives on.  Registers the reactor metrics with the service, so
    [stats]/[health] expose the [serving] payload.  The socket file
    is removed on return. *)
