(** Transport layer of the compilation service.

    Newline-delimited JSON over a Unix-domain socket (stdlib [Unix]
    only), plus a channel mode used for [--once] testing and the CI
    smoke test.  Both modes funnel into {!Service.handle_batch}:
    pipelined requests that arrive together are served as one batch
    (Pool-parallel cold compiles, admission control on the batch), and
    responses come back one JSON object per line, in request order.

    Hardened against hostile input and bad clients (DESIGN.md §9):
    frames beyond [max_frame] are discarded while buffering at most
    the bound and answered with a typed [frame_too_large]; arbitrary
    bytes never raise (every frame gets exactly one typed response); a
    handler panic closes the offending connection, is counted via
    {!Service.note_panic}, and the accept loop keeps going; a client
    that stops reading its responses trips [write_timeout] and is
    dropped; and a [stop] callback polled on a short tick lets SIGTERM
    drain the loop between batches.

    A [shutdown] request stops the loop after its batch is answered.
    Malformed lines get an [error] response and never kill the
    connection; client disconnects never kill the server. *)

type frame =
  | Line of string
  | Oversize  (** an input line exceeded the frame bound; bytes dropped *)

val handle_frames : ?max_frame:int -> Service.t -> frame list -> string list * bool
(** Parse frames, serve them as one batch, and render the response
    lines.  The flag is [true] when the batch contained a [shutdown]
    request.  Blank lines are skipped; every other frame — oversized,
    unparseable, valid — yields exactly one response line. *)

val handle_lines : ?max_frame:int -> Service.t -> string list -> string list * bool
(** {!handle_frames} over plain lines (each checked against
    [max_frame], default {!Wire.default_max_frame}). *)

val serve_channels : Service.t -> in_channel -> out_channel -> unit
(** [--once] mode: read request lines until EOF, serve them as a
    single batch (so admission control applies to the whole input),
    write response lines, flush.  Stops early at a [shutdown]. *)

val serve_socket_with :
  ?max_batch:int ->
  ?max_frame:int ->
  ?write_timeout:float ->
  ?stop:(unit -> bool) ->
  ?backlog:int ->
  ?max_pending:int ->
  ?note_panic:(unit -> unit) ->
  handle:(frame list -> string list * bool) ->
  path:string ->
  unit ->
  unit
(** The accept loop with a pluggable batch handler — the fleet router
    serves through this with {!Router.handle_frames} in place of the
    single-service {!handle_frames}.  [backlog] (default 16) is the
    kernel listen queue.  [max_pending] (default: none) bounds
    admitted-but-unserved connections: when set, every connection
    already in the kernel queue is accepted eagerly and the excess
    beyond the bound is shed immediately with a typed [overloaded]
    response line and a close — a refused client always gets a
    parseable answer, never a silent reset or an unbounded wait.
    [note_panic] is called when a connection handler dies (the daemon
    keeps accepting). *)

val serve_socket :
  ?max_batch:int ->
  ?max_frame:int ->
  ?write_timeout:float ->
  ?stop:(unit -> bool) ->
  ?backlog:int ->
  ?max_pending:int ->
  Service.t ->
  path:string ->
  unit
(** Bind [path] (any stale socket file is replaced), accept clients
    one at a time, and serve each connection: the first request line
    blocks, then all immediately available pipelined lines (up to
    [max_batch], default [2 * queue_bound]) join the same batch.
    Returns after a [shutdown] request, or — between batches — once
    [stop ()] turns true (graceful drain: in-flight batches finish
    and their responses are written first).  [write_timeout] bounds
    each response write; a stalled client is disconnected, the server
    lives on.  [backlog]/[max_pending] as in {!serve_socket_with}.
    The socket file is removed on return. *)
