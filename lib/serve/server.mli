(** Transport layer of the compilation service.

    Newline-delimited JSON over a Unix-domain socket (stdlib [Unix]
    only), plus a channel mode used for [--once] testing and the CI
    smoke test.  Both modes funnel into {!Service.handle_batch}:
    pipelined requests that arrive together are served as one batch
    (Pool-parallel cold compiles, admission control on the batch), and
    responses come back one JSON object per line, in request order.

    A [shutdown] request stops the loop after its batch is answered.
    Malformed lines get an [error] response and never kill the
    connection; client disconnects never kill the server. *)

val handle_lines : Service.t -> string list -> string list * bool
(** Parse raw request lines, serve them as one batch, and render the
    response lines.  The flag is [true] when the batch contained a
    [shutdown] request.  Blank lines are skipped. *)

val serve_channels : Service.t -> in_channel -> out_channel -> unit
(** [--once] mode: read request lines until EOF, serve them as a
    single batch (so admission control applies to the whole input),
    write response lines, flush.  Stops early at a [shutdown]. *)

val serve_socket : ?max_batch:int -> Service.t -> path:string -> unit
(** Bind [path] (any stale socket file is replaced), accept clients
    one at a time, and serve each connection: the first request line
    blocks, then all immediately available pipelined lines (up to
    [max_batch], default [2 * queue_bound]) join the same batch.
    Returns after a [shutdown] request; the socket file is removed. *)
