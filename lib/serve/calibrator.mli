(** The calibration data plane: the drift loop as a service concern.

    The paper's operational premise is that schedules are only as good
    as the calibration epoch behind them, and its Optimization 3 keeps
    the daily re-characterization tractable by re-measuring only the
    known high-crosstalk pairs.  The calibrator runs that loop inside
    the serving layer and makes it {e self-healing}:

    - {e drift detection} decides when to act: SRB spot-checks on the
      stored pairs with the widest conditional/independent ratios (the
      widest-confidence-interval proxy — these dominate scheduling
      decisions and drift hardest, Fig. 4), plus the divergence between
      the model-predicted error of the canary schedules and their
      replayed (noisy-execution) error on today's hardware;
    - {e Opt-3 incremental re-characterization}
      ({!Qcx_characterization.Policy.characterize_incremental})
      re-measures only the flagged pairs and merges into the last-good
      snapshot — a fraction of the full-pass trial budget;
    - every candidate epoch is {e canary-gated}: compiled against a
      fixed canary circuit suite and compared to the incumbent epoch
      via replayed error before it may touch the registry.  A candidate
      that lost too many entries (truncated merge) or inflates canary
      error beyond the gate is rejected and the incumbent keeps
      serving;
    - promotion is {e crash-consistent} when a calibration directory is
      configured: the candidate snapshot lands on disk first (atomic
      tmp+rename), then a single atomic ring-pointer rename commits it.
      A crash at any instant leaves the pointer on exactly the old or
      exactly the new epoch — {!recover} rebuilds the registry (current
      epoch {e and} rollback ring) from the directory;
    - {e rollback}: retired epochs stay in a bounded ring
      ({!Registry.rollback}); if post-promotion health shows the canary
      verdict was a flake, the calibrator rolls back automatically, and
      the [rollback] wire op lets an operator do it by hand.  A rolled
      back epoch is restored bit-identically (the exact retired
      [Crosstalk.t] is reinstalled).

    Faults are injected through {!set_fault} (see
    [Qcx_faults.Service_faults]); all decisions are driven by seeded
    RNG keyed on (seed, device, day), so campaigns are deterministic at
    every [jobs] value. *)

module Device = Qcx_device.Device
module Crosstalk = Qcx_device.Crosstalk
module Topology = Qcx_device.Topology
module Rb = Qcx_characterization.Rb
module Policy = Qcx_characterization.Policy

(** Calibration-specific fault injections. *)
type fault =
  | Drift_spike of float
      (** today's hardware conditional rates are scaled by this factor
          on top of ordinary drift (a cosmic-ray-style excursion) *)
  | Truncate_merge of float
      (** this fraction of the merged candidate's entries is lost
          (torn write between characterization and merge) *)
  | Canary_flake
      (** the canary verdict is inverted — a bad epoch can slip
          through (to be caught by post-promotion health + rollback),
          a good one can be spuriously rejected *)
  | Crash_before_commit
      (** the process dies after persisting the candidate snapshot but
          before the ring-pointer commit *)
  | Crash_after_commit
      (** the process dies right after the ring-pointer commit, before
          the in-memory registry learns about it *)

val fault_name : fault -> string

type config = {
  threshold : float;  (** high-crosstalk flagging threshold (paper: 3) *)
  rb_params : Rb.params;  (** SRB scale for re-characterization *)
  spot_params : Rb.params;  (** cheaper SRB scale for drift spot-checks *)
  retry : Policy.retry;
  spot_checks : int;  (** widest-ratio pairs spot-checked per cycle *)
  drift_tolerance : float;
      (** relative deviation of a spot-checked conditional rate that
          flags the pair as drifted *)
  divergence_tolerance : float;
      (** relative predicted-vs-replayed canary error divergence that
          flags the epoch as drifted *)
  canary_inflation : float;
      (** gate: candidate replayed canary error must be within this
          factor of the incumbent's *)
  min_entry_fraction : float;
      (** truncated-merge guard: candidate must keep at least this
          fraction of the incumbent's entry count *)
  omega : float;  (** scheduler omega for canary compiles *)
  node_budget : int;  (** solver budget for canary compiles *)
  jobs : int;
  seed : int;
}

val default_config : config

type drift_report = {
  spot_checked : int;
  flagged : ((Topology.edge * Topology.edge) * float) list;
      (** spot-checked pairs whose deviation exceeded the tolerance *)
  divergence : float;  (** worst relative predicted-vs-replayed error *)
  drifted : bool;
  spot_executions : int;  (** executions charged to the spot checks *)
}

type canary_report = {
  circuits : int;
  candidate_error : float;  (** mean replayed canary error, candidate *)
  incumbent_error : float;  (** mean replayed canary error, incumbent *)
  inflation : float;  (** candidate / incumbent *)
  real_pass : bool;  (** the gate's true verdict *)
  flaked : bool;  (** a [Canary_flake] inverted it *)
  passed : bool;  (** the verdict acted on *)
}

type crash_stage = Before_commit | After_commit

val crash_stage_name : crash_stage -> string

(** What one calibration cycle did. *)
type action =
  | No_drift of drift_report
  | Rejected of {
      drift : drift_report;
      candidate_epoch : string;
      reason : string;  (** ["truncated-merge-guard"] or ["canary-failed"] *)
      canary : canary_report option;  (** [None] when guarded before the canary *)
      cost : Policy.incremental_outcome option;
    }
  | Promoted of {
      drift : drift_report;
      canary : canary_report;
      old_epoch : string;
      new_epoch : string;
      mode : Policy.incremental_mode;
      run_executions : int;
      full_executions : int;
      cost_fraction : float;
    }
  | Rolled_back of {
      drift : drift_report;
      canary : canary_report;
      bad_epoch : string;  (** the epoch that was promoted and revoked *)
      restored_epoch : string;
      mode : Policy.incremental_mode;
      cost_fraction : float;
    }
  | Crashed of { stage : crash_stage; candidate_epoch : string }

val action_name : action -> string
val action_to_json : action -> Qcx_persist.Json.t

type t

val create :
  ?config:config ->
  ?dir:string ->
  ?hardware:(Device.t -> day:int -> Device.t) ->
  Registry.t ->
  t
(** [dir] is the calibration directory backing the crash-consistent
    epoch ring; without it the ring lives in memory only (crash faults
    then mutate nothing).  [hardware] maps the registered device model
    to the device measurements actually run against on a given day —
    default [Qcx_device.Drift.on_day], the seeded hardware
    simulation. *)

val config : t -> config
val dir : t -> string option

val set_fault : t -> (id:string -> day:int -> fault list) option -> unit
(** Install (or clear) the per-cycle fault hook. *)

val calibrate :
  ?force:bool -> ?full:bool -> ?extra_faults:fault list -> t -> id:string -> day:int ->
  (action, string) result
(** Run one calibration cycle for device [id] on logical day [day]:
    detect drift (spot checks + canary divergence); when drifted (or
    [force]d), characterize incrementally, canary-gate the candidate,
    and promote / reject / roll back as described above.  [full]
    forces a full re-characterization instead of the Opt-3 incremental
    pass (the periodic full pass, and the bench's cost baseline).
    [extra_faults] are injected on top of the {!set_fault} hook (the
    [poison] knob of the calibrate wire op).  [Error _] only for
    unknown ids; everything else is an [action]. *)

val rollback : t -> id:string -> day:int -> (Registry.entry, string) result
(** Operator-initiated rollback to the newest retired epoch; persists
    the new ring pointer when a directory is configured.  [Error _]
    when the ring is empty or the id is unknown. *)

type recovered = { id : string; epoch : string; ring : int }

val recover : t -> recovered list
(** Rebuild registry entries (current epoch + rollback ring) from the
    calibration directory's ring pointers, e.g. after a restart.  Ids
    without a pointer file, and unreadable/corrupt epoch snapshots,
    are skipped — the registry keeps whatever it was registered
    with. *)

val canary_suite : Device.t -> Qcx_circuit.Circuit.t list
(** The fixed canary circuits for a device: CNOT stress layers over a
    maximal disjoint edge set plus SWAP transports between distant
    qubit pairs — deterministic for a given device, exposed for tests
    and the drift bench. *)
