(** Bounded, content-addressed schedule cache (LRU eviction).

    Keys are hex digests produced by the service from the canonical
    circuit form × device epoch × scheduler params (see
    {!Service.cache_key}); values are the compiled schedule and its
    solver stats.  The cache holds the schedules themselves, so a hit
    serves the exact value a cold compile produced — bit-identical by
    construction.

    Hit/miss/eviction counters are monotonic over the cache lifetime
    (a warm start does not reset them to the persisted run's values).
    Entries survive restarts through {!save}/{!load}, which round-trip
    through the checksummed {!Qcx_persist.Store} envelope; a damaged
    warm-start file is an [Error], never a crash or a poisoned
    cache. *)

type entry = {
  schedule : Qcx_circuit.Schedule.t;
  stats : Qcx_scheduler.Xtalk_sched.stats;
  epoch : string;
      (** calibration epoch the schedule was compiled against; [""]
          for entries persisted before epochs were recorded (these are
          never purged as stale, only LRU-evicted) *)
}

type t

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  insertions : int;
  purged : int;  (** entries dropped by {!purge} (retired epochs) *)
  size : int;
  capacity : int;
}

val create : capacity:int -> t
(** [capacity] must be positive. *)

val find : t -> string -> entry option
(** Bumps the entry to most-recently-used and counts a hit; absence
    counts a miss. *)

val mem : t -> string -> bool
(** Presence test with no recency bump and no counter update. *)

val add : t -> string -> entry -> unit
(** Insert (or overwrite) and mark most-recently-used, evicting the
    least-recently-used entries beyond capacity. *)

val purge : t -> drop:(string -> entry -> bool) -> int
(** Remove every entry for which [drop key entry] holds, without
    touching hit/miss/eviction counters (the [purged] counter
    accumulates instead).  Returns how many entries were removed.
    The service uses this to drop entries keyed on retired epochs
    after a bump/promotion — they can never hit (the epoch is hashed
    into the key) but would squat eviction slots. *)

val counters : t -> counters

val keys_newest_first : t -> string list
(** Recency order, most recent first — exposed for eviction tests. *)

val entry_to_json : entry -> Qcx_persist.Json.t
(** [{"stats": ..., "schedule": ...}] — the same per-entry shape the
    cache snapshot uses, shared with the write-ahead {!Journal}. *)

val entry_of_json : Qcx_persist.Json.t -> (entry, string) result
(** Accepts any object carrying [stats] and [schedule] fields (extra
    fields are ignored, so journal records parse too). *)

val to_json : t -> Qcx_persist.Json.t

val of_json : capacity:int -> Qcx_persist.Json.t -> (t, string) result
(** Restore entries (recency preserved, counters zeroed).  Entries
    beyond [capacity] are evicted oldest-first on load. *)

val save : path:string -> t -> (unit, string) result
(** Atomic write through the v2 store envelope. *)

val load : capacity:int -> path:string -> (t, string) result
