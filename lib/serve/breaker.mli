(** Per-device circuit breaker (DESIGN.md §9).

    A device whose compiles keep failing — or keep degrading below an
    acceptable ladder rung — stops receiving work for a cooloff
    period, shedding load from a bad snapshot or a hostile workload
    instead of burning solver budget on it.  Standard three-state
    machine:

    - [Closed]: requests flow.  Each failure bumps a consecutive
      counter; reaching [threshold] trips the breaker.
    - [Open]: requests are rejected with a typed [breaker_open]
      response until [cooloff_seconds] elapse, then the next request
      becomes a half-open probe.
    - [Half_open]: exactly one probe is admitted.  Success closes the
      breaker; failure re-opens it and restarts the cooloff.

    Time is injected by the caller ([~now]), so tests drive the
    machine with a fake clock.  Not thread-safe by itself — the
    service consults breakers from the serial staging phase only. *)

module Xtalk_sched = Qcx_scheduler.Xtalk_sched
module Json = Qcx_persist.Json

type state = Closed | Open | Half_open

type config = {
  threshold : int;  (** consecutive failures that trip the breaker *)
  cooloff_seconds : float;  (** open-state dwell before a probe *)
  min_rung : Xtalk_sched.rung;
      (** worst acceptable ladder rung; a compile served from below it
          counts as a failure even though it produced a schedule *)
}

val default_config : config
(** threshold 5, cooloff 30 s, min_rung [Parallel] (i.e. any rung is
    acceptable — only hard failures count). *)

type t

val create : config -> t
(** Raises [Invalid_argument] on a non-positive threshold/cooloff. *)

val state : t -> state
val config : t -> config
val state_name : state -> string

val rung_acceptable : t -> Xtalk_sched.rung -> bool
(** Whether a compile served from this rung counts as a success. *)

type verdict =
  | Admit  (** closed: serve normally *)
  | Probe  (** half-open: serve, and report the outcome *)
  | Reject of float  (** open: refuse; retry after this many seconds *)

val check : t -> now:float -> verdict
(** Consult before compiling.  Transitions [Open] to [Half_open] when
    the cooloff has elapsed.  Every [Admit]/[Probe] must be paired
    with exactly one {!record_success} or {!record_failure}. *)

val record_success : t -> now:float -> unit
(** Closes the breaker and zeroes the consecutive-failure counter. *)

val record_failure : t -> now:float -> unit
(** Counts toward the trip threshold; from [Half_open] it re-opens
    immediately. *)

val to_json : t -> Json.t
(** State + counters, embedded in stats/health responses. *)

val trips : t -> int
val rejections : t -> int
