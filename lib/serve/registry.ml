module Device = Qcx_device.Device
module Crosstalk = Qcx_device.Crosstalk
module Json = Qcx_persist.Json
module Store = Qcx_persist.Store

type entry = {
  device : Device.t;
  xtalk : Crosstalk.t;
  epoch : string;
  source : string option;
  paths : string list;
  quarantined : (string * string) list;
  bumps : int;
  ring : (string * Crosstalk.t) list;
  promoted_day : int option;
  last_warning : string option;
}

(* Retired epochs kept per device.  Deep enough to survive a couple of
   bad promotions in a row; the calibration dir GC follows the same
   bound. *)
let ring_limit = 4

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

type t = { table : (string, entry) Hashtbl.t; mutable order : string list (* reversed *) }

let create () = { table = Hashtbl.create 8; order = [] }

let epoch_of_xtalk xtalk =
  Digest.to_hex (Digest.string (Json.to_string (Store.crosstalk_to_json xtalk)))

let register t ~id entry =
  if not (Hashtbl.mem t.table id) then t.order <- id :: t.order;
  Hashtbl.replace t.table id entry;
  entry

let add_static t ~id ~device ~xtalk =
  register t ~id
    {
      device;
      xtalk;
      epoch = epoch_of_xtalk xtalk;
      source = None;
      paths = [];
      quarantined = [];
      bumps = 0;
      ring = [];
      promoted_day = None;
      last_warning = None;
    }

let load_entry ~device ~paths ~quarantined ~bumps =
  let report =
    Store.load_crosstalk_resilient ~topology:(Device.topology device) ~paths ()
  in
  let xtalk = Option.value report.Store.data ~default:Crosstalk.empty in
  {
    device;
    xtalk;
    epoch = epoch_of_xtalk xtalk;
    source = report.Store.source;
    paths;
    quarantined = quarantined @ report.Store.quarantined;
    bumps;
    ring = [];
    promoted_day = None;
    last_warning = None;
  }

let add_from_paths t ~id ~device ~paths =
  register t ~id (load_entry ~device ~paths ~quarantined:[] ~bumps:0)

let find t id = Hashtbl.find_opt t.table id

let missing id = Error ("unknown device " ^ id)

let set_xtalk t ~id xtalk =
  match find t id with
  | None -> missing id
  | Some entry ->
    let epoch = epoch_of_xtalk xtalk in
    let bumps = if epoch = entry.epoch then entry.bumps else entry.bumps + 1 in
    Ok (register t ~id { entry with xtalk; epoch; source = None; bumps })

let refresh t ~id =
  match find t id with
  | None -> missing id
  | Some entry ->
    if entry.paths = [] then Ok (entry, None)
    else begin
      let report =
        Store.load_crosstalk_resilient ~topology:(Device.topology entry.device)
          ~paths:entry.paths ()
      in
      match report.Store.data with
      | None ->
        (* Every snapshot on disk is damaged.  Regressing to empty
           crosstalk here would silently advance the epoch and orphan
           every cached schedule, so keep serving the last good data
           and surface the problem instead. *)
        let warning = "no usable snapshot; keeping previous epoch and data" in
        let kept =
          register t ~id
            {
              entry with
              quarantined = entry.quarantined @ report.Store.quarantined;
              last_warning = Some warning;
            }
        in
        Ok (kept, Some warning)
      | Some xtalk ->
        let epoch = epoch_of_xtalk xtalk in
        let bumps = if epoch = entry.epoch then entry.bumps else entry.bumps + 1 in
        let ring =
          if epoch = entry.epoch then entry.ring
          else take ring_limit ((entry.epoch, entry.xtalk) :: entry.ring)
        in
        let refreshed =
          register t ~id
            {
              entry with
              xtalk;
              epoch;
              bumps;
              ring;
              source = report.Store.source;
              quarantined = entry.quarantined @ report.Store.quarantined;
              last_warning = None;
            }
        in
        Ok (refreshed, None)
    end

let promote ?day t ~id xtalk =
  match find t id with
  | None -> missing id
  | Some entry ->
    let epoch = epoch_of_xtalk xtalk in
    if epoch = entry.epoch then
      (* Re-promoting the incumbent: refresh the promotion day but do
         not push a self-copy onto the ring. *)
      Ok
        (register t ~id
           { entry with promoted_day = (match day with None -> entry.promoted_day | d -> d) })
    else
      Ok
        (register t ~id
           {
             entry with
             xtalk;
             epoch;
             source = None;
             bumps = entry.bumps + 1;
             ring = take ring_limit ((entry.epoch, entry.xtalk) :: entry.ring);
             promoted_day = (match day with None -> entry.promoted_day | d -> d);
             last_warning = None;
           })

let rollback ?day t ~id =
  match find t id with
  | None -> missing id
  | Some entry -> (
    match entry.ring with
    | [] -> Error ("no retired epoch to roll back to for " ^ id)
    | (epoch, xtalk) :: ring ->
      Ok
        (register t ~id
           {
             entry with
             xtalk;
             epoch;
             source = None;
             bumps = entry.bumps + 1;
             ring;
             promoted_day = (match day with None -> entry.promoted_day | d -> d);
           }))

let restore ?day t ~id ~ring xtalk =
  match find t id with
  | None -> missing id
  | Some entry ->
    let epoch = epoch_of_xtalk xtalk in
    let bumps = if epoch = entry.epoch then entry.bumps else entry.bumps + 1 in
    Ok
      (register t ~id
         {
           entry with
           xtalk;
           epoch;
           source = None;
           bumps;
           ring = take ring_limit ring;
           promoted_day = (match day with None -> entry.promoted_day | d -> d);
         })

let ids t = List.rev t.order

let to_json t =
  Json.Array
    (List.map
       (fun id ->
         let e = Hashtbl.find t.table id in
         Json.Object
           [
             ("id", Json.String id);
             ("device", Json.String (Device.name e.device));
             ("nqubits", Json.Number (float_of_int (Device.nqubits e.device)));
             ("epoch", Json.String e.epoch);
             ( "source",
               match e.source with None -> Json.Null | Some p -> Json.String p );
             ("bumps", Json.Number (float_of_int e.bumps));
             ("quarantined", Json.Number (float_of_int (List.length e.quarantined)));
             ( "xtalk_entries",
               Json.Number (float_of_int (List.length (Crosstalk.entries e.xtalk))) );
             ("ring", Json.Array (List.map (fun (ep, _) -> Json.String ep) e.ring));
             ( "promoted_day",
               match e.promoted_day with None -> Json.Null | Some d -> Json.Number (float_of_int d)
             );
             ( "warning",
               match e.last_warning with None -> Json.Null | Some w -> Json.String w );
           ])
       (ids t))
