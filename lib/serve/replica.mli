(** Peer replication of the write-ahead journal (DESIGN.md §14).

    Each fleet shard streams its journal appends to its ring peer's
    crash domain as self-checksummed NDJSON lines — {!Journal}'s
    crc-over-bytes-as-written discipline plus a shard tag (a replica
    file cannot be replayed into the wrong shard) and a strictly
    increasing sequence number (reordered or spliced files stop the
    replay; a reopened sender continues the stream).  A batch is
    acknowledged only after write + fsync; un-acked entries are the
    replication lag surfaced in the [health] op.  Failed flushes
    (partitioned peer, full disk) keep the batch pending and every
    later append retries, so a healed partition drains the lag
    automatically. *)

(** Injected sender faults for the chaos harness (via {!set_fault}). *)
type fault =
  | Partition  (** the flush fails; the batch stays pending *)
  | Slow_ack of float  (** the flush sleeps this long before acking *)

type sender

val open_sender :
  path:string -> shard:int -> ?fsync:bool -> ?batch:int -> unit -> (sender, string) result
(** Open (or create) the replica file for [shard], truncating any torn
    tail back to the valid prefix, and continue sequence numbering
    after the last valid record.  [batch] (default 1, i.e. synchronous
    replication) is the number of appends buffered before an automatic
    {!flush}. *)

val append : sender -> Journal.record -> unit
(** Buffer one record (never fails, never blocks on a partition);
    auto-flushes when the pending batch reaches the batch bound.  A
    failing flush leaves the batch pending — visible as lag. *)

val flush : sender -> (int, string) result
(** Write + fsync every pending record; the ack.  Returns how many
    records were acknowledged (0 when nothing was pending). *)

val lag : sender -> int * int
(** Replication lag as [(entries, bytes)] — appended but not yet
    acknowledged. *)

val peak_lag : sender -> int * int
(** High-water marks of {!lag} over the sender's lifetime — under
    pipelined load the instantaneous lag is usually 0 by the time
    [health] samples it, while the peak shows how deep the bursts ran
    (also surfaced as [peak_lag_entries]/[peak_lag_bytes] in
    {!to_json}). *)

val path : sender -> string
val appended : sender -> int
val acked : sender -> int
val failed_flushes : sender -> int

val set_fault : sender -> (nth:int -> fault option) option -> unit
(** Chaos hook, consulted once per flush attempt with a monotone
    attempt index. *)

val to_json : sender -> Qcx_persist.Json.t
(** Counters + lag, embedded in the shard's health payload. *)

val close : sender -> unit
(** Close the file descriptor without flushing (kill -9 semantics are
    the caller's choice: call {!flush} first for a graceful close). *)

type replay = {
  records : (int * Journal.record) list;  (** (seq, record), valid prefix *)
  read : int;
  dropped : int;  (** lines abandoned after the first damaged one *)
  torn : bool;
  valid_bytes : int;  (** byte length of the valid prefix *)
}

val replay : path:string -> shard:int -> replay
(** Valid-prefix replay of a replica file: stops at the first line
    with a bad checksum, a wrong shard tag, or a non-increasing
    sequence number.  A missing file is an empty replay. *)

val line_of_record : shard:int -> seq:int -> Journal.record -> string
(** The encoded line (exposed for tests). *)

val record_of_line : string -> (int * int * Journal.record, string) result
(** Parse + verify one line, returning (shard, seq, record). *)
