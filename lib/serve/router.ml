module Json = Qcx_persist.Json
module Rng = Qcx_util.Rng
module Xtalk_sched = Qcx_scheduler.Xtalk_sched

(* Fleet front door (DESIGN.md §14): maps compile requests onto shards
   via the consistent-hash ring, fails over around dead shards with a
   bounded, deadline-aware retry, and aggregates the fan-out ops
   (health/stats over every shard, epoch changes broadcast to all).

   Failover state machine, per shard:

     Live --(send/ack failure trips the breaker)--> Degraded
     Degraded --(cooloff elapses, probe succeeds)--> Live
     any --(set_rebuilding true)--> Rebuilding (not routable)
     Rebuilding --(set_rebuilding false)--> Live/Degraded by breaker

   Degraded shards stay routable — the open breaker short-circuits the
   attempt and the request goes straight to its ring successor, which
   is what bounds tail latency during an outage.  Rebuilding shards
   are taken off the ring entirely so a warming cache never serves. *)

type transport = { send : shard:int -> string list -> (string list, string) result }

type config = {
  vnodes : int;
  retry_backoff : float;  (** base for the jittered pre-retry sleep *)
  jitter_seed : int;
  default_budget : float;  (** retry budget when the request has no deadline *)
  breaker : Breaker.config;
}

let default_config =
  {
    vnodes = 64;
    retry_backoff = 0.02;
    jitter_seed = 0;
    default_budget = 5.0;
    (* threshold 1: one connect/ack failure marks the arc degraded —
       at fleet scale a dead peer fails every request it sees, and the
       short cooloff turns re-probing into the health check. *)
    breaker = { Breaker.default_config with Breaker.threshold = 1; cooloff_seconds = 0.5 };
  }

type shard_state = Live | Degraded | Rebuilding

let state_name = function Live -> "live" | Degraded -> "degraded" | Rebuilding -> "rebuilding"

type t = {
  config : config;
  nshards : int;
  ring : Ring.t;
  transport : transport;
  breakers : Breaker.t array;
  rebuilding : bool array;
  clock : unit -> float;
  width : string -> int option;
  rng : Rng.t;
  mutable routed : int;
  mutable failovers : int;
  mutable retries : int;
  mutable unavailable : int;
  mutable last_failover_at : float option;
}

let create ?(config = default_config) ?(clock = Unix.gettimeofday) ?(width = fun _ -> None)
    ~nshards ~transport () =
  if nshards <= 0 then invalid_arg "Router.create: nshards must be positive";
  {
    config;
    nshards;
    ring = Ring.create ~vnodes:config.vnodes ~nshards ();
    transport;
    breakers = Array.init nshards (fun _ -> Breaker.create config.breaker);
    rebuilding = Array.make nshards false;
    clock;
    width;
    rng = Rng.create (Hashtbl.hash (config.jitter_seed, "qcx-router-jitter"));
    routed = 0;
    failovers = 0;
    retries = 0;
    unavailable = 0;
    last_failover_at = None;
  }

let nshards t = t.nshards
let ring t = t.ring
let breaker t s = t.breakers.(s)
let routable t s = not t.rebuilding.(s)

let shard_state t s =
  if t.rebuilding.(s) then Rebuilding
  else match Breaker.state t.breakers.(s) with Breaker.Closed -> Live | _ -> Degraded

let set_rebuilding t s v = t.rebuilding.(s) <- v
let reset_breaker t s = t.breakers.(s) <- Breaker.create t.config.breaker

(* ---- routing key ----

   A pure function of (device, scheduler knobs, canonical circuit) —
   deliberately a superset-agnostic projection of the cache key: the
   epoch is excluded (an epoch bump must not migrate keys between
   shards and wipe the fleet's locality) and so is the deadline (a
   client tightening its budget should still hit the shard holding the
   entry...).  Requests with equal cache keys always route alike;
   requests with different cache keys may share a shard, which only
   costs capacity, never correctness. *)

let knob_string (p : Wire.params) =
  Printf.sprintf "omega=%h threshold=%h ladder=%s window=%s mitig=%s" p.Wire.omega
    p.Wire.threshold
    (Xtalk_sched.rung_name p.Wire.ladder_start)
    (match p.Wire.window with None -> "auto" | Some w -> string_of_int w)
    (Wire.mitigation_name p.Wire.mitigation)

let routing_key t ~device ~params circuit =
  let canon =
    match
      match t.width device with
      | Some n -> Canon.serialize (Canon.normalize ~nqubits:n circuit)
      | None -> Canon.serialize (Canon.normalize circuit)
    with
    | s -> s
    | exception Invalid_argument _ -> "invalid-circuit"
  in
  String.concat "\n" [ "qcx-route-key-v1"; device; knob_string params; canon ]

(* ---- wire plumbing ---- *)

let render doc = Json.to_string ~indent:false doc

let router_json t =
  Json.Object
    [
      ("nshards", Json.Number (float_of_int t.nshards));
      ("routed", Json.Number (float_of_int t.routed));
      ("failovers", Json.Number (float_of_int t.failovers));
      ("retries", Json.Number (float_of_int t.retries));
      ("unavailable", Json.Number (float_of_int t.unavailable));
      ( "last_failover_at",
        match t.last_failover_at with None -> Json.Null | Some x -> Json.Number x );
      ("ring_points", Json.Number (float_of_int (Array.length (Ring.points t.ring))));
    ]

(* One guarded attempt against one shard.  The breaker is both the
   gate (Reject short-circuits without touching the socket) and the
   detector (every outcome is recorded, so connect/ack timeouts feed
   straight into the failover state machine). *)
let attempt t ~shard lines =
  let b = t.breakers.(shard) in
  match Breaker.check b ~now:(t.clock ()) with
  | Breaker.Reject _ -> Error "breaker open"
  | Breaker.Admit | Breaker.Probe -> (
    match t.transport.send ~shard lines with
    | Ok resp when List.length resp = List.length lines ->
      Breaker.record_success b ~now:(t.clock ());
      Ok resp
    | Ok _ ->
      Breaker.record_failure b ~now:(t.clock ());
      Error "short response from shard"
    | Error e ->
      Breaker.record_failure b ~now:(t.clock ());
      Error e)

let note_failover t =
  t.failovers <- t.failovers + 1;
  t.last_failover_at <- Some (t.clock ())

let mark_unavailable t results idx ~id ~attempts =
  t.unavailable <- t.unavailable + 1;
  results.(idx) <- Some (render (Wire.unavailable_response ~id:(Some id) ~attempts))

let group_by_shard pick items =
  let tbl = Hashtbl.create 8 in
  let missing = ref [] in
  List.iter
    (fun item ->
      match pick item with
      | None -> missing := item :: !missing
      | Some s ->
        let prev = try Hashtbl.find tbl s with Not_found -> [] in
        Hashtbl.replace tbl s (item :: prev))
    items;
  let groups = Hashtbl.fold (fun s v acc -> (s, List.rev v) :: acc) tbl [] in
  (List.sort compare groups, List.rev !missing)

(* items: (idx, id, line, key, deadline).  Primary attempt on the ring
   owner, then — after a jittered backoff bounded by the remaining
   deadline budget — at most one hedged retry on each key's ring
   successor.  Exhaustion is the typed [unavailable], never a hang. *)
let route_compiles t results items =
  if items <> [] then begin
    let t0 = t.clock () in
    let budget group =
      List.fold_left
        (fun acc (_, _, _, _, deadline) ->
          match deadline with Some d -> Float.min acc (Float.max d 0.1) | None -> acc)
        t.config.default_budget group
    in
    let fill group resp =
      List.iter2 (fun (idx, _, _, _, _) line -> results.(idx) <- Some line) group resp
    in
    let owner_of (_, _, _, key, _) = Ring.lookup t.ring ~live:(routable t) key in
    let groups, orphans = group_by_shard owner_of items in
    List.iter
      (fun (idx, id, _, _, _) -> mark_unavailable t results idx ~id ~attempts:0)
      orphans;
    List.iter
      (fun (owner, group) ->
        t.routed <- t.routed + List.length group;
        match attempt t ~shard:owner (List.map (fun (_, _, line, _, _) -> line) group) with
        | Ok resp -> fill group resp
        | Error _ ->
          note_failover t;
          let remaining = budget group -. (t.clock () -. t0) in
          let backoff =
            Float.min (t.config.retry_backoff *. (0.5 +. Rng.unit_float t.rng)) remaining
          in
          if backoff > 0.0 then Unix.sleepf backoff;
          let successor_of (_, _, _, key, _) =
            Ring.lookup t.ring ~live:(fun s -> routable t s && s <> owner) key
          in
          let retry_groups, dead = group_by_shard successor_of group in
          List.iter
            (fun (idx, id, _, _, _) -> mark_unavailable t results idx ~id ~attempts:1)
            dead;
          List.iter
            (fun (shard, g) ->
              t.retries <- t.retries + 1;
              match attempt t ~shard (List.map (fun (_, _, line, _, _) -> line) g) with
              | Ok resp -> fill g resp
              | Error _ ->
                List.iter
                  (fun (idx, id, _, _, _) -> mark_unavailable t results idx ~id ~attempts:2)
                  g)
            retry_groups)
      groups
  end

(* ---- fan-out ops ---- *)

let probe_line req = render (Wire.request_to_json req)

(* Epoch changes must land on every shard or the fleet's cache keys
   drift apart; applied best-effort to each routable shard, first
   answer wins, the fan-out count rides along as [fleet_applied]. *)
let broadcast_apply t ~id line =
  let applied = ref 0 and first = ref None in
  for s = 0 to t.nshards - 1 do
    if routable t s then
      match attempt t ~shard:s [ line ] with
      | Ok [ resp ] ->
        incr applied;
        if !first = None then first := Some resp
      | Ok _ | Error _ -> ()
  done;
  match !first with
  | Some resp -> (
    match Json.of_string resp with
    | Ok (Json.Object fields) ->
      render (Json.Object (fields @ [ ("fleet_applied", Json.Number (float_of_int !applied)) ]))
    | _ -> resp)
  | None ->
    t.unavailable <- t.unavailable + 1;
    render (Wire.unavailable_response ~id:(Some id) ~attempts:t.nshards)

let anycast t ~id line =
  let rec go s =
    if s >= t.nshards then begin
      t.unavailable <- t.unavailable + 1;
      render (Wire.unavailable_response ~id:(Some id) ~attempts:t.nshards)
    end
    else if not (routable t s) then go (s + 1)
    else match attempt t ~shard:s [ line ] with Ok [ resp ] -> resp | _ -> go (s + 1)
  in
  go 0

(* The aggregated health/stats op doubles as the active health check:
   every shard is probed and the probe outcome feeds its breaker, so a
   monitoring loop hitting [health] keeps the failure detector warm
   and closes breakers of recovered shards. *)
let aggregate t ~id ~field =
  let probe =
    probe_line
      (if field = "health" then Wire.Health { id = "router-probe" }
       else Wire.Stats { id = "router-probe" })
  in
  let shard_json s =
    let payload, reachable =
      match attempt t ~shard:s [ probe ] with
      | Ok [ resp ] -> (
        match Json.of_string resp with
        | Ok doc -> (Option.value (Json.member field doc) ~default:Json.Null, true)
        | Error _ -> (Json.Null, true))
      | Ok _ | Error _ -> (Json.Null, false)
    in
    Json.Object
      [
        ("shard", Json.Number (float_of_int s));
        ("state", Json.String (state_name (shard_state t s)));
        ("reachable", Json.Bool reachable);
        ("breaker", Breaker.to_json t.breakers.(s));
        (field, payload);
      ]
  in
  let shards = List.init t.nshards shard_json in
  render
    (Json.Object
       [
         ("id", Json.String id);
         ("status", Json.String "ok");
         ( field,
           Json.Object
             [
               ("role", Json.String "router");
               ("router", router_json t);
               ("shards", Json.Array shards);
             ] );
       ])

(* ---- the batch entry point ---- *)

type slot =
  | Direct of string
  | Compile_slot of { id : string; line : string; key : string; deadline : float option }
  | Cast of { line : string; req : Wire.request }

let classify t ~max_frame frame =
  match frame with
  | Server.Oversize -> Direct (render (Wire.frame_too_large_response ~id:None ~limit:max_frame))
  | Server.Line line -> (
    if String.length line > max_frame then
      Direct (render (Wire.frame_too_large_response ~id:None ~limit:max_frame))
    else
      match Json.of_string line with
      | Error e -> Direct (render (Wire.error_response ~id:None ("bad JSON: " ^ e)))
      | Ok doc -> (
        match Wire.request_of_json doc with
        | Error e -> Direct (render (Wire.error_response ~id:None e))
        | Ok req -> (
          match req with
          | Wire.Compile { id; device; circuit; params } ->
            Compile_slot { id; line; key = routing_key t ~device ~params circuit;
                           deadline = params.Wire.deadline }
          | Wire.Ping { id } ->
            Direct
              (render
                 (Json.Object
                    [
                      ("id", Json.String id);
                      ("status", Json.String "ok");
                      ("pong", Json.Bool true);
                    ]))
          | req -> Cast { line; req })))

let handle_frames ?(max_frame = Wire.default_max_frame) t frames =
  let frames =
    List.filter (function Server.Line l -> String.trim l <> "" | Server.Oversize -> true) frames
  in
  let slots = Array.of_list (List.map (classify t ~max_frame) frames) in
  let results = Array.make (Array.length slots) None in
  Array.iteri (fun i -> function Direct line -> results.(i) <- Some line | _ -> ()) slots;
  (* Compiles first (one routed batch), then the fan-out ops in frame
     order — mirroring Service.handle_batch, where non-compile ops
     pipelined behind compiles observe the batch's effects. *)
  let compiles =
    Array.to_list slots
    |> List.mapi (fun i s -> (i, s))
    |> List.filter_map (fun (i, s) ->
           match s with
           | Compile_slot { id; line; key; deadline } -> Some (i, id, line, key, deadline)
           | _ -> None)
  in
  route_compiles t results compiles;
  let stop = ref false in
  Array.iteri
    (fun i slot ->
      match slot with
      | Direct _ | Compile_slot _ -> ()
      | Cast { line; req } ->
        let id = Wire.request_id req in
        let resp =
          match req with
          | Wire.Health _ -> aggregate t ~id ~field:"health"
          | Wire.Stats _ -> aggregate t ~id ~field:"stats"
          | Wire.Bump _ | Wire.Calibrate _ | Wire.Rollback _ -> broadcast_apply t ~id line
          | Wire.Devices _ | Wire.Epoch_status _ -> anycast t ~id line
          | Wire.Shutdown _ ->
            stop := true;
            for s = 0 to t.nshards - 1 do
              ignore (t.transport.send ~shard:s [ line ])
            done;
            render
              (Json.Object
                 [
                   ("id", Json.String id);
                   ("status", Json.String "ok");
                   ("stopping", Json.Bool true);
                 ])
          | Wire.Compile _ | Wire.Ping _ -> render (Wire.internal_error_response ~id:(Some id) "unroutable op")
        in
        results.(i) <- Some resp)
    slots;
  let out =
    Array.to_list
      (Array.map
         (function
           | Some line -> line
           | None -> render (Wire.internal_error_response ~id:None "internal: missing response"))
         results)
  in
  (out, !stop)

let handle_lines ?max_frame t lines =
  handle_frames ?max_frame t (List.map (fun l -> Server.Line l) lines)

(* ---- socket transport ----

   One lazily-connected Unix-domain connection per shard, reconnected
   on demand.  Failures are fast and typed: a missing socket file or a
   refused connect returns [Error] immediately (the shard is down —
   that's the router's cue to fail over), and a read that exceeds
   [timeout] abandons the connection.  Any error closes the
   connection so the next attempt starts clean. *)

let socket_transport ?(timeout = 10.0) ~socket_for () =
  let conns : (int, Unix.file_descr * Buffer.t) Hashtbl.t = Hashtbl.create 8 in
  let close_conn shard =
    match Hashtbl.find_opt conns shard with
    | Some (fd, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Hashtbl.remove conns shard
    | None -> ()
  in
  let connect shard =
    match Hashtbl.find_opt conns shard with
    | Some c -> Ok c
    | None -> (
      let path = socket_for shard in
      match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
      | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
      | fd -> (
        match Unix.connect fd (Unix.ADDR_UNIX path) with
        | () ->
          let c = (fd, Buffer.create 4096) in
          Hashtbl.replace conns shard c;
          Ok c
        | exception Unix.Unix_error (err, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Unix.error_message err)))
  in
  let write_all fd s =
    let b = Bytes.of_string s in
    let n = Bytes.length b in
    let rec go off =
      if off < n then
        match Unix.write fd b off (n - off) with
        | w -> go (off + w)
        | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
      else Ok ()
    in
    go 0
  in
  let read_line fd buf ~deadline =
    let chunk = Bytes.create 4096 in
    let rec go () =
      let s = Buffer.contents buf in
      match String.index_opt s '\n' with
      | Some i ->
        Buffer.clear buf;
        Buffer.add_string buf (String.sub s (i + 1) (String.length s - i - 1));
        Ok (String.sub s 0 i)
      | None ->
        let now = Unix.gettimeofday () in
        if now >= deadline then Error "shard response timeout"
        else (
          match Unix.select [ fd ] [] [] (Float.min 0.25 (deadline -. now)) with
          | [], _, _ -> go ()
          | _ -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> Error "shard closed the connection"
            | n ->
              Buffer.add_subbytes buf chunk 0 n;
              go ()
            | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err))
          | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err))
    in
    go ()
  in
  let send ~shard lines =
    match connect shard with
    | Error e -> Error e
    | Ok (fd, buf) -> (
      let payload = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
      match write_all fd payload with
      | Error e ->
        close_conn shard;
        Error e
      | Ok () -> (
        let deadline = Unix.gettimeofday () +. timeout in
        let rec read_n acc k =
          if k = 0 then Ok (List.rev acc)
          else
            match read_line fd buf ~deadline with
            | Ok line -> read_n (line :: acc) (k - 1)
            | Error e -> Error e
        in
        match read_n [] (List.length lines) with
        | Ok resp -> Ok resp
        | Error e ->
          close_conn shard;
          Error e))
  in
  { send }
