module Json = Qcx_persist.Json
module Rng = Qcx_util.Rng
module Xtalk_sched = Qcx_scheduler.Xtalk_sched

(* Fleet front door (DESIGN.md §14): maps compile requests onto shards
   via the consistent-hash ring, fails over around dead shards with a
   bounded, deadline-aware retry, and aggregates the fan-out ops
   (health/stats over every shard, epoch changes broadcast to all).

   Failover state machine, per shard:

     Live --(send/ack failure trips the breaker)--> Degraded
     Degraded --(cooloff elapses, probe succeeds)--> Live
     any --(set_rebuilding true)--> Rebuilding (not routable)
     Rebuilding --(set_rebuilding false)--> Live/Degraded by breaker

   Degraded shards stay routable — the open breaker short-circuits the
   attempt and the request goes straight to its ring successor, which
   is what bounds tail latency during an outage.  Rebuilding shards
   are taken off the ring entirely so a warming cache never serves. *)

type transport = {
  send : shard:int -> string list -> (string list, string) result;
      (** one batch, one shard: write the lines, read one response per
          line (in order) *)
  send_many : (int * string list) list -> (string list, string) result list;
      (** pipelined fan-out: every chunk is written before any response
          is awaited, so distinct shards proceed concurrently and one
          shard can hold several chunks in flight.  Results come back
          positionally.  A partial (short) [Ok] is allowed — the caller
          salvages by response id. *)
}

(* Lift a plain send function into a transport; the sequential
   [send_many] is exact for in-process transports (Fleet), where a
   send never blocks on a peer. *)
let transport_of_send send =
  { send; send_many = List.map (fun (shard, lines) -> send ~shard lines) }

type config = {
  vnodes : int;
  retry_backoff : float;  (** base for the jittered pre-retry sleep *)
  jitter_seed : int;
  default_budget : float;  (** retry budget when the request has no deadline *)
  breaker : Breaker.config;
}

let default_config =
  {
    vnodes = 64;
    retry_backoff = 0.02;
    jitter_seed = 0;
    default_budget = 5.0;
    (* threshold 1: one connect/ack failure marks the arc degraded —
       at fleet scale a dead peer fails every request it sees, and the
       short cooloff turns re-probing into the health check. *)
    breaker = { Breaker.default_config with Breaker.threshold = 1; cooloff_seconds = 0.5 };
  }

type shard_state = Live | Degraded | Rebuilding

let state_name = function Live -> "live" | Degraded -> "degraded" | Rebuilding -> "rebuilding"

type t = {
  config : config;
  nshards : int;
  ring : Ring.t;
  transport : transport;
  breakers : Breaker.t array;
  rebuilding : bool array;
  clock : unit -> float;
  width : string -> int option;
  rng : Rng.t;
  mutable routed : int;
  mutable failovers : int;
  mutable retries : int;
  mutable unavailable : int;
  mutable last_failover_at : float option;
  mutable serving : (unit -> Json.t) option;
      (** reactor metrics hook, embedded in aggregated health/stats *)
}

let create ?(config = default_config) ?(clock = Unix.gettimeofday) ?(width = fun _ -> None)
    ~nshards ~transport () =
  if nshards <= 0 then invalid_arg "Router.create: nshards must be positive";
  {
    config;
    nshards;
    ring = Ring.create ~vnodes:config.vnodes ~nshards ();
    transport;
    breakers = Array.init nshards (fun _ -> Breaker.create config.breaker);
    rebuilding = Array.make nshards false;
    clock;
    width;
    rng = Rng.create (Hashtbl.hash (config.jitter_seed, "qcx-router-jitter"));
    routed = 0;
    failovers = 0;
    retries = 0;
    unavailable = 0;
    last_failover_at = None;
    serving = None;
  }

let set_serving t f = t.serving <- f

let nshards t = t.nshards
let ring t = t.ring
let breaker t s = t.breakers.(s)
let routable t s = not t.rebuilding.(s)

let shard_state t s =
  if t.rebuilding.(s) then Rebuilding
  else match Breaker.state t.breakers.(s) with Breaker.Closed -> Live | _ -> Degraded

let set_rebuilding t s v = t.rebuilding.(s) <- v
let reset_breaker t s = t.breakers.(s) <- Breaker.create t.config.breaker

(* ---- routing key ----

   A pure function of (device, scheduler knobs, canonical circuit) —
   deliberately a superset-agnostic projection of the cache key: the
   epoch is excluded (an epoch bump must not migrate keys between
   shards and wipe the fleet's locality) and so is the deadline (a
   client tightening its budget should still hit the shard holding the
   entry...).  Requests with equal cache keys always route alike;
   requests with different cache keys may share a shard, which only
   costs capacity, never correctness. *)

let knob_string (p : Wire.params) =
  Printf.sprintf "omega=%h threshold=%h ladder=%s window=%s mitig=%s" p.Wire.omega
    p.Wire.threshold
    (Xtalk_sched.rung_name p.Wire.ladder_start)
    (match p.Wire.window with None -> "auto" | Some w -> string_of_int w)
    (Wire.mitigation_name p.Wire.mitigation)

let routing_key t ~device ~params circuit =
  let canon =
    match
      match t.width device with
      | Some n -> Canon.serialize (Canon.normalize ~nqubits:n circuit)
      | None -> Canon.serialize (Canon.normalize circuit)
    with
    | s -> s
    | exception Invalid_argument _ -> "invalid-circuit"
  in
  String.concat "\n" [ "qcx-route-key-v1"; device; knob_string params; canon ]

(* ---- wire plumbing ---- *)

let render doc = Json.to_string ~indent:false doc

let router_json t =
  Json.Object
    ([
      ("nshards", Json.Number (float_of_int t.nshards));
      ("routed", Json.Number (float_of_int t.routed));
      ("failovers", Json.Number (float_of_int t.failovers));
      ("retries", Json.Number (float_of_int t.retries));
      ("unavailable", Json.Number (float_of_int t.unavailable));
      ( "last_failover_at",
        match t.last_failover_at with None -> Json.Null | Some x -> Json.Number x );
      ("ring_points", Json.Number (float_of_int (Array.length (Ring.points t.ring))));
    ]
    @ (match t.serving with Some f -> [ ("serving", f ()) ] | None -> []))

(* One guarded attempt against one shard.  The breaker is both the
   gate (Reject short-circuits without touching the socket) and the
   detector (every outcome is recorded, so connect/ack timeouts feed
   straight into the failover state machine). *)
let attempt t ~shard lines =
  let b = t.breakers.(shard) in
  match Breaker.check b ~now:(t.clock ()) with
  | Breaker.Reject _ -> Error "breaker open"
  | Breaker.Admit | Breaker.Probe -> (
    match t.transport.send ~shard lines with
    | Ok resp when List.length resp = List.length lines ->
      Breaker.record_success b ~now:(t.clock ());
      Ok resp
    | Ok _ ->
      Breaker.record_failure b ~now:(t.clock ());
      Error "short response from shard"
    | Error e ->
      Breaker.record_failure b ~now:(t.clock ());
      Error e)

(* Pipelined variant: (shard, lines) chunks — several may target the
   same shard — gated per chunk by the shard's breaker, dispatched
   through one [send_many] so every admitted pipe stays full, and
   recorded per chunk so failures feed the failover detector.  A short
   [Ok] counts as a failure for the breaker, but the partial lines are
   returned so the caller can salvage resolved requests by id. *)
let attempt_many t chunks =
  let gated =
    List.map
      (fun (shard, lines) ->
        match Breaker.check t.breakers.(shard) ~now:(t.clock ()) with
        | Breaker.Reject _ -> (shard, lines, false)
        | Breaker.Admit | Breaker.Probe -> (shard, lines, true))
      chunks
  in
  let admitted = List.filter_map (fun (s, l, adm) -> if adm then Some (s, l) else None) gated in
  let outcomes = if admitted = [] then [] else t.transport.send_many admitted in
  let rec zip gated outcomes acc =
    match gated with
    | [] -> List.rev acc
    | (_, _, false) :: rest -> zip rest outcomes (Error "breaker open" :: acc)
    | (shard, lines, true) :: rest ->
      let r, outcomes =
        match outcomes with
        | r :: tl -> (r, tl)
        | [] -> ((Error "transport returned too few results" : (string list, string) result), [])
      in
      let out =
        match r with
        | Ok resp when List.length resp = List.length lines ->
          Breaker.record_success t.breakers.(shard) ~now:(t.clock ());
          r
        | Ok _ | Error _ ->
          Breaker.record_failure t.breakers.(shard) ~now:(t.clock ());
          r
      in
      zip rest outcomes (out :: acc)
  in
  zip gated outcomes []

let note_failover t =
  t.failovers <- t.failovers + 1;
  t.last_failover_at <- Some (t.clock ())

let mark_unavailable t results idx ~id ~attempts =
  t.unavailable <- t.unavailable + 1;
  results.(idx) <- Some (render (Wire.unavailable_response ~id:(Some id) ~attempts))

let group_by_shard pick items =
  let tbl = Hashtbl.create 8 in
  let missing = ref [] in
  List.iter
    (fun item ->
      match pick item with
      | None -> missing := item :: !missing
      | Some s ->
        let prev = try Hashtbl.find tbl s with Not_found -> [] in
        Hashtbl.replace tbl s (item :: prev))
    items;
  let groups = Hashtbl.fold (fun s v acc -> (s, List.rev v) :: acc) tbl [] in
  (List.sort compare groups, List.rev !missing)

(* Per-owner groups are cut into chunks of at most [max_chunk] lines,
   so one giant batch becomes several chunks a shard can interleave
   with other connections' work, and the transport can keep
   [max_inflight] of them outstanding per pipe. *)
let max_chunk = 64

let chunk_list n xs =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = n then go (List.rev cur :: acc) [ x ] 1 rest else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 xs

(* items: (idx, id, line, key, deadline).  Each forwarded compile is
   retagged with a router-unique id ([qr-<k>]) so responses can be
   demultiplexed by id even when distinct client connections reuse the
   same request id.  ALL primary chunks go out through one pipelined
   {!attempt_many} — multiple chunks stay in flight per shard, and a
   straggler shard no longer serializes the others.  Matched responses
   are retagged back to the client id (a byte-exact round trip, see
   {!Wire.retag_line}).  Requests left unresolved — failed chunk, or
   missing from a short response — fail over: one jittered backoff
   bounded by the tightest remaining deadline budget, then one hedged
   retry on each key's ring successor, then the typed [unavailable]. *)
let route_compiles t results items =
  if items <> [] then begin
    let t0 = t.clock () in
    let counter = ref 0 in
    let items =
      List.map
        (fun (idx, id, line, key, deadline) ->
          let tag = Printf.sprintf "qr-%d" !counter in
          incr counter;
          (idx, id, tag, Wire.retag_line line ~id:tag, key, deadline))
        items
    in
    t.routed <- t.routed + List.length items;
    let owner_of (_, _, _, _, key, _) = Ring.lookup t.ring ~live:(routable t) key in
    let groups, orphans = group_by_shard owner_of items in
    List.iter (fun (idx, id, _, _, _, _) -> mark_unavailable t results idx ~id ~attempts:0) orphans;
    let chunks_of groups =
      List.concat_map
        (fun (shard, g) -> List.map (fun c -> (shard, c)) (chunk_list max_chunk g))
        groups
    in
    (* Dispatch chunks, resolve every response that matches an
       outstanding tag, and return each chunk's unresolved items. *)
    let dispatch chunks =
      let outcomes =
        attempt_many t
          (List.map (fun (s, g) -> (s, List.map (fun (_, _, _, line, _, _) -> line) g)) chunks)
      in
      List.map2
        (fun (_, g) outcome ->
          match outcome with
          | Error _ -> g
          | Ok resp ->
            let by_tag = Hashtbl.create 16 in
            List.iter
              (fun r ->
                match Wire.line_id r with Some tag -> Hashtbl.replace by_tag tag r | None -> ())
              resp;
            List.filter
              (fun (idx, id, tag, _, _, _) ->
                match Hashtbl.find_opt by_tag tag with
                | Some r ->
                  results.(idx) <- Some (Wire.retag_line r ~id);
                  false
                | None -> true)
              g)
        chunks outcomes
    in
    let per_chunk = dispatch (chunks_of groups) in
    List.iter (fun u -> if u <> [] then note_failover t) per_chunk;
    let unresolved = List.concat per_chunk in
    if unresolved <> [] then begin
      let budget =
        List.fold_left
          (fun acc (_, _, _, _, _, deadline) ->
            match deadline with Some d -> Float.min acc (Float.max d 0.1) | None -> acc)
          t.config.default_budget unresolved
      in
      let remaining = budget -. (t.clock () -. t0) in
      let backoff =
        Float.min (t.config.retry_backoff *. (0.5 +. Rng.unit_float t.rng)) remaining
      in
      if backoff > 0.0 then Unix.sleepf backoff;
      let successor_of ((_, _, _, _, key, _) as item) =
        match owner_of item with
        | None -> None
        | Some owner -> Ring.lookup t.ring ~live:(fun s -> routable t s && s <> owner) key
      in
      let retry_groups, dead = group_by_shard successor_of unresolved in
      List.iter (fun (idx, id, _, _, _, _) -> mark_unavailable t results idx ~id ~attempts:1) dead;
      let retry_chunks = chunks_of retry_groups in
      t.retries <- t.retries + List.length retry_chunks;
      let still = List.concat (dispatch retry_chunks) in
      List.iter (fun (idx, id, _, _, _, _) -> mark_unavailable t results idx ~id ~attempts:2) still
    end
  end

(* ---- fan-out ops ---- *)

let probe_line req = render (Wire.request_to_json req)

(* Epoch changes must land on every shard or the fleet's cache keys
   drift apart; applied best-effort to each routable shard, first
   answer wins, the fan-out count rides along as [fleet_applied]. *)
let broadcast_apply t ~id line =
  let targets = List.filter (routable t) (List.init t.nshards Fun.id) in
  let outcomes = attempt_many t (List.map (fun s -> (s, [ line ])) targets) in
  let applied = ref 0 and first = ref None in
  List.iter
    (function
      | Ok [ resp ] ->
        incr applied;
        if !first = None then first := Some resp
      | Ok _ | Error _ -> ())
    outcomes;
  match !first with
  | Some resp -> (
    match Json.of_string resp with
    | Ok (Json.Object fields) ->
      render (Json.Object (fields @ [ ("fleet_applied", Json.Number (float_of_int !applied)) ]))
    | _ -> resp)
  | None ->
    t.unavailable <- t.unavailable + 1;
    render (Wire.unavailable_response ~id:(Some id) ~attempts:t.nshards)

let anycast t ~id line =
  let rec go s =
    if s >= t.nshards then begin
      t.unavailable <- t.unavailable + 1;
      render (Wire.unavailable_response ~id:(Some id) ~attempts:t.nshards)
    end
    else if not (routable t s) then go (s + 1)
    else match attempt t ~shard:s [ line ] with Ok [ resp ] -> resp | _ -> go (s + 1)
  in
  go 0

(* The aggregated health/stats op doubles as the active health check:
   every shard is probed — concurrently, through one [send_many], so a
   dead shard's connect timeout never adds itself to every other
   shard's probe — and the probe outcome feeds its breaker, so a
   monitoring loop hitting [health] keeps the failure detector warm
   and closes breakers of recovered shards. *)
let aggregate t ~id ~field =
  let probe =
    probe_line
      (if field = "health" then Wire.Health { id = "router-probe" }
       else Wire.Stats { id = "router-probe" })
  in
  let outcomes =
    attempt_many t (List.init t.nshards (fun s -> (s, [ probe ]))) |> Array.of_list
  in
  let shard_json s =
    let payload, reachable =
      match outcomes.(s) with
      | Ok [ resp ] -> (
        match Json.of_string resp with
        | Ok doc -> (Option.value (Json.member field doc) ~default:Json.Null, true)
        | Error _ -> (Json.Null, true))
      | Ok _ | Error _ -> (Json.Null, false)
    in
    Json.Object
      [
        ("shard", Json.Number (float_of_int s));
        ("state", Json.String (state_name (shard_state t s)));
        ("reachable", Json.Bool reachable);
        ("breaker", Breaker.to_json t.breakers.(s));
        (field, payload);
      ]
  in
  let shards = List.init t.nshards shard_json in
  render
    (Json.Object
       [
         ("id", Json.String id);
         ("status", Json.String "ok");
         ( field,
           Json.Object
             [
               ("role", Json.String "router");
               ("router", router_json t);
               ("shards", Json.Array shards);
             ] );
       ])

(* ---- the batch entry point ---- *)

type slot =
  | Direct of string
  | Compile_slot of { id : string; line : string; key : string; deadline : float option }
  | Cast of { line : string; req : Wire.request }

let classify t ~max_frame frame =
  match frame with
  | Server.Oversize -> Direct (render (Wire.frame_too_large_response ~id:None ~limit:max_frame))
  | Server.Line line -> (
    if String.length line > max_frame then
      Direct (render (Wire.frame_too_large_response ~id:None ~limit:max_frame))
    else
      match Json.of_string line with
      | Error e -> Direct (render (Wire.error_response ~id:None ("bad JSON: " ^ e)))
      | Ok doc -> (
        match Wire.request_of_json doc with
        | Error e -> Direct (render (Wire.error_response ~id:None e))
        | Ok req -> (
          match req with
          | Wire.Compile { id; device; circuit; params } ->
            Compile_slot { id; line; key = routing_key t ~device ~params circuit;
                           deadline = params.Wire.deadline }
          | Wire.Ping { id } ->
            Direct
              (render
                 (Json.Object
                    [
                      ("id", Json.String id);
                      ("status", Json.String "ok");
                      ("pong", Json.Bool true);
                    ]))
          | req -> Cast { line; req })))

let handle_frames ?(max_frame = Wire.default_max_frame) t frames =
  let frames =
    List.filter (function Server.Line l -> String.trim l <> "" | Server.Oversize -> true) frames
  in
  let slots = Array.of_list (List.map (classify t ~max_frame) frames) in
  let results = Array.make (Array.length slots) None in
  Array.iteri (fun i -> function Direct line -> results.(i) <- Some line | _ -> ()) slots;
  (* Compiles first (one routed batch), then the fan-out ops in frame
     order — mirroring Service.handle_batch, where non-compile ops
     pipelined behind compiles observe the batch's effects. *)
  let compiles =
    Array.to_list slots
    |> List.mapi (fun i s -> (i, s))
    |> List.filter_map (fun (i, s) ->
           match s with
           | Compile_slot { id; line; key; deadline } -> Some (i, id, line, key, deadline)
           | _ -> None)
  in
  route_compiles t results compiles;
  let stop = ref false in
  Array.iteri
    (fun i slot ->
      match slot with
      | Direct _ | Compile_slot _ -> ()
      | Cast { line; req } ->
        let id = Wire.request_id req in
        let resp =
          match req with
          | Wire.Health _ -> aggregate t ~id ~field:"health"
          | Wire.Stats _ -> aggregate t ~id ~field:"stats"
          | Wire.Bump _ | Wire.Calibrate _ | Wire.Rollback _ -> broadcast_apply t ~id line
          | Wire.Devices _ | Wire.Epoch_status _ -> anycast t ~id line
          | Wire.Shutdown _ ->
            stop := true;
            ignore (t.transport.send_many (List.init t.nshards (fun s -> (s, [ line ]))));
            render
              (Json.Object
                 [
                   ("id", Json.String id);
                   ("status", Json.String "ok");
                   ("stopping", Json.Bool true);
                 ])
          | Wire.Compile _ | Wire.Ping _ -> render (Wire.internal_error_response ~id:(Some id) "unroutable op")
        in
        results.(i) <- Some resp)
    slots;
  let out =
    Array.to_list
      (Array.map
         (function
           | Some line -> line
           | None -> render (Wire.internal_error_response ~id:None "internal: missing response"))
         results)
  in
  (out, !stop)

let handle_lines ?max_frame t lines =
  handle_frames ?max_frame t (List.map (fun l -> Server.Line l) lines)

(* ---- socket transport ----

   One lazily-connected persistent Unix-domain connection per shard,
   reconnected on demand, driven non-blocking through one select loop
   per [send_many] call.  Chunks for distinct shards proceed
   concurrently; chunks for the same shard pipeline, at most
   [max_inflight] outstanding on the wire at once (the rest queue
   locally), with responses matched positionally per connection — the
   reactor on the far side answers a connection's frames in order.

   Failures are fast and typed: a missing socket file or a refused
   connect fails that shard's chunks immediately (the shard is down —
   that's the router's cue to fail over); a read/write error or a
   [timeout] overrun fails every unresolved chunk on that shard and
   closes the connection so the next attempt starts clean.  A chunk
   interrupted mid-response salvages the lines it got (short [Ok]). *)

type pipe = {
  p_shard : int;
  p_fd : Unix.file_descr;
  p_rbuf : Buffer.t;  (* unconsumed response bytes, persistent per conn *)
  p_pending : (int * string list) Queue.t;  (* (slot, lines) not yet on the wire *)
  p_inflight : (int * int * string list ref) Queue.t;  (* slot, expected, acc (rev) *)
  mutable p_wbuf : string;
  mutable p_woff : int;
  mutable p_done : bool;
}

let socket_transport ?(timeout = 10.0) ?(max_inflight = 4) ~socket_for () =
  let max_inflight = max 1 max_inflight in
  let conns : (int, Unix.file_descr * Buffer.t) Hashtbl.t = Hashtbl.create 8 in
  let close_conn shard =
    match Hashtbl.find_opt conns shard with
    | Some (fd, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Hashtbl.remove conns shard
    | None -> ()
  in
  let connect shard =
    match Hashtbl.find_opt conns shard with
    | Some c -> Ok c
    | None -> (
      let path = socket_for shard in
      match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
      | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
      | fd -> (
        match Unix.connect fd (Unix.ADDR_UNIX path) with
        | () ->
          Unix.set_nonblock fd;
          let c = (fd, Buffer.create 4096) in
          Hashtbl.replace conns shard c;
          Ok c
        | exception Unix.Unix_error (err, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Unix.error_message err)))
  in
  let send_many chunks =
    match chunks with
    | [] -> []
    | chunks ->
      let deadline = Unix.gettimeofday () +. timeout in
      let n = List.length chunks in
      let results = Array.make n (Error "unresolved") in
      (* group the chunks onto per-shard pipes, connecting on demand *)
      let by_shard : (int, pipe) Hashtbl.t = Hashtbl.create 8 in
      List.iteri
        (fun slot (shard, lines) ->
          match Hashtbl.find_opt by_shard shard with
          | Some p -> Queue.add (slot, lines) p.p_pending
          | None -> (
            match connect shard with
            | Error e -> results.(slot) <- Error e
            | Ok (fd, rbuf) ->
              let p =
                {
                  p_shard = shard;
                  p_fd = fd;
                  p_rbuf = rbuf;
                  p_pending = Queue.create ();
                  p_inflight = Queue.create ();
                  p_wbuf = "";
                  p_woff = 0;
                  p_done = false;
                }
              in
              Queue.add (slot, lines) p.p_pending;
              Hashtbl.replace by_shard shard p))
        chunks;
      let pipes = Hashtbl.fold (fun _ p acc -> p :: acc) by_shard [] in
      let fail_pipe p msg =
        Queue.iter
          (fun (slot, _expected, acc) ->
            results.(slot) <-
              (match !acc with [] -> Error msg | partial -> Ok (List.rev partial)))
          p.p_inflight;
        Queue.clear p.p_inflight;
        Queue.iter (fun (slot, _) -> results.(slot) <- Error msg) p.p_pending;
        Queue.clear p.p_pending;
        p.p_wbuf <- "";
        p.p_woff <- 0;
        p.p_done <- true;
        close_conn p.p_shard
      in
      (* move queued chunks onto the wire while the pipe has room *)
      let arm p =
        if p.p_woff >= String.length p.p_wbuf then begin
          let buf = Buffer.create 1024 in
          while Queue.length p.p_inflight < max_inflight && not (Queue.is_empty p.p_pending) do
            let slot, lines = Queue.pop p.p_pending in
            List.iter
              (fun l ->
                Buffer.add_string buf l;
                Buffer.add_char buf '\n')
              lines;
            Queue.add (slot, List.length lines, ref []) p.p_inflight
          done;
          if Buffer.length buf > 0 then begin
            p.p_wbuf <- Buffer.contents buf;
            p.p_woff <- 0
          end
        end
      in
      (* consume complete response lines; a pipe's responses resolve
         its inflight chunks strictly in order *)
      let rec drain p =
        let s = Buffer.contents p.p_rbuf in
        match String.index_opt s '\n' with
        | None -> ()
        | Some i ->
          let line = String.sub s 0 i in
          Buffer.clear p.p_rbuf;
          Buffer.add_substring p.p_rbuf s (i + 1) (String.length s - i - 1);
          (match Queue.peek_opt p.p_inflight with
          | None -> ()  (* stale bytes from an abandoned exchange; drop *)
          | Some (slot, expected, acc) ->
            acc := line :: !acc;
            if List.length !acc = expected then begin
              ignore (Queue.pop p.p_inflight);
              results.(slot) <- Ok (List.rev !acc)
            end);
          drain p
      in
      let chunk = Bytes.create 65536 in
      let finished p =
        Queue.is_empty p.p_pending && Queue.is_empty p.p_inflight
        && p.p_woff >= String.length p.p_wbuf
      in
      let rec loop () =
        let live = List.filter (fun p -> not (p.p_done || finished p)) pipes in
        if live <> [] then begin
          List.iter arm live;
          let rds = List.filter_map (fun p -> if Queue.is_empty p.p_inflight then None else Some p.p_fd) live in
          let wrs =
            List.filter_map
              (fun p -> if p.p_woff < String.length p.p_wbuf then Some p.p_fd else None)
              live
          in
          let now = Unix.gettimeofday () in
          if now >= deadline then
            List.iter (fun p -> fail_pipe p "shard response timeout") live
          else begin
            let pipe_of fd = List.find (fun p -> p.p_fd = fd) live in
            (match Unix.select rds wrs [] (Float.min 0.25 (deadline -. now)) with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | r, w, _ ->
              List.iter
                (fun fd ->
                  let p = pipe_of fd in
                  match
                    Unix.write_substring p.p_fd p.p_wbuf p.p_woff
                      (String.length p.p_wbuf - p.p_woff)
                  with
                  | k -> p.p_woff <- p.p_woff + k
                  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
                  | exception Unix.Unix_error (err, _, _) ->
                    fail_pipe p (Unix.error_message err))
                w;
              List.iter
                (fun fd ->
                  let p = pipe_of fd in
                  if not p.p_done then
                    match Unix.read p.p_fd chunk 0 (Bytes.length chunk) with
                    | 0 -> fail_pipe p "shard closed the connection"
                    | k ->
                      Buffer.add_subbytes p.p_rbuf chunk 0 k;
                      drain p
                    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
                    | exception Unix.Unix_error (err, _, _) ->
                      fail_pipe p (Unix.error_message err))
                r);
            loop ()
          end
        end
      in
      loop ();
      Array.to_list results
  in
  let send ~shard lines =
    match send_many [ (shard, lines) ] with [ r ] -> r | _ -> Error "transport error"
  in
  { send; send_many }
