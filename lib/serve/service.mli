(** The in-process compilation service: registry + schedule cache +
    admission-controlled worker dispatch, hardened for continuous
    operation (DESIGN.md §8–9).

    This layer is transport-free — the socket server, the [--once]
    test mode, the load bench, and [qcx_schedule --cache-dir] all
    drive it directly.  A compile request resolves its device in the
    {!Registry}, canonicalizes the circuit ({!Canon}), derives the
    content-addressed cache key, and either serves the cached schedule
    or compiles cold through {!Qcx_scheduler.Xtalk_sched.schedule}
    (per-request deadline and ladder rung feed the degradation
    ladder — a compile request never fails once admitted).

    {!handle_batch} is the concurrent path: cache lookups run
    sequentially on the calling domain (so hit/miss accounting and
    recency are deterministic), distinct missing keys are compiled in
    parallel on a {!Qcx_util.Pool} worker set, and results are
    inserted back in request order — responses are bit-identical for
    every [jobs] value.  Requests beyond [queue_bound] are rejected
    with a typed [overloaded] response instead of queueing without
    bound.

    Robustness machinery on top of that (all typed, never raising):
    per-device circuit {!Breaker}s reject work on devices whose
    compiles keep failing or degrading; compiles that blow far past
    their deadline ([deadline × deadline_grace]) answer
    [deadline_exceeded]; a compile slot that dies answers
    [internal_error] for its requests while the rest of the batch
    proceeds; and every cache insertion is journaled ahead of the
    periodic snapshot so a [kill -9] recovers via {!recover}. *)

type config = {
  jobs : int;  (** worker domains for batch compiles (1 = sequential) *)
  queue_bound : int;  (** admission limit per batch; excess is rejected *)
  cache_capacity : int;  (** LRU capacity of the schedule cache *)
  max_compile_seconds : float option;
      (** service-wide cap on any one compile's solver deadline *)
  deadline_grace : float;
      (** a compile is only answered [deadline_exceeded] when its
          wall-clock elapsed exceeds [deadline × grace]; within the
          grace the ladder-degraded schedule is served normally *)
  breaker : Breaker.config;  (** per-device circuit-breaker tuning *)
  checkpoint_every : int;  (** journal appends between cache snapshots *)
}

val default_config : config
(** jobs 1, queue_bound 64, cache_capacity 256, max_compile 30 s,
    grace 4×, default breaker, checkpoint every 256 appends. *)

type t

(** Deterministic compile-phase faults for the chaos harness,
    injected via {!set_compile_fault}. *)
type compile_fault =
  | Fail_compile of string  (** the slot dies with this message *)
  | Stall_compile of float  (** the slot hangs this many seconds first *)

type outcome = {
  device : string;  (** registry id *)
  epoch : string;  (** device epoch the schedule was keyed under *)
  key : string;  (** content-addressed cache key *)
  cached : bool;  (** served from the cache without compiling *)
  schedule : Qcx_circuit.Schedule.t;
  stats : Qcx_scheduler.Xtalk_sched.stats;
}

val create : ?config:config -> ?clock:(unit -> float) -> Registry.t -> t
(** [clock] (default [Unix.gettimeofday]) drives deadlines and breaker
    cooloffs — tests inject a fake one. *)

val registry : t -> Registry.t
val cache : t -> Cache.t
val config : t -> config

val cache_key :
  device_id:string -> epoch:string -> params:Wire.params -> Qcx_circuit.Circuit.t -> string
(** Digest over canonical-circuit × device × epoch × scheduler
    params.  The circuit must already be canonical ({!Canon.normalize}). *)

val compile :
  t ->
  device:string ->
  ?params:Wire.params ->
  Qcx_circuit.Circuit.t ->
  (outcome, string) result
(** Synchronous single compile (cache-aware, journaled, no breaker).
    [Error _] only for unknown devices or circuits that do not fit the
    device. *)

val handle : t -> Wire.request -> Qcx_persist.Json.t
(** Serve one request, producing the wire response. *)

val handle_batch : t -> Wire.request list -> Qcx_persist.Json.t list
(** Serve a pipelined batch: admission control, breaker checks,
    Pool-parallel cold compiles of distinct keys, responses in request
    order.  Total: every fault class maps to a typed response. *)

val handle_batch_rendered : t -> Wire.request list -> string list
(** {!handle_batch} rendered straight to compact wire lines.  Cache
    hits take a fast path — the response tail after the [id] field is
    pre-rendered once per cache key and spliced per request — but the
    bytes are identical to rendering {!handle_batch}'s documents with
    [Json.to_string ~indent:false] (pinned by the unit tests).  The
    socket reactor serves through this. *)

val stats_json : t -> Qcx_persist.Json.t
(** The payload of the [stats] op: cache counters, registry listing,
    served/overloaded/error tallies, the degradation-rung histogram,
    per-op-class service-latency percentiles (p50/p99/p999 over a
    bounded reservoir of recent requests: [cached] hits, [cold]
    compiles, [other] ops), breaker states, journal counters, and —
    when a socket reactor is attached — its [serving] counters. *)

val health_json : t -> Qcx_persist.Json.t
(** The payload of the [health] op: readiness (drain flag), panic
    count, breaker states, journal state, and a per-device section —
    epoch, rollback-ring digests, staleness (days since the promoted
    epoch on the service's logical clock), quarantine tally, and the
    latest refresh/calibration warning (previously stderr-only). *)

(* ---- operational state ---- *)

val breaker_for : t -> string -> Breaker.t
(** The device's breaker, created closed on first use. *)

val set_draining : t -> bool -> unit
(** Flips readiness in {!health_json}; the transport layer stops
    accepting when its stop callback fires, this just reports it. *)

val draining : t -> bool

val note_panic : t -> unit
(** Called by the server's crash-recovery wrapper when a connection
    handler dies; surfaces in stats/health. *)

val panics : t -> int

val set_compile_fault : t -> (nth:int -> compile_fault option) option -> unit
(** Chaos hook: consulted once per cold-compile attempt with a
    monotone attempt index ([nth]), independent of [jobs]. *)

val set_on_insert : t -> (string -> Cache.entry -> unit) option -> unit
(** Tee called on every cache insertion (before the journal append) —
    the fleet {!Shard} hangs its {!Replica} sender here so the peer
    sees the same append stream the local journal sees.  The hook must
    never raise. *)

val set_extra_health : t -> (unit -> (string * Qcx_persist.Json.t) list) option -> unit
(** Extra fields appended to the {!health_json} payload — fleet shards
    report their shard index, peer, and replication lag through it. *)

val set_serving : t -> (unit -> Qcx_persist.Json.t) option -> unit
(** Reactor observability hook: when set, the payload is embedded as
    the [serving] field of both {!stats_json} and {!health_json}.
    {!Server.serve_socket} registers its metrics here. *)

(* ---- calibration data plane ---- *)

val set_calibrator : t -> Calibrator.t option -> unit
(** Attach the calibration data plane; the [calibrate] and [rollback]
    wire ops answer [calibration_disabled] without one ([rollback]
    still works registry-only). *)

val calibrator : t -> Calibrator.t option

val day : t -> int
(** The service's logical calibration day — the high-water mark of the
    [day] fields seen on [calibrate] requests.  Staleness in
    {!health_json} is measured against it. *)

val purge_stale : t -> int
(** Drop every cache entry keyed under an epoch no registry entry is
    currently serving (entries with an unknown epoch — restored from a
    pre-epoch snapshot — are kept).  Runs automatically after an epoch
    changes via the [bump], [calibrate], or [rollback] ops; returns
    the number of entries dropped (also counted in the cache's
    [purged] stat). *)

(* ---- persistence: snapshot + write-ahead journal ---- *)

val save_cache : t -> path:string -> (unit, string) result
val load_cache : t -> path:string -> (int, string) result
(** Warm-start the cache from a snapshot (no journaling); returns the
    number of restored entries. *)

val enable_persistence : t -> cache_file:string -> ?fsync:bool -> unit -> (unit, string) result
(** Open the write-ahead journal at [cache_file ^ ".journal"]; from
    here on every cache insertion is journaled, and every
    [checkpoint_every] appends the snapshot is rewritten and the
    journal truncated. *)

val persistence_journal : t -> Journal.t option
(** The live journal (chaos tests attach fault hooks to it). *)

val checkpoint : t -> (unit, string) result
(** Snapshot the cache to [cache_file] and truncate the journal.  A
    no-op [Ok] when persistence is off. *)

type recovery = {
  snapshot_entries : int;  (** restored from the snapshot file *)
  journal_entries : int;  (** replayed from the journal's valid prefix *)
  journal_dropped : int;  (** lines abandoned after a torn/damaged one *)
  torn : bool;  (** the journal had a torn tail *)
}

val recover : t -> cache_file:string -> ?fsync:bool -> unit -> (recovery, string) result
(** Crash-consistent warm start: load the snapshot (missing/damaged →
    empty), replay the journal's valid prefix on top, enable
    persistence, and checkpoint immediately — compacting the replay
    and truncating any torn tail so it cannot poison later appends. *)
