(** The in-process compilation service: registry + schedule cache +
    admission-controlled worker dispatch.

    This layer is transport-free — the socket server, the [--once]
    test mode, the load bench, and [qcx_schedule --cache-dir] all
    drive it directly.  A compile request resolves its device in the
    {!Registry}, canonicalizes the circuit ({!Canon}), derives the
    content-addressed cache key, and either serves the cached schedule
    or compiles cold through {!Qcx_scheduler.Xtalk_sched.schedule}
    (per-request deadline and ladder rung feed the degradation
    ladder — a compile request never fails once admitted).

    {!handle_batch} is the concurrent path: cache lookups run
    sequentially on the calling domain (so hit/miss accounting and
    recency are deterministic), distinct missing keys are compiled in
    parallel on a {!Qcx_util.Pool} worker set, and results are
    inserted back in request order — responses are bit-identical for
    every [jobs] value.  Requests beyond [queue_bound] are rejected
    with a typed [overloaded] response instead of queueing without
    bound. *)

type config = {
  jobs : int;  (** worker domains for batch compiles (1 = sequential) *)
  queue_bound : int;  (** admission limit per batch; excess is rejected *)
  cache_capacity : int;  (** LRU capacity of the schedule cache *)
}

val default_config : config
(** jobs 1, queue_bound 64, cache_capacity 256. *)

type t

type outcome = {
  device : string;  (** registry id *)
  epoch : string;  (** device epoch the schedule was keyed under *)
  key : string;  (** content-addressed cache key *)
  cached : bool;  (** served from the cache without compiling *)
  schedule : Qcx_circuit.Schedule.t;
  stats : Qcx_scheduler.Xtalk_sched.stats;
}

val create : ?config:config -> Registry.t -> t

val registry : t -> Registry.t
val cache : t -> Cache.t
val config : t -> config

val cache_key :
  device_id:string -> epoch:string -> params:Wire.params -> Qcx_circuit.Circuit.t -> string
(** Digest over canonical-circuit × device × epoch × scheduler
    params.  The circuit must already be canonical ({!Canon.normalize}). *)

val compile :
  t ->
  device:string ->
  ?params:Wire.params ->
  Qcx_circuit.Circuit.t ->
  (outcome, string) result
(** Synchronous single compile (cache-aware).  [Error _] only for
    unknown devices or circuits that do not fit the device. *)

val handle : t -> Wire.request -> Qcx_persist.Json.t
(** Serve one request, producing the wire response. *)

val handle_batch : t -> Wire.request list -> Qcx_persist.Json.t list
(** Serve a pipelined batch: admission control, Pool-parallel cold
    compiles of distinct keys, responses in request order. *)

val stats_json : t -> Qcx_persist.Json.t
(** The payload of the [stats] op: cache counters, registry listing,
    served/overloaded/error tallies and the degradation-rung
    histogram. *)

val save_cache : t -> path:string -> (unit, string) result
val load_cache : t -> path:string -> (int, string) result
(** Warm-start the cache from disk; returns the number of restored
    entries.  The file must have [cache_capacity] compatible content
    (excess entries age out on load). *)
