(* Consistent-hash ring: cache keys -> shards (DESIGN.md §14).

   Each shard contributes [vnodes] points on a circle of 56-bit hash
   values; a key belongs to the first point at or clockwise-after its
   own hash.  Failover walks clockwise past dead shards instead of
   rehashing, so losing (or re-adding) a shard only moves the keys on
   that shard's own arcs — every other key keeps its owner, which is
   what lets a rebuilt shard rejoin with its replica-restored cache
   still addressing the right keys. *)

type t = {
  nshards : int;
  vnodes : int;
  points : (int * int) array;  (* (hash, shard), sorted by hash *)
}

(* 56 bits of an MD5 digest: plenty of spread, and always a
   non-negative OCaml int on 64-bit platforms. *)
let hash_str s =
  let d = Digest.string s in
  let v = ref 0 in
  for i = 0 to 6 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  !v

let create ?(vnodes = 64) ~nshards () =
  if nshards <= 0 then invalid_arg "Ring.create: nshards must be positive";
  if vnodes <= 0 then invalid_arg "Ring.create: vnodes must be positive";
  let points =
    Array.init (nshards * vnodes) (fun i ->
        let shard = i / vnodes and v = i mod vnodes in
        (hash_str (Printf.sprintf "qcx-ring-v1 shard=%d vnode=%d" shard v), shard))
  in
  (* Ties (astronomically unlikely) break by shard id, keeping the
     point order a pure function of (nshards, vnodes). *)
  Array.sort compare points;
  { nshards; vnodes; points }

let nshards t = t.nshards
let vnodes t = t.vnodes
let points t = Array.copy t.points

(* Index of the first point with hash >= h, wrapping past the top. *)
let start_index t h =
  let pts = t.points in
  let n = Array.length pts in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst pts.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let lookup t ~live key =
  let pts = t.points in
  let n = Array.length pts in
  let s0 = start_index t (hash_str key) in
  let rec walk i =
    if i >= n then None
    else
      let shard = snd pts.((s0 + i) mod n) in
      if live shard then Some shard else walk (i + 1)
  in
  walk 0

let owner t key =
  match lookup t ~live:(fun _ -> true) key with
  | Some s -> s
  | None -> assert false (* nshards > 0 and every shard is live *)
