module Circuit = Qcx_circuit.Circuit
module Schedule = Qcx_circuit.Schedule
module Device = Qcx_device.Device
module Xtalk_sched = Qcx_scheduler.Xtalk_sched
module Pool = Qcx_util.Pool
module Json = Qcx_persist.Json

type config = {
  jobs : int;
  queue_bound : int;
  cache_capacity : int;
  max_compile_seconds : float option;
  deadline_grace : float;
  breaker : Breaker.config;
  checkpoint_every : int;
}

let default_config =
  {
    jobs = 1;
    queue_bound = 64;
    cache_capacity = 256;
    max_compile_seconds = Some 30.0;
    deadline_grace = 4.0;
    breaker = Breaker.default_config;
    checkpoint_every = 256;
  }

type compile_fault = Fail_compile of string | Stall_compile of float

type persistence = { cache_file : string; journal : Journal.t }

type t = {
  config : config;
  registry : Registry.t;
  cache : Cache.t;
  clock : unit -> float;
  breakers : (string, Breaker.t) Hashtbl.t;
  rung_hist : int array;  (** indexed like [Xtalk_sched.all_rungs] *)
  mutable persistence : persistence option;
  mutable since_checkpoint : int;
  mutable checkpoints : int;
  mutable draining : bool;
  mutable panics : int;
  mutable ok : int;
  mutable errors : int;
  mutable overloaded : int;
  mutable deadline_exceeded : int;
  mutable breaker_rejected : int;
  mutable compile_failures : int;
  mutable cold_compiles : int;
  mutable cold_attempts : int;
  mutable compile_seconds : float;
  mutable idle_ns : float;
      (** cumulative idle time across cold-compiled schedules (after DD
          padding when the mitigation knob is on) *)
  mutable idle_max_ns : float;  (** longest idle window seen in any cold compile *)
  mutable compile_fault : (nth:int -> compile_fault option) option;
  mutable calibrator : Calibrator.t option;
  mutable day : int;  (** logical calibration day, advanced by calibrate ops *)
  mutable on_insert : (string -> Cache.entry -> unit) option;
      (** tee on every cache insertion — the fleet shard hangs its
          replication sender here *)
  mutable extra_health : (unit -> (string * Json.t) list) option;
      (** extra fields appended to the [health] payload (per-shard
          identity and replication lag in fleet mode) *)
  mutable serving : (unit -> Json.t) option;
      (** reactor counters (accept queue, open connections, batch
          occupancy) — the socket server hangs its metrics here *)
  hit_render : (string, string) Hashtbl.t;
      (** cache key -> pre-rendered response tail for the hit fast
          path; invalidated on insert, cleared under size pressure *)
  mutable knob_memo : (Wire.params * string) option;
      (** one-slot memo of the cache-key knob string — nearly every
          request carries [Wire.default_params], so the five [%h]
          renderings amortize to a record comparison *)
  lat_cached : reservoir;
  lat_cold : reservoir;
  lat_other : reservoir;
}

(* Bounded reservoir of recent service latencies, one per op class.
   A plain ring: percentiles over the last [reservoir_size] samples,
   which is what an operator wants from [stats] anyway. *)
and reservoir = { samples : float array; mutable count : int }

let reservoir_size = 8192
let make_reservoir () = { samples = Array.make reservoir_size 0.0; count = 0 }

let reservoir_record r v =
  r.samples.(r.count mod reservoir_size) <- v;
  r.count <- r.count + 1

let reservoir_json r =
  let n = min r.count reservoir_size in
  if n = 0 then Json.Object [ ("count", Json.Number 0.0) ]
  else begin
    let sorted = Array.sub r.samples 0 n in
    Array.sort compare sorted;
    let pct q = sorted.(min (n - 1) (int_of_float (q *. float_of_int (n - 1) +. 0.5))) in
    Json.Object
      [
        ("count", Json.Number (float_of_int r.count));
        ("p50_ms", Json.Number (1000.0 *. pct 0.50));
        ("p99_ms", Json.Number (1000.0 *. pct 0.99));
        ("p999_ms", Json.Number (1000.0 *. pct 0.999));
        ("max_ms", Json.Number (1000.0 *. sorted.(n - 1)));
      ]
  end

type outcome = {
  device : string;
  epoch : string;
  key : string;
  cached : bool;
  schedule : Schedule.t;
  stats : Xtalk_sched.stats;
}

let create ?(config = default_config) ?(clock = Unix.gettimeofday) registry =
  if config.queue_bound <= 0 then invalid_arg "Service.create: queue_bound must be positive";
  if config.checkpoint_every <= 0 then
    invalid_arg "Service.create: checkpoint_every must be positive";
  if not (config.deadline_grace >= 1.0) then
    invalid_arg "Service.create: deadline_grace must be >= 1";
  {
    config;
    registry;
    cache = Cache.create ~capacity:config.cache_capacity;
    clock;
    breakers = Hashtbl.create 8;
    rung_hist = Array.make (List.length Xtalk_sched.all_rungs) 0;
    persistence = None;
    since_checkpoint = 0;
    checkpoints = 0;
    draining = false;
    panics = 0;
    ok = 0;
    errors = 0;
    overloaded = 0;
    deadline_exceeded = 0;
    breaker_rejected = 0;
    compile_failures = 0;
    cold_compiles = 0;
    cold_attempts = 0;
    compile_seconds = 0.0;
    idle_ns = 0.0;
    idle_max_ns = 0.0;
    compile_fault = None;
    calibrator = None;
    day = 0;
    on_insert = None;
    extra_health = None;
    serving = None;
    hit_render = Hashtbl.create 64;
    knob_memo = None;
    lat_cached = make_reservoir ();
    lat_cold = make_reservoir ();
    lat_other = make_reservoir ();
  }

let registry t = t.registry
let cache t = t.cache
let config t = t.config
let set_compile_fault t fault = t.compile_fault <- fault
let set_on_insert t f = t.on_insert <- f
let set_extra_health t f = t.extra_health <- f
let set_serving t f = t.serving <- f
let set_calibrator t c = t.calibrator <- c
let calibrator t = t.calibrator
let day t = t.day

(* Entries keyed on a retired epoch can never hit again (the epoch is
   hashed into the key), but they still squat LRU slots until capacity
   pressure ages them out.  Drop them eagerly whenever any device's
   epoch changes.  Entries with an unknown ("") epoch — persisted
   before epochs were recorded — are left to the LRU. *)
let purge_stale t =
  let live = List.filter_map (fun id ->
      Option.map (fun e -> e.Registry.epoch) (Registry.find t.registry id))
      (Registry.ids t.registry)
  in
  Cache.purge t.cache ~drop:(fun _ entry ->
      entry.Cache.epoch <> "" && not (List.mem entry.Cache.epoch live))
let set_draining t flag = t.draining <- flag
let draining t = t.draining
let note_panic t = t.panics <- t.panics + 1
let panics t = t.panics

let breaker_for t device =
  match Hashtbl.find_opt t.breakers device with
  | Some b -> b
  | None ->
    let b = Breaker.create t.config.breaker in
    Hashtbl.add t.breakers device b;
    b

let rung_index rung =
  let rec scan i = function
    | [] -> 0
    | r :: rest -> if r = rung then i else scan (i + 1) rest
  in
  scan 0 Xtalk_sched.all_rungs

let knob_string (params : Wire.params) =
  let knob =
    Printf.sprintf "omega=%h threshold=%h deadline=%s ladder=%s window=%s" params.Wire.omega
      params.Wire.threshold
      (match params.Wire.deadline with None -> "none" | Some d -> Printf.sprintf "%h" d)
      (Xtalk_sched.rung_name params.Wire.ladder_start)
      (match params.Wire.window with None -> "auto" | Some w -> string_of_int w)
  in
  (* Appended only when set, so every pre-knob key — including cache
     snapshots persisted by older builds — stays byte-identical. *)
  match params.Wire.mitigation with
  | None -> knob
  | Some _ -> knob ^ " mitig=" ^ Wire.mitigation_name params.Wire.mitigation

let knob_of_params t (params : Wire.params) =
  match t.knob_memo with
  | Some (p, k) when p == params || p = params -> k
  | _ ->
    let k = knob_string params in
    t.knob_memo <- Some (params, k);
    k

let cache_key_of_text ~device_id ~epoch ~knob ~canon_text =
  let b = Buffer.create (128 + String.length canon_text) in
  Buffer.add_string b "qcx-schedule-key-v1\n";
  Buffer.add_string b device_id;
  Buffer.add_char b '\n';
  Buffer.add_string b epoch;
  Buffer.add_char b '\n';
  Buffer.add_string b knob;
  Buffer.add_char b '\n';
  Buffer.add_string b canon_text;
  Digest.to_hex (Digest.string (Buffer.contents b))

let cache_key ~device_id ~epoch ~params canon =
  cache_key_of_text ~device_id ~epoch ~knob:(knob_string params)
    ~canon_text:(Canon.serialize canon)

(* The request's own deadline, capped by the service-wide compile
   budget so one request cannot monopolize a worker. *)
let effective_deadline t (params : Wire.params) =
  match (params.Wire.deadline, t.config.max_compile_seconds) with
  | None, cap -> cap
  | (Some _ as d), None -> d
  | Some d, Some cap -> Some (Float.min d cap)

(* The cold path: the degradation ladder means this never raises for a
   well-formed canonical circuit. *)
let cold_compile ?deadline (entry : Registry.entry) (params : Wire.params) canon =
  let sched, stats =
    Xtalk_sched.schedule ~omega:params.omega ~threshold:params.threshold
      ?deadline_seconds:deadline ~ladder_start:params.ladder_start
      ?window_gates:params.Wire.window ~device:entry.Registry.device
      ~xtalk:entry.Registry.xtalk canon
  in
  match params.Wire.mitigation with
  | None -> (sched, stats)
  | Some sequence ->
    let padded, _protection, _ =
      Qcx_mitigation.Dd.pad ~sequence ~device:entry.Registry.device sched
    in
    (* Report the schedule actually served: residual idle after the
       pulse trains went in. *)
    let idle_total, idle_max = Qcx_scheduler.Idle.summarize padded in
    (padded, { stats with Xtalk_sched.idle_total; idle_max })

(* One slot of the parallel compile phase.  Fault injection and the
   last-resort exception guard both live here, so a dying worker
   degrades to a typed per-request error instead of killing the whole
   batch at the Pool join. *)
let run_slot t ~nth entry params canon =
  let deadline = effective_deadline t params in
  let started = t.clock () in
  let fault = match t.compile_fault with Some f -> f ~nth | None -> None in
  let result =
    match fault with
    | Some (Fail_compile msg) -> Error msg
    | _ -> (
      (match fault with Some (Stall_compile s) -> Unix.sleepf s | _ -> ());
      try Ok (cold_compile ?deadline entry params canon)
      with e -> Error ("compile failed: " ^ Printexc.to_string e))
  in
  (result, t.clock () -. started)

let tally_cold t (stats : Xtalk_sched.stats) =
  t.cold_compiles <- t.cold_compiles + 1;
  t.compile_seconds <- t.compile_seconds +. stats.solve_seconds;
  t.idle_ns <- t.idle_ns +. stats.idle_total;
  t.idle_max_ns <- Float.max t.idle_max_ns stats.idle_max;
  let i = rung_index stats.rung in
  t.rung_hist.(i) <- t.rung_hist.(i) + 1

(* ---- persistence: snapshot + write-ahead journal ---- *)

let save_cache t ~path = Cache.save ~path t.cache

let load_cache_into t loaded =
  let keys = List.rev (Cache.keys_newest_first loaded) in
  List.iter
    (fun key ->
      match Cache.find loaded key with
      | Some entry -> Cache.add t.cache key entry
      | None -> ())
    keys;
  List.length keys

let load_cache t ~path =
  match Cache.load ~capacity:t.config.cache_capacity ~path with
  | Error e -> Error e
  | Ok loaded -> Ok (load_cache_into t loaded)

let checkpoint t =
  match t.persistence with
  | None -> Ok ()
  | Some p -> (
    match Cache.save ~path:p.cache_file t.cache with
    | Error e -> Error ("checkpoint failed: " ^ e)
    | Ok () ->
      t.since_checkpoint <- 0;
      t.checkpoints <- t.checkpoints + 1;
      Journal.reset p.journal)

(* Every cache mutation goes through here: journal first (when
   persistence is on), then insert.  A failing journal — full disk —
   degrades durability to the last checkpoint but never blocks
   serving. *)
let cache_insert t key entry =
  (* A re-inserted key (eviction + recompile) may carry fresh timing
     stats; the pre-rendered hit line must not serve the stale ones. *)
  Hashtbl.remove t.hit_render key;
  (* The replication tee runs on every insert, persistence or not: the
     peer's replica is an independent durability channel, so a failing
     local journal must not silence it (and vice versa). *)
  (match t.on_insert with Some f -> f key entry | None -> ());
  match t.persistence with
  | None -> Cache.add t.cache key entry
  | Some p ->
    let appended = Journal.append p.journal { Journal.key; entry } in
    (* Insert before any checkpoint: a checkpoint triggered by this
       very append must snapshot a cache that already holds the entry,
       or resetting the journal would orphan it. *)
    Cache.add t.cache key entry;
    (match appended with
    | Error _ -> ()
    | Ok () ->
      t.since_checkpoint <- t.since_checkpoint + 1;
      if t.since_checkpoint >= t.config.checkpoint_every then ignore (checkpoint t))

let journal_path ~cache_file = cache_file ^ ".journal"

let enable_persistence t ~cache_file ?(fsync = true) () =
  match Journal.open_append ~path:(journal_path ~cache_file) ~fsync () with
  | Error e -> Error e
  | Ok journal ->
    (match t.persistence with Some p -> Journal.close p.journal | None -> ());
    t.persistence <- Some { cache_file; journal };
    Ok ()

let persistence_journal t = Option.map (fun p -> p.journal) t.persistence

type recovery = {
  snapshot_entries : int;
  journal_entries : int;
  journal_dropped : int;
  torn : bool;
}

let recover t ~cache_file ?(fsync = true) () =
  let snapshot_entries =
    match Cache.load ~capacity:t.config.cache_capacity ~path:cache_file with
    | Error _ -> 0 (* missing or damaged snapshot: start from the journal alone *)
    | Ok loaded -> load_cache_into t loaded
  in
  let replay = Journal.replay ~path:(journal_path ~cache_file) in
  List.iter (fun { Journal.key; entry } -> Cache.add t.cache key entry) replay.Journal.records;
  match enable_persistence t ~cache_file ~fsync () with
  | Error e -> Error e
  | Ok () -> (
    (* Checkpoint immediately: compacts the replayed records into the
       snapshot and truncates the journal, so a torn tail can never be
       appended onto. *)
    match checkpoint t with
    | Error e -> Error e
    | Ok () ->
      Ok
        {
          snapshot_entries;
          journal_entries = replay.Journal.read;
          journal_dropped = replay.Journal.dropped;
          torn = replay.Journal.torn;
        })

(* ---- single synchronous compile (CLI path) ---- *)

(* The key is derived by the fused serializer without materializing
   the canonical circuit; hits never need it, so [canon] is forced
   only when a cold compile actually runs.  (The lazy cannot raise:
   key_serialize already validated every gate against the widened
   register.) *)
let resolve t ~device ~params circuit =
  match Registry.find t.registry device with
  | None -> Error ("unknown device " ^ device)
  | Some entry -> (
    try
      let nqubits = Device.nqubits entry.Registry.device in
      let canon_text = Canon.key_serialize ~nqubits circuit in
      let knob = knob_of_params t params in
      let key = cache_key_of_text ~device_id:device ~epoch:entry.Registry.epoch ~knob ~canon_text in
      Ok (entry, lazy (Canon.normalize ~nqubits circuit), key)
    with Invalid_argument m -> Error m)

let compile t ~device ?(params = Wire.default_params) circuit =
  match resolve t ~device ~params circuit with
  | Error e ->
    t.errors <- t.errors + 1;
    Error e
  | Ok (entry, canon, key) ->
    let epoch = entry.Registry.epoch in
    t.ok <- t.ok + 1;
    (match Cache.find t.cache key with
    | Some centry ->
      Ok
        {
          device;
          epoch;
          key;
          cached = true;
          schedule = centry.Cache.schedule;
          stats = centry.Cache.stats;
        }
    | None ->
      let schedule, stats =
        cold_compile ?deadline:(effective_deadline t params) entry params (Lazy.force canon)
      in
      cache_insert t key { Cache.schedule; stats; epoch };
      tally_cold t stats;
      Ok { device; epoch; key; cached = false; schedule; stats })

(* ---- responses ---- *)

let ok_fields id = [ ("id", Json.String id); ("status", Json.String "ok") ]

let compile_response ~id (o : outcome) =
  Json.Object
    (ok_fields id
    @ [
        ("device", Json.String o.device);
        ("epoch", Json.String o.epoch);
        ("key", Json.String o.key);
        ("cached", Json.Bool o.cached);
        ("rung", Json.String (Xtalk_sched.rung_name o.stats.rung));
        ("makespan", Json.Number (Schedule.makespan o.schedule));
        ("stats", Wire.stats_to_json o.stats);
        ("schedule", Wire.schedule_to_json o.schedule);
      ])

(* ---- the cached-path fast render ----

   Everything in a hit response after the [id] field is a pure
   function of the cache key (the entry is deterministic per key, and
   [cached] is always true), so the tail is rendered once per key and
   spliced after the per-request id.  Derived from
   {!compile_response} itself — byte-identical to rendering the full
   document, which the unit tests pin. *)

let hit_render_bound t = max 64 (4 * t.config.cache_capacity)

let render_hit t ~id ~device ~epoch ~key (entry : Cache.entry) =
  let suffix =
    match Hashtbl.find_opt t.hit_render key with
    | Some s -> s
    | None ->
      let o =
        {
          device;
          epoch;
          key;
          cached = true;
          schedule = entry.Cache.schedule;
          stats = entry.Cache.stats;
        }
      in
      let tail =
        match compile_response ~id:"" o with
        | Json.Object (_ :: rest) -> Json.to_string ~indent:false (Json.Object rest)
        | other -> Json.to_string ~indent:false other
      in
      (* compact printer: "{\"status\": ...}" -> ",\"status\": ...}" *)
      let s = "," ^ String.sub tail 1 (String.length tail - 1) in
      if Hashtbl.length t.hit_render >= hit_render_bound t then Hashtbl.reset t.hit_render;
      Hashtbl.add t.hit_render key s;
      s
  in
  "{\"id\": " ^ Json.to_string ~indent:false (Json.String id) ^ suffix

let breakers_json t =
  Json.Object
    (List.filter_map
       (fun id ->
         Option.map (fun b -> (id, Breaker.to_json b)) (Hashtbl.find_opt t.breakers id))
       (Registry.ids t.registry))

let journal_json t =
  match t.persistence with
  | None -> Json.Object [ ("enabled", Json.Bool false) ]
  | Some p ->
    Json.Object
      [
        ("enabled", Json.Bool true);
        ("path", Json.String (Journal.path p.journal));
        ("appends", Json.Number (float_of_int (Journal.appends p.journal)));
        ("failed_appends", Json.Number (float_of_int (Journal.failed_appends p.journal)));
        ("since_checkpoint", Json.Number (float_of_int t.since_checkpoint));
        ("checkpoints", Json.Number (float_of_int t.checkpoints));
      ]

let stats_json t =
  let c = Cache.counters t.cache in
  Json.Object
    ([
      ( "cache",
        Json.Object
          [
            ("hits", Json.Number (float_of_int c.Cache.hits));
            ("misses", Json.Number (float_of_int c.Cache.misses));
            ("evictions", Json.Number (float_of_int c.Cache.evictions));
            ("insertions", Json.Number (float_of_int c.Cache.insertions));
            ("purged", Json.Number (float_of_int c.Cache.purged));
            ("size", Json.Number (float_of_int c.Cache.size));
            ("capacity", Json.Number (float_of_int c.Cache.capacity));
          ] );
      ("registry", Registry.to_json t.registry);
      ( "served",
        Json.Object
          [
            ("ok", Json.Number (float_of_int t.ok));
            ("errors", Json.Number (float_of_int t.errors));
            ("overloaded", Json.Number (float_of_int t.overloaded));
            ("deadline_exceeded", Json.Number (float_of_int t.deadline_exceeded));
            ("breaker_rejected", Json.Number (float_of_int t.breaker_rejected));
            ("compile_failures", Json.Number (float_of_int t.compile_failures));
            ("panics", Json.Number (float_of_int t.panics));
            ("cold_compiles", Json.Number (float_of_int t.cold_compiles));
            ("compile_seconds", Json.Number t.compile_seconds);
            ("idle_ns", Json.Number t.idle_ns);
            ("idle_max_ns", Json.Number t.idle_max_ns);
          ] );
      ( "rungs",
        Json.Object
          (List.mapi
             (fun i r ->
               (Xtalk_sched.rung_name r, Json.Number (float_of_int t.rung_hist.(i))))
             Xtalk_sched.all_rungs) );
      ( "latency",
        Json.Object
          [
            ("cached", reservoir_json t.lat_cached);
            ("cold", reservoir_json t.lat_cold);
            ("other", reservoir_json t.lat_other);
          ] );
      ("breakers", breakers_json t);
      ("journal", journal_json t);
    ]
    @ (match t.serving with Some f -> [ ("serving", f ()) ] | None -> []))

(* Per-device calibration state for the health and epoch_status ops:
   the epoch being served, how stale it is (days since promotion on
   the service's logical clock), the rollback ring, and any refresh
   warning that previously went only to stderr. *)
let device_status_json t id =
  Option.map
    (fun (e : Registry.entry) ->
      Json.Object
        [
          ("id", Json.String id);
          ("epoch", Json.String e.Registry.epoch);
          ("ring", Json.Array (List.map (fun (ep, _) -> Json.String ep) e.Registry.ring));
          ( "promoted_day",
            match e.Registry.promoted_day with
            | None -> Json.Null
            | Some d -> Json.Number (float_of_int d) );
          ( "staleness_days",
            match e.Registry.promoted_day with
            | None -> Json.Null
            | Some d -> Json.Number (float_of_int (max 0 (t.day - d))) );
          ( "warning",
            match e.Registry.last_warning with None -> Json.Null | Some w -> Json.String w );
          ("quarantined", Json.Number (float_of_int (List.length e.Registry.quarantined)));
          ("bumps", Json.Number (float_of_int e.Registry.bumps));
        ])
    (Registry.find t.registry id)

let devices_status_json t ids =
  Json.Array (List.filter_map (fun id -> device_status_json t id) ids)

let health_json t =
  let c = Cache.counters t.cache in
  let extra = match t.extra_health with Some f -> f () | None -> [] in
  Json.Object
    ([
       ("ready", Json.Bool (not t.draining));
       ("draining", Json.Bool t.draining);
       ("cache_size", Json.Number (float_of_int c.Cache.size));
       ("cache_purged", Json.Number (float_of_int c.Cache.purged));
       ("panics", Json.Number (float_of_int t.panics));
       ("idle_ns", Json.Number t.idle_ns);
       ("day", Json.Number (float_of_int t.day));
       ("devices", devices_status_json t (Registry.ids t.registry));
       ( "latency",
         Json.Object
           [
             ("cached", reservoir_json t.lat_cached);
             ("cold", reservoir_json t.lat_cold);
             ("other", reservoir_json t.lat_other);
           ] );
       ("breakers", breakers_json t);
       ("journal", journal_json t);
     ]
    @ (match t.serving with Some f -> [ ("serving", f ()) ] | None -> [])
    @ extra)

let handle_other t req =
  match req with
  | Wire.Compile _ -> assert false
  | Wire.Stats { id } ->
    t.ok <- t.ok + 1;
    Json.Object (ok_fields id @ [ ("stats", stats_json t) ])
  | Wire.Devices { id } ->
    t.ok <- t.ok + 1;
    Json.Object (ok_fields id @ [ ("devices", Registry.to_json t.registry) ])
  | Wire.Bump { id; device } -> (
    let before = Option.map (fun e -> e.Registry.epoch) (Registry.find t.registry device) in
    match Registry.refresh t.registry ~id:device with
    | Error e ->
      t.errors <- t.errors + 1;
      Wire.error_response ~id:(Some id) e
    | Ok (entry, warning) ->
      t.ok <- t.ok + 1;
      let bumped = before <> Some entry.Registry.epoch in
      let purged = if bumped then purge_stale t else 0 in
      Json.Object
        (ok_fields id
        @ [
            ("device", Json.String device);
            ("epoch", Json.String entry.Registry.epoch);
            ("bumped", Json.Bool bumped);
            ("purged", Json.Number (float_of_int purged));
          ]
        @ match warning with None -> [] | Some w -> [ ("warning", Json.String w) ]))
  | Wire.Calibrate { id; device; day; force; full; poison } -> (
    match t.calibrator with
    | None ->
      t.errors <- t.errors + 1;
      Wire.typed_error ~id:(Some id) ~status:"calibration_disabled"
        "calibration data plane not enabled on this server"
    | Some cal -> (
      let eff_day =
        match day with
        | Some d ->
          t.day <- max t.day d;
          d
        | None -> t.day
      in
      (* A poisoned cycle must actually reach the gate, so it implies
         [force]. *)
      let force = force || poison in
      let extra_faults = if poison then [ Calibrator.Truncate_merge 0.85 ] else [] in
      match Calibrator.calibrate ~force ~full ~extra_faults cal ~id:device ~day:eff_day with
      | Error e ->
        t.errors <- t.errors + 1;
        Wire.error_response ~id:(Some id) e
      | Ok action ->
        t.ok <- t.ok + 1;
        let purged =
          match action with
          | Calibrator.Promoted _ | Calibrator.Rolled_back _ -> purge_stale t
          | _ -> 0
        in
        let epoch =
          match Registry.find t.registry device with
          | Some e -> e.Registry.epoch
          | None -> ""
        in
        Json.Object
          (ok_fields id
          @ [
              ("device", Json.String device);
              ("day", Json.Number (float_of_int eff_day));
              ("epoch", Json.String epoch);
              ( "promoted",
                Json.Bool (match action with Calibrator.Promoted _ -> true | _ -> false) );
              ("purged", Json.Number (float_of_int purged));
              ("result", Calibrator.action_to_json action);
            ])))
  | Wire.Epoch_status { id; device } -> (
    let unknown =
      match device with
      | Some d when Registry.find t.registry d = None -> Some d
      | _ -> None
    in
    match unknown with
    | Some d ->
      t.errors <- t.errors + 1;
      Wire.error_response ~id:(Some id) ("unknown device " ^ d)
    | None ->
      t.ok <- t.ok + 1;
      let ids = match device with Some d -> [ d ] | None -> Registry.ids t.registry in
      Json.Object
        (ok_fields id
        @ [
            ("day", Json.Number (float_of_int t.day));
            ("devices", devices_status_json t ids);
          ]))
  | Wire.Rollback { id; device } -> (
    let result =
      match t.calibrator with
      | Some cal -> Calibrator.rollback cal ~id:device ~day:t.day
      | None -> Registry.rollback ~day:t.day t.registry ~id:device
    in
    match result with
    | Error e ->
      t.errors <- t.errors + 1;
      Wire.typed_error ~id:(Some id) ~status:"rollback_failed" e
    | Ok entry ->
      t.ok <- t.ok + 1;
      let purged = purge_stale t in
      Json.Object
        (ok_fields id
        @ [
            ("device", Json.String device);
            ("epoch", Json.String entry.Registry.epoch);
            ("ring_depth", Json.Number (float_of_int (List.length entry.Registry.ring)));
            ("purged", Json.Number (float_of_int purged));
          ]))
  | Wire.Ping { id } ->
    t.ok <- t.ok + 1;
    Json.Object (ok_fields id @ [ ("pong", Json.Bool true) ])
  | Wire.Health { id } ->
    t.ok <- t.ok + 1;
    Json.Object (ok_fields id @ [ ("health", health_json t) ])
  | Wire.Shutdown { id } ->
    t.ok <- t.ok + 1;
    Json.Object (ok_fields id @ [ ("stopping", Json.Bool true) ])

(* A request staged for after the parallel cold-compile phase.
   Non-compile ops are deferred too, so a [stats] pipelined behind
   compiles in one batch observes the batch's effects. *)
type staged =
  | Done of Json.t
  | Hit of { id : string; device : string; epoch : string; key : string; entry : Cache.entry }
  | Miss of { id : string; device : string; epoch : string; key : string; slot : int }
  | Other of Wire.request

(* One finished response, either as a document or as a hit that can
   take the pre-rendered fast path.  Both finalizers below produce
   byte-identical wire lines. *)
type rendered =
  | R_doc of Json.t
  | R_hit of { id : string; device : string; epoch : string; key : string; entry : Cache.entry }

(* What the insertion phase decided about one compile slot. *)
type slot_outcome =
  | Served of Cache.entry
  | Overrun of { deadline : float; elapsed : float }
  | Failed of string

let handle_batch_staged t requests =
  let budget = ref t.config.queue_bound in
  let nslots = ref 0 in
  let slot_of_key = Hashtbl.create 16 in
  let work = Hashtbl.create 16 in
  let staged =
    List.map
      (fun req ->
        match req with
        | Wire.Compile { id; device; circuit; params } ->
          if !budget <= 0 then begin
            t.overloaded <- t.overloaded + 1;
            Done (Wire.overloaded_response ~id:(Some id))
          end
          else begin
            decr budget;
            let started = t.clock () in
            match resolve t ~device ~params circuit with
            | Error e ->
              t.errors <- t.errors + 1;
              Done (Wire.error_response ~id:(Some id) e)
            | Ok (entry, canon, key) -> (
              let epoch = entry.Registry.epoch in
              match Cache.find t.cache key with
              | Some centry ->
                (* A hit never exercises the compile path, so it is
                   served even through an open breaker. *)
                t.ok <- t.ok + 1;
                reservoir_record t.lat_cached (t.clock () -. started);
                Hit { id; device; epoch; key; entry = centry }
              | None -> (
                match Breaker.check (breaker_for t device) ~now:(t.clock ()) with
                | Breaker.Reject retry_after ->
                  t.breaker_rejected <- t.breaker_rejected + 1;
                  Done (Wire.breaker_open_response ~id:(Some id) ~device ~retry_after)
                | Breaker.Admit | Breaker.Probe ->
                  let slot =
                    match Hashtbl.find_opt slot_of_key key with
                    | Some s -> s
                    | None ->
                      let s = !nslots in
                      incr nslots;
                      Hashtbl.add slot_of_key key s;
                      Hashtbl.add work s (device, entry, params, canon, key);
                      s
                  in
                  Miss { id; device; epoch; key; slot }))
          end
        | other -> Other other)
      requests
  in
  let n = !nslots in
  (* Fault sites are numbered by a monotone attempt counter so an
     injected plan hits the same compiles at every [jobs] value. *)
  let base = t.cold_attempts in
  t.cold_attempts <- t.cold_attempts + n;
  let compiled =
    if n = 0 then [||]
    else
      Pool.parallel_chunks ~jobs:t.config.jobs ~n (fun ~lo ~hi ->
          List.init (hi - lo) (fun k ->
              let slot = lo + k in
              let _, entry, params, canon, _ = Hashtbl.find work slot in
              run_slot t ~nth:(base + slot) entry params (Lazy.force canon)))
      |> List.concat |> Array.of_list
  in
  (* Insert in slot (first-appearance) order so cache recency is
     deterministic regardless of [jobs].  Breaker outcomes are
     recorded here, one per slot. *)
  let outcomes =
    Array.mapi
      (fun slot (result, elapsed) ->
        let device, rentry, params, _, key = Hashtbl.find work slot in
        let breaker = breaker_for t device in
        let now = t.clock () in
        reservoir_record t.lat_cold elapsed;
        match result with
        | Error msg ->
          Breaker.record_failure breaker ~now;
          t.compile_failures <- t.compile_failures + 1;
          Failed msg
        | Ok (schedule, stats) ->
          let overrun =
            match effective_deadline t params with
            | None -> false
            | Some d -> elapsed > d *. t.config.deadline_grace
          in
          if overrun || not (Breaker.rung_acceptable breaker stats.Xtalk_sched.rung) then
            Breaker.record_failure breaker ~now
          else Breaker.record_success breaker ~now;
          (* The schedule is valid even when late: cache it so a retry
             of the same request is a hit. *)
          let centry = { Cache.schedule; stats; epoch = rentry.Registry.epoch } in
          cache_insert t key centry;
          tally_cold t stats;
          if overrun then
            Overrun
              {
                deadline = Option.value (effective_deadline t params) ~default:0.0;
                elapsed;
              }
          else Served centry)
      compiled
  in
  List.map
    (function
      | Done response -> R_doc response
      | Hit { id; device; epoch; key; entry } -> R_hit { id; device; epoch; key; entry }
      | Other req ->
        let started = t.clock () in
        let resp = handle_other t req in
        reservoir_record t.lat_other (t.clock () -. started);
        R_doc resp
      | Miss { id; device; epoch; key; slot } ->
        R_doc
          (match outcomes.(slot) with
          | Served { Cache.schedule; stats; epoch = _ } ->
            t.ok <- t.ok + 1;
            compile_response ~id { device; epoch; key; cached = false; schedule; stats }
          | Overrun { deadline; elapsed } ->
            t.deadline_exceeded <- t.deadline_exceeded + 1;
            Wire.deadline_exceeded_response ~id:(Some id) ~deadline ~elapsed
          | Failed msg ->
            t.errors <- t.errors + 1;
            Wire.internal_error_response ~id:(Some id) msg))
    staged

let finalize_doc = function
  | R_doc d -> d
  | R_hit { id; device; epoch; key; entry } ->
    compile_response ~id
      {
        device;
        epoch;
        key;
        cached = true;
        schedule = entry.Cache.schedule;
        stats = entry.Cache.stats;
      }

let finalize_line t = function
  | R_doc d -> Json.to_string ~indent:false d
  | R_hit { id; device; epoch; key; entry } -> render_hit t ~id ~device ~epoch ~key entry

let handle_batch t requests = List.map finalize_doc (handle_batch_staged t requests)

let handle_batch_rendered t requests =
  List.map (finalize_line t) (handle_batch_staged t requests)

let handle t req =
  match handle_batch t [ req ] with
  | [ response ] -> response
  | _ -> assert false
