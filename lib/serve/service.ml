module Circuit = Qcx_circuit.Circuit
module Schedule = Qcx_circuit.Schedule
module Device = Qcx_device.Device
module Xtalk_sched = Qcx_scheduler.Xtalk_sched
module Pool = Qcx_util.Pool
module Json = Qcx_persist.Json

type config = { jobs : int; queue_bound : int; cache_capacity : int }

let default_config = { jobs = 1; queue_bound = 64; cache_capacity = 256 }

type t = {
  config : config;
  registry : Registry.t;
  cache : Cache.t;
  rung_hist : int array;  (** indexed like [Xtalk_sched.all_rungs] *)
  mutable ok : int;
  mutable errors : int;
  mutable overloaded : int;
  mutable cold_compiles : int;
  mutable compile_seconds : float;
}

type outcome = {
  device : string;
  epoch : string;
  key : string;
  cached : bool;
  schedule : Schedule.t;
  stats : Xtalk_sched.stats;
}

let create ?(config = default_config) registry =
  if config.queue_bound <= 0 then invalid_arg "Service.create: queue_bound must be positive";
  {
    config;
    registry;
    cache = Cache.create ~capacity:config.cache_capacity;
    rung_hist = Array.make (List.length Xtalk_sched.all_rungs) 0;
    ok = 0;
    errors = 0;
    overloaded = 0;
    cold_compiles = 0;
    compile_seconds = 0.0;
  }

let registry t = t.registry
let cache t = t.cache
let config t = t.config

let rung_index rung =
  let rec scan i = function
    | [] -> 0
    | r :: rest -> if r = rung then i else scan (i + 1) rest
  in
  scan 0 Xtalk_sched.all_rungs

let cache_key ~device_id ~epoch ~params canon =
  let knob =
    Printf.sprintf "omega=%h threshold=%h deadline=%s ladder=%s" params.Wire.omega
      params.Wire.threshold
      (match params.Wire.deadline with None -> "none" | Some d -> Printf.sprintf "%h" d)
      (Xtalk_sched.rung_name params.Wire.ladder_start)
  in
  Digest.to_hex
    (Digest.string
       (String.concat "\n"
          [ "qcx-schedule-key-v1"; device_id; epoch; knob; Canon.serialize canon ]))

(* The cold path: the degradation ladder means this never raises for a
   well-formed canonical circuit. *)
let cold_compile (entry : Registry.entry) (params : Wire.params) canon =
  Xtalk_sched.schedule ~omega:params.omega ~threshold:params.threshold
    ?deadline_seconds:params.deadline ~ladder_start:params.ladder_start
    ~device:entry.Registry.device ~xtalk:entry.Registry.xtalk canon

let tally_cold t (stats : Xtalk_sched.stats) =
  t.cold_compiles <- t.cold_compiles + 1;
  t.compile_seconds <- t.compile_seconds +. stats.solve_seconds;
  let i = rung_index stats.rung in
  t.rung_hist.(i) <- t.rung_hist.(i) + 1

let resolve t ~device ~params circuit =
  match Registry.find t.registry device with
  | None -> Error ("unknown device " ^ device)
  | Some entry -> (
    try
      let canon = Canon.normalize ~nqubits:(Device.nqubits entry.Registry.device) circuit in
      let key = cache_key ~device_id:device ~epoch:entry.Registry.epoch ~params canon in
      Ok (entry, canon, key)
    with Invalid_argument m -> Error m)

let compile t ~device ?(params = Wire.default_params) circuit =
  match resolve t ~device ~params circuit with
  | Error e ->
    t.errors <- t.errors + 1;
    Error e
  | Ok (entry, canon, key) ->
    let epoch = entry.Registry.epoch in
    t.ok <- t.ok + 1;
    (match Cache.find t.cache key with
    | Some centry ->
      Ok
        {
          device;
          epoch;
          key;
          cached = true;
          schedule = centry.Cache.schedule;
          stats = centry.Cache.stats;
        }
    | None ->
      let schedule, stats = cold_compile entry params canon in
      Cache.add t.cache key { Cache.schedule; stats };
      tally_cold t stats;
      Ok { device; epoch; key; cached = false; schedule; stats })

(* ---- responses ---- *)

let ok_fields id = [ ("id", Json.String id); ("status", Json.String "ok") ]

let compile_response ~id (o : outcome) =
  Json.Object
    (ok_fields id
    @ [
        ("device", Json.String o.device);
        ("epoch", Json.String o.epoch);
        ("key", Json.String o.key);
        ("cached", Json.Bool o.cached);
        ("rung", Json.String (Xtalk_sched.rung_name o.stats.rung));
        ("makespan", Json.Number (Schedule.makespan o.schedule));
        ("stats", Wire.stats_to_json o.stats);
        ("schedule", Wire.schedule_to_json o.schedule);
      ])

let stats_json t =
  let c = Cache.counters t.cache in
  Json.Object
    [
      ( "cache",
        Json.Object
          [
            ("hits", Json.Number (float_of_int c.Cache.hits));
            ("misses", Json.Number (float_of_int c.Cache.misses));
            ("evictions", Json.Number (float_of_int c.Cache.evictions));
            ("insertions", Json.Number (float_of_int c.Cache.insertions));
            ("size", Json.Number (float_of_int c.Cache.size));
            ("capacity", Json.Number (float_of_int c.Cache.capacity));
          ] );
      ("registry", Registry.to_json t.registry);
      ( "served",
        Json.Object
          [
            ("ok", Json.Number (float_of_int t.ok));
            ("errors", Json.Number (float_of_int t.errors));
            ("overloaded", Json.Number (float_of_int t.overloaded));
            ("cold_compiles", Json.Number (float_of_int t.cold_compiles));
            ("compile_seconds", Json.Number t.compile_seconds);
          ] );
      ( "rungs",
        Json.Object
          (List.mapi
             (fun i r ->
               (Xtalk_sched.rung_name r, Json.Number (float_of_int t.rung_hist.(i))))
             Xtalk_sched.all_rungs) );
    ]

let handle_other t req =
  match req with
  | Wire.Compile _ -> assert false
  | Wire.Stats { id } ->
    t.ok <- t.ok + 1;
    Json.Object (ok_fields id @ [ ("stats", stats_json t) ])
  | Wire.Devices { id } ->
    t.ok <- t.ok + 1;
    Json.Object (ok_fields id @ [ ("devices", Registry.to_json t.registry) ])
  | Wire.Bump { id; device } -> (
    let before = Option.map (fun e -> e.Registry.epoch) (Registry.find t.registry device) in
    match Registry.refresh t.registry ~id:device with
    | Error e ->
      t.errors <- t.errors + 1;
      Wire.error_response ~id:(Some id) e
    | Ok entry ->
      t.ok <- t.ok + 1;
      Json.Object
        (ok_fields id
        @ [
            ("device", Json.String device);
            ("epoch", Json.String entry.Registry.epoch);
            ("bumped", Json.Bool (before <> Some entry.Registry.epoch));
          ]))
  | Wire.Ping { id } ->
    t.ok <- t.ok + 1;
    Json.Object (ok_fields id @ [ ("pong", Json.Bool true) ])
  | Wire.Shutdown { id } ->
    t.ok <- t.ok + 1;
    Json.Object (ok_fields id @ [ ("stopping", Json.Bool true) ])

(* A request staged for after the parallel cold-compile phase.
   Non-compile ops are deferred too, so a [stats] pipelined behind
   compiles in one batch observes the batch's effects. *)
type staged =
  | Done of Json.t
  | Miss of { id : string; device : string; epoch : string; key : string; slot : int }
  | Other of Wire.request

let handle_batch t requests =
  let budget = ref t.config.queue_bound in
  let nslots = ref 0 in
  let slot_of_key = Hashtbl.create 16 in
  let work = Hashtbl.create 16 in
  let staged =
    List.map
      (fun req ->
        match req with
        | Wire.Compile { id; device; circuit; params } ->
          if !budget <= 0 then begin
            t.overloaded <- t.overloaded + 1;
            Done (Wire.overloaded_response ~id:(Some id))
          end
          else begin
            decr budget;
            match resolve t ~device ~params circuit with
            | Error e ->
              t.errors <- t.errors + 1;
              Done (Wire.error_response ~id:(Some id) e)
            | Ok (entry, canon, key) -> (
              let epoch = entry.Registry.epoch in
              t.ok <- t.ok + 1;
              match Cache.find t.cache key with
              | Some centry ->
                Done
                  (compile_response ~id
                     {
                       device;
                       epoch;
                       key;
                       cached = true;
                       schedule = centry.Cache.schedule;
                       stats = centry.Cache.stats;
                     })
              | None ->
                let slot =
                  match Hashtbl.find_opt slot_of_key key with
                  | Some s -> s
                  | None ->
                    let s = !nslots in
                    incr nslots;
                    Hashtbl.add slot_of_key key s;
                    Hashtbl.add work s (entry, params, canon, key);
                    s
                in
                Miss { id; device; epoch; key; slot })
          end
        | other -> Other other)
      requests
  in
  let n = !nslots in
  let compiled =
    if n = 0 then [||]
    else
      Pool.parallel_chunks ~jobs:t.config.jobs ~n (fun ~lo ~hi ->
          List.init (hi - lo) (fun k ->
              let entry, params, canon, _ = Hashtbl.find work (lo + k) in
              cold_compile entry params canon))
      |> List.concat |> Array.of_list
  in
  (* Insert in slot (first-appearance) order so cache recency is
     deterministic regardless of [jobs]. *)
  Array.iteri
    (fun slot (schedule, stats) ->
      let _, _, _, key = Hashtbl.find work slot in
      Cache.add t.cache key { Cache.schedule; stats };
      tally_cold t stats)
    compiled;
  List.map
    (function
      | Done response -> response
      | Other req -> handle_other t req
      | Miss { id; device; epoch; key; slot } ->
        let schedule, stats = compiled.(slot) in
        compile_response ~id { device; epoch; key; cached = false; schedule; stats })
    staged

let handle t req =
  match handle_batch t [ req ] with
  | [ response ] -> response
  | _ -> assert false

let save_cache t ~path = Cache.save ~path t.cache

let load_cache t ~path =
  match Cache.load ~capacity:t.config.cache_capacity ~path with
  | Error e -> Error e
  | Ok loaded ->
    let keys = List.rev (Cache.keys_newest_first loaded) in
    List.iter
      (fun key ->
        match Cache.find loaded key with
        | Some entry -> Cache.add t.cache key entry
        | None -> ())
      keys;
    Ok (List.length keys)
