module Rng = Qcx_util.Rng
module Service = Qcx_serve.Service

type frame_fault = Torn | Garbage | Oversize

let frame_fault_name = function
  | Torn -> "torn"
  | Garbage -> "garbage"
  | Oversize -> "oversize"

type config = {
  torn_frame : float;
  garbage_frame : float;
  oversize_frame : float;
  compile_fail : float;
  compile_stall : float;
  stall_seconds : float;
  journal_full : float;
  drift_spike : float;
  spike_factor : float;
  truncate_merge : float;
  truncate_fraction : float;
  canary_flake : float;
  crash_promotion : float;
  replica_partition : float;
  replica_slow : float;
  slow_ack_seconds : float;
  replica_tear : float;
}

let default_config =
  {
    torn_frame = 0.06;
    garbage_frame = 0.05;
    oversize_frame = 0.03;
    compile_fail = 0.08;
    compile_stall = 0.05;
    stall_seconds = 0.12;
    journal_full = 0.08;
    drift_spike = 0.10;
    spike_factor = 4.0;
    truncate_merge = 0.08;
    truncate_fraction = 0.85;
    canary_flake = 0.06;
    crash_promotion = 0.05;
    replica_partition = 0.25;
    replica_slow = 0.15;
    slow_ack_seconds = 0.005;
    replica_tear = 1.0;
  }

let none =
  {
    torn_frame = 0.0;
    garbage_frame = 0.0;
    oversize_frame = 0.0;
    compile_fail = 0.0;
    compile_stall = 0.0;
    stall_seconds = 0.0;
    journal_full = 0.0;
    drift_spike = 0.0;
    spike_factor = 1.0;
    truncate_merge = 0.0;
    truncate_fraction = 0.0;
    canary_flake = 0.0;
    crash_promotion = 0.0;
    replica_partition = 0.0;
    replica_slow = 0.0;
    slow_ack_seconds = 0.0;
    replica_tear = 0.0;
  }

type t = { seed : int; config : config }

let create ?(config = default_config) ~seed () = { seed; config }
let config t = t.config

(* Same keying discipline as Fault_plan: every decision is a pure
   function of (seed, site), so a campaign replays identically at any
   jobs count and evaluation order. *)
let keyed t key = Rng.create (Hashtbl.hash (t.seed, "qcx-service-faults", key))

let frame_fault t ~request =
  let rng = keyed t ("frame", request) in
  let u = Rng.unit_float rng in
  let c = t.config in
  if u < c.torn_frame then Some Torn
  else if u < c.torn_frame +. c.garbage_frame then Some Garbage
  else if u < c.torn_frame +. c.garbage_frame +. c.oversize_frame then Some Oversize
  else None

let corrupt_frame t ~request ~max_frame line =
  match frame_fault t ~request with
  | None -> (line, None)
  | Some Torn ->
    let rng = keyed t ("tear", request) in
    (Fault_plan.truncate_string ~rng line, Some Torn)
  | Some Garbage ->
    let rng = keyed t ("garble", request) in
    let s = ref line in
    for _ = 1 to 3 do
      s := Fault_plan.bitflip_string ~rng !s
    done;
    (!s, Some Garbage)
  | Some Oversize ->
    let pad = max 1 (max_frame + 1 - String.length line) in
    (line ^ String.make pad 'x', Some Oversize)

let compile_fault t ~nth =
  let rng = keyed t ("compile", nth) in
  let u = Rng.unit_float rng in
  let c = t.config in
  if u < c.compile_fail then Some (Service.Fail_compile "injected compile failure")
  else if u < c.compile_fail +. c.compile_stall then
    Some (Service.Stall_compile c.stall_seconds)
  else None

let journal_fault t ~nth =
  let rng = keyed t ("journal", nth) in
  Rng.unit_float rng < t.config.journal_full

let kill_offset t ~len =
  if len <= 0 then 0
  else
    let rng = keyed t ("kill", len) in
    Rng.int rng (len + 1)

(* ---- shard-level fleet faults (DESIGN.md §14) ---- *)

(* Which request index the kill lands between (drawn from the middle
   half of the run, so there is real pre-kill state to lose and real
   post-kill traffic to fail over) and which shard dies. *)
let shard_kill t ~requests ~shards =
  let requests = max 1 requests and shards = max 1 shards in
  let at =
    (requests / 4) + Rng.int (keyed t ("shard-kill-at", requests)) (max 1 (requests / 2))
  in
  let victim = Rng.int (keyed t ("shard-kill-victim", shards)) shards in
  (at, victim)

let replica_fault t ~shard ~nth =
  let c = t.config in
  let u = Rng.unit_float (keyed t ("replica", shard, nth)) in
  if u < c.replica_partition then Some Qcx_serve.Replica.Partition
  else if u < c.replica_partition +. c.replica_slow then
    Some (Qcx_serve.Replica.Slow_ack c.slow_ack_seconds)
  else None

(* Byte offset a torn replica tail is truncated to — strictly inside
   the file, so the tear really damages the last record(s). *)
let replica_tear t ~len =
  if len <= 1 || t.config.replica_tear <= 0.0 then None
  else
    let rng = keyed t ("replica-tear", len) in
    if Rng.unit_float rng < t.config.replica_tear then Some (1 + Rng.int rng (len - 1))
    else None

(* Each calibration-fault class rolls independently — a single cycle
   can face a drift spike AND a flaky canary, which is exactly the
   combination the gate has to survive. *)
let calibration_faults t ~id ~day =
  let c = t.config in
  let roll site p = p > 0.0 && Rng.unit_float (keyed t (site, id, day)) < p in
  let faults = [] in
  let faults =
    if roll "drift-spike" c.drift_spike then
      Qcx_serve.Calibrator.Drift_spike c.spike_factor :: faults
    else faults
  in
  let faults =
    if roll "truncate-merge" c.truncate_merge then
      Qcx_serve.Calibrator.Truncate_merge c.truncate_fraction :: faults
    else faults
  in
  let faults =
    if roll "canary-flake" c.canary_flake then Qcx_serve.Calibrator.Canary_flake :: faults
    else faults
  in
  let faults =
    if roll "crash-promotion" c.crash_promotion then
      (* Pick the crash side from an independent stream so adding a
         stage never reshuffles the other classes. *)
      let before = Rng.unit_float (keyed t ("crash-side", id, day)) < 0.5 in
      (if before then Qcx_serve.Calibrator.Crash_before_commit
       else Qcx_serve.Calibrator.Crash_after_commit)
      :: faults
    else faults
  in
  List.rev faults
