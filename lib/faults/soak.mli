(** Fault-injected soak campaigns over the operational loop.

    One campaign simulates [days] consecutive days of the paper's
    Figure-2 loop on a drifting device ({!Qcx_device.Drift.on_day}),
    with a {!Fault_plan} attacking every layer: characterize under
    experiment faults, persist the snapshot (which the plan may then
    corrupt on disk), reload resiliently the next morning, and compile
    a SWAP-circuit workload through the degradation ladder.  The
    report aggregates what the robustness layer is accountable for:
    compile availability (must be 100% — the ladder never fails),
    which rung served each compile, every quarantined snapshot, any
    corrupt snapshot that was silently ingested (must be zero), and the
    oracle-error inflation caused by serving stale characterization
    data.

    All randomness is keyed on [(seed, day)], so a campaign is
    bit-identical at every [jobs] — reports can be string-compared. *)

type config = {
  days : int;
  seed : int;
  jobs : int;  (** domains for the noisy executions; never changes results *)
  rb_params : Qcx_characterization.Rb.params;  (** small, soak-friendly default *)
  retry : Qcx_characterization.Policy.retry;
  threshold : float;  (** high-crosstalk flagging threshold (paper: 3) *)
  omega : float;  (** XtalkSched crosstalk weight *)
  node_budget : int;  (** solver budget for non-faulted compiles *)
  full_every : int;  (** full characterization every this many days *)
  keep : int;  (** snapshot history depth for fallback loads *)
}

val default_config : config
(** 10 days, seed 7, single job, reduced RB parameters. *)

type day_report = {
  day : int;
  loaded_from : string option;  (** snapshot that survived validation *)
  quarantined : (string * string) list;  (** (path, reason) *)
  corrupt_ingested : int;  (** deliberately corrupted snapshots loaded as good *)
  freshness : (string * int) list;  (** characterization freshness buckets *)
  attempts : int;
  injected_experiment_faults : int;
  simulated_seconds : float;  (** timeout/backoff wall-clock charged *)
  compiles : int;
  compile_failures : int;  (** exceptions or invalid schedules; must be 0 *)
  rungs : (string * int) list;  (** degradation rung of each compile *)
  mean_error_inflation : float;
      (** (oracle error of served schedule - oracle error with perfect
          characterization) / the latter, averaged over the workload *)
  snapshot_fault : string option;  (** on-disk fault injected today *)
}

type report = {
  device : string;
  days : day_report list;
  total_compiles : int;
  availability : float;  (** fraction of compiles that produced a valid schedule *)
  rung_histogram : (string * int) list;
  total_quarantined : int;
  total_corrupt_ingested : int;
  total_experiment_faults : int;
  total_snapshot_faults : int;
  mean_error_inflation : float;
}

val run :
  ?config:config -> ?fault_config:Fault_plan.config -> dir:string -> Qcx_device.Device.t -> report
(** Run a campaign, persisting snapshots under [dir] (created if
    missing).  Pass {!Fault_plan.none} as [fault_config] for a
    fault-free control run. *)

val report_to_json : report -> Qcx_persist.Json.t
