(** Deterministic fault plans for the serving layer's chaos harness
    (DESIGN.md §9) — the {!Fault_plan} philosophy lifted from the
    characterization loop up into the compilation service.

    A plan decides, from a seed alone, which request frames arrive
    torn / bit-flipped / absurdly long, which cold compiles die or
    stall, which journal appends hit a full disk, and at which byte
    offset a simulated [kill -9] truncates the journal.  Decisions are
    keyed on [(seed, site)], so a campaign replays identically at
    every [--jobs] value and evaluation order. *)

module Service = Qcx_serve.Service

type frame_fault =
  | Torn  (** the line is cut short mid-byte *)
  | Garbage  (** token bytes bit-flipped *)
  | Oversize  (** padded past the server's frame bound *)

val frame_fault_name : frame_fault -> string

type config = {
  torn_frame : float;  (** per-request probability of a torn frame *)
  garbage_frame : float;  (** ... of bit-flip corruption *)
  oversize_frame : float;  (** ... of oversize padding *)
  compile_fail : float;  (** per-compile probability the slot dies *)
  compile_stall : float;  (** ... that it hangs first *)
  stall_seconds : float;  (** how long a stalled compile hangs *)
  journal_full : float;  (** per-append probability of disk-full *)
  drift_spike : float;
      (** per-cycle probability the hardware drifts abruptly (the
          calibrator must catch it or the canary must reject it) *)
  spike_factor : float;  (** conditional-error multiplier of a spike *)
  truncate_merge : float;  (** per-cycle probability of a torn Opt-3 merge *)
  truncate_fraction : float;  (** fraction of entries a torn merge loses *)
  canary_flake : float;  (** per-cycle probability the canary verdict flips *)
  crash_promotion : float;
      (** per-cycle probability the process dies mid-promotion (side —
          before/after the atomic pointer commit — drawn independently) *)
  replica_partition : float;
      (** per-flush probability the shard's replica stream is
          partitioned from its peer (the flush fails, lag accrues) *)
  replica_slow : float;  (** per-flush probability of a slow peer ack *)
  slow_ack_seconds : float;  (** how long a slow ack stalls the flush *)
  replica_tear : float;
      (** probability the killed shard's replica file has a torn tail
          (truncated mid-record before the rebuild) *)
}

val default_config : config
(** Aggressive enough that a 20-seed campaign exercises every class. *)

val none : config
(** All probabilities zero — a fault-free control campaign. *)

type t

val create : ?config:config -> seed:int -> unit -> t
val config : t -> config

val frame_fault : t -> request:int -> frame_fault option

val corrupt_frame :
  t -> request:int -> max_frame:int -> string -> string * frame_fault option
(** Apply request number [request]'s frame fault (if any) to the
    encoded line, returning what actually goes on the wire. *)

val compile_fault : t -> nth:int -> Service.compile_fault option
(** Partially applied, this is exactly the hook
    {!Qcx_serve.Service.set_compile_fault} expects. *)

val journal_fault : t -> nth:int -> bool
(** Whether journal append number [nth] hits the injected full disk —
    the hook {!Qcx_serve.Journal.set_fault} expects. *)

val kill_offset : t -> len:int -> int
(** Where ([0..len]) the simulated [kill -9] truncates a journal of
    [len] bytes. *)

val shard_kill : t -> requests:int -> shards:int -> int * int
(** The fleet drill's [(kill_after_request, victim_shard)] — the kill
    lands in the middle half of the run so there is real pre-kill
    state to lose and real post-kill traffic to fail over. *)

val replica_fault : t -> shard:int -> nth:int -> Qcx_serve.Replica.fault option
(** Partially applied (per shard), the hook
    {!Qcx_serve.Replica.set_fault} expects: partition / slow-ack
    decisions for the shard's [nth] replica flush. *)

val replica_tear : t -> len:int -> int option
(** Byte length ([1..len-1]) a torn replica tail is truncated to, or
    [None] when this seed leaves the replica intact. *)

val calibration_faults : t -> id:string -> day:int -> Qcx_serve.Calibrator.fault list
(** The calibration injections for device [id]'s cycle on [day] —
    passed as [extra_faults] to {!Qcx_serve.Calibrator.calibrate}.
    Classes roll independently, each keyed on [(seed, site, id, day)],
    so one cycle can combine a drift spike with a flaky canary and the
    plan replays identically at every [--jobs] value. *)
