module Rng = Qcx_util.Rng
module Json = Qcx_persist.Json
module Store = Qcx_persist.Store
module Device = Qcx_device.Device
module Drift = Qcx_device.Drift
module Crosstalk = Qcx_device.Crosstalk
module Rb = Qcx_characterization.Rb
module Policy = Qcx_characterization.Policy
module Schedule = Qcx_circuit.Schedule
module Xtalk_sched = Qcx_scheduler.Xtalk_sched
module Evaluate = Qcx_scheduler.Evaluate
module Swap_circuits = Qcx_benchmarks.Swap_circuits

type config = {
  days : int;
  seed : int;
  jobs : int;
  rb_params : Rb.params;
  retry : Policy.retry;
  threshold : float;
  omega : float;
  node_budget : int;
  full_every : int;
  keep : int;
}

let default_config =
  {
    days = 10;
    seed = 7;
    jobs = 1;
    rb_params = { Rb.lengths = [ 1; 2; 4; 8 ]; seeds = 2; trials = 64 };
    retry = Policy.default_retry;
    threshold = 3.0;
    omega = 0.5;
    node_budget = 200_000;
    full_every = 7;
    keep = 5;
  }

type day_report = {
  day : int;
  loaded_from : string option;
  quarantined : (string * string) list;
  corrupt_ingested : int;
  freshness : (string * int) list;
  attempts : int;
  injected_experiment_faults : int;
  simulated_seconds : float;
  compiles : int;
  compile_failures : int;
  rungs : (string * int) list;
  mean_error_inflation : float;
  snapshot_fault : string option;
}

type report = {
  device : string;
  days : day_report list;
  total_compiles : int;
  availability : float;
  rung_histogram : (string * int) list;
  total_quarantined : int;
  total_corrupt_ingested : int;
  total_experiment_faults : int;
  total_snapshot_faults : int;
  mean_error_inflation : float;
}

let snapshot_path dir day = Filename.concat dir (Printf.sprintf "xtalk-day%03d.json" day)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let freshness_bucket = function
  | Policy.Fresh -> "fresh"
  | Policy.Recovered _ -> "recovered"
  | Policy.Stale_previous -> "stale-previous"
  | Policy.Stale_calibration -> "stale-calibration"

let freshness_buckets = [ "fresh"; "recovered"; "stale-previous"; "stale-calibration" ]

let count_by buckets key items =
  List.map (fun b -> (b, List.length (List.filter (fun x -> key x = b) items))) buckets

(* A small daily compile workload: SWAP circuits between a few
   endpoint pairs (the paper's benchmark shape), plus layers of CNOTs
   over a maximal disjoint edge set — the latter guarantees gates on
   the device's high-crosstalk edges can overlap, so the solver has
   real serialization decisions to make and staleness has something to
   get wrong. *)
let stress_circuit device ~layers =
  let disjoint =
    List.fold_left
      (fun acc (a, b) ->
        if List.exists (fun (c, d) -> a = c || a = d || b = c || b = d) acc then acc
        else (a, b) :: acc)
      []
      (Qcx_device.Topology.edges (Device.topology device))
  in
  let rec go c n =
    if n = 0 then c
    else
      go
        (List.fold_left
           (fun c (a, b) -> Qcx_circuit.Circuit.cnot c ~control:a ~target:b)
           c disjoint)
        (n - 1)
  in
  go (Qcx_circuit.Circuit.create (Device.nqubits device)) layers

let workload device =
  let n = Device.nqubits device in
  let pairs =
    List.sort_uniq compare
      (List.filter
         (fun (a, b) -> a <> b)
         [ (0, n - 1); (0, n / 2); (n / 2, n - 1) ])
  in
  stress_circuit device ~layers:2
  :: List.map
       (fun (src, dst) -> (Swap_circuits.build device ~src ~dst).Swap_circuits.circuit)
       pairs

let run ?(config = default_config) ?(fault_config = Fault_plan.default_config) ~dir device
    =
  if config.days <= 0 then invalid_arg "Soak.run: days must be positive";
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let faults = Fault_plan.create ~config:fault_config ~seed:config.seed () in
  let corrupted = Hashtbl.create 8 in
  let day_reports = ref [] in
  for day = 0 to config.days - 1 do
    let dev = Drift.on_day device ~day in
    let topology = Device.topology dev in
    (* 1. Load the freshest surviving snapshot; quarantine the rest. *)
    let paths = List.init (min day config.keep) (fun i -> snapshot_path dir (day - 1 - i)) in
    let lrep = Store.load_crosstalk_resilient ~topology ~paths () in
    let corrupt_ingested =
      match lrep.Store.source with
      | Some p when Hashtbl.mem corrupted p -> 1
      | _ -> 0
    in
    let previous = Option.value lrep.Store.data ~default:Crosstalk.empty in
    (* 2. Characterize under injected faults.  Full pass periodically
       and whenever no usable history exists; Optimization-3 refresh of
       the flagged pairs otherwise. *)
    let day_rng = Rng.create (Hashtbl.hash (config.seed, day, "qcx-soak-day")) in
    let policy =
      let flagged =
        Crosstalk.high_crosstalk_pairs previous (Device.calibration dev)
          ~threshold:config.threshold
      in
      if flagged = [] || day mod config.full_every = 0 then Policy.One_hop_binpacked
      else Policy.High_crosstalk_only flagged
    in
    let cplan = Policy.plan ~rng:(Rng.split_nth day_rng 0) dev policy in
    let resilient =
      Policy.characterize_resilient ~params:config.rb_params ~jobs:config.jobs
        ~retry:config.retry ~previous
        ~inject:(Fault_plan.inject faults ~day)
        ~rng:(Rng.split_nth day_rng 1) dev cplan
    in
    let xtalk = Crosstalk.merge previous resilient.Policy.outcome.Policy.xtalk in
    (* 3. Persist today's snapshot, then let the fault plan damage the
       file on disk — tomorrow's load must quarantine it, never ingest. *)
    let path = snapshot_path dir day in
    (match Store.save_crosstalk ~path xtalk with Ok () -> () | Error _ -> ());
    let snapshot_fault =
      match read_file path with
      | None -> None
      | Some contents -> (
        match Fault_plan.corrupt_file faults ~day contents with
        | None -> None
        | Some (kind, damaged) ->
          write_file path damaged;
          Hashtbl.replace corrupted path ();
          Some (Fault_plan.file_fault_name kind))
    in
    (* 4. Compile the day's workload off the (possibly stale)
       characterization; a solver-blowup fault zeroes the node budget
       so the degradation ladder must serve the request. *)
    let circuits = workload dev in
    let compile_failures = ref 0 in
    let rungs = ref [] in
    let inflations = ref [] in
    List.iteri
      (fun ci circuit ->
        let node_budget =
          if Fault_plan.solver_blowup faults ~day ~compile:ci then 0
          else config.node_budget
        in
        match
          Xtalk_sched.schedule ~omega:config.omega ~node_budget ~device:dev ~xtalk
            circuit
        with
        | exception _ -> incr compile_failures
        | sched, stats -> (
          (match Schedule.validate sched with
          | Ok () -> rungs := stats.Xtalk_sched.rung :: !rungs
          | Error _ -> incr compile_failures);
          (* Staleness-induced error inflation: oracle error of the
             schedule we actually serve vs. the one a perfectly
             characterized compiler would serve. *)
          match
            Xtalk_sched.schedule ~omega:config.omega ~node_budget:config.node_budget
              ~device:dev
              ~xtalk:(Device.ground_truth dev)
              circuit
          with
          | exception _ -> ()
          | ideal, _ ->
            let err = (Evaluate.oracle dev sched).Evaluate.error in
            let ideal_err = (Evaluate.oracle dev ideal).Evaluate.error in
            if Float.is_finite err && Float.is_finite ideal_err then
              inflations := ((err -. ideal_err) /. Float.max ideal_err 1e-9) :: !inflations))
      circuits;
    let mean xs = match xs with [] -> 0.0 | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
    day_reports :=
      {
        day;
        loaded_from = lrep.Store.source;
        quarantined = lrep.Store.quarantined;
        corrupt_ingested;
        freshness =
          count_by freshness_buckets
            (fun (_, f) -> freshness_bucket f)
            resilient.Policy.freshness;
        attempts = resilient.Policy.attempts;
        injected_experiment_faults = resilient.Policy.faults;
        simulated_seconds = resilient.Policy.simulated_seconds;
        compiles = List.length circuits;
        compile_failures = !compile_failures;
        rungs =
          count_by
            (List.map Xtalk_sched.rung_name Xtalk_sched.all_rungs)
            Xtalk_sched.rung_name !rungs;
        mean_error_inflation = mean !inflations;
        snapshot_fault;
      }
      :: !day_reports
  done;
  let days = List.rev !day_reports in
  let sum f = List.fold_left (fun acc d -> acc + f d) 0 days in
  let total_compiles = sum (fun d -> d.compiles) in
  let failures = sum (fun d -> d.compile_failures) in
  let rung_histogram =
    List.map
      (fun name ->
        (name, sum (fun d -> Option.value ~default:0 (List.assoc_opt name d.rungs))))
      (List.map Xtalk_sched.rung_name Xtalk_sched.all_rungs)
  in
  let inflations = List.map (fun (d : day_report) -> d.mean_error_inflation) days in
  {
    device = Device.name device;
    days;
    total_compiles;
    availability =
      (if total_compiles = 0 then 1.0
       else float_of_int (total_compiles - failures) /. float_of_int total_compiles);
    rung_histogram;
    total_quarantined = sum (fun d -> List.length d.quarantined);
    total_corrupt_ingested = sum (fun d -> d.corrupt_ingested);
    total_experiment_faults = sum (fun d -> d.injected_experiment_faults);
    total_snapshot_faults =
      sum (fun d -> match d.snapshot_fault with Some _ -> 1 | None -> 0);
    mean_error_inflation =
      List.fold_left ( +. ) 0.0 inflations /. float_of_int (List.length inflations);
  }

let assoc_json counts = Json.Object (List.map (fun (k, v) -> (k, Json.Number (float_of_int v))) counts)

let day_to_json d =
  Json.Object
    [
      ("day", Json.Number (float_of_int d.day));
      ( "loaded_from",
        match d.loaded_from with None -> Json.Null | Some p -> Json.String p );
      ( "quarantined",
        Json.Array
          (List.map
             (fun (p, reason) ->
               Json.Object [ ("path", Json.String p); ("reason", Json.String reason) ])
             d.quarantined) );
      ("corrupt_ingested", Json.Number (float_of_int d.corrupt_ingested));
      ("freshness", assoc_json d.freshness);
      ("attempts", Json.Number (float_of_int d.attempts));
      ("injected_experiment_faults", Json.Number (float_of_int d.injected_experiment_faults));
      ("simulated_seconds", Json.Number d.simulated_seconds);
      ("compiles", Json.Number (float_of_int d.compiles));
      ("compile_failures", Json.Number (float_of_int d.compile_failures));
      ("rungs", assoc_json d.rungs);
      ("mean_error_inflation", Json.Number d.mean_error_inflation);
      ( "snapshot_fault",
        match d.snapshot_fault with None -> Json.Null | Some k -> Json.String k );
    ]

let report_to_json r =
  Json.Object
    [
      ("format", Json.String "qcx-soak-report-v1");
      ("device", Json.String r.device);
      ("days", Json.Array (List.map day_to_json r.days));
      ("total_compiles", Json.Number (float_of_int r.total_compiles));
      ("availability", Json.Number r.availability);
      ("rung_histogram", assoc_json r.rung_histogram);
      ("total_quarantined", Json.Number (float_of_int r.total_quarantined));
      ("total_corrupt_ingested", Json.Number (float_of_int r.total_corrupt_ingested));
      ("total_experiment_faults", Json.Number (float_of_int r.total_experiment_faults));
      ("total_snapshot_faults", Json.Number (float_of_int r.total_snapshot_faults));
      ("mean_error_inflation", Json.Number r.mean_error_inflation);
    ]
