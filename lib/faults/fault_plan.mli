(** Deterministic fault plans for the operational-loop soak harness.

    A plan decides, from a seed alone, which faults strike which sites
    of a simulated campaign: SRB experiments that hang or lose shots,
    fitters that return non-physical rates, persisted snapshots that
    get truncated or bit-flipped on disk, and solver runs whose budget
    blows up.  Decisions are keyed on [(seed, site)] the way
    {!Qcx_device.Drift.on_day} keys its perturbations, so the same
    seed produces the identical fault sequence at every [--jobs] and
    regardless of evaluation order — which is what lets soak runs be
    compared bit for bit. *)

type corruption = Nan_rate | Negative_rate | Huge_rate

val corruption_name : corruption -> string

val rate_of_corruption : corruption -> float
(** The non-physical rate each kind injects ([nan], negative, far
    above 1) — all of which validation must reject. *)

type file_fault = Truncate | Bitflip

val file_fault_name : file_fault -> string

type config = {
  hang : float;  (** per-attempt probability of a hung experiment *)
  dropout : float;  (** per-attempt probability of shot dropout *)
  dropout_keep : float;  (** fraction of shots that survive a dropout *)
  corrupt_fit : float;  (** per-attempt probability of a corrupt fit *)
  file_fault : float;  (** per-day probability of on-disk corruption *)
  solver_blowup : float;  (** per-compile probability of budget blowup *)
}

val default_config : config
(** Aggressive enough that a 10-day soak exercises every fault class. *)

val none : config
(** All probabilities zero — a fault-free control campaign. *)

type t

val create : ?config:config -> seed:int -> unit -> t

val config : t -> config

val experiment_fault :
  t ->
  day:int ->
  experiment:int ->
  attempt:int ->
  Qcx_characterization.Policy.injected_fault option

val inject :
  t ->
  day:int ->
  experiment:int ->
  attempt:int ->
  Qcx_characterization.Policy.injected_fault option
(** [inject t ~day] partially applied is exactly the [?inject] hook
    {!Qcx_characterization.Policy.characterize_resilient} expects. *)

val solver_blowup : t -> day:int -> compile:int -> bool
(** Whether compile number [compile] of [day] gets a blown solver
    budget (the soak then compiles with [node_budget = 0], forcing the
    degradation ladder to serve the request). *)

val file_fault : t -> day:int -> file_fault option

val truncate_string : rng:Qcx_util.Rng.t -> string -> string
(** Keep a strict prefix from the first half of the string. *)

val bitflip_string : rng:Qcx_util.Rng.t -> string -> string
(** Flip one bit of a random alphanumeric byte — always a meaningful
    token character, so the damage is never benign. *)

val corrupt_file : t -> day:int -> string -> (file_fault * string) option
(** Apply [day]'s file fault (if any) to a snapshot's contents. *)
