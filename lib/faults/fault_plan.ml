module Rng = Qcx_util.Rng
module Policy = Qcx_characterization.Policy

type corruption = Nan_rate | Negative_rate | Huge_rate

let corruption_name = function
  | Nan_rate -> "nan"
  | Negative_rate -> "negative"
  | Huge_rate -> "huge"

let rate_of_corruption = function
  | Nan_rate -> Float.nan
  | Negative_rate -> -0.25
  | Huge_rate -> 64.0

type file_fault = Truncate | Bitflip

let file_fault_name = function Truncate -> "truncate" | Bitflip -> "bitflip"

type config = {
  hang : float;
  dropout : float;
  dropout_keep : float;
  corrupt_fit : float;
  file_fault : float;
  solver_blowup : float;
}

let default_config =
  {
    hang = 0.06;
    dropout = 0.08;
    dropout_keep = 0.25;
    corrupt_fit = 0.08;
    file_fault = 0.35;
    solver_blowup = 0.25;
  }

let none =
  {
    hang = 0.0;
    dropout = 0.0;
    dropout_keep = 1.0;
    corrupt_fit = 0.0;
    file_fault = 0.0;
    solver_blowup = 0.0;
  }

type t = { seed : int; config : config }

let create ?(config = default_config) ~seed () = { seed; config }

let config t = t.config

(* Every decision draws from a generator keyed on (plan seed, site):
   the same (day, experiment, attempt) always sees the same fault no
   matter in which order — or on how many domains — sites are
   evaluated.  Same recipe as [Qcx_device.Drift.on_day]. *)
let keyed t key = Rng.create (Hashtbl.hash (t.seed, "qcx-fault-plan", key))

let experiment_fault t ~day ~experiment ~attempt =
  let rng = keyed t (day, experiment, attempt, "experiment") in
  let u = Rng.unit_float rng in
  let c = t.config in
  if u < c.hang then Some Policy.Inject_hang
  else if u < c.hang +. c.dropout then Some (Policy.Inject_dropout c.dropout_keep)
  else if u < c.hang +. c.dropout +. c.corrupt_fit then begin
    let kind =
      match Rng.int rng 3 with 0 -> Nan_rate | 1 -> Negative_rate | _ -> Huge_rate
    in
    Some (Policy.Inject_corrupt_rate (rate_of_corruption kind))
  end
  else None

let inject t ~day ~experiment ~attempt = experiment_fault t ~day ~experiment ~attempt

let solver_blowup t ~day ~compile =
  let rng = keyed t (day, compile, "solver") in
  Rng.unit_float rng < t.config.solver_blowup

(* Cut within the first half so the damage can never amount to
   dropping only trailing whitespace: a proper prefix of a JSON
   document this short always fails to parse. *)
let truncate_string ~rng s =
  let n = String.length s in
  if n <= 1 then "" else String.sub s 0 (1 + Rng.int rng (n / 2))

(* Flip a bit of an alphanumeric byte: the victim is always a
   meaningful token character (a tag, a key, a digit, a checksum hex
   digit), never separator whitespace, so the damage is guaranteed to
   break parsing, the format tag, or checksum verification — a benign
   flip would defeat the soak's "every corruption is caught"
   accounting. *)
let bitflip_string ~rng s =
  let is_alnum c =
    (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
  in
  let positions = ref [] in
  String.iteri (fun i c -> if is_alnum c then positions := i :: !positions) s;
  match !positions with
  | [] -> s
  | positions ->
    let positions = Array.of_list positions in
    let i = positions.(Rng.int rng (Array.length positions)) in
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code s.[i] lxor 0x02));
    Bytes.to_string b

let file_fault t ~day =
  let rng = keyed t (day, "file") in
  if Rng.unit_float rng < t.config.file_fault then
    Some (if Rng.bool rng then Truncate else Bitflip)
  else None

let corrupt_file t ~day contents =
  match file_fault t ~day with
  | None -> None
  | Some Truncate ->
    Some (Truncate, truncate_string ~rng:(keyed t (day, "truncate")) contents)
  | Some Bitflip ->
    Some (Bitflip, bitflip_string ~rng:(keyed t (day, "bitflip")) contents)
