module Circuit = Qcx_circuit.Circuit
module Device = Qcx_device.Device
module Topology = Qcx_device.Topology
module Rng = Qcx_util.Rng

type t = { circuit : Circuit.t; qubits : int list }

let connected_region topo nqubits =
  let visited = Hashtbl.create 16 in
  let queue = Queue.create () in
  Queue.add 0 queue;
  Hashtbl.replace visited 0 ();
  let region = ref [] in
  let count = ref 0 in
  while (not (Queue.is_empty queue)) && !count < nqubits do
    let q = Queue.pop queue in
    region := q :: !region;
    incr count;
    List.iter
      (fun v ->
        if not (Hashtbl.mem visited v) then begin
          Hashtbl.replace visited v ();
          Queue.add v queue
        end)
      (Topology.neighbors topo q)
  done;
  if !count < nqubits then invalid_arg "Supremacy: device component smaller than nqubits";
  List.sort compare !region

(* Partition the subgraph's edges into matchings (greedy edge
   coloring); CNOT layers cycle through them. *)
let matchings edges =
  let remaining = ref edges in
  let out = ref [] in
  while !remaining <> [] do
    let used = Hashtbl.create 8 in
    let layer, rest =
      List.partition
        (fun (a, b) ->
          if Hashtbl.mem used a || Hashtbl.mem used b then false
          else begin
            Hashtbl.replace used a ();
            Hashtbl.replace used b ();
            true
          end)
        !remaining
    in
    out := layer :: !out;
    remaining := rest
  done;
  List.rev !out

let build device ~rng ~nqubits ~target_gates =
  let topo = Device.topology device in
  if nqubits > Topology.nqubits topo then invalid_arg "Supremacy.build: device too small";
  let region = connected_region topo nqubits in
  (* Membership as a bit array: the per-edge List.mem scan was
     O(E * n) — noticeable once devices reach hundreds of qubits. *)
  let member = Array.make (Topology.nqubits topo) false in
  List.iter (fun q -> member.(q) <- true) region;
  let in_region q = member.(q) in
  let edges = List.filter (fun (a, b) -> in_region a && in_region b) (Topology.edges topo) in
  let cnot_layers = Array.of_list (matchings edges) in
  if Array.length cnot_layers = 0 then invalid_arg "Supremacy.build: region has no edges";
  let single c q =
    match Rng.int rng 3 with
    | 0 -> Circuit.rx c (Float.pi /. 2.0) q
    | 1 -> Circuit.ry c (Float.pi /. 2.0) q
    | _ -> Circuit.t_gate c q
  in
  let c = ref (Circuit.create (Device.nqubits device)) in
  (* Initial Hadamard layer, as in Boixo et al. *)
  List.iter (fun q -> c := Circuit.h !c q) region;
  let layer = ref 0 in
  while Circuit.length !c < target_gates do
    List.iter (fun q -> c := single !c q) region;
    List.iter
      (fun (a, b) -> c := Circuit.cnot !c ~control:a ~target:b)
      cnot_layers.(!layer mod Array.length cnot_layers);
    incr layer
  done;
  c := Circuit.measure_all !c;
  { circuit = !c; qubits = region }
