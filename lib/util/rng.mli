(** Deterministic, splittable pseudo-random number generator.

    Every stochastic component in this repository takes an explicit
    [Rng.t] so that experiments are reproducible run to run.  The
    implementation is SplitMix64 (Steele et al., OOPSLA 2014): a small
    state, a strong output mix, and a principled [split] operation that
    derives statistically independent child streams. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent child generator and advances [t].
    Use one child per parallel experiment so that adding experiments
    does not perturb the random draws of the others. *)

val split_nth : t -> int -> t
(** [split_nth t i] is the child that the [(i+1)]-th consecutive
    {!split} on [t] would return, computed without advancing [t]:
    [split_nth t i] equals the result of calling [split] [i+1] times
    on a {!copy} of [t] and keeping the last child.  This is the
    random-access form of [split] that the parallel Monte-Carlo
    executors use to give trajectory [i] the same stream no matter
    which worker (or chunk) runs it. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future draws). *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be
    positive. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val unit_float : t -> float
(** Uniform draw in [0, 1). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal draw by the Box–Muller transform. *)

val choice : t -> 'a array -> 'a
(** Uniform draw from a non-empty array. *)

val weighted_choice : t -> (float * 'a) list -> 'a
(** [weighted_choice t items] draws proportionally to the (positive)
    weights.  The weight list must be non-empty with positive total. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list
(** Functional shuffle of a list. *)
