(** Fixed-size domain pool for embarrassingly parallel index ranges.

    The Monte-Carlo executors split their trajectories into one
    contiguous chunk per job and run each chunk on a worker domain
    (OCaml 5 runtime thread).  Work is purely data-parallel — no
    shared mutable state, no task queue — so a chunk-per-worker pool
    is all that is needed, and the stdlib suffices (domainslib is not
    available in this container).

    Workers are persistent: they are spawned lazily on first use,
    parked on a condition variable between calls (spawning a domain
    costs hundreds of microseconds, easily dominating a small batch),
    and shut down automatically at process exit.  The pool must only
    be driven from one domain at a time (the executors call it from
    the main domain); chunks themselves run on distinct domains.

    Determinism contract: callers must derive all randomness for index
    [i] from [i] itself (see {!Rng.split_nth}), never from a stream
    threaded across the range, so that results are independent of the
    chunking and of [jobs]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1 — the pool size
    to use when the caller does not care ([--jobs 0] in the CLIs). *)

val chunk_bounds : jobs:int -> n:int -> (int * int) list
(** The [(lo, hi)] half-open ranges [parallel_chunks] would use: at
    most [jobs] non-empty chunks covering [0, n) in order.  Exposed
    for tests. *)

val parallel_chunks :
  ?oversubscribe:bool -> jobs:int -> n:int -> (lo:int -> hi:int -> 'a) -> 'a list
(** [parallel_chunks ~jobs ~n f] evaluates [f] over a partition of
    [0, n) into at most [jobs] contiguous chunks, each on a worker
    domain, and returns the chunk results in range order.  [jobs <= 1]
    (or [n <= 1]) is a sequential fallback with no worker involved;
    [n <= 0] returns [[]].  Exceptions from workers are re-raised at
    the join after every chunk has drained.

    [jobs] is clamped to {!default_jobs} unless [oversubscribe] is
    [true] (default [false]): domains beyond the physical cores only
    add scheduling overhead, and under the determinism contract the
    chunking cannot change any result. *)

val map_reduce :
  jobs:int -> n:int -> map:(lo:int -> hi:int -> 'a) -> merge:('b -> 'a -> 'b) -> 'b -> 'b
(** Fold [merge] over the chunk results of {!parallel_chunks}, in
    range order (left to right), starting from the accumulator. *)
