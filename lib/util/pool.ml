let default_jobs () = max 1 (Domain.recommended_domain_count ())

let chunk_bounds ~jobs ~n =
  let jobs = max 1 (min jobs n) in
  let chunk = (n + jobs - 1) / jobs in
  List.filter_map
    (fun s ->
      let lo = s * chunk and hi = min n ((s + 1) * chunk) in
      if lo < hi then Some (lo, hi) else None)
    (List.init jobs Fun.id)

(* Persistent workers.  Spawning a domain costs hundreds of
   microseconds — enough to dominate a small Monte-Carlo batch — so
   workers are spawned once, parked on a condition variable, and
   reused by every subsequent parallel call.  [at_exit] sends [Quit]
   and joins them so the process shuts down cleanly. *)

type job = Idle | Run of (unit -> unit) | Quit

type worker = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : job;
  mutable failure : exn option;
  mutable busy : bool;
}

let worker_loop w =
  let quit = ref false in
  while not !quit do
    Mutex.lock w.mutex;
    while match w.job with Idle -> true | _ -> false do
      Condition.wait w.cond w.mutex
    done;
    let job = w.job in
    Mutex.unlock w.mutex;
    let failure =
      match job with
      | Run f -> ( try f (); None with e -> Some e)
      | Quit ->
        quit := true;
        None
      | Idle -> None
    in
    Mutex.lock w.mutex;
    w.job <- Idle;
    w.failure <- failure;
    w.busy <- false;
    Condition.broadcast w.cond;
    Mutex.unlock w.mutex
  done

(* Pool bookkeeping runs on the calling (main) domain only. *)
let workers : (worker * unit Domain.t) list ref = ref []

let submit w f =
  Mutex.lock w.mutex;
  w.failure <- None;
  w.busy <- true;
  w.job <- Run f;
  Condition.broadcast w.cond;
  Mutex.unlock w.mutex

let await w =
  Mutex.lock w.mutex;
  while w.busy do
    Condition.wait w.cond w.mutex
  done;
  let failure = w.failure in
  w.failure <- None;
  Mutex.unlock w.mutex;
  match failure with Some e -> raise e | None -> ()

let shutdown () =
  List.iter
    (fun (w, d) ->
      Mutex.lock w.mutex;
      while w.busy do
        Condition.wait w.cond w.mutex
      done;
      w.busy <- true;
      w.job <- Quit;
      Condition.broadcast w.cond;
      Mutex.unlock w.mutex;
      Domain.join d)
    !workers;
  workers := []

let () = at_exit shutdown

let ensure_workers k =
  let have = List.length !workers in
  for _ = have + 1 to k do
    let w =
      { mutex = Mutex.create (); cond = Condition.create (); job = Idle; failure = None; busy = false }
    in
    let d = Domain.spawn (fun () -> worker_loop w) in
    workers := (w, d) :: !workers
  done;
  Array.of_list (List.filteri (fun i _ -> i < k) (List.map fst !workers))

let parallel_chunks ?(oversubscribe = false) ~jobs ~n f =
  (* Extra domains beyond the physical cores cannot make data-parallel
     work faster, and results are chunking-independent by the
     determinism contract, so default to clamping.  [oversubscribe]
     forces real worker domains even on a small machine (used by tests
     to exercise the cross-domain path). *)
  let jobs = if oversubscribe then jobs else min jobs (default_jobs ()) in
  if n <= 0 then []
  else if jobs <= 1 || n = 1 then [ f ~lo:0 ~hi:n ]
  else
    match chunk_bounds ~jobs ~n with
    | [] -> []
    | [ (lo, hi) ] -> [ f ~lo ~hi ]
    | (lo0, hi0) :: rest ->
      (* The calling domain takes the first chunk so [jobs] cores stay
         busy with [jobs - 1] workers. *)
      let rest = Array.of_list rest in
      let k = Array.length rest in
      let ws = ensure_workers k in
      let results = Array.make k None in
      Array.iteri (fun i (lo, hi) -> submit ws.(i) (fun () -> results.(i) <- Some (f ~lo ~hi))) rest;
      let first = f ~lo:lo0 ~hi:hi0 in
      (* Drain every worker before raising so the pool is reusable even
         when a chunk fails; the first failure wins. *)
      let failure = ref None in
      Array.iter
        (fun w -> try await w with e -> if !failure = None then failure := Some e)
        ws;
      (match !failure with Some e -> raise e | None -> ());
      first :: Array.to_list (Array.map Option.get results)

let map_reduce ~jobs ~n ~map ~merge init =
  List.fold_left merge init (parallel_chunks ~jobs ~n map)
