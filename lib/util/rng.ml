type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_raw t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let create seed = { state = mix64 (Int64.of_int seed) }

let split t =
  let s = next_raw t in
  { state = mix64 s }

let split_nth t i =
  if i < 0 then invalid_arg "Rng.split_nth: negative index";
  (* The child the (i+1)-th consecutive [split] would produce, computed
     directly from the gamma arithmetic without advancing [t]:
     after i splits the parent state is [state + i*gamma], so the next
     split outputs [mix64 (state + (i+1)*gamma)] and seeds the child
     with another mix. *)
  let s = mix64 (Int64.add t.state (Int64.mul (Int64.of_int (i + 1)) golden_gamma)) in
  { state = mix64 s }

let copy t = { state = t.state }

let int64 t = next_raw t

let unit_float t =
  (* 53 high bits -> [0, 1) *)
  let bits = Int64.shift_right_logical (next_raw t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t bound = unit_float t *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let raw = Int64.shift_right_logical (next_raw t) 1 in
    let v = Int64.rem raw bound64 in
    if Int64.sub raw v > Int64.sub (Int64.sub Int64.max_int bound64) 1L then draw ()
    else Int64.to_int v
  in
  draw ()

let bool t = Int64.logand (next_raw t) 1L = 1L

let bernoulli t p = unit_float t < p

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = unit_float t in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () in
  let u2 = unit_float t in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let weighted_choice t items =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 items in
  if total <= 0.0 then invalid_arg "Rng.weighted_choice: non-positive total weight";
  let target = float t total in
  let rec pick acc = function
    | [] -> invalid_arg "Rng.weighted_choice: empty list"
    | [ (_, x) ] -> x
    | (w, x) :: rest -> if acc +. w > target then x else pick (acc +. w) rest
  in
  pick 0.0 items

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle_list t l =
  let arr = Array.of_list l in
  shuffle t arr;
  Array.to_list arr
