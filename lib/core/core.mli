(** Top-level facade for the crosstalk-mitigation toolchain.

    Re-exports every subsystem under one roof and provides
    {!Pipeline}, the end-to-end flow of the paper's Figure 2:
    characterize the device's crosstalk, compile a program with a
    crosstalk-adaptive schedule, and execute it on the (simulated)
    hardware.

    {1 Quick start}

    {[
      let device = Core.Presets.poughkeepsie () in
      let rng = Core.Rng.create 7 in
      (* 1. characterize (Sections 5/10) *)
      let xtalk = Core.Pipeline.characterize device ~rng in
      (* 2. compile with XtalkSched (Sections 6/7) *)
      let bench = Core.Swap_circuits.build device ~src:0 ~dst:13 in
      let circuit = Core.Circuit.measure_all bench.Core.Swap_circuits.circuit in
      let sched, _stats = Core.Pipeline.compile device ~xtalk ~omega:0.5 circuit in
      (* 3. execute *)
      let counts = Core.Pipeline.execute device sched ~rng ~trials:1024 in
      ignore counts
    ]} *)

module Rng = Qcx_util.Rng
module Pool = Qcx_util.Pool
module Stats = Qcx_util.Stats
module Fit = Qcx_util.Fit
module Tablefmt = Qcx_util.Tablefmt
module Cplx = Qcx_linalg.Cplx
module Mat = Qcx_linalg.Mat
module Gates = Qcx_linalg.Gates
module Gate = Qcx_circuit.Gate
module Circuit = Qcx_circuit.Circuit
module Dag = Qcx_circuit.Dag
module Schedule = Qcx_circuit.Schedule
module Qasm = Qcx_circuit.Qasm
module Topology = Qcx_device.Topology
module Calibration = Qcx_device.Calibration
module Crosstalk = Qcx_device.Crosstalk
module Device = Qcx_device.Device
module Presets = Qcx_device.Presets
module Drift = Qcx_device.Drift
module Tableau = Qcx_stabilizer.Tableau
module State = Qcx_statevector.State
module Density = Qcx_densitymatrix.Density
module Json = Qcx_persist.Json
module Store = Qcx_persist.Store
module Channel = Qcx_noise.Channel
module Exec = Qcx_noise.Exec
module Solver = Qcx_smt.Solver
module Dgraph = Qcx_smt.Dgraph
module Clifford1 = Qcx_characterization.Clifford1
module Clifford2 = Qcx_characterization.Clifford2
module Rb = Qcx_characterization.Rb
module Binpack = Qcx_characterization.Binpack
module Policy = Qcx_characterization.Policy
module Routing = Qcx_scheduler.Routing
module Layout = Qcx_scheduler.Layout
module Durations = Qcx_scheduler.Durations
module Par_sched = Qcx_scheduler.Par_sched
module Serial_sched = Qcx_scheduler.Serial_sched
module Encoding = Qcx_scheduler.Encoding
module Xtalk_sched = Qcx_scheduler.Xtalk_sched
module Greedy_sched = Qcx_scheduler.Greedy_sched
module Barriers = Qcx_scheduler.Barriers
module Evaluate = Qcx_scheduler.Evaluate
module Idle = Qcx_scheduler.Idle
module Dd = Qcx_mitigation.Dd
module Zne = Qcx_mitigation.Zne
module Leaderboard = Qcx_mitigation.Leaderboard
module Swap_circuits = Qcx_benchmarks.Swap_circuits
module Qaoa = Qcx_benchmarks.Qaoa
module Hidden_shift = Qcx_benchmarks.Hidden_shift
module Supremacy = Qcx_benchmarks.Supremacy
module Fault_plan = Qcx_faults.Fault_plan
module Soak = Qcx_faults.Soak
module Service_faults = Qcx_faults.Service_faults
module Canon = Qcx_serve.Canon
module Wire = Qcx_serve.Wire
module Cache = Qcx_serve.Cache
module Breaker = Qcx_serve.Breaker
module Journal = Qcx_serve.Journal
module Registry = Qcx_serve.Registry
module Calibrator = Qcx_serve.Calibrator
module Service = Qcx_serve.Service
module Server = Qcx_serve.Server
module Ring = Qcx_serve.Ring
module Replica = Qcx_serve.Replica
module Shard = Qcx_serve.Shard
module Router = Qcx_serve.Router
module Fleet = Qcx_serve.Fleet
module Tomography = Qcx_metrics.Tomography
module Cross_entropy = Qcx_metrics.Cross_entropy
module Readout_mitigation = Qcx_metrics.Readout_mitigation

(** The three schedulers of Table 1. *)
type scheduler =
  | Serial_sched  (** full serialization: mitigates crosstalk only *)
  | Par_sched  (** maximal parallelism: mitigates decoherence only *)
  | Xtalk_sched of float  (** SMT optimization with weight factor omega *)

val scheduler_name : scheduler -> string

module Pipeline : sig
  (** End-to-end flow (Figure 2). *)

  val characterize :
    ?policy:Policy.policy ->
    ?params:Rb.params ->
    ?jobs:int ->
    Device.t ->
    rng:Rng.t ->
    Crosstalk.t
  (** Run crosstalk characterization and return the conditional-error
      data for the compiler.  Default policy: 1-hop pairs with
      bin-packed parallel experiments (Optimizations 1+2). *)

  val compile :
    ?scheduler:scheduler ->
    ?node_budget:int ->
    ?deadline_seconds:float ->
    ?ladder_start:Xtalk_sched.rung ->
    ?window_gates:int ->
    ?jobs:int ->
    Device.t ->
    xtalk:Crosstalk.t ->
    Circuit.t ->
    Schedule.t * Xtalk_sched.stats option
  (** Schedule a hardware-compliant circuit (SWAPs are decomposed
      internally).  Default: [Xtalk_sched 0.5].  Stats are [None] for
      the baseline schedulers.  [node_budget] and [deadline_seconds]
      bound the SMT solve; on expiry {!Xtalk_sched.schedule}'s
      degradation ladder serves the compile, so this never fails.
      [ladder_start], [window_gates] and [jobs] pass through to
      {!Xtalk_sched.schedule} (entry rung, windowed-rung window size,
      and worker-pool width). *)

  val execute :
    ?backend:Exec.backend ->
    ?jobs:int ->
    Device.t ->
    Schedule.t ->
    rng:Rng.t ->
    trials:int ->
    Exec.counts
  (** Run on the simulated hardware.  Default backend: stabilizer;
      [jobs] (default 1) shards trajectories over domains with
      bit-identical counts (see {!Exec.run}). *)
end
