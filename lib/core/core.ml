module Rng = Qcx_util.Rng
module Pool = Qcx_util.Pool
module Stats = Qcx_util.Stats
module Fit = Qcx_util.Fit
module Tablefmt = Qcx_util.Tablefmt
module Cplx = Qcx_linalg.Cplx
module Mat = Qcx_linalg.Mat
module Gates = Qcx_linalg.Gates
module Gate = Qcx_circuit.Gate
module Circuit = Qcx_circuit.Circuit
module Dag = Qcx_circuit.Dag
module Schedule = Qcx_circuit.Schedule
module Qasm = Qcx_circuit.Qasm
module Topology = Qcx_device.Topology
module Calibration = Qcx_device.Calibration
module Crosstalk = Qcx_device.Crosstalk
module Device = Qcx_device.Device
module Presets = Qcx_device.Presets
module Drift = Qcx_device.Drift
module Tableau = Qcx_stabilizer.Tableau
module State = Qcx_statevector.State
module Density = Qcx_densitymatrix.Density
module Json = Qcx_persist.Json
module Store = Qcx_persist.Store
module Channel = Qcx_noise.Channel
module Exec = Qcx_noise.Exec
module Solver = Qcx_smt.Solver
module Dgraph = Qcx_smt.Dgraph
module Clifford1 = Qcx_characterization.Clifford1
module Clifford2 = Qcx_characterization.Clifford2
module Rb = Qcx_characterization.Rb
module Binpack = Qcx_characterization.Binpack
module Policy = Qcx_characterization.Policy
module Routing = Qcx_scheduler.Routing
module Layout = Qcx_scheduler.Layout
module Durations = Qcx_scheduler.Durations
module Par_sched = Qcx_scheduler.Par_sched
module Serial_sched = Qcx_scheduler.Serial_sched
module Encoding = Qcx_scheduler.Encoding
module Xtalk_sched = Qcx_scheduler.Xtalk_sched
module Window_sched = Qcx_scheduler.Window_sched
module Greedy_sched = Qcx_scheduler.Greedy_sched
module Barriers = Qcx_scheduler.Barriers
module Evaluate = Qcx_scheduler.Evaluate
module Idle = Qcx_scheduler.Idle
module Dd = Qcx_mitigation.Dd
module Zne = Qcx_mitigation.Zne
module Leaderboard = Qcx_mitigation.Leaderboard
module Swap_circuits = Qcx_benchmarks.Swap_circuits
module Qaoa = Qcx_benchmarks.Qaoa
module Hidden_shift = Qcx_benchmarks.Hidden_shift
module Supremacy = Qcx_benchmarks.Supremacy
module Fault_plan = Qcx_faults.Fault_plan
module Soak = Qcx_faults.Soak
module Service_faults = Qcx_faults.Service_faults
module Canon = Qcx_serve.Canon
module Wire = Qcx_serve.Wire
module Cache = Qcx_serve.Cache
module Breaker = Qcx_serve.Breaker
module Journal = Qcx_serve.Journal
module Registry = Qcx_serve.Registry
module Calibrator = Qcx_serve.Calibrator
module Service = Qcx_serve.Service
module Server = Qcx_serve.Server
module Ring = Qcx_serve.Ring
module Replica = Qcx_serve.Replica
module Shard = Qcx_serve.Shard
module Router = Qcx_serve.Router
module Fleet = Qcx_serve.Fleet
module Tomography = Qcx_metrics.Tomography
module Cross_entropy = Qcx_metrics.Cross_entropy
module Readout_mitigation = Qcx_metrics.Readout_mitigation

type scheduler = Serial_sched | Par_sched | Xtalk_sched of float

let scheduler_name = function
  | Serial_sched -> "SerialSched"
  | Par_sched -> "ParSched"
  | Xtalk_sched omega -> Printf.sprintf "XtalkSched(w=%.2f)" omega

module Pipeline = struct
  let characterize ?policy ?params ?jobs device ~rng =
    let policy =
      match policy with
      | Some p -> p
      | None -> Qcx_characterization.Policy.One_hop_binpacked
    in
    let plan = Qcx_characterization.Policy.plan ~rng device policy in
    let outcome = Qcx_characterization.Policy.characterize ?params ?jobs ~rng device plan in
    outcome.Qcx_characterization.Policy.xtalk

  let compile ?(scheduler = Xtalk_sched 0.5) ?node_budget ?deadline_seconds ?ladder_start
      ?window_gates ?jobs device ~xtalk circuit =
    let circuit = Qcx_circuit.Circuit.decompose_swaps circuit in
    match scheduler with
    | Serial_sched -> (Qcx_scheduler.Serial_sched.schedule device circuit, None)
    | Par_sched -> (Qcx_scheduler.Par_sched.schedule device circuit, None)
    | Xtalk_sched omega ->
      let sched, stats =
        Qcx_scheduler.Xtalk_sched.schedule ~omega ?node_budget ?deadline_seconds
          ?ladder_start ?window_gates ?jobs ~device ~xtalk circuit
      in
      (sched, Some stats)

  let execute ?(backend = Qcx_noise.Exec.Stabilizer) ?jobs device sched ~rng ~trials =
    Qcx_noise.Exec.run ?jobs device sched ~rng ~trials ~backend
end
