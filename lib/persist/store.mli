(** Persistence of characterization and calibration data.

    The operational loop the paper implies — characterize in the
    morning, let every compile job of the day consume the data —
    needs the data on disk, and needs it to survive the disk: a
    corrupt calibration file must never fail a compile or, worse, be
    silently ingested.  Formats are plain JSON wrapped in a versioned,
    checksummed envelope (format v2); see DESIGN.md §7.

    Every loader returns [Error _] on damaged or non-physical input —
    never an exception — and validates values at parse time: rates
    must be finite and in [0, 1], durations and coherence times finite
    and positive, edges (optionally) members of the coupling map. *)

val crosstalk_to_json : Qcx_device.Crosstalk.t -> Json.t
(** Ordered (target, spectator, rate) entries. *)

val crosstalk_of_json :
  ?topology:Qcx_device.Topology.t -> Json.t -> (Qcx_device.Crosstalk.t, string) result
(** Rejects non-finite or out-of-range rates and, when [topology] is
    given, entries whose edges are not coupling-map edges. *)

val calibration_to_json : Qcx_device.Calibration.t -> edges:Qcx_device.Topology.edge list -> Json.t
(** Snapshot of per-qubit and per-edge calibration values. *)

val calibration_of_json : Json.t -> (Qcx_device.Calibration.t, string) result
(** Validates every value (finite, in range, positive durations). *)

val device_snapshot_to_json : Qcx_device.Device.t -> Json.t
(** Full compiler-visible device state: name, coupling map,
    calibration, and (optionally present) characterized crosstalk is
    stored separately — the hidden ground truth is deliberately NOT
    serialized. *)

val device_snapshot_of_json :
  Json.t -> (string * Qcx_device.Topology.t * Qcx_device.Calibration.t, string) result

val save : path:string -> Json.t -> (unit, string) result
(** Wraps the document in the v2 envelope: a [format] version tag and
    an MD5 checksum of the canonical payload serialization.  The write
    is atomic AND durable — the document lands in [path ^ ".tmp"]
    first, is fsync'd, renamed into place, and then the parent
    directory is fsync'd so an OS crash cannot lose the rename itself.
    A crashed writer can never leave a truncated snapshot at [path].
    Every rename-commit in the system (cache snapshots, journal
    checkpoints, the calibrator's ring-pointer promotion) routes
    through here. *)

val fsync_dir : string -> unit
(** Fsync a directory's metadata (best effort; errors are swallowed) —
    the other half of a durable rename.  {!save} calls it on the
    parent directory after every rename. *)

val load : path:string -> (Json.t, string) result
(** Unwraps and verifies the envelope, returning the payload.  A
    checksum mismatch, a truncated file, or an unsupported envelope
    version is an [Error].  Bare legacy (pre-envelope) documents are
    passed through; their per-type [format] field is still checked by
    the typed loaders. *)

val save_crosstalk : path:string -> Qcx_device.Crosstalk.t -> (unit, string) result

val load_crosstalk :
  ?topology:Qcx_device.Topology.t ->
  path:string ->
  unit ->
  (Qcx_device.Crosstalk.t, string) result

val quarantine : path:string -> (string, string) result
(** Rename a corrupt file out of the way — [path] becomes
    [path ^ ".corrupt"] (numbered suffixes if that exists) — so the
    next load never trips over it again.  Returns the new name. *)

type load_report = {
  data : Qcx_device.Crosstalk.t option;  (** first snapshot that loaded clean *)
  source : string option;  (** the path it came from *)
  quarantined : (string * string) list;  (** (path, reason) for every corrupt file *)
}

val load_crosstalk_resilient :
  ?topology:Qcx_device.Topology.t -> paths:string list -> unit -> load_report
(** Walk [paths] (newest snapshot first), quarantining every corrupt
    file encountered, and return the first one that loads and
    validates — the "last good snapshot" fallback of the operational
    loop.  Missing files are skipped silently; [data = None] means no
    usable snapshot exists. *)
