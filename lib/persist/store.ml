module Crosstalk = Qcx_device.Crosstalk
module Calibration = Qcx_device.Calibration
module Topology = Qcx_device.Topology
module Device = Qcx_device.Device

let ( let* ) = Result.bind

(* ---- value validation ----

   Characterization data feeds straight into scheduling objectives, so
   a single NaN or negative rate ingested here poisons every compile
   of the day.  Loaders therefore reject anything non-physical instead
   of trusting the file. *)

let valid_rate r = Float.is_finite r && r >= 0.0 && r <= 1.0

let checked_rate ~what r =
  if valid_rate r then Ok r
  else Error (Printf.sprintf "%s out of range: %h (want finite in [0,1])" what r)

let checked_positive ~what v =
  if Float.is_finite v && v > 0.0 then Ok v
  else Error (Printf.sprintf "%s out of range: %h (want finite > 0)" what v)

let edge_to_json (a, b) = Json.Array [ Json.Number (float_of_int a); Json.Number (float_of_int b) ]

let edge_of_json = function
  | Json.Array [ a; b ] ->
    let* a = Json.to_int a in
    let* b = Json.to_int b in
    Ok (Topology.normalize (a, b))
  | _ -> Error "expected [a, b] edge"

let crosstalk_to_json xtalk =
  Json.Object
    [
      ("format", Json.String "qcx-crosstalk-v1");
      ( "entries",
        Json.Array
          (List.map
             (fun (target, spectator, rate) ->
               Json.Object
                 [
                   ("target", edge_to_json target);
                   ("spectator", edge_to_json spectator);
                   ("rate", Json.Number rate);
                 ])
             (Crosstalk.entries xtalk)) );
    ]

let crosstalk_of_json ?topology doc =
  let* fmt = Json.find_str "format" doc in
  if fmt <> "qcx-crosstalk-v1" then Error ("unknown format " ^ fmt)
  else
    let check_edge what e =
      match topology with
      | None -> Ok e
      | Some topo ->
        if Topology.has_edge topo e then Ok e
        else Error (Printf.sprintf "%s (%d, %d) is not a coupling-map edge" what (fst e) (snd e))
    in
    let* entries = Json.find_list "entries" doc in
    List.fold_left
      (fun acc entry ->
        let* xtalk = acc in
        let* target =
          match Json.member "target" entry with
          | Some e -> edge_of_json e
          | None -> Error "missing target"
        in
        let* target = check_edge "target" target in
        let* spectator =
          match Json.member "spectator" entry with
          | Some e -> edge_of_json e
          | None -> Error "missing spectator"
        in
        let* spectator = check_edge "spectator" spectator in
        let* rate = Json.find_float "rate" entry in
        let* rate = checked_rate ~what:"conditional rate" rate in
        if target = spectator then Error "target and spectator coincide"
        else Ok (Crosstalk.set xtalk ~target ~spectator rate))
      (Ok Crosstalk.empty) entries

let qubit_to_json (q : Calibration.qubit_cal) =
  Json.Object
    [
      ("t1", Json.Number q.Calibration.t1);
      ("t2", Json.Number q.Calibration.t2);
      ("readout_error", Json.Number q.Calibration.readout_error);
      ("single_qubit_error", Json.Number q.Calibration.single_qubit_error);
      ("single_qubit_duration", Json.Number q.Calibration.single_qubit_duration);
      ("readout_duration", Json.Number q.Calibration.readout_duration);
    ]

let qubit_of_json doc =
  let* t1 = Json.find_float "t1" doc in
  let* t1 = checked_positive ~what:"t1" t1 in
  let* t2 = Json.find_float "t2" doc in
  let* t2 = checked_positive ~what:"t2" t2 in
  let* readout_error = Json.find_float "readout_error" doc in
  let* readout_error = checked_rate ~what:"readout_error" readout_error in
  let* single_qubit_error = Json.find_float "single_qubit_error" doc in
  let* single_qubit_error = checked_rate ~what:"single_qubit_error" single_qubit_error in
  let* single_qubit_duration = Json.find_float "single_qubit_duration" doc in
  let* single_qubit_duration = checked_positive ~what:"single_qubit_duration" single_qubit_duration in
  let* readout_duration = Json.find_float "readout_duration" doc in
  let* readout_duration = checked_positive ~what:"readout_duration" readout_duration in
  Ok
    {
      Calibration.t1;
      t2;
      readout_error;
      single_qubit_error;
      single_qubit_duration;
      readout_duration;
    }

let calibration_to_json cal ~edges =
  Json.Object
    [
      ("format", Json.String "qcx-calibration-v1");
      ( "qubits",
        Json.Array
          (List.init (Calibration.nqubits cal) (fun q -> qubit_to_json (Calibration.qubit cal q)))
      );
      ( "gates",
        Json.Array
          (List.map
             (fun e ->
               let g = Calibration.gate cal e in
               Json.Object
                 [
                   ("edge", edge_to_json e);
                   ("cnot_error", Json.Number g.Calibration.cnot_error);
                   ("cnot_duration", Json.Number g.Calibration.cnot_duration);
                 ])
             edges) );
    ]

let calibration_of_json doc =
  let* fmt = Json.find_str "format" doc in
  if fmt <> "qcx-calibration-v1" then Error ("unknown format " ^ fmt)
  else
    let* qubit_docs = Json.find_list "qubits" doc in
    let* qubits =
      List.fold_left
        (fun acc qdoc ->
          let* tl = acc in
          let* q = qubit_of_json qdoc in
          Ok (q :: tl))
        (Ok []) qubit_docs
    in
    let qubits = Array.of_list (List.rev qubits) in
    if Array.length qubits = 0 then Error "calibration has no qubits"
    else
    let* gate_docs = Json.find_list "gates" doc in
    let* gates =
      List.fold_left
        (fun acc gdoc ->
          let* tl = acc in
          let* edge =
            match Json.member "edge" gdoc with
            | Some e -> edge_of_json e
            | None -> Error "missing edge"
          in
          let* cnot_error = Json.find_float "cnot_error" gdoc in
          let* cnot_error = checked_rate ~what:"cnot_error" cnot_error in
          let* cnot_duration = Json.find_float "cnot_duration" gdoc in
          let* cnot_duration = checked_positive ~what:"cnot_duration" cnot_duration in
          Ok ((edge, { Calibration.cnot_error; cnot_duration }) :: tl))
        (Ok []) gate_docs
    in
    (try Ok (Calibration.create ~qubits ~gates) with Invalid_argument m -> Error m)

let device_snapshot_to_json device =
  let topo = Device.topology device in
  Json.Object
    [
      ("format", Json.String "qcx-device-v1");
      ("name", Json.String (Device.name device));
      ("nqubits", Json.Number (float_of_int (Topology.nqubits topo)));
      ("edges", Json.Array (List.map edge_to_json (Topology.edges topo)));
      ( "calibration",
        calibration_to_json (Device.calibration device) ~edges:(Topology.edges topo) );
    ]

let device_snapshot_of_json doc =
  let* fmt = Json.find_str "format" doc in
  if fmt <> "qcx-device-v1" then Error ("unknown format " ^ fmt)
  else
    let* name = Json.find_str "name" doc in
    let* nq =
      match Json.member "nqubits" doc with Some v -> Json.to_int v | None -> Error "missing nqubits"
    in
    let* edge_docs = Json.find_list "edges" doc in
    let* edges =
      List.fold_left
        (fun acc e ->
          let* tl = acc in
          let* edge = edge_of_json e in
          Ok (edge :: tl))
        (Ok []) edge_docs
    in
    let* topo =
      try Ok (Topology.create ~nqubits:nq ~edges:(List.rev edges))
      with Invalid_argument m -> Error m
    in
    let* cal =
      match Json.member "calibration" doc with
      | Some c -> calibration_of_json c
      | None -> Error "missing calibration"
    in
    if Calibration.nqubits cal <> Topology.nqubits topo then
      Error "calibration qubit count disagrees with the coupling map"
    else Ok (name, topo, cal)

(* ---- file envelope (format v2) ----

   Every file carries a schema version and a content checksum over the
   canonical serialization of the payload.  [Json.to_string] emission
   is deterministic, so re-serializing the parsed payload reproduces
   the exact string the checksum was computed from; any bit damage to
   the payload region changes either the parse or the recomputed
   digest, and damage to the checksum field itself also fails the
   comparison.  Truncation fails the parse outright. *)

let envelope_format = "qcx-store-v2"

let payload_digest doc = Digest.to_hex (Digest.string (Json.to_string doc))

let envelope doc =
  Json.Object
    [
      ("format", Json.String envelope_format);
      ("checksum", Json.String (payload_digest doc));
      ("payload", doc);
    ]

let open_envelope doc =
  match doc with
  | Json.Object fields when List.mem_assoc "payload" fields -> (
    let* fmt = Json.find_str "format" doc in
    if fmt <> envelope_format then Error ("unsupported store version " ^ fmt)
    else
      let* checksum = Json.find_str "checksum" doc in
      match List.assoc_opt "payload" fields with
      | None -> Error "missing payload"
      | Some payload ->
        if String.lowercase_ascii checksum = payload_digest payload then Ok payload
        else Error "checksum mismatch: file content is damaged")
  | _ ->
    (* Legacy v1 files are bare payloads with their own per-type
       format tag; accept them so pre-v2 snapshots stay loadable. *)
    Ok doc

let fsync_dir dir =
  (* Durability of a rename needs the parent directory's metadata on
     disk too: the file data can be fsync'd and the rename still lost
     if the OS dies before the directory block is written.  Best
     effort — platforms that refuse to fsync a directory fd degrade to
     the old rename-only behavior instead of failing the save. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let save ~path doc =
  (* Write-then-fsync-then-rename: a writer that dies mid-write leaves
     only a stale [.tmp], never a truncated snapshot at [path] for a
     reader (or the server's registry) to quarantine; fsyncing the
     file before and the directory after the rename makes the commit
     survive an OS crash, not just a process crash. *)
  let tmp = path ^ ".tmp" in
  try
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    let oc = Unix.out_channel_of_descr fd in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Json.to_string (envelope doc));
        output_char oc '\n';
        flush oc;
        try Unix.fsync fd with Unix.Unix_error _ -> ());
    Sys.rename tmp path;
    fsync_dir (Filename.dirname path);
    Ok ()
  with
  | Sys_error msg ->
    (try if Sys.file_exists tmp then Sys.remove tmp with Sys_error _ -> ());
    Error msg
  | Unix.Unix_error (err, fn, _) ->
    (try if Sys.file_exists tmp then Sys.remove tmp with Sys_error _ -> ());
    Error (Printf.sprintf "%s: %s" fn (Unix.error_message err))

let load ~path =
  try
    let ic = open_in path in
    let* doc =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Json.of_string (really_input_string ic (in_channel_length ic)))
    in
    open_envelope doc
  with
  | Sys_error msg -> Error msg
  | End_of_file -> Error (path ^ ": unexpected end of file")

let save_crosstalk ~path xtalk = save ~path (crosstalk_to_json xtalk)

let load_crosstalk ?topology ~path () =
  let* doc = load ~path in
  crosstalk_of_json ?topology doc

(* ---- quarantine and fallback ---- *)

let quarantine ~path =
  let rec fresh candidate n =
    if Sys.file_exists candidate then fresh (Printf.sprintf "%s.corrupt.%d" path n) (n + 1)
    else candidate
  in
  let target = fresh (path ^ ".corrupt") 1 in
  try
    Sys.rename path target;
    Ok target
  with Sys_error msg -> Error msg

type load_report = {
  data : Crosstalk.t option;
  source : string option;
  quarantined : (string * string) list;
}

let load_crosstalk_resilient ?topology ~paths () =
  let quarantined = ref [] in
  let rec attempt = function
    | [] -> { data = None; source = None; quarantined = List.rev !quarantined }
    | path :: rest ->
      if not (Sys.file_exists path) then attempt rest
      else begin
        match load_crosstalk ?topology ~path () with
        | Ok xtalk -> { data = Some xtalk; source = Some path; quarantined = List.rev !quarantined }
        | Error why ->
          (match quarantine ~path with
          | Ok _ -> quarantined := (path, why) :: !quarantined
          | Error rename_err -> quarantined := (path, why ^ "; quarantine failed: " ^ rename_err) :: !quarantined);
          attempt rest
      end
  in
  attempt paths
