type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

(* ---- emission ---- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Non-finite floats get fixed spellings (libc %g may print "-nan"),
   and the parser below accepts them back: scheduler stats carry a
   [nan] objective for pair-free circuits, and a codec that cannot
   round-trip its own output would poison the cache journal. *)
let number_to_string x =
  if Float.is_nan x then "nan"
  else if x = Float.infinity then "inf"
  else if x = Float.neg_infinity then "-inf"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let to_string ?(indent = true) t =
  let buf = Buffer.create 256 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Number x -> Buffer.add_string buf (number_to_string x)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | Array [] -> Buffer.add_string buf "[]"
    | Array items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          emit (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Object [] -> Buffer.add_string buf "{}"
    | Object fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (key, value) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape key);
          Buffer.add_string buf "\": ";
          emit (depth + 1) value)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  emit 0 t;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Bad of string

(* Recursive-descent depth cap: without it a short hostile input like
   ten thousand '[' characters exhausts the OCaml stack, and the
   serving layer's "arbitrary bytes never raise" guarantee dies with
   it.  Real documents here (schedules, envelopes) nest < 10 deep. *)
let max_depth = 512

let of_string text =
  let pos = ref 0 in
  let len = String.length text in
  let error msg = raise (Bad (Printf.sprintf "%s at position %d" msg !pos)) in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> error (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else error ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' ->
        advance ();
        Buffer.contents buf
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'u' ->
          if !pos + 4 >= len then error "truncated unicode escape";
          let hex = String.sub text (!pos + 1) 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
          | Some _ -> Buffer.add_char buf '?'
          | None -> error "bad unicode escape");
          pos := !pos + 4
        | _ -> error "bad escape");
        advance ();
        loop ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ()
  in
  let parse_number () =
    if !pos + 4 <= len && String.sub text !pos 4 = "-inf" then begin
      pos := !pos + 4;
      Number Float.neg_infinity
    end
    else
    let start = !pos in
    let is_number_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when is_number_char c -> true | _ -> false) do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    match float_of_string_opt s with
    | Some x -> Number x
    | None -> error ("bad number " ^ s)
  in
  let rec parse_value depth =
    if depth > max_depth then error "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Object []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((key, value) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, value) :: acc)
          | _ -> error "expected ',' or '}'"
        in
        Object (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Array []
      end
      else begin
        let rec items acc =
          let value = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (value :: acc)
          | Some ']' ->
            advance ();
            List.rev (value :: acc)
          | _ -> error "expected ',' or ']'"
        in
        Array (items [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' ->
      if !pos + 1 < len && text.[!pos + 1] = 'a' then literal "nan" (Number Float.nan)
      else literal "null" Null
    | Some 'i' -> literal "inf" (Number Float.infinity)
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> len then Error (Printf.sprintf "trailing garbage at position %d" !pos)
    else Ok v
  with
  | Bad msg -> Error msg
  | Stack_overflow -> Error "nesting too deep"

(* ---- accessors ---- *)

let member key = function Object fields -> List.assoc_opt key fields | _ -> None

let to_float = function Number x -> Ok x | _ -> Error "expected number"

let to_int = function
  | Number x when Float.is_integer x -> Ok (int_of_float x)
  | Number _ -> Error "expected integer"
  | _ -> Error "expected number"

let to_str = function String s -> Ok s | _ -> Error "expected string"
let to_list = function Array items -> Ok items | _ -> Error "expected array"

let find key conv doc =
  match member key doc with
  | Some v -> conv v
  | None -> Error (Printf.sprintf "missing field %S" key)

let find_float key doc = find key to_float doc
let find_str key doc = find key to_str doc
let find_list key doc = find key to_list doc
