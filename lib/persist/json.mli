(** Minimal JSON reader/writer (no external dependencies).

    Covers the subset the persistence layer needs: objects, arrays,
    strings with the standard escapes, numbers (read as floats),
    booleans and null.  Emission is deterministic (object fields in
    insertion order) so stored files diff cleanly. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

val to_string : ?indent:bool -> t -> string
(** [indent] pretty-prints with two-space indentation (default true). *)

val of_string : string -> (t, string) result
(** Parse; errors carry a character position.  Total on arbitrary
    bytes: nesting deeper than 512 levels is rejected with an [Error]
    instead of exhausting the stack.  Accepts the non-finite spellings
    [nan] / [inf] / [-inf] that {!to_string} emits, so every value
    round-trips. *)

val member : string -> t -> t option
(** Object field lookup. *)

val to_float : t -> (float, string) result
val to_int : t -> (int, string) result
val to_str : t -> (string, string) result
val to_list : t -> (t list, string) result

val find_float : string -> t -> (float, string) result
(** [member] + [to_float] with a helpful error. *)

val find_str : string -> t -> (string, string) result
val find_list : string -> t -> (t list, string) result
